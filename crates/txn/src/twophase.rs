//! Two-phase commit between the session master and responsible nodes (§6).
//!
//! "VectorH introduces 2PC to ensure ACID properties for distributed
//! transactions, where a much-reduced global WAL is written to by the
//! session-master." The decision record in the global WAL is the commit
//! point: any worker can read it (HDFS is a shared filesystem), which is
//! also why "the role of session-master can be taken over by any other
//! worker in case of session-master failure". Crash points are injectable
//! so recovery semantics are testable: a transaction is committed iff its
//! `GlobalCommit` record reached the global WAL.

use vectorh_common::fault::{FaultAction, FaultSite};
use vectorh_common::{NodeId, PartitionId, Result};

use crate::wal::{LogRecord, Wal};

/// Injectable crash points for failure testing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashPoint {
    None,
    /// Coordinator dies after participants prepared, before the decision.
    AfterPrepare,
    /// Coordinator dies after logging the decision, before participant
    /// commit records.
    AfterGlobalCommit,
}

/// 2PC outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    Committed,
    /// Coordinator crashed; resolution deferred to recovery.
    InDoubt,
}

/// The session-master side of 2PC.
pub struct TwoPhaseCoordinator {
    global_wal: Wal,
}

impl TwoPhaseCoordinator {
    pub fn new(global_wal: Wal) -> TwoPhaseCoordinator {
        TwoPhaseCoordinator { global_wal }
    }

    pub fn global_wal(&self) -> &Wal {
        &self.global_wal
    }

    /// Run 2PC for `txn_id` across the participants' partition WALs.
    /// `records` holds each participant's already-resolved update records
    /// (from [`crate::manager::TransactionManager::commit`]'s persist hook).
    ///
    /// Besides the explicit `crash` parameter (kept for directed tests),
    /// the global WAL's fault hook is consulted at
    /// [`FaultSite::TwoPhasePrepare`] (per participant) and
    /// [`FaultSite::TwoPhaseDecide`]: any fault there stops the protocol at
    /// that point and reports `InDoubt`, exactly as a coordinator crash
    /// would. The commit point stays the `GlobalCommit` record — a
    /// `CrashAfter`/`CrashMid` at the decide site still durably logs it, so
    /// recovery resolves the transaction to committed.
    pub fn commit_distributed(
        &self,
        txn_id: u64,
        participants: &[(PartitionId, &Wal, &[LogRecord])],
        crash: CrashPoint,
    ) -> Result<Outcome> {
        let hook = self.global_wal.fs().fault_hook();
        // Phase 1: participants persist their updates + Prepare vote.
        for (pid, wal, recs) in participants {
            if let Some(h) = &hook {
                let detail = format!("txn{txn_id}:{pid:?}");
                if h.decide(FaultSite::TwoPhasePrepare, &detail, 0).is_error() {
                    // Coordinator dies before this participant prepares.
                    return Ok(Outcome::InDoubt);
                }
            }
            let mut batch = recs.to_vec();
            batch.push(LogRecord::Prepare { txn: txn_id });
            wal.append(&batch)?;
        }
        if crash == CrashPoint::AfterPrepare {
            return Ok(Outcome::InDoubt);
        }
        // Commit point: the decision in the global WAL.
        let decide_fault = hook
            .as_ref()
            .map(|h| h.decide(FaultSite::TwoPhaseDecide, &format!("txn{txn_id}"), 0))
            .unwrap_or(FaultAction::None);
        match decide_fault {
            FaultAction::CrashBefore
            | FaultAction::TransientError
            | FaultAction::PermanentError
            | FaultAction::Drop => {
                // Died before the decision reached the global WAL.
                return Ok(Outcome::InDoubt);
            }
            _ => {}
        }
        self.global_wal
            .append(&[LogRecord::GlobalCommit { txn: txn_id }])?;
        if matches!(
            decide_fault,
            FaultAction::CrashMid | FaultAction::CrashAfter
        ) {
            // Decision is durable but the coordinator died before phase 2.
            return Ok(Outcome::InDoubt);
        }
        if crash == CrashPoint::AfterGlobalCommit {
            return Ok(Outcome::InDoubt);
        }
        // Phase 2: participants acknowledge locally.
        for (_, wal, _) in participants {
            wal.append(&[LogRecord::Commit {
                txn: txn_id,
                seq: 0,
            }])?;
        }
        Ok(Outcome::Committed)
    }

    /// Recovery: resolve an in-doubt transaction by consulting the global
    /// WAL (readable by any worker).
    pub fn recover_decision(&self, txn_id: u64) -> Result<bool> {
        let records = self.global_wal.read_all()?;
        Ok(records
            .iter()
            .any(|r| matches!(r, LogRecord::GlobalCommit { txn } if *txn == txn_id)))
    }

    /// Participant-side recovery: which of the partition WAL's transactions
    /// must be replayed? Committed = local Commit record OR (Prepare present
    /// AND global decision present).
    pub fn committed_txns_of(&self, partition_wal: &Wal) -> Result<Vec<u64>> {
        let records = partition_wal.read_all()?;
        let mut committed = Vec::new();
        let mut prepared = Vec::new();
        for r in &records {
            match r {
                LogRecord::Commit { txn, .. } => committed.push(*txn),
                LogRecord::Prepare { txn } => prepared.push(*txn),
                _ => {}
            }
        }
        for txn in prepared {
            if !committed.contains(&txn) && self.recover_decision(txn)? {
                committed.push(txn);
            }
        }
        committed.sort_unstable();
        committed.dedup();
        Ok(committed)
    }

    /// Participant-side recovery, with the full per-transaction verdicts:
    /// every transaction that left a trace in the partition WAL, in log
    /// order, with how recovery resolves it. `committed_txns_of` is the
    /// committed-only projection of this.
    pub fn recoverable_txns(&self, partition_wal: &Wal) -> Result<Vec<RecoverableTxn>> {
        let records = partition_wal.read_all()?;
        let mut order: Vec<u64> = Vec::new();
        let mut committed = std::collections::BTreeSet::new();
        let mut prepared = std::collections::BTreeSet::new();
        let mut aborted = std::collections::BTreeSet::new();
        let seen = |order: &mut Vec<u64>, txn: u64| {
            if !order.contains(&txn) {
                order.push(txn);
            }
        };
        for r in &records {
            match r {
                LogRecord::TxnBegin { txn }
                | LogRecord::Insert { txn, .. }
                | LogRecord::Delete { txn, .. }
                | LogRecord::Modify { txn, .. }
                | LogRecord::Append { txn, .. } => seen(&mut order, *txn),
                LogRecord::Commit { txn, .. } => {
                    seen(&mut order, *txn);
                    committed.insert(*txn);
                }
                LogRecord::Prepare { txn } => {
                    seen(&mut order, *txn);
                    prepared.insert(*txn);
                }
                LogRecord::Abort { txn } => {
                    seen(&mut order, *txn);
                    aborted.insert(*txn);
                }
                _ => {}
            }
        }
        let mut out = Vec::with_capacity(order.len());
        for txn in order {
            let resolution = if committed.contains(&txn) {
                TxnResolution::CommittedLocally
            } else if aborted.contains(&txn) {
                TxnResolution::Aborted
            } else if prepared.contains(&txn) && self.recover_decision(txn)? {
                TxnResolution::CommittedByDecision
            } else {
                // Prepared without a global decision, or never even
                // prepared: presumed abort.
                TxnResolution::Aborted
            };
            out.push(RecoverableTxn { txn, resolution });
        }
        Ok(out)
    }

    /// Extract the replayable update records of a committed txn from a
    /// partition WAL, in order.
    pub fn records_of(partition_wal: &Wal, txn_id: u64) -> Result<Vec<LogRecord>> {
        let all = partition_wal.read_all()?;
        Ok(all
            .into_iter()
            .filter(|r| match r {
                LogRecord::Insert { txn, .. }
                | LogRecord::Delete { txn, .. }
                | LogRecord::Modify { txn, .. }
                | LogRecord::Append { txn, .. } => *txn == txn_id,
                _ => false,
            })
            .collect())
    }
}

/// How recovery resolves one transaction found in a partition WAL.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxnResolution {
    /// A local `Commit` record is in the log: committed before the crash.
    CommittedLocally,
    /// Prepared, and the global WAL holds the decision: commits on recovery.
    CommittedByDecision,
    /// No commit evidence anywhere: presumed abort, never replayed.
    Aborted,
}

impl TxnResolution {
    pub fn is_committed(&self) -> bool {
        !matches!(self, TxnResolution::Aborted)
    }
}

/// One transaction's recovery verdict (see
/// [`TwoPhaseCoordinator::recoverable_txns`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoverableTxn {
    pub txn: u64,
    pub resolution: TxnResolution,
}

/// The shipped log of one replicated partition, with per-receiver apply
/// watermarks.
#[derive(Debug, Default)]
struct ShipLog {
    records: Vec<LogRecord>,
    /// How far into `records` each receiver has applied.
    applied: std::collections::HashMap<NodeId, usize>,
}

/// Log shipping for replicated tables (§6): all workers keep replicated
/// PDTs in RAM, so commits broadcast the same on-disk-format log actions to
/// every worker, and receivers apply them through the ordinary replay path
/// ("allowing reuse of existing code and the testing infrastructure"). The
/// shipper is the pipe: senders [`ship`](Self::ship) a batch, each receiver
/// [`drain`](Self::drain)s its backlog and replays it. A node that was down
/// while batches shipped [`rewind`](Self::rewind)s and re-applies the whole
/// retained log on rejoin; propagation [`checkpoint`](Self::checkpoint)s the
/// log once the records are in stable storage.
#[derive(Debug, Default)]
pub struct LogShipper {
    inner: vectorh_common::sync::Mutex<std::collections::HashMap<PartitionId, ShipLog>>,
    shipped_bytes: std::sync::atomic::AtomicU64,
    shipped_batches: std::sync::atomic::AtomicU64,
}

impl LogShipper {
    /// Ship `records` for `pid` to `n_receivers` workers; returns the total
    /// encoded bytes put on the wire (on-disk WAL format, per §6).
    pub fn ship(&self, pid: PartitionId, records: &[LogRecord], n_receivers: usize) -> u64 {
        if records.is_empty() {
            return 0;
        }
        let mut size = 0u64;
        for r in records {
            let mut buf = Vec::new();
            crate::wal::encode_for_shipping(r, &mut buf);
            size += buf.len() as u64;
        }
        self.inner
            .lock()
            .entry(pid)
            .or_default()
            .records
            .extend_from_slice(records);
        let total = size * n_receivers as u64;
        self.shipped_bytes
            .fetch_add(total, std::sync::atomic::Ordering::Relaxed);
        self.shipped_batches
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        total
    }

    /// Receiver side: everything shipped for `pid` that `node` has not yet
    /// applied; advances the node's watermark past it.
    pub fn drain(&self, pid: PartitionId, node: NodeId) -> Vec<LogRecord> {
        let mut inner = self.inner.lock();
        let Some(log) = inner.get_mut(&pid) else {
            return vec![];
        };
        let from = *log.applied.get(&node).unwrap_or(&0);
        let out = log.records[from.min(log.records.len())..].to_vec();
        log.applied.insert(node, log.records.len());
        out
    }

    /// Records shipped for `pid` that `node` has not applied yet.
    pub fn backlog(&self, pid: PartitionId, node: NodeId) -> usize {
        let inner = self.inner.lock();
        inner
            .get(&pid)
            .map(|log| {
                log.records.len() - log.applied.get(&node).unwrap_or(&0).min(&log.records.len())
            })
            .unwrap_or(0)
    }

    /// Forget `node`'s watermark for `pid`: a rejoining node lost its RAM
    /// state and must re-apply the whole retained log on top of stable data.
    pub fn rewind(&self, pid: PartitionId, node: NodeId) {
        if let Some(log) = self.inner.lock().get_mut(&pid) {
            log.applied.remove(&node);
        }
    }

    /// Drop `pid`'s retained records: propagation flushed them to stable
    /// storage, so (like WAL records before a `Checkpoint`) they are
    /// obsolete for catch-up.
    pub fn checkpoint(&self, pid: PartitionId) {
        if let Some(log) = self.inner.lock().get_mut(&pid) {
            log.records.clear();
            log.applied.clear();
        }
    }

    pub fn shipped_bytes(&self) -> u64 {
        self.shipped_bytes
            .load(std::sync::atomic::Ordering::Relaxed)
    }

    pub fn shipped_batches(&self) -> u64 {
        self.shipped_batches
            .load(std::sync::atomic::Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use vectorh_common::Value;
    use vectorh_simhdfs::{DefaultPolicy, SimHdfs, SimHdfsConfig};

    fn fs() -> SimHdfs {
        SimHdfs::new(
            3,
            SimHdfsConfig {
                block_size: 256,
                default_replication: 2,
            },
            Arc::new(DefaultPolicy::new(3)),
        )
    }

    fn setup() -> (TwoPhaseCoordinator, Wal, Wal) {
        let fs = fs();
        let coord = TwoPhaseCoordinator::new(Wal::new(fs.clone(), "/wal/global.wal", None));
        let w0 = Wal::new(fs.clone(), "/wal/p0.wal", None);
        let w1 = Wal::new(fs, "/wal/p1.wal", None);
        (coord, w0, w1)
    }

    fn recs(txn: u64) -> Vec<LogRecord> {
        vec![
            LogRecord::TxnBegin { txn },
            LogRecord::Insert {
                txn,
                rid: 0,
                tag: 1,
                values: vec![Value::I64(1)],
            },
        ]
    }

    #[test]
    fn clean_commit_everywhere() {
        let (coord, w0, w1) = setup();
        let r = recs(1);
        let out = coord
            .commit_distributed(
                1,
                &[(PartitionId(0), &w0, &r), (PartitionId(1), &w1, &r)],
                CrashPoint::None,
            )
            .unwrap();
        assert_eq!(out, Outcome::Committed);
        assert_eq!(coord.committed_txns_of(&w0).unwrap(), vec![1]);
        assert_eq!(coord.committed_txns_of(&w1).unwrap(), vec![1]);
        assert!(coord.recover_decision(1).unwrap());
    }

    #[test]
    fn crash_after_prepare_resolves_to_abort() {
        let (coord, w0, w1) = setup();
        let r = recs(2);
        let out = coord
            .commit_distributed(
                2,
                &[(PartitionId(0), &w0, &r), (PartitionId(1), &w1, &r)],
                CrashPoint::AfterPrepare,
            )
            .unwrap();
        assert_eq!(out, Outcome::InDoubt);
        // No global decision: recovery must NOT replay txn 2.
        assert!(!coord.recover_decision(2).unwrap());
        assert!(coord.committed_txns_of(&w0).unwrap().is_empty());
    }

    #[test]
    fn crash_after_global_commit_resolves_to_commit() {
        let (coord, w0, w1) = setup();
        let r = recs(3);
        let out = coord
            .commit_distributed(
                3,
                &[(PartitionId(0), &w0, &r), (PartitionId(1), &w1, &r)],
                CrashPoint::AfterGlobalCommit,
            )
            .unwrap();
        assert_eq!(out, Outcome::InDoubt);
        // Decision exists: both participants resolve to commit on recovery.
        assert!(coord.recover_decision(3).unwrap());
        assert_eq!(coord.committed_txns_of(&w0).unwrap(), vec![3]);
        assert_eq!(coord.committed_txns_of(&w1).unwrap(), vec![3]);
        // And the replayable records are recoverable.
        let replay = TwoPhaseCoordinator::records_of(&w0, 3).unwrap();
        assert_eq!(replay.len(), 1);
        assert!(matches!(replay[0], LogRecord::Insert { .. }));
    }

    #[test]
    fn mixed_history_resolves_per_txn() {
        let (coord, w0, _) = setup();
        let r1 = recs(10);
        let r2 = recs(11);
        coord
            .commit_distributed(10, &[(PartitionId(0), &w0, &r1)], CrashPoint::None)
            .unwrap();
        coord
            .commit_distributed(11, &[(PartitionId(0), &w0, &r2)], CrashPoint::AfterPrepare)
            .unwrap();
        assert_eq!(coord.committed_txns_of(&w0).unwrap(), vec![10]);
    }

    /// Fires `action` once at `site`, then clears (crash-and-restart).
    #[derive(Debug)]
    struct OneShot {
        site: vectorh_common::fault::FaultSite,
        action: vectorh_common::fault::FaultAction,
        fired: std::sync::atomic::AtomicBool,
    }

    impl vectorh_common::fault::FaultHook for OneShot {
        fn decide(
            &self,
            site: vectorh_common::fault::FaultSite,
            _detail: &str,
            _attempt: u32,
        ) -> vectorh_common::fault::FaultAction {
            if site == self.site && !self.fired.swap(true, std::sync::atomic::Ordering::SeqCst) {
                self.action
            } else {
                vectorh_common::fault::FaultAction::None
            }
        }
    }

    fn arm(coord: &TwoPhaseCoordinator, site: FaultSite, action: FaultAction) {
        coord
            .global_wal()
            .fs()
            .set_fault_hook(Some(Arc::new(OneShot {
                site,
                action,
                fired: Default::default(),
            })));
    }

    #[test]
    fn prepare_fault_aborts_without_global_decision() {
        let (coord, w0, w1) = setup();
        let r = recs(20);
        arm(&coord, FaultSite::TwoPhasePrepare, FaultAction::CrashBefore);
        let out = coord
            .commit_distributed(
                20,
                &[(PartitionId(0), &w0, &r), (PartitionId(1), &w1, &r)],
                CrashPoint::None,
            )
            .unwrap();
        assert_eq!(out, Outcome::InDoubt);
        // No decision reached the global WAL: recovery resolves to abort.
        assert!(!coord.recover_decision(20).unwrap());
        assert!(coord.committed_txns_of(&w0).unwrap().is_empty());
        assert!(coord.committed_txns_of(&w1).unwrap().is_empty());
    }

    #[test]
    fn decide_crash_before_leaves_no_decision() {
        let (coord, w0, _) = setup();
        let r = recs(21);
        arm(&coord, FaultSite::TwoPhaseDecide, FaultAction::CrashBefore);
        let out = coord
            .commit_distributed(21, &[(PartitionId(0), &w0, &r)], CrashPoint::None)
            .unwrap();
        assert_eq!(out, Outcome::InDoubt);
        assert!(!coord.recover_decision(21).unwrap());
        assert!(coord.committed_txns_of(&w0).unwrap().is_empty());
    }

    #[test]
    fn decide_crash_after_has_durable_decision() {
        let (coord, w0, w1) = setup();
        let r = recs(22);
        arm(&coord, FaultSite::TwoPhaseDecide, FaultAction::CrashAfter);
        let out = coord
            .commit_distributed(
                22,
                &[(PartitionId(0), &w0, &r), (PartitionId(1), &w1, &r)],
                CrashPoint::None,
            )
            .unwrap();
        assert_eq!(out, Outcome::InDoubt);
        // GlobalCommit is the commit point: both participants recover to
        // committed even though phase 2 never ran.
        assert!(coord.recover_decision(22).unwrap());
        assert_eq!(coord.committed_txns_of(&w0).unwrap(), vec![22]);
        assert_eq!(coord.committed_txns_of(&w1).unwrap(), vec![22]);
    }

    #[test]
    fn log_shipping_counts_bytes() {
        let shipper = LogShipper::default();
        let r = recs(5);
        let shipped = shipper.ship(PartitionId(0), &r, 3);
        assert!(shipped > 0);
        assert_eq!(shipper.shipped_bytes(), shipped);
        assert_eq!(shipper.shipped_batches(), 1);
        shipper.ship(PartitionId(0), &r, 3);
        assert_eq!(shipper.shipped_batches(), 2);
        assert_eq!(shipper.shipped_bytes(), 2 * shipped);
    }

    #[test]
    fn log_shipping_is_a_pipe_with_per_receiver_watermarks() {
        let shipper = LogShipper::default();
        let pid = PartitionId(7);
        let (a, b) = (NodeId(1), NodeId(2));
        shipper.ship(pid, &recs(1), 2);
        // Receiver a applies immediately; b lags.
        assert_eq!(shipper.drain(pid, a), recs(1));
        assert_eq!(shipper.backlog(pid, a), 0);
        assert_eq!(shipper.backlog(pid, b), 2);
        shipper.ship(pid, &recs(2), 2);
        // a sees only the new batch; b catches up with both.
        assert_eq!(shipper.drain(pid, a), recs(2));
        let caught_up: Vec<_> = [recs(1), recs(2)].concat();
        assert_eq!(shipper.drain(pid, b), caught_up);
        // Rewind models a rejoin after RAM loss: the whole log replays.
        shipper.rewind(pid, a);
        assert_eq!(shipper.drain(pid, a), caught_up);
        // Checkpoint (propagation) empties the retained log for everyone.
        shipper.checkpoint(pid);
        assert_eq!(shipper.backlog(pid, b), 0);
        assert!(shipper.drain(pid, b).is_empty());
    }

    #[test]
    fn recoverable_txns_reports_per_txn_verdicts() {
        let (coord, w0, _) = setup();
        let committed = recs(30);
        let in_doubt_commit = recs(31);
        let in_doubt_abort = recs(32);
        coord
            .commit_distributed(30, &[(PartitionId(0), &w0, &committed)], CrashPoint::None)
            .unwrap();
        coord
            .commit_distributed(
                31,
                &[(PartitionId(0), &w0, &in_doubt_commit)],
                CrashPoint::AfterGlobalCommit,
            )
            .unwrap();
        coord
            .commit_distributed(
                32,
                &[(PartitionId(0), &w0, &in_doubt_abort)],
                CrashPoint::AfterPrepare,
            )
            .unwrap();
        let verdicts = coord.recoverable_txns(&w0).unwrap();
        assert_eq!(
            verdicts,
            vec![
                RecoverableTxn {
                    txn: 30,
                    resolution: TxnResolution::CommittedLocally,
                },
                RecoverableTxn {
                    txn: 31,
                    resolution: TxnResolution::CommittedByDecision,
                },
                RecoverableTxn {
                    txn: 32,
                    resolution: TxnResolution::Aborted,
                },
            ]
        );
        // The committed projection agrees.
        let committed_only: Vec<u64> = verdicts
            .iter()
            .filter(|v| v.resolution.is_committed())
            .map(|v| v.txn)
            .collect();
        assert_eq!(coord.committed_txns_of(&w0).unwrap(), committed_only);
    }
}
