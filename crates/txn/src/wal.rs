//! Write-ahead logging on the (append-only) simulated HDFS.
//!
//! Vectorwise used one global WAL; VectorH splits it (§6): each table
//! partition gets its own WAL, read at startup and written at commit only by
//! the partition's responsible node, so PDT memory is distributed. A small
//! global WAL holds 2PC decisions and DDL. HDFS being append-only is no
//! obstacle — a log only ever appends. The WAL also persists MinMax
//! summaries, which VectorH deliberately stores *away* from the data files.

use vectorh_common::fault::{FaultAction, FaultSite};
use vectorh_common::{NodeId, Result, Value, VhError};
use vectorh_simhdfs::{BlockStore, StoreRef};

/// One log record.
#[derive(Debug, Clone, PartialEq)]
pub enum LogRecord {
    /// A transaction's update batch for this partition begins.
    TxnBegin {
        txn: u64,
    },
    Insert {
        txn: u64,
        rid: u64,
        tag: u64,
        values: Vec<Value>,
    },
    Delete {
        txn: u64,
        rid: u64,
    },
    Modify {
        txn: u64,
        rid: u64,
        col: u32,
        value: Value,
    },
    /// Direct bulk append of `rows` rows (bypassing PDTs).
    Append {
        txn: u64,
        rows: u64,
    },
    /// Local commit mark (participant side of 2PC).
    Commit {
        txn: u64,
        seq: u64,
    },
    Abort {
        txn: u64,
    },
    /// 2PC participant prepared.
    Prepare {
        txn: u64,
    },
    /// 2PC coordinator decision (global WAL only).
    GlobalCommit {
        txn: u64,
    },
    /// PDTs flushed into storage; entries before this are obsolete.
    Checkpoint {
        stable_rows: u64,
    },
    /// MinMax summary for (chunk, column) — stored in the WAL, not the data.
    MinMax {
        chunk: u32,
        col: u32,
        min: Value,
        max: Value,
    },
    /// Opaque DDL statement (global WAL).
    Ddl {
        statement: String,
    },
    /// Session-master election result (global WAL only): `node` holds the
    /// master role as of `epoch`. Commits at earlier epochs are fenced.
    MasterEpoch {
        epoch: u64,
        node: u64,
    },
    /// Chunk-level propagation: a rewrite of `chunk` is about to write its
    /// replacement image at `path`. Until the matching `ChunkRewritten`
    /// lands, `path` may hold a partial image — recovery treats the old
    /// chunk file (still present, never deleted before the `Checkpoint`)
    /// as the authoritative one.
    ChunkRewriteBegin {
        chunk: u32,
        path: String,
    },
    /// Chunk-level propagation: the replacement image for `chunk` is fully
    /// written (`rows` rows). The swap still only takes effect at the
    /// propagation's closing `Checkpoint` — without it, recovery keeps the
    /// old image and replays the PDT on top.
    ChunkRewritten {
        chunk: u32,
        rows: u64,
    },
}

// --- manual binary (de)serialization ----------------------------------------

fn put_u32(v: u32, out: &mut Vec<u8>) {
    out.extend_from_slice(&v.to_le_bytes());
}
fn put_u64(v: u64, out: &mut Vec<u8>) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_value(v: &Value, out: &mut Vec<u8>) {
    match v {
        Value::I32(x) => {
            out.push(0);
            out.extend_from_slice(&x.to_le_bytes());
        }
        Value::I64(x) => {
            out.push(1);
            out.extend_from_slice(&x.to_le_bytes());
        }
        Value::Decimal(x, s) => {
            out.push(2);
            out.extend_from_slice(&x.to_le_bytes());
            out.push(*s);
        }
        Value::Date(x) => {
            out.push(3);
            out.extend_from_slice(&x.to_le_bytes());
        }
        Value::F64(x) => {
            out.push(4);
            out.extend_from_slice(&x.to_le_bytes());
        }
        Value::Str(s) => {
            out.push(5);
            put_u32(s.len() as u32, out);
            out.extend_from_slice(s.as_bytes());
        }
        Value::Null => out.push(6),
    }
}

struct Rd<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Rd<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        let s = self
            .buf
            .get(self.pos..self.pos + n)
            .ok_or_else(|| VhError::Storage("truncated WAL record".into()))?;
        self.pos += n;
        Ok(s)
    }
    fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }
    fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn value(&mut self) -> Result<Value> {
        Ok(match self.u8()? {
            0 => Value::I32(i32::from_le_bytes(self.take(4)?.try_into().unwrap())),
            1 => Value::I64(i64::from_le_bytes(self.take(8)?.try_into().unwrap())),
            2 => {
                let x = i64::from_le_bytes(self.take(8)?.try_into().unwrap());
                Value::Decimal(x, self.u8()?)
            }
            3 => Value::Date(i32::from_le_bytes(self.take(4)?.try_into().unwrap())),
            4 => Value::F64(f64::from_le_bytes(self.take(8)?.try_into().unwrap())),
            5 => {
                let n = self.u32()? as usize;
                Value::Str(
                    String::from_utf8(self.take(n)?.to_vec())
                        .map_err(|_| VhError::Storage("bad WAL utf8".into()))?,
                )
            }
            6 => Value::Null,
            t => return Err(VhError::Storage(format!("bad value tag {t}"))),
        })
    }
}

impl LogRecord {
    /// Serialize one record (without the length frame).
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            LogRecord::TxnBegin { txn } => {
                out.push(0);
                put_u64(*txn, out);
            }
            LogRecord::Insert {
                txn,
                rid,
                tag,
                values,
            } => {
                out.push(1);
                put_u64(*txn, out);
                put_u64(*rid, out);
                put_u64(*tag, out);
                put_u32(values.len() as u32, out);
                for v in values {
                    put_value(v, out);
                }
            }
            LogRecord::Delete { txn, rid } => {
                out.push(2);
                put_u64(*txn, out);
                put_u64(*rid, out);
            }
            LogRecord::Modify {
                txn,
                rid,
                col,
                value,
            } => {
                out.push(3);
                put_u64(*txn, out);
                put_u64(*rid, out);
                put_u32(*col, out);
                put_value(value, out);
            }
            LogRecord::Append { txn, rows } => {
                out.push(4);
                put_u64(*txn, out);
                put_u64(*rows, out);
            }
            LogRecord::Commit { txn, seq } => {
                out.push(5);
                put_u64(*txn, out);
                put_u64(*seq, out);
            }
            LogRecord::Abort { txn } => {
                out.push(6);
                put_u64(*txn, out);
            }
            LogRecord::Prepare { txn } => {
                out.push(7);
                put_u64(*txn, out);
            }
            LogRecord::GlobalCommit { txn } => {
                out.push(8);
                put_u64(*txn, out);
            }
            LogRecord::Checkpoint { stable_rows } => {
                out.push(9);
                put_u64(*stable_rows, out);
            }
            LogRecord::MinMax {
                chunk,
                col,
                min,
                max,
            } => {
                out.push(10);
                put_u32(*chunk, out);
                put_u32(*col, out);
                put_value(min, out);
                put_value(max, out);
            }
            LogRecord::Ddl { statement } => {
                out.push(11);
                put_u32(statement.len() as u32, out);
                out.extend_from_slice(statement.as_bytes());
            }
            LogRecord::MasterEpoch { epoch, node } => {
                out.push(12);
                put_u64(*epoch, out);
                put_u64(*node, out);
            }
            LogRecord::ChunkRewriteBegin { chunk, path } => {
                out.push(13);
                put_u32(*chunk, out);
                put_u32(path.len() as u32, out);
                out.extend_from_slice(path.as_bytes());
            }
            LogRecord::ChunkRewritten { chunk, rows } => {
                out.push(14);
                put_u32(*chunk, out);
                put_u64(*rows, out);
            }
        }
    }

    fn decode(rd: &mut Rd) -> Result<LogRecord> {
        Ok(match rd.u8()? {
            0 => LogRecord::TxnBegin { txn: rd.u64()? },
            1 => {
                let txn = rd.u64()?;
                let rid = rd.u64()?;
                let tag = rd.u64()?;
                let n = rd.u32()? as usize;
                let mut values = Vec::with_capacity(n);
                for _ in 0..n {
                    values.push(rd.value()?);
                }
                LogRecord::Insert {
                    txn,
                    rid,
                    tag,
                    values,
                }
            }
            2 => LogRecord::Delete {
                txn: rd.u64()?,
                rid: rd.u64()?,
            },
            3 => LogRecord::Modify {
                txn: rd.u64()?,
                rid: rd.u64()?,
                col: rd.u32()?,
                value: rd.value()?,
            },
            4 => LogRecord::Append {
                txn: rd.u64()?,
                rows: rd.u64()?,
            },
            5 => LogRecord::Commit {
                txn: rd.u64()?,
                seq: rd.u64()?,
            },
            6 => LogRecord::Abort { txn: rd.u64()? },
            7 => LogRecord::Prepare { txn: rd.u64()? },
            8 => LogRecord::GlobalCommit { txn: rd.u64()? },
            9 => LogRecord::Checkpoint {
                stable_rows: rd.u64()?,
            },
            10 => LogRecord::MinMax {
                chunk: rd.u32()?,
                col: rd.u32()?,
                min: rd.value()?,
                max: rd.value()?,
            },
            11 => {
                let n = rd.u32()? as usize;
                LogRecord::Ddl {
                    statement: String::from_utf8(rd.take(n)?.to_vec())
                        .map_err(|_| VhError::Storage("bad WAL utf8".into()))?,
                }
            }
            12 => LogRecord::MasterEpoch {
                epoch: rd.u64()?,
                node: rd.u64()?,
            },
            13 => {
                let chunk = rd.u32()?;
                let n = rd.u32()? as usize;
                LogRecord::ChunkRewriteBegin {
                    chunk,
                    path: String::from_utf8(rd.take(n)?.to_vec())
                        .map_err(|_| VhError::Storage("bad WAL utf8".into()))?,
                }
            }
            14 => LogRecord::ChunkRewritten {
                chunk: rd.u32()?,
                rows: rd.u64()?,
            },
            t => return Err(VhError::Storage(format!("bad WAL record tag {t}"))),
        })
    }
}

/// Encode a record in the on-disk WAL format for network shipping —
/// §6: "the log actions sent over the network use the same format as in
/// the on-disk transaction log".
pub fn encode_for_shipping(record: &LogRecord, out: &mut Vec<u8>) {
    record.encode(out);
}

/// A write-ahead log backed by one append-only block-store file.
pub struct Wal {
    fs: StoreRef,
    path: String,
    /// The responsible node: all WAL IO is issued from here. Interior-mutable
    /// so failover can move a shared (`Arc`'d) WAL to its new owner.
    home: vectorh_common::sync::RwLock<Option<NodeId>>,
}

/// Does this batch carry a record that must survive an OS crash the moment
/// the append returns? Commit decisions, prepare votes, checkpoints and
/// master-epoch fences are promises made to other participants — they get an
/// fsync. Plain data records ride along until the next such point.
fn has_commit_point(records: &[LogRecord]) -> bool {
    records.iter().any(|r| {
        matches!(
            r,
            LogRecord::Prepare { .. }
                | LogRecord::Commit { .. }
                | LogRecord::GlobalCommit { .. }
                | LogRecord::Checkpoint { .. }
                | LogRecord::MasterEpoch { .. }
        )
    })
}

impl Wal {
    pub fn new(fs: StoreRef, path: impl Into<String>, home: Option<NodeId>) -> Wal {
        Wal {
            fs,
            path: path.into(),
            home: vectorh_common::sync::RwLock::new(home),
        }
    }

    pub fn path(&self) -> &str {
        &self.path
    }

    /// The filesystem this WAL writes through (carries the fault hook).
    pub fn fs(&self) -> &StoreRef {
        &self.fs
    }

    /// The node currently issuing this WAL's IO.
    pub fn home(&self) -> Option<NodeId> {
        *self.home.read()
    }

    pub fn set_home(&self, home: Option<NodeId>) {
        *self.home.write() = home;
    }

    /// Append records (length-framed) and flush to HDFS.
    ///
    /// Consults the filesystem's fault hook at [`FaultSite::WalAppend`]:
    /// `CrashBefore` loses the whole batch, `CrashMid` persists a torn final
    /// frame (every frame is at least 5 bytes, so dropping the last byte
    /// tears exactly one record), `CrashAfter` persists everything. All
    /// three surface as `Err` — the "process" died before acknowledging.
    ///
    /// Durability: if the batch carries a commit-point record (Prepare,
    /// Commit, GlobalCommit, Checkpoint, MasterEpoch), the file is
    /// [`sync`](BlockStore::sync)ed after the append, making the decision
    /// survive an OS crash before anyone acts on it. Crash injections skip
    /// the sync — a process that died mid-append never reached its fsync,
    /// which is exactly the torn-tail state recovery must repair.
    pub fn append(&self, records: &[LogRecord]) -> Result<()> {
        if records.is_empty() {
            return Ok(());
        }
        let mut buf = Vec::new();
        for r in records {
            let mut body = Vec::new();
            r.encode(&mut body);
            put_u32(body.len() as u32, &mut buf);
            buf.extend_from_slice(&body);
        }
        if let Some(hook) = self.fs.fault_hook() {
            let crashed = |what: &str| {
                Err(VhError::Storage(format!(
                    "injected crash {what} WAL append to {}",
                    self.path
                )))
            };
            match hook.decide(FaultSite::WalAppend, &self.path, 0) {
                FaultAction::CrashBefore => return crashed("before"),
                FaultAction::CrashMid => {
                    self.fs
                        .append(&self.path, &buf[..buf.len() - 1], self.home())?;
                    return crashed("during");
                }
                FaultAction::CrashAfter => {
                    self.fs.append(&self.path, &buf, self.home())?;
                    return crashed("after");
                }
                _ => {}
            }
        }
        self.fs.append(&self.path, &buf, self.home())?;
        if has_commit_point(records) {
            self.fs.sync(&self.path)?;
        }
        Ok(())
    }

    /// Read the whole log back (recovery/startup).
    ///
    /// A torn final frame (crash mid-append) is truncated away, not an
    /// error: the record was never acknowledged, so discarding it is the
    /// correct recovery semantics. Replay itself is a fault site
    /// ([`FaultSite::WalReplay`]) so recovery-time IO failures are testable.
    pub fn read_all(&self) -> Result<Vec<LogRecord>> {
        if !self.fs.exists(&self.path) {
            return Ok(vec![]);
        }
        self.fs.consult_fault(FaultSite::WalReplay, &self.path)?;
        let bytes = self.fs.read_all(&self.path, self.home())?;
        let mut out = Vec::new();
        let mut pos = 0usize;
        while pos < bytes.len() {
            if pos + 4 > bytes.len() {
                break; // torn length prefix at the tail: truncate
            }
            let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap()) as usize;
            pos += 4;
            let Some(body) = bytes.get(pos..pos + len) else {
                break; // torn body at the tail: truncate
            };
            pos += len;
            let mut rd = Rd { buf: body, pos: 0 };
            out.push(LogRecord::decode(&mut rd)?);
        }
        Ok(out)
    }

    /// Crash-recovery log repair: scan the frame structure and cut away a
    /// torn tail left by a crash mid-append. [`read_all`](Self::read_all)
    /// tolerates a torn *final* frame, but appending again after one would
    /// shift every later frame boundary — so recovery must repair the log
    /// before it is written to again. Returns the number of bytes trimmed.
    pub fn repair(&self) -> Result<u64> {
        if !self.fs.exists(&self.path) {
            return Ok(0);
        }
        let bytes = self.fs.read_all(&self.path, self.home())?;
        let mut pos = 0usize;
        while pos + 4 <= bytes.len() {
            let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap()) as usize;
            if pos + 4 + len > bytes.len() {
                break;
            }
            pos += 4 + len;
        }
        let torn = (bytes.len() - pos) as u64;
        if torn > 0 {
            self.fs.delete(&self.path)?;
            if pos > 0 {
                self.fs.append(&self.path, &bytes[..pos], self.home())?;
                // The rewritten prefix replaces what was (partly) synced
                // before the crash — make it durable before anyone appends.
                self.fs.sync(&self.path)?;
            }
        }
        Ok(torn)
    }

    /// Records after the last checkpoint (what recovery replays), plus the
    /// checkpointed stable row count.
    pub fn read_since_checkpoint(&self) -> Result<(u64, Vec<LogRecord>)> {
        let all = self.read_all()?;
        let mut stable = 0u64;
        let mut tail_start = 0usize;
        for (i, r) in all.iter().enumerate() {
            if let LogRecord::Checkpoint { stable_rows } = r {
                stable = *stable_rows;
                tail_start = i + 1;
            }
        }
        Ok((stable, all[tail_start..].to_vec()))
    }

    /// Delete the backing file (after a destructive checkpoint rewrite).
    pub fn truncate(&self) -> Result<()> {
        if self.fs.exists(&self.path) {
            self.fs.delete(&self.path)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use vectorh_simhdfs::{DefaultPolicy, SimHdfs, SimHdfsConfig};

    fn wal() -> Wal {
        let fs: StoreRef = Arc::new(SimHdfs::new(
            3,
            SimHdfsConfig {
                block_size: 128,
                default_replication: 2,
            },
            Arc::new(DefaultPolicy::new(5)),
        ));
        Wal::new(fs, "/vectorh/wal/t0-p0.wal", Some(NodeId(1)))
    }

    fn sample_records() -> Vec<LogRecord> {
        vec![
            LogRecord::TxnBegin { txn: 7 },
            LogRecord::Insert {
                txn: 7,
                rid: 3,
                tag: 100,
                values: vec![
                    Value::I64(5),
                    Value::Str("hello".into()),
                    Value::Decimal(125, 2),
                    Value::Date(9000),
                    Value::F64(1.5),
                    Value::Null,
                ],
            },
            LogRecord::Delete { txn: 7, rid: 9 },
            LogRecord::Modify {
                txn: 7,
                rid: 2,
                col: 1,
                value: Value::Str("x".into()),
            },
            LogRecord::Append { txn: 7, rows: 500 },
            LogRecord::Prepare { txn: 7 },
            LogRecord::Commit { txn: 7, seq: 42 },
            LogRecord::GlobalCommit { txn: 7 },
            LogRecord::Abort { txn: 8 },
            LogRecord::MinMax {
                chunk: 1,
                col: 2,
                min: Value::I64(-5),
                max: Value::I64(99),
            },
            LogRecord::Ddl {
                statement: "CREATE TABLE t (x int)".into(),
            },
            LogRecord::MasterEpoch { epoch: 3, node: 2 },
            LogRecord::ChunkRewriteBegin {
                chunk: 2,
                path: "/db/t/p0/chunk-00000007".into(),
            },
            LogRecord::ChunkRewritten {
                chunk: 2,
                rows: 256,
            },
            LogRecord::Checkpoint { stable_rows: 1234 },
        ]
    }

    #[test]
    fn roundtrip_all_record_kinds() {
        let w = wal();
        let records = sample_records();
        w.append(&records).unwrap();
        assert_eq!(w.read_all().unwrap(), records);
    }

    #[test]
    fn multiple_appends_accumulate() {
        let w = wal();
        w.append(&[LogRecord::TxnBegin { txn: 1 }]).unwrap();
        w.append(&[LogRecord::Commit { txn: 1, seq: 1 }]).unwrap();
        let all = w.read_all().unwrap();
        assert_eq!(all.len(), 2);
    }

    #[test]
    fn empty_wal_reads_empty() {
        let w = wal();
        assert!(w.read_all().unwrap().is_empty());
        assert_eq!(w.read_since_checkpoint().unwrap(), (0, vec![]));
    }

    #[test]
    fn checkpoint_splits_replay_tail() {
        let w = wal();
        w.append(&[
            LogRecord::TxnBegin { txn: 1 },
            LogRecord::Commit { txn: 1, seq: 1 },
            LogRecord::Checkpoint { stable_rows: 100 },
            LogRecord::TxnBegin { txn: 2 },
        ])
        .unwrap();
        let (stable, tail) = w.read_since_checkpoint().unwrap();
        assert_eq!(stable, 100);
        assert_eq!(tail, vec![LogRecord::TxnBegin { txn: 2 }]);
    }

    #[test]
    fn truncate_removes_log() {
        let w = wal();
        w.append(&[LogRecord::TxnBegin { txn: 1 }]).unwrap();
        w.truncate().unwrap();
        assert!(w.read_all().unwrap().is_empty());
        w.truncate().unwrap(); // idempotent
    }

    #[test]
    fn wal_io_is_local_to_home_node() {
        let w = wal();
        w.append(&sample_records()).unwrap();
        {
            // fresh reader from home node: all reads short-circuit
            w.read_all().unwrap();
        };
    }

    /// Fires `action` once at `site`, then gets out of the way — models a
    /// crash-and-restart (the restarted process has no fault pending).
    #[derive(Debug)]
    struct OneShot {
        site: FaultSite,
        action: FaultAction,
        fired: std::sync::atomic::AtomicBool,
    }

    impl OneShot {
        fn install(w: &Wal, site: FaultSite, action: FaultAction) {
            w.fs().set_fault_hook(Some(Arc::new(OneShot {
                site,
                action,
                fired: Default::default(),
            })));
        }
    }

    impl vectorh_common::fault::FaultHook for OneShot {
        fn decide(&self, site: FaultSite, _detail: &str, _attempt: u32) -> FaultAction {
            if site == self.site && !self.fired.swap(true, std::sync::atomic::Ordering::SeqCst) {
                self.action
            } else {
                FaultAction::None
            }
        }
    }

    #[test]
    fn crash_before_append_loses_whole_batch() {
        let w = wal();
        OneShot::install(&w, FaultSite::WalAppend, FaultAction::CrashBefore);
        assert!(w.append(&[LogRecord::TxnBegin { txn: 1 }]).is_err());
        assert!(w.read_all().unwrap().is_empty());
    }

    #[test]
    fn crash_mid_append_tears_only_the_last_frame() {
        let w = wal();
        OneShot::install(&w, FaultSite::WalAppend, FaultAction::CrashMid);
        assert!(w
            .append(&[
                LogRecord::TxnBegin { txn: 1 },
                LogRecord::Commit { txn: 1, seq: 9 },
            ])
            .is_err());
        // Recovery truncates the torn tail: the first record survives.
        assert_eq!(w.read_all().unwrap(), vec![LogRecord::TxnBegin { txn: 1 }]);
    }

    #[test]
    fn repair_cuts_torn_tail_so_later_appends_frame_correctly() {
        let w = wal();
        w.append(&[LogRecord::TxnBegin { txn: 1 }]).unwrap();
        OneShot::install(&w, FaultSite::WalAppend, FaultAction::CrashMid);
        assert!(w.append(&[LogRecord::Commit { txn: 1, seq: 0 }]).is_err());
        // Restart: recovery repairs the log, then new transactions append.
        assert!(w.repair().unwrap() > 0);
        assert_eq!(w.repair().unwrap(), 0, "repair is idempotent");
        w.append(&[LogRecord::TxnBegin { txn: 2 }]).unwrap();
        assert_eq!(
            w.read_all().unwrap(),
            vec![
                LogRecord::TxnBegin { txn: 1 },
                LogRecord::TxnBegin { txn: 2 }
            ]
        );
    }

    #[test]
    fn crash_after_append_is_durable() {
        let w = wal();
        let records = sample_records();
        OneShot::install(&w, FaultSite::WalAppend, FaultAction::CrashAfter);
        assert!(w.append(&records).is_err());
        // The write reached HDFS before the crash: everything replays.
        assert_eq!(w.read_all().unwrap(), records);
    }

    #[test]
    fn replay_fault_surfaces_as_error_then_recovers() {
        let w = wal();
        w.append(&[LogRecord::TxnBegin { txn: 4 }]).unwrap();
        OneShot::install(&w, FaultSite::WalReplay, FaultAction::PermanentError);
        assert!(w.read_all().is_err());
        // One-shot: the retried replay (fresh process) succeeds.
        assert_eq!(w.read_all().unwrap(), vec![LogRecord::TxnBegin { txn: 4 }]);
    }

    #[test]
    fn transient_replay_fault_is_retried_internally() {
        let w = wal();
        w.append(&[LogRecord::TxnBegin { txn: 5 }]).unwrap();
        OneShot::install(&w, FaultSite::WalReplay, FaultAction::TransientError);
        // The fs retry loop re-consults the hook; one-shot clears, so the
        // read succeeds without the caller seeing an error.
        assert_eq!(w.read_all().unwrap(), vec![LogRecord::TxnBegin { txn: 5 }]);
    }
}
