//! Snapshot-isolated transactions over stacked PDTs (§6).
//!
//! In-memory state per table partition: a slow-moving **Read-PDT** and a
//! small master **Write-PDT** (both shared by all queries through `Arc`s —
//! commits copy-on-write the master, so running queries keep their
//! snapshot), plus a private **Trans-PDT** per transaction.
//!
//! A transaction logs its updates twice: into its Trans-PDT (so its own
//! scans see its writes) and into a *positional op log* keyed by
//! [`TupleKey`]s resolved at update time. Commit re-resolves those keys
//! against the advanced master state — that is the "PDT serialization"
//! of the paper — and implements optimistic concurrency control: if any
//! tuple this transaction wrote (or anchored an insert on) was touched by a
//! transaction that committed after our snapshot, we abort with a
//! write-write conflict at tuple granularity.
//!
//! Durability: commit hands the resolved records to a `persist` callback
//! (the engine writes partition WALs + the global 2PC decision) *before*
//! mutating the master state.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use vectorh_common::sync::RwLock;
use vectorh_common::{PartitionId, Result, Value, VhError};
use vectorh_pdt::tree::Pdt;
use vectorh_pdt::{Layers, MergeStep, TupleKey};

use crate::wal::LogRecord;

/// Tuning thresholds (§6: propagation is triggered by PDT size and by the
/// fraction of tuples resident in memory).
#[derive(Debug, Clone)]
pub struct TxnConfig {
    /// Propagate when a partition's PDT memory exceeds this.
    pub propagate_mem_bytes: usize,
    /// ... or when PDT rows exceed this fraction of stable rows.
    pub propagate_fraction: f64,
    /// Roll Write-PDT into Read-PDT beyond this entry count.
    pub write_to_read_entries: usize,
}

impl Default for TxnConfig {
    fn default() -> Self {
        TxnConfig {
            propagate_mem_bytes: 4 << 20,
            propagate_fraction: 0.10,
            write_to_read_entries: 8192,
        }
    }
}

/// Shared per-partition update state.
#[derive(Clone)]
pub struct PartitionTxnState {
    pub stable_len: u64,
    pub read: Arc<Pdt>,
    pub write: Arc<Pdt>,
}

impl PartitionTxnState {
    fn image_len(&self) -> u64 {
        self.write.image_len(self.read.image_len(self.stable_len))
    }

    fn layers(&self) -> Layers<'_> {
        Layers::new(self.stable_len, vec![&self.read, &self.write])
    }
}

/// One logged update, keyed positionally by tuple identity.
#[derive(Debug, Clone)]
enum Op {
    Ins {
        anchor: Option<TupleKey>,
        at_end: bool,
        values: Vec<Value>,
        tag: u64,
    },
    Del {
        key: TupleKey,
    },
    Mod {
        key: TupleKey,
        col: usize,
        value: Value,
    },
}

/// An open transaction.
pub struct Transaction {
    pub id: u64,
    version: u64,
    snapshots: HashMap<PartitionId, PartitionTxnState>,
    trans: HashMap<PartitionId, Pdt>,
    ops: Vec<(PartitionId, Op)>,
    /// Tuples written (for conflict detection).
    write_set: HashSet<(PartitionId, TupleKey)>,
    /// Anchors our inserts depend on (conservatively conflict-checked too).
    anchor_set: HashSet<(PartitionId, TupleKey)>,
    /// Tags of our own pending inserts.
    own_tags: HashSet<u64>,
}

impl Transaction {
    /// Rows visible to this transaction in a partition.
    pub fn image_len(&self, pid: PartitionId) -> Result<u64> {
        let snap = self.snapshot(pid)?;
        let trans = self.trans.get(&pid);
        let base = snap.image_len();
        Ok(trans.map(|t| t.image_len(base)).unwrap_or(base))
    }

    fn snapshot(&self, pid: PartitionId) -> Result<&PartitionTxnState> {
        self.snapshots
            .get(&pid)
            .ok_or_else(|| VhError::TxnAbort(format!("partition {pid} not in snapshot")))
    }

    /// Merge plan reflecting this transaction's view (stable coordinates).
    pub fn merged_plan(&self, pid: PartitionId) -> Result<Vec<MergeStep>> {
        let snap = self.snapshot(pid)?;
        let mut layers = vec![snap.read.as_ref(), snap.write.as_ref()];
        if let Some(t) = self.trans.get(&pid) {
            layers.push(t);
        }
        Ok(Layers::new(snap.stable_len, layers).merged_plan())
    }

    /// Resolve a visible RID to its tuple identity (through all layers).
    fn locate(&self, pid: PartitionId, rid: u64) -> Result<TupleKey> {
        let snap = self.snapshot(pid)?;
        let empty;
        let trans: &Pdt = match self.trans.get(&pid) {
            Some(t) => t,
            None => {
                empty = Pdt::new();
                &empty
            }
        };
        Layers::new(
            snap.stable_len,
            vec![snap.read.as_ref(), snap.write.as_ref(), trans],
        )
        .locate(rid)
    }
}

struct MgrInner {
    partitions: HashMap<PartitionId, PartitionTxnState>,
    next_txn: u64,
    next_tag: u64,
    commit_seq: u64,
    /// (seq, touched tuple keys) of committed transactions.
    commit_log: Vec<(u64, HashSet<(PartitionId, TupleKey)>)>,
    /// Active transactions per partition (blocks propagation).
    active: HashMap<PartitionId, usize>,
    /// Partitions with a propagation in flight. Transactions must not
    /// begin on a latched partition: a txn that starts after
    /// `begin_propagation` snapshotted the merge plan and commits before
    /// `finish_propagation` resets the PDTs would be silently erased by
    /// the reset — the lost-update race the latch closes.
    propagating: HashSet<PartitionId>,
}

/// The transaction manager (session-master role).
pub struct TransactionManager {
    inner: RwLock<MgrInner>,
    pub config: TxnConfig,
}

impl TransactionManager {
    pub fn new(config: TxnConfig) -> TransactionManager {
        TransactionManager {
            inner: RwLock::new(MgrInner {
                partitions: HashMap::new(),
                next_txn: 1,
                next_tag: 1,
                commit_seq: 0,
                commit_log: Vec::new(),
                active: HashMap::new(),
                propagating: HashSet::new(),
            }),
            config,
        }
    }

    /// Register a partition (stable rows currently on disk).
    pub fn register_partition(&self, pid: PartitionId, stable_len: u64) {
        let mut inner = self.inner.write();
        inner.propagating.remove(&pid);
        inner.partitions.insert(
            pid,
            PartitionTxnState {
                stable_len,
                read: Arc::new(Pdt::new()),
                write: Arc::new(Pdt::new()),
            },
        );
    }

    /// Current shared state of a partition (for read-only scans).
    pub fn partition_state(&self, pid: PartitionId) -> Result<PartitionTxnState> {
        self.inner
            .read()
            .partitions
            .get(&pid)
            .cloned()
            .ok_or_else(|| VhError::TxnAbort(format!("unknown partition {pid}")))
    }

    /// Merge plan for a read-only scan at the latest committed state.
    pub fn scan_plan(&self, pid: PartitionId) -> Result<Vec<MergeStep>> {
        Ok(self.partition_state(pid)?.layers().merged_plan())
    }

    /// Visible rows of the latest committed state.
    pub fn visible_rows(&self, pid: PartitionId) -> Result<u64> {
        Ok(self.partition_state(pid)?.image_len())
    }

    /// Begin a transaction snapshotting the given partitions.
    pub fn begin(&self, pids: &[PartitionId]) -> Result<Transaction> {
        let mut inner = self.inner.write();
        let id = inner.next_txn;
        inner.next_txn += 1;
        let version = inner.commit_seq;
        for pid in pids {
            if inner.propagating.contains(pid) {
                return Err(VhError::TxnAbort(format!(
                    "partition {pid} is propagating; retry shortly"
                )));
            }
        }
        let mut snapshots = HashMap::new();
        for pid in pids {
            let st = inner
                .partitions
                .get(pid)
                .cloned()
                .ok_or_else(|| VhError::TxnAbort(format!("unknown partition {pid}")))?;
            snapshots.insert(*pid, st);
            *inner.active.entry(*pid).or_insert(0) += 1;
        }
        Ok(Transaction {
            id,
            version,
            snapshots,
            trans: HashMap::new(),
            ops: Vec::new(),
            write_set: HashSet::new(),
            anchor_set: HashSet::new(),
            own_tags: HashSet::new(),
        })
    }

    fn fresh_tag(&self) -> u64 {
        let mut inner = self.inner.write();
        let t = inner.next_tag;
        inner.next_tag += 1;
        t
    }

    /// Insert `values` so the new row lands at `rid` in the transaction's
    /// current image of `pid`.
    pub fn insert_at(
        &self,
        txn: &mut Transaction,
        pid: PartitionId,
        rid: u64,
        values: Vec<Value>,
    ) -> Result<()> {
        let image = txn.image_len(pid)?;
        if rid > image {
            return Err(VhError::TxnAbort(format!(
                "insert rid {rid} > image {image}"
            )));
        }
        let at_end = rid == image;
        // Anchor on the row currently before the insert point.
        let anchor = if at_end || rid == 0 {
            None
        } else {
            let key = txn.locate(pid, rid - 1)?;
            txn.anchor_set.insert((pid, key));
            Some(key)
        };
        let tag = self.fresh_tag();
        txn.own_tags.insert(tag);
        let snap_len = txn.snapshot(pid)?.image_len();
        txn.trans
            .entry(pid)
            .or_default()
            .insert_at(rid, values.clone(), tag, snap_len)?;
        txn.ops.push((
            pid,
            Op::Ins {
                anchor,
                at_end,
                values,
                tag,
            },
        ));
        Ok(())
    }

    /// Delete the row at `rid` of the transaction's image.
    pub fn delete_at(&self, txn: &mut Transaction, pid: PartitionId, rid: u64) -> Result<()> {
        let key = txn.locate(pid, rid)?;
        let snap_len = txn.snapshot(pid)?.image_len();
        txn.trans.entry(pid).or_default().delete_at(rid, snap_len)?;
        match key {
            TupleKey::Tagged(tag) if txn.own_tags.contains(&tag) => {
                // Deleting our own pending insert: cancel the op.
                txn.ops.retain(|(p, op)| {
                    !(*p == pid && matches!(op, Op::Ins { tag: t, .. } if *t == tag))
                });
                txn.own_tags.remove(&tag);
            }
            key => {
                txn.write_set.insert((pid, key));
                txn.ops.push((pid, Op::Del { key }));
            }
        }
        Ok(())
    }

    /// Modify a column of the row at `rid` of the transaction's image.
    pub fn modify_at(
        &self,
        txn: &mut Transaction,
        pid: PartitionId,
        rid: u64,
        col: usize,
        value: Value,
    ) -> Result<()> {
        let key = txn.locate(pid, rid)?;
        let snap_len = txn.snapshot(pid)?.image_len();
        txn.trans
            .entry(pid)
            .or_default()
            .modify_at(rid, col, value.clone(), snap_len)?;
        match key {
            TupleKey::Tagged(tag) if txn.own_tags.contains(&tag) => {
                // Patch our own pending insert in the op log.
                for (p, op) in txn.ops.iter_mut() {
                    if *p == pid {
                        if let Op::Ins { tag: t, values, .. } = op {
                            if *t == tag {
                                values[col] = value.clone();
                            }
                        }
                    }
                }
            }
            key => {
                txn.write_set.insert((pid, key));
                txn.ops.push((pid, Op::Mod { key, col, value }));
            }
        }
        Ok(())
    }

    /// Abort: release snapshot references.
    pub fn abort(&self, txn: Transaction) {
        let mut inner = self.inner.write();
        for pid in txn.snapshots.keys() {
            if let Some(n) = inner.active.get_mut(pid) {
                *n = n.saturating_sub(1);
            }
        }
    }

    /// Commit. Detects write-write conflicts, resolves positions against the
    /// advanced master state, persists via `persist` (partition →
    /// WAL records), then installs the new master Write-PDTs (copy-on-write).
    pub fn commit<F>(&self, txn: Transaction, mut persist: F) -> Result<u64>
    where
        F: FnMut(PartitionId, &[LogRecord]) -> Result<()>,
    {
        let mut inner = self.inner.write();
        let result = Self::commit_locked(&mut inner, &txn, &mut persist);
        // Release snapshot references on EVERY path — success, conflict,
        // resolution failure, or persist (WAL) error. Leaking them would
        // block propagation on the partition forever.
        for pid in txn.snapshots.keys() {
            if let Some(n) = inner.active.get_mut(pid) {
                *n = n.saturating_sub(1);
            }
        }
        result
    }

    fn commit_locked(
        inner: &mut MgrInner,
        txn: &Transaction,
        persist: &mut dyn FnMut(PartitionId, &[LogRecord]) -> Result<()>,
    ) -> Result<u64> {
        // 1. Optimistic validation at tuple granularity.
        for (seq, keys) in inner.commit_log.iter().rev() {
            if *seq <= txn.version {
                break;
            }
            for k in txn.write_set.iter().chain(txn.anchor_set.iter()) {
                if keys.contains(k) {
                    return Err(VhError::TxnAbort(format!(
                        "write-write conflict on {k:?} (committed seq {seq} > snapshot {})",
                        txn.version
                    )));
                }
            }
        }

        // 2. Resolve ops against current master state into WAL records,
        //    applying to cloned Write-PDTs as we go (positions depend on
        //    earlier ops of this very transaction).
        let mut new_writes: HashMap<PartitionId, Pdt> = HashMap::new();
        let mut records: HashMap<PartitionId, Vec<LogRecord>> = HashMap::new();
        let mut stables: HashMap<PartitionId, (u64, Arc<Pdt>)> = HashMap::new();
        for (pid, st) in &txn.snapshots {
            // Snapshot read-layer Arc is reused: Read-PDT only changes under
            // propagation, which is blocked while transactions are active.
            let cur = inner
                .partitions
                .get(pid)
                .ok_or_else(|| VhError::TxnAbort("partition vanished".into()))?;
            new_writes.insert(*pid, (*cur.write).clone());
            stables.insert(*pid, (cur.stable_len, cur.read.clone()));
            let _ = st;
        }
        for (pid, op) in &txn.ops {
            let (stable_len, read) = stables
                .get(pid)
                .ok_or_else(|| VhError::TxnAbort("op on unsnapshotted partition".into()))?
                .clone();
            let write = new_writes
                .get_mut(pid)
                .ok_or_else(|| VhError::TxnAbort("op on unsnapshotted partition".into()))?;
            let write_base = read.image_len(stable_len);
            let rid_of_key = |write: &Pdt, key: TupleKey| -> Option<u64> {
                // Identity through read layer, then write layer.
                match key {
                    TupleKey::Stable(sid) => {
                        let r1 = read.rid_of_stable(sid)?;
                        write.rid_of_stable(r1)
                    }
                    TupleKey::Tagged(tag) => {
                        if let Some(r) = write.rid_of_tag(tag) {
                            Some(r)
                        } else {
                            let r1 = read.rid_of_tag(tag)?;
                            write.rid_of_stable(r1)
                        }
                    }
                }
            };
            let recs = records.entry(*pid).or_default();
            if recs.is_empty() {
                recs.push(LogRecord::TxnBegin { txn: txn.id });
            }
            match op {
                Op::Ins {
                    anchor,
                    at_end,
                    values,
                    tag,
                } => {
                    let rid = if *at_end {
                        write.image_len(write_base)
                    } else {
                        match anchor {
                            None => 0,
                            Some(key) => {
                                let r = rid_of_key(write, *key).ok_or_else(|| {
                                    VhError::TxnAbort("insert anchor vanished".into())
                                })?;
                                r + 1
                            }
                        }
                    };
                    write.insert_at(rid, values.clone(), *tag, write_base)?;
                    recs.push(LogRecord::Insert {
                        txn: txn.id,
                        rid,
                        tag: *tag,
                        values: values.clone(),
                    });
                }
                Op::Del { key } => {
                    let rid = rid_of_key(write, *key)
                        .ok_or_else(|| VhError::TxnAbort("deleted tuple vanished".into()))?;
                    write.delete_at(rid, write_base)?;
                    recs.push(LogRecord::Delete { txn: txn.id, rid });
                }
                Op::Mod { key, col, value } => {
                    let rid = rid_of_key(write, *key)
                        .ok_or_else(|| VhError::TxnAbort("modified tuple vanished".into()))?;
                    write.modify_at(rid, *col, value.clone(), write_base)?;
                    recs.push(LogRecord::Modify {
                        txn: txn.id,
                        rid,
                        col: *col as u32,
                        value: value.clone(),
                    });
                }
            }
        }

        // 3. Persist (WAL-before-apply).
        let seq = inner.commit_seq + 1;
        for (pid, recs) in &mut records {
            recs.push(LogRecord::Commit { txn: txn.id, seq });
            persist(*pid, recs)?;
        }

        // 4. Install new master Write-PDTs.
        for (pid, w) in new_writes {
            if let Some(st) = inner.partitions.get_mut(&pid) {
                st.write = Arc::new(w);
            }
        }
        inner.commit_seq = seq;
        let mut touched = txn.write_set.clone();
        // Fresh inserts are conflict-relevant for later txns that modify
        // them; register each under its tag, attributed to the partition of
        // its own insert op (an own_tag always has a surviving Ins op —
        // deleting a pending insert removes both the op and the tag).
        for (p, op) in &txn.ops {
            if let Op::Ins { tag, .. } = op {
                if txn.own_tags.contains(tag) {
                    touched.insert((*p, TupleKey::Tagged(*tag)));
                }
            }
        }
        inner.commit_log.push((seq, touched));
        Ok(seq)
    }

    /// Should this partition be propagated? (size/fraction policy of §6)
    pub fn needs_propagation(&self, pid: PartitionId) -> bool {
        let inner = self.inner.read();
        let Some(st) = inner.partitions.get(&pid) else {
            return false;
        };
        let mem = st.read.mem_bytes() + st.write.mem_bytes();
        let entries = (st.read.n_entries() + st.write.n_entries()) as f64;
        mem > self.config.propagate_mem_bytes
            || (st.stable_len > 0
                && entries / st.stable_len as f64 > self.config.propagate_fraction)
    }

    /// Roll the master Write-PDT into the Read-PDT ("changes from Write-PDT
    /// are propagated to the Read-PDT when the size of the Write-PDT reaches
    /// a threshold").
    pub fn roll_write_into_read(&self, pid: PartitionId) -> Result<()> {
        let mut inner = self.inner.write();
        let st = inner
            .partitions
            .get_mut(&pid)
            .ok_or_else(|| VhError::TxnAbort(format!("unknown partition {pid}")))?;
        let mut read = (*st.read).clone();
        st.write.propagate_into(&mut read, st.stable_len)?;
        st.read = Arc::new(read);
        st.write = Arc::new(Pdt::new());
        Ok(())
    }

    /// Begin update propagation: returns the merge plan to apply to storage
    /// and latches the partition — transactions cannot begin on it until
    /// [`finish_propagation`](Self::finish_propagation) or
    /// [`abort_propagation`](Self::abort_propagation) releases the latch.
    /// Fails while transactions are active on the partition (or another
    /// propagation holds the latch).
    pub fn begin_propagation(&self, pid: PartitionId) -> Result<(u64, Vec<MergeStep>)> {
        let mut inner = self.inner.write();
        if inner.active.get(&pid).copied().unwrap_or(0) > 0 {
            return Err(VhError::TxnAbort(format!(
                "cannot propagate {pid}: transactions active"
            )));
        }
        if !inner.propagating.insert(pid) {
            return Err(VhError::TxnAbort(format!(
                "cannot propagate {pid}: propagation already in flight"
            )));
        }
        let st = match inner.partitions.get(&pid) {
            Some(st) => st,
            None => {
                inner.propagating.remove(&pid);
                return Err(VhError::TxnAbort(format!("unknown partition {pid}")));
            }
        };
        Ok((st.stable_len, st.layers().merged_plan()))
    }

    /// Finish propagation: the storage now holds `new_stable_len` rows with
    /// all differences applied; PDTs reset and the latch released.
    pub fn finish_propagation(&self, pid: PartitionId, new_stable_len: u64) -> Result<()> {
        let mut inner = self.inner.write();
        inner.propagating.remove(&pid);
        let st = inner
            .partitions
            .get_mut(&pid)
            .ok_or_else(|| VhError::TxnAbort(format!("unknown partition {pid}")))?;
        st.stable_len = new_stable_len;
        st.read = Arc::new(Pdt::new());
        st.write = Arc::new(Pdt::new());
        Ok(())
    }

    /// Abandon a propagation without touching the PDTs — the no-op path
    /// (nothing to flush) and every error path, where the PDT contents must
    /// stay live because storage still holds the old image.
    pub fn abort_propagation(&self, pid: PartitionId) {
        self.inner.write().propagating.remove(&pid);
    }

    /// Bulk append of stable rows (direct-to-disk path for large loads; the
    /// paper: "large inserts to unordered tables are appended directly on
    /// disk"). Adjusts stable_len; PDT sids are unaffected only when the
    /// partition has no pending deletes/inserts before the end, so this is
    /// restricted to clean partitions.
    pub fn bulk_append(&self, pid: PartitionId, rows: u64) -> Result<()> {
        let mut inner = self.inner.write();
        let st = inner
            .partitions
            .get_mut(&pid)
            .ok_or_else(|| VhError::TxnAbort(format!("unknown partition {pid}")))?;
        if !st.read.is_empty() || !st.write.is_empty() {
            return Err(VhError::TxnAbort(
                "bulk append requires empty PDTs (propagate first)".into(),
            ));
        }
        st.stable_len += rows;
        Ok(())
    }

    /// Replay WAL records into a partition's master Write-PDT (startup
    /// recovery by the responsible node). Only records of committed
    /// transactions must be passed in.
    pub fn replay(&self, pid: PartitionId, records: &[LogRecord]) -> Result<()> {
        let mut inner = self.inner.write();
        let st = inner
            .partitions
            .get_mut(&pid)
            .ok_or_else(|| VhError::TxnAbort(format!("unknown partition {pid}")))?;
        let mut write = (*st.write).clone();
        let base = st.read.image_len(st.stable_len);
        for r in records {
            match r {
                LogRecord::Insert {
                    rid, tag, values, ..
                } => {
                    write.insert_at(*rid, values.clone(), *tag, base)?;
                }
                LogRecord::Delete { rid, .. } => {
                    write.delete_at(*rid, base)?;
                }
                LogRecord::Modify {
                    rid, col, value, ..
                } => {
                    write.modify_at(*rid, *col as usize, value.clone(), base)?;
                }
                _ => {}
            }
        }
        st.write = Arc::new(write);
        Ok(())
    }

    /// Failover takeover: (re)register a partition at `stable_len` and
    /// replay the committed `records` into it, under ONE write lock. The
    /// separate `register_partition` + `replay` sequence has a window where
    /// a concurrent query sees registered-but-unreplayed (empty) state;
    /// takeover after a node death must never expose that. Queries holding
    /// the old state's `Arc`s keep a consistent (identical) image.
    pub fn recover_partition(
        &self,
        pid: PartitionId,
        stable_len: u64,
        records: &[LogRecord],
    ) -> Result<()> {
        let mut inner = self.inner.write();
        let mut write = Pdt::new();
        for r in records {
            match r {
                LogRecord::Insert {
                    rid, tag, values, ..
                } => {
                    write.insert_at(*rid, values.clone(), *tag, stable_len)?;
                }
                LogRecord::Delete { rid, .. } => {
                    write.delete_at(*rid, stable_len)?;
                }
                LogRecord::Modify {
                    rid, col, value, ..
                } => {
                    write.modify_at(*rid, *col as usize, value.clone(), stable_len)?;
                }
                _ => {}
            }
        }
        inner.propagating.remove(&pid);
        inner.partitions.insert(
            pid,
            PartitionTxnState {
                stable_len,
                read: Arc::new(Pdt::new()),
                write: Arc::new(write),
            },
        );
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vectorh_pdt::merge::apply_plan;

    fn v(i: i64) -> Vec<Value> {
        vec![Value::I64(i)]
    }

    fn stable_rows(n: u64) -> Vec<Vec<Value>> {
        (0..n as i64).map(v).collect()
    }

    fn mgr_with(pid: PartitionId, stable: u64) -> TransactionManager {
        let m = TransactionManager::new(TxnConfig::default());
        m.register_partition(pid, stable);
        m
    }

    fn materialize(m: &TransactionManager, pid: PartitionId, stable: u64) -> Vec<Vec<Value>> {
        apply_plan(&m.scan_plan(pid).unwrap(), &stable_rows(stable))
    }

    const P: PartitionId = PartitionId(0);

    #[test]
    fn commit_makes_updates_visible() {
        let m = mgr_with(P, 5);
        let mut t = m.begin(&[P]).unwrap();
        m.insert_at(&mut t, P, 2, v(100)).unwrap();
        m.delete_at(&mut t, P, 0).unwrap();
        m.modify_at(&mut t, P, 4, 0, Value::I64(-4)).unwrap();
        // Not yet visible to others.
        assert_eq!(materialize(&m, P, 5), stable_rows(5));
        // But visible to itself.
        let own = apply_plan(&t.merged_plan(P).unwrap(), &stable_rows(5));
        assert_eq!(own.len(), 5);
        assert_eq!(own[1][0], Value::I64(100));
        m.commit(t, |_, _| Ok(())).unwrap();
        let rows = materialize(&m, P, 5);
        assert_eq!(rows.len(), 5);
        assert_eq!(rows[1][0], Value::I64(100));
        assert_eq!(rows[4][0], Value::I64(-4));
    }

    #[test]
    fn snapshot_isolation_hides_concurrent_commits() {
        let m = mgr_with(P, 4);
        let t_reader = m.begin(&[P]).unwrap();
        let mut t_writer = m.begin(&[P]).unwrap();
        m.delete_at(&mut t_writer, P, 0).unwrap();
        m.commit(t_writer, |_, _| Ok(())).unwrap();
        // Reader's snapshot still sees 4 rows.
        let seen = apply_plan(&t_reader.merged_plan(P).unwrap(), &stable_rows(4));
        assert_eq!(seen.len(), 4);
        // New scans see 3.
        assert_eq!(materialize(&m, P, 4).len(), 3);
        m.abort(t_reader);
    }

    #[test]
    fn write_write_conflict_aborts() {
        let m = mgr_with(P, 4);
        let mut t1 = m.begin(&[P]).unwrap();
        let mut t2 = m.begin(&[P]).unwrap();
        m.modify_at(&mut t1, P, 2, 0, Value::I64(1)).unwrap();
        m.modify_at(&mut t2, P, 2, 0, Value::I64(2)).unwrap();
        m.commit(t1, |_, _| Ok(())).unwrap();
        let err = m.commit(t2, |_, _| Ok(())).unwrap_err();
        assert!(matches!(err, VhError::TxnAbort(_)), "{err}");
    }

    #[test]
    fn disjoint_writes_both_commit() {
        let m = mgr_with(P, 4);
        let mut t1 = m.begin(&[P]).unwrap();
        let mut t2 = m.begin(&[P]).unwrap();
        m.modify_at(&mut t1, P, 1, 0, Value::I64(11)).unwrap();
        m.modify_at(&mut t2, P, 3, 0, Value::I64(33)).unwrap();
        m.commit(t1, |_, _| Ok(())).unwrap();
        m.commit(t2, |_, _| Ok(())).unwrap();
        let rows = materialize(&m, P, 4);
        assert_eq!(rows[1][0], Value::I64(11));
        assert_eq!(rows[3][0], Value::I64(33));
    }

    #[test]
    fn concurrent_inserts_commute() {
        let m = mgr_with(P, 2);
        let mut t1 = m.begin(&[P]).unwrap();
        let mut t2 = m.begin(&[P]).unwrap();
        m.insert_at(&mut t1, P, 1, v(100)).unwrap(); // after stable row 0
        m.insert_at(&mut t2, P, 2, v(200)).unwrap(); // at end-ish (after row 1)
        m.commit(t1, |_, _| Ok(())).unwrap();
        m.commit(t2, |_, _| Ok(())).unwrap();
        let rows = materialize(&m, P, 2);
        assert_eq!(rows.len(), 4);
        let vals: Vec<i64> = rows.iter().map(|r| r[0].as_i64().unwrap()).collect();
        assert!(vals.contains(&100) && vals.contains(&200), "{vals:?}");
        // t1's insert anchored after row 0.
        assert_eq!(vals[0], 0);
        assert_eq!(vals[1], 100);
    }

    #[test]
    fn delete_of_own_insert_leaves_no_trace() {
        let m = mgr_with(P, 3);
        let mut t = m.begin(&[P]).unwrap();
        m.insert_at(&mut t, P, 1, v(42)).unwrap();
        m.delete_at(&mut t, P, 1).unwrap();
        m.commit(t, |_, _| Ok(())).unwrap();
        assert_eq!(materialize(&m, P, 3), stable_rows(3));
    }

    #[test]
    fn modify_of_own_insert_folds_into_insert() {
        let m = mgr_with(P, 1);
        let mut t = m.begin(&[P]).unwrap();
        m.insert_at(&mut t, P, 0, v(1)).unwrap();
        m.modify_at(&mut t, P, 0, 0, Value::I64(99)).unwrap();
        let mut wal_records = Vec::new();
        m.commit(t, |_, recs| {
            wal_records.extend(recs.to_vec());
            Ok(())
        })
        .unwrap();
        let rows = materialize(&m, P, 1);
        assert_eq!(rows[0][0], Value::I64(99));
        // No Modify record: the patch folded into the insert.
        assert!(wal_records
            .iter()
            .all(|r| !matches!(r, LogRecord::Modify { .. })));
    }

    #[test]
    fn anchor_conflict_aborts_insert() {
        let m = mgr_with(P, 4);
        let mut t1 = m.begin(&[P]).unwrap();
        let mut t2 = m.begin(&[P]).unwrap();
        // t2 inserts after row 2; t1 deletes row 2 and commits first.
        m.delete_at(&mut t1, P, 2).unwrap();
        m.insert_at(&mut t2, P, 3, v(7)).unwrap();
        m.commit(t1, |_, _| Ok(())).unwrap();
        assert!(m.commit(t2, |_, _| Ok(())).is_err());
    }

    #[test]
    fn wal_persistence_callback_sees_resolved_records() {
        let m = mgr_with(P, 3);
        let mut t = m.begin(&[P]).unwrap();
        m.delete_at(&mut t, P, 1).unwrap();
        let mut got: Vec<LogRecord> = vec![];
        m.commit(t, |pid, recs| {
            assert_eq!(pid, P);
            got.extend(recs.to_vec());
            Ok(())
        })
        .unwrap();
        assert!(matches!(got[0], LogRecord::TxnBegin { .. }));
        assert!(matches!(got[1], LogRecord::Delete { rid: 1, .. }));
        assert!(matches!(got.last(), Some(LogRecord::Commit { .. })));
    }

    #[test]
    fn replay_reproduces_state() {
        let m = mgr_with(P, 5);
        let mut t = m.begin(&[P]).unwrap();
        m.insert_at(&mut t, P, 0, v(-1)).unwrap();
        m.delete_at(&mut t, P, 3).unwrap();
        let mut recs = Vec::new();
        m.commit(t, |_, r| {
            recs.extend(r.to_vec());
            Ok(())
        })
        .unwrap();
        let expect = materialize(&m, P, 5);

        let m2 = mgr_with(P, 5);
        m2.replay(P, &recs).unwrap();
        assert_eq!(materialize(&m2, P, 5), expect);
    }

    #[test]
    fn recover_partition_is_atomic_register_plus_replay() {
        let m = mgr_with(P, 5);
        let mut t = m.begin(&[P]).unwrap();
        m.insert_at(&mut t, P, 0, v(-1)).unwrap();
        m.delete_at(&mut t, P, 3).unwrap();
        let mut recs = Vec::new();
        m.commit(t, |_, r| {
            recs.extend(r.to_vec());
            Ok(())
        })
        .unwrap();
        let expect = materialize(&m, P, 5);

        // A taking-over node recovers in one step, even over a previously
        // registered (stale) partition state.
        let m2 = mgr_with(P, 999);
        m2.recover_partition(P, 5, &recs).unwrap();
        assert_eq!(materialize(&m2, P, 5), expect);
        // And the recovered state accepts new transactions.
        let mut t2 = m2.begin(&[P]).unwrap();
        m2.modify_at(&mut t2, P, 0, 0, Value::I64(77)).unwrap();
        m2.commit(t2, |_, _| Ok(())).unwrap();
        assert_eq!(materialize(&m2, P, 5)[0][0], Value::I64(77));
    }

    #[test]
    fn propagation_lifecycle() {
        let m = mgr_with(P, 4);
        let mut t = m.begin(&[P]).unwrap();
        m.insert_at(&mut t, P, 4, v(99)).unwrap();
        m.commit(t, |_, _| Ok(())).unwrap();
        let (stable, plan) = m.begin_propagation(P).unwrap();
        assert_eq!(stable, 4);
        let new_rows = apply_plan(&plan, &stable_rows(4));
        assert_eq!(new_rows.len(), 5);
        m.finish_propagation(P, 5).unwrap();
        assert_eq!(m.visible_rows(P).unwrap(), 5);
        assert!(
            m.scan_plan(P).unwrap().len() == 1,
            "clean plan after propagation"
        );
    }

    #[test]
    fn propagation_blocked_by_active_txn() {
        let m = mgr_with(P, 4);
        let t = m.begin(&[P]).unwrap();
        assert!(m.begin_propagation(P).is_err());
        m.abort(t);
        assert!(m.begin_propagation(P).is_ok());
    }

    #[test]
    fn propagation_latch_blocks_new_txns_until_released() {
        let m = mgr_with(P, 4);
        let (_, _) = m.begin_propagation(P).unwrap();
        // The latch closes the lost-update window: a txn beginning here
        // could commit into PDTs that finish_propagation is about to reset.
        assert!(m.begin(&[P]).is_err());
        // A second propagation cannot double-latch.
        assert!(m.begin_propagation(P).is_err());
        m.finish_propagation(P, 4).unwrap();
        m.abort(m.begin(&[P]).unwrap());
        // Abort releases without resetting PDTs.
        let (_, _) = m.begin_propagation(P).unwrap();
        m.abort_propagation(P);
        let mut t = m.begin(&[P]).unwrap();
        m.modify_at(&mut t, P, 0, 0, Value::I64(5)).unwrap();
        m.commit(t, |_, _| Ok(())).unwrap();
        assert_eq!(materialize(&m, P, 4)[0][0], Value::I64(5));
        // recover_partition clears a latch left by a crashed propagator.
        let (_, _) = m.begin_propagation(P).unwrap();
        m.recover_partition(P, 4, &[]).unwrap();
        assert!(m.begin(&[P]).is_ok());
    }

    #[test]
    fn roll_write_into_read_preserves_image() {
        let m = mgr_with(P, 6);
        let mut t = m.begin(&[P]).unwrap();
        m.insert_at(&mut t, P, 3, v(33)).unwrap();
        m.delete_at(&mut t, P, 0).unwrap();
        m.commit(t, |_, _| Ok(())).unwrap();
        let before = materialize(&m, P, 6);
        m.roll_write_into_read(P).unwrap();
        assert_eq!(materialize(&m, P, 6), before);
        let st = m.partition_state(P).unwrap();
        assert!(st.write.is_empty());
        assert!(!st.read.is_empty());
        // And further updates still work on top.
        let mut t2 = m.begin(&[P]).unwrap();
        m.modify_at(&mut t2, P, 1, 0, Value::I64(-9)).unwrap();
        m.commit(t2, |_, _| Ok(())).unwrap();
        assert_eq!(materialize(&m, P, 6)[1][0], Value::I64(-9));
    }

    #[test]
    fn bulk_append_requires_clean_pdts() {
        let m = mgr_with(P, 10);
        m.bulk_append(P, 5).unwrap();
        assert_eq!(m.visible_rows(P).unwrap(), 15);
        let mut t = m.begin(&[P]).unwrap();
        m.delete_at(&mut t, P, 0).unwrap();
        m.commit(t, |_, _| Ok(())).unwrap();
        assert!(m.bulk_append(P, 5).is_err());
    }

    #[test]
    fn failed_persist_releases_snapshot_refs() {
        let m = mgr_with(P, 4);
        let mut t = m.begin(&[P]).unwrap();
        m.delete_at(&mut t, P, 0).unwrap();
        let err = m
            .commit(t, |_, _| {
                Err(VhError::Storage("injected WAL failure".into()))
            })
            .unwrap_err();
        assert!(matches!(err, VhError::Storage(_)), "{err}");
        // The failed commit must not leak its active-txn reference, or the
        // partition could never be propagated again.
        assert!(m.begin_propagation(P).is_ok());
        // And the master state is untouched: the delete never landed.
        assert_eq!(materialize(&m, P, 4), stable_rows(4));
    }

    #[test]
    fn conflict_abort_releases_snapshot_refs() {
        let m = mgr_with(P, 4);
        let mut t1 = m.begin(&[P]).unwrap();
        let mut t2 = m.begin(&[P]).unwrap();
        m.modify_at(&mut t1, P, 2, 0, Value::I64(1)).unwrap();
        m.modify_at(&mut t2, P, 2, 0, Value::I64(2)).unwrap();
        m.commit(t1, |_, _| Ok(())).unwrap();
        assert!(m.commit(t2, |_, _| Ok(())).is_err());
        assert!(m.begin_propagation(P).is_ok());
    }

    #[test]
    fn needs_propagation_by_fraction() {
        let m = TransactionManager::new(TxnConfig {
            propagate_mem_bytes: usize::MAX,
            propagate_fraction: 0.5,
            write_to_read_entries: 1000,
        });
        m.register_partition(P, 4);
        assert!(!m.needs_propagation(P));
        let mut t = m.begin(&[P]).unwrap();
        for i in 0..3 {
            m.insert_at(&mut t, P, i, v(i as i64)).unwrap();
        }
        m.commit(t, |_, _| Ok(())).unwrap();
        assert!(m.needs_propagation(P), "3 entries / 4 stable > 0.5");
    }
}
