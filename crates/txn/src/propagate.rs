//! Update propagation: flushing PDTs into the columnar store (§6).
//!
//! "Inserts account for most of the PDT volume. To make update propagation
//! more efficient, VectorH introduces an algorithm that is able to separate
//! tail inserts from other types of updates": pure end-of-table inserts are
//! flushed as plain appends, creating new blocks without touching existing
//! ones; anything else re-writes the partition's chunk files with the PDT
//! changes applied (as the original Vectorwise layout did — the chunk-level
//! rewrite-or-keep refinement is the paper's future work). MinMax indexes
//! are rebuilt from the fresh data and re-logged; a `Checkpoint` record
//! makes replay skip the flushed entries.

use vectorh_common::{ColumnData, PartitionId, Result, Value};
use vectorh_pdt::MergeStep;
use vectorh_storage::PartitionStore;

use crate::manager::TransactionManager;
use crate::wal::{LogRecord, Wal};

/// What a propagation run did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PropagationMode {
    /// Nothing pending.
    Noop,
    /// Pure tail inserts: appended new blocks only.
    TailAppend,
    /// General updates: chunk files rewritten.
    Rewrite,
}

/// Propagation outcome.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PropagationReport {
    pub mode: PropagationMode,
    pub rows_before: u64,
    pub rows_after: u64,
}

/// Split a plan into (body, tail inserts): the maximal suffix of
/// `EmitInsert` steps.
fn split_tail_inserts(plan: &[MergeStep]) -> (&[MergeStep], &[MergeStep]) {
    let mut cut = plan.len();
    while cut > 0 && matches!(plan[cut - 1], MergeStep::EmitInsert { .. }) {
        cut -= 1;
    }
    plan.split_at(cut)
}

/// Is `body` the identity over `stable` rows?
fn body_is_identity(body: &[MergeStep], stable: u64) -> bool {
    match body {
        [] => stable == 0,
        [MergeStep::CopyStable { from_sid: 0, count }] => *count == stable,
        _ => false,
    }
}

/// Build full-width columns from inserted-row values.
fn columns_from_rows(store: &PartitionStore, rows: &[&Vec<Value>]) -> Result<Vec<ColumnData>> {
    let schema = store.schema();
    let mut cols: Vec<ColumnData> = schema
        .fields()
        .iter()
        .map(|f| ColumnData::with_capacity(f.dtype, rows.len()))
        .collect();
    for r in rows {
        for (c, col) in cols.iter_mut().enumerate() {
            col.push_value(&r[c])?;
        }
    }
    Ok(cols)
}

/// Apply a merge plan to the stored columns, producing the new full data.
fn apply_plan_columnar(
    store: &PartitionStore,
    plan: &[MergeStep],
    reader: Option<vectorh_common::NodeId>,
) -> Result<Vec<ColumnData>> {
    let schema = store.schema();
    // Materialize current stable data column by column.
    let mut stable: Vec<ColumnData> = schema
        .fields()
        .iter()
        .map(|f| ColumnData::new(f.dtype))
        .collect();
    for chunk in 0..store.n_chunks() {
        for (c, col) in stable.iter_mut().enumerate() {
            col.append(&store.read_column(chunk, c, reader)?)?;
        }
    }
    let mut out: Vec<ColumnData> = schema
        .fields()
        .iter()
        .map(|f| ColumnData::new(f.dtype))
        .collect();
    for step in plan {
        match step {
            MergeStep::CopyStable { from_sid, count } => {
                for (c, col) in out.iter_mut().enumerate() {
                    col.append(
                        &stable[c].slice(*from_sid as usize, (*from_sid + *count) as usize),
                    )?;
                }
            }
            MergeStep::SkipStable { .. } => {}
            MergeStep::ModifyStable { sid, mods } => {
                for (c, col) in out.iter_mut().enumerate() {
                    let v = mods
                        .iter()
                        .find(|(mc, _)| *mc == c)
                        .map(|(_, v)| v.clone())
                        .unwrap_or_else(|| stable[c].value_at(*sid as usize, schema.dtype(c)));
                    col.push_value(&v)?;
                }
            }
            MergeStep::EmitInsert { values, .. } => {
                for (c, col) in out.iter_mut().enumerate() {
                    col.push_value(&values[c])?;
                }
            }
        }
    }
    Ok(out)
}

/// Log the partition's rebuilt MinMax summaries into its WAL (the paper
/// stores MinMax in the WAL, separate from data).
fn log_minmax(store: &PartitionStore, wal: &Wal) -> Result<()> {
    let mut records = Vec::new();
    for chunk in 0..store.n_chunks() {
        for col in 0..store.schema().len() {
            if let Some(stats) = store.minmax().stats(chunk, col) {
                records.push(LogRecord::MinMax {
                    chunk: chunk as u32,
                    col: col as u32,
                    min: stats.min.clone(),
                    max: stats.max.clone(),
                });
            }
        }
    }
    wal.append(&records)
}

/// Propagate a partition's pending PDT updates into its chunk store.
pub fn propagate_partition(
    mgr: &TransactionManager,
    pid: PartitionId,
    store: &mut PartitionStore,
    wal: &Wal,
) -> Result<PropagationReport> {
    let (stable, plan) = mgr.begin_propagation(pid)?;
    let rows_before = stable;
    let emitted: u64 = plan.iter().map(|s| s.emits()).sum();
    let (body, tail) = split_tail_inserts(&plan);
    let mode = if plan
        .iter()
        .all(|s| matches!(s, MergeStep::CopyStable { .. }))
    {
        PropagationMode::Noop
    } else if body_is_identity(body, stable) {
        PropagationMode::TailAppend
    } else {
        PropagationMode::Rewrite
    };

    match mode {
        PropagationMode::Noop => {
            return Ok(PropagationReport {
                mode,
                rows_before,
                rows_after: rows_before,
            })
        }
        PropagationMode::TailAppend => {
            let rows: Vec<&Vec<Value>> = tail
                .iter()
                .map(|s| match s {
                    MergeStep::EmitInsert { values, .. } => values,
                    _ => unreachable!("tail contains only inserts"),
                })
                .collect();
            let cols = columns_from_rows(store, &rows)?;
            store.append_rows(&cols)?;
        }
        PropagationMode::Rewrite => {
            let new_data = apply_plan_columnar(store, &plan, store.home())?;
            store.drop_all()?;
            store.append_rows(&new_data)?;
        }
    }
    wal.append(&[LogRecord::Checkpoint {
        stable_rows: emitted,
    }])?;
    log_minmax(store, wal)?;
    mgr.finish_propagation(pid, emitted)?;
    Ok(PropagationReport {
        mode,
        rows_before,
        rows_after: emitted,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manager::TxnConfig;
    use std::sync::Arc;
    use vectorh_common::{DataType, Schema};
    use vectorh_simhdfs::{DefaultPolicy, SimHdfs, SimHdfsConfig};
    use vectorh_storage::StorageConfig;

    const P: PartitionId = PartitionId(0);

    fn setup(stable: i64) -> (TransactionManager, PartitionStore, Wal) {
        let fs = SimHdfs::new(
            3,
            SimHdfsConfig {
                block_size: 1024,
                default_replication: 2,
            },
            Arc::new(DefaultPolicy::new(9)),
        );
        let schema = Schema::of(&[("k", DataType::I64), ("s", DataType::Str)]);
        let mut store = PartitionStore::new(
            fs.clone(),
            "/db/t/p0/",
            schema,
            StorageConfig { rows_per_chunk: 64 },
        );
        if stable > 0 {
            store
                .append_rows(&[
                    ColumnData::I64((0..stable).collect()),
                    ColumnData::Str((0..stable).map(|i| format!("s{i}")).collect()),
                ])
                .unwrap();
        }
        let mgr = TransactionManager::new(TxnConfig::default());
        mgr.register_partition(P, stable as u64);
        let wal = Wal::new(fs, "/vectorh/wal/p0.wal", None);
        (mgr, store, wal)
    }

    fn row(i: i64) -> Vec<Value> {
        vec![Value::I64(i), Value::Str(format!("n{i}"))]
    }

    #[test]
    fn noop_when_clean() {
        let (mgr, mut store, wal) = setup(10);
        let r = propagate_partition(&mgr, P, &mut store, &wal).unwrap();
        assert_eq!(r.mode, PropagationMode::Noop);
        assert_eq!(store.row_count(), 10);
    }

    #[test]
    fn tail_inserts_take_append_path() {
        let (mgr, mut store, wal) = setup(100);
        let chunks_before = store.n_chunks();
        let first_chunk_path = store.chunk_meta(0).path.clone();
        let mut t = mgr.begin(&[P]).unwrap();
        for i in 0..10 {
            let end = t.image_len(P).unwrap();
            mgr.insert_at(&mut t, P, end, row(1000 + i)).unwrap();
        }
        mgr.commit(t, |_, _| Ok(())).unwrap();
        let r = propagate_partition(&mgr, P, &mut store, &wal).unwrap();
        assert_eq!(r.mode, PropagationMode::TailAppend);
        assert_eq!(r.rows_after, 110);
        assert_eq!(store.row_count(), 110);
        // Existing full chunks untouched.
        assert_eq!(store.chunk_meta(0).path, first_chunk_path);
        assert!(store.n_chunks() >= chunks_before);
        // PDTs now empty; scan plan is identity.
        assert_eq!(mgr.scan_plan(P).unwrap().len(), 1);
        // Data correct.
        let keys = store.read_column(store.n_chunks() - 1, 0, None).unwrap();
        let last = *keys.as_i64().unwrap().last().unwrap();
        assert_eq!(last, 1009);
    }

    #[test]
    fn mixed_updates_take_rewrite_path() {
        let (mgr, mut store, wal) = setup(100);
        let mut t = mgr.begin(&[P]).unwrap();
        mgr.delete_at(&mut t, P, 0).unwrap();
        mgr.modify_at(&mut t, P, 50, 1, Value::Str("patched".into()))
            .unwrap();
        mgr.insert_at(&mut t, P, 10, row(-7)).unwrap();
        mgr.commit(t, |_, _| Ok(())).unwrap();
        let r = propagate_partition(&mgr, P, &mut store, &wal).unwrap();
        assert_eq!(r.mode, PropagationMode::Rewrite);
        assert_eq!(r.rows_after, 100); // -1 delete +1 insert
        assert_eq!(store.row_count(), 100);
        // Verify contents: first row is old row 1 (row 0 deleted).
        let keys = store.read_column(0, 0, None).unwrap();
        assert_eq!(keys.as_i64().unwrap()[0], 1);
        assert_eq!(keys.as_i64().unwrap()[10], -7);
        // Modified string present.
        let mut all_strings = Vec::new();
        for c in 0..store.n_chunks() {
            all_strings.extend(
                store
                    .read_column(c, 1, None)
                    .unwrap()
                    .as_str()
                    .unwrap()
                    .to_vec(),
            );
        }
        assert!(all_strings.contains(&"patched".to_string()));
        // MinMax rebuilt to include the new extreme (-7).
        assert_eq!(store.minmax().stats(0, 0).unwrap().min, Value::I64(-7));
    }

    #[test]
    fn checkpoint_and_minmax_logged() {
        let (mgr, mut store, wal) = setup(20);
        let mut t = mgr.begin(&[P]).unwrap();
        mgr.delete_at(&mut t, P, 5).unwrap();
        mgr.commit(t, |_, _| Ok(())).unwrap();
        propagate_partition(&mgr, P, &mut store, &wal).unwrap();
        let records = wal.read_all().unwrap();
        assert!(records
            .iter()
            .any(|r| matches!(r, LogRecord::Checkpoint { stable_rows: 19 })));
        assert!(records
            .iter()
            .any(|r| matches!(r, LogRecord::MinMax { .. })));
        let (stable, tail) = wal.read_since_checkpoint().unwrap();
        assert_eq!(stable, 19);
        assert!(tail.iter().all(|r| matches!(r, LogRecord::MinMax { .. })));
    }

    #[test]
    fn propagation_from_empty_partition() {
        let (mgr, mut store, wal) = setup(0);
        let mut t = mgr.begin(&[P]).unwrap();
        mgr.insert_at(&mut t, P, 0, row(1)).unwrap();
        mgr.insert_at(&mut t, P, 1, row(2)).unwrap();
        mgr.commit(t, |_, _| Ok(())).unwrap();
        let r = propagate_partition(&mgr, P, &mut store, &wal).unwrap();
        assert_eq!(r.mode, PropagationMode::TailAppend);
        assert_eq!(store.row_count(), 2);
    }

    #[test]
    fn repeated_cycles_stay_consistent() {
        let (mgr, mut store, wal) = setup(10);
        for round in 0..4 {
            let mut t = mgr.begin(&[P]).unwrap();
            mgr.delete_at(&mut t, P, 0).unwrap();
            let end = t.image_len(P).unwrap();
            mgr.insert_at(&mut t, P, end, row(100 + round)).unwrap();
            mgr.commit(t, |_, _| Ok(())).unwrap();
            let r = propagate_partition(&mgr, P, &mut store, &wal).unwrap();
            assert_eq!(r.rows_after, 10);
            assert_eq!(store.row_count(), 10);
        }
        let keys = {
            let mut v = Vec::new();
            for c in 0..store.n_chunks() {
                v.extend(
                    store
                        .read_column(c, 0, None)
                        .unwrap()
                        .as_i64()
                        .unwrap()
                        .to_vec(),
                );
            }
            v
        };
        assert_eq!(keys, vec![4, 5, 6, 7, 8, 9, 100, 101, 102, 103]);
    }
}
