//! Update propagation: flushing PDTs into the columnar store (§6).
//!
//! "Inserts account for most of the PDT volume. To make update propagation
//! more efficient, VectorH introduces an algorithm that is able to separate
//! tail inserts from other types of updates": pure end-of-table inserts are
//! flushed as plain appends, creating new blocks without touching existing
//! ones. For everything else this module implements the chunk-level
//! rewrite-or-keep refinement the paper leaves as future work: the merge
//! plan is sliced per chunk, chunks whose SID range the PDT never touches
//! are *kept* (their files stay byte-identical on disk), and only dirtied
//! chunks are re-written into fresh files.
//!
//! Crash safety uses a per-chunk WAL protocol. Each replacement image is
//! bracketed by `ChunkRewriteBegin { chunk, path }` (logged before the data
//! write, so recovery knows where a possibly-torn image lives) and
//! `ChunkRewritten { chunk, rows }` (the image is complete). None of that
//! takes effect until the single `Checkpoint { stable_rows }` record — the
//! commit point. All mutation happens on a scratch clone of the partition
//! manifest; the clone is installed only after the checkpoint is durable,
//! so a crash at any step leaves the live store on the old images with the
//! PDTs intact (the propagation latch is released and `recover_partition`
//! replays committed updates on top of whichever image survived).
//!
//! Replaced files are not deleted at commit: scan snapshots (cloned
//! manifests) may still reference them. They are queued (`defer_delete`)
//! and reclaimed one propagation cycle later; images orphaned by a crash
//! are swept by `gc_orphans` at the start of the next run.

use vectorh_common::fault::FaultSite;
use vectorh_common::{ColumnData, PartitionId, Result, Value, VhError};
use vectorh_pdt::MergeStep;
use vectorh_storage::PartitionStore;

use crate::manager::TransactionManager;
use crate::wal::{LogRecord, Wal};

/// What a propagation run did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PropagationMode {
    /// Nothing pending.
    Noop,
    /// Pure tail inserts: appended new blocks only (at most the trailing
    /// partial chunk was rewritten to absorb them).
    TailAppend,
    /// General updates: dirtied chunk files rewritten, clean ones kept.
    Rewrite,
}

/// Propagation outcome.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PropagationReport {
    pub mode: PropagationMode,
    pub rows_before: u64,
    pub rows_after: u64,
    /// Pre-existing chunks left byte-identical on disk.
    pub chunks_kept: u64,
    /// Pre-existing chunks replaced with a fresh image.
    pub chunks_rewritten: u64,
    /// Brand-new chunks appended for tail inserts.
    pub tail_chunks: u64,
}

/// Split a plan into (body, tail inserts): the maximal suffix of
/// `EmitInsert` steps.
fn split_tail_inserts(plan: &[MergeStep]) -> (&[MergeStep], &[MergeStep]) {
    let mut cut = plan.len();
    while cut > 0 && matches!(plan[cut - 1], MergeStep::EmitInsert { .. }) {
        cut -= 1;
    }
    plan.split_at(cut)
}

/// Is `body` the identity over `stable` rows? Merge layers may emit the
/// identity as several contiguous `CopyStable` runs, so walk a cursor
/// instead of pattern-matching a single step.
fn body_is_identity(body: &[MergeStep], stable: u64) -> bool {
    let mut pos = 0u64;
    for step in body {
        match step {
            MergeStep::CopyStable { from_sid, count } if *from_sid == pos => pos += count,
            _ => return false,
        }
    }
    pos == stable
}

/// Build full-width columns from inserted-row values.
fn columns_from_rows(store: &PartitionStore, rows: &[&Vec<Value>]) -> Result<Vec<ColumnData>> {
    let schema = store.schema();
    let mut cols: Vec<ColumnData> = schema
        .fields()
        .iter()
        .map(|f| ColumnData::with_capacity(f.dtype, rows.len()))
        .collect();
    for r in rows {
        for (c, col) in cols.iter_mut().enumerate() {
            col.push_value(&r[c])?;
        }
    }
    Ok(cols)
}

/// Slice a whole-partition merge plan into per-chunk sub-plans plus the
/// tail-insert rows that land past the last stable row.
///
/// `bounds[i] = (first SID, row count)` of chunk `i`. The plan consumes
/// stable SIDs in ascending order, each exactly once, so `CopyStable` /
/// `SkipStable` runs split cleanly at chunk boundaries; an `EmitInsert` is
/// attributed to the chunk the stable cursor is currently inside (or to the
/// tail once every stable row has been consumed).
fn slice_plan(
    plan: &[MergeStep],
    bounds: &[(u64, u64)],
    stable: u64,
) -> (Vec<Vec<MergeStep>>, Vec<Vec<Value>>) {
    let n = bounds.len();
    let mut per_chunk: Vec<Vec<MergeStep>> = vec![Vec::new(); n];
    let mut tail: Vec<Vec<Value>> = Vec::new();
    let chunk_of = |sid: u64| -> usize {
        bounds
            .binary_search_by(|&(base, len)| {
                if sid < base {
                    std::cmp::Ordering::Greater
                } else if sid >= base + len {
                    std::cmp::Ordering::Less
                } else {
                    std::cmp::Ordering::Equal
                }
            })
            .unwrap_or(n.saturating_sub(1))
    };
    let mut pos = 0u64; // next stable SID the plan will consume
    for step in plan {
        match step {
            MergeStep::CopyStable { from_sid, count }
            | MergeStep::SkipStable { from_sid, count } => {
                let copy = matches!(step, MergeStep::CopyStable { .. });
                let mut s = *from_sid;
                let mut remaining = *count;
                while remaining > 0 {
                    let ci = chunk_of(s);
                    let (base, len) = bounds[ci];
                    let take = remaining.min(base + len - s);
                    per_chunk[ci].push(if copy {
                        MergeStep::CopyStable {
                            from_sid: s,
                            count: take,
                        }
                    } else {
                        MergeStep::SkipStable {
                            from_sid: s,
                            count: take,
                        }
                    });
                    s += take;
                    remaining -= take;
                }
                pos = s.max(pos);
            }
            MergeStep::ModifyStable { sid, mods } => {
                per_chunk[chunk_of(*sid)].push(MergeStep::ModifyStable {
                    sid: *sid,
                    mods: mods.clone(),
                });
                pos = sid + 1;
            }
            MergeStep::EmitInsert { tag, values } => {
                if pos >= stable {
                    tail.push(values.clone());
                } else {
                    per_chunk[chunk_of(pos)].push(MergeStep::EmitInsert {
                        tag: *tag,
                        values: values.clone(),
                    });
                }
            }
        }
    }
    (per_chunk, tail)
}

/// Is this chunk's sub-plan the identity over its own SID range?
fn chunk_is_clean(steps: &[MergeStep], base: u64, len: u64) -> bool {
    let mut pos = base;
    for step in steps {
        match step {
            MergeStep::CopyStable { from_sid, count } if *from_sid == pos => pos += count,
            _ => return false,
        }
    }
    pos == base + len
}

/// Apply one chunk's sub-plan, materializing only that chunk's columns.
/// `base` is the chunk's first SID in the *pre-rewrite* layout — it must
/// come from the bounds the plan was sliced against, not be recomputed from
/// the store, because earlier chunks may already have been reinstalled with
/// a different row count.
fn apply_chunk(
    store: &PartitionStore,
    chunk: usize,
    base: u64,
    steps: &[MergeStep],
    reader: Option<vectorh_common::NodeId>,
) -> Result<Vec<ColumnData>> {
    let schema = store.schema();
    let all: Vec<usize> = (0..schema.len()).collect();
    let cols = store.read_columns(chunk, &all, reader)?;
    let mut out: Vec<ColumnData> = schema
        .fields()
        .iter()
        .map(|f| ColumnData::new(f.dtype))
        .collect();
    for step in steps {
        match step {
            MergeStep::CopyStable { from_sid, count } => {
                let lo = (*from_sid - base) as usize;
                let hi = lo + *count as usize;
                for (c, col) in out.iter_mut().enumerate() {
                    col.append(&cols[c].slice(lo, hi))?;
                }
            }
            MergeStep::SkipStable { .. } => {}
            MergeStep::ModifyStable { sid, mods } => {
                let idx = (*sid - base) as usize;
                // Pre-index the patches by column so wide rows don't pay a
                // linear scan of `mods` per column.
                let mut by_col: Vec<Option<&Value>> = vec![None; schema.len()];
                for (mc, v) in mods {
                    by_col[*mc] = Some(v);
                }
                for (c, col) in out.iter_mut().enumerate() {
                    match by_col[c] {
                        Some(v) => col.push_value(v)?,
                        None => col.push_value(&cols[c].value_at(idx, schema.dtype(c)))?,
                    }
                }
            }
            MergeStep::EmitInsert { values, .. } => {
                for (c, col) in out.iter_mut().enumerate() {
                    col.push_value(&values[c])?;
                }
            }
        }
    }
    Ok(out)
}

/// Consult the fault hook at a named propagation step. The detail string is
/// `"<wal path>#<step>"` so directed faults can target one partition's
/// propagation at one exact step.
fn crash_point(wal: &Wal, step: &str) -> Result<()> {
    if let Some(hook) = wal.fs().fault_hook() {
        let detail = format!("{}#{}", wal.path(), step);
        let action = hook.decide(FaultSite::Propagation, &detail, 0);
        if action.is_error() {
            return Err(VhError::Propagation(format!(
                "injected crash at {detail} ({action:?})"
            )));
        }
    }
    Ok(())
}

/// After a failed checkpoint append, decide whether the record nevertheless
/// reached the log (`CrashAfter`: durable, then the crash). Committed iff
/// the last `Checkpoint` sits *after* the last chunk-protocol record —
/// every non-noop run logs at least one `ChunkRewriteBegin`/`ChunkRewritten`
/// pair before its checkpoint, so an older checkpoint cannot fool this. A
/// probe that cannot read the log assumes not-durable.
fn checkpoint_is_durable(wal: &Wal) -> bool {
    let Ok(records) = wal.read_all() else {
        return false;
    };
    let last_ckpt = records
        .iter()
        .rposition(|r| matches!(r, LogRecord::Checkpoint { .. }));
    let last_chunk = records.iter().rposition(|r| {
        matches!(
            r,
            LogRecord::ChunkRewriteBegin { .. } | LogRecord::ChunkRewritten { .. }
        )
    });
    matches!((last_ckpt, last_chunk), (Some(c), Some(k)) if c > k)
}

/// Log rebuilt MinMax summaries for the touched chunks into the WAL (the
/// paper stores MinMax in the WAL, separate from data). Kept chunks keep
/// their previously-logged summaries.
fn log_minmax(store: &PartitionStore, wal: &Wal, chunks: &[usize]) -> Result<()> {
    let mut records = Vec::new();
    for &chunk in chunks {
        for col in 0..store.schema().len() {
            if let Some(stats) = store.minmax().stats(chunk, col) {
                records.push(LogRecord::MinMax {
                    chunk: chunk as u32,
                    col: col as u32,
                    min: stats.min.clone(),
                    max: stats.max.clone(),
                });
            }
        }
    }
    if records.is_empty() {
        return Ok(());
    }
    wal.append(&records)
}

/// Propagate a partition's pending PDT updates into its chunk store.
///
/// On error the propagation latch is released and the live store is
/// untouched unless the checkpoint had already become durable (in which
/// case the new images are installed *and* the error is surfaced, so the
/// caller's recovery pass sees a log consistent with the manifest).
pub fn propagate_partition(
    mgr: &TransactionManager,
    pid: PartitionId,
    store: &mut PartitionStore,
    wal: &Wal,
) -> Result<PropagationReport> {
    let (stable, plan) = mgr.begin_propagation(pid)?;
    if plan
        .iter()
        .all(|s| matches!(s, MergeStep::CopyStable { .. }))
    {
        mgr.abort_propagation(pid);
        return Ok(PropagationReport {
            mode: PropagationMode::Noop,
            rows_before: stable,
            rows_after: stable,
            chunks_kept: 0,
            chunks_rewritten: 0,
            tail_chunks: 0,
        });
    }
    match run(mgr, pid, store, wal, stable, &plan) {
        Ok(report) => Ok(report),
        Err(e) => {
            // No-op when `run` already finished the propagation (the
            // durable-checkpoint-then-crash path).
            mgr.abort_propagation(pid);
            Err(e)
        }
    }
}

fn run(
    mgr: &TransactionManager,
    pid: PartitionId,
    store: &mut PartitionStore,
    wal: &Wal,
    stable: u64,
    plan: &[MergeStep],
) -> Result<PropagationReport> {
    let emitted: u64 = plan.iter().map(|s| s.emits()).sum();
    let (body, _tail) = split_tail_inserts(plan);
    let mode = if body_is_identity(body, stable) {
        PropagationMode::TailAppend
    } else {
        PropagationMode::Rewrite
    };

    crash_point(wal, "begin")?;
    // All mutation happens on a scratch clone; the live manifest only
    // changes at the post-checkpoint install below.
    let mut scratch = store.clone();
    scratch.gc_orphans()?;

    let n = scratch.n_chunks();
    let bounds: Vec<(u64, u64)> = (0..n)
        .map(|i| {
            (
                scratch.chunk_sid_base(i),
                scratch.chunk_meta(i).n_rows as u64,
            )
        })
        .collect();
    let (per_chunk, tail_rows) = slice_plan(plan, &bounds, stable);
    let rpc = scratch.rows_per_chunk();
    let mut dirty: Vec<bool> = (0..n)
        .map(|i| !chunk_is_clean(&per_chunk[i], bounds[i].0, bounds[i].1))
        .collect();
    // A trailing partial chunk absorbs tail inserts (rewriting it) so
    // repeated trickle-and-propagate cycles don't litter short chunks.
    if !tail_rows.is_empty() && n > 0 && (dirty[n - 1] || (bounds[n - 1].1 as usize) < rpc) {
        dirty[n - 1] = true;
    }

    let reader = scratch.home();
    let mut old_paths: Vec<String> = Vec::new();
    let mut touched: Vec<usize> = Vec::new();
    let mut chunks_rewritten = 0u64;
    let mut tail_chunks = 0u64;
    let mut tail_cursor = 0usize;
    for i in 0..n {
        if !dirty[i] {
            continue;
        }
        let mut cols = apply_chunk(&scratch, i, bounds[i].0, &per_chunk[i], reader)?;
        if i == n - 1 {
            let room = rpc.saturating_sub(cols.first().map_or(0, |c| c.len()));
            let take = room.min(tail_rows.len());
            for r in &tail_rows[..take] {
                for (c, col) in cols.iter_mut().enumerate() {
                    col.push_value(&r[c])?;
                }
            }
            tail_cursor = take;
        }
        crash_point(wal, &format!("rewrite-begin:{i}"))?;
        let path = scratch.alloc_chunk_path();
        wal.append(&[LogRecord::ChunkRewriteBegin {
            chunk: i as u32,
            path: path.clone(),
        }])?;
        crash_point(wal, &format!("rewrite-data:{i}"))?;
        let rows = cols.first().map_or(0, |c| c.len()) as u64;
        old_paths.push(scratch.install_chunk(i, &path, &cols)?);
        crash_point(wal, &format!("rewritten:{i}"))?;
        wal.append(&[LogRecord::ChunkRewritten {
            chunk: i as u32,
            rows,
        }])?;
        touched.push(i);
        chunks_rewritten += 1;
    }
    let chunks_kept = dirty.iter().filter(|d| !**d).count() as u64;

    if tail_cursor < tail_rows.len() {
        crash_point(wal, "append")?;
        while tail_cursor < tail_rows.len() {
            let take = rpc.min(tail_rows.len() - tail_cursor);
            let rows: Vec<&Vec<Value>> =
                tail_rows[tail_cursor..tail_cursor + take].iter().collect();
            let cols = columns_from_rows(&scratch, &rows)?;
            let idx = scratch.n_chunks();
            let path = scratch.alloc_chunk_path();
            wal.append(&[LogRecord::ChunkRewriteBegin {
                chunk: idx as u32,
                path: path.clone(),
            }])?;
            scratch.push_chunk_at(&path, &cols)?;
            wal.append(&[LogRecord::ChunkRewritten {
                chunk: idx as u32,
                rows: take as u64,
            }])?;
            touched.push(idx);
            tail_chunks += 1;
            tail_cursor += take;
        }
    }

    if scratch.row_count() != emitted {
        return Err(VhError::Propagation(format!(
            "propagated image has {} rows, plan emits {emitted}",
            scratch.row_count()
        )));
    }

    // Commit point: the checkpoint record. If the append errors we must
    // find out whether it reached the log anyway (CrashAfter) — installing
    // the old image against a checkpointed log would lose the updates.
    crash_point(wal, "checkpoint")?;
    let deferred_err = match wal.append(&[LogRecord::Checkpoint {
        stable_rows: emitted,
    }]) {
        Ok(()) => None,
        Err(e) if checkpoint_is_durable(wal) => Some(e),
        Err(e) => return Err(e),
    };
    *store = scratch;
    mgr.finish_propagation(pid, emitted)?;
    if let Some(e) = deferred_err {
        return Err(e);
    }

    // Reclamation: delete the *previous* generation's replaced files, queue
    // this generation's. A crash here leaves `old_paths` as orphans for the
    // next run's `gc_orphans`.
    crash_point(wal, "gc")?;
    store.sweep_deferred()?;
    store.defer_delete(old_paths);
    log_minmax(store, wal, &touched)?;
    Ok(PropagationReport {
        mode,
        rows_before: stable,
        rows_after: emitted,
        chunks_kept,
        chunks_rewritten,
        tail_chunks,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manager::TxnConfig;
    use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
    use std::sync::Arc;
    use vectorh_common::fault::{FaultAction, FaultHook};
    use vectorh_common::{DataType, Schema};
    use vectorh_simhdfs::{BlockStore, DefaultPolicy, SimHdfs, SimHdfsConfig, StoreRef};
    use vectorh_storage::StorageConfig;

    const P: PartitionId = PartitionId(0);

    fn setup(stable: i64) -> (TransactionManager, PartitionStore, Wal) {
        let fs: StoreRef = Arc::new(SimHdfs::new(
            3,
            SimHdfsConfig {
                block_size: 1024,
                default_replication: 2,
            },
            Arc::new(DefaultPolicy::new(9)),
        ));
        let schema = Schema::of(&[("k", DataType::I64), ("s", DataType::Str)]);
        let mut store = PartitionStore::new(
            fs.clone(),
            "/db/t/p0/",
            schema,
            StorageConfig { rows_per_chunk: 64 },
        );
        if stable > 0 {
            store
                .append_rows(&[
                    ColumnData::I64((0..stable).collect()),
                    ColumnData::Str((0..stable).map(|i| format!("s{i}")).collect()),
                ])
                .unwrap();
        }
        let mgr = TransactionManager::new(TxnConfig::default());
        mgr.register_partition(P, stable as u64);
        let wal = Wal::new(fs, "/vectorh/wal/p0.wal", None);
        (mgr, store, wal)
    }

    fn row(i: i64) -> Vec<Value> {
        vec![Value::I64(i), Value::Str(format!("n{i}"))]
    }

    fn file_bytes(fs: &StoreRef, path: &str) -> Vec<u8> {
        fs.read(path, 0, 1 << 24, None).unwrap()
    }

    #[test]
    fn noop_when_clean() {
        let (mgr, mut store, wal) = setup(10);
        let r = propagate_partition(&mgr, P, &mut store, &wal).unwrap();
        assert_eq!(r.mode, PropagationMode::Noop);
        assert_eq!(store.row_count(), 10);
    }

    #[test]
    fn tail_inserts_take_append_path() {
        let (mgr, mut store, wal) = setup(100);
        let chunks_before = store.n_chunks();
        let first_chunk_path = store.chunk_meta(0).path.clone();
        let mut t = mgr.begin(&[P]).unwrap();
        for i in 0..10 {
            let end = t.image_len(P).unwrap();
            mgr.insert_at(&mut t, P, end, row(1000 + i)).unwrap();
        }
        mgr.commit(t, |_, _| Ok(())).unwrap();
        let r = propagate_partition(&mgr, P, &mut store, &wal).unwrap();
        assert_eq!(r.mode, PropagationMode::TailAppend);
        assert_eq!(r.rows_after, 110);
        assert_eq!(store.row_count(), 110);
        // Existing full chunks untouched.
        assert_eq!(store.chunk_meta(0).path, first_chunk_path);
        assert!(store.n_chunks() >= chunks_before);
        // PDTs now empty; scan plan is identity.
        assert_eq!(mgr.scan_plan(P).unwrap().len(), 1);
        // Data correct.
        let keys = store.read_column(store.n_chunks() - 1, 0, None).unwrap();
        let last = *keys.as_i64().unwrap().last().unwrap();
        assert_eq!(last, 1009);
    }

    #[test]
    fn mixed_updates_take_rewrite_path() {
        let (mgr, mut store, wal) = setup(100);
        let mut t = mgr.begin(&[P]).unwrap();
        mgr.delete_at(&mut t, P, 0).unwrap();
        mgr.modify_at(&mut t, P, 50, 1, Value::Str("patched".into()))
            .unwrap();
        mgr.insert_at(&mut t, P, 10, row(-7)).unwrap();
        mgr.commit(t, |_, _| Ok(())).unwrap();
        let r = propagate_partition(&mgr, P, &mut store, &wal).unwrap();
        assert_eq!(r.mode, PropagationMode::Rewrite);
        assert_eq!(r.rows_after, 100); // -1 delete +1 insert
        assert_eq!(store.row_count(), 100);
        // All the damage is inside chunk 0; chunk 1 must be kept.
        assert_eq!(r.chunks_rewritten, 1);
        assert_eq!(r.chunks_kept, 1);
        // Verify contents: first row is old row 1 (row 0 deleted).
        let keys = store.read_column(0, 0, None).unwrap();
        assert_eq!(keys.as_i64().unwrap()[0], 1);
        assert_eq!(keys.as_i64().unwrap()[10], -7);
        // Modified string present.
        let mut all_strings = Vec::new();
        for c in 0..store.n_chunks() {
            all_strings.extend(
                store
                    .read_column(c, 1, None)
                    .unwrap()
                    .as_str()
                    .unwrap()
                    .to_vec(),
            );
        }
        assert!(all_strings.contains(&"patched".to_string()));
        // MinMax rebuilt to include the new extreme (-7).
        assert_eq!(store.minmax().stats(0, 0).unwrap().min, Value::I64(-7));
    }

    #[test]
    fn checkpoint_and_minmax_logged() {
        let (mgr, mut store, wal) = setup(20);
        let mut t = mgr.begin(&[P]).unwrap();
        mgr.delete_at(&mut t, P, 5).unwrap();
        mgr.commit(t, |_, _| Ok(())).unwrap();
        propagate_partition(&mgr, P, &mut store, &wal).unwrap();
        let records = wal.read_all().unwrap();
        assert!(records
            .iter()
            .any(|r| matches!(r, LogRecord::Checkpoint { stable_rows: 19 })));
        assert!(records
            .iter()
            .any(|r| matches!(r, LogRecord::MinMax { .. })));
        let (stable, tail) = wal.read_since_checkpoint().unwrap();
        assert_eq!(stable, 19);
        assert!(tail.iter().all(|r| matches!(r, LogRecord::MinMax { .. })));
    }

    #[test]
    fn propagation_from_empty_partition() {
        let (mgr, mut store, wal) = setup(0);
        let mut t = mgr.begin(&[P]).unwrap();
        mgr.insert_at(&mut t, P, 0, row(1)).unwrap();
        mgr.insert_at(&mut t, P, 1, row(2)).unwrap();
        mgr.commit(t, |_, _| Ok(())).unwrap();
        let r = propagate_partition(&mgr, P, &mut store, &wal).unwrap();
        assert_eq!(r.mode, PropagationMode::TailAppend);
        assert_eq!(r.tail_chunks, 1);
        assert_eq!(store.row_count(), 2);
    }

    #[test]
    fn repeated_cycles_stay_consistent() {
        let (mgr, mut store, wal) = setup(10);
        for round in 0..4 {
            let mut t = mgr.begin(&[P]).unwrap();
            mgr.delete_at(&mut t, P, 0).unwrap();
            let end = t.image_len(P).unwrap();
            mgr.insert_at(&mut t, P, end, row(100 + round)).unwrap();
            mgr.commit(t, |_, _| Ok(())).unwrap();
            let r = propagate_partition(&mgr, P, &mut store, &wal).unwrap();
            assert_eq!(r.rows_after, 10);
            assert_eq!(store.row_count(), 10);
        }
        let keys = {
            let mut v = Vec::new();
            for c in 0..store.n_chunks() {
                v.extend(
                    store
                        .read_column(c, 0, None)
                        .unwrap()
                        .as_i64()
                        .unwrap()
                        .to_vec(),
                );
            }
            v
        };
        assert_eq!(keys, vec![4, 5, 6, 7, 8, 9, 100, 101, 102, 103]);
    }

    #[test]
    fn body_is_identity_accepts_split_copies() {
        use MergeStep::*;
        // The identity emitted as several contiguous runs (multi-layer
        // merges do this) must still classify as a tail append.
        assert!(body_is_identity(
            &[
                CopyStable {
                    from_sid: 0,
                    count: 5
                },
                CopyStable {
                    from_sid: 5,
                    count: 5
                }
            ],
            10
        ));
        // Gap, overlap, or short coverage are not the identity.
        assert!(!body_is_identity(
            &[
                CopyStable {
                    from_sid: 0,
                    count: 5
                },
                CopyStable {
                    from_sid: 6,
                    count: 4
                }
            ],
            10
        ));
        assert!(!body_is_identity(
            &[CopyStable {
                from_sid: 0,
                count: 5
            }],
            10
        ));
        assert!(body_is_identity(&[], 0));
        assert!(!body_is_identity(&[], 1));
    }

    #[test]
    fn later_chunks_use_pre_rewrite_sid_bases() {
        // Chunk 0 shrinks (delete) before chunk 1 is applied: chunk 1's
        // steps still address the original SID layout, so its base must not
        // be recomputed from the partially-rewritten manifest.
        let (mgr, mut store, wal) = setup(128);
        let mut t = mgr.begin(&[P]).unwrap();
        mgr.delete_at(&mut t, P, 0).unwrap();
        mgr.modify_at(&mut t, P, 100, 0, Value::I64(-100)).unwrap();
        mgr.commit(t, |_, _| Ok(())).unwrap();
        let r = propagate_partition(&mgr, P, &mut store, &wal).unwrap();
        assert_eq!(r.chunks_rewritten, 2);
        assert_eq!(r.rows_after, 127);
        let mut keys = Vec::new();
        for c in 0..store.n_chunks() {
            keys.extend(
                store
                    .read_column(c, 0, None)
                    .unwrap()
                    .as_i64()
                    .unwrap()
                    .to_vec(),
            );
        }
        // modify_at addresses the post-delete image: position 100 is
        // original sid 101, which lands at output index 100.
        let mut want: Vec<i64> = (1..128).collect();
        want[100] = -100;
        assert_eq!(keys, want);
    }

    #[test]
    fn untouched_chunks_stay_byte_identical_on_disk() {
        // Two full 64-row chunks; dirty only the second one.
        let (mgr, mut store, wal) = setup(128);
        let fs = wal.fs().clone();
        let path0 = store.chunk_meta(0).path.clone();
        let bytes0 = file_bytes(&fs, &path0);
        let mut t = mgr.begin(&[P]).unwrap();
        mgr.modify_at(&mut t, P, 100, 0, Value::I64(-100)).unwrap();
        mgr.commit(t, |_, _| Ok(())).unwrap();
        let r = propagate_partition(&mgr, P, &mut store, &wal).unwrap();
        assert_eq!(r.mode, PropagationMode::Rewrite);
        assert_eq!(r.chunks_kept, 1);
        assert_eq!(r.chunks_rewritten, 1);
        assert_eq!(store.chunk_meta(0).path, path0);
        assert_eq!(file_bytes(&fs, &path0), bytes0);
        let keys = store.read_column(1, 0, None).unwrap();
        assert_eq!(keys.as_i64().unwrap()[100 - 64], -100);
    }

    /// Fires `action` once at the first Propagation crash point whose
    /// detail contains `needle`.
    #[derive(Debug)]
    struct CrashAt {
        needle: String,
        action: FaultAction,
        fired: AtomicBool,
    }

    impl FaultHook for CrashAt {
        fn decide(&self, site: FaultSite, detail: &str, _attempt: u32) -> FaultAction {
            if site == FaultSite::Propagation
                && detail.contains(&self.needle)
                && !self.fired.swap(true, Ordering::SeqCst)
            {
                self.action
            } else {
                FaultAction::None
            }
        }
    }

    #[test]
    fn crash_mid_rewrite_leaves_live_store_untouched_and_retryable() {
        let (mgr, mut store, wal) = setup(100);
        let paths_before: Vec<String> = (0..store.n_chunks())
            .map(|i| store.chunk_meta(i).path.clone())
            .collect();
        let mut t = mgr.begin(&[P]).unwrap();
        mgr.delete_at(&mut t, P, 0).unwrap();
        mgr.commit(t, |_, _| Ok(())).unwrap();

        let fs = wal.fs().clone();
        fs.set_fault_hook(Some(Arc::new(CrashAt {
            needle: "#rewrite-data:0".into(),
            action: FaultAction::CrashBefore,
            fired: AtomicBool::new(false),
        })));
        let err = propagate_partition(&mgr, P, &mut store, &wal).unwrap_err();
        assert!(matches!(err, VhError::Propagation(_)), "got {err}");
        // Live manifest untouched; PDT changes still pending.
        let paths_after: Vec<String> = (0..store.n_chunks())
            .map(|i| store.chunk_meta(i).path.clone())
            .collect();
        assert_eq!(paths_after, paths_before);
        assert_eq!(store.row_count(), 100);
        assert!(
            mgr.scan_plan(P).unwrap().len() > 1,
            "PDT must still hold the delete"
        );
        // The latch is released: a retry (hook now exhausted) succeeds.
        fs.set_fault_hook(None);
        let r = propagate_partition(&mgr, P, &mut store, &wal).unwrap();
        assert_eq!(r.rows_after, 99);
        assert_eq!(store.row_count(), 99);
        assert_eq!(mgr.scan_plan(P).unwrap().len(), 1);
    }

    #[test]
    fn replaced_images_are_reclaimed_one_cycle_later() {
        let (mgr, mut store, wal) = setup(20);
        let fs = wal.fs().clone();
        let gen0_path = store.chunk_meta(0).path.clone();
        let mut t = mgr.begin(&[P]).unwrap();
        mgr.delete_at(&mut t, P, 0).unwrap();
        mgr.commit(t, |_, _| Ok(())).unwrap();
        propagate_partition(&mgr, P, &mut store, &wal).unwrap();
        // The replaced image survives its own commit (snapshots may still
        // reference it) and is queued for deferred deletion.
        assert!(fs.exists(&gen0_path));
        assert_eq!(store.deferred(), std::slice::from_ref(&gen0_path));
        let gen1_path = store.chunk_meta(0).path.clone();
        // The next committed propagation sweeps it.
        let mut t = mgr.begin(&[P]).unwrap();
        mgr.delete_at(&mut t, P, 0).unwrap();
        mgr.commit(t, |_, _| Ok(())).unwrap();
        propagate_partition(&mgr, P, &mut store, &wal).unwrap();
        assert!(!fs.exists(&gen0_path));
        assert!(
            fs.exists(&gen1_path),
            "current generation deferred, not deleted"
        );
        assert_eq!(store.deferred(), &[gen1_path]);
    }

    /// Fires `action` on the `nth` (1-based) WalAppend decision.
    #[derive(Debug)]
    struct CrashOnNthAppend {
        nth: u32,
        action: FaultAction,
        seen: AtomicU32,
    }

    impl FaultHook for CrashOnNthAppend {
        fn decide(&self, site: FaultSite, _detail: &str, _attempt: u32) -> FaultAction {
            if site == FaultSite::WalAppend
                && self.seen.fetch_add(1, Ordering::SeqCst) + 1 == self.nth
            {
                self.action
            } else {
                FaultAction::None
            }
        }
    }

    #[test]
    fn durable_checkpoint_installs_despite_crash_after() {
        let (mgr, mut store, wal) = setup(20);
        let mut t = mgr.begin(&[P]).unwrap();
        mgr.delete_at(&mut t, P, 5).unwrap();
        mgr.commit(t, |_, _| Ok(())).unwrap();
        // Single dirty chunk → appends are Begin, Rewritten, Checkpoint:
        // crash *after* the checkpoint reaches the log.
        let fs = wal.fs().clone();
        fs.set_fault_hook(Some(Arc::new(CrashOnNthAppend {
            nth: 3,
            action: FaultAction::CrashAfter,
            seen: AtomicU32::new(0),
        })));
        let err = propagate_partition(&mgr, P, &mut store, &wal).unwrap_err();
        fs.set_fault_hook(None);
        // The checkpoint committed, so the new image must be installed and
        // the PDTs reset even though the error surfaces.
        assert!(err.to_string().contains("wal"), "got {err}");
        assert_eq!(store.row_count(), 19);
        assert_eq!(mgr.visible_rows(P).unwrap(), 19);
        assert_eq!(mgr.scan_plan(P).unwrap().len(), 1);
        let (stable, _) = wal.read_since_checkpoint().unwrap();
        assert_eq!(stable, 19);
        // Nothing pending: the next run is a noop.
        let r = propagate_partition(&mgr, P, &mut store, &wal).unwrap();
        assert_eq!(r.mode, PropagationMode::Noop);
    }
}
