//! Distributed transaction processing for VectorH-rs (§6).
//!
//! * [`wal`] — write-ahead logs as append-only simhdfs files: one WAL per
//!   table partition (read/written only by the responsible node) plus a
//!   much-reduced *global* WAL for 2PC decisions, both replayable.
//! * [`manager`] — snapshot isolation over stacked PDTs: queries share a
//!   Read-PDT and a copy-on-write master Write-PDT; each transaction holds a
//!   private Trans-PDT. Commit serializes the transaction's updates against
//!   the advanced global state, detecting **write-write conflicts at tuple
//!   granularity** optimistically and aborting on conflict.
//! * [`propagate`] — background update propagation: PDTs are flushed to the
//!   columnar store when they exceed memory/fraction thresholds, separating
//!   cheap *tail inserts* (pure appends creating new blocks) from in-place
//!   updates (chunk rewrites); MinMax indexes are rebuilt on the way.
//! * [`twophase`] — the 2PC protocol between the session master (global
//!   WAL) and responsible nodes (partition WALs), with crash-point
//!   injection: a transaction is durable iff the global decision record made
//!   it to HDFS.

pub mod manager;
pub mod propagate;
pub mod twophase;
pub mod wal;

pub use manager::{Transaction, TransactionManager, TxnConfig};
pub use twophase::{LogShipper, RecoverableTxn, TwoPhaseCoordinator, TxnResolution};
pub use wal::{LogRecord, Wal};
