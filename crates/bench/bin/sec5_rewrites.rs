//! §5 rewrite-rule ablation — the example query of Figure 5.
//!
//! The paper measures, on TPC-H SF-500 over 6 nodes:
//!   all rules on: 5.02 s · no partial aggregation: 5.64 s ·
//!   no replicated build: 5.67 s · no local joins: 25.51 s · none: 26.14 s
//!
//! The shape to reproduce: local joins matter by far the most (~5×);
//! partial aggregation and the replicated build side are each worth a
//! little. We run the same three-table join/aggregate/top-10 query with
//! each rule toggled off.

use vectorh::{ClusterConfig, VectorH};
use vectorh_bench::{print_table, timed_hot};
use vectorh_common::Value;

fn engine(local_join: bool, repl_build: bool, partial_aggr: bool) -> VectorH {
    VectorH::start(ClusterConfig {
        nodes: 3,
        rows_per_chunk: 4096,
        streams_per_node: 2,
        enable_local_join: local_join,
        enable_replicated_build: repl_build,
        enable_partial_aggr: partial_aggr,
        ..Default::default()
    })
    .unwrap()
}

const SEC5_SQL: &str = "SELECT s.s_suppkey, s.s_name, count(*) AS l_count \
    FROM lineitem l JOIN orders o ON l.l_orderkey = o.o_orderkey \
    JOIN supplier s ON l.l_suppkey = s.s_suppkey \
    WHERE l.l_discount > 0.03 AND o.o_orderdate BETWEEN '1995-03-05' AND '1997-03-05' \
    GROUP BY s.s_suppkey, s.s_name ORDER BY l_count LIMIT 10";

fn main() {
    let sf = vectorh_bench::env_sf(0.02);
    println!("§5 rewrite ablation — Figure 5 query at SF {sf}\n{SEC5_SQL}\n");
    let configs: [(&str, bool, bool, bool); 5] = [
        ("all rules on", true, true, true),
        ("no partial aggregation", true, true, false),
        ("no replicated build side", true, false, true),
        ("no local joins", false, true, true),
        ("no rewrites at all", false, false, false),
    ];
    let mut rows = Vec::new();
    let mut reference: Option<Vec<Vec<Value>>> = None;
    let mut base_time = 0.0f64;
    for (label, lj, rb, pa) in configs {
        let vh = engine(lj, rb, pa);
        vectorh_tpch::schema::create_tables(&vh, 6).unwrap();
        vectorh_tpch::schema::load(&vh, vectorh_tpch::gen::generate(sf, 5)).unwrap();
        let exchanges = {
            let plan = vh.explain(SEC5_SQL).unwrap();
            plan.matches("DXchg").count()
        };
        let net0 = vh.net_stats().snapshot();
        let (result, secs) = timed_hot(|| vh.query(SEC5_SQL).unwrap());
        let net = vh.net_stats().snapshot();
        match &reference {
            None => {
                reference = Some(result.clone());
                base_time = secs;
            }
            Some(want) => assert_eq!(
                vectorh_tpch::baseline::canonical(result.clone()),
                vectorh_tpch::baseline::canonical(want.clone()),
                "{label}: answers must not change"
            ),
        }
        rows.push(vec![
            label.to_string(),
            format!("{:.1} ms", secs * 1e3),
            format!("{:.2}x", secs / base_time),
            exchanges.to_string(),
            vectorh_common::util::fmt_bytes(net.net_bytes - net0.net_bytes),
        ]);
    }
    print_table(
        &[
            "configuration",
            "hot time",
            "vs all-on",
            "DXchg ops in plan",
            "network bytes",
        ],
        &rows,
    );
    println!("\npaper shape: 5.02 / 5.64 / 5.67 / 25.51 / 26.14 s — local joins dominate,");
    println!("partial aggregation and replicated builds each save a little.");
}
