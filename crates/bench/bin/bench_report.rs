//! Machine-checkable perf trajectory: writes `BENCH_pr6.json`.
//!
//! Runs every SIMD-touched hot loop twice — the scalar oracle arm forced via
//! `force_mode(Scalar)` ("before": bit-identical to the pre-vectorization
//! code) and the auto-dispatched arm ("after") — plus the fig7 TPC-H end-to-
//! end totals, and serializes everything into one flat JSON report:
//!
//! * `unpack-w<N>` — bit-unpack cycles/value by width (`_rdtsc`-measured);
//! * `hash-columns-1M`, `probe-batch-1M`, `filter-compact-1M`,
//!   `pfor-delta-decode-1M`, `pdict-decode-1M` — elems/s per kernel;
//! * `fig7-tpch` — per-query and total wall seconds, both arms.
//!
//! Every before/after pair is checksum-gated: the run **panics** (nonzero
//! exit, so CI fails) if any SIMD arm diverges from the scalar oracle. The
//! output file is re-read and re-parsed through `report::parse_report`
//! before exit, so a report that isn't machine-parseable also fails the run.
//!
//! `VH_BENCH_QUICK=1` shrinks sizes/reps and the query list for CI smoke;
//! `VH_BENCH_OUT` overrides the output path (default `BENCH_pr6.json`).

use vectorh::{ClusterConfig, VectorH};
use vectorh_bench::harness::Group;
use vectorh_bench::report::Report;
use vectorh_common::rng::SplitMix64;
use vectorh_common::simd::{force_mode, simd_mode, SimdMode};
use vectorh_common::ColumnData;
use vectorh_compress::pfor::PforDelta;
use vectorh_compress::{bitpack, pdict::PdictI64};
use vectorh_exec::kernels::hash::{hash_columns, JOIN_SEED};
use vectorh_exec::kernels::simd::compact_mask;
use vectorh_exec::kernels::table::HashTable;
use vectorh_tpch::baseline::canonical;
use vectorh_tpch::queries::{build_query, run_with, N_QUERIES};

/// FNV-1a over a stream of u64s: the divergence gate between arms.
fn fnv(values: impl IntoIterator<Item = u64>) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for v in values {
        for b in v.to_le_bytes() {
            h = (h ^ b as u64).wrapping_mul(0x100_0000_01b3);
        }
    }
    h
}

fn assert_same(what: &str, scalar: u64, simd: u64) {
    assert_eq!(
        scalar, simd,
        "CHECKSUM DIVERGENCE in {what}: SIMD arm disagrees with scalar oracle"
    );
}

/// Timestamp counter where available; nanoseconds elsewhere (labelled so).
#[cfg(target_arch = "x86_64")]
fn ticks() -> u64 {
    // SAFETY: rdtsc has no preconditions on x86_64.
    unsafe { std::arch::x86_64::_rdtsc() }
}
#[cfg(not(target_arch = "x86_64"))]
fn ticks() -> u64 {
    use std::sync::OnceLock;
    use std::time::Instant;
    static T0: OnceLock<Instant> = OnceLock::new();
    T0.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

#[cfg(target_arch = "x86_64")]
const TICK_UNIT: &str = "cycles/value";
#[cfg(not(target_arch = "x86_64"))]
const TICK_UNIT: &str = "ns/value";

/// Best-of-`reps` ticks for one call of `f`, divided by `n` values.
fn ticks_per_value(n: usize, reps: usize, mut f: impl FnMut()) -> f64 {
    f(); // warm
    let mut best = u64::MAX;
    for _ in 0..reps {
        let t0 = ticks();
        f();
        let dt = ticks().wrapping_sub(t0);
        best = best.min(dt);
    }
    best as f64 / n as f64
}

fn bench_unpack(rep: &mut Report, quick: bool) {
    let n: usize = if quick { 16_384 } else { 65_536 };
    let reps = if quick { 40 } else { 400 };
    let mut rng = SplitMix64::new(0x0BE9C4);
    println!("\n== unpack {TICK_UNIT} (n={n}, best of {reps}) ==");
    for width in [1u8, 2, 3, 4, 5, 7, 8, 12, 16, 24, 32, 48] {
        let mask = if width == 64 {
            u64::MAX
        } else {
            (1u64 << width) - 1
        };
        let values: Vec<u64> = (0..n).map(|_| rng.next_u64() & mask).collect();
        let mut packed = Vec::new();
        bitpack::pack(&values, width, &mut packed);
        let mut out = Vec::with_capacity(n);

        force_mode(Some(SimdMode::Scalar));
        let before = ticks_per_value(n, reps, || {
            out.clear();
            bitpack::unpack(&packed, n, width, &mut out);
        });
        let sum_scalar = fnv(out.iter().copied());

        force_mode(None);
        let after = ticks_per_value(n, reps, || {
            out.clear();
            bitpack::unpack(&packed, n, width, &mut out);
        });
        assert_same(
            &format!("unpack w={width}"),
            sum_scalar,
            fnv(out.iter().copied()),
        );

        let g = format!("unpack-w{width}");
        rep.push(&g, "scalar", before, TICK_UNIT);
        rep.push(&g, "simd", after, TICK_UNIT);
        rep.push(&g, "speedup", before / after, "x");
        println!(
            "{g:<12} scalar {before:>6.3}  {} {after:>6.3}  ({:.2}x)",
            simd_mode().name(),
            before / after
        );
    }
    force_mode(None);
}

fn bench_hash(rep: &mut Report, quick: bool) {
    let n: usize = if quick { 200_000 } else { 1_000_000 };
    let mut rng = SplitMix64::new(0xBE7C);
    let k1: Vec<i64> = (0..n).map(|_| rng.next_bounded(100_000) as i64).collect();
    let k2: Vec<i32> = (0..n).map(|_| rng.next_bounded(2500) as i32).collect();
    let cols = [ColumnData::I64(k1), ColumnData::I32(k2)];
    let refs: Vec<&ColumnData> = cols.iter().collect();

    let mut g = Group::new("hash-columns-1M");
    g.throughput(n as u64);
    let mut out = Vec::new();
    force_mode(Some(SimdMode::Scalar));
    g.bench_rec(rep, "scalar", || {
        hash_columns(&refs, &[0, 1], JOIN_SEED, &mut out);
    });
    let sum_scalar = fnv(out.iter().copied());
    force_mode(None);
    g.bench_rec(rep, "simd", || {
        hash_columns(&refs, &[0, 1], JOIN_SEED, &mut out);
    });
    assert_same("hash_columns", sum_scalar, fnv(out.iter().copied()));

    // Probe: the committed two-pass probe_batch vs the one-pass walk shape
    // it replaced (same table, same hashes — a code-shape comparison, not a
    // dispatch-arm comparison, so no force_mode here).
    let mut table = HashTable::new();
    table.insert_batch(&out);
    let mut g = Group::new("probe-batch-1M");
    g.throughput(n as u64);
    let mut heads = Vec::new();
    g.bench_rec(rep, "two-pass", || table.probe_batch(&out, &mut heads));
    let sum_two = fnv(heads.iter().map(|&r| r as u64));
    g.bench_rec(rep, "one-pass", || {
        heads.clear();
        heads.extend(out.iter().map(|&h| table.first_candidate(h)));
    });
    assert_same("probe_batch", fnv(heads.iter().map(|&r| r as u64)), sum_two);
    force_mode(None);
}

fn bench_filter(rep: &mut Report, quick: bool) {
    let n: usize = if quick { 200_000 } else { 1_000_000 };
    let mut rng = SplitMix64::new(0xF117);
    let mask: Vec<bool> = (0..n).map(|_| rng.chance(0.5)).collect();
    let mut g = Group::new("filter-compact-1M");
    g.throughput(n as u64);
    let mut sel = Vec::new();
    force_mode(Some(SimdMode::Scalar));
    g.bench_rec(rep, "scalar", || compact_mask(&mask, &mut sel));
    let sum_scalar = fnv(sel.iter().map(|&i| i as u64));
    force_mode(None);
    g.bench_rec(rep, "simd", || compact_mask(&mask, &mut sel));
    assert_same(
        "compact_mask",
        sum_scalar,
        fnv(sel.iter().map(|&i| i as u64)),
    );
    force_mode(None);
}

fn bench_decode(rep: &mut Report, quick: bool) {
    let n: usize = if quick { 200_000 } else { 1_000_000 };
    let mut rng = SplitMix64::new(0xDEC0DE);
    // Sorted-ish column with occasional jumps: the PFOR-DELTA sweet spot.
    let mut v = 0i64;
    let deltas: Vec<i64> = (0..n)
        .map(|_| {
            v += if rng.chance(0.02) {
                rng.range_i64(0, 1_000_000)
            } else {
                rng.range_i64(0, 50)
            };
            v
        })
        .collect();
    let pd = PforDelta::encode(&deltas);
    // Skewed low-cardinality column with outliers: the PDICT shape.
    let dict_vals: Vec<i64> = (0..n)
        .map(|_| {
            if rng.chance(0.03) {
                rng.next_u64() as i64
            } else {
                rng.next_bounded(200) as i64
            }
        })
        .collect();
    let pdict = PdictI64::encode(&dict_vals);

    let mut out = Vec::new();
    for (name, decode) in [
        (
            "pfor-delta-decode-1M",
            Box::new(|o: &mut Vec<i64>| {
                o.clear();
                pd.decode(o)
            }) as Box<dyn Fn(&mut Vec<i64>)>,
        ),
        (
            "pdict-decode-1M",
            Box::new(|o: &mut Vec<i64>| {
                o.clear();
                pdict.decode(o)
            }),
        ),
    ] {
        let mut g = Group::new(name);
        g.throughput(n as u64);
        force_mode(Some(SimdMode::Scalar));
        g.bench_rec(rep, "scalar", || decode(&mut out));
        let sum_scalar = fnv(out.iter().map(|&x| x as u64));
        force_mode(None);
        g.bench_rec(rep, "simd", || decode(&mut out));
        assert_same(name, sum_scalar, fnv(out.iter().map(|&x| x as u64)));
    }
    force_mode(None);
}

fn bench_fig7(rep: &mut Report, quick: bool) {
    let sf = vectorh_bench::env_sf(0.01);
    rep.meta("fig7_sf", &format!("{sf}"));
    let vh = VectorH::start(ClusterConfig {
        nodes: 3,
        rows_per_chunk: 8192,
        streams_per_node: 2,
        ..Default::default()
    })
    .unwrap();
    vectorh_tpch::schema::setup(&vh, sf, 6, 42).unwrap();
    let queries: Vec<usize> = if quick {
        vec![1, 6]
    } else {
        (1..=N_QUERIES).collect()
    };
    println!(
        "\n== fig7-tpch (SF {sf}, {} queries, wall s) ==",
        queries.len()
    );
    let mut totals = [0.0f64; 2];
    for &qn in &queries {
        let mut outs: Vec<Vec<Vec<vectorh_common::Value>>> = Vec::new();
        let mut secs_by_arm = [0.0f64; 2];
        for (i, mode) in [Some(SimdMode::Scalar), None].into_iter().enumerate() {
            force_mode(mode);
            let q = build_query(qn).unwrap();
            let (rows, secs) =
                vectorh_bench::timed_hot(|| run_with(&q, |p| vh.query_logical(p)).unwrap());
            outs.push(rows);
            totals[i] += secs;
            secs_by_arm[i] = secs;
            let case = if i == 0 { "scalar" } else { "simd" };
            rep.push("fig7-tpch", &format!("q{qn}/{case}"), secs, "s");
        }
        assert_eq!(
            canonical(outs.swap_remove(0)),
            canonical(outs.swap_remove(0)),
            "fig7 Q{qn}: SIMD arm changed the query answer"
        );
        println!(
            "  Q{qn}: scalar {:.4}s  simd {:.4}s",
            secs_by_arm[0], secs_by_arm[1]
        );
    }
    rep.push("fig7-tpch", "total/scalar", totals[0], "s");
    rep.push("fig7-tpch", "total/simd", totals[1], "s");
    rep.push("fig7-tpch", "total/speedup", totals[0] / totals[1], "x");
    println!(
        "fig7 total: scalar {:.3}s  simd {:.3}s  ({:.2}x)",
        totals[0],
        totals[1],
        totals[0] / totals[1]
    );
    force_mode(None);
}

fn main() {
    let quick = std::env::var("VH_BENCH_QUICK")
        .map(|v| v == "1")
        .unwrap_or(false);
    let out_path = std::env::var("VH_BENCH_OUT").unwrap_or_else(|_| "BENCH_pr6.json".to_string());
    let mut rep = Report::new();
    rep.meta("bench", "pr6");
    rep.meta("quick", if quick { "1" } else { "0" });
    rep.meta("dispatch_after", simd_mode().name());
    rep.meta(
        "host",
        &format!("{}-{}", std::env::consts::ARCH, std::env::consts::OS),
    );

    bench_unpack(&mut rep, quick);
    bench_hash(&mut rep, quick);
    bench_filter(&mut rep, quick);
    bench_decode(&mut rep, quick);
    bench_fig7(&mut rep, quick);

    rep.write_file(&out_path).expect("write report");
    // Self-validate: the committed artifact must stay machine-parseable.
    let back = std::fs::read_to_string(&out_path).expect("re-read report");
    let parsed = vectorh_bench::report::parse_report(&back).expect("re-parse report");
    assert_eq!(parsed, rep.entries(), "report did not round-trip");
    println!(
        "\nwrote {out_path}: {} entries, all SIMD arms checksum-identical to the scalar oracle",
        parsed.len()
    );
}
