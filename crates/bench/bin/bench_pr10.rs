//! Storage-backend perf leg: writes `BENCH_pr10.json`.
//!
//! Compares the two [`BlockStore`] backends head to head:
//!
//! * `store-scan` — raw sealed-file scan throughput (MB/s), the in-memory
//!   simulation's `Vec` copies vs the file backend's mmap'd reads of real
//!   files, measured over identical bytes with identical ranged-read
//!   patterns;
//! * `fig7-backend` — fig7 TPC-H queries end to end, one engine per
//!   backend over the same deterministic dataset, wall seconds per arm.
//!
//! Every query is **answer-gated**: the run panics (CI goes red) if the
//! file backend returns anything but the byte-for-byte identical rows the
//! simulation returns. The report self-validates through
//! `report::parse_report` before exit. `VH_BENCH_QUICK=1` shrinks sizes and
//! the query list; `VH_BENCH_OUT` overrides the output path.

use std::sync::Arc;

use vectorh::{ClusterConfig, StorageBackend, VectorH};
use vectorh_bench::report::Report;
use vectorh_blockstore::FileStore;
use vectorh_common::NodeId;
use vectorh_simhdfs::{BlockStore, DefaultPolicy, SimHdfs, SimHdfsConfig, StoreRef};
use vectorh_tpch::baseline::canonical;
use vectorh_tpch::queries::{build_query, run_with};

/// MB/s scanning one sealed file in 1 MiB ranged reads from a node that
/// holds a replica (the short-circuit-local path both backends optimise).
fn scan_mbps(fs: &StoreRef, path: &str, len: usize, reps: usize) -> f64 {
    let step = 1 << 20;
    let mut best = f64::MAX;
    for _ in 0..reps {
        let (_, secs) = vectorh_bench::timed(|| {
            let mut at = 0usize;
            let mut sum = 0u64;
            while at < len {
                let take = step.min(len - at);
                let buf = fs.read(path, at as u64, take, Some(NodeId(0))).unwrap();
                sum += buf.iter().map(|&b| b as u64).sum::<u64>();
                at += take;
            }
            sum
        });
        best = best.min(secs);
    }
    len as f64 / (1 << 20) as f64 / best
}

fn bench_store_scan(rep: &mut Report, quick: bool) {
    let mb = if quick { 8 } else { 64 };
    let len = mb << 20;
    let reps = if quick { 3 } else { 8 };
    let payload: Vec<u8> = (0..len)
        .map(|i| (i as u32).wrapping_mul(2654435761) as u8)
        .collect();
    let config = SimHdfsConfig {
        block_size: 4 << 20,
        default_replication: 2,
    };
    let sim: StoreRef = Arc::new(SimHdfs::new(
        3,
        config.clone(),
        Arc::new(DefaultPolicy::new(1)),
    ));
    let file: StoreRef =
        Arc::new(FileStore::new(3, config.clone(), Arc::new(DefaultPolicy::new(1)), "").unwrap());
    println!("\n== store-scan ({mb} MiB sealed file, 1 MiB ranged reads, best of {reps}) ==");
    let mut rates = Vec::new();
    for (name, fs) in [("sim", &sim), ("file", &file)] {
        fs.append("/bench/scan", &payload, Some(NodeId(0))).unwrap();
        fs.sync("/bench/scan").unwrap();
        let mbps = scan_mbps(fs, "/bench/scan", len, reps);
        rep.push("store-scan", name, mbps, "MB/s");
        println!("  {name:<5} {mbps:>9.1} MB/s");
        rates.push(mbps);
    }
    let ratio = rates[1] / rates[0];
    rep.push("store-scan", "file/sim", ratio, "x");
    println!("  file/sim ratio {ratio:.2}x");
}

fn bench_fig7_backend(rep: &mut Report, quick: bool) {
    let sf = vectorh_bench::env_sf(0.01);
    rep.meta("fig7_sf", &format!("{sf}"));
    let queries: Vec<usize> = if quick { vec![1, 6] } else { vec![1, 3, 6, 12] };
    let engines: Vec<(&str, VectorH)> = [
        ("sim", StorageBackend::Sim),
        ("file", StorageBackend::File(String::new())),
    ]
    .into_iter()
    .map(|(name, backend)| {
        let vh = VectorH::start(ClusterConfig {
            nodes: 3,
            rows_per_chunk: 8192,
            streams_per_node: 2,
            storage_backend: backend,
            ..Default::default()
        })
        .unwrap();
        vectorh_tpch::schema::setup(&vh, sf, 6, 42).unwrap();
        (name, vh)
    })
    .collect();
    println!(
        "\n== fig7-backend (SF {sf}, {} queries, wall s) ==",
        queries.len()
    );
    let mut totals = [0.0f64; 2];
    for &qn in &queries {
        let mut outs = Vec::new();
        let mut secs_by_arm = [0.0f64; 2];
        for (i, (name, vh)) in engines.iter().enumerate() {
            let q = build_query(qn).unwrap();
            let (rows, secs) =
                vectorh_bench::timed_hot(|| run_with(&q, |p| vh.query_logical(p)).unwrap());
            outs.push(canonical(rows));
            totals[i] += secs;
            secs_by_arm[i] = secs;
            rep.push("fig7-backend", &format!("q{qn}/{name}"), secs, "s");
        }
        assert_eq!(
            outs[0], outs[1],
            "fig7-backend Q{qn}: file backend changed the query answer"
        );
        println!(
            "  Q{qn}: sim {:.4}s  file {:.4}s",
            secs_by_arm[0], secs_by_arm[1]
        );
    }
    rep.push("fig7-backend", "total/sim", totals[0], "s");
    rep.push("fig7-backend", "total/file", totals[1], "s");
    rep.push("fig7-backend", "answers_match", 1.0, "bool");
    let (_, file_vh) = &engines[1];
    rep.push(
        "fig7-backend",
        "file_fsyncs",
        file_vh.fs().stats().snapshot().fsync_ops as f64,
        "ops",
    );
    println!(
        "fig7-backend total: sim {:.3}s  file {:.3}s (answers byte-identical)",
        totals[0], totals[1]
    );
}

fn main() {
    let quick = std::env::var("VH_BENCH_QUICK")
        .map(|v| v == "1")
        .unwrap_or(false);
    let out_path = std::env::var("VH_BENCH_OUT").unwrap_or_else(|_| "BENCH_pr10.json".to_string());
    let mut rep = Report::new();
    rep.meta("bench", "pr10");
    rep.meta("quick", if quick { "1" } else { "0" });
    rep.meta(
        "host",
        &format!("{}-{}", std::env::consts::ARCH, std::env::consts::OS),
    );

    bench_store_scan(&mut rep, quick);
    bench_fig7_backend(&mut rep, quick);

    rep.write_file(&out_path).expect("write report");
    let back = std::fs::read_to_string(&out_path).expect("re-read report");
    let parsed = vectorh_bench::report::parse_report(&back).expect("re-parse report");
    assert_eq!(parsed, rep.entries(), "report did not round-trip");
    println!(
        "\nwrote {out_path}: {} entries, file backend byte-identical to the simulation",
        parsed.len()
    );
}
