//! Figure 7 (bottom) — impact of updates: RF1/RF2 and GeoDiff.
//!
//! The paper: "Hive query performance after these updates deteriorates to
//! be 38% slower than before. In VectorH, the GeoDiff is 2.8%, which is in
//! range of noise. Therefore, thanks to PDTs, query performance remains
//! unaffected by updates." (Hive: RF1=34s RF2=112s GeoDiff=138.2% —
//! VectorH: RF1=17.8s RF2=8.4s GeoDiff=102.8%.)
//!
//! We run RF1 (trickle inserts into PDTs at clustered positions) and RF2
//! (positional deletes) on VectorH, and the same refresh as *key-matched
//! delta tables* on the Hive-like rowstore baseline; then re-run the 22
//! queries on both and report the ratio of geometric means.

use vectorh::{ClusterConfig, VectorH};
use vectorh_bench::{print_table, timed, timed_hot};
use vectorh_common::util::geometric_mean;
use vectorh_tpch::baseline::{BaselineDb, BaselineKind};
use vectorh_tpch::queries::{build_query, run_with, N_QUERIES};
use vectorh_tpch::refresh::{refresh_set, rf1, rf2};

fn sweep_vh(vh: &VectorH) -> Vec<f64> {
    (1..=N_QUERIES)
        .map(|qn| {
            let q = build_query(qn).unwrap();
            let (_, t) = timed_hot(|| run_with(&q, |p| vh.query_logical(p)).unwrap());
            t.max(1e-6)
        })
        .collect()
}

fn sweep_baseline(db: &BaselineDb) -> Vec<f64> {
    (1..=N_QUERIES)
        .map(|qn| {
            let q = build_query(qn).unwrap();
            let (_, t) = timed_hot(|| db.run_query(&q, BaselineKind::NaiveColumnar).unwrap());
            t.max(1e-6)
        })
        .collect()
}

fn main() {
    let sf = vectorh_bench::env_sf(0.01);
    println!("Figure 7 update impact — TPC-H at SF {sf}\n");
    let vh = VectorH::start(ClusterConfig {
        nodes: 3,
        rows_per_chunk: 8192,
        ..Default::default()
    })
    .unwrap();
    let data = vectorh_tpch::schema::setup(&vh, sf, 6, 42).unwrap();
    let mut db = BaselineDb::load(&data).unwrap();
    // RF pair count ≈ SF × 1500, clamped for tiny runs.
    let pairs = ((sf * 1500.0) as usize).clamp(10, 2000);
    let set = refresh_set(&data, pairs, 7);

    println!("measuring the 22 queries before updates...");
    let vh_before = sweep_vh(&vh);
    let base_before = sweep_baseline(&db);

    // --- VectorH refresh: PDTs ------------------------------------------------
    let (_, vh_rf1) = timed(|| rf1(&vh, &set).unwrap());
    let (deleted, vh_rf2) = timed(|| rf2(&vh, &set).unwrap());
    println!(
        "VectorH RF1 ({} orders + {} lineitems): {:.1} ms | RF2 ({} rows deleted): {:.1} ms",
        set.orders.len(),
        set.lineitems.len(),
        vh_rf1 * 1e3,
        deleted,
        vh_rf2 * 1e3
    );
    // How much landed in PDTs?
    let rt = vh.table("lineitem").unwrap();
    let pdt_entries: usize = rt
        .pids
        .iter()
        .map(|pid| {
            let st = vh.txns.partition_state(*pid).unwrap();
            st.read.n_entries() + st.write.n_entries()
        })
        .sum();
    println!("lineitem PDT entries after refresh: {pdt_entries}");

    // --- Hive-like refresh: delta tables matched by key -----------------------
    let (_, base_rf) = timed(|| {
        db.apply_delta("orders", 0, set.orders.clone(), set.delete_keys.clone());
        db.apply_delta(
            "lineitem",
            0,
            set.lineitems.clone(),
            set.delete_keys.clone(),
        );
    });
    println!(
        "baseline delta registration: {:.1} ms (cost is paid at query time)\n",
        base_rf * 1e3
    );

    println!("re-measuring the 22 queries after updates...");
    let vh_after = sweep_vh(&vh);
    let base_after = sweep_baseline(&db);

    let geodiff = |before: &[f64], after: &[f64]| -> f64 {
        geometric_mean(after) / geometric_mean(before) * 100.0
    };
    let vh_geodiff = geodiff(&vh_before, &vh_after);
    let base_geodiff = geodiff(&base_before, &base_after);

    let mut rows = Vec::new();
    rows.push(vec![
        "VectorH (PDTs)".into(),
        format!("{:.1} ms", vh_rf1 * 1e3),
        format!("{:.1} ms", vh_rf2 * 1e3),
        format!("{vh_geodiff:.1}%"),
    ]);
    rows.push(vec![
        "baseline (key-matched delta tables)".into(),
        "n/a (deferred)".into(),
        "n/a (deferred)".into(),
        format!("{base_geodiff:.1}%"),
    ]);
    print_table(&["engine", "RF1", "RF2", "GeoDiff (after/before)"], &rows);

    println!("\nper-query slowdown after updates (after/before):");
    let mut per_q = Vec::new();
    for i in 0..N_QUERIES {
        per_q.push(vec![
            format!("Q{}", i + 1),
            format!("{:.2}x", vh_after[i] / vh_before[i]),
            format!("{:.2}x", base_after[i] / base_before[i]),
        ]);
    }
    print_table(&["query", "vectorh", "delta-table baseline"], &per_q);

    println!("\npaper shape: VectorH GeoDiff ≈ 102.8% (noise) vs Hive 138.2% — positional");
    println!("PDT merging is nearly free, key-matched delta merging is not.");
    assert!(
        base_geodiff > vh_geodiff,
        "delta-table merging must cost more than PDT merging ({base_geodiff:.1}% vs {vh_geodiff:.1}%)"
    );
}
