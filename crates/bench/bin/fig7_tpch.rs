//! Figure 7 — TPC-H: VectorH vs comparator engines, all 22 queries.
//!
//! The paper's headline table: VectorH vs HAWQ, SparkSQL, Impala and Hive at
//! SF1000 on 9 nodes, with VectorH 1–3 orders of magnitude faster. Our
//! comparators are the two from-scratch baselines (see
//! `vectorh_tpch::baseline`): **rowstore** (tuple-at-a-time, Hive/HAWQ-like)
//! and **naive columnar** (single-threaded, value-at-a-time decoding, no
//! skipping — Impala-like). The shape to reproduce: VectorH wins every
//! query; the columnar baseline beats the rowstore but still loses clearly.
//!
//! `VH_SF=0.05 cargo run --release --bin fig7_tpch` for a bigger run.

use vectorh::{ClusterConfig, VectorH};
use vectorh_bench::{print_table, timed_hot};
use vectorh_common::util::geometric_mean;
use vectorh_tpch::baseline::{canonical, BaselineDb, BaselineKind};
use vectorh_tpch::queries::{build_query, run_with, TpchQuery, N_QUERIES};

/// Estimate the wall time this query would take on a real cluster with
/// `slots` concurrent streams: the host has one core, so the per-sender
/// pipeline work measured in the profile runs *serially* here; on the
/// cluster it runs `slots`-wide. serial_part + parallel_work/slots.
fn estimate_cluster_secs(vh: &VectorH, q: &TpchQuery, slots: f64) -> f64 {
    let mut total = 0.0;
    let _ = run_with(q, |plan| {
        let phys = vh.optimize(plan)?;
        let t0 = std::time::Instant::now();
        let (rows, profile) = vh.run_physical_public(&phys)?;
        let wall = t0.elapsed().as_secs_f64();
        let mut parallel = 0.0f64;
        for line in profile.lines() {
            let t = line.trim_start();
            if t.starts_with("sender ") || t.starts_with("thread ") {
                if let Some(ms) = t
                    .split("cum_time=")
                    .nth(1)
                    .and_then(|r| r.split("ms").next())
                {
                    if let Ok(v) = ms.parse::<f64>() {
                        parallel += v / 1e3;
                    }
                }
            }
        }
        let parallel = parallel.min(wall);
        total += (wall - parallel) + parallel / slots;
        Ok(rows)
    });
    total
}

fn main() {
    let sf = vectorh_bench::env_sf(0.01);
    println!("Figure 7 reproduction — TPC-H at SF {sf}\n");
    let vh = VectorH::start(ClusterConfig {
        nodes: 3,
        rows_per_chunk: 8192,
        streams_per_node: 2,
        ..Default::default()
    })
    .unwrap();
    let data = vectorh_tpch::schema::setup(&vh, sf, 6, 42).unwrap();
    println!(
        "loaded {} total rows; lineitem stored as {} compressed",
        data.total_rows(),
        vectorh_common::util::fmt_bytes(vh.table_bytes("lineitem").unwrap())
    );
    let db = BaselineDb::load(&data).unwrap();

    // On a real cluster the per-partition pipelines run concurrently; this
    // single-core host serializes them, so we report both the measured wall
    // time and the estimated cluster time (parallel work ÷ stream slots).
    let slots = (vh.workers().len() * vh.streams_per_node()) as f64;
    let mut rows = Vec::new();
    let mut vh_times = Vec::new();
    let mut vh_est = Vec::new();
    let mut col_times = Vec::new();
    let mut row_times = Vec::new();
    for qn in 1..=N_QUERIES {
        let q = build_query(qn).unwrap();
        let (vh_out, vh_t) = timed_hot(|| run_with(&q, |p| vh.query_logical(p)).unwrap());
        let est = estimate_cluster_secs(&vh, &build_query(qn).unwrap(), slots);
        let q2 = build_query(qn).unwrap();
        let (col_out, col_t) =
            timed_hot(|| db.run_query(&q2, BaselineKind::NaiveColumnar).unwrap());
        let q3 = build_query(qn).unwrap();
        let (row_out, row_t) = timed_hot(|| db.run_query(&q3, BaselineKind::RowStore).unwrap());
        assert_eq!(
            canonical(vh_out.clone()),
            canonical(row_out),
            "Q{qn} mismatch vs rowstore"
        );
        assert_eq!(
            canonical(vh_out),
            canonical(col_out),
            "Q{qn} mismatch vs columnar"
        );
        vh_times.push(vh_t.max(1e-6));
        vh_est.push(est.max(1e-6));
        col_times.push(col_t.max(1e-6));
        row_times.push(row_t.max(1e-6));
        rows.push(vec![
            format!("Q{qn}"),
            format!("{:.1}", vh_t * 1e3),
            format!("{:.2}M", data.total_rows() as f64 / vh_t / 1e6),
            format!("{:.1}", est * 1e3),
            format!("{:.1}", col_t * 1e3),
            format!("{:.1}", row_t * 1e3),
            format!("{:.1}x", col_t / est),
            format!("{:.1}x", row_t / est),
        ]);
    }
    let gm = |xs: &[f64]| geometric_mean(xs);
    rows.push(vec![
        "GEO-MEAN".into(),
        format!("{:.1}", gm(&vh_times) * 1e3),
        format!("{:.2}M", data.total_rows() as f64 / gm(&vh_times) / 1e6),
        format!("{:.1}", gm(&vh_est) * 1e3),
        format!("{:.1}", gm(&col_times) * 1e3),
        format!("{:.1}", gm(&row_times) * 1e3),
        format!("{:.1}x", gm(&col_times) / gm(&vh_est)),
        format!("{:.1}x", gm(&row_times) / gm(&vh_est)),
    ]);
    print_table(
        &[
            "query",
            "vectorh wall ms",
            "vh rows/s",
            "vectorh est-cluster ms",
            "naive-columnar ms",
            "rowstore ms",
            "col/vh",
            "row/vh",
        ],
        &rows,
    );
    println!(
        "\nthroughput: {} table rows per query; geo-mean VectorH rate {:.2}M rows/s (wall)",
        data.total_rows(),
        data.total_rows() as f64 / gm(&vh_times) / 1e6
    );
    println!("\n\"how many times faster is VectorH\" (the Figure 7 chart series, est-cluster):");
    let series: Vec<String> = (0..N_QUERIES)
        .map(|i| format!("Q{}:{:.0}x", i + 1, row_times[i] / vh_est[i]))
        .collect();
    println!("  vs rowstore:       {}", series.join(" "));
    let series: Vec<String> = (0..N_QUERIES)
        .map(|i| format!("Q{}:{:.1}x", i + 1, col_times[i] / vh_est[i]))
        .collect();
    println!("  vs naive-columnar: {}", series.join(" "));
    println!("\nnote: the host is a single-core machine — the measured wall column serializes");
    println!("all per-partition pipelines; the est-cluster column divides the profiled");
    println!(
        "parallel pipeline work across the cluster's stream slots ({} here).",
        slots
    );
    println!("\npaper shape: VectorH wins everywhere; the gap to the tuple-at-a-time engine");
    println!("is the largest (Hive/HAWQ-like), the single-core columnar engine (Impala-like)");
    println!("sits in between.");
}
