//! §5 DXchg buffering — thread-to-thread vs thread-to-node.
//!
//! The paper: thread-to-thread needs `2·nodes·cores²` buffers per node
//! (20 GB at 100 nodes × 20 cores with 256 KB buffers) while thread-to-node
//! needs `2·nodes·cores`; the one-byte route column makes the latter
//! scalable, while "on low core counts and small clusters the
//! thread-to-thread implementation is still used as it has a small
//! performance advantage". We sweep cluster shapes and report peak buffer
//! memory, message counts and throughput for both modes.

use std::sync::Arc;

use vectorh_bench::{print_table, timed};
use vectorh_common::{ColumnData, DataType, Schema};
use vectorh_exec::operator::BatchSource;
use vectorh_exec::{Batch, Operator};
use vectorh_net::dxchg::{dxchg_hash_split, DxchgConfig};
use vectorh_net::{FanoutMode, NetStats};

fn run(
    nodes: u32,
    threads_per_node: u32,
    rows_per_producer: i64,
    mode: FanoutMode,
) -> (f64, u64, u64, u64) {
    let schema = Arc::new(Schema::of(&[("k", DataType::I64), ("v", DataType::I64)]));
    let producers: Vec<(u32, Box<dyn Operator>)> = (0..nodes)
        .map(|node| {
            let from = node as i64 * rows_per_producer;
            let batch = Batch::new(
                schema.clone(),
                vec![
                    ColumnData::I64((from..from + rows_per_producer).collect()),
                    ColumnData::I64((0..rows_per_producer).collect()),
                ],
            )
            .unwrap();
            (
                node,
                Box::new(BatchSource::from_batch(batch, 1024)) as Box<dyn Operator>,
            )
        })
        .collect();
    let consumers: Vec<u32> = (0..nodes)
        .flat_map(|n| std::iter::repeat_n(n, threads_per_node as usize))
        .collect();
    let stats = Arc::new(NetStats::default());
    let config = DxchgConfig {
        buffer_bytes: 64 * 1024,
        mode,
        fault: None,
        fabric: None,
    };
    let (rows, secs) = timed(|| {
        let receivers =
            dxchg_hash_split(producers, consumers, vec![0], config, stats.clone()).unwrap();
        // Drain consumers on their own threads (as real queries do).
        let handles: Vec<_> = receivers
            .into_iter()
            .map(|mut r| {
                std::thread::spawn(move || {
                    let mut n = 0u64;
                    while let Some(b) = r.next().unwrap() {
                        n += b.len() as u64;
                    }
                    n
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).sum::<u64>()
    });
    let snap = stats.snapshot();
    (
        secs,
        rows,
        snap.buffer_bytes_peak,
        snap.net_messages + snap.intra_messages,
    )
}

fn main() {
    println!("§5 DXchg fanout comparison (buffer = 64 KB per slot)\n");
    let rows_per_producer = std::env::var("VH_ROWS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(300_000i64);
    let shapes = [(2u32, 2u32), (3, 4), (4, 8), (6, 8)];
    let mut out = Vec::new();
    for (nodes, threads) in shapes {
        let mut per_mode = Vec::new();
        for mode in [FanoutMode::ThreadToThread, FanoutMode::ThreadToNode] {
            let (secs, rows, peak, msgs) = run(nodes, threads, rows_per_producer, mode);
            assert_eq!(rows, nodes as u64 * rows_per_producer as u64);
            per_mode.push((secs, peak, msgs));
        }
        let (t2t, t2n) = (per_mode[0], per_mode[1]);
        out.push(vec![
            format!("{nodes}x{threads}"),
            format!(
                "{:.0} MB/s",
                (rows_per_producer * nodes as i64 * 16) as f64 / t2t.0 / 1e6
            ),
            vectorh_common::util::fmt_bytes(t2t.1),
            t2t.2.to_string(),
            format!(
                "{:.0} MB/s",
                (rows_per_producer * nodes as i64 * 16) as f64 / t2n.0 / 1e6
            ),
            vectorh_common::util::fmt_bytes(t2n.1),
            t2n.2.to_string(),
            format!("{:.1}x", t2t.1 as f64 / t2n.1 as f64),
        ]);
    }
    print_table(
        &[
            "nodes x threads",
            "t2t throughput",
            "t2t peak buffers",
            "t2t msgs",
            "t2n throughput",
            "t2n peak buffers",
            "t2n msgs",
            "buffer saving",
        ],
        &out,
    );
    println!("\npaper shape: buffer memory grows quadratically with cores for thread-to-thread");
    println!("(2·N·C²·buf) vs linearly for thread-to-node (2·N·C·buf) — the saving factor");
    println!("equals the per-node thread count; t2t keeps a small edge on tiny clusters.");
    // Extrapolate the paper's 100×20 example.
    let buf = 256 * 1024u64;
    let t2t = 2 * 100 * 20u64 * 20 * buf;
    let t2n = 2 * 100 * 20u64 * buf;
    println!(
        "\nat the paper's 100 nodes × 20 cores with 256 KB buffers: t2t = {} per node, t2n = {}",
        vectorh_common::util::fmt_bytes(t2t),
        vectorh_common::util::fmt_bytes(t2n)
    );
}
