//! Figure 2 + Figure 3 + §3 locality — partition affinity mapping before
//! and after a node failure.
//!
//! Recreates the paper's example: tables R and S with 12 co-located
//! partitions on 4 nodes at R=3. Prints the affinity map and responsibility
//! assignment (Figure 2 top), kills node 3, and prints the recomputed
//! mapping (Figure 2 bottom) produced by the min-cost-flow solvers
//! (Figure 3), verifying:
//!
//! * co-location of matching R/S partitions survives the failure,
//! * responsibility spreads 12/3 = 4 per surviving node,
//! * only the dead node's replicas get re-replicated,
//! * scans remain 100% short-circuit local before and after (E12).

use vectorh::{ClusterConfig, TableBuilder, VectorH};
use vectorh_bench::print_table;
use vectorh_common::util::fmt_bytes;
use vectorh_common::{DataType, NodeId, Value};

fn print_mapping(vh: &VectorH, label: &str) {
    println!("\n{label}");
    let mut rows = Vec::new();
    for t in ["r", "s"] {
        let rt = vh.table(t).unwrap();
        for (i, pid) in rt.pids.iter().enumerate() {
            let dir = format!("/vectorh/db/{t}/p{i:04}/");
            let files = vh.fs().list(&dir);
            let mut nodes: Vec<String> = vh
                .workers()
                .iter()
                .filter(|w| {
                    files
                        .iter()
                        .all(|f| vh.fs().fully_local(&f.path, **w).unwrap_or(false))
                })
                .map(|w| w.to_string())
                .collect();
            nodes.sort();
            rows.push(vec![
                format!("{}{:02}", t.to_uppercase(), i + 1),
                vh.responsible(*pid).to_string(),
                nodes.join(","),
            ]);
        }
    }
    print_table(&["partition", "responsible", "replica nodes"], &rows);
}

fn co_location_holds(vh: &VectorH) -> bool {
    let r = vh.table("r").unwrap();
    let s = vh.table("s").unwrap();
    r.pids
        .iter()
        .zip(&s.pids)
        .all(|(rp, sp)| vh.responsible(*rp) == vh.responsible(*sp))
}

fn scan_locality(vh: &VectorH) -> (u64, u64) {
    let before = vh.fs().stats().snapshot();
    vh.query("SELECT count(*) FROM r").unwrap();
    vh.query("SELECT count(*) FROM s").unwrap();
    let d = vh.fs().stats().snapshot().since(&before);
    (d.local_read_bytes, d.remote_read_bytes)
}

fn main() {
    println!("Figure 2 reproduction — 12 partitions of R,S on 4 nodes, R=3");
    let vh = VectorH::start(ClusterConfig {
        nodes: 4,
        replication: 3,
        rows_per_chunk: 512,
        ..Default::default()
    })
    .unwrap();
    for t in ["r", "s"] {
        vh.create_table(
            TableBuilder::new(t)
                .column("key", DataType::I64)
                .column("v", DataType::I64)
                .partition_by(&["key"], 12),
        )
        .unwrap();
        vh.insert_rows(
            t,
            (0..24_000)
                .map(|i| vec![Value::I64(i), Value::I64(i % 7)])
                .collect(),
        )
        .unwrap();
    }

    print_mapping(&vh, "before failure (round-robin initial affinity):");
    println!(
        "\nco-located R/S responsibility: {}",
        co_location_holds(&vh)
    );
    let (local, remote) = scan_locality(&vh);
    println!(
        "scan IO: {} local / {} remote",
        fmt_bytes(local),
        fmt_bytes(remote)
    );
    assert_eq!(remote, 0, "all table IO short-circuited before failure");

    // The co-located join runs without any repartition exchange.
    let explain = vh
        .explain("SELECT count(*) FROM r JOIN s ON r.key = s.key")
        .unwrap();
    println!("\nWHERE R.key = S.key join plan:\n{explain}");

    println!("*** node3 fails ***");
    let rerep_before = vh.fs().stats().snapshot().rereplicated_bytes;
    vh.kill_node(NodeId(3)).unwrap();
    let rerep = vh.fs().stats().snapshot().rereplicated_bytes - rerep_before;
    println!(
        "re-replicated {} (only the lost replicas move)",
        fmt_bytes(rerep)
    );

    print_mapping(&vh, "after failure (min-cost-flow remap, Figure 2 bottom):");
    // Responsibility spread 12/3 nodes.
    let rt = vh.table("r").unwrap();
    let mut per_node = std::collections::HashMap::new();
    for pid in &rt.pids {
        *per_node.entry(vh.responsible(*pid)).or_insert(0u32) += 1;
    }
    println!("\nresponsibility per surviving node: {per_node:?}");
    assert!(per_node.values().all(|&c| c == 4), "even 12/3 spread");
    println!("co-located R/S responsibility: {}", co_location_holds(&vh));

    let (local, remote) = scan_locality(&vh);
    println!(
        "scan IO after failover: {} local / {} remote",
        fmt_bytes(local),
        fmt_bytes(remote)
    );
    assert_eq!(remote, 0, "all table IO short-circuited after failover");

    // Join answers still correct.
    let rows = vh
        .query("SELECT count(*) FROM r JOIN s ON r.key = s.key")
        .unwrap();
    println!("\nR ⋈ S row count after failover: {}", rows[0][0]);
    assert_eq!(rows[0][0], Value::I64(24_000));
    println!("\nOK — Figure 2 semantics reproduced.");
}
