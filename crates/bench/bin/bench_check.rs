//! Validate a committed `BENCH_*.json` perf report.
//!
//! CI runs this against both freshly generated quick reports and the
//! committed artifacts (`BENCH_pr6.json`, `BENCH_pr8.json`,
//! `BENCH_pr10.json`): the file must exist, parse through the in-tree JSON
//! parser, contain entries, and pass every acceptance gate that applies to
//! its contents:
//!
//! * **unpack reports** — when the recording host dispatched a vector arm,
//!   at least 2x cycles/value improvement on every narrow bit-unpack width
//!   (≤ 16);
//! * **load_gen reports** — zero client-visible failures, positive
//!   throughput, and a complete counter set (the front door's "node death
//!   is invisible" promise, machine-checked in the artifact);
//! * **backend reports** — the file backend's fig7 answers byte-identical
//!   to the simulation's, durability fsyncs actually recorded, positive
//!   raw-scan throughput on both backends.
//!
//! A report matching no gate fails. Exits nonzero (panics) on any
//! violation, so a regression that sneaks into a committed artifact turns
//! the build red.

use vectorh_bench::report::{parse, parse_report, Entry};

fn check_unpack(path: &str, entries: &[Entry], dispatch: &str) -> usize {
    let mut checked = 0;
    for w in [1u8, 2, 3, 4, 5, 7, 8, 12, 16] {
        let group = format!("unpack-w{w}");
        let Some(e) = entries
            .iter()
            .find(|e| e.group == group && e.case == "speedup")
        else {
            continue;
        };
        checked += 1;
        if dispatch != "scalar" {
            assert!(
                e.value >= 2.0,
                "{path}: {group} speedup {:.2}x < 2x (dispatch {dispatch})",
                e.value
            );
        }
    }
    checked
}

fn check_load_gen(path: &str, entries: &[Entry]) -> usize {
    let get = |case: &str| {
        entries
            .iter()
            .find(|e| e.group == "load_gen" && e.case == case)
            .unwrap_or_else(|| panic!("{path}: load_gen report missing `{case}`"))
            .value
    };
    assert!(
        get("client_visible_failures") == 0.0,
        "{path}: client-visible failures recorded"
    );
    assert!(get("queries") >= get("clients"), "{path}: partial run");
    assert!(get("qps") > 0.0, "{path}: nonpositive throughput");
    for case in ["p50", "p99", "retries_absorbed", "rejected_busy"] {
        let v = get(case);
        assert!(v >= 0.0, "{path}: {case} = {v} is negative");
    }
    1
}

fn check_backend(path: &str, entries: &[Entry]) -> usize {
    let get = |group: &str, case: &str| {
        entries
            .iter()
            .find(|e| e.group == group && e.case == case)
            .unwrap_or_else(|| panic!("{path}: backend report missing `{group}/{case}`"))
            .value
    };
    assert!(
        get("fig7-backend", "answers_match") == 1.0,
        "{path}: file backend diverged from the simulation"
    );
    assert!(
        get("fig7-backend", "total/sim") > 0.0 && get("fig7-backend", "total/file") > 0.0,
        "{path}: nonpositive backend query times"
    );
    assert!(
        get("fig7-backend", "file_fsyncs") > 0.0,
        "{path}: file backend recorded no fsyncs — durability points not firing"
    );
    assert!(
        get("store-scan", "sim") > 0.0 && get("store-scan", "file") > 0.0,
        "{path}: nonpositive raw scan throughput"
    );
    1
}

fn main() {
    let path = std::env::args()
        .nth(1)
        .expect("usage: bench_check <report.json>");
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"));
    let entries = parse_report(&text).unwrap_or_else(|e| panic!("{path}: {e}"));
    assert!(!entries.is_empty(), "{path}: report has no entries");
    let doc = parse(&text).expect("already parsed once");
    let dispatch = doc
        .get("meta")
        .and_then(|m| m.get("dispatch_after"))
        .and_then(|v| v.as_str())
        .unwrap_or("unknown")
        .to_string();

    let mut gates = Vec::new();
    let unpack = check_unpack(&path, &entries, &dispatch);
    if unpack > 0 {
        gates.push(format!(
            "{unpack} narrow unpack widths >= 2x (dispatch {dispatch})"
        ));
    }
    if entries.iter().any(|e| e.group == "load_gen") {
        check_load_gen(&path, &entries);
        gates.push("load_gen: zero client-visible failures".to_string());
    }
    if entries.iter().any(|e| e.group == "fig7-backend") {
        check_backend(&path, &entries);
        gates.push("backend: file answers byte-identical, fsyncs firing".to_string());
    }
    assert!(
        !gates.is_empty(),
        "{path}: no acceptance gate applies to this report"
    );
    println!("{path}: {} entries ok; {}", entries.len(), gates.join("; "));
}
