//! Validate a committed `BENCH_*.json` perf report.
//!
//! CI's bench-smoke job runs this against both the freshly generated quick
//! report and the committed `BENCH_pr6.json`: the file must exist, parse
//! through the in-tree JSON parser, contain entries, and — when the
//! recording host dispatched a vector arm — show the headline acceptance
//! bar: at least 2x cycles/value improvement on every narrow bit-unpack
//! width (≤ 16). Exits nonzero (panics) on any violation, so a regression
//! that sneaks into the committed artifact turns the build red.

use vectorh_bench::report::{parse, parse_report};

fn main() {
    let path = std::env::args()
        .nth(1)
        .expect("usage: bench_check <report.json>");
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"));
    let entries = parse_report(&text).unwrap_or_else(|e| panic!("{path}: {e}"));
    assert!(!entries.is_empty(), "{path}: report has no entries");
    let doc = parse(&text).expect("already parsed once");
    let dispatch = doc
        .get("meta")
        .and_then(|m| m.get("dispatch_after"))
        .and_then(|v| v.as_str())
        .unwrap_or("unknown")
        .to_string();

    let mut checked = 0;
    for w in [1u8, 2, 3, 4, 5, 7, 8, 12, 16] {
        let group = format!("unpack-w{w}");
        let Some(e) = entries
            .iter()
            .find(|e| e.group == group && e.case == "speedup")
        else {
            continue;
        };
        checked += 1;
        if dispatch != "scalar" {
            assert!(
                e.value >= 2.0,
                "{path}: {group} speedup {:.2}x < 2x (dispatch {dispatch})",
                e.value
            );
        }
    }
    assert!(
        checked > 0,
        "{path}: no narrow-width unpack speedup entries"
    );
    println!(
        "{path}: {} entries ok; {checked} narrow unpack widths >= 2x (dispatch {dispatch})",
        entries.len()
    );
}
