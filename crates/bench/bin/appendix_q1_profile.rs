//! Appendix — the TPC-H Q1 execution profile.
//!
//! The paper's appendix shows Q1's profile: a DXchgUnion on top of 180
//! per-thread pipelines of MScan → Select → Project → Aggr(DIRECT), with
//! per-operator `time` / `cum_time` / tuple counts and the per-thread load
//! balance ("cum time in the parallel Aggr varies between 2.95G and 3.64G
//! cycles (20%) ... the overall performance penalty for this is less than
//! 15%"). This harness prints the same structure for our Q1 run, plus the
//! per-sender balance statistics.

use vectorh::{ClusterConfig, VectorH};
use vectorh_bench::timed;
use vectorh_tpch::queries::{build_query, run_with, TpchQuery};

fn main() {
    let sf = vectorh_bench::env_sf(0.02);
    println!("Appendix reproduction — TPC-H Q1 profile at SF {sf}\n");
    let vh = VectorH::start(ClusterConfig {
        nodes: 3,
        rows_per_chunk: 8192,
        streams_per_node: 2,
        ..Default::default()
    })
    .unwrap();
    vectorh_tpch::schema::setup(&vh, sf, 6, 42).unwrap();

    let q = build_query(1).unwrap();
    let plan = match &q {
        TpchQuery::Single(p) => p.clone(),
        _ => unreachable!("Q1 is a single plan"),
    };
    println!(
        "distributed plan:\n{}",
        vh.optimize(&plan).unwrap().explain()
    );

    // Warm, then profile.
    let _ = run_with(&q, |p| vh.query_logical(p)).unwrap();
    let phys = vh.optimize(&plan).unwrap();
    let ((rows, profile), wall) = timed(|| vh.run_physical_public(&phys).unwrap());
    println!(
        "Q1 returned {} groups in {:.1} ms\n",
        rows.len(),
        wall * 1e3
    );
    println!("per-operator profile (time = self, cum_time = incl. children):");
    println!("{profile}");

    // Per-thread balance, as the appendix discusses.
    let mut sender_walls: Vec<f64> = Vec::new();
    for line in profile.lines() {
        if let Some(rest) = line.trim_start().strip_prefix("sender ") {
            // "sender N: time=..ms cum_time=XXms ..."
            if let Some(cum) = rest.split("cum_time=").nth(1) {
                if let Some(ms) = cum.split("ms").next() {
                    if let Ok(v) = ms.parse::<f64>() {
                        sender_walls.push(v);
                    }
                }
            }
        }
    }
    if !sender_walls.is_empty() {
        let min = sender_walls.iter().cloned().fold(f64::MAX, f64::min);
        let max = sender_walls.iter().cloned().fold(0.0f64, f64::max);
        println!(
            "per-thread balance: {} pipelines, cum_time {:.2}..{:.2} ms (spread {:.0}%)",
            sender_walls.len(),
            min,
            max,
            if min > 0.0 {
                (max / min - 1.0) * 100.0
            } else {
                0.0
            }
        );
        println!(
            "paper shape: the parallel Aggr/Project/MScan dominate; thread spread ~20% with\n\
             an overall penalty under 15% — the final Aggr above the union is negligible."
        );
    }
}
