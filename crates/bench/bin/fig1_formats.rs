//! Figure 1 — Data Format Micro-Benchmarks.
//!
//! Reproduces the three panels of Figure 1 on a lineitem table sorted on
//! `l_shipdate`:
//!
//! * (a) hot query time of `SELECT max(l_linenumber) FROM lineitem WHERE
//!   l_shipdate < X` at selectivities 10/30/60/90%, for the VectorH format
//!   (PFOR family + MinMax skipping + vectorized decode) vs ORC-like and
//!   Parquet-like readers (value-at-a-time decode behind a Snappy-like
//!   general-purpose pass, no IO skipping — like Impala/Presto in the paper);
//! * (b) data read (bytes touched) for the same scans;
//! * (c) compressed size per lineitem column per format.
//!
//! Paper shape to reproduce: VectorH is fastest at every selectivity and
//! grows with selectivity thanks to skipping; the baselines read (nearly)
//! everything regardless; VectorH compresses ~2× better overall, with
//! Parquet notably bad on 64-bit integers.

use std::sync::Arc;

use vectorh_bench::{print_table, timed_hot};
use vectorh_common::{ColumnData, Schema, Value};
use vectorh_compress::baseline::{decode as bdecode, encode as bencode, BaselineFormat};
use vectorh_simhdfs::{BlockStore, DefaultPolicy, SimHdfs, SimHdfsConfig, StoreRef};
use vectorh_storage::minmax::PruneOp;
use vectorh_storage::{PartitionStore, StorageConfig};
use vectorh_tpch::gen::{self, cols::lineitem as l};

/// The lineitem columns compared in Fig 1c (name, index, kind for labels).
const SIZE_COLS: &[(&str, usize)] = &[
    ("l_ok", l::L_ORDERKEY),
    ("l_pk", l::L_PARTKEY),
    ("l_sk", l::L_SUPPKEY),
    ("l_qty", l::L_QUANTITY),
    ("l_ep", l::L_EXTENDEDPRICE),
    ("l_dcnt", l::L_DISCOUNT),
    ("l_tax", l::L_TAX),
    ("l_rf", l::L_RETURNFLAG),
    ("l_sd", l::L_SHIPDATE),
    ("l_cd", l::L_COMMITDATE),
    ("l_rd", l::L_RECEIPTDATE),
];

fn column_of(rows: &[Vec<Value>], schema: &Schema, col: usize) -> ColumnData {
    let mut out = ColumnData::new(schema.dtype(col));
    for r in rows {
        out.push_value(&r[col]).unwrap();
    }
    out
}

fn main() {
    let sf = vectorh_bench::env_sf(0.02);
    println!("Figure 1 reproduction — lineitem at SF {sf}, sorted on l_shipdate\n");
    let data = gen::generate(sf, 1);
    let defs = vectorh_tpch::schema::table_defs(1).unwrap();
    let schema = defs
        .iter()
        .find(|d| d.name == "lineitem")
        .unwrap()
        .schema
        .clone();
    let mut rows = data.lineitem;
    rows.sort_by_key(|r| match r[l::L_SHIPDATE] {
        Value::Date(d) => d,
        _ => 0,
    });
    let n = rows.len();
    println!("{n} lineitem rows\n");

    // --- VectorH storage: chunked columnar with MinMax --------------------
    let fs: StoreRef = Arc::new(SimHdfs::new(
        1,
        SimHdfsConfig {
            block_size: 1 << 20,
            default_replication: 1,
        },
        Arc::new(DefaultPolicy::new(1)),
    ));
    let mut store = PartitionStore::new(
        fs.clone(),
        "/bench/lineitem/",
        schema.clone(),
        StorageConfig {
            rows_per_chunk: 4096,
        },
    );
    let cols: Vec<ColumnData> = (0..schema.len())
        .map(|c| column_of(&rows, &schema, c))
        .collect();
    store.append_rows(&cols).unwrap();

    // --- Baseline storage: per-chunk encoded columns ----------------------
    let encode_chunks = |fmt: BaselineFormat| -> Vec<Vec<Vec<u8>>> {
        let mut chunks = Vec::new();
        let mut at = 0;
        while at < n {
            let to = (at + 4096).min(n);
            let enc: Vec<Vec<u8>> = (0..schema.len())
                .map(|c| {
                    let mut col = ColumnData::new(schema.dtype(c));
                    for r in &rows[at..to] {
                        col.push_value(&r[c]).unwrap();
                    }
                    bencode(fmt, &col)
                })
                .collect();
            chunks.push(enc);
            at = to;
        }
        chunks
    };
    let orc = encode_chunks(BaselineFormat::OrcLike);
    let parquet = encode_chunks(BaselineFormat::ParquetLike);

    // Selectivity cut points on l_shipdate.
    let dates: Vec<i32> = rows
        .iter()
        .map(|r| match r[l::L_SHIPDATE] {
            Value::Date(d) => d,
            _ => 0,
        })
        .collect();
    let selectivities = [0.1, 0.3, 0.6, 0.9];

    println!(
        "(a) hot query time  +  (b) data read — SELECT max(l_linenumber) WHERE l_shipdate < X"
    );
    let mut out_rows = Vec::new();
    for &sel in &selectivities {
        let cut = dates[((n as f64 * sel) as usize).min(n - 1)];
        // VectorH: MinMax-pruned scan of the two needed columns.
        let before = fs.stats().snapshot();
        let (vh_max, vh_time) = timed_hot(|| {
            let keep = store.prune(&vec![(l::L_SHIPDATE, PruneOp::Lt, Value::Date(cut))]);
            let mut best = i64::MIN;
            for (chunk, keep) in keep.iter().enumerate() {
                if !*keep {
                    continue;
                }
                let ship = store
                    .read_column(chunk, l::L_SHIPDATE, Some(vectorh_common::NodeId(0)))
                    .unwrap();
                let line = store
                    .read_column(chunk, l::L_LINENUMBER, Some(vectorh_common::NodeId(0)))
                    .unwrap();
                let ship = ship.as_i32().unwrap();
                let line = line.as_i64().unwrap();
                for i in 0..ship.len() {
                    if ship[i] < cut && line[i] > best {
                        best = line[i];
                    }
                }
            }
            best
        });
        // IO counted once per timed run (warm-up included 1 extra run → /2).
        let vh_read = fs.stats().snapshot().since(&before).read_bytes() / 2;

        // Baselines: no skipping — decode the two columns of *every* chunk,
        // value at a time, through the general-purpose pass.
        let run_baseline = |chunks: &Vec<Vec<Vec<u8>>>, fmt: BaselineFormat| {
            let mut read = 0u64;
            let (max, time) = timed_hot(|| {
                read = 0;
                let mut best = i64::MIN;
                for chunk in chunks {
                    read += (chunk[l::L_SHIPDATE].len() + chunk[l::L_LINENUMBER].len()) as u64;
                    let ship = bdecode(fmt, &chunk[l::L_SHIPDATE]).unwrap();
                    let line = bdecode(fmt, &chunk[l::L_LINENUMBER]).unwrap();
                    let ship = ship.as_i32().unwrap();
                    let line = line.as_i64().unwrap();
                    for i in 0..ship.len() {
                        if ship[i] < cut && line[i] > best {
                            best = line[i];
                        }
                    }
                }
                best
            });
            (max, time, read)
        };
        let (o_max, o_time, o_read) = run_baseline(&orc, BaselineFormat::OrcLike);
        let (p_max, p_time, p_read) = run_baseline(&parquet, BaselineFormat::ParquetLike);
        assert_eq!(vh_max, o_max);
        assert_eq!(vh_max, p_max);
        out_rows.push(vec![
            format!("{:.0}%", sel * 100.0),
            format!(
                "{:.1} ({})",
                vh_time * 1e3,
                vectorh_common::util::fmt_bytes(vh_read)
            ),
            format!(
                "{:.1} ({})",
                o_time * 1e3,
                vectorh_common::util::fmt_bytes(o_read)
            ),
            format!(
                "{:.1} ({})",
                p_time * 1e3,
                vectorh_common::util::fmt_bytes(p_read)
            ),
            format!("{:.1}x / {:.1}x", o_time / vh_time, p_time / vh_time),
        ]);
    }
    print_table(
        &[
            "selectivity",
            "vectorh ms (read)",
            "orc-like ms (read)",
            "parquet-like ms (read)",
            "speedup orc/parquet",
        ],
        &out_rows,
    );

    // --- (c) compressed size per column ------------------------------------
    println!("\n(c) compressed size per lineitem column (bytes)");
    let mut size_rows = Vec::new();
    let mut totals = (0u64, 0u64, 0u64);
    for (name, col) in SIZE_COLS {
        let cdata = column_of(&rows, &schema, *col);
        let (_, stats) = vectorh_compress::codec::encode_with_stats(&cdata);
        let vh = stats.encoded_bytes as u64;
        let o: u64 = orc.iter().map(|c| c[*col].len() as u64).sum();
        let p: u64 = parquet.iter().map(|c| c[*col].len() as u64).sum();
        totals.0 += vh;
        totals.1 += o;
        totals.2 += p;
        size_rows.push(vec![
            name.to_string(),
            format!("{}", stats.scheme.name()),
            vh.to_string(),
            o.to_string(),
            p.to_string(),
        ]);
    }
    size_rows.push(vec![
        "TOTAL".into(),
        "".into(),
        totals.0.to_string(),
        totals.1.to_string(),
        totals.2.to_string(),
    ]);
    print_table(
        &["column", "vh scheme", "vectorh", "orc-like", "parquet-like"],
        &size_rows,
    );
    println!(
        "\nshape check: vectorh total is {:.2}x smaller than orc-like, {:.2}x than parquet-like",
        totals.1 as f64 / totals.0 as f64,
        totals.2 as f64 / totals.0 as f64
    );
}
