//! Seeded multi-client load generator for the SQL front door, with an
//! optional mid-run node-kill drill.
//!
//! Spawns a front-door [`Server`] over a live engine, then `VH_LOAD_CLIENTS`
//! (default 16) closed-loop wire clients, each running a seeded Q1/Q6/Q12
//! mix ([`FRONTDOOR_MIX`]). Once every client has completed at least one
//! query, the harness kills one worker node (unless `VH_LOAD_KILL=0`) —
//! in-flight queries must be absorbed by session-transparent failover, so
//! **zero client-visible failures** is a hard assertion, not a statistic.
//! `ServerBusy` refusals are the only tolerated rejection, retried with the
//! server's jitter hint.
//!
//! Reports p50/p99 latency and queries/sec into the `BENCH_*.json` format
//! (default `BENCH_pr8.json`, override with `VH_BENCH_OUT`), with the
//! admission/session counters read from `VectorH::server_stats()` — real
//! numbers, not scraped output.
//!
//! Env: `CHAOS_SEED` (workload + victim seed, default 0x56EC7047),
//! `VH_LOAD_CLIENTS`, `VH_LOAD_QUERIES` (per client), `VH_LOAD_KILL`,
//! `VH_BENCH_QUICK=1` (small per-client count), `VH_SF`, `VH_BENCH_OUT`.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

use vectorh::{ClusterConfig, VectorH};
use vectorh_bench::report::Report;
use vectorh_common::rng::SplitMix64;
use vectorh_common::{NodeId, Value, VhError};
use vectorh_server::{Client, Server, ServerConfig};
use vectorh_tpch::sql_texts::{frontdoor_mix_texts, FRONTDOOR_MIX};

fn env_u64(key: &str, default: u64) -> u64 {
    std::env::var(key)
        .ok()
        .and_then(|s| {
            let s = s.trim();
            match s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
                Some(hex) => u64::from_str_radix(hex, 16).ok(),
                None => s.parse().ok(),
            }
        })
        .unwrap_or(default)
}

fn percentile(sorted_ms: &[f64], p: f64) -> f64 {
    assert!(!sorted_ms.is_empty());
    let idx = ((sorted_ms.len() as f64 - 1.0) * p / 100.0).round() as usize;
    sorted_ms[idx.min(sorted_ms.len() - 1)]
}

fn main() {
    let quick = std::env::var("VH_BENCH_QUICK")
        .map(|v| v == "1")
        .unwrap_or(false);
    let seed = env_u64("CHAOS_SEED", 0x56EC_7047);
    let n_clients = env_u64("VH_LOAD_CLIENTS", 16) as usize;
    let per_client = env_u64("VH_LOAD_QUERIES", if quick { 4 } else { 12 }) as usize;
    let kill = env_u64("VH_LOAD_KILL", 1) == 1;
    let sf = vectorh_bench::env_sf(if quick { 0.002 } else { 0.01 });
    let out_path = std::env::var("VH_BENCH_OUT").unwrap_or_else(|_| "BENCH_pr8.json".to_string());

    eprintln!(
        "[load_gen] seed {seed:#x}, {n_clients} clients × {per_client} queries, \
         sf {sf}, kill drill: {kill}"
    );
    let vh = Arc::new(
        VectorH::start(ClusterConfig {
            nodes: 4,
            rows_per_chunk: 1024,
            hdfs_block_size: 64 * 1024,
            ..Default::default()
        })
        .expect("engine start"),
    );
    vectorh_tpch::schema::setup(&vh, sf, 4, 20260707).expect("tpch load");
    let mut server = Server::start(vh.clone(), ServerConfig::default()).expect("server start");

    // Baselines while quiescent: the workload is read-only, so every
    // wire answer must equal these byte for byte (canonicalized — bare
    // aggregates are order-stable, but stay robust to stream scheduling).
    let texts = frontdoor_mix_texts();
    let baselines: Vec<Vec<Vec<Value>>> = texts
        .iter()
        .map(|sql| vectorh_tpch::baseline::canonical(vh.query(sql).expect("baseline")))
        .collect();

    let completed = Arc::new(AtomicUsize::new(0));
    let addr = server.addr();
    let wall = Instant::now();
    let mut handles = Vec::new();
    for c in 0..n_clients {
        let completed = completed.clone();
        let baselines = baselines.clone();
        handles.push(std::thread::spawn(move || {
            let texts = frontdoor_mix_texts();
            let mut rng = SplitMix64::new(seed ^ (c as u64).wrapping_mul(0x9E37_79B9));
            let mut client = Client::connect(addr).expect("connect");
            let mut lat_ms = Vec::with_capacity(per_client);
            let mut absorbed = 0u64;
            for i in 0..per_client {
                let qi = rng.next_bounded(texts.len() as u64) as usize;
                let t0 = Instant::now();
                // ServerBusy is the one tolerated refusal; anything else —
                // including any failover leak — is a hard failure.
                let outcome = client.query_with_retry(texts[qi], 50).unwrap_or_else(|e| {
                    panic!("client {c} query {i} (q{}): {e}", FRONTDOOR_MIX[qi])
                });
                lat_ms.push(t0.elapsed().as_secs_f64() * 1e3);
                let got = vectorh_tpch::baseline::canonical(outcome.rows);
                assert_eq!(
                    got, baselines[qi],
                    "client {c} query {i} (q{}) diverged from baseline",
                    FRONTDOOR_MIX[qi]
                );
                absorbed += outcome.retries_absorbed;
                completed.fetch_add(1, Ordering::SeqCst);
            }
            (lat_ms, absorbed)
        }));
    }

    // The drill: once the run is warm (every client has finished a query),
    // kill a seeded victim. Replication covers its reads; the retry loop
    // inside query_logical absorbs in-flight casualties.
    let mut victim = None;
    if kill {
        while completed.load(Ordering::SeqCst) < n_clients {
            std::thread::yield_now();
        }
        let workers = vh.workers();
        // Never the lowest id: keep the session master boring for the drill.
        let v = workers[1 + SplitMix64::new(seed).next_bounded(workers.len() as u64 - 1) as usize];
        vh.kill_node(v).expect("kill victim");
        eprintln!("[load_gen] killed {v} mid-run");
        victim = Some(v);
    }

    let mut lat_ms: Vec<f64> = Vec::new();
    let mut client_absorbed = 0u64;
    for h in handles {
        let (lat, absorbed) = h.join().expect("client thread");
        lat_ms.extend(lat);
        client_absorbed += absorbed;
    }
    let wall_s = wall.elapsed().as_secs_f64();
    server.stop();

    // Real numbers from the engine probe, not scraped output.
    let totals = vh.server_stats().totals();
    let n_queries = (n_clients * per_client) as u64;
    assert_eq!(
        totals.queries_served, n_queries,
        "every query must eventually be served"
    );
    assert_eq!(
        totals.retries_absorbed, client_absorbed,
        "server-side and Done-frame retry counts must agree"
    );
    if let Some(v) = victim {
        assert!(!vh.workers().contains(&v), "the victim really died");
    }

    lat_ms.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let (p50, p99) = (percentile(&lat_ms, 50.0), percentile(&lat_ms, 99.0));
    let qps = n_queries as f64 / wall_s;

    let mut rep = Report::new();
    rep.meta("bench", "pr8-load-gen");
    rep.meta("quick", if quick { "1" } else { "0" });
    rep.meta("seed", &format!("{seed:#x}"));
    rep.meta("mix", "q1,q6,q12");
    rep.meta(
        "kill",
        &victim
            .map(|NodeId(v)| v.to_string())
            .unwrap_or_else(|| "none".into()),
    );
    rep.meta(
        "host",
        &format!("{}-{}", std::env::consts::ARCH, std::env::consts::OS),
    );
    rep.push("load_gen", "clients", n_clients as f64, "count");
    rep.push("load_gen", "queries", n_queries as f64, "count");
    rep.push("load_gen", "p50", p50, "ms");
    rep.push("load_gen", "p99", p99, "ms");
    rep.push("load_gen", "qps", qps, "queries/s");
    rep.push(
        "load_gen",
        "retries_absorbed",
        totals.retries_absorbed as f64,
        "count",
    );
    rep.push(
        "load_gen",
        "rejected_busy",
        totals.rejected_busy as f64,
        "count",
    );
    rep.push(
        "load_gen",
        "queue_wait_total",
        totals.queue_wait_us as f64 / 1e3,
        "ms",
    );
    rep.push("load_gen", "client_visible_failures", 0.0, "count");
    rep.write_file(&out_path).expect("write report");

    println!(
        "load_gen: {n_clients} clients, {n_queries} queries in {wall_s:.2}s — \
         p50 {p50:.2} ms, p99 {p99:.2} ms, {qps:.1} q/s"
    );
    println!(
        "  absorbed {} failover retries, {} busy rejections, 0 client-visible failures",
        totals.retries_absorbed, totals.rejected_busy
    );
    println!("  report: {out_path}");
    // The one error class a client may ever see is typed ServerBusy; make
    // the taxonomy promise concrete in the artifact even when it was idle.
    let busy_code = VhError::ServerBusy(String::new()).code();
    assert_eq!(VhError::from_code(busy_code, "x".into()).code(), busy_code);
}
