//! §7 load performance — vwload vs locality-tuned vwload vs the
//! Spark-VectorH connector.
//!
//! The paper loads 650 GB of CSV on 6 nodes: plain vwload 1237 s (remote
//! HDFS reads), vwload with files ordered for locality 850 s, and the
//! Spark connector 892 s ("works out-of-the-box ... impressive given that
//! the data is read and parsed in a different process"). The shape to
//! reproduce: remote-read vwload is slowest; locality-ordered vwload is
//! fastest; the affinity-matched connector lands close behind it.
//!
//! Wall time on the host cannot show this on a single-core machine (all
//! "nodes" share one CPU), so the primary metric is the *simulated cluster
//! time*: per-node parse work at a fixed parse rate, plus a network penalty
//! for every remotely-read byte — the regime the paper's numbers live in.

use std::sync::Arc;

use vectorh_bench::{print_table, timed};
use vectorh_common::util::fmt_bytes;
use vectorh_common::{ColumnData, DataType, NodeId, Schema, Value};
use vectorh_connector::csv::{parse_csv, to_csv, CsvOptions};
use vectorh_connector::external::ExternalScan;
use vectorh_connector::splits::{assign_splits, InputSplit};
use vectorh_exec::{Batch, Operator};
use vectorh_net::NetStats;
use vectorh_simhdfs::{DefaultPolicy, SimHdfs, SimHdfsConfig};

const NODES: u32 = 3;
const FILES: usize = 12;

fn schema() -> Arc<Schema> {
    Arc::new(Schema::of(&[
        ("a", DataType::I64),
        ("b", DataType::I64),
        ("c", DataType::I64),
        ("d", DataType::I64),
        ("e", DataType::Decimal { scale: 2 }),
    ]))
}

/// Write CSV input files, each "produced" on a specific node so its first
/// replica is local there.
fn stage_inputs(fs: &SimHdfs, rows_per_file: i64) -> Vec<InputSplit> {
    let schema = schema();
    (0..FILES)
        .map(|f| {
            let from = f as i64 * rows_per_file;
            let cols = vec![
                ColumnData::I64((from..from + rows_per_file).collect()),
                ColumnData::I64((0..rows_per_file).map(|i| i % 97).collect()),
                ColumnData::I64((0..rows_per_file).map(|i| i * 3).collect()),
                ColumnData::I64((0..rows_per_file).map(|i| i % 7).collect()),
                ColumnData::I64((0..rows_per_file).map(|i| 100 + i % 1000).collect()),
            ];
            let text = to_csv(&cols, &schema, '|');
            let path = format!("/staging/in-{f:02}.csv");
            fs.append(&path, text.as_bytes(), Some(NodeId(f as u32 % NODES)))
                .unwrap();
            let locs = fs.block_locations(&path).unwrap();
            InputSplit {
                path,
                preferred: locs.first().map(|b| b.nodes.clone()).unwrap_or_default(),
            }
        })
        .collect()
}

/// Plain vwload: the session master (node 0) reads and parses every file —
/// most reads are remote.
fn vwload_from_master(fs: &SimHdfs, splits: &[InputSplit]) -> u64 {
    let schema = schema();
    let mut rows = 0u64;
    for split in splits {
        let text = String::from_utf8(fs.read_all(&split.path, Some(NodeId(0))).unwrap()).unwrap();
        let parsed = parse_csv(&text, &schema, &CsvOptions::default()).unwrap();
        rows += parsed.rows as u64;
    }
    rows
}

/// Locality-tweaked vwload: each node reads and parses only its local
/// files, in parallel ("tweaking with the parameter order in vwload").
fn vwload_local(fs: &SimHdfs, splits: &[InputSplit]) -> u64 {
    let schema = schema();
    let handles: Vec<_> = (0..NODES)
        .map(|node| {
            let fs = fs.clone();
            let mine: Vec<String> = splits
                .iter()
                .filter(|s| s.preferred.first() == Some(&NodeId(node)))
                .map(|s| s.path.clone())
                .collect();
            let schema = schema.clone();
            std::thread::spawn(move || {
                let mut rows = 0u64;
                for path in mine {
                    let text =
                        String::from_utf8(fs.read_all(&path, Some(NodeId(node))).unwrap()).unwrap();
                    let parsed = parse_csv(&text, &schema, &CsvOptions::default()).unwrap();
                    rows += parsed.rows as u64;
                }
                rows
            })
        })
        .collect();
    handles.into_iter().map(|h| h.join().unwrap()).sum()
}

/// Spark connector: affinity matching assigns splits to per-node
/// ExternalScans; Spark-side threads parse and stream binary rows.
fn spark_connector(fs: &SimHdfs, splits: &[InputSplit], net: &Arc<NetStats>) -> (u64, f64) {
    let schema = schema();
    let operators: Vec<NodeId> = (0..NODES).map(NodeId).collect();
    let assignment = assign_splits(splits, &operators);
    let locality = assignment.locality_fraction();
    let mut writers = Vec::new();
    let mut scans = Vec::new();
    for (op_idx, &node) in operators.iter().enumerate() {
        let (scan, port) = ExternalScan::new(schema.clone(), net.clone());
        scans.push(scan);
        for (s_idx, split) in splits.iter().enumerate() {
            if assignment.operator_of[s_idx] == op_idx {
                writers.push((
                    split.path.clone(),
                    node,
                    assignment.local[s_idx],
                    port.connect(!assignment.local[s_idx]),
                ));
            }
        }
    }
    let handles: Vec<_> = writers
        .into_iter()
        .map(|(path, node, local, writer)| {
            let fs = fs.clone();
            let schema = schema.clone();
            std::thread::spawn(move || {
                // Spark reads the block where it is local (or remotely).
                let reader = if local { Some(node) } else { None };
                let text = String::from_utf8(fs.read_all(&path, reader).unwrap()).unwrap();
                let parsed = parse_csv(&text, &schema, &CsvOptions::default()).unwrap();
                let batch = Batch::new(schema, parsed.columns).unwrap();
                writer.send(&batch).unwrap();
            })
        })
        .collect();
    let drains: Vec<_> = scans
        .into_iter()
        .map(|mut scan| {
            std::thread::spawn(move || {
                let mut rows = 0u64;
                while let Some(b) = scan.next().unwrap() {
                    rows += b.len() as u64;
                }
                rows
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let rows = drains.into_iter().map(|h| h.join().unwrap()).sum();
    (rows, locality)
}

fn main() {
    let rows_per_file = std::env::var("VH_ROWS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(100_000i64);
    println!("§7 load comparison — {FILES} CSV files × {rows_per_file} rows on {NODES} nodes\n");
    let fs = SimHdfs::new(
        NODES as usize,
        SimHdfsConfig {
            block_size: 4 << 20,
            default_replication: 2,
        },
        Arc::new(DefaultPolicy::new(3)),
    );
    let splits = stage_inputs(&fs, rows_per_file);
    let total_bytes: u64 = splits.iter().map(|s| fs.len(&s.path).unwrap()).sum();
    println!("staged {} of CSV\n", fmt_bytes(total_bytes));

    // Simulated-cluster cost model: per-node parse rate + remote-read rate.
    const PARSE_MBPS: f64 = 100.0;
    const REMOTE_MBPS: f64 = 125.0;
    // Per-node parse bytes per strategy (the parallelism the wall clock
    // cannot show on one host core).
    let per_file: u64 = fs.len(&splits[0].path).unwrap();
    let sim_time = |max_node_parse_bytes: u64, remote_bytes: u64| -> f64 {
        max_node_parse_bytes as f64 / (PARSE_MBPS * 1e6) + remote_bytes as f64 / (REMOTE_MBPS * 1e6)
    };

    let mut rows_out = Vec::new();

    let _ = vwload_from_master(&fs, &splits); // warm-up
    let before = fs.stats().snapshot();
    let (n1, t1) = timed(|| vwload_from_master(&fs, &splits));
    let io1 = fs.stats().snapshot().since(&before);
    let s1 = sim_time(total_bytes, io1.remote_read_bytes);
    rows_out.push(vec![
        "vwload (master reads all)".into(),
        format!("{s1:.2} s"),
        format!("{:.0} ms", t1 * 1e3),
        format!("{:.0}%", io1.locality() * 100.0),
        n1.to_string(),
    ]);

    let _ = vwload_local(&fs, &splits); // warm-up
    let before = fs.stats().snapshot();
    let (n2, t2) = timed(|| vwload_local(&fs, &splits));
    let io2 = fs.stats().snapshot().since(&before);
    // Each node parses its own 4 files in parallel.
    let s2 = sim_time(
        per_file * (FILES as u64 / NODES as u64),
        io2.remote_read_bytes,
    );
    rows_out.push(vec![
        "vwload (locality-ordered)".into(),
        format!("{s2:.2} s"),
        format!("{:.0} ms", t2 * 1e3),
        format!("{:.0}%", io2.locality() * 100.0),
        n2.to_string(),
    ]);

    let net = Arc::new(NetStats::default());
    let before = fs.stats().snapshot();
    let ((n3, affinity), t3) = timed(|| spark_connector(&fs, &splits, &net));
    let io3 = fs.stats().snapshot().since(&before);
    // Spark parses per node too, plus the ExternalScan transfer of the
    // parsed binary rows (counted by the connector's NetStats).
    let xfer = net.snapshot();
    let s3 = sim_time(
        per_file * (FILES as u64 / NODES as u64),
        io3.remote_read_bytes,
    ) + (xfer.net_bytes + xfer.rows * 4) as f64 / (REMOTE_MBPS * 1e6 * 4.0);
    rows_out.push(vec![
        format!("spark connector ({:.0}% affinity)", affinity * 100.0),
        format!("{s3:.2} s"),
        format!("{:.0} ms", t3 * 1e3),
        format!("{:.0}%", io3.locality() * 100.0),
        n3.to_string(),
    ]);
    assert_eq!(n1, n2);
    assert_eq!(n1, n3);

    print_table(
        &[
            "strategy",
            "simulated cluster time",
            "host wall",
            "HDFS read locality",
            "rows",
        ],
        &rows_out,
    );
    println!("\npaper shape (1237 s / 850 s / 892 s): master-only vwload pays remote reads");
    println!("and single-node parsing; locality-ordered vwload is fastest; the connector");
    println!("gets out-of-the-box locality via matching and lands close behind.");
    assert!(s2 < s1, "locality-ordered must beat master-only");
    assert!(s3 < s1, "connector must beat master-only");
    assert!(
        s3 >= s2,
        "connector pays a small transfer overhead vs direct local load"
    );
    let v: Value = Value::I64(n1 as i64);
    let _ = v;
}
