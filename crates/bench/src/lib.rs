//! Shared plumbing for the paper-reproduction harnesses.
//!
//! Each binary under `bin/` regenerates one table or figure of the VectorH
//! paper (see DESIGN.md's experiment index); this crate holds the timing and
//! table-formatting helpers they share.

use std::time::Instant;

use vectorh_common::Value;

/// Time a closure, returning (result, seconds).
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let t0 = Instant::now();
    let out = f();
    (out, t0.elapsed().as_secs_f64())
}

/// Time a closure after one untimed warm-up run (the paper reports hot
/// times).
pub fn timed_hot<T>(mut f: impl FnMut() -> T) -> (T, f64) {
    let _ = f();
    timed(f)
}

/// Render a simple aligned table.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: &[String]| {
        let mut s = String::new();
        for (i, c) in cells.iter().enumerate() {
            s.push_str(&format!("{:<w$}  ", c, w = widths[i]));
        }
        println!("{}", s.trim_end());
    };
    line(&headers.iter().map(|h| h.to_string()).collect::<Vec<_>>());
    line(&widths.iter().map(|w| "-".repeat(*w)).collect::<Vec<_>>());
    for row in rows {
        line(row);
    }
}

/// Scale factor from `VH_SF` (default tuned for quick runs).
pub fn env_sf(default: f64) -> f64 {
    std::env::var("VH_SF").ok().and_then(|s| s.parse().ok()).unwrap_or(default)
}

/// First value of the first row, as f64 (harness assertions).
pub fn scalar(rows: &[Vec<Value>]) -> f64 {
    rows.first().and_then(|r| r.first()).and_then(|v| v.as_f64()).unwrap_or(f64::NAN)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timed_measures() {
        let (v, secs) = timed(|| {
            std::thread::sleep(std::time::Duration::from_millis(5));
            42
        });
        assert_eq!(v, 42);
        assert!(secs >= 0.004);
    }

    #[test]
    fn table_renders() {
        print_table(&["a", "bb"], &[vec!["1".into(), "2".into()]]);
    }

    #[test]
    fn env_sf_default() {
        assert_eq!(env_sf(0.01), 0.01);
    }
}
