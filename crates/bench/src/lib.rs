//! Shared plumbing for the paper-reproduction harnesses.
//!
//! Each binary under `bin/` regenerates one table or figure of the VectorH
//! paper (see DESIGN.md's experiment index); this crate holds the timing and
//! table-formatting helpers they share.

use std::time::Instant;

use vectorh_common::Value;

/// Time a closure, returning (result, seconds).
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let t0 = Instant::now();
    let out = f();
    (out, t0.elapsed().as_secs_f64())
}

/// Time a closure after one untimed warm-up run (the paper reports hot
/// times).
pub fn timed_hot<T>(mut f: impl FnMut() -> T) -> (T, f64) {
    let _ = f();
    timed(f)
}

/// Render a simple aligned table.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: &[String]| {
        let mut s = String::new();
        for (i, c) in cells.iter().enumerate() {
            s.push_str(&format!("{:<w$}  ", c, w = widths[i]));
        }
        println!("{}", s.trim_end());
    };
    line(&headers.iter().map(|h| h.to_string()).collect::<Vec<_>>());
    line(&widths.iter().map(|w| "-".repeat(*w)).collect::<Vec<_>>());
    for row in rows {
        line(row);
    }
}

/// Scale factor from `VH_SF` (default tuned for quick runs).
pub fn env_sf(default: f64) -> f64 {
    std::env::var("VH_SF")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

/// Minimal in-tree micro-benchmark runner used by the `benches/` targets.
///
/// A [`harness::Group`] collects named cases: each case gets one untimed
/// warm-up call, then is run repeatedly until the measurement budget is
/// spent (or a minimum iteration count is reached), and the *median*
/// per-iteration time is reported, plus element throughput when
/// [`harness::Group::throughput`] was set. Everything prints immediately,
/// one line per case, so partial runs still show results.
pub mod harness {
    use std::hint::black_box;
    use std::time::{Duration, Instant};

    const WARMUP: Duration = Duration::from_millis(200);
    const MEASURE: Duration = Duration::from_millis(600);
    const MIN_ITERS: usize = 5;
    const MAX_ITERS: usize = 10_000;

    /// A named group of benchmark cases sharing a throughput setting.
    pub struct Group {
        name: String,
        elems: Option<u64>,
    }

    impl Group {
        pub fn new(name: &str) -> Group {
            println!("\n== {name} ==");
            Group {
                name: name.to_string(),
                elems: None,
            }
        }

        /// Elements processed per iteration; subsequent cases report
        /// elems/s alongside the per-iteration time.
        pub fn throughput(&mut self, elems: u64) {
            self.elems = Some(elems);
        }

        /// Run one case and print its median time. Returns the median
        /// seconds per iteration so callers can compute speedup ratios.
        pub fn bench<T>(&mut self, id: &str, mut f: impl FnMut() -> T) -> f64 {
            // Warm-up: at least one call, then keep going briefly so
            // caches/allocators reach steady state.
            let t0 = Instant::now();
            loop {
                black_box(f());
                if t0.elapsed() >= WARMUP {
                    break;
                }
            }
            let mut samples = Vec::new();
            let t0 = Instant::now();
            while (t0.elapsed() < MEASURE || samples.len() < MIN_ITERS) && samples.len() < MAX_ITERS
            {
                let it = Instant::now();
                black_box(f());
                samples.push(it.elapsed().as_secs_f64());
            }
            samples.sort_by(f64::total_cmp);
            let median = samples[samples.len() / 2];
            let label = format!("{}/{}", self.name, id);
            match self.elems {
                Some(n) => println!(
                    "{label:<48} {:>12}  {:>14}",
                    fmt_time(median),
                    format!("{} elems/s", fmt_count(n as f64 / median)),
                ),
                None => println!("{label:<48} {:>12}", fmt_time(median)),
            }
            median
        }
    }

    fn fmt_time(secs: f64) -> String {
        if secs < 1e-6 {
            format!("{:.1} ns", secs * 1e9)
        } else if secs < 1e-3 {
            format!("{:.2} us", secs * 1e6)
        } else if secs < 1.0 {
            format!("{:.2} ms", secs * 1e3)
        } else {
            format!("{secs:.3} s")
        }
    }

    fn fmt_count(x: f64) -> String {
        if x >= 1e9 {
            format!("{:.2}G", x / 1e9)
        } else if x >= 1e6 {
            format!("{:.2}M", x / 1e6)
        } else if x >= 1e3 {
            format!("{:.1}k", x / 1e3)
        } else {
            format!("{x:.0}")
        }
    }
}

/// First value of the first row, as f64 (harness assertions).
pub fn scalar(rows: &[Vec<Value>]) -> f64 {
    rows.first()
        .and_then(|r| r.first())
        .and_then(|v| v.as_f64())
        .unwrap_or(f64::NAN)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timed_measures() {
        let (v, secs) = timed(|| {
            std::thread::sleep(std::time::Duration::from_millis(5));
            42
        });
        assert_eq!(v, 42);
        assert!(secs >= 0.004);
    }

    #[test]
    fn table_renders() {
        print_table(&["a", "bb"], &[vec!["1".into(), "2".into()]]);
    }

    #[test]
    fn env_sf_default() {
        assert_eq!(env_sf(0.01), 0.01);
    }
}
