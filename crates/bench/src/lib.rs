//! Shared plumbing for the paper-reproduction harnesses.
//!
//! Each binary under `bin/` regenerates one table or figure of the VectorH
//! paper (see DESIGN.md's experiment index); this crate holds the timing and
//! table-formatting helpers they share.

use std::time::Instant;

use vectorh_common::Value;

/// Time a closure, returning (result, seconds).
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let t0 = Instant::now();
    let out = f();
    (out, t0.elapsed().as_secs_f64())
}

/// Time a closure after one untimed warm-up run (the paper reports hot
/// times).
pub fn timed_hot<T>(mut f: impl FnMut() -> T) -> (T, f64) {
    let _ = f();
    timed(f)
}

/// Render a simple aligned table.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: &[String]| {
        let mut s = String::new();
        for (i, c) in cells.iter().enumerate() {
            s.push_str(&format!("{:<w$}  ", c, w = widths[i]));
        }
        println!("{}", s.trim_end());
    };
    line(&headers.iter().map(|h| h.to_string()).collect::<Vec<_>>());
    line(&widths.iter().map(|w| "-".repeat(*w)).collect::<Vec<_>>());
    for row in rows {
        line(row);
    }
}

/// Scale factor from `VH_SF` (default tuned for quick runs).
pub fn env_sf(default: f64) -> f64 {
    std::env::var("VH_SF")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

/// Minimal in-tree micro-benchmark runner used by the `benches/` targets.
///
/// A [`harness::Group`] collects named cases: each case gets one untimed
/// warm-up call, then is run repeatedly until the measurement budget is
/// spent (or a minimum iteration count is reached), and the *median*
/// per-iteration time is reported, plus element throughput when
/// [`harness::Group::throughput`] was set. Everything prints immediately,
/// one line per case, so partial runs still show results.
pub mod harness {
    use std::hint::black_box;
    use std::time::{Duration, Instant};

    const WARMUP: Duration = Duration::from_millis(200);
    const MEASURE: Duration = Duration::from_millis(600);
    const MIN_ITERS: usize = 5;
    const MAX_ITERS: usize = 10_000;

    /// A named group of benchmark cases sharing a throughput setting.
    pub struct Group {
        name: String,
        elems: Option<u64>,
    }

    impl Group {
        pub fn new(name: &str) -> Group {
            println!("\n== {name} ==");
            Group {
                name: name.to_string(),
                elems: None,
            }
        }

        /// Elements processed per iteration; subsequent cases report
        /// elems/s alongside the per-iteration time.
        pub fn throughput(&mut self, elems: u64) {
            self.elems = Some(elems);
        }

        /// Run one case and print its median time. Returns the median
        /// seconds per iteration so callers can compute speedup ratios.
        pub fn bench<T>(&mut self, id: &str, mut f: impl FnMut() -> T) -> f64 {
            // Warm-up: at least one call, then keep going briefly so
            // caches/allocators reach steady state.
            let t0 = Instant::now();
            loop {
                black_box(f());
                if t0.elapsed() >= WARMUP {
                    break;
                }
            }
            let mut samples = Vec::new();
            let t0 = Instant::now();
            while (t0.elapsed() < MEASURE || samples.len() < MIN_ITERS) && samples.len() < MAX_ITERS
            {
                let it = Instant::now();
                black_box(f());
                samples.push(it.elapsed().as_secs_f64());
            }
            samples.sort_by(f64::total_cmp);
            let median = samples[samples.len() / 2];
            let label = format!("{}/{}", self.name, id);
            match self.elems {
                Some(n) => println!(
                    "{label:<48} {:>12}  {:>14}",
                    fmt_time(median),
                    format!("{} elems/s", fmt_count(n as f64 / median)),
                ),
                None => println!("{label:<48} {:>12}", fmt_time(median)),
            }
            median
        }

        /// Like [`bench`](Self::bench), but also records the result into a
        /// [`report::Report`](crate::report::Report): median seconds always,
        /// plus elements/s when a throughput was set.
        pub fn bench_rec<T>(
            &mut self,
            rep: &mut crate::report::Report,
            id: &str,
            f: impl FnMut() -> T,
        ) -> f64 {
            let median = self.bench(id, f);
            rep.push(&self.name, id, median, "s");
            if let Some(n) = self.elems {
                rep.push(&self.name, id, n as f64 / median, "elems/s");
            }
            median
        }
    }

    fn fmt_time(secs: f64) -> String {
        if secs < 1e-6 {
            format!("{:.1} ns", secs * 1e9)
        } else if secs < 1e-3 {
            format!("{:.2} us", secs * 1e6)
        } else if secs < 1.0 {
            format!("{:.2} ms", secs * 1e3)
        } else {
            format!("{secs:.3} s")
        }
    }

    fn fmt_count(x: f64) -> String {
        if x >= 1e9 {
            format!("{:.2}G", x / 1e9)
        } else if x >= 1e6 {
            format!("{:.2}M", x / 1e6)
        } else if x >= 1e3 {
            format!("{:.1}k", x / 1e3)
        } else {
            format!("{x:.0}")
        }
    }
}

/// Machine-readable benchmark reports (`BENCH_*.json`).
///
/// The perf trajectory of the repo is tracked by committed `BENCH_pr<N>.json`
/// files at the workspace root: one flat list of `(group, case, value, unit)`
/// entries plus free-form metadata, written by `bin/bench_report.rs`. The
/// writer emits the JSON by hand and [`report::parse_report`] is a minimal
/// in-tree parser (the workspace has no external dependencies), used by the
/// report binary to validate its own output and by CI's bench-smoke job to
/// assert the file stays machine-parseable.
pub mod report {
    use std::fmt::Write as _;

    /// One measured number.
    #[derive(Debug, Clone, PartialEq)]
    pub struct Entry {
        pub group: String,
        pub case: String,
        pub value: f64,
        pub unit: String,
    }

    /// A benchmark report: ordered metadata + ordered entries.
    #[derive(Debug, Default)]
    pub struct Report {
        meta: Vec<(String, String)>,
        entries: Vec<Entry>,
    }

    impl Report {
        pub fn new() -> Report {
            Report::default()
        }

        pub fn meta(&mut self, key: &str, value: &str) {
            self.meta.push((key.to_string(), value.to_string()));
        }

        pub fn push(&mut self, group: &str, case: &str, value: f64, unit: &str) {
            assert!(value.is_finite(), "non-finite bench value {group}/{case}");
            self.entries.push(Entry {
                group: group.to_string(),
                case: case.to_string(),
                value,
                unit: unit.to_string(),
            });
        }

        pub fn entries(&self) -> &[Entry] {
            &self.entries
        }

        /// Pretty-printed JSON document.
        pub fn to_json(&self) -> String {
            let mut s = String::from("{\n  \"meta\": {");
            for (i, (k, v)) in self.meta.iter().enumerate() {
                let sep = if i == 0 { "" } else { "," };
                let _ = write!(s, "{sep}\n    \"{}\": \"{}\"", esc(k), esc(v));
            }
            s.push_str("\n  },\n  \"entries\": [");
            for (i, e) in self.entries.iter().enumerate() {
                let sep = if i == 0 { "" } else { "," };
                let _ = write!(
                    s,
                    "{sep}\n    {{\"group\": \"{}\", \"case\": \"{}\", \"value\": {}, \"unit\": \"{}\"}}",
                    esc(&e.group),
                    esc(&e.case),
                    fmt_f64(e.value),
                    esc(&e.unit)
                );
            }
            s.push_str("\n  ]\n}\n");
            s
        }

        pub fn write_file(&self, path: &str) -> std::io::Result<()> {
            std::fs::write(path, self.to_json())
        }
    }

    fn esc(s: &str) -> String {
        let mut out = String::with_capacity(s.len());
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\t' => out.push_str("\\t"),
                '\r' => out.push_str("\\r"),
                c if (c as u32) < 0x20 => {
                    let _ = write!(out, "\\u{:04x}", c as u32);
                }
                c => out.push(c),
            }
        }
        out
    }

    /// Format with enough digits to round-trip but without float noise.
    fn fmt_f64(v: f64) -> String {
        let short = format!("{v:.6}");
        if short.parse::<f64>() == Ok(v) {
            short
        } else {
            format!("{v}")
        }
    }

    /// Minimal JSON value (only what reports emit; enough for tooling).
    #[derive(Debug, Clone, PartialEq)]
    pub enum Json {
        Null,
        Bool(bool),
        Num(f64),
        Str(String),
        Arr(Vec<Json>),
        Obj(Vec<(String, Json)>),
    }

    impl Json {
        pub fn get(&self, key: &str) -> Option<&Json> {
            match self {
                Json::Obj(kv) => kv.iter().find(|(k, _)| k == key).map(|(_, v)| v),
                _ => None,
            }
        }
        pub fn as_str(&self) -> Option<&str> {
            match self {
                Json::Str(s) => Some(s),
                _ => None,
            }
        }
        pub fn as_f64(&self) -> Option<f64> {
            match self {
                Json::Num(n) => Some(*n),
                _ => None,
            }
        }
        pub fn as_arr(&self) -> Option<&[Json]> {
            match self {
                Json::Arr(a) => Some(a),
                _ => None,
            }
        }
    }

    /// Parse a JSON document (recursive descent, rejects trailing garbage).
    pub fn parse(s: &str) -> Result<Json, String> {
        let b = s.as_bytes();
        let mut pos = 0usize;
        let v = parse_value(b, &mut pos)?;
        skip_ws(b, &mut pos);
        if pos != b.len() {
            return Err(format!("trailing garbage at byte {pos}"));
        }
        Ok(v)
    }

    fn skip_ws(b: &[u8], pos: &mut usize) {
        while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
            *pos += 1;
        }
    }

    fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
        skip_ws(b, pos);
        if *pos < b.len() && b[*pos] == c {
            *pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", c as char, pos))
        }
    }

    fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
        skip_ws(b, pos);
        match b.get(*pos) {
            None => Err("unexpected end of input".into()),
            Some(b'{') => {
                *pos += 1;
                let mut kv = Vec::new();
                skip_ws(b, pos);
                if b.get(*pos) == Some(&b'}') {
                    *pos += 1;
                    return Ok(Json::Obj(kv));
                }
                loop {
                    skip_ws(b, pos);
                    let key = parse_string(b, pos)?;
                    expect(b, pos, b':')?;
                    kv.push((key, parse_value(b, pos)?));
                    skip_ws(b, pos);
                    match b.get(*pos) {
                        Some(b',') => *pos += 1,
                        Some(b'}') => {
                            *pos += 1;
                            return Ok(Json::Obj(kv));
                        }
                        _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
                    }
                }
            }
            Some(b'[') => {
                *pos += 1;
                let mut items = Vec::new();
                skip_ws(b, pos);
                if b.get(*pos) == Some(&b']') {
                    *pos += 1;
                    return Ok(Json::Arr(items));
                }
                loop {
                    items.push(parse_value(b, pos)?);
                    skip_ws(b, pos);
                    match b.get(*pos) {
                        Some(b',') => *pos += 1,
                        Some(b']') => {
                            *pos += 1;
                            return Ok(Json::Arr(items));
                        }
                        _ => return Err(format!("expected ',' or ']' at byte {pos}")),
                    }
                }
            }
            Some(b'"') => Ok(Json::Str(parse_string(b, pos)?)),
            Some(b't') if b[*pos..].starts_with(b"true") => {
                *pos += 4;
                Ok(Json::Bool(true))
            }
            Some(b'f') if b[*pos..].starts_with(b"false") => {
                *pos += 5;
                Ok(Json::Bool(false))
            }
            Some(b'n') if b[*pos..].starts_with(b"null") => {
                *pos += 4;
                Ok(Json::Null)
            }
            Some(_) => {
                let start = *pos;
                while *pos < b.len()
                    && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
                {
                    *pos += 1;
                }
                std::str::from_utf8(&b[start..*pos])
                    .ok()
                    .and_then(|t| t.parse::<f64>().ok())
                    .map(Json::Num)
                    .ok_or_else(|| format!("bad number at byte {start}"))
            }
        }
    }

    fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
        if b.get(*pos) != Some(&b'"') {
            return Err(format!("expected string at byte {pos}"));
        }
        *pos += 1;
        let mut out = String::new();
        while let Some(&c) = b.get(*pos) {
            *pos += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let e = *b.get(*pos).ok_or("unterminated escape")?;
                    *pos += 1;
                    match e {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = b
                                .get(*pos..*pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or("bad \\u escape")?;
                            let code =
                                u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                            *pos += 4;
                            out.push(char::from_u32(code).ok_or("bad \\u codepoint")?);
                        }
                        _ => return Err(format!("bad escape '\\{}'", e as char)),
                    }
                }
                c => {
                    // Re-sync to a char boundary for multibyte UTF-8.
                    if c < 0x80 {
                        out.push(c as char);
                    } else {
                        let start = *pos - 1;
                        let width = match c {
                            0xC0..=0xDF => 2,
                            0xE0..=0xEF => 3,
                            _ => 4,
                        };
                        let chunk = b.get(start..start + width).ok_or("truncated UTF-8")?;
                        let s = std::str::from_utf8(chunk).map_err(|_| "bad UTF-8")?;
                        out.push_str(s);
                        *pos = start + width;
                    }
                }
            }
        }
        Err("unterminated string".into())
    }

    /// Parse a report document back into its entries; validates the schema
    /// `{"meta": {str: str}, "entries": [{group, case, value, unit}]}`.
    pub fn parse_report(s: &str) -> Result<Vec<Entry>, String> {
        let doc = parse(s)?;
        doc.get("meta").ok_or("missing \"meta\"")?;
        let entries = doc
            .get("entries")
            .and_then(Json::as_arr)
            .ok_or("missing \"entries\" array")?;
        entries
            .iter()
            .enumerate()
            .map(|(i, e)| {
                let field = |k: &str| {
                    e.get(k)
                        .ok_or_else(|| format!("entry {i}: missing \"{k}\""))
                };
                Ok(Entry {
                    group: field("group")?
                        .as_str()
                        .ok_or(format!("entry {i}: group not a string"))?
                        .to_string(),
                    case: field("case")?
                        .as_str()
                        .ok_or(format!("entry {i}: case not a string"))?
                        .to_string(),
                    value: field("value")?
                        .as_f64()
                        .ok_or(format!("entry {i}: value not a number"))?,
                    unit: field("unit")?
                        .as_str()
                        .ok_or(format!("entry {i}: unit not a string"))?
                        .to_string(),
                })
            })
            .collect()
    }
}

/// First value of the first row, as f64 (harness assertions).
pub fn scalar(rows: &[Vec<Value>]) -> f64 {
    rows.first()
        .and_then(|r| r.first())
        .and_then(|v| v.as_f64())
        .unwrap_or(f64::NAN)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timed_measures() {
        let (v, secs) = timed(|| {
            std::thread::sleep(std::time::Duration::from_millis(5));
            42
        });
        assert_eq!(v, 42);
        assert!(secs >= 0.004);
    }

    #[test]
    fn table_renders() {
        print_table(&["a", "bb"], &[vec!["1".into(), "2".into()]]);
    }

    #[test]
    fn env_sf_default() {
        assert_eq!(env_sf(0.01), 0.01);
    }

    #[test]
    fn report_roundtrips_through_own_parser() {
        let mut rep = report::Report::new();
        rep.meta("bench", "pr6");
        rep.meta("quote\"and\\slash", "line\nbreak\ttab");
        rep.push("unpack", "w4/simd", 0.4375, "cycles/value");
        rep.push("hash-1M", "columnar", 123_456_789.0, "elems/s");
        rep.push("fig7", "total/scalar", 1.5e-3, "s");
        let json = rep.to_json();
        let parsed = report::parse_report(&json).unwrap();
        assert_eq!(parsed, rep.entries());
        assert_eq!(parsed[0].group, "unpack");
        assert_eq!(parsed[0].value, 0.4375);
        assert_eq!(parsed[2].value, 1.5e-3);
    }

    #[test]
    fn parser_accepts_general_json_and_rejects_garbage() {
        use report::{parse, Json};
        let v = parse(r#" {"a": [1, -2.5, true, false, null, "xA"], "b": {}} "#).unwrap();
        let arr = v.get("a").unwrap().as_arr().unwrap();
        assert_eq!(arr[0], Json::Num(1.0));
        assert_eq!(arr[1], Json::Num(-2.5));
        assert_eq!(arr[5], Json::Str("xA".into()));
        assert_eq!(v.get("b"), Some(&Json::Obj(vec![])));
        assert!(parse("{").is_err());
        assert!(parse("{} trailing").is_err());
        assert!(parse(r#"{"a": }"#).is_err());
        assert!(parse(r#"{"entries": [{"group": 3}]}"#).is_ok()); // structurally valid…
        assert!(report::parse_report(r#"{"meta": {}, "entries": [{"group": 3}]}"#).is_err());
        // …but schema-invalid for a report.
        assert!(report::parse_report(r#"{"entries": []}"#).is_err()); // no meta
    }

    #[test]
    fn report_utf8_and_control_chars_survive() {
        let mut rep = report::Report::new();
        rep.meta("note", "médï🎉\u{1}");
        rep.push("g", "c", 1.0, "s");
        let json = rep.to_json();
        assert!(report::parse_report(&json).is_ok());
        let doc = report::parse(&json).unwrap();
        assert_eq!(
            doc.get("meta").unwrap().get("note").unwrap().as_str(),
            Some("médï🎉\u{1}")
        );
    }
}
