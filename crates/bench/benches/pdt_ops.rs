//! PDT operations — updates, SID↔RID translation, merge plans.
//!
//! "Their primary goal is fast merging of differences in a scan, which
//! happens for each and every query" (§2) — merge-plan construction and the
//! positional ops are the hot paths this measures.

use vectorh_bench::harness::Group;
use vectorh_common::rng::SplitMix64;
use vectorh_common::Value;
use vectorh_pdt::tree::Pdt;

const STABLE: u64 = 1_000_000;

fn loaded_pdt(entries: usize, seed: u64) -> Pdt {
    let mut rng = SplitMix64::new(seed);
    let mut pdt = Pdt::new();
    for tag in 0..entries as u64 {
        let image = pdt.image_len(STABLE);
        match rng.next_bounded(10) {
            0..=4 => {
                let rid = rng.next_bounded(image + 1);
                pdt.insert_at(rid, vec![Value::I64(tag as i64)], tag, STABLE)
                    .unwrap();
            }
            5..=7 => {
                pdt.delete_at(rng.next_bounded(image), STABLE).unwrap();
            }
            _ => {
                pdt.modify_at(rng.next_bounded(image), 0, Value::I64(-1), STABLE)
                    .unwrap();
            }
        }
    }
    pdt
}

fn bench_updates() {
    let mut g = Group::new("pdt-updates");
    for &n in &[1_000usize, 10_000, 50_000] {
        g.throughput(n as u64);
        g.bench(&format!("mixed-ops/{n}"), || loaded_pdt(n, 3));
    }
}

fn bench_lookup() {
    let mut g = Group::new("pdt-lookup");
    for &n in &[1_000usize, 10_000, 50_000] {
        let pdt = loaded_pdt(n, 5);
        let image = pdt.image_len(STABLE);
        g.throughput(1024);
        let mut rng = SplitMix64::new(9);
        g.bench(&format!("find_rid/{n}"), || {
            let mut hits = 0u64;
            for _ in 0..1024 {
                let rid = rng.next_bounded(image);
                if pdt.find_rid(rid, STABLE).is_ok() {
                    hits += 1;
                }
            }
            hits
        });
        let mut rng = SplitMix64::new(11);
        g.bench(&format!("rid_of_stable/{n}"), || {
            let mut hits = 0u64;
            for _ in 0..1024 {
                if pdt.rid_of_stable(rng.next_bounded(STABLE)).is_some() {
                    hits += 1;
                }
            }
            hits
        });
    }
}

fn bench_merge_plan() {
    let mut g = Group::new("pdt-merge-plan");
    for &n in &[0usize, 1_000, 10_000, 50_000] {
        let pdt = loaded_pdt(n, 13);
        g.bench(&format!("merge_plan/{n}"), || pdt.merge_plan(STABLE));
    }
}

fn main() {
    bench_updates();
    bench_lookup();
    bench_merge_plan();
}
