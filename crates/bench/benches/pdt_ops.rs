//! Criterion: PDT operations — updates, SID↔RID translation, merge plans.
//!
//! "Their primary goal is fast merging of differences in a scan, which
//! happens for each and every query" (§2) — merge-plan construction and the
//! positional ops are the hot paths this measures.

use std::time::Duration;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use vectorh_common::rng::SplitMix64;
use vectorh_common::Value;
use vectorh_pdt::tree::Pdt;

const STABLE: u64 = 1_000_000;

fn loaded_pdt(entries: usize, seed: u64) -> Pdt {
    let mut rng = SplitMix64::new(seed);
    let mut pdt = Pdt::new();
    for tag in 0..entries as u64 {
        let image = pdt.image_len(STABLE);
        match rng.next_bounded(10) {
            0..=4 => {
                let rid = rng.next_bounded(image + 1);
                pdt.insert_at(rid, vec![Value::I64(tag as i64)], tag, STABLE).unwrap();
            }
            5..=7 => {
                pdt.delete_at(rng.next_bounded(image), STABLE).unwrap();
            }
            _ => {
                pdt.modify_at(rng.next_bounded(image), 0, Value::I64(-1), STABLE).unwrap();
            }
        }
    }
    pdt
}

fn bench_updates(c: &mut Criterion) {
    let mut g = c.benchmark_group("pdt-updates");
    g.sample_size(10);
    g.warm_up_time(Duration::from_millis(300));
    g.measurement_time(Duration::from_millis(900));
    for &n in &[1_000usize, 10_000, 50_000] {
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::new("mixed-ops", n), &n, |b, &n| {
            b.iter(|| loaded_pdt(n, 3))
        });
    }
    g.finish();
}

fn bench_lookup(c: &mut Criterion) {
    let mut g = c.benchmark_group("pdt-lookup");
    g.sample_size(10);
    g.warm_up_time(Duration::from_millis(300));
    g.measurement_time(Duration::from_millis(900));
    for &n in &[1_000usize, 10_000, 50_000] {
        let pdt = loaded_pdt(n, 5);
        let image = pdt.image_len(STABLE);
        g.throughput(Throughput::Elements(1024));
        g.bench_with_input(BenchmarkId::new("find_rid", n), &pdt, |b, pdt| {
            let mut rng = SplitMix64::new(9);
            b.iter(|| {
                let mut hits = 0u64;
                for _ in 0..1024 {
                    let rid = rng.next_bounded(image);
                    if pdt.find_rid(rid, STABLE).is_ok() {
                        hits += 1;
                    }
                }
                hits
            })
        });
        g.bench_with_input(BenchmarkId::new("rid_of_stable", n), &pdt, |b, pdt| {
            let mut rng = SplitMix64::new(11);
            b.iter(|| {
                let mut hits = 0u64;
                for _ in 0..1024 {
                    if pdt.rid_of_stable(rng.next_bounded(STABLE)).is_some() {
                        hits += 1;
                    }
                }
                hits
            })
        });
    }
    g.finish();
}

fn bench_merge_plan(c: &mut Criterion) {
    let mut g = c.benchmark_group("pdt-merge-plan");
    g.sample_size(10);
    g.warm_up_time(Duration::from_millis(300));
    g.measurement_time(Duration::from_millis(900));
    for &n in &[0usize, 1_000, 10_000, 50_000] {
        let pdt = loaded_pdt(n, 13);
        g.bench_with_input(BenchmarkId::new("merge_plan", n), &pdt, |b, pdt| {
            b.iter(|| pdt.merge_plan(STABLE))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_updates, bench_lookup, bench_merge_plan);
criterion_main!(benches);
