//! Criterion: DXchg throughput — thread-to-thread vs thread-to-node (§5).

use std::sync::Arc;

use std::time::Duration;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use vectorh_common::{ColumnData, DataType, Schema};
use vectorh_exec::operator::BatchSource;
use vectorh_exec::{Batch, Operator};
use vectorh_net::dxchg::{dxchg_hash_split, DxchgConfig};
use vectorh_net::{FanoutMode, NetStats};

const ROWS: i64 = 100_000;

fn run(nodes: u32, threads: u32, mode: FanoutMode) -> u64 {
    let schema = Arc::new(Schema::of(&[("k", DataType::I64)]));
    let producers: Vec<(u32, Box<dyn Operator>)> = (0..nodes)
        .map(|n| {
            let batch = Batch::new(
                schema.clone(),
                vec![ColumnData::I64((0..ROWS).map(|i| i * nodes as i64 + n as i64).collect())],
            )
            .unwrap();
            (n, Box::new(BatchSource::from_batch(batch, 1024)) as Box<dyn Operator>)
        })
        .collect();
    let consumers: Vec<u32> =
        (0..nodes).flat_map(|n| std::iter::repeat(n).take(threads as usize)).collect();
    let stats = Arc::new(NetStats::default());
    let receivers = dxchg_hash_split(
        producers,
        consumers,
        vec![0],
        DxchgConfig { buffer_bytes: 64 * 1024, mode },
        stats,
    )
    .unwrap();
    let handles: Vec<_> = receivers
        .into_iter()
        .map(|mut r| {
            std::thread::spawn(move || {
                let mut n = 0u64;
                while let Some(b) = r.next().unwrap() {
                    n += b.len() as u64;
                }
                n
            })
        })
        .collect();
    handles.into_iter().map(|h| h.join().unwrap()).sum()
}

fn bench_dxchg(c: &mut Criterion) {
    let mut g = c.benchmark_group("dxchg-hash-split");
    g.sample_size(10);
    g.warm_up_time(Duration::from_millis(300));
    g.measurement_time(Duration::from_millis(900));
    for (nodes, threads) in [(2u32, 2u32), (3, 4)] {
        g.throughput(Throughput::Elements(nodes as u64 * ROWS as u64));
        for mode in [FanoutMode::ThreadToThread, FanoutMode::ThreadToNode] {
            let label = format!("{nodes}x{threads}-{mode:?}");
            g.bench_with_input(BenchmarkId::from_parameter(&label), &mode, |b, &mode| {
                b.iter(|| {
                    let total = run(nodes, threads, mode);
                    assert_eq!(total, nodes as u64 * ROWS as u64);
                    total
                })
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench_dxchg);
criterion_main!(benches);
