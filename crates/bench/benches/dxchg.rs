//! DXchg throughput — thread-to-thread vs thread-to-node (§5).

use std::sync::Arc;

use vectorh_bench::harness::Group;
use vectorh_common::{ColumnData, DataType, Schema};
use vectorh_exec::operator::BatchSource;
use vectorh_exec::{Batch, Operator};
use vectorh_net::dxchg::{dxchg_hash_split, DxchgConfig};
use vectorh_net::{FanoutMode, NetStats};

const ROWS: i64 = 100_000;

fn run(nodes: u32, threads: u32, mode: FanoutMode) -> u64 {
    let schema = Arc::new(Schema::of(&[("k", DataType::I64)]));
    let producers: Vec<(u32, Box<dyn Operator>)> = (0..nodes)
        .map(|n| {
            let batch = Batch::new(
                schema.clone(),
                vec![ColumnData::I64(
                    (0..ROWS).map(|i| i * nodes as i64 + n as i64).collect(),
                )],
            )
            .unwrap();
            (
                n,
                Box::new(BatchSource::from_batch(batch, 1024)) as Box<dyn Operator>,
            )
        })
        .collect();
    let consumers: Vec<u32> = (0..nodes)
        .flat_map(|n| std::iter::repeat_n(n, threads as usize))
        .collect();
    let stats = Arc::new(NetStats::default());
    let receivers = dxchg_hash_split(
        producers,
        consumers,
        vec![0],
        DxchgConfig {
            buffer_bytes: 64 * 1024,
            mode,
            fault: None,
            fabric: None,
        },
        stats,
    )
    .unwrap();
    let handles: Vec<_> = receivers
        .into_iter()
        .map(|mut r| {
            std::thread::spawn(move || {
                let mut n = 0u64;
                while let Some(b) = r.next().unwrap() {
                    n += b.len() as u64;
                }
                n
            })
        })
        .collect();
    handles.into_iter().map(|h| h.join().unwrap()).sum()
}

fn main() {
    let mut g = Group::new("dxchg-hash-split");
    for (nodes, threads) in [(2u32, 2u32), (3, 4)] {
        g.throughput(nodes as u64 * ROWS as u64);
        for mode in [FanoutMode::ThreadToThread, FanoutMode::ThreadToNode] {
            g.bench(&format!("{nodes}x{threads}-{mode:?}"), || {
                let total = run(nodes, threads, mode);
                assert_eq!(total, nodes as u64 * ROWS as u64);
                total
            });
        }
    }
}
