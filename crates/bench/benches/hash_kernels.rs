//! Vectorized hash kernels vs the scalar paths they replaced.
//!
//! Three comparisons on a 1M-row two-key workload (I64 orderkey-like +
//! I32 date-like, ~100k distinct key pairs):
//!
//!   1. columnar `hash_columns` vs row-at-a-time hashing (the old
//!      `row_hash` shape: type dispatch and key loop inside the row loop);
//!   2. hash-table build: flat open-addressing `HashTable::insert_batch`
//!      vs `HashMap<u64, Vec<u32>>` (the old join build side);
//!   3. probe: chain walk over precomputed hash vectors vs `HashMap` gets.
//!
//! The build and probe comparisons are the acceptance numbers: the kernel
//! path must be at least 2x the scalar baseline.

use std::collections::HashMap;

use vectorh_bench::harness::Group;
use vectorh_common::rng::SplitMix64;
use vectorh_common::util::{hash_bytes, hash_combine, hash_u64};
use vectorh_common::ColumnData;
use vectorh_exec::kernels::hash::{hash_columns, JOIN_SEED};
use vectorh_exec::kernels::table::HashTable;

const N: usize = 1_000_000;
const DISTINCT: u64 = 100_000;

/// The pre-kernel per-row hash: one type dispatch per key per row.
fn row_hash(cols: &[&ColumnData], keys: &[usize], i: usize, seed: u64) -> u64 {
    let mut h = seed;
    for &k in keys {
        let hk = match cols[k] {
            ColumnData::I32(v) => hash_u64(v[i] as i64 as u64),
            ColumnData::I64(v) => hash_u64(v[i] as u64),
            ColumnData::F64(v) => hash_u64(v[i].to_bits()),
            ColumnData::Str(v) => hash_bytes(v[i].as_bytes()),
        };
        h = hash_combine(h, hk);
    }
    h
}

fn main() {
    let mut rng = SplitMix64::new(0xBE7C);
    let k1: Vec<i64> = (0..N).map(|_| rng.next_bounded(DISTINCT) as i64).collect();
    let k2: Vec<i32> = (0..N)
        .map(|_| (rng.next_bounded(DISTINCT) % 2500) as i32)
        .collect();
    let cols = [ColumnData::I64(k1), ColumnData::I32(k2)];
    let refs: Vec<&ColumnData> = cols.iter().collect();
    let keys = [0usize, 1];

    let mut g = Group::new("hash-1M-two-key");
    g.throughput(N as u64);
    let t_col = g.bench("columnar", || {
        let mut out = Vec::new();
        hash_columns(&refs, &keys, JOIN_SEED, &mut out);
        out
    });
    let t_row = g.bench("row-at-a-time", || {
        let mut out = Vec::with_capacity(N);
        for i in 0..N {
            out.push(row_hash(&refs, &keys, i, JOIN_SEED));
        }
        out
    });

    let mut hashes = Vec::new();
    hash_columns(&refs, &keys, JOIN_SEED, &mut hashes);

    let mut g = Group::new("build-1M");
    g.throughput(N as u64);
    let t_flat = g.bench("flat-table", || {
        let mut t = HashTable::new();
        for chunk in hashes.chunks(1024) {
            t.insert_batch(chunk);
        }
        t.len()
    });
    let t_map = g.bench("hashmap-vec", || {
        let mut m: HashMap<u64, Vec<u32>> = HashMap::new();
        for (i, &h) in hashes.iter().enumerate() {
            m.entry(h).or_default().push(i as u32);
        }
        m.len()
    });

    let mut flat = HashTable::new();
    flat.insert_batch(&hashes);
    let mut map: HashMap<u64, Vec<u32>> = HashMap::new();
    for (i, &h) in hashes.iter().enumerate() {
        map.entry(h).or_default().push(i as u32);
    }

    let mut g = Group::new("probe-1M");
    g.throughput(N as u64);
    let t_flat_probe = g.bench("flat-table", || {
        let mut sum = 0u64;
        for &h in &hashes {
            for row in flat.candidates(h) {
                sum = sum.wrapping_add(row as u64);
            }
        }
        sum
    });
    let t_map_probe = g.bench("hashmap-vec", || {
        let mut sum = 0u64;
        for &h in &hashes {
            if let Some(rows) = map.get(&h) {
                for &row in rows {
                    sum = sum.wrapping_add(row as u64);
                }
            }
        }
        sum
    });

    // Two-pass probe_batch (bucket-head gather pass, then chain resolve)
    // vs the one-pass shape it replaced (full data-dependent walk per row,
    // so every probe's cache miss serializes behind the previous one).
    let mut g = Group::new("probe-batch-1M");
    g.throughput(N as u64);
    let t_two_pass = g.bench("two-pass", || {
        let mut heads = Vec::new();
        flat.probe_batch(&hashes, &mut heads);
        heads.iter().map(|&r| r as u64).sum::<u64>()
    });
    let t_one_pass = g.bench("one-pass", || {
        hashes
            .iter()
            .map(|&h| flat.first_candidate(h) as u64)
            .sum::<u64>()
    });

    println!("\n-- speedups (kernel vs scalar baseline) --");
    println!("hashing  {:>5.2}x", t_row / t_col);
    println!("build    {:>5.2}x", t_map / t_flat);
    println!("probe    {:>5.2}x", t_map_probe / t_flat_probe);
    println!("2-pass   {:>5.2}x", t_one_pass / t_two_pass);
}
