//! Criterion: compression codecs — PFOR family vs ORC/Parquet-like
//! baselines (decode speed is what §2 claims: "decompresses 64 or 128
//! consecutive values in typically less than half a CPU cycle per value"
//! vs value-at-a-time baseline readers).

use std::time::Duration;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use vectorh_common::rng::SplitMix64;
use vectorh_common::ColumnData;
use vectorh_compress::baseline::{decode as bdecode, encode as bencode, BaselineFormat};
use vectorh_compress::pdict::PdictI64;
use vectorh_compress::pfor::{Pfor, PforDelta};

const N: usize = 64 * 1024;

fn datasets() -> Vec<(&'static str, Vec<i64>)> {
    let mut rng = SplitMix64::new(7);
    vec![
        ("sorted", (0..N as i64).map(|i| i * 3).collect()),
        ("small-range", (0..N).map(|_| rng.range_i64(0, 1 << 12)).collect()),
        ("skewed-outliers", (0..N)
            .map(|_| {
                if rng.chance(0.02) {
                    rng.next_u64() as i64
                } else {
                    rng.range_i64(0, 255)
                }
            })
            .collect()),
        ("low-cardinality", (0..N).map(|_| rng.next_bounded(16) as i64 * 1_000_003).collect()),
    ]
}

fn bench_decode(c: &mut Criterion) {
    let mut g = c.benchmark_group("decode");
    g.sample_size(10);
    g.warm_up_time(Duration::from_millis(300));
    g.measurement_time(Duration::from_millis(900));
    g.throughput(Throughput::Elements(N as u64));
    for (name, data) in datasets() {
        let pfor = Pfor::encode(&data);
        g.bench_with_input(BenchmarkId::new("pfor", name), &pfor, |b, enc| {
            b.iter(|| {
                let mut out = Vec::with_capacity(N);
                enc.decode(&mut out);
                out
            })
        });
        let delta = PforDelta::encode(&data);
        g.bench_with_input(BenchmarkId::new("pfor-delta", name), &delta, |b, enc| {
            b.iter(|| {
                let mut out = Vec::with_capacity(N);
                enc.decode(&mut out);
                out
            })
        });
        let pdict = PdictI64::encode(&data);
        g.bench_with_input(BenchmarkId::new("pdict", name), &pdict, |b, enc| {
            b.iter(|| {
                let mut out = Vec::with_capacity(N);
                enc.decode(&mut out);
                out
            })
        });
        let col = ColumnData::I64(data.clone());
        let orc = bencode(BaselineFormat::OrcLike, &col);
        g.bench_with_input(BenchmarkId::new("orc-like", name), &orc, |b, enc| {
            b.iter(|| bdecode(BaselineFormat::OrcLike, enc).unwrap())
        });
        let parquet = bencode(BaselineFormat::ParquetLike, &col);
        g.bench_with_input(BenchmarkId::new("parquet-like", name), &parquet, |b, enc| {
            b.iter(|| bdecode(BaselineFormat::ParquetLike, enc).unwrap())
        });
    }
    g.finish();
}

fn bench_encode(c: &mut Criterion) {
    let mut g = c.benchmark_group("encode");
    g.sample_size(10);
    g.warm_up_time(Duration::from_millis(300));
    g.measurement_time(Duration::from_millis(900));
    g.throughput(Throughput::Elements(N as u64));
    for (name, data) in datasets() {
        g.bench_with_input(BenchmarkId::new("pfor", name), &data, |b, d| {
            b.iter(|| Pfor::encode(d))
        });
        let col = ColumnData::I64(data.clone());
        g.bench_with_input(BenchmarkId::new("auto-scheme", name), &col, |b, c| {
            b.iter(|| vectorh_compress::encode_column(c))
        });
        g.bench_with_input(BenchmarkId::new("orc-like", name), &col, |b, c| {
            b.iter(|| bencode(BaselineFormat::OrcLike, c))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_decode, bench_encode);
criterion_main!(benches);
