//! Compression codecs — PFOR family vs ORC/Parquet-like baselines (decode
//! speed is what §2 claims: "decompresses 64 or 128 consecutive values in
//! typically less than half a CPU cycle per value" vs value-at-a-time
//! baseline readers).

use vectorh_bench::harness::Group;
use vectorh_common::rng::SplitMix64;
use vectorh_common::ColumnData;
use vectorh_compress::baseline::{decode as bdecode, encode as bencode, BaselineFormat};
use vectorh_compress::pdict::PdictI64;
use vectorh_compress::pfor::{Pfor, PforDelta};

const N: usize = 64 * 1024;

fn datasets() -> Vec<(&'static str, Vec<i64>)> {
    let mut rng = SplitMix64::new(7);
    vec![
        ("sorted", (0..N as i64).map(|i| i * 3).collect()),
        (
            "small-range",
            (0..N).map(|_| rng.range_i64(0, 1 << 12)).collect(),
        ),
        (
            "skewed-outliers",
            (0..N)
                .map(|_| {
                    if rng.chance(0.02) {
                        rng.next_u64() as i64
                    } else {
                        rng.range_i64(0, 255)
                    }
                })
                .collect(),
        ),
        (
            "low-cardinality",
            (0..N)
                .map(|_| rng.next_bounded(16) as i64 * 1_000_003)
                .collect(),
        ),
    ]
}

fn bench_decode() {
    let mut g = Group::new("decode");
    g.throughput(N as u64);
    for (name, data) in datasets() {
        let pfor = Pfor::encode(&data);
        g.bench(&format!("pfor/{name}"), || {
            let mut out = Vec::with_capacity(N);
            pfor.decode(&mut out);
            out
        });
        let delta = PforDelta::encode(&data);
        g.bench(&format!("pfor-delta/{name}"), || {
            let mut out = Vec::with_capacity(N);
            delta.decode(&mut out);
            out
        });
        let pdict = PdictI64::encode(&data);
        g.bench(&format!("pdict/{name}"), || {
            let mut out = Vec::with_capacity(N);
            pdict.decode(&mut out);
            out
        });
        let col = ColumnData::I64(data.clone());
        let orc = bencode(BaselineFormat::OrcLike, &col);
        g.bench(&format!("orc-like/{name}"), || {
            bdecode(BaselineFormat::OrcLike, &orc).unwrap()
        });
        let parquet = bencode(BaselineFormat::ParquetLike, &col);
        g.bench(&format!("parquet-like/{name}"), || {
            bdecode(BaselineFormat::ParquetLike, &parquet).unwrap()
        });
    }
}

fn bench_encode() {
    let mut g = Group::new("encode");
    g.throughput(N as u64);
    for (name, data) in datasets() {
        g.bench(&format!("pfor/{name}"), || Pfor::encode(&data));
        let col = ColumnData::I64(data.clone());
        g.bench(&format!("auto-scheme/{name}"), || {
            vectorh_compress::encode_column(&col)
        });
        g.bench(&format!("orc-like/{name}"), || {
            bencode(BaselineFormat::OrcLike, &col)
        });
    }
}

fn main() {
    bench_decode();
    bench_encode();
}
