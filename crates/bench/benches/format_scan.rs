//! Figure 1(a) as a microbenchmark — scan + predicate over the VectorH
//! format with/without MinMax skipping, vs the baseline formats.

use std::sync::Arc;

use vectorh_bench::harness::Group;
use vectorh_common::{ColumnData, DataType, Schema, Value};
use vectorh_compress::baseline::{decode as bdecode, encode as bencode, BaselineFormat};
use vectorh_simhdfs::{DefaultPolicy, SimHdfs, SimHdfsConfig, StoreRef};
use vectorh_storage::minmax::PruneOp;
use vectorh_storage::{PartitionStore, StorageConfig};

const N: i64 = 200_000;

fn store() -> PartitionStore {
    let fs: StoreRef = Arc::new(SimHdfs::new(
        1,
        SimHdfsConfig {
            block_size: 1 << 20,
            default_replication: 1,
        },
        Arc::new(DefaultPolicy::new(1)),
    ));
    let schema = Schema::of(&[("ship", DataType::Date), ("lineno", DataType::I64)]);
    let mut s = PartitionStore::new(
        fs,
        "/bench/li/",
        schema,
        StorageConfig {
            rows_per_chunk: 8192,
        },
    );
    // Sorted dates — the clustered-index case.
    s.append_rows(&[
        ColumnData::I32((0..N as i32).map(|i| i / 100).collect()),
        ColumnData::I64((0..N).map(|i| i % 7).collect()),
    ])
    .unwrap();
    s
}

fn vectorh_scan(s: &PartitionStore, cut: i32, skip: bool) -> i64 {
    let keep = if skip {
        s.prune(&vec![(0, PruneOp::Lt, Value::Date(cut))])
    } else {
        vec![true; s.n_chunks()]
    };
    let mut best = i64::MIN;
    for (chunk, k) in keep.iter().enumerate() {
        if !k {
            continue;
        }
        let ship = s.read_column(chunk, 0, None).unwrap();
        let line = s.read_column(chunk, 1, None).unwrap();
        let (ship, line) = (ship.as_i32().unwrap(), line.as_i64().unwrap());
        for i in 0..ship.len() {
            if ship[i] < cut && line[i] > best {
                best = line[i];
            }
        }
    }
    best
}

fn main() {
    let s = store();
    // Baseline chunks.
    let mut orc_chunks = Vec::new();
    let mut at = 0usize;
    while at < N as usize {
        let to = (at + 8192).min(N as usize);
        let ship = ColumnData::I32(((at as i32)..(to as i32)).map(|i| i / 100).collect());
        let line = ColumnData::I64(((at as i64)..(to as i64)).map(|i| i % 7).collect());
        orc_chunks.push((
            bencode(BaselineFormat::OrcLike, &ship),
            bencode(BaselineFormat::OrcLike, &line),
        ));
        at = to;
    }

    let mut g = Group::new("fig1-scan");
    g.throughput(N as u64);
    for sel in [10u32, 50, 90] {
        let cut = (N as i32 / 100) * sel as i32 / 100;
        g.bench(&format!("vectorh+minmax/{sel}"), || {
            vectorh_scan(&s, cut, true)
        });
        g.bench(&format!("vectorh-no-skip/{sel}"), || {
            vectorh_scan(&s, cut, false)
        });
        g.bench(&format!("orc-like/{sel}"), || {
            let mut best = i64::MIN;
            for (ship_enc, line_enc) in &orc_chunks {
                let ship = bdecode(BaselineFormat::OrcLike, ship_enc).unwrap();
                let line = bdecode(BaselineFormat::OrcLike, line_enc).unwrap();
                let (ship, line) = (ship.as_i32().unwrap(), line.as_i64().unwrap());
                for i in 0..ship.len() {
                    if ship[i] < cut && line[i] > best {
                        best = line[i];
                    }
                }
            }
            best
        });
    }
}
