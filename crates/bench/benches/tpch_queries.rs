//! Criterion: representative TPC-H queries on the full VectorH stack vs the
//! single-threaded columnar baseline (a steady-state slice of Figure 7).

use std::time::Duration;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use vectorh::{ClusterConfig, VectorH};
use vectorh_tpch::baseline::{BaselineDb, BaselineKind};
use vectorh_tpch::queries::{build_query, run_with};

struct Setup {
    vh: VectorH,
    db: BaselineDb,
}

fn setup() -> Setup {
    let vh = VectorH::start(ClusterConfig {
        nodes: 3,
        rows_per_chunk: 8192,
        ..Default::default()
    })
    .unwrap();
    let data = vectorh_tpch::schema::setup(&vh, 0.005, 6, 42).unwrap();
    let db = BaselineDb::load(&data).unwrap();
    Setup { vh, db }
}

fn bench_queries(c: &mut Criterion) {
    let s = setup();
    let mut g = c.benchmark_group("tpch-sf0.005");
    g.sample_size(10);
    g.warm_up_time(Duration::from_millis(300));
    g.measurement_time(Duration::from_millis(900));
    for qn in [1usize, 3, 6, 12, 14] {
        g.bench_with_input(BenchmarkId::new("vectorh", qn), &qn, |b, &qn| {
            b.iter(|| {
                let q = build_query(qn).unwrap();
                run_with(&q, |p| s.vh.query_logical(p)).unwrap()
            })
        });
        g.bench_with_input(BenchmarkId::new("naive-columnar", qn), &qn, |b, &qn| {
            b.iter(|| {
                let q = build_query(qn).unwrap();
                s.db.run_query(&q, BaselineKind::NaiveColumnar).unwrap()
            })
        });
        g.bench_with_input(BenchmarkId::new("rowstore", qn), &qn, |b, &qn| {
            b.iter(|| {
                let q = build_query(qn).unwrap();
                s.db.run_query(&q, BaselineKind::RowStore).unwrap()
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_queries);
criterion_main!(benches);
