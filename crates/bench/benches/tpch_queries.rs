//! Representative TPC-H queries on the full VectorH stack vs the
//! single-threaded columnar baseline (a steady-state slice of Figure 7).

use vectorh::{ClusterConfig, VectorH};
use vectorh_bench::harness::Group;
use vectorh_tpch::baseline::{BaselineDb, BaselineKind};
use vectorh_tpch::queries::{build_query, run_with};

struct Setup {
    vh: VectorH,
    db: BaselineDb,
}

fn setup() -> Setup {
    let vh = VectorH::start(ClusterConfig {
        nodes: 3,
        rows_per_chunk: 8192,
        ..Default::default()
    })
    .unwrap();
    let data = vectorh_tpch::schema::setup(&vh, 0.005, 6, 42).unwrap();
    let db = BaselineDb::load(&data).unwrap();
    Setup { vh, db }
}

fn main() {
    let s = setup();
    let mut g = Group::new("tpch-sf0.005");
    for qn in [1usize, 3, 6, 12, 14] {
        g.bench(&format!("vectorh/q{qn}"), || {
            let q = build_query(qn).unwrap();
            run_with(&q, |p| s.vh.query_logical(p)).unwrap()
        });
        g.bench(&format!("naive-columnar/q{qn}"), || {
            let q = build_query(qn).unwrap();
            s.db.run_query(&q, BaselineKind::NaiveColumnar).unwrap()
        });
        g.bench(&format!("rowstore/q{qn}"), || {
            let q = build_query(qn).unwrap();
            s.db.run_query(&q, BaselineKind::RowStore).unwrap()
        });
    }
}
