//! Sort and TopN.
//!
//! `Sort` materializes its input, sorts a permutation vector by the key
//! columns, and emits in order; `limit` turns it into TopN (the paper's Q1
//! plan shows `TopN (partial)` per thread under a merging final TopN —
//! the exchange layer composes partial TopNs the same way).

use std::cmp::Ordering;
use std::sync::Arc;

use vectorh_common::{Result, Schema, Value, VECTOR_SIZE};

use crate::batch::Batch;
use crate::operator::{Counters, OpProfile, Operator};

/// Sort direction per key.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dir {
    Asc,
    Desc,
}

/// Sort operator (with optional LIMIT → TopN).
pub struct Sort {
    child: Box<dyn Operator>,
    keys: Vec<(usize, Dir)>,
    limit: Option<usize>,
    sorted: Option<Batch>,
    emit_at: usize,
    counters: Counters,
}

impl Sort {
    pub fn new(child: Box<dyn Operator>, keys: Vec<(usize, Dir)>, limit: Option<usize>) -> Sort {
        Sort {
            child,
            keys,
            limit,
            sorted: None,
            emit_at: 0,
            counters: Counters::default(),
        }
    }

    fn cmp_rows(&self, batch: &Batch, a: usize, b: usize) -> Ordering {
        for &(k, dir) in &self.keys {
            let va = batch.column(k).value_at(a, batch.schema.dtype(k));
            let vb = batch.column(k).value_at(b, batch.schema.dtype(k));
            let ord = va.partial_cmp(&vb).unwrap_or(Ordering::Equal);
            let ord = if dir == Dir::Desc { ord.reverse() } else { ord };
            if ord != Ordering::Equal {
                return ord;
            }
        }
        Ordering::Equal
    }

    fn materialize(&mut self) -> Result<()> {
        let mut all = Batch::empty(self.child.schema());
        while let Some(b) = self.child.next()? {
            self.counters.rows_in += b.len() as u64;
            all.append(&b)?;
        }
        let mut perm: Vec<usize> = (0..all.len()).collect();
        perm.sort_by(|&a, &b| self.cmp_rows(&all, a, b));
        if let Some(limit) = self.limit {
            perm.truncate(limit);
        }
        self.sorted = Some(all.gather(&perm));
        Ok(())
    }
}

impl Operator for Sort {
    fn schema(&self) -> Arc<Schema> {
        self.child.schema()
    }

    fn next(&mut self) -> Result<Option<Batch>> {
        let start = std::time::Instant::now();
        if self.sorted.is_none() {
            self.materialize()?;
        }
        let sorted = self.sorted.as_ref().unwrap();
        let out = if self.emit_at >= sorted.len() {
            None
        } else {
            let to = (self.emit_at + VECTOR_SIZE).min(sorted.len());
            let b = sorted.slice(self.emit_at, to);
            self.emit_at = to;
            Some(b)
        };
        self.counters.cum_time_ns += start.elapsed().as_nanos() as u64;
        self.counters.calls += 1;
        if let Some(b) = &out {
            self.counters.rows_out += b.len() as u64;
        }
        Ok(out)
    }

    fn profile(&self) -> OpProfile {
        self.counters
            .profile(if self.limit.is_some() { "TopN" } else { "Sort" })
    }

    fn children(&self) -> Vec<&dyn Operator> {
        vec![self.child.as_ref()]
    }
}

/// Plain LIMIT without sorting.
pub struct Limit {
    child: Box<dyn Operator>,
    remaining: usize,
    counters: Counters,
}

impl Limit {
    pub fn new(child: Box<dyn Operator>, n: usize) -> Limit {
        Limit {
            child,
            remaining: n,
            counters: Counters::default(),
        }
    }
}

impl Operator for Limit {
    fn schema(&self) -> Arc<Schema> {
        self.child.schema()
    }

    fn next(&mut self) -> Result<Option<Batch>> {
        let start = std::time::Instant::now();
        let out = if self.remaining == 0 {
            None
        } else {
            match self.child.next()? {
                None => None,
                Some(b) => {
                    self.counters.rows_in += b.len() as u64;
                    let take = b.len().min(self.remaining);
                    self.remaining -= take;
                    Some(if take == b.len() { b } else { b.slice(0, take) })
                }
            }
        };
        self.counters.cum_time_ns += start.elapsed().as_nanos() as u64;
        self.counters.calls += 1;
        if let Some(b) = &out {
            self.counters.rows_out += b.len() as u64;
        }
        Ok(out)
    }

    fn profile(&self) -> OpProfile {
        self.counters.profile("Limit")
    }

    fn children(&self) -> Vec<&dyn Operator> {
        vec![self.child.as_ref()]
    }
}

/// Sort helper for result rows (used by tests and harnesses to canonicalize
/// output ordering where SQL leaves it unspecified).
pub fn sort_rows(rows: &mut [Vec<Value>]) {
    rows.sort_by(|a, b| {
        for (x, y) in a.iter().zip(b) {
            match x.partial_cmp(y) {
                Some(Ordering::Equal) | None => continue,
                Some(o) => return o,
            }
        }
        Ordering::Equal
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operator::BatchSource;
    use vectorh_common::{ColumnData, DataType};

    fn source(vals: Vec<i64>, tags: Vec<&str>) -> Box<dyn Operator> {
        let schema = Arc::new(Schema::of(&[("x", DataType::I64), ("t", DataType::Str)]));
        let batch = Batch::new(
            schema,
            vec![
                ColumnData::I64(vals),
                ColumnData::Str(tags.into_iter().map(String::from).collect()),
            ],
        )
        .unwrap();
        Box::new(BatchSource::from_batch(batch, 3))
    }

    #[test]
    fn sorts_ascending_and_descending() {
        let mut s = Sort::new(
            source(vec![3, 1, 2], vec!["c", "a", "b"]),
            vec![(0, Dir::Asc)],
            None,
        );
        let rows = crate::batch::collect_rows(&mut s).unwrap();
        assert_eq!(
            rows.iter()
                .map(|r| r[0].as_i64().unwrap())
                .collect::<Vec<_>>(),
            vec![1, 2, 3]
        );
        let mut s = Sort::new(
            source(vec![3, 1, 2], vec!["c", "a", "b"]),
            vec![(0, Dir::Desc)],
            None,
        );
        let rows = crate::batch::collect_rows(&mut s).unwrap();
        assert_eq!(
            rows.iter()
                .map(|r| r[0].as_i64().unwrap())
                .collect::<Vec<_>>(),
            vec![3, 2, 1]
        );
    }

    #[test]
    fn multi_key_with_tiebreak() {
        let mut s = Sort::new(
            source(vec![1, 1, 0], vec!["b", "a", "z"]),
            vec![(0, Dir::Asc), (1, Dir::Asc)],
            None,
        );
        let rows = crate::batch::collect_rows(&mut s).unwrap();
        assert_eq!(rows[0][1], Value::Str("z".into()));
        assert_eq!(rows[1][1], Value::Str("a".into()));
        assert_eq!(rows[2][1], Value::Str("b".into()));
    }

    #[test]
    fn topn_truncates() {
        let mut s = Sort::new(
            source(vec![5, 3, 9, 1, 7], vec!["e", "c", "i", "a", "g"]),
            vec![(0, Dir::Desc)],
            Some(2),
        );
        let rows = crate::batch::collect_rows(&mut s).unwrap();
        assert_eq!(
            rows.iter()
                .map(|r| r[0].as_i64().unwrap())
                .collect::<Vec<_>>(),
            vec![9, 7]
        );
        assert_eq!(s.profile().name, "TopN");
    }

    #[test]
    fn limit_stops_pulling() {
        let mut l = Limit::new(
            source(vec![1, 2, 3, 4, 5], vec!["a", "b", "c", "d", "e"]),
            4,
        );
        let rows = crate::batch::collect_rows(&mut l).unwrap();
        assert_eq!(rows.len(), 4);
    }

    #[test]
    fn empty_input_sorts_to_empty() {
        let schema = Arc::new(Schema::of(&[("x", DataType::I64)]));
        let src = Box::new(BatchSource::new(schema, vec![]));
        let mut s = Sort::new(src, vec![(0, Dir::Asc)], None);
        assert!(crate::batch::collect_rows(&mut s).unwrap().is_empty());
    }
}
