//! The operator interface and per-operator profiling.
//!
//! Operators form a pull-based ("Volcano") tree: `next()` returns the next
//! batch of up to a vector's worth of tuples, or `None` at end-of-stream.
//! Exchange operators (in `vectorh-net`) encapsulate all parallelism, so the
//! operators here are single-threaded and parallelism-unaware, exactly as
//! §5 describes.
//!
//! Every operator tracks cumulative time, calls and tuple counts; the
//! harness regenerating the appendix Q1 profile walks the tree with
//! [`collect_profiles`] and derives self-time = cum-time − children's
//! cum-time, matching the `time` / `cum_time` fields of the paper's profile
//! boxes.

use std::sync::Arc;
use std::time::Instant;

use vectorh_common::{Result, Schema};

use crate::batch::Batch;

/// Profiling counters of one operator.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct OpProfile {
    pub name: String,
    /// Wall time spent inside `next()` including children (cum_time).
    pub cum_time_ns: u64,
    pub rows_in: u64,
    pub rows_out: u64,
    pub calls: u64,
}

/// Profile of a producer pipeline that ran on another thread/node (exchange
/// operators surface these after end-of-stream, since their children are not
/// reachable through `children()`).
#[derive(Debug, Clone)]
pub struct RemoteProfile {
    /// e.g. "worker 3 @ node1" — the appendix profile's `Nxx@yy` notation.
    pub label: String,
    pub lines: Vec<ProfileLine>,
    pub rows: u64,
    pub wall_ns: u64,
}

/// A vectorized operator.
pub trait Operator: Send {
    /// Output schema.
    fn schema(&self) -> Arc<Schema>;
    /// Produce the next batch, or `None` when exhausted.
    fn next(&mut self) -> Result<Option<Batch>>;
    /// This operator's counters.
    fn profile(&self) -> OpProfile;
    /// Child operators (for profile collection).
    fn children(&self) -> Vec<&dyn Operator>;
    /// Profiles of producer pipelines that ran behind an exchange.
    fn remote_profiles(&self) -> Vec<RemoteProfile> {
        vec![]
    }
}

/// Shared timing/counting helper embedded in each operator.
#[derive(Debug, Default)]
pub struct Counters {
    pub cum_time_ns: u64,
    pub rows_in: u64,
    pub rows_out: u64,
    pub calls: u64,
}

impl Counters {
    /// Time a `next()` body, recording output rows.
    pub fn track<F>(&mut self, f: F) -> Result<Option<Batch>>
    where
        F: FnOnce(&mut Self) -> Result<Option<Batch>>,
    {
        let start = Instant::now();
        let out = f(self);
        self.cum_time_ns += start.elapsed().as_nanos() as u64;
        self.calls += 1;
        if let Ok(Some(b)) = &out {
            self.rows_out += b.len() as u64;
        }
        out
    }

    pub fn profile(&self, name: &str) -> OpProfile {
        OpProfile {
            name: name.to_string(),
            cum_time_ns: self.cum_time_ns,
            rows_in: self.rows_in,
            rows_out: self.rows_out,
            calls: self.calls,
        }
    }
}

/// One line of a collected profile: depth in the tree, the operator's
/// counters, and its derived self-time.
#[derive(Debug, Clone)]
pub struct ProfileLine {
    pub depth: usize,
    pub profile: OpProfile,
    /// cum_time − Σ children cum_time (clamped at 0 for timer noise).
    pub self_time_ns: u64,
}

/// Walk the operator tree, producing appendix-style profile lines
/// (parent first, then children). Pipelines behind exchanges appear as
/// labelled sub-blocks via [`Operator::remote_profiles`].
pub fn collect_profiles(op: &dyn Operator) -> Vec<ProfileLine> {
    fn walk(op: &dyn Operator, depth: usize, out: &mut Vec<ProfileLine>) {
        let children = op.children();
        let child_cum: u64 = children.iter().map(|c| c.profile().cum_time_ns).sum();
        let profile = op.profile();
        let self_time_ns = profile.cum_time_ns.saturating_sub(child_cum);
        out.push(ProfileLine {
            depth,
            profile,
            self_time_ns,
        });
        for c in children {
            walk(c, depth + 1, out);
        }
        for remote in op.remote_profiles() {
            out.push(ProfileLine {
                depth: depth + 1,
                profile: OpProfile {
                    name: remote.label,
                    cum_time_ns: remote.wall_ns,
                    rows_in: 0,
                    rows_out: remote.rows,
                    calls: 0,
                },
                self_time_ns: 0,
            });
            for mut line in remote.lines {
                line.depth += depth + 2;
                out.push(line);
            }
        }
    }
    let mut out = Vec::new();
    walk(op, 0, &mut out);
    out
}

/// Render a profile as the appendix-style text report.
pub fn render_profile(lines: &[ProfileLine]) -> String {
    let mut s = String::new();
    for l in lines {
        let indent = "  ".repeat(l.depth);
        s.push_str(&format!(
            "{indent}{name}: time={self_ms:.2}ms cum_time={cum_ms:.2}ms in={in_} out={out} calls={calls}\n",
            name = l.profile.name,
            self_ms = l.self_time_ns as f64 / 1e6,
            cum_ms = l.profile.cum_time_ns as f64 / 1e6,
            in_ = l.profile.rows_in,
            out = l.profile.rows_out,
            calls = l.profile.calls,
        ));
    }
    s
}

/// A leaf operator yielding pre-built batches (tests, exchange receivers,
/// and the build side of remote sub-plans).
pub struct BatchSource {
    schema: Arc<Schema>,
    batches: std::collections::VecDeque<Batch>,
    counters: Counters,
}

impl BatchSource {
    pub fn new(schema: Arc<Schema>, batches: Vec<Batch>) -> BatchSource {
        BatchSource {
            schema,
            batches: batches.into(),
            counters: Counters::default(),
        }
    }

    /// Chop a single big batch into vector-sized pieces.
    pub fn from_batch(batch: Batch, vector_size: usize) -> BatchSource {
        let schema = batch.schema.clone();
        let mut batches = Vec::new();
        let mut at = 0;
        while at < batch.len() {
            let to = (at + vector_size).min(batch.len());
            batches.push(batch.slice(at, to));
            at = to;
        }
        BatchSource::new(schema, batches)
    }
}

impl Operator for BatchSource {
    fn schema(&self) -> Arc<Schema> {
        self.schema.clone()
    }

    fn next(&mut self) -> Result<Option<Batch>> {
        self.counters.track(|_| Ok(self.batches.pop_front()))
    }

    fn profile(&self) -> OpProfile {
        self.counters.profile("BatchSource")
    }

    fn children(&self) -> Vec<&dyn Operator> {
        vec![]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vectorh_common::{ColumnData, DataType};

    fn mk_batch(vals: Vec<i64>) -> Batch {
        Batch::new(
            Arc::new(Schema::of(&[("x", DataType::I64)])),
            vec![ColumnData::I64(vals)],
        )
        .unwrap()
    }

    #[test]
    fn batch_source_yields_all() {
        let mut src = BatchSource::new(
            Arc::new(Schema::of(&[("x", DataType::I64)])),
            vec![mk_batch(vec![1, 2]), mk_batch(vec![3])],
        );
        let mut n = 0;
        while let Some(b) = src.next().unwrap() {
            n += b.len();
        }
        assert_eq!(n, 3);
        let p = src.profile();
        assert_eq!(p.rows_out, 3);
        assert_eq!(p.calls, 3); // 2 batches + final None
    }

    #[test]
    fn from_batch_slices_by_vector_size() {
        let big = mk_batch((0..2500).collect());
        let mut src = BatchSource::from_batch(big, 1024);
        let mut sizes = Vec::new();
        while let Some(b) = src.next().unwrap() {
            sizes.push(b.len());
        }
        assert_eq!(sizes, vec![1024, 1024, 452]);
    }

    #[test]
    fn profiles_collect_with_depth() {
        let mut src = BatchSource::new(
            Arc::new(Schema::of(&[("x", DataType::I64)])),
            vec![mk_batch(vec![1])],
        );
        while src.next().unwrap().is_some() {}
        let lines = collect_profiles(&src);
        assert_eq!(lines.len(), 1);
        assert_eq!(lines[0].depth, 0);
        assert_eq!(lines[0].profile.name, "BatchSource");
        let text = render_profile(&lines);
        assert!(text.contains("BatchSource"));
    }
}
