//! A tuple-at-a-time baseline engine.
//!
//! The Figure 7 comparison needs comparator systems. The paper attributes
//! the 1–3 order-of-magnitude gap largely to engines that interpret query
//! plans row by row (HAWQ's "PostgreSQL-based query engine ... cannot
//! compete with a modern vectorized engine in terms of CPU efficiency").
//! This module is that comparator, built honestly: the *same* expression
//! code and the same algorithms, but driven one tuple per `next_row()` call,
//! materializing a one-row [`Batch`] for every expression evaluation —
//! which is precisely the per-tuple interpretation overhead vectorization
//! amortizes away.

use std::collections::HashMap;
use std::sync::Arc;

use crate::operator::Operator as _;
use vectorh_common::{ColumnData, Result, Schema, Value, VhError};

use crate::batch::Batch;
use crate::expr::Expr;

/// A tuple-at-a-time operator.
pub trait RowOperator {
    fn schema(&self) -> Arc<Schema>;
    fn next_row(&mut self) -> Result<Option<Vec<Value>>>;
}

/// Evaluate an expression against one row (building a 1-row batch: the
/// overhead is the point).
fn eval_row(e: &Expr, schema: &Arc<Schema>, row: &[Value]) -> Result<Value> {
    let cols: Result<Vec<ColumnData>> = schema
        .fields()
        .iter()
        .enumerate()
        .map(|(i, f)| {
            let mut c = ColumnData::new(f.dtype);
            c.push_value(&row[i])?;
            Ok(c)
        })
        .collect();
    let b = Batch::new(schema.clone(), cols?)?;
    let (col, dt) = e.eval(&b)?;
    Ok(col.value_at(0, dt))
}

fn eval_row_bool(e: &Expr, schema: &Arc<Schema>, row: &[Value]) -> Result<bool> {
    Ok(match eval_row(e, schema, row)? {
        Value::I32(x) => x != 0,
        Value::I64(x) => x != 0,
        _ => false,
    })
}

/// Scan over materialized rows.
pub struct RowScan {
    schema: Arc<Schema>,
    rows: std::vec::IntoIter<Vec<Value>>,
}

impl RowScan {
    pub fn new(schema: Arc<Schema>, rows: Vec<Vec<Value>>) -> RowScan {
        RowScan {
            schema,
            rows: rows.into_iter(),
        }
    }
}

impl RowOperator for RowScan {
    fn schema(&self) -> Arc<Schema> {
        self.schema.clone()
    }
    fn next_row(&mut self) -> Result<Option<Vec<Value>>> {
        Ok(self.rows.next())
    }
}

/// Row-wise filter.
pub struct RowSelect {
    child: Box<dyn RowOperator>,
    predicate: Expr,
}

impl RowSelect {
    pub fn new(child: Box<dyn RowOperator>, predicate: Expr) -> RowSelect {
        RowSelect { child, predicate }
    }
}

impl RowOperator for RowSelect {
    fn schema(&self) -> Arc<Schema> {
        self.child.schema()
    }
    fn next_row(&mut self) -> Result<Option<Vec<Value>>> {
        let schema = self.child.schema();
        while let Some(row) = self.child.next_row()? {
            if eval_row_bool(&self.predicate, &schema, &row)? {
                return Ok(Some(row));
            }
        }
        Ok(None)
    }
}

/// Row-wise projection.
pub struct RowProject {
    child: Box<dyn RowOperator>,
    exprs: Vec<Expr>,
    out_schema: Arc<Schema>,
}

impl RowProject {
    pub fn new(child: Box<dyn RowOperator>, items: Vec<(Expr, String)>) -> Result<RowProject> {
        let in_schema = child.schema();
        let mut fields = Vec::new();
        let mut exprs = Vec::new();
        for (e, n) in items {
            fields.push(vectorh_common::Field::new(n, e.dtype(&in_schema)?));
            exprs.push(e);
        }
        Ok(RowProject {
            child,
            exprs,
            out_schema: Arc::new(Schema::new(fields)),
        })
    }
}

impl RowOperator for RowProject {
    fn schema(&self) -> Arc<Schema> {
        self.out_schema.clone()
    }
    fn next_row(&mut self) -> Result<Option<Vec<Value>>> {
        let schema = self.child.schema();
        match self.child.next_row()? {
            None => Ok(None),
            Some(row) => {
                let out: Result<Vec<Value>> = self
                    .exprs
                    .iter()
                    .map(|e| eval_row(e, &schema, &row))
                    .collect();
                Ok(Some(out?))
            }
        }
    }
}

/// Row-wise hash join (inner), one probe tuple at a time.
pub struct RowHashJoin {
    probe: Box<dyn RowOperator>,
    build: Option<Box<dyn RowOperator>>,
    probe_key: usize,
    build_key: usize,
    table: HashMap<String, Vec<Vec<Value>>>,
    out_schema: Arc<Schema>,
    pending: Vec<Vec<Value>>,
}

fn key_repr(v: &Value) -> String {
    format!("{v}")
}

impl RowHashJoin {
    pub fn new(
        probe: Box<dyn RowOperator>,
        build: Box<dyn RowOperator>,
        probe_key: usize,
        build_key: usize,
    ) -> RowHashJoin {
        let out_schema = Arc::new(probe.schema().join(&build.schema()));
        RowHashJoin {
            probe,
            build: Some(build),
            probe_key,
            build_key,
            table: HashMap::new(),
            out_schema,
            pending: Vec::new(),
        }
    }
}

impl RowOperator for RowHashJoin {
    fn schema(&self) -> Arc<Schema> {
        self.out_schema.clone()
    }
    fn next_row(&mut self) -> Result<Option<Vec<Value>>> {
        if let Some(mut build) = self.build.take() {
            while let Some(row) = build.next_row()? {
                self.table
                    .entry(key_repr(&row[self.build_key]))
                    .or_default()
                    .push(row);
            }
        }
        loop {
            if let Some(row) = self.pending.pop() {
                return Ok(Some(row));
            }
            let Some(prow) = self.probe.next_row()? else {
                return Ok(None);
            };
            if let Some(matches) = self.table.get(&key_repr(&prow[self.probe_key])) {
                for m in matches {
                    let mut out = prow.clone();
                    out.extend(m.iter().cloned());
                    self.pending.push(out);
                }
            }
        }
    }
}

/// Row-wise aggregation (complete mode only — the baseline engines in the
/// paper lack multi-core/partial aggregation, which is part of why they
/// lose).
pub struct RowAggr {
    child: Box<dyn RowOperator>,
    group_by: Vec<usize>,
    aggs: Vec<crate::aggr::AggFn>,
    done: bool,
    out: Vec<Vec<Value>>,
    out_schema: Arc<Schema>,
}

impl RowAggr {
    pub fn new(
        child: Box<dyn RowOperator>,
        group_by: Vec<usize>,
        aggs: Vec<crate::aggr::AggFn>,
    ) -> Result<RowAggr> {
        // Reuse the vectorized Aggr's schema computation by constructing it
        // over an empty source: the schemas must match for comparisons.
        let probe = crate::aggr::Aggr::new(
            Box::new(crate::operator::BatchSource::new(child.schema(), vec![])),
            group_by.clone(),
            aggs.clone(),
            crate::aggr::AggMode::Complete,
        )?;
        let out_schema = probe.schema();
        Ok(RowAggr {
            child,
            group_by,
            aggs,
            done: false,
            out: Vec::new(),
            out_schema,
        })
    }

    fn run(&mut self) -> Result<()> {
        use crate::aggr::AggFn;
        struct G {
            key: Vec<Value>,
            count: Vec<i64>,
            sum_i: Vec<i64>,
            sum_f: Vec<f64>,
            minmax: Vec<Option<Value>>,
            distinct: Vec<std::collections::HashSet<String>>,
        }
        let mut groups: HashMap<String, G> = HashMap::new();
        let n = self.aggs.len();
        while let Some(row) = self.child.next_row()? {
            let key: Vec<Value> = self.group_by.iter().map(|&g| row[g].clone()).collect();
            let kr = key.iter().map(key_repr).collect::<Vec<_>>().join("\u{1}");
            let g = groups.entry(kr).or_insert_with(|| G {
                key,
                count: vec![0; n],
                sum_i: vec![0; n],
                sum_f: vec![0.0; n],
                minmax: vec![None; n],
                distinct: vec![Default::default(); n],
            });
            for (a, f) in self.aggs.iter().enumerate() {
                match f {
                    AggFn::CountStar | AggFn::Count(_) => g.count[a] += 1,
                    AggFn::Sum(c) | AggFn::Avg(c) => {
                        g.count[a] += 1;
                        match &row[*c] {
                            Value::F64(x) => g.sum_f[a] += x,
                            v => g.sum_i[a] += v.as_i64().unwrap_or(0),
                        }
                    }
                    AggFn::Min(c) => {
                        let v = row[*c].clone();
                        if g.minmax[a].as_ref().is_none_or(|m| v < *m) {
                            g.minmax[a] = Some(v);
                        }
                    }
                    AggFn::Max(c) => {
                        let v = row[*c].clone();
                        if g.minmax[a].as_ref().is_none_or(|m| v > *m) {
                            g.minmax[a] = Some(v);
                        }
                    }
                    AggFn::CountDistinct(c) => {
                        g.distinct[a].insert(key_repr(&row[*c]));
                    }
                }
            }
        }
        if self.group_by.is_empty() && groups.is_empty() {
            let all_counts = self
                .aggs
                .iter()
                .all(|a| matches!(a, AggFn::CountStar | AggFn::Count(_)));
            if all_counts {
                self.out.push(vec![Value::I64(0); self.aggs.len()]);
                return Ok(());
            }
        }
        let child_schema = self.child.schema();
        for (_, g) in groups {
            let mut row = g.key.clone();
            for (a, f) in self.aggs.iter().enumerate() {
                match f {
                    AggFn::CountStar | AggFn::Count(_) => row.push(Value::I64(g.count[a])),
                    AggFn::Sum(c) => {
                        let dt = child_schema.dtype(*c);
                        row.push(match dt {
                            vectorh_common::DataType::F64 => Value::F64(g.sum_f[a]),
                            vectorh_common::DataType::Decimal { scale } => {
                                Value::Decimal(g.sum_i[a], scale)
                            }
                            _ => Value::I64(g.sum_i[a]),
                        });
                    }
                    AggFn::Avg(c) => {
                        let dt = child_schema.dtype(*c);
                        let denom = (g.count[a] as f64).max(1.0);
                        row.push(match dt {
                            vectorh_common::DataType::F64 => Value::F64(g.sum_f[a] / denom),
                            vectorh_common::DataType::Decimal { scale } => {
                                Value::F64(g.sum_i[a] as f64 / denom / 10f64.powi(scale as i32))
                            }
                            _ => Value::F64(g.sum_i[a] as f64 / denom),
                        });
                    }
                    AggFn::Min(_) | AggFn::Max(_) => row.push(
                        g.minmax[a]
                            .clone()
                            .ok_or_else(|| VhError::Exec("MIN/MAX over empty group".into()))?,
                    ),
                    AggFn::CountDistinct(_) => row.push(Value::I64(g.distinct[a].len() as i64)),
                }
            }
            self.out.push(row);
        }
        Ok(())
    }
}

impl RowOperator for RowAggr {
    fn schema(&self) -> Arc<Schema> {
        self.out_schema.clone()
    }
    fn next_row(&mut self) -> Result<Option<Vec<Value>>> {
        if !self.done {
            self.run()?;
            self.done = true;
        }
        Ok(self.out.pop())
    }
}

/// Drain a row operator.
pub fn collect_row_op(op: &mut dyn RowOperator) -> Result<Vec<Vec<Value>>> {
    let mut out = Vec::new();
    while let Some(r) = op.next_row()? {
        out.push(r);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggr::AggFn;
    use crate::sort::sort_rows;
    use vectorh_common::DataType;

    fn schema() -> Arc<Schema> {
        Arc::new(Schema::of(&[("g", DataType::I64), ("x", DataType::I64)]))
    }

    fn rows() -> Vec<Vec<Value>> {
        vec![
            vec![Value::I64(1), Value::I64(10)],
            vec![Value::I64(2), Value::I64(20)],
            vec![Value::I64(1), Value::I64(30)],
        ]
    }

    #[test]
    fn select_project_pipeline() {
        let scan = RowScan::new(schema(), rows());
        let sel = RowSelect::new(
            Box::new(scan),
            Expr::ge(Expr::col(1), Expr::lit(Value::I64(20))),
        );
        let mut proj = RowProject::new(
            Box::new(sel),
            vec![(
                Expr::add(Expr::col(1), Expr::lit(Value::I64(1))),
                "x1".into(),
            )],
        )
        .unwrap();
        let mut got = collect_row_op(&mut proj).unwrap();
        sort_rows(&mut got);
        assert_eq!(got, vec![vec![Value::I64(21)], vec![Value::I64(31)]]);
    }

    #[test]
    fn row_join_matches() {
        let l = RowScan::new(schema(), rows());
        let r = RowScan::new(
            schema(),
            vec![
                vec![Value::I64(1), Value::I64(100)],
                vec![Value::I64(3), Value::I64(300)],
            ],
        );
        let mut j = RowHashJoin::new(Box::new(l), Box::new(r), 0, 0);
        let got = collect_row_op(&mut j).unwrap();
        assert_eq!(got.len(), 2);
        assert!(got.iter().all(|r| r.len() == 4));
    }

    #[test]
    fn row_aggr_matches_vectorized() {
        // Same data through both engines must agree.
        let mut ra = RowAggr::new(
            Box::new(RowScan::new(schema(), rows())),
            vec![0],
            vec![AggFn::CountStar, AggFn::Sum(1), AggFn::Avg(1)],
        )
        .unwrap();
        let mut got = collect_row_op(&mut ra).unwrap();
        sort_rows(&mut got);

        let schema2 = schema();
        let batch = Batch::new(
            schema2.clone(),
            vec![
                ColumnData::I64(vec![1, 2, 1]),
                ColumnData::I64(vec![10, 20, 30]),
            ],
        )
        .unwrap();
        let src = Box::new(crate::operator::BatchSource::from_batch(batch, 1024));
        let mut va = crate::aggr::Aggr::new(
            src,
            vec![0],
            vec![AggFn::CountStar, AggFn::Sum(1), AggFn::Avg(1)],
            crate::aggr::AggMode::Complete,
        )
        .unwrap();
        let mut want = crate::batch::collect_rows(&mut va).unwrap();
        sort_rows(&mut want);
        assert_eq!(got, want);
    }

    #[test]
    fn empty_global_count_is_zero() {
        let mut ra = RowAggr::new(
            Box::new(RowScan::new(schema(), vec![])),
            vec![],
            vec![AggFn::CountStar],
        )
        .unwrap();
        assert_eq!(collect_row_op(&mut ra).unwrap(), vec![vec![Value::I64(0)]]);
    }
}
