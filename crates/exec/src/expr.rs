//! Vectorized expression evaluation.
//!
//! Expressions evaluate column-at-a-time over a [`Batch`]: every node
//! produces a full vector before its parent consumes it, so the per-tuple
//! interpretation cost of a tree is amortized over the whole vector (§2).
//! Numeric work happens on `Vec<i64>` / `Vec<f64>` primitive slices in
//! branch-light loops.
//!
//! Money math is decimal-exact: decimals are scaled `i64` raws; addition
//! aligns scales, multiplication goes through `i128` and rescales (capped at
//! scale 4), exactly the reason the paper gives for using decimals rather
//! than floats in business queries.

use std::sync::Arc;

use vectorh_common::types::date;
use vectorh_common::{ColumnData, DataType, Result, Schema, Value, VhError};

use crate::batch::Batch;

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

/// Arithmetic operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArithOp {
    Add,
    Sub,
    Mul,
    Div,
}

/// Maximum decimal scale kept after multiplication.
const MAX_SCALE: u8 = 4;

/// A vectorized scalar expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Input column reference.
    Col(usize),
    /// Literal value.
    Lit(Value),
    Cmp(CmpOp, Box<Expr>, Box<Expr>),
    Arith(ArithOp, Box<Expr>, Box<Expr>),
    And(Vec<Expr>),
    Or(Vec<Expr>),
    Not(Box<Expr>),
    /// `lo <= e AND e <= hi`.
    Between(Box<Expr>, Box<Expr>, Box<Expr>),
    /// `e IN (v1, v2, ...)`.
    InList(Box<Expr>, Vec<Value>),
    /// SQL LIKE with `%` and `_` wildcards.
    Like(Box<Expr>, String),
    /// SQL `NOT LIKE`.
    NotLike(Box<Expr>, String),
    /// 1-based `substring(e, start, len)`.
    Substr(Box<Expr>, usize, usize),
    /// `CASE WHEN c1 THEN v1 ... ELSE e END`.
    Case(Vec<(Expr, Expr)>, Box<Expr>),
    /// `EXTRACT(YEAR FROM e)` for date expressions.
    ExtractYear(Box<Expr>),
}

#[allow(clippy::should_implement_trait)] // add/sub/mul/div build Arith nodes, not std ops
impl Expr {
    // Convenience constructors (used heavily by the planner and TPC-H).
    pub fn col(i: usize) -> Expr {
        Expr::Col(i)
    }
    pub fn lit(v: Value) -> Expr {
        Expr::Lit(v)
    }
    pub fn eq(a: Expr, b: Expr) -> Expr {
        Expr::Cmp(CmpOp::Eq, Box::new(a), Box::new(b))
    }
    pub fn ne(a: Expr, b: Expr) -> Expr {
        Expr::Cmp(CmpOp::Ne, Box::new(a), Box::new(b))
    }
    pub fn lt(a: Expr, b: Expr) -> Expr {
        Expr::Cmp(CmpOp::Lt, Box::new(a), Box::new(b))
    }
    pub fn le(a: Expr, b: Expr) -> Expr {
        Expr::Cmp(CmpOp::Le, Box::new(a), Box::new(b))
    }
    pub fn gt(a: Expr, b: Expr) -> Expr {
        Expr::Cmp(CmpOp::Gt, Box::new(a), Box::new(b))
    }
    pub fn ge(a: Expr, b: Expr) -> Expr {
        Expr::Cmp(CmpOp::Ge, Box::new(a), Box::new(b))
    }
    pub fn add(a: Expr, b: Expr) -> Expr {
        Expr::Arith(ArithOp::Add, Box::new(a), Box::new(b))
    }
    pub fn sub(a: Expr, b: Expr) -> Expr {
        Expr::Arith(ArithOp::Sub, Box::new(a), Box::new(b))
    }
    pub fn mul(a: Expr, b: Expr) -> Expr {
        Expr::Arith(ArithOp::Mul, Box::new(a), Box::new(b))
    }
    pub fn div(a: Expr, b: Expr) -> Expr {
        Expr::Arith(ArithOp::Div, Box::new(a), Box::new(b))
    }
    pub fn and(es: Vec<Expr>) -> Expr {
        Expr::And(es)
    }
    pub fn or(es: Vec<Expr>) -> Expr {
        Expr::Or(es)
    }

    /// Output type of this expression over inputs of `schema`.
    pub fn dtype(&self, schema: &Schema) -> Result<DataType> {
        Ok(match self {
            Expr::Col(i) => {
                if *i >= schema.len() {
                    return Err(VhError::Exec(format!("column {i} out of range")));
                }
                schema.dtype(*i)
            }
            Expr::Lit(v) => v.data_type().unwrap_or(DataType::I64),
            Expr::Cmp(..)
            | Expr::And(_)
            | Expr::Or(_)
            | Expr::Not(_)
            | Expr::Between(..)
            | Expr::InList(..)
            | Expr::Like(..)
            | Expr::NotLike(..) => DataType::I32,
            Expr::Arith(op, a, b) => {
                let (ta, tb) = (a.dtype(schema)?, b.dtype(schema)?);
                arith_dtype(*op, ta, tb)
            }
            Expr::Substr(..) => DataType::Str,
            Expr::Case(arms, else_e) => arms
                .first()
                .map(|(_, v)| v.dtype(schema))
                .unwrap_or_else(|| else_e.dtype(schema))?,
            Expr::ExtractYear(_) => DataType::I32,
        })
    }

    /// Evaluate over a batch, producing one value per input row.
    pub fn eval(&self, b: &Batch) -> Result<(ColumnData, DataType)> {
        match self {
            Expr::Col(i) => Ok((b.column(*i).clone(), b.schema.dtype(*i))),
            Expr::Lit(v) => {
                let dt = v.data_type().unwrap_or(DataType::I64);
                let mut col = ColumnData::new(dt);
                for _ in 0..b.len() {
                    col.push_value(v)?;
                }
                Ok((col, dt))
            }
            Expr::Cmp(op, a, rhs) => {
                let mask = cmp_mask(*op, a, rhs, b)?;
                Ok((mask_to_col(&mask), DataType::I32))
            }
            Expr::And(es) => {
                let mut mask = vec![true; b.len()];
                for e in es {
                    let m = e.eval_mask(b)?;
                    for (x, y) in mask.iter_mut().zip(m) {
                        *x &= y;
                    }
                }
                Ok((mask_to_col(&mask), DataType::I32))
            }
            Expr::Or(es) => {
                let mut mask = vec![false; b.len()];
                for e in es {
                    let m = e.eval_mask(b)?;
                    for (x, y) in mask.iter_mut().zip(m) {
                        *x |= y;
                    }
                }
                Ok((mask_to_col(&mask), DataType::I32))
            }
            Expr::Not(e) => {
                let m = e.eval_mask(b)?;
                Ok((
                    mask_to_col(&m.iter().map(|x| !x).collect::<Vec<_>>()),
                    DataType::I32,
                ))
            }
            Expr::Between(e, lo, hi) => {
                let lo_mask = cmp_mask(CmpOp::Ge, e, lo, b)?;
                let hi_mask = cmp_mask(CmpOp::Le, e, hi, b)?;
                let m: Vec<bool> = lo_mask.iter().zip(hi_mask).map(|(a, c)| *a && c).collect();
                Ok((mask_to_col(&m), DataType::I32))
            }
            Expr::InList(e, list) => {
                let (col, dt) = e.eval(b)?;
                let m = in_list_mask(&col, dt, list)?;
                Ok((mask_to_col(&m), DataType::I32))
            }
            Expr::Like(e, pat) => {
                let (col, _) = e.eval(b)?;
                let strs = col
                    .as_str()
                    .ok_or_else(|| VhError::Exec("LIKE over non-string".into()))?;
                let m: Vec<bool> = strs.iter().map(|s| like_match(s, pat)).collect();
                Ok((mask_to_col(&m), DataType::I32))
            }
            Expr::NotLike(e, pat) => {
                let (col, _) = e.eval(b)?;
                let strs = col
                    .as_str()
                    .ok_or_else(|| VhError::Exec("LIKE over non-string".into()))?;
                let m: Vec<bool> = strs.iter().map(|s| !like_match(s, pat)).collect();
                Ok((mask_to_col(&m), DataType::I32))
            }
            Expr::Substr(e, start, len) => {
                let (col, _) = e.eval(b)?;
                let strs = col
                    .as_str()
                    .ok_or_else(|| VhError::Exec("SUBSTR over non-string".into()))?;
                let out: Vec<String> = strs
                    .iter()
                    .map(|s| {
                        let from = (start - 1).min(s.len());
                        let to = (from + len).min(s.len());
                        s[from..to].to_string()
                    })
                    .collect();
                Ok((ColumnData::Str(out), DataType::Str))
            }
            Expr::Arith(op, a, rhs) => arith_eval(*op, a, rhs, b),
            Expr::Case(arms, else_e) => {
                let dt = self.dtype(&b.schema)?;
                let mut decided: Vec<bool> = vec![false; b.len()];
                let mut out: Vec<Value> = vec![Value::Null; b.len()];
                for (cond, val) in arms {
                    let mask = cond.eval_mask(b)?;
                    let (vcol, vdt) = val.eval(b)?;
                    for i in 0..b.len() {
                        if !decided[i] && mask[i] {
                            decided[i] = true;
                            out[i] = vcol.value_at(i, vdt);
                        }
                    }
                }
                let (ecol, edt) = else_e.eval(b)?;
                for i in 0..b.len() {
                    if !decided[i] {
                        out[i] = ecol.value_at(i, edt);
                    }
                }
                let mut col = ColumnData::new(dt);
                for v in &out {
                    col.push_value(v)?;
                }
                Ok((col, dt))
            }
            Expr::ExtractYear(e) => {
                let (col, dt) = e.eval(b)?;
                if dt != DataType::Date {
                    return Err(VhError::Exec("EXTRACT(YEAR) over non-date".into()));
                }
                let days = col
                    .as_i32()
                    .ok_or_else(|| VhError::Exec("date layout".into()))?;
                let out: Vec<i32> = days.iter().map(|&d| date::from_days(d).0).collect();
                Ok((ColumnData::I32(out), DataType::I32))
            }
        }
    }

    /// Evaluate as a boolean mask (selection predicate).
    pub fn eval_mask(&self, b: &Batch) -> Result<Vec<bool>> {
        match self {
            // Fast paths that avoid materializing a 0/1 column.
            Expr::Cmp(op, a, rhs) => cmp_mask(*op, a, rhs, b),
            Expr::And(es) => {
                let mut mask = vec![true; b.len()];
                for e in es {
                    let m = e.eval_mask(b)?;
                    for (x, y) in mask.iter_mut().zip(m) {
                        *x &= y;
                    }
                }
                Ok(mask)
            }
            Expr::Or(es) => {
                let mut mask = vec![false; b.len()];
                for e in es {
                    let m = e.eval_mask(b)?;
                    for (x, y) in mask.iter_mut().zip(m) {
                        *x |= y;
                    }
                }
                Ok(mask)
            }
            Expr::Not(e) => Ok(e.eval_mask(b)?.into_iter().map(|x| !x).collect()),
            _ => {
                let (col, _) = self.eval(b)?;
                match col {
                    ColumnData::I32(v) => Ok(v.into_iter().map(|x| x != 0).collect()),
                    ColumnData::I64(v) => Ok(v.into_iter().map(|x| x != 0).collect()),
                    _ => Err(VhError::Exec(
                        "predicate did not evaluate to boolean".into(),
                    )),
                }
            }
        }
    }
}

fn mask_to_col(mask: &[bool]) -> ColumnData {
    ColumnData::I32(mask.iter().map(|&b| b as i32).collect())
}

/// SQL LIKE: `%` = any run, `_` = any single byte.
pub fn like_match(s: &str, pat: &str) -> bool {
    fn inner(s: &[u8], p: &[u8]) -> bool {
        match p.first() {
            None => s.is_empty(),
            Some(b'%') => {
                // Try every split point (including empty).
                (0..=s.len()).any(|k| inner(&s[k..], &p[1..]))
            }
            Some(b'_') => !s.is_empty() && inner(&s[1..], &p[1..]),
            Some(&c) => s.first() == Some(&c) && inner(&s[1..], &p[1..]),
        }
    }
    inner(s.as_bytes(), pat.as_bytes())
}

// --- numeric plumbing -------------------------------------------------------

/// Uniform numeric view of a column: raw i64 with a logical type, or f64.
enum NumVec {
    Int(Vec<i64>, DataType),
    Float(Vec<f64>),
}

fn to_numeric(col: &ColumnData, dt: DataType) -> Result<NumVec> {
    Ok(match col {
        ColumnData::I32(v) => NumVec::Int(v.iter().map(|&x| x as i64).collect(), dt),
        ColumnData::I64(v) => NumVec::Int(v.clone(), dt),
        ColumnData::F64(v) => NumVec::Float(v.clone()),
        ColumnData::Str(_) => return Err(VhError::Exec("numeric op over string".into())),
    })
}

fn scale_of(dt: DataType) -> u8 {
    match dt {
        DataType::Decimal { scale } => scale,
        _ => 0,
    }
}

/// Align two int vectors to a common decimal scale; returns (a, b, scale).
fn align_scales(
    mut a: Vec<i64>,
    ta: DataType,
    mut b: Vec<i64>,
    tb: DataType,
) -> (Vec<i64>, Vec<i64>, u8) {
    let (sa, sb) = (scale_of(ta), scale_of(tb));
    let target = sa.max(sb);
    if sa < target {
        let f = 10i64.pow((target - sa) as u32);
        for x in &mut a {
            *x *= f;
        }
    }
    if sb < target {
        let f = 10i64.pow((target - sb) as u32);
        for x in &mut b {
            *x *= f;
        }
    }
    (a, b, target)
}

fn arith_dtype(op: ArithOp, ta: DataType, tb: DataType) -> DataType {
    use DataType::*;
    if ta == F64 || tb == F64 || op == ArithOp::Div {
        return F64;
    }
    let (sa, sb) = (scale_of(ta), scale_of(tb));
    match op {
        ArithOp::Add | ArithOp::Sub => {
            if sa > 0 || sb > 0 {
                Decimal { scale: sa.max(sb) }
            } else if ta == Date && (tb == I32 || tb == I64) {
                Date
            } else {
                I64
            }
        }
        ArithOp::Mul => {
            if sa > 0 || sb > 0 {
                Decimal {
                    scale: (sa + sb).min(MAX_SCALE),
                }
            } else {
                I64
            }
        }
        ArithOp::Div => F64,
    }
}

fn arith_eval(
    op: ArithOp,
    a: &Expr,
    b_expr: &Expr,
    batch: &Batch,
) -> Result<(ColumnData, DataType)> {
    let (ca, ta) = a.eval(batch)?;
    let (cb, tb) = b_expr.eval(batch)?;
    let na = to_numeric(&ca, ta)?;
    let nb = to_numeric(&cb, tb)?;
    let out_dt = arith_dtype(op, ta, tb);
    match (na, nb) {
        (NumVec::Int(va, ta), NumVec::Int(vb, tb)) if out_dt != DataType::F64 => match op {
            ArithOp::Add | ArithOp::Sub => {
                let (va, vb, scale) = align_scales(va, ta, vb, tb);
                let out: Vec<i64> = if op == ArithOp::Add {
                    va.iter().zip(&vb).map(|(x, y)| x + y).collect()
                } else {
                    va.iter().zip(&vb).map(|(x, y)| x - y).collect()
                };
                let dt = if scale > 0 {
                    DataType::Decimal { scale }
                } else {
                    out_dt
                };
                if dt == DataType::Date {
                    Ok((ColumnData::I32(out.iter().map(|&x| x as i32).collect()), dt))
                } else {
                    Ok((ColumnData::I64(out), dt))
                }
            }
            ArithOp::Mul => {
                let (sa, sb) = (scale_of(ta), scale_of(tb));
                let result_scale = (sa + sb).min(MAX_SCALE);
                let shrink = 10i128.pow((sa + sb - result_scale) as u32);
                let out: Vec<i64> = va
                    .iter()
                    .zip(&vb)
                    .map(|(&x, &y)| ((x as i128 * y as i128) / shrink) as i64)
                    .collect();
                let dt = if result_scale > 0 {
                    DataType::Decimal {
                        scale: result_scale,
                    }
                } else {
                    DataType::I64
                };
                Ok((ColumnData::I64(out), dt))
            }
            ArithOp::Div => unreachable!("division always yields F64"),
        },
        (na, nb) => {
            // Float path (including every division).
            let fa = num_to_f64(na);
            let fb = num_to_f64(nb);
            let out: Vec<f64> = match op {
                ArithOp::Add => fa.iter().zip(&fb).map(|(x, y)| x + y).collect(),
                ArithOp::Sub => fa.iter().zip(&fb).map(|(x, y)| x - y).collect(),
                ArithOp::Mul => fa.iter().zip(&fb).map(|(x, y)| x * y).collect(),
                ArithOp::Div => fa
                    .iter()
                    .zip(&fb)
                    .map(|(x, y)| if *y == 0.0 { 0.0 } else { x / y })
                    .collect(),
            };
            Ok((ColumnData::F64(out), DataType::F64))
        }
    }
}

fn num_to_f64(n: NumVec) -> Vec<f64> {
    match n {
        NumVec::Int(v, dt) => {
            let s = 10f64.powi(scale_of(dt) as i32);
            v.into_iter().map(|x| x as f64 / s).collect()
        }
        NumVec::Float(v) => v,
    }
}

fn cmp_mask(op: CmpOp, a: &Expr, b_expr: &Expr, batch: &Batch) -> Result<Vec<bool>> {
    let (ca, ta) = a.eval(batch)?;
    let (cb, tb) = b_expr.eval(batch)?;
    // String comparison path.
    if let (Some(sa), Some(sb)) = (ca.as_str(), cb.as_str()) {
        return Ok(sa
            .iter()
            .zip(sb)
            .map(|(x, y)| apply_ord(op, x.cmp(y)))
            .collect());
    }
    let na = to_numeric(&ca, ta)?;
    let nb = to_numeric(&cb, tb)?;
    match (na, nb) {
        (NumVec::Int(va, ta), NumVec::Int(vb, tb)) => {
            let (va, vb, _) = align_scales(va, ta, vb, tb);
            Ok(va
                .iter()
                .zip(&vb)
                .map(|(x, y)| apply_ord(op, x.cmp(y)))
                .collect())
        }
        (na, nb) => {
            let fa = num_to_f64(na);
            let fb = num_to_f64(nb);
            Ok(fa
                .iter()
                .zip(&fb)
                .map(|(x, y)| x.partial_cmp(y).map(|o| apply_ord(op, o)).unwrap_or(false))
                .collect())
        }
    }
}

fn apply_ord(op: CmpOp, ord: std::cmp::Ordering) -> bool {
    use std::cmp::Ordering::*;
    match op {
        CmpOp::Eq => ord == Equal,
        CmpOp::Ne => ord != Equal,
        CmpOp::Lt => ord == Less,
        CmpOp::Le => ord != Greater,
        CmpOp::Gt => ord == Greater,
        CmpOp::Ge => ord != Less,
    }
}

fn in_list_mask(col: &ColumnData, dt: DataType, list: &[Value]) -> Result<Vec<bool>> {
    match col {
        ColumnData::Str(v) => {
            let set: std::collections::HashSet<&str> =
                list.iter().filter_map(|v| v.as_str()).collect();
            Ok(v.iter().map(|s| set.contains(s.as_str())).collect())
        }
        _ => {
            let n = to_numeric(col, dt)?;
            match n {
                NumVec::Int(v, dt) => {
                    let scale = scale_of(dt);
                    let set: std::collections::HashSet<i64> = list
                        .iter()
                        .filter_map(|x| match x {
                            Value::Decimal(raw, s) => {
                                Some(raw * 10i64.pow(scale.saturating_sub(*s) as u32))
                            }
                            other => other.as_i64().map(|i| i * 10i64.pow(scale as u32)),
                        })
                        .collect();
                    Ok(v.iter().map(|x| set.contains(x)).collect())
                }
                NumVec::Float(v) => {
                    let items: Vec<f64> = list.iter().filter_map(|x| x.as_f64()).collect();
                    Ok(v.iter().map(|x| items.iter().any(|y| y == x)).collect())
                }
            }
        }
    }
}

/// Helper: build a schema-typed literal decimal.
pub fn dec_lit(text: &str, scale: u8) -> Expr {
    Expr::Lit(vectorh_common::types::dec(text, scale))
}

/// Helper: date literal from `YYYY-MM-DD`.
pub fn date_lit(s: &str) -> Expr {
    Expr::Lit(Value::Date(date::parse(s).expect("valid date literal")))
}

/// Evaluate an expression against a one-row batch of the given schema —
/// convenience for constant folding in the planner.
pub fn eval_scalar(e: &Expr, schema: &Arc<Schema>) -> Result<Value> {
    let cols = schema
        .fields()
        .iter()
        .map(|f| {
            let mut c = ColumnData::new(f.dtype);
            let v = match f.dtype {
                DataType::Str => Value::Str(String::new()),
                DataType::F64 => Value::F64(0.0),
                DataType::Date => Value::Date(0),
                DataType::Decimal { scale } => Value::Decimal(0, scale),
                _ => Value::I64(0),
            };
            c.push_value(&v).expect("zero value");
            c
        })
        .collect();
    let b = Batch::new(schema.clone(), cols)?;
    let (col, dt) = e.eval(&b)?;
    Ok(col.value_at(0, dt))
}

#[cfg(test)]
mod tests {
    use super::*;
    use vectorh_common::types::dec;

    fn batch() -> Batch {
        let schema = Arc::new(Schema::of(&[
            ("qty", DataType::I64),
            ("price", DataType::Decimal { scale: 2 }),
            ("disc", DataType::Decimal { scale: 2 }),
            ("ship", DataType::Date),
            ("name", DataType::Str),
        ]));
        Batch::new(
            schema,
            vec![
                ColumnData::I64(vec![1, 2, 3, 4]),
                ColumnData::I64(vec![1000, 2000, 3000, 4000]), // 10.00 .. 40.00
                ColumnData::I64(vec![5, 10, 0, 7]),            // 0.05 0.10 0.00 0.07
                ColumnData::I32(vec![
                    date::parse("1994-01-15").unwrap(),
                    date::parse("1995-06-01").unwrap(),
                    date::parse("1996-12-31").unwrap(),
                    date::parse("1994-03-01").unwrap(),
                ]),
                ColumnData::Str(vec![
                    "green metal box".into(),
                    "red plastic cup".into(),
                    "green shiny thing".into(),
                    "blue box".into(),
                ]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn column_and_literal() {
        let b = batch();
        let (col, dt) = Expr::col(0).eval(&b).unwrap();
        assert_eq!(col.as_i64().unwrap(), &[1, 2, 3, 4]);
        assert_eq!(dt, DataType::I64);
        let (col, dt) = Expr::lit(Value::I64(9)).eval(&b).unwrap();
        assert_eq!(col.as_i64().unwrap(), &[9, 9, 9, 9]);
        assert_eq!(dt, DataType::I64);
    }

    #[test]
    fn comparisons_and_masks() {
        let b = batch();
        let m = Expr::gt(Expr::col(0), Expr::lit(Value::I64(2)))
            .eval_mask(&b)
            .unwrap();
        assert_eq!(m, vec![false, false, true, true]);
        let m = Expr::and(vec![
            Expr::ge(Expr::col(0), Expr::lit(Value::I64(2))),
            Expr::le(Expr::col(0), Expr::lit(Value::I64(3))),
        ])
        .eval_mask(&b)
        .unwrap();
        assert_eq!(m, vec![false, true, true, false]);
        let m = Expr::Not(Box::new(Expr::eq(Expr::col(0), Expr::lit(Value::I64(1)))))
            .eval_mask(&b)
            .unwrap();
        assert_eq!(m, vec![false, true, true, true]);
    }

    #[test]
    fn decimal_scale_alignment_in_compare() {
        let b = batch();
        // disc > 0.06 — literal same scale
        let m = Expr::gt(Expr::col(2), Expr::lit(dec("0.06", 2)))
            .eval_mask(&b)
            .unwrap();
        assert_eq!(m, vec![false, true, false, true]);
        // price < 25 — integer literal must scale up
        let m = Expr::lt(Expr::col(1), Expr::lit(Value::I64(25)))
            .eval_mask(&b)
            .unwrap();
        assert_eq!(m, vec![true, true, false, false]);
    }

    #[test]
    fn decimal_arithmetic_is_exact() {
        let b = batch();
        // price * (1 - disc): the Q1 money expression.
        let e = Expr::mul(
            Expr::col(1),
            Expr::sub(Expr::lit(dec("1", 2)), Expr::col(2)),
        );
        let (col, dt) = e.eval(&b).unwrap();
        assert_eq!(dt, DataType::Decimal { scale: 4 });
        // 10.00 * 0.95 = 9.5000 → raw 95000 at scale 4
        assert_eq!(col.as_i64().unwrap()[0], 95_000);
        assert_eq!(col.as_i64().unwrap()[2], 300_000); // 30.00 * 1.00
    }

    #[test]
    fn division_goes_float() {
        let b = batch();
        let (col, dt) = Expr::div(Expr::col(1), Expr::lit(Value::I64(2)))
            .eval(&b)
            .unwrap();
        assert_eq!(dt, DataType::F64);
        assert_eq!(col.as_f64().unwrap()[0], 5.0);
    }

    #[test]
    fn date_compare_and_between() {
        let b = batch();
        let m = Expr::lt(Expr::col(3), date_lit("1995-01-01"))
            .eval_mask(&b)
            .unwrap();
        assert_eq!(m, vec![true, false, false, true]);
        let m = Expr::Between(
            Box::new(Expr::col(3)),
            Box::new(date_lit("1995-01-01")),
            Box::new(date_lit("1996-12-31")),
        )
        .eval_mask(&b)
        .unwrap();
        assert_eq!(m, vec![false, true, true, false]);
    }

    #[test]
    fn extract_year() {
        let b = batch();
        let (col, dt) = Expr::ExtractYear(Box::new(Expr::col(3))).eval(&b).unwrap();
        assert_eq!(dt, DataType::I32);
        assert_eq!(col.as_i32().unwrap(), &[1994, 1995, 1996, 1994]);
    }

    #[test]
    fn like_and_substr() {
        let b = batch();
        let m = Expr::Like(Box::new(Expr::col(4)), "green%".into())
            .eval_mask(&b)
            .unwrap();
        assert_eq!(m, vec![true, false, true, false]);
        let m = Expr::Like(Box::new(Expr::col(4)), "%box".into())
            .eval_mask(&b)
            .unwrap();
        assert_eq!(m, vec![true, false, false, true]);
        // 'e' followed later by 'c': only "red plastic cup" qualifies.
        let m = Expr::Like(Box::new(Expr::col(4)), "%e%c%".into())
            .eval_mask(&b)
            .unwrap();
        assert_eq!(m, vec![false, true, false, false]);
        let (col, _) = Expr::Substr(Box::new(Expr::col(4)), 1, 3).eval(&b).unwrap();
        assert_eq!(col.as_str().unwrap()[0], "gre");
        let m = Expr::NotLike(Box::new(Expr::col(4)), "%green%".into())
            .eval_mask(&b)
            .unwrap();
        assert_eq!(m, vec![false, true, false, true]);
    }

    #[test]
    fn like_edge_cases() {
        assert!(like_match("", ""));
        assert!(like_match("", "%"));
        assert!(!like_match("", "_"));
        assert!(like_match("abc", "a_c"));
        assert!(like_match("abc", "%%c"));
        assert!(!like_match("abc", "a_b"));
        assert!(like_match("promo burnished", "promo%"));
    }

    #[test]
    fn in_list_over_types() {
        let b = batch();
        let m = Expr::InList(Box::new(Expr::col(0)), vec![Value::I64(1), Value::I64(4)])
            .eval_mask(&b)
            .unwrap();
        assert_eq!(m, vec![true, false, false, true]);
        let m = Expr::InList(Box::new(Expr::col(4)), vec![Value::Str("blue box".into())])
            .eval_mask(&b)
            .unwrap();
        assert_eq!(m, vec![false, false, false, true]);
    }

    #[test]
    fn case_expression() {
        let b = batch();
        // CASE WHEN qty >= 3 THEN price ELSE 0 END
        let e = Expr::Case(
            vec![(
                Expr::ge(Expr::col(0), Expr::lit(Value::I64(3))),
                Expr::col(1),
            )],
            Box::new(Expr::lit(dec("0", 2))),
        );
        let (col, dt) = e.eval(&b).unwrap();
        assert_eq!(dt, DataType::Decimal { scale: 2 });
        assert_eq!(col.as_i64().unwrap(), &[0, 0, 3000, 4000]);
    }

    #[test]
    fn eval_scalar_folds_constants() {
        let schema = Arc::new(Schema::of(&[("x", DataType::I64)]));
        let v = eval_scalar(
            &Expr::mul(Expr::lit(dec("1.10", 2)), Expr::lit(dec("2.00", 2))),
            &schema,
        )
        .unwrap();
        assert_eq!(v, Value::Decimal(22_000, 4)); // 2.2000
    }

    #[test]
    fn dtype_inference() {
        let schema = Schema::of(&[
            ("q", DataType::I64),
            ("p", DataType::Decimal { scale: 2 }),
            ("d", DataType::Date),
        ]);
        assert_eq!(
            Expr::mul(Expr::col(1), Expr::col(1))
                .dtype(&schema)
                .unwrap(),
            DataType::Decimal { scale: 4 }
        );
        assert_eq!(
            Expr::add(Expr::col(0), Expr::col(0))
                .dtype(&schema)
                .unwrap(),
            DataType::I64
        );
        assert_eq!(
            Expr::div(Expr::col(0), Expr::col(0))
                .dtype(&schema)
                .unwrap(),
            DataType::F64
        );
        assert_eq!(
            Expr::eq(Expr::col(0), Expr::col(0)).dtype(&schema).unwrap(),
            DataType::I32
        );
        assert!(Expr::col(9).dtype(&schema).is_err());
    }
}
