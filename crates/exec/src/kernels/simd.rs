//! SIMD arms for the execution-side hot loops: hash folding and
//! selection-vector compaction.
//!
//! Same dispatch policy as the decompression kernels
//! (`vectorh_common::simd`): an AVX2 arm behind runtime detection, a
//! portable unrolled arm, and the original scalar loops kept bit-identical
//! as the oracle. The hash kernels implement the engine's
//! `hash_u64`/`hash_combine` mix on four 64-bit lanes — AVX2 has no 64×64
//! multiply, so it is synthesized from three 32×32→64 products
//! (`lo·lo + ((lo·hi + hi·lo) << 32)`), which still beats four scalar
//! multiply chains because the three xorshift-multiply rounds per value
//! run on independent lanes.

use vectorh_common::simd::{simd_mode, SimdMode};
use vectorh_common::util::{hash_combine, hash_u64};

/// `acc[i] = hash_combine(acc[i], hash_u64(vals[i] as u64))` for i64 keys.
pub fn fold_hash_i64(vals: &[i64], acc: &mut [u64]) {
    debug_assert_eq!(vals.len(), acc.len());
    #[cfg(all(target_arch = "x86_64", not(vectorh_force_swar)))]
    {
        if simd_mode() == SimdMode::Avx2 {
            // SAFETY: mode Avx2 implies runtime detection succeeded.
            unsafe { avx2::fold_i64(vals, acc) };
            return;
        }
    }
    fold_hash_words_portable(vals.iter().map(|&x| x as u64), acc);
}

/// `acc[i] = hash_combine(acc[i], hash_u64(vals[i] as i64 as u64))` —
/// i32 keys are sign-extended so they hash identically to i64 keys.
pub fn fold_hash_i32(vals: &[i32], acc: &mut [u64]) {
    debug_assert_eq!(vals.len(), acc.len());
    #[cfg(all(target_arch = "x86_64", not(vectorh_force_swar)))]
    {
        if simd_mode() == SimdMode::Avx2 {
            // SAFETY: mode Avx2 implies runtime detection succeeded.
            unsafe { avx2::fold_i32(vals, acc) };
            return;
        }
    }
    fold_hash_words_portable(vals.iter().map(|&x| x as i64 as u64), acc);
}

/// `acc[i] = hash_combine(acc[i], hash_u64(vals[i].to_bits()))` for f64 keys.
pub fn fold_hash_f64(vals: &[f64], acc: &mut [u64]) {
    debug_assert_eq!(vals.len(), acc.len());
    #[cfg(all(target_arch = "x86_64", not(vectorh_force_swar)))]
    {
        if simd_mode() == SimdMode::Avx2 {
            // SAFETY: mode Avx2 implies runtime detection succeeded.
            unsafe { avx2::fold_f64(vals, acc) };
            return;
        }
    }
    fold_hash_words_portable(vals.iter().map(|&x| x.to_bits()), acc);
}

/// Portable arm: four independent accumulator lanes per unrolled step so
/// the three multiply rounds of consecutive rows overlap instead of
/// serializing behind one accumulator. In `Scalar` mode the plain loop
/// runs instead (the oracle the unrolled arm is tested against).
fn fold_hash_words_portable(words: impl Iterator<Item = u64>, acc: &mut [u64]) {
    if simd_mode() == SimdMode::Scalar {
        for (h, w) in acc.iter_mut().zip(words) {
            *h = hash_combine(*h, hash_u64(w));
        }
        return;
    }
    let mut words = words;
    let mut i = 0usize;
    let n = acc.len();
    while i + 4 <= n {
        // Four independent chains; sunk back to memory each step.
        let (w0, w1, w2, w3) = (
            words.next().expect("len checked"),
            words.next().expect("len checked"),
            words.next().expect("len checked"),
            words.next().expect("len checked"),
        );
        let h0 = hash_combine(acc[i], hash_u64(w0));
        let h1 = hash_combine(acc[i + 1], hash_u64(w1));
        let h2 = hash_combine(acc[i + 2], hash_u64(w2));
        let h3 = hash_combine(acc[i + 3], hash_u64(w3));
        acc[i] = h0;
        acc[i + 1] = h1;
        acc[i + 2] = h2;
        acc[i + 3] = h3;
        i += 4;
    }
    for h in acc[i..].iter_mut() {
        *h = hash_combine(*h, hash_u64(words.next().expect("len checked")));
    }
}

/// Compact a boolean mask into a selection vector of row indices:
/// `out = [i for i, m in mask if m]`, as `u32`. Clears and refills `out`.
///
/// AVX2 compares 32 mask bytes at a time into a movemask and peels set
/// bits; the portable arm writes every candidate index unconditionally and
/// bumps the cursor by the mask byte (branchless, no mispredicts on random
/// selectivity); the scalar oracle is the obvious branchy loop.
pub fn compact_mask(mask: &[bool], out: &mut Vec<u32>) {
    out.clear();
    out.resize(mask.len(), 0);
    let k = match simd_mode() {
        #[cfg(all(target_arch = "x86_64", not(vectorh_force_swar)))]
        // SAFETY: mode Avx2 implies runtime detection succeeded.
        SimdMode::Avx2 => unsafe { avx2::compact(mask, out) },
        SimdMode::Scalar => {
            let mut k = 0usize;
            for (i, &m) in mask.iter().enumerate() {
                if m {
                    out[k] = i as u32;
                    k += 1;
                }
            }
            k
        }
        _ => compact_branchless(mask, out, 0, 0),
    };
    out.truncate(k);
}

/// Branchless compaction of `mask[start..]` writing from `out[k]`;
/// returns the updated `k`. `out` must have room for every candidate.
fn compact_branchless(mask: &[bool], out: &mut [u32], start: usize, mut k: usize) -> usize {
    for (i, &m) in mask.iter().enumerate().skip(start) {
        out[k] = i as u32;
        k += m as usize;
    }
    k
}

#[cfg(all(target_arch = "x86_64", not(vectorh_force_swar)))]
mod avx2 {
    use std::arch::x86_64::*;

    const K1: i64 = 0xFF51_AFD7_ED55_8CCDu64 as i64;
    const K2: i64 = 0xC4CE_B9FE_1A85_EC53u64 as i64;
    const M: i64 = 0x9E37_79B9_7F4A_7C15u64 as i64;

    /// Full 64×64→64 wrapping multiply from 32×32→64 products.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn mul64(a: __m256i, b: __m256i) -> __m256i {
        let lo = _mm256_mul_epu32(a, b);
        let cross = _mm256_add_epi64(
            _mm256_mul_epu32(_mm256_srli_epi64(a, 32), b),
            _mm256_mul_epu32(a, _mm256_srli_epi64(b, 32)),
        );
        _mm256_add_epi64(lo, _mm256_slli_epi64(cross, 32))
    }

    /// Four-lane `vectorh_common::util::hash_u64`.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn hash4(h: __m256i) -> __m256i {
        let k1 = _mm256_set1_epi64x(K1);
        let k2 = _mm256_set1_epi64x(K2);
        let h = _mm256_xor_si256(h, _mm256_srli_epi64(h, 33));
        let h = mul64(h, k1);
        let h = _mm256_xor_si256(h, _mm256_srli_epi64(h, 33));
        let h = mul64(h, k2);
        _mm256_xor_si256(h, _mm256_srli_epi64(h, 33))
    }

    /// Four-lane `hash_combine(a, b)`.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn combine4(a: __m256i, b: __m256i) -> __m256i {
        let rot = _mm256_or_si256(_mm256_slli_epi64(b, 31), _mm256_srli_epi64(b, 33));
        hash4(_mm256_xor_si256(a, mul64(rot, _mm256_set1_epi64x(M))))
    }

    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn fold_words(acc: &mut [u64], n: usize, mut load: impl FnMut(usize) -> __m256i) {
        let chunks = n / 4;
        for c in 0..chunks {
            let w = load(c * 4);
            let p = acc.as_mut_ptr().add(c * 4) as *mut __m256i;
            let a = _mm256_loadu_si256(p);
            _mm256_storeu_si256(p, combine4(a, hash4(w)));
        }
    }

    /// # Safety: AVX2 available; `vals.len() == acc.len()`.
    #[target_feature(enable = "avx2")]
    pub unsafe fn fold_i64(vals: &[i64], acc: &mut [u64]) {
        let n = vals.len();
        fold_words(acc, n, |i| {
            _mm256_loadu_si256(vals.as_ptr().add(i) as *const __m256i)
        });
        for (h, &x) in acc[n - n % 4..].iter_mut().zip(&vals[n - n % 4..]) {
            *h = super::hash_combine(*h, super::hash_u64(x as u64));
        }
    }

    /// # Safety: AVX2 available; `vals.len() == acc.len()`.
    #[target_feature(enable = "avx2")]
    pub unsafe fn fold_i32(vals: &[i32], acc: &mut [u64]) {
        let n = vals.len();
        fold_words(acc, n, |i| {
            // Sign-extend so i32 keys hash identically to i64 keys.
            _mm256_cvtepi32_epi64(_mm_loadu_si128(vals.as_ptr().add(i) as *const __m128i))
        });
        for (h, &x) in acc[n - n % 4..].iter_mut().zip(&vals[n - n % 4..]) {
            *h = super::hash_combine(*h, super::hash_u64(x as i64 as u64));
        }
    }

    /// # Safety: AVX2 available; `vals.len() == acc.len()`.
    #[target_feature(enable = "avx2")]
    pub unsafe fn fold_f64(vals: &[f64], acc: &mut [u64]) {
        let n = vals.len();
        fold_words(acc, n, |i| {
            // A raw integer load of f64 memory is exactly `to_bits`.
            _mm256_loadu_si256(vals.as_ptr().add(i) as *const __m256i)
        });
        for (h, &x) in acc[n - n % 4..].iter_mut().zip(&vals[n - n % 4..]) {
            *h = super::hash_combine(*h, super::hash_u64(x.to_bits()));
        }
    }

    /// Movemask-and-peel compaction; returns the number of indices written.
    ///
    /// # Safety: AVX2 available; `out.len() >= mask.len()`.
    #[target_feature(enable = "avx2")]
    pub unsafe fn compact(mask: &[bool], out: &mut [u32]) -> usize {
        let zero = _mm256_setzero_si256();
        let n = mask.len();
        let chunks = n / 32;
        let mut k = 0usize;
        for c in 0..chunks {
            // `bool` is guaranteed 0x00/0x01 in memory.
            let v = _mm256_loadu_si256(mask.as_ptr().add(c * 32) as *const __m256i);
            let mut m = _mm256_movemask_epi8(_mm256_cmpgt_epi8(v, zero)) as u32;
            let base = (c * 32) as u32;
            while m != 0 {
                out[k] = base + m.trailing_zeros();
                k += 1;
                m &= m - 1;
            }
        }
        super::compact_branchless(mask, out, chunks * 32, k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vectorh_common::rng::SplitMix64;
    use vectorh_common::simd::force_mode;

    fn scalar_fold_ref(words: &[u64], acc0: &[u64]) -> Vec<u64> {
        acc0.iter()
            .zip(words)
            .map(|(&a, &w)| hash_combine(a, hash_u64(w)))
            .collect()
    }

    #[test]
    fn folds_match_scalar_reference_on_all_arms() {
        let mut rng = SplitMix64::new(0xF01D);
        for n in [0usize, 1, 3, 4, 5, 7, 8, 100, 1023] {
            let i64s: Vec<i64> = (0..n).map(|_| rng.next_u64() as i64).collect();
            let i32s: Vec<i32> = (0..n).map(|_| rng.next_u64() as i32).collect();
            let f64s: Vec<f64> = (0..n).map(|_| rng.next_u64() as f64 / 3.0).collect();
            let acc0: Vec<u64> = (0..n).map(|_| rng.next_u64()).collect();
            let want_i64 =
                scalar_fold_ref(&i64s.iter().map(|&x| x as u64).collect::<Vec<_>>(), &acc0);
            let want_i32 = scalar_fold_ref(
                &i32s.iter().map(|&x| x as i64 as u64).collect::<Vec<_>>(),
                &acc0,
            );
            let want_f64 = scalar_fold_ref(
                &f64s.iter().map(|&x| x.to_bits()).collect::<Vec<_>>(),
                &acc0,
            );
            for mode in [
                vectorh_common::simd::SimdMode::Avx2,
                vectorh_common::simd::SimdMode::Swar,
                vectorh_common::simd::SimdMode::Scalar,
            ] {
                force_mode(Some(mode));
                let mut a = acc0.clone();
                fold_hash_i64(&i64s, &mut a);
                assert_eq!(a, want_i64, "i64 {mode:?} n={n}");
                let mut a = acc0.clone();
                fold_hash_i32(&i32s, &mut a);
                assert_eq!(a, want_i32, "i32 {mode:?} n={n}");
                let mut a = acc0.clone();
                fold_hash_f64(&f64s, &mut a);
                assert_eq!(a, want_f64, "f64 {mode:?} n={n}");
            }
            force_mode(None);
        }
    }

    #[test]
    fn compact_matches_reference_on_all_arms() {
        let mut rng = SplitMix64::new(0xC0DE);
        for n in [0usize, 1, 31, 32, 33, 64, 100, 1000] {
            for density in [0.0, 0.01, 0.5, 0.99, 1.0] {
                let mask: Vec<bool> = (0..n).map(|_| rng.chance(density)).collect();
                let want: Vec<u32> = mask
                    .iter()
                    .enumerate()
                    .filter(|(_, &m)| m)
                    .map(|(i, _)| i as u32)
                    .collect();
                for mode in [
                    vectorh_common::simd::SimdMode::Avx2,
                    vectorh_common::simd::SimdMode::Swar,
                    vectorh_common::simd::SimdMode::Scalar,
                ] {
                    force_mode(Some(mode));
                    let mut got = vec![9u32; 3];
                    compact_mask(&mask, &mut got);
                    assert_eq!(got, want, "{mode:?} n={n} density={density}");
                }
                force_mode(None);
            }
        }
    }
}
