//! Vectorized primitives shared by every hash consumer in the engine.
//!
//! The Vectorwise execution model (§2) gets its CPU efficiency from running
//! tight loops over primitive slices instead of interpreting one tuple at a
//! time. Before this layer existed, the engine's hash joins, hash
//! aggregation and hash-partitioning exchanges each re-implemented
//! row-at-a-time hashing with a `match` on the column type *inside* the
//! per-row loop, and the joins kept their build side in a
//! `HashMap<u64, Vec<u32>>` — one heap allocation per distinct key.
//!
//! The kernels here replace all of that:
//! * [`hash`] — column-at-a-time key hashing: one type dispatch per
//!   *column*, then a tight loop producing a `Vec<u64>` of per-row hashes.
//! * [`table`] — a flat open-addressing hash table (power-of-two bucket
//!   array + `next`-chain array, the classic Vectorwise layout) with batch
//!   insert/probe APIs that take precomputed hash vectors.
//! * [`gather`] — batch gather/scatter for materializing match results and
//!   splitting batches across exchange partitions.
//!
//! All kernels are selection-vector aware: the `*_sel` variants process only
//! the listed positions, so operators can hash or gather a filtered vector
//! without first compacting it.
//!
//! The innermost loops (hash folding, selection-vector compaction) dispatch
//! through [`simd`] to AVX2 / portable / scalar arms — see
//! `vectorh_common::simd` for the policy and DESIGN.md §9 for the layout.

pub mod gather;
pub mod hash;
pub mod simd;
pub mod table;
