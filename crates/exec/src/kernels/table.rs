//! Flat open-addressing hash table: the classic Vectorwise layout.
//!
//! The table never stores keys. It is an index over rows `0..n` held
//! elsewhere (columnar build-side data, aggregation group columns): a
//! power-of-two `buckets` array maps a hash to the head of a chain, and a
//! parallel `next` array links rows that share a bucket. Everything is a
//! plain `u32` in two flat arrays — no per-key heap allocation, no
//! rehash-on-read, and growing is a cache-friendly relink of the bucket
//! heads from the stored hash vector.
//!
//! The full 64-bit hash of every row is stored so probes can prefilter
//! chain candidates with one integer compare before the caller runs its
//! (possibly multi-column, possibly string) key equality check.
//!
//! The batch APIs take precomputed hash vectors from
//! [`super::hash::hash_columns`] — the table itself never hashes anything.

/// Sentinel row id: end of a chain / empty bucket / no match.
pub const EMPTY: u32 = u32::MAX;

const MIN_BUCKETS: usize = 16;

/// Hash index over externally-stored rows.
#[derive(Debug, Default, Clone)]
pub struct HashTable {
    /// Chain heads; length is a power of two.
    buckets: Vec<u32>,
    /// `next[r]` = next row in `r`'s chain, [`EMPTY`] terminates.
    next: Vec<u32>,
    /// Stored per-row hashes (also the source of truth for relinking).
    hashes: Vec<u64>,
}

impl HashTable {
    pub fn new() -> HashTable {
        HashTable::default()
    }

    /// Number of rows inserted.
    pub fn len(&self) -> usize {
        self.hashes.len()
    }

    pub fn is_empty(&self) -> bool {
        self.hashes.is_empty()
    }

    /// Remove all rows, keeping the allocated capacity for reuse (operators
    /// that rebuild per partition recycle one table instead of
    /// reallocating). Bucket heads are reset so probes of a cleared table
    /// see no candidates.
    pub fn clear(&mut self) {
        self.hashes.clear();
        self.next.clear();
        self.buckets.fill(EMPTY);
    }

    #[inline]
    fn bucket_of(&self, hash: u64) -> usize {
        (hash & (self.buckets.len() as u64 - 1)) as usize
    }

    /// Relink every chain head for a new bucket count (power of two).
    fn rebuild(&mut self, n_buckets: usize) {
        debug_assert!(n_buckets.is_power_of_two());
        self.buckets.clear();
        self.buckets.resize(n_buckets, EMPTY);
        for r in 0..self.hashes.len() {
            let b = self.bucket_of(self.hashes[r]);
            self.next[r] = self.buckets[b];
            self.buckets[b] = r as u32;
        }
    }

    /// Insert a batch of rows given their hash vector. Row ids are assigned
    /// sequentially from the current length; the first inserted row is 0.
    pub fn insert_batch(&mut self, hashes: &[u64]) {
        let new_len = self.hashes.len() + hashes.len();
        assert!(new_len < EMPTY as usize, "hash table row ids exceed u32");
        self.hashes.extend_from_slice(hashes);
        self.next.resize(new_len, EMPTY);
        // Keep load factor <= 1/2: buckets = next power of two >= 2n.
        let want = (new_len * 2).next_power_of_two().max(MIN_BUCKETS);
        if want > self.buckets.len() {
            self.rebuild(want);
        } else {
            for r in new_len - hashes.len()..new_len {
                let b = self.bucket_of(self.hashes[r]);
                self.next[r] = self.buckets[b];
                self.buckets[b] = r as u32;
            }
        }
    }

    /// First candidate row whose stored hash equals `hash`, or [`EMPTY`].
    #[inline]
    pub fn first_candidate(&self, hash: u64) -> u32 {
        if self.buckets.is_empty() {
            return EMPTY;
        }
        self.filter_chain(self.buckets[self.bucket_of(hash)], hash)
    }

    /// Next candidate after `row` with the same stored hash, or [`EMPTY`].
    #[inline]
    pub fn next_candidate(&self, row: u32, hash: u64) -> u32 {
        self.filter_chain(self.next[row as usize], hash)
    }

    /// Walk the chain from `row` to the next entry whose stored hash is
    /// `hash` (the one-compare prefilter before real key equality).
    #[inline]
    fn filter_chain(&self, mut row: u32, hash: u64) -> u32 {
        while row != EMPTY && self.hashes[row as usize] != hash {
            row = self.next[row as usize];
        }
        row
    }

    /// Iterate all candidate rows for `hash` (stored-hash matches only).
    pub fn candidates(&self, hash: u64) -> Candidates<'_> {
        Candidates {
            table: self,
            row: self.first_candidate(hash),
            hash,
        }
    }

    /// Batch probe: `out[j]` = first candidate for `hashes[j]` (or
    /// [`EMPTY`]). Callers walk the rest of each chain with
    /// [`next_candidate`](Self::next_candidate).
    ///
    /// Two passes, so the SIMD hash output feeds straight into a
    /// prefetch-friendly loop: pass 1 is a pure bucket-head gather (one
    /// masked index + one load per probe, no data-dependent walk — the
    /// hardware prefetcher and OoO window overlap the cache misses), pass 2
    /// resolves each head through the stored-hash prefilter chain.
    pub fn probe_batch(&self, hashes: &[u64], out: &mut Vec<u32>) {
        out.clear();
        if self.buckets.is_empty() {
            out.resize(hashes.len(), EMPTY);
            return;
        }
        out.reserve(hashes.len());
        // Pass 1: hash -> bucket index -> chain head.
        out.extend(hashes.iter().map(|&h| self.buckets[self.bucket_of(h)]));
        // Pass 2: candidate walk from each head.
        for (o, &h) in out.iter_mut().zip(hashes) {
            *o = self.filter_chain(*o, h);
        }
    }
}

/// Iterator over a probe's candidate rows (see [`HashTable::candidates`]).
pub struct Candidates<'a> {
    table: &'a HashTable,
    row: u32,
    hash: u64,
}

impl Iterator for Candidates<'_> {
    type Item = u32;

    fn next(&mut self) -> Option<u32> {
        if self.row == EMPTY {
            return None;
        }
        let r = self.row;
        self.row = self.table.next_candidate(r, self.hash);
        Some(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;
    use vectorh_common::rng::SplitMix64;
    use vectorh_common::util::hash_u64;

    #[test]
    fn empty_table_has_no_candidates() {
        let t = HashTable::new();
        assert!(t.is_empty());
        assert_eq!(t.first_candidate(42), EMPTY);
        assert_eq!(t.candidates(42).count(), 0);
    }

    #[test]
    fn duplicate_hashes_chain_up() {
        let mut t = HashTable::new();
        t.insert_batch(&[7, 9, 7, 7]);
        let got: Vec<u32> = t.candidates(7).collect();
        assert_eq!(got.len(), 3);
        assert!(got.contains(&0) && got.contains(&2) && got.contains(&3));
        assert_eq!(t.candidates(9).collect::<Vec<_>>(), vec![1]);
        assert_eq!(t.candidates(8).count(), 0);
    }

    #[test]
    fn batch_probe_matches_scalar_probe() {
        let mut t = HashTable::new();
        let hashes: Vec<u64> = (0..100).map(|i| hash_u64(i % 13)).collect();
        t.insert_batch(&hashes);
        let probes: Vec<u64> = (0..20).map(hash_u64).collect();
        let mut heads = Vec::new();
        t.probe_batch(&probes, &mut heads);
        for (j, &h) in probes.iter().enumerate() {
            assert_eq!(heads[j], t.first_candidate(h));
        }
    }

    #[test]
    fn growth_keeps_all_rows_reachable() {
        let mut t = HashTable::new();
        let mut all = Vec::new();
        // Many small batches force repeated rebuilds.
        for b in 0..50 {
            let batch: Vec<u64> = (0..37).map(|i| hash_u64(b * 37 + i)).collect();
            all.extend_from_slice(&batch);
            t.insert_batch(&batch);
        }
        assert_eq!(t.len(), all.len());
        for (r, &h) in all.iter().enumerate() {
            assert!(
                t.candidates(h).any(|c| c == r as u32),
                "row {r} lost after growth"
            );
        }
    }

    #[test]
    fn growth_exactly_at_load_factor_boundary() {
        // buckets = next_power_of_two(2n): inserting one row past n where
        // 2n is exactly a power of two forces a rebuild. Walk several such
        // boundaries (n = 8, 16, 32, ...) one row at a time and check
        // reachability right before and right after each rebuild.
        for boundary in [8usize, 16, 32, 64, 128] {
            let mut t = HashTable::new();
            let hashes: Vec<u64> = (0..boundary as u64 + 1).map(hash_u64).collect();
            t.insert_batch(&hashes[..boundary]);
            let buckets_before = (boundary * 2).next_power_of_two().max(MIN_BUCKETS);
            for (r, &h) in hashes[..boundary].iter().enumerate() {
                assert!(t.candidates(h).any(|c| c == r as u32));
            }
            // One more row crosses the load-factor line.
            t.insert_batch(&hashes[boundary..]);
            assert!(
                ((boundary + 1) * 2).next_power_of_two() > buckets_before
                    || buckets_before == MIN_BUCKETS,
                "test premise: boundary {boundary} must force growth"
            );
            for (r, &h) in hashes.iter().enumerate() {
                assert!(
                    t.candidates(h).any(|c| c == r as u32),
                    "row {r} lost crossing boundary {boundary}"
                );
            }
        }
    }

    #[test]
    fn heavy_duplicate_keys_build_one_long_chain() {
        let mut t = HashTable::new();
        const N: u32 = 10_000;
        // Every row hashes identically: the degenerate all-duplicates case.
        t.insert_batch(&vec![0xDEAD_BEEF; N as usize]);
        let mut got: Vec<u32> = t.candidates(0xDEAD_BEEF).collect();
        got.sort_unstable();
        assert_eq!(got, (0..N).collect::<Vec<u32>>());
        // Nothing else matches, even keys landing in the same bucket.
        let same_bucket = 0xDEAD_BEEF ^ (t.buckets.len() as u64);
        assert_eq!(t.candidates(same_bucket).count(), 0);
    }

    #[test]
    fn probe_after_clear_finds_nothing_then_refills() {
        let mut t = HashTable::new();
        let hashes: Vec<u64> = (0..500).map(hash_u64).collect();
        t.insert_batch(&hashes);
        assert_eq!(t.len(), 500);
        t.clear();
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
        for &h in &hashes {
            assert_eq!(t.first_candidate(h), EMPTY, "stale candidate after clear");
            assert_eq!(t.candidates(h).count(), 0);
        }
        let mut heads = Vec::new();
        t.probe_batch(&hashes, &mut heads);
        assert!(heads.iter().all(|&r| r == EMPTY));
        // Row ids restart from zero after a clear.
        t.insert_batch(&hashes[..10]);
        assert_eq!(t.first_candidate(hashes[3]), 3);
    }

    /// Property test: the flat table agrees with `std::collections::HashMap`
    /// on random workloads of interleaved batch inserts and probes.
    #[test]
    fn prop_agrees_with_std_hashmap() {
        let mut meta = SplitMix64::new(0x7AB1E);
        for _ in 0..30 {
            let seed = meta.next_u64();
            let key_space = 1 + meta.next_bounded(200);
            let mut rng = SplitMix64::new(seed);
            let mut t = HashTable::new();
            let mut model: HashMap<u64, Vec<u32>> = HashMap::new();
            let mut n_rows = 0u32;
            for _ in 0..1 + rng.next_bounded(8) {
                let batch: Vec<u64> = (0..rng.next_bounded(600))
                    .map(|_| hash_u64(rng.next_bounded(key_space)))
                    .collect();
                for &h in &batch {
                    model.entry(h).or_default().push(n_rows);
                    n_rows += 1;
                }
                t.insert_batch(&batch);
                // Probe every key in the space plus some misses.
                for k in 0..key_space + 5 {
                    let h = hash_u64(k);
                    let mut got: Vec<u32> = t.candidates(h).collect();
                    got.sort_unstable();
                    let want = model.get(&h).cloned().unwrap_or_default();
                    assert_eq!(got, want, "seed {seed} key {k}");
                }
            }
        }
    }
}
