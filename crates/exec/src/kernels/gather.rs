//! Batch gather and scatter kernels.
//!
//! Join and aggregation results are materialized by gathering matched row
//! ids out of columnar build-side data; exchange operators scatter row ids
//! into per-partition position lists. Like the hash kernels, the type
//! dispatch happens once per column and the inner loops run over primitive
//! slices.
//!
//! Row ids are `u32` throughout (the hash table's currency), which also
//! halves the index vector footprint versus `usize` positions.

use vectorh_common::{ColumnData, DataType};

use super::table::EMPTY;

/// Gather `idx` positions out of a column into a new buffer.
pub fn gather(col: &ColumnData, idx: &[u32]) -> ColumnData {
    match col {
        ColumnData::I32(v) => ColumnData::I32(idx.iter().map(|&i| v[i as usize]).collect()),
        ColumnData::I64(v) => ColumnData::I64(idx.iter().map(|&i| v[i as usize]).collect()),
        ColumnData::F64(v) => ColumnData::F64(idx.iter().map(|&i| v[i as usize]).collect()),
        ColumnData::Str(v) => ColumnData::Str(idx.iter().map(|&i| v[i as usize].clone()).collect()),
    }
}

/// Gather where [`EMPTY`] positions produce the type's default value
/// (empty string / 0). Serves outer joins: unmatched probe rows take
/// defaults on the build side, flagged by a separate `__matched` column.
pub fn gather_or_default(col: &ColumnData, idx: &[u32]) -> ColumnData {
    match col {
        ColumnData::I32(v) => ColumnData::I32(
            idx.iter()
                .map(|&i| if i == EMPTY { 0 } else { v[i as usize] })
                .collect(),
        ),
        ColumnData::I64(v) => ColumnData::I64(
            idx.iter()
                .map(|&i| if i == EMPTY { 0 } else { v[i as usize] })
                .collect(),
        ),
        ColumnData::F64(v) => ColumnData::F64(
            idx.iter()
                .map(|&i| if i == EMPTY { 0.0 } else { v[i as usize] })
                .collect(),
        ),
        ColumnData::Str(v) => ColumnData::Str(
            idx.iter()
                .map(|&i| {
                    if i == EMPTY {
                        String::new()
                    } else {
                        v[i as usize].clone()
                    }
                })
                .collect(),
        ),
    }
}

/// Gather the same positions out of several columns at once.
pub fn gather_columns(cols: &[ColumnData], idx: &[u32]) -> Vec<ColumnData> {
    cols.iter().map(|c| gather(c, idx)).collect()
}

/// Append row `i` of `src` onto `dst` (physical layouts must match).
///
/// The group-key spill path of hash aggregation: a new group copies its key
/// row into the columnar key store.
pub fn append_row(dst: &mut ColumnData, src: &ColumnData, i: usize) {
    match (dst, src) {
        (ColumnData::I32(d), ColumnData::I32(s)) => d.push(s[i]),
        (ColumnData::I64(d), ColumnData::I64(s)) => d.push(s[i]),
        (ColumnData::I64(d), ColumnData::I32(s)) => d.push(s[i] as i64),
        (ColumnData::F64(d), ColumnData::F64(s)) => d.push(s[i]),
        (ColumnData::Str(d), ColumnData::Str(s)) => d.push(s[i].clone()),
        (d, s) => unreachable!("append_row {:?} <- {:?}", d.physical(), s.physical()),
    }
}

/// Scatter row ids into `n_parts` position lists by hash modulo.
///
/// Consumes the same hash vector the kernels produce, so an exchange hashes
/// each batch exactly once.
pub fn scatter_partitions(hashes: &[u64], n_parts: usize) -> Vec<Vec<u32>> {
    let mut out = vec![Vec::new(); n_parts];
    for (i, &h) in hashes.iter().enumerate() {
        out[(h % n_parts as u64) as usize].push(i as u32);
    }
    out
}

/// Is `dtype` storable in this column's physical layout? (debug aid)
pub fn layout_matches(col: &ColumnData, dtype: DataType) -> bool {
    col.physical() == vectorh_common::column::physical_of(dtype)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gather_all_layouts() {
        let idx = [2u32, 0, 2];
        assert_eq!(
            gather(&ColumnData::I32(vec![5, 6, 7]), &idx),
            ColumnData::I32(vec![7, 5, 7])
        );
        assert_eq!(
            gather(&ColumnData::I64(vec![5, 6, 7]), &idx),
            ColumnData::I64(vec![7, 5, 7])
        );
        assert_eq!(
            gather(&ColumnData::F64(vec![0.5, 1.5, 2.5]), &idx),
            ColumnData::F64(vec![2.5, 0.5, 2.5])
        );
        assert_eq!(
            gather(
                &ColumnData::Str(vec!["a".into(), "b".into(), "c".into()]),
                &idx
            ),
            ColumnData::Str(vec!["c".into(), "a".into(), "c".into()])
        );
    }

    #[test]
    fn gather_or_default_fills_sentinels() {
        let got = gather_or_default(&ColumnData::I64(vec![10, 20]), &[1, EMPTY, 0]);
        assert_eq!(got, ColumnData::I64(vec![20, 0, 10]));
        let got = gather_or_default(&ColumnData::Str(vec!["x".into()]), &[EMPTY, 0]);
        assert_eq!(got, ColumnData::Str(vec!["".into(), "x".into()]));
    }

    #[test]
    fn scatter_covers_all_rows_disjointly() {
        let hashes: Vec<u64> = (0..100).map(vectorh_common::util::hash_u64).collect();
        let parts = scatter_partitions(&hashes, 4);
        let mut all: Vec<u32> = parts.iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..100).collect::<Vec<_>>());
        for (p, rows) in parts.iter().enumerate() {
            for &r in rows {
                assert_eq!(hashes[r as usize] % 4, p as u64);
            }
        }
    }

    #[test]
    fn append_row_widens_i32() {
        let mut d = ColumnData::I64(vec![]);
        append_row(&mut d, &ColumnData::I32(vec![-5]), 0);
        assert_eq!(d, ColumnData::I64(vec![-5]));
    }
}
