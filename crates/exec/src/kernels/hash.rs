//! Column-at-a-time key hashing.
//!
//! Hashing a vector of multi-column keys proceeds column by column: the
//! hash vector is seeded once, then each key column folds its per-row hash
//! into it. The `match` on the physical column type happens once per
//! column, leaving four monomorphic inner loops (I32/I64/F64/Str) the
//! compiler can unroll and vectorize — versus the old per-row `row_hash`
//! helpers that re-dispatched on type for every single value.
//!
//! Two fixed seeds keep the engine's hash families apart:
//! * [`XCHG_SEED`] — exchange partitioning. Every node must route a given
//!   key to the same consumer, so this seed is part of the wire protocol.
//! * [`JOIN_SEED`] — join/aggregation tables, deliberately different so a
//!   repartitioned stream does not feed a hash table whose bucket choice
//!   correlates with the partition choice (classic cause of clustered
//!   chains after a hash split).
//!
//! Integer keys are normalized to `i64` before mixing, so an `I32` column
//! and an `I64` column holding equal values hash identically — required
//! for cross-width joins (`keys_eq` accepts I32/I64 pairs) and for
//! co-partitioning streams whose key widths differ.

use vectorh_common::util::{hash_bytes, hash_combine, hash_u64};
use vectorh_common::ColumnData;

/// Seed for exchange partitioning (stable across nodes: wire protocol).
pub const XCHG_SEED: u64 = 0x9E37_79B9_7F4A_7C15;

/// Seed for join build/probe and aggregation group tables.
pub const JOIN_SEED: u64 = 0xA5A5_5A5A_DEAD_BEEF;

/// Fold one column's per-row hashes into `acc` (full vector).
///
/// `acc.len()` must equal the column length. Numeric columns go through
/// the SIMD fold kernels (AVX2 four-lane mix with scalar/portable arms,
/// see [`super::simd`]); strings stay scalar — their per-row work is the
/// byte walk, not the mix.
fn fold_column(col: &ColumnData, acc: &mut [u64]) {
    match col {
        ColumnData::I32(v) => super::simd::fold_hash_i32(v, acc),
        ColumnData::I64(v) => super::simd::fold_hash_i64(v, acc),
        ColumnData::F64(v) => super::simd::fold_hash_f64(v, acc),
        ColumnData::Str(v) => {
            for (h, s) in acc.iter_mut().zip(v.iter()) {
                *h = hash_combine(*h, hash_bytes(s.as_bytes()));
            }
        }
    }
}

/// Fold one column's hashes into `acc` for the selected positions only:
/// `acc[j]` accumulates the hash of row `sel[j]`.
fn fold_column_sel(col: &ColumnData, sel: &[u32], acc: &mut [u64]) {
    match col {
        ColumnData::I32(v) => {
            for (h, &i) in acc.iter_mut().zip(sel.iter()) {
                *h = hash_combine(*h, hash_u64(v[i as usize] as i64 as u64));
            }
        }
        ColumnData::I64(v) => {
            for (h, &i) in acc.iter_mut().zip(sel.iter()) {
                *h = hash_combine(*h, hash_u64(v[i as usize] as u64));
            }
        }
        ColumnData::F64(v) => {
            for (h, &i) in acc.iter_mut().zip(sel.iter()) {
                *h = hash_combine(*h, hash_u64(v[i as usize].to_bits()));
            }
        }
        ColumnData::Str(v) => {
            for (h, &i) in acc.iter_mut().zip(sel.iter()) {
                *h = hash_combine(*h, hash_bytes(v[i as usize].as_bytes()));
            }
        }
    }
}

/// Hash the key columns of every row into `out` (cleared and refilled).
///
/// `cols` is the full column set of the batch; `keys` selects the key
/// columns in order. The result for row `i` equals seeding with `seed` and
/// folding each key column's hash in turn — byte-identical to the old
/// row-at-a-time `row_hash`/`row_key_hash` helpers it replaces.
pub fn hash_columns(cols: &[&ColumnData], keys: &[usize], seed: u64, out: &mut Vec<u64>) {
    let n = cols.first().map(|c| c.len()).unwrap_or(0);
    out.clear();
    out.resize(n, seed);
    for &k in keys {
        fold_column(cols[k], out);
    }
}

/// Selection-aware [`hash_columns`]: `out[j]` is the hash of row `sel[j]`.
pub fn hash_columns_sel(
    cols: &[&ColumnData],
    keys: &[usize],
    seed: u64,
    sel: &[u32],
    out: &mut Vec<u64>,
) {
    out.clear();
    out.resize(sel.len(), seed);
    for &k in keys {
        fold_column_sel(cols[k], sel, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference row-at-a-time hash (the pre-kernel implementation).
    fn row_hash(cols: &[&ColumnData], keys: &[usize], seed: u64, i: usize) -> u64 {
        let mut h = seed;
        for &k in keys {
            let hk = match cols[k] {
                ColumnData::I32(v) => hash_u64(v[i] as i64 as u64),
                ColumnData::I64(v) => hash_u64(v[i] as u64),
                ColumnData::F64(v) => hash_u64(v[i].to_bits()),
                ColumnData::Str(v) => hash_bytes(v[i].as_bytes()),
            };
            h = hash_combine(h, hk);
        }
        h
    }

    fn cols() -> Vec<ColumnData> {
        vec![
            ColumnData::I64(vec![1, -2, 3, i64::MAX, 0]),
            ColumnData::Str(vec![
                "a".into(),
                "".into(),
                "abcdefgh".into(),
                "x".into(),
                "y".into(),
            ]),
            ColumnData::F64(vec![0.0, -0.0, 1.5, f64::INFINITY, 2.0]),
            ColumnData::I32(vec![7, -7, 0, i32::MIN, i32::MAX]),
        ]
    }

    #[test]
    fn matches_row_at_a_time_reference() {
        let cols = cols();
        let refs: Vec<&ColumnData> = cols.iter().collect();
        for keys in [vec![0], vec![1], vec![0, 1, 2, 3], vec![3, 0]] {
            let mut got = Vec::new();
            hash_columns(&refs, &keys, JOIN_SEED, &mut got);
            for (i, &g) in got.iter().enumerate() {
                assert_eq!(
                    g,
                    row_hash(&refs, &keys, JOIN_SEED, i),
                    "keys {keys:?} row {i}"
                );
            }
        }
    }

    #[test]
    fn i32_and_i64_columns_hash_identically() {
        // Regression: equal key values must hash the same regardless of the
        // physical integer width, including negatives (sign extension) —
        // otherwise cross-width joins and co-partitioning silently break.
        let vals = [0i64, 1, -1, 42, -42, i32::MAX as i64, i32::MIN as i64];
        let narrow = ColumnData::I32(vals.iter().map(|&v| v as i32).collect());
        let wide = ColumnData::I64(vals.to_vec());
        for seed in [XCHG_SEED, JOIN_SEED] {
            let (mut a, mut b) = (Vec::new(), Vec::new());
            hash_columns(&[&narrow], &[0], seed, &mut a);
            hash_columns(&[&wide], &[0], seed, &mut b);
            assert_eq!(a, b, "seed {seed:#x}");
        }
    }

    #[test]
    fn selection_variant_matches_full() {
        let cols = cols();
        let refs: Vec<&ColumnData> = cols.iter().collect();
        let keys = vec![0, 1];
        let mut full = Vec::new();
        hash_columns(&refs, &keys, XCHG_SEED, &mut full);
        let sel = [4u32, 0, 2];
        let mut picked = Vec::new();
        hash_columns_sel(&refs, &keys, XCHG_SEED, &sel, &mut picked);
        assert_eq!(picked, vec![full[4], full[0], full[2]]);
    }

    #[test]
    fn seeds_give_independent_families() {
        let col = ColumnData::I64((0..64).collect());
        let (mut a, mut b) = (Vec::new(), Vec::new());
        hash_columns(&[&col], &[0], XCHG_SEED, &mut a);
        hash_columns(&[&col], &[0], JOIN_SEED, &mut b);
        assert!(a.iter().zip(&b).all(|(x, y)| x != y));
    }

    #[test]
    fn empty_batch_and_empty_keys() {
        let col = ColumnData::I64(vec![]);
        let mut out = vec![123];
        hash_columns(&[&col], &[0], JOIN_SEED, &mut out);
        assert!(out.is_empty());
        let col = ColumnData::I64(vec![5, 6]);
        hash_columns(&[&col], &[], JOIN_SEED, &mut out);
        assert_eq!(out, vec![JOIN_SEED; 2]);
    }
}
