//! Aggr: hash aggregation with partial/final modes.
//!
//! Supports the §5 "partial aggregation" rewrite: a `Partial` instance runs
//! below the exchange and emits mergeable states; a `Final` instance above
//! the exchange merges them. `Complete` does both at once (the DIRECT mode
//! the appendix Q1 profile shows).
//!
//! The group table is the kernel layer's flat open-addressing table over
//! *columnar* group keys: each input batch is hashed column-at-a-time
//! ([`kernels::hash`]), rows chase candidate chains with one stored-hash
//! compare, and new groups append their key row to per-column key stores —
//! no per-row key materialization, no `Vec<KeyAtom>` allocations on the
//! hot path.

use std::collections::HashSet;
use std::sync::Arc;

use vectorh_common::{ColumnData, DataType, Field, Result, Schema, Value, VhError, VECTOR_SIZE};

use crate::batch::Batch;
use crate::kernels::gather::append_row;
use crate::kernels::hash::{hash_columns, JOIN_SEED};
use crate::kernels::table::HashTable;
use crate::operator::{Counters, OpProfile, Operator};

/// Aggregate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFn {
    CountStar,
    Count(usize),
    Sum(usize),
    Min(usize),
    Max(usize),
    Avg(usize),
    /// COUNT(DISTINCT col). Only valid in `Complete` mode — the planner
    /// repartitions on the group keys first (as real systems do).
    CountDistinct(usize),
}

/// Aggregation phases.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggMode {
    Complete,
    Partial,
    Final,
}

/// Hashable distinct-value atom (COUNT(DISTINCT) sets only; the group
/// table itself keys on columnar data).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum KeyAtom {
    I(i64),
    S(String),
}

fn atom_of(col: &ColumnData, i: usize) -> Result<KeyAtom> {
    match col {
        ColumnData::I32(v) => Ok(KeyAtom::I(v[i] as i64)),
        ColumnData::I64(v) => Ok(KeyAtom::I(v[i])),
        ColumnData::Str(v) => Ok(KeyAtom::S(v[i].clone())),
        ColumnData::F64(_) => Err(VhError::Exec("COUNT(DISTINCT) over float".into())),
    }
}

/// Does group `gi` of the columnar key store equal row `i` of the batch?
fn group_eq(
    group_keys: &[ColumnData],
    cols: &[&ColumnData],
    keys: &[usize],
    gi: usize,
    i: usize,
) -> bool {
    group_keys
        .iter()
        .zip(keys)
        .all(|(g, &k)| match (g, cols[k]) {
            (ColumnData::I32(a), ColumnData::I32(b)) => a[gi] == b[i],
            (ColumnData::I64(a), ColumnData::I64(b)) => a[gi] == b[i],
            (ColumnData::Str(a), ColumnData::Str(b)) => a[gi] == b[i],
            _ => false,
        })
}

/// Per-group accumulator.
#[derive(Debug, Clone)]
enum AggState {
    CountI(i64),
    SumI(i64),
    SumF(f64),
    MinMax(Option<Value>),
    AvgI { sum: i64, count: i64 },
    AvgF { sum: f64, count: i64 },
    Distinct(HashSet<KeyAtom>),
}

/// The hash aggregation operator.
pub struct Aggr {
    child: Box<dyn Operator>,
    group_by: Vec<usize>,
    aggs: Vec<AggFn>,
    mode: AggMode,
    out_schema: Arc<Schema>,
    /// Input dtypes of aggregated columns (drives state selection).
    agg_dtypes: Vec<Option<DataType>>,
    /// Flat hash index over the group-key rows stored in `group_keys`.
    groups: HashTable,
    /// One column per GROUP BY key; row `gi` is group `gi`'s key.
    group_keys: Vec<ColumnData>,
    states: Vec<Vec<AggState>>,
    drained: bool,
    emit_at: usize,
    counters: Counters,
}

fn agg_input_col(f: AggFn) -> Option<usize> {
    match f {
        AggFn::CountStar => None,
        AggFn::Count(c)
        | AggFn::Sum(c)
        | AggFn::Min(c)
        | AggFn::Max(c)
        | AggFn::Avg(c)
        | AggFn::CountDistinct(c) => Some(c),
    }
}

/// Output fields of one aggregate in a given mode.
fn agg_fields(f: AggFn, dt: Option<DataType>, mode: AggMode, idx: usize) -> Vec<Field> {
    let base = format!("agg{idx}");
    let sum_dt = match dt {
        Some(DataType::Decimal { scale }) => DataType::Decimal { scale },
        Some(DataType::F64) => DataType::F64,
        _ => DataType::I64,
    };
    match (f, mode) {
        (AggFn::CountStar | AggFn::Count(_) | AggFn::CountDistinct(_), _) => {
            vec![Field::new(base, DataType::I64)]
        }
        (AggFn::Sum(_), _) => vec![Field::new(base, sum_dt)],
        (AggFn::Min(_) | AggFn::Max(_), _) => {
            vec![Field::new(base, dt.expect("min/max needs input column"))]
        }
        (AggFn::Avg(_), AggMode::Partial) => vec![
            Field::new(format!("{base}_sum"), sum_dt),
            Field::new(format!("{base}_count"), DataType::I64),
        ],
        (AggFn::Avg(_), _) => vec![Field::new(base, DataType::F64)],
    }
}

impl Aggr {
    pub fn new(
        child: Box<dyn Operator>,
        group_by: Vec<usize>,
        aggs: Vec<AggFn>,
        mode: AggMode,
    ) -> Result<Aggr> {
        let in_schema = child.schema();
        if mode != AggMode::Complete && aggs.iter().any(|a| matches!(a, AggFn::CountDistinct(_))) {
            return Err(VhError::Exec(
                "COUNT(DISTINCT) requires Complete mode after repartitioning".into(),
            ));
        }
        if group_by
            .iter()
            .any(|&g| in_schema.dtype(g) == DataType::F64)
        {
            return Err(VhError::Exec("GROUP BY over float".into()));
        }
        let mut fields: Vec<Field> = group_by
            .iter()
            .map(|&g| in_schema.field(g).clone())
            .collect();
        let mut agg_dtypes = Vec::with_capacity(aggs.len());
        for (i, &f) in aggs.iter().enumerate() {
            let dt = agg_input_col(f).map(|c| in_schema.dtype(c));
            // In Final mode the "input column" layout differs (states), but
            // the state columns carry the right types already; dtype of the
            // first state column drives the output type.
            agg_dtypes.push(dt);
            fields.extend(agg_fields(f, dt, mode, i));
        }
        let group_keys = group_by
            .iter()
            .map(|&g| ColumnData::new(in_schema.dtype(g)))
            .collect();
        Ok(Aggr {
            child,
            group_by,
            aggs,
            mode,
            out_schema: Arc::new(Schema::new(fields)),
            agg_dtypes,
            groups: HashTable::new(),
            group_keys,
            states: Vec::new(),
            drained: false,
            emit_at: 0,
            counters: Counters::default(),
        })
    }

    fn fresh_states(&self) -> Vec<AggState> {
        self.aggs
            .iter()
            .zip(&self.agg_dtypes)
            .map(|(f, dt)| match f {
                AggFn::CountStar | AggFn::Count(_) => AggState::CountI(0),
                AggFn::Sum(_) | AggFn::Avg(_) => {
                    let float = matches!(dt, Some(DataType::F64));
                    match (f, float) {
                        (AggFn::Sum(_), false) => AggState::SumI(0),
                        (AggFn::Sum(_), true) => AggState::SumF(0.0),
                        (AggFn::Avg(_), false) => AggState::AvgI { sum: 0, count: 0 },
                        (AggFn::Avg(_), true) => AggState::AvgF { sum: 0.0, count: 0 },
                        _ => unreachable!(),
                    }
                }
                AggFn::Min(_) | AggFn::Max(_) => AggState::MinMax(None),
                AggFn::CountDistinct(_) => AggState::Distinct(HashSet::new()),
            })
            .collect()
    }

    /// Consume the whole input, accumulating groups.
    fn drain_input(&mut self) -> Result<()> {
        let mut hashes = Vec::new();
        while let Some(batch) = self.child.next()? {
            self.counters.rows_in += batch.len() as u64;
            let cols: Vec<&ColumnData> = batch.columns.iter().collect();
            hash_columns(&cols, &self.group_by, JOIN_SEED, &mut hashes);
            for (i, &h) in hashes.iter().enumerate() {
                let gi = match self
                    .groups
                    .candidates(h)
                    .find(|&g| group_eq(&self.group_keys, &cols, &self.group_by, g as usize, i))
                {
                    Some(g) => g as usize,
                    None => {
                        let g = self.states.len();
                        self.groups.insert_batch(&[h]);
                        for (dst, &k) in self.group_keys.iter_mut().zip(&self.group_by) {
                            append_row(dst, cols[k], i);
                        }
                        self.states.push(self.fresh_states());
                        g
                    }
                };
                // In Final mode, each agg's state columns follow the group
                // columns in input order; track the running input position.
                let mut state_col = self.group_by.len();
                let aggs = self.aggs.clone();
                for (a, f) in aggs.iter().enumerate() {
                    match self.mode {
                        AggMode::Final => {
                            state_col += self.merge_state(gi, a, *f, &batch, i, state_col)?;
                        }
                        _ => self.update_state(gi, a, *f, &batch, i)?,
                    }
                }
            }
        }
        self.drained = true;
        Ok(())
    }

    fn update_state(&mut self, gi: usize, a: usize, f: AggFn, b: &Batch, i: usize) -> Result<()> {
        let state = &mut self.states[gi][a];
        match (f, state) {
            (AggFn::CountStar, AggState::CountI(n)) => *n += 1,
            (AggFn::Count(_), AggState::CountI(n)) => *n += 1, // no NULLs in storage
            (AggFn::Sum(c), AggState::SumI(s)) => {
                *s += int_at(b, c, i)?;
            }
            (AggFn::Sum(c), AggState::SumF(s)) => {
                *s += float_at(b, c, i)?;
            }
            (AggFn::Avg(c), AggState::AvgI { sum, count }) => {
                *sum += int_at(b, c, i)?;
                *count += 1;
            }
            (AggFn::Avg(c), AggState::AvgF { sum, count }) => {
                *sum += float_at(b, c, i)?;
                *count += 1;
            }
            (AggFn::Min(c), AggState::MinMax(m)) => {
                let v = b.column(c).value_at(i, b.schema.dtype(c));
                if m.as_ref().is_none_or(|cur| v < *cur) {
                    *m = Some(v);
                }
            }
            (AggFn::Max(c), AggState::MinMax(m)) => {
                let v = b.column(c).value_at(i, b.schema.dtype(c));
                if m.as_ref().is_none_or(|cur| v > *cur) {
                    *m = Some(v);
                }
            }
            (AggFn::CountDistinct(c), AggState::Distinct(set)) => {
                set.insert(atom_of(b.column(c), i)?);
            }
            _ => return Err(VhError::Internal("agg state mismatch".into())),
        }
        Ok(())
    }

    /// Merge partial states (Final mode). Returns state columns consumed.
    fn merge_state(
        &mut self,
        gi: usize,
        a: usize,
        f: AggFn,
        b: &Batch,
        i: usize,
        col: usize,
    ) -> Result<usize> {
        let state = &mut self.states[gi][a];
        match (f, state) {
            (AggFn::CountStar | AggFn::Count(_), AggState::CountI(n)) => {
                *n += int_at(b, col, i)?;
                Ok(1)
            }
            (AggFn::Sum(_), AggState::SumI(s)) => {
                *s += int_at(b, col, i)?;
                Ok(1)
            }
            (AggFn::Sum(_), AggState::SumF(s)) => {
                *s += float_at(b, col, i)?;
                Ok(1)
            }
            (AggFn::Avg(_), AggState::AvgI { sum, count }) => {
                *sum += int_at(b, col, i)?;
                *count += int_at(b, col + 1, i)?;
                Ok(2)
            }
            (AggFn::Avg(_), AggState::AvgF { sum, count }) => {
                *sum += float_at(b, col, i)?;
                *count += int_at(b, col + 1, i)?;
                Ok(2)
            }
            (AggFn::Min(_), AggState::MinMax(m)) => {
                let v = b.column(col).value_at(i, b.schema.dtype(col));
                if m.as_ref().is_none_or(|cur| v < *cur) {
                    *m = Some(v);
                }
                Ok(1)
            }
            (AggFn::Max(_), AggState::MinMax(m)) => {
                let v = b.column(col).value_at(i, b.schema.dtype(col));
                if m.as_ref().is_none_or(|cur| v > *cur) {
                    *m = Some(v);
                }
                Ok(1)
            }
            _ => Err(VhError::Internal("final-mode agg state mismatch".into())),
        }
    }

    /// Serialize a group into output column builders.
    fn emit_group(&self, gi: usize, builders: &mut [ColumnData]) -> Result<()> {
        let mut col = 0usize;
        for key_col in &self.group_keys {
            let v = key_col.value_at(gi, self.out_schema.dtype(col));
            builders[col].push_value(&v)?;
            col += 1;
        }
        for (a, _f) in self.aggs.iter().enumerate() {
            let st = &self.states[gi][a];
            match (st, self.mode) {
                (AggState::CountI(n), _) => {
                    builders[col].push_value(&Value::I64(*n))?;
                    col += 1;
                }
                (AggState::SumI(s), _) => {
                    let v = match self.out_schema.dtype(col) {
                        DataType::Decimal { scale } => Value::Decimal(*s, scale),
                        _ => Value::I64(*s),
                    };
                    builders[col].push_value(&v)?;
                    col += 1;
                }
                (AggState::SumF(s), _) => {
                    builders[col].push_value(&Value::F64(*s))?;
                    col += 1;
                }
                (AggState::AvgI { sum, count }, AggMode::Partial) => {
                    let v = match self.out_schema.dtype(col) {
                        DataType::Decimal { scale } => Value::Decimal(*sum, scale),
                        _ => Value::I64(*sum),
                    };
                    builders[col].push_value(&v)?;
                    builders[col + 1].push_value(&Value::I64(*count))?;
                    col += 2;
                }
                (AggState::AvgF { sum, count }, AggMode::Partial) => {
                    builders[col].push_value(&Value::F64(*sum))?;
                    builders[col + 1].push_value(&Value::I64(*count))?;
                    col += 2;
                }
                (AggState::AvgI { sum, count }, _) => {
                    // Exact average of the decimal/int raws, reported as f64.
                    let scale = match self.agg_dtypes[a] {
                        Some(DataType::Decimal { scale }) => scale,
                        _ => 0,
                    };
                    let denom = (*count as f64).max(1.0) * 10f64.powi(scale as i32);
                    builders[col].push_value(&Value::F64(*sum as f64 / denom))?;
                    col += 1;
                }
                (AggState::AvgF { sum, count }, _) => {
                    builders[col].push_value(&Value::F64(*sum / (*count as f64).max(1.0)))?;
                    col += 1;
                }
                (AggState::MinMax(m), _) => {
                    let v = m
                        .clone()
                        .ok_or_else(|| VhError::Exec("MIN/MAX over empty group".into()))?;
                    builders[col].push_value(&v)?;
                    col += 1;
                }
                (AggState::Distinct(set), _) => {
                    builders[col].push_value(&Value::I64(set.len() as i64))?;
                    col += 1;
                }
            }
        }
        Ok(())
    }
}

fn int_at(b: &Batch, c: usize, i: usize) -> Result<i64> {
    match b.column(c) {
        ColumnData::I32(v) => Ok(v[i] as i64),
        ColumnData::I64(v) => Ok(v[i]),
        _ => Err(VhError::Exec("integer aggregate over non-integer".into())),
    }
}

fn float_at(b: &Batch, c: usize, i: usize) -> Result<f64> {
    match b.column(c) {
        ColumnData::F64(v) => Ok(v[i]),
        ColumnData::I32(v) => Ok(v[i] as f64),
        ColumnData::I64(v) => Ok(v[i] as f64),
        _ => Err(VhError::Exec("float aggregate over non-numeric".into())),
    }
}

impl Operator for Aggr {
    fn schema(&self) -> Arc<Schema> {
        self.out_schema.clone()
    }

    fn next(&mut self) -> Result<Option<Batch>> {
        let start = std::time::Instant::now();
        if !self.drained {
            self.drain_input()?;
            // A global aggregate (no GROUP BY) over empty input still
            // produces one row of zero counts.
            if self.group_by.is_empty() && self.states.is_empty() {
                let only_counts = self
                    .aggs
                    .iter()
                    .all(|a| matches!(a, AggFn::CountStar | AggFn::Count(_)));
                if only_counts {
                    self.states.push(self.fresh_states());
                }
            }
        }
        let out = if self.emit_at >= self.states.len() {
            None
        } else {
            let to = (self.emit_at + VECTOR_SIZE).min(self.states.len());
            let mut builders: Vec<ColumnData> = self
                .out_schema
                .fields()
                .iter()
                .map(|f| ColumnData::with_capacity(f.dtype, to - self.emit_at))
                .collect();
            for gi in self.emit_at..to {
                self.emit_group(gi, &mut builders)?;
            }
            self.emit_at = to;
            Some(Batch::new(self.out_schema.clone(), builders)?)
        };
        self.counters.cum_time_ns += start.elapsed().as_nanos() as u64;
        self.counters.calls += 1;
        if let Some(b) = &out {
            self.counters.rows_out += b.len() as u64;
        }
        Ok(out)
    }

    fn profile(&self) -> OpProfile {
        self.counters.profile(match self.mode {
            AggMode::Complete => "Aggr(DIRECT)",
            AggMode::Partial => "Aggr(partial)",
            AggMode::Final => "Aggr(final)",
        })
    }

    fn children(&self) -> Vec<&dyn Operator> {
        vec![self.child.as_ref()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operator::BatchSource;

    fn source() -> Box<dyn Operator> {
        let schema = Arc::new(Schema::of(&[
            ("g", DataType::Str),
            ("x", DataType::I64),
            ("price", DataType::Decimal { scale: 2 }),
        ]));
        let batch = Batch::new(
            schema,
            vec![
                ColumnData::Str(vec!["a".into(), "b".into(), "a".into(), "a".into()]),
                ColumnData::I64(vec![1, 2, 3, 4]),
                ColumnData::I64(vec![100, 200, 300, 400]),
            ],
        )
        .unwrap();
        Box::new(BatchSource::from_batch(batch, 2))
    }

    fn sorted_rows(op: &mut dyn Operator) -> Vec<Vec<Value>> {
        let mut rows = crate::batch::collect_rows(op).unwrap();
        rows.sort_by(|a, b| format!("{a:?}").cmp(&format!("{b:?}")));
        rows
    }

    #[test]
    fn complete_grouped_aggregation() {
        let mut a = Aggr::new(
            source(),
            vec![0],
            vec![
                AggFn::CountStar,
                AggFn::Sum(1),
                AggFn::Min(1),
                AggFn::Max(1),
                AggFn::Avg(1),
            ],
            AggMode::Complete,
        )
        .unwrap();
        let rows = sorted_rows(&mut a);
        assert_eq!(rows.len(), 2);
        // group "a": count 3, sum 8, min 1, max 4, avg 8/3
        assert_eq!(rows[0][0], Value::Str("a".into()));
        assert_eq!(rows[0][1], Value::I64(3));
        assert_eq!(rows[0][2], Value::I64(8));
        assert_eq!(rows[0][3], Value::I64(1));
        assert_eq!(rows[0][4], Value::I64(4));
        assert_eq!(rows[0][5], Value::F64(8.0 / 3.0));
    }

    #[test]
    fn decimal_sum_keeps_scale() {
        let mut a = Aggr::new(source(), vec![], vec![AggFn::Sum(2)], AggMode::Complete).unwrap();
        let rows = crate::batch::collect_rows(&mut a).unwrap();
        assert_eq!(rows, vec![vec![Value::Decimal(1000, 2)]]); // 10.00
    }

    #[test]
    fn decimal_avg_unscales() {
        let mut a = Aggr::new(source(), vec![], vec![AggFn::Avg(2)], AggMode::Complete).unwrap();
        let rows = crate::batch::collect_rows(&mut a).unwrap();
        assert_eq!(rows, vec![vec![Value::F64(2.5)]]); // avg(1,2,3,4)=2.50
    }

    #[test]
    fn partial_then_final_equals_complete() {
        // partial on two halves, final over the concatenation
        let mut complete = Aggr::new(
            source(),
            vec![0],
            vec![AggFn::CountStar, AggFn::Sum(1), AggFn::Avg(1)],
            AggMode::Complete,
        )
        .unwrap();
        let want = sorted_rows(&mut complete);

        let mut partial = Aggr::new(
            source(),
            vec![0],
            vec![AggFn::CountStar, AggFn::Sum(1), AggFn::Avg(1)],
            AggMode::Partial,
        )
        .unwrap();
        let pschema = partial.schema();
        let mut pbatches = Vec::new();
        while let Some(b) = partial.next().unwrap() {
            pbatches.push(b);
        }
        let src = Box::new(BatchSource::new(pschema, pbatches));
        let mut fin = Aggr::new(
            src,
            vec![0],
            vec![AggFn::CountStar, AggFn::Sum(1), AggFn::Avg(1)],
            AggMode::Final,
        )
        .unwrap();
        let got = sorted_rows(&mut fin);
        assert_eq!(got, want);
    }

    #[test]
    fn count_distinct() {
        let mut a = Aggr::new(
            source(),
            vec![0],
            vec![AggFn::CountDistinct(1), AggFn::CountDistinct(0)],
            AggMode::Complete,
        )
        .unwrap();
        let rows = sorted_rows(&mut a);
        assert_eq!(rows[0][1], Value::I64(3)); // group a: x in {1,3,4}
        assert_eq!(rows[0][2], Value::I64(1));
        assert_eq!(rows[1][1], Value::I64(1));
    }

    #[test]
    fn count_distinct_rejected_in_partial() {
        assert!(Aggr::new(
            source(),
            vec![0],
            vec![AggFn::CountDistinct(1)],
            AggMode::Partial
        )
        .is_err());
    }

    #[test]
    fn global_aggregate_over_empty_input() {
        let schema = Arc::new(Schema::of(&[("x", DataType::I64)]));
        let src = Box::new(BatchSource::new(schema, vec![]));
        let mut a = Aggr::new(src, vec![], vec![AggFn::CountStar], AggMode::Complete).unwrap();
        let rows = crate::batch::collect_rows(&mut a).unwrap();
        assert_eq!(rows, vec![vec![Value::I64(0)]]);
    }

    #[test]
    fn grouped_aggregate_over_empty_input_is_empty() {
        let schema = Arc::new(Schema::of(&[("g", DataType::I64), ("x", DataType::I64)]));
        let src = Box::new(BatchSource::new(schema, vec![]));
        let mut a = Aggr::new(src, vec![0], vec![AggFn::Sum(1)], AggMode::Complete).unwrap();
        assert!(crate::batch::collect_rows(&mut a).unwrap().is_empty());
    }

    #[test]
    fn group_by_date_key_roundtrips() {
        let schema = Arc::new(Schema::of(&[("d", DataType::Date)]));
        let batch = Batch::new(schema, vec![ColumnData::I32(vec![100, 100, 200])]).unwrap();
        let src = Box::new(BatchSource::from_batch(batch, 1024));
        let mut a = Aggr::new(src, vec![0], vec![AggFn::CountStar], AggMode::Complete).unwrap();
        assert_eq!(a.schema().dtype(0), DataType::Date);
        let rows = sorted_rows(&mut a);
        assert_eq!(rows.len(), 2);
        assert!(matches!(rows[0][0], Value::Date(_)));
    }
}
