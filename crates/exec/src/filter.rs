//! Select: vectorized filtering.
//!
//! Evaluates a predicate over each input vector and compacts the qualifying
//! rows. (Vectorwise keeps selection vectors lazy; we compact eagerly — the
//! work is the same O(selected) gather, done once per vector.)

use std::sync::Arc;

use vectorh_common::{Result, Schema};

use crate::batch::Batch;
use crate::expr::Expr;
use crate::operator::{Counters, OpProfile, Operator};

/// Filter operator.
pub struct Select {
    child: Box<dyn Operator>,
    predicate: Expr,
    counters: Counters,
    /// Reused selection-vector buffer (cleared each batch).
    sel: Vec<u32>,
}

impl Select {
    pub fn new(child: Box<dyn Operator>, predicate: Expr) -> Select {
        Select {
            child,
            predicate,
            counters: Counters::default(),
            sel: Vec::new(),
        }
    }
}

impl Operator for Select {
    fn schema(&self) -> Arc<Schema> {
        self.child.schema()
    }

    fn next(&mut self) -> Result<Option<Batch>> {
        let start = std::time::Instant::now();
        let out = loop {
            let Some(batch) = self.child.next()? else {
                break None;
            };
            self.counters.rows_in += batch.len() as u64;
            let mask = self.predicate.eval_mask(&batch)?;
            crate::kernels::simd::compact_mask(&mask, &mut self.sel);
            if self.sel.is_empty() {
                continue; // fully filtered vector: pull the next one
            }
            if self.sel.len() == batch.len() {
                break Some(batch); // nothing filtered: pass through untouched
            }
            break Some(batch.gather_u32(&self.sel));
        };
        self.counters.cum_time_ns += start.elapsed().as_nanos() as u64;
        self.counters.calls += 1;
        if let Some(b) = &out {
            self.counters.rows_out += b.len() as u64;
        }
        Ok(out)
    }

    fn profile(&self) -> OpProfile {
        self.counters.profile("Select")
    }

    fn children(&self) -> Vec<&dyn Operator> {
        vec![self.child.as_ref()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operator::BatchSource;
    use vectorh_common::{ColumnData, DataType, Value};

    fn source(vals: Vec<i64>) -> Box<dyn Operator> {
        let schema = Arc::new(Schema::of(&[("x", DataType::I64)]));
        let batch = Batch::new(schema.clone(), vec![ColumnData::I64(vals)]).unwrap();
        Box::new(BatchSource::from_batch(batch, 4))
    }

    #[test]
    fn filters_rows() {
        let mut sel = Select::new(
            source((0..20).collect()),
            Expr::ge(Expr::col(0), Expr::lit(Value::I64(15))),
        );
        let rows = crate::batch::collect_rows(&mut sel).unwrap();
        assert_eq!(rows.len(), 5);
        assert_eq!(rows[0][0], Value::I64(15));
        let p = sel.profile();
        assert_eq!(p.rows_in, 20);
        assert_eq!(p.rows_out, 5);
    }

    #[test]
    fn skips_empty_vectors() {
        // First batches all filtered out; Select must keep pulling.
        let mut sel = Select::new(
            source((0..20).collect()),
            Expr::eq(Expr::col(0), Expr::lit(Value::I64(19))),
        );
        let rows = crate::batch::collect_rows(&mut sel).unwrap();
        assert_eq!(rows, vec![vec![Value::I64(19)]]);
    }

    #[test]
    fn all_pass_is_identity() {
        let mut sel = Select::new(
            source((0..8).collect()),
            Expr::ge(Expr::col(0), Expr::lit(Value::I64(0))),
        );
        let rows = crate::batch::collect_rows(&mut sel).unwrap();
        assert_eq!(rows.len(), 8);
    }
}
