//! The vectorized query execution engine.
//!
//! Faithful to the Vectorwise execution model the paper builds on (§2):
//! all operators process *vectors* (mini-columns) of up to
//! [`vectorh_common::VECTOR_SIZE`] values per `next()` call, pulled through
//! a Volcano-style operator tree. This amortizes interpretation overhead
//! over ~1000 tuples, keeps hot data in cache, and leaves the inner loops
//! over primitive slices where the compiler can vectorize them — the
//! "truly vectorized engine" whose CPU efficiency drives the Figure 7 gap
//! against tuple-at-a-time engines.
//!
//! Modules:
//! * [`batch`] — the unit of data flow: a bundle of equal-length columns.
//! * [`expr`] — vectorized expression kernels (arithmetic, comparisons,
//!   string matching, CASE, EXTRACT) with decimal-exact money math.
//! * [`operator`] — the `Operator` trait and profiling plumbing that
//!   regenerates the appendix-style per-operator profiles.
//! * [`scan`] — MScan: chunk reads + MinMax skipping + positional PDT merge.
//! * [`kernels`] — columnar hash / flat hash table / batch gather
//!   primitives shared by joins, aggregation and the exchanges.
//! * [`filter`], [`project`], [`join`], [`mergejoin`], [`aggr`], [`sort`] —
//!   the relational operators TPC-H needs.
//! * [`rowengine`] — the deliberately tuple-at-a-time baseline interpreter
//!   used as the "Hive-like" comparator in the Figure 7 harness.

pub mod aggr;
pub mod batch;
pub mod expr;
pub mod filter;
pub mod join;
pub mod kernels;
pub mod mergejoin;
pub mod operator;
pub mod project;
pub mod rowengine;
pub mod scan;
pub mod sort;

pub use batch::{fingerprint_rows, Batch};
pub use expr::Expr;
pub use operator::{collect_profiles, OpProfile, Operator};
