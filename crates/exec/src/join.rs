//! HashJoin: build/probe hash join with vectorized probing.
//!
//! The build side is drained into columnar storage indexed by a flat
//! open-addressing table ([`kernels::table::HashTable`]); probe vectors are
//! hashed column-at-a-time in bulk ([`kernels::hash`]) and matches gathered
//! column-wise ([`kernels::gather`]). Modes cover what TPC-H needs: inner,
//! left-outer, semi (EXISTS / IN) and anti (NOT EXISTS).
//!
//! Left-outer note: VectorH-rs columns are non-nullable (TPC-H data has no
//! NULLs), so unmatched probe rows get type-default build values and the
//! output carries a synthetic trailing `__matched` column (1/0). Aggregates
//! over the nullable side — e.g. Q13's `count(o_orderkey)` — become
//! `sum(__matched)`, which is the same number.

use std::sync::Arc;

use vectorh_common::{ColumnData, DataType, Field, Result, Schema, VhError};

use crate::batch::Batch;
use crate::kernels::gather::{gather, gather_or_default};
use crate::kernels::hash::{hash_columns, JOIN_SEED};
use crate::kernels::table::{HashTable, EMPTY};
use crate::operator::{Counters, OpProfile, Operator};

/// Join flavours.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinKind {
    Inner,
    /// Probe-preserving outer join (see module docs for NULL handling).
    LeftOuter,
    /// Emit probe rows with at least one match (probe schema only).
    Semi,
    /// Emit probe rows with no match (probe schema only).
    Anti,
}

/// Are the key columns of (a, i) and (b, j) equal?
pub(crate) fn keys_eq(
    a: &[&ColumnData],
    akeys: &[usize],
    i: usize,
    b: &[&ColumnData],
    bkeys: &[usize],
    j: usize,
) -> bool {
    akeys
        .iter()
        .zip(bkeys)
        .all(|(&ka, &kb)| match (a[ka], b[kb]) {
            (ColumnData::I32(x), ColumnData::I32(y)) => x[i] == y[j],
            (ColumnData::I64(x), ColumnData::I64(y)) => x[i] == y[j],
            (ColumnData::I32(x), ColumnData::I64(y)) => x[i] as i64 == y[j],
            (ColumnData::I64(x), ColumnData::I32(y)) => x[i] == y[j] as i64,
            (ColumnData::F64(x), ColumnData::F64(y)) => x[i] == y[j],
            (ColumnData::Str(x), ColumnData::Str(y)) => x[i] == y[j],
            _ => false,
        })
}

/// Columnar build side plus its hash index. Shared by [`HashJoin`] and
/// [`SharedBuild`]: drain an operator once, probe with hash vectors.
struct BuildSide {
    data: Vec<ColumnData>,
    table: HashTable,
    keys: Vec<usize>,
}

impl BuildSide {
    fn drain(input: &mut dyn Operator, keys: &[usize]) -> Result<BuildSide> {
        let schema = input.schema();
        let mut data: Vec<ColumnData> = schema
            .fields()
            .iter()
            .map(|f| ColumnData::new(f.dtype))
            .collect();
        let mut table = HashTable::new();
        let mut hashes = Vec::new();
        while let Some(batch) = input.next()? {
            for (dst, src) in data.iter_mut().zip(&batch.columns) {
                dst.append(src)?;
            }
            let cols: Vec<&ColumnData> = batch.columns.iter().collect();
            hash_columns(&cols, keys, JOIN_SEED, &mut hashes);
            table.insert_batch(&hashes);
        }
        Ok(BuildSide {
            data,
            table,
            keys: keys.to_vec(),
        })
    }

    /// Match one probe batch: for each probe row, every build row with an
    /// equal key. Returns parallel (probe position, build row) vectors.
    fn match_inner(
        &self,
        cols: &[&ColumnData],
        probe_keys: &[usize],
        hashes: &[u64],
    ) -> (Vec<u32>, Vec<u32>) {
        let build_cols: Vec<&ColumnData> = self.data.iter().collect();
        let mut probe_idx = Vec::new();
        let mut build_idx = Vec::new();
        for (i, &h) in hashes.iter().enumerate() {
            for bi in self.table.candidates(h) {
                if keys_eq(&build_cols, &self.keys, bi as usize, cols, probe_keys, i) {
                    probe_idx.push(i as u32);
                    build_idx.push(bi);
                }
            }
        }
        (probe_idx, build_idx)
    }
}

/// The hash join operator. Left child = probe, right child = build.
pub struct HashJoin {
    probe: Box<dyn Operator>,
    build: Box<dyn Operator>,
    probe_keys: Vec<usize>,
    kind: JoinKind,
    built: Option<BuildSide>,
    build_keys: Vec<usize>,
    out_schema: Arc<Schema>,
    counters: Counters,
}

impl HashJoin {
    pub fn new(
        probe: Box<dyn Operator>,
        build: Box<dyn Operator>,
        probe_keys: Vec<usize>,
        build_keys: Vec<usize>,
        kind: JoinKind,
    ) -> Result<HashJoin> {
        // Empty key lists are allowed for inner joins only: every build row
        // hashes to the bare seed and `keys_eq` is vacuously true, so the
        // normal probe path degenerates into a cross product. The planner
        // emits this for uncorrelated scalar subqueries (one-row build side).
        if probe_keys.len() != build_keys.len()
            || (probe_keys.is_empty() && kind != JoinKind::Inner)
        {
            return Err(VhError::Exec("mismatched join keys".into()));
        }
        let out_schema = match kind {
            JoinKind::Inner => Arc::new(probe.schema().join(&build.schema())),
            JoinKind::LeftOuter => {
                let mut s = probe.schema().join(&build.schema());
                s = s.join(&Schema::new(vec![Field::new("__matched", DataType::I32)]));
                Arc::new(s)
            }
            JoinKind::Semi | JoinKind::Anti => probe.schema(),
        };
        Ok(HashJoin {
            probe,
            build,
            probe_keys,
            kind,
            built: None,
            build_keys,
            out_schema,
            counters: Counters::default(),
        })
    }
}

impl Operator for HashJoin {
    fn schema(&self) -> Arc<Schema> {
        self.out_schema.clone()
    }

    fn next(&mut self) -> Result<Option<Batch>> {
        let start = std::time::Instant::now();
        if self.built.is_none() {
            self.built = Some(BuildSide::drain(self.build.as_mut(), &self.build_keys)?);
        }
        let side = self.built.as_ref().unwrap();
        let mut hashes = Vec::new();
        let out = loop {
            let Some(batch) = self.probe.next()? else {
                break None;
            };
            self.counters.rows_in += batch.len() as u64;
            let cols: Vec<&ColumnData> = batch.columns.iter().collect();
            hash_columns(&cols, &self.probe_keys, JOIN_SEED, &mut hashes);

            match self.kind {
                JoinKind::Inner => {
                    let (probe_idx, build_idx) = side.match_inner(&cols, &self.probe_keys, &hashes);
                    if probe_idx.is_empty() {
                        continue;
                    }
                    let left = batch.gather_u32(&probe_idx);
                    let mut columns = left.columns;
                    columns.extend(side.data.iter().map(|c| gather(c, &build_idx)));
                    break Some(Batch::new(self.out_schema.clone(), columns)?);
                }
                JoinKind::LeftOuter => {
                    let build_cols: Vec<&ColumnData> = side.data.iter().collect();
                    let mut probe_idx: Vec<u32> = Vec::new();
                    // Build side: a real row id, or EMPTY for "unmatched".
                    let mut build_idx: Vec<u32> = Vec::new();
                    for (i, &h) in hashes.iter().enumerate() {
                        let mut any = false;
                        for bi in side.table.candidates(h) {
                            if keys_eq(
                                &build_cols,
                                &side.keys,
                                bi as usize,
                                &cols,
                                &self.probe_keys,
                                i,
                            ) {
                                probe_idx.push(i as u32);
                                build_idx.push(bi);
                                any = true;
                            }
                        }
                        if !any {
                            probe_idx.push(i as u32);
                            build_idx.push(EMPTY);
                        }
                    }
                    let left = batch.gather_u32(&probe_idx);
                    let matched: Vec<i32> =
                        build_idx.iter().map(|&b| (b != EMPTY) as i32).collect();
                    let mut columns = left.columns;
                    columns.extend(side.data.iter().map(|c| gather_or_default(c, &build_idx)));
                    columns.push(ColumnData::I32(matched));
                    break Some(Batch::new(self.out_schema.clone(), columns)?);
                }
                JoinKind::Semi | JoinKind::Anti => {
                    let build_cols: Vec<&ColumnData> = side.data.iter().collect();
                    let want_match = self.kind == JoinKind::Semi;
                    let mut keep: Vec<u32> = Vec::new();
                    for (i, &h) in hashes.iter().enumerate() {
                        let any = side.table.candidates(h).any(|bi| {
                            keys_eq(
                                &build_cols,
                                &side.keys,
                                bi as usize,
                                &cols,
                                &self.probe_keys,
                                i,
                            )
                        });
                        if any == want_match {
                            keep.push(i as u32);
                        }
                    }
                    if keep.is_empty() {
                        continue;
                    }
                    break Some(batch.gather_u32(&keep));
                }
            }
        };
        self.counters.cum_time_ns += start.elapsed().as_nanos() as u64;
        self.counters.calls += 1;
        if let Some(b) = &out {
            self.counters.rows_out += b.len() as u64;
        }
        Ok(out)
    }

    fn profile(&self) -> OpProfile {
        self.counters.profile("HashJoin")
    }

    fn children(&self) -> Vec<&dyn Operator> {
        vec![self.probe.as_ref(), self.build.as_ref()]
    }
}

/// A shared, pre-built hash table for the "shared build side" optimization
/// (§5: "forgo splitting and build a shared hash table"): the build input is
/// drained once, and many probe threads join against clones of the Arc.
pub struct SharedBuild {
    pub schema: Arc<Schema>,
    side: Arc<BuildSide>,
}

impl SharedBuild {
    pub fn build(mut input: Box<dyn Operator>, keys: Vec<usize>) -> Result<SharedBuild> {
        let schema = input.schema();
        let side = BuildSide::drain(input.as_mut(), &keys)?;
        Ok(SharedBuild {
            schema,
            side: Arc::new(side),
        })
    }

    /// An operator probing this shared table (inner join).
    pub fn probe(
        self: &SharedBuild,
        probe: Box<dyn Operator>,
        probe_keys: Vec<usize>,
    ) -> SharedProbe {
        let out_schema = Arc::new(probe.schema().join(&self.schema));
        SharedProbe {
            probe,
            probe_keys,
            side: self.side.clone(),
            out_schema,
            counters: Counters::default(),
        }
    }
}

/// Probe operator over a [`SharedBuild`].
pub struct SharedProbe {
    probe: Box<dyn Operator>,
    probe_keys: Vec<usize>,
    side: Arc<BuildSide>,
    out_schema: Arc<Schema>,
    counters: Counters,
}

impl Operator for SharedProbe {
    fn schema(&self) -> Arc<Schema> {
        self.out_schema.clone()
    }

    fn next(&mut self) -> Result<Option<Batch>> {
        let start = std::time::Instant::now();
        let mut hashes = Vec::new();
        let out = loop {
            let Some(batch) = self.probe.next()? else {
                break None;
            };
            self.counters.rows_in += batch.len() as u64;
            let cols: Vec<&ColumnData> = batch.columns.iter().collect();
            hash_columns(&cols, &self.probe_keys, JOIN_SEED, &mut hashes);
            let (probe_idx, build_idx) = self.side.match_inner(&cols, &self.probe_keys, &hashes);
            if probe_idx.is_empty() {
                continue;
            }
            let left = batch.gather_u32(&probe_idx);
            let mut columns = left.columns;
            columns.extend(self.side.data.iter().map(|c| gather(c, &build_idx)));
            break Some(Batch::new(self.out_schema.clone(), columns)?);
        };
        self.counters.cum_time_ns += start.elapsed().as_nanos() as u64;
        self.counters.calls += 1;
        if let Some(b) = &out {
            self.counters.rows_out += b.len() as u64;
        }
        Ok(out)
    }

    fn profile(&self) -> OpProfile {
        self.counters.profile("SharedProbe")
    }

    fn children(&self) -> Vec<&dyn Operator> {
        vec![self.probe.as_ref()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operator::BatchSource;
    use vectorh_common::{Value, VECTOR_SIZE};

    fn table(name_prefix: &str, keys: Vec<i64>, payload: Vec<i64>) -> Box<dyn Operator> {
        let schema = Arc::new(Schema::of(&[
            (&format!("{name_prefix}_k"), DataType::I64),
            (&format!("{name_prefix}_v"), DataType::I64),
        ]));
        let batch = Batch::new(
            schema,
            vec![ColumnData::I64(keys), ColumnData::I64(payload)],
        )
        .unwrap();
        Box::new(BatchSource::from_batch(batch, VECTOR_SIZE))
    }

    #[test]
    fn inner_join_basic() {
        let probe = table("l", vec![1, 2, 3, 2], vec![10, 20, 30, 21]);
        let build = table("r", vec![2, 3, 4], vec![200, 300, 400]);
        let mut j = HashJoin::new(probe, build, vec![0], vec![0], JoinKind::Inner).unwrap();
        let mut rows = crate::batch::collect_rows(&mut j).unwrap();
        rows.sort_by_key(|r| (r[0].as_i64(), r[1].as_i64()));
        assert_eq!(rows.len(), 3);
        assert_eq!(
            rows[0],
            vec![
                Value::I64(2),
                Value::I64(20),
                Value::I64(2),
                Value::I64(200)
            ]
        );
        assert_eq!(
            rows[1],
            vec![
                Value::I64(2),
                Value::I64(21),
                Value::I64(2),
                Value::I64(200)
            ]
        );
        assert_eq!(
            rows[2],
            vec![
                Value::I64(3),
                Value::I64(30),
                Value::I64(3),
                Value::I64(300)
            ]
        );
    }

    #[test]
    fn inner_join_duplicate_build_keys() {
        let probe = table("l", vec![7], vec![1]);
        let build = table("r", vec![7, 7, 7], vec![1, 2, 3]);
        let mut j = HashJoin::new(probe, build, vec![0], vec![0], JoinKind::Inner).unwrap();
        let rows = crate::batch::collect_rows(&mut j).unwrap();
        assert_eq!(rows.len(), 3, "one probe row × three build rows");
    }

    #[test]
    fn left_outer_join_marks_matches() {
        let probe = table("c", vec![1, 2, 3], vec![0, 0, 0]);
        let build = table("o", vec![2], vec![99]);
        let mut j = HashJoin::new(probe, build, vec![0], vec![0], JoinKind::LeftOuter).unwrap();
        assert_eq!(*j.schema().names().last().unwrap(), "__matched");
        let mut rows = crate::batch::collect_rows(&mut j).unwrap();
        rows.sort_by_key(|r| r[0].as_i64());
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0][4], Value::I32(0)); // key 1: no match
        assert_eq!(rows[1][4], Value::I32(1)); // key 2: matched
        assert_eq!(rows[1][3], Value::I64(99));
        assert_eq!(rows[2][4], Value::I32(0));
    }

    #[test]
    fn semi_and_anti() {
        let probe = table("l", vec![1, 2, 3, 4], vec![1, 2, 3, 4]);
        let build = table("r", vec![2, 4, 9], vec![0, 0, 0]);
        let mut semi = HashJoin::new(
            table("l", vec![1, 2, 3, 4], vec![1, 2, 3, 4]),
            table("r", vec![2, 4, 9], vec![0, 0, 0]),
            vec![0],
            vec![0],
            JoinKind::Semi,
        )
        .unwrap();
        let rows = crate::batch::collect_rows(&mut semi).unwrap();
        assert_eq!(
            rows.iter()
                .map(|r| r[0].as_i64().unwrap())
                .collect::<Vec<_>>(),
            vec![2, 4]
        );
        assert_eq!(rows[0].len(), 2, "semi join keeps probe schema");

        let mut anti = HashJoin::new(probe, build, vec![0], vec![0], JoinKind::Anti).unwrap();
        let rows = crate::batch::collect_rows(&mut anti).unwrap();
        assert_eq!(
            rows.iter()
                .map(|r| r[0].as_i64().unwrap())
                .collect::<Vec<_>>(),
            vec![1, 3]
        );
    }

    #[test]
    fn string_keys_join() {
        let schema = Arc::new(Schema::of(&[("name", DataType::Str)]));
        let mk = |names: Vec<&str>| -> Box<dyn Operator> {
            let batch = Batch::new(
                schema.clone(),
                vec![ColumnData::Str(
                    names.into_iter().map(String::from).collect(),
                )],
            )
            .unwrap();
            Box::new(BatchSource::from_batch(batch, VECTOR_SIZE))
        };
        let mut j = HashJoin::new(
            mk(vec!["a", "b", "c"]),
            mk(vec!["b", "c", "d"]),
            vec![0],
            vec![0],
            JoinKind::Inner,
        )
        .unwrap();
        let rows = crate::batch::collect_rows(&mut j).unwrap();
        assert_eq!(rows.len(), 2);
    }

    #[test]
    fn multi_key_join() {
        let schema = Arc::new(Schema::of(&[("a", DataType::I64), ("b", DataType::I64)]));
        let mk = |pairs: Vec<(i64, i64)>| -> Box<dyn Operator> {
            let batch = Batch::new(
                schema.clone(),
                vec![
                    ColumnData::I64(pairs.iter().map(|p| p.0).collect()),
                    ColumnData::I64(pairs.iter().map(|p| p.1).collect()),
                ],
            )
            .unwrap();
            Box::new(BatchSource::from_batch(batch, VECTOR_SIZE))
        };
        let mut j = HashJoin::new(
            mk(vec![(1, 1), (1, 2), (2, 1)]),
            mk(vec![(1, 2), (2, 2)]),
            vec![0, 1],
            vec![0, 1],
            JoinKind::Inner,
        )
        .unwrap();
        let rows = crate::batch::collect_rows(&mut j).unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0][0], Value::I64(1));
        assert_eq!(rows[0][1], Value::I64(2));
    }

    #[test]
    fn empty_build_side() {
        let probe = table("l", vec![1, 2], vec![1, 2]);
        let build = table("r", vec![], vec![]);
        let mut j = HashJoin::new(probe, build, vec![0], vec![0], JoinKind::Inner).unwrap();
        assert!(crate::batch::collect_rows(&mut j).unwrap().is_empty());
    }

    #[test]
    fn cross_width_keys_i32_probe_i64_build() {
        // An I32 (date-layout) probe key against an I64 build key: the
        // normalized hash kernels must route equal values to the same chain.
        let pschema = Arc::new(Schema::of(&[("k", DataType::I32)]));
        let probe = Batch::new(pschema, vec![ColumnData::I32(vec![1, -2, 3])]).unwrap();
        let probe: Box<dyn Operator> = Box::new(BatchSource::from_batch(probe, VECTOR_SIZE));
        let bschema = Arc::new(Schema::of(&[("k", DataType::I64)]));
        let build = Batch::new(bschema, vec![ColumnData::I64(vec![-2, 3, 4])]).unwrap();
        let build: Box<dyn Operator> = Box::new(BatchSource::from_batch(build, VECTOR_SIZE));
        let mut j = HashJoin::new(probe, build, vec![0], vec![0], JoinKind::Inner).unwrap();
        let mut rows = crate::batch::collect_rows(&mut j).unwrap();
        rows.sort_by_key(|r| match r[0] {
            Value::I32(x) => x,
            _ => 0,
        });
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0][1], Value::I64(-2));
        assert_eq!(rows[1][1], Value::I64(3));
    }

    #[test]
    fn shared_build_probing() {
        let build = table("r", vec![1, 2], vec![100, 200]);
        let shared = SharedBuild::build(build, vec![0]).unwrap();
        // Two probes against the same shared table.
        for _ in 0..2 {
            let probe = table("l", vec![2, 3], vec![0, 0]);
            let mut p = shared.probe(probe, vec![0]);
            let rows = crate::batch::collect_rows(&mut p).unwrap();
            assert_eq!(rows.len(), 1);
            assert_eq!(rows[0][3], Value::I64(200));
        }
    }
}
