//! HashJoin: build/probe hash join with vectorized probing.
//!
//! The build side is drained into a columnar hash table; probe vectors are
//! hashed in bulk and matches gathered column-wise. Modes cover what TPC-H
//! needs: inner, left-outer, semi (EXISTS / IN) and anti (NOT EXISTS).
//!
//! Left-outer note: VectorH-rs columns are non-nullable (TPC-H data has no
//! NULLs), so unmatched probe rows get type-default build values and the
//! output carries a synthetic trailing `__matched` column (1/0). Aggregates
//! over the nullable side — e.g. Q13's `count(o_orderkey)` — become
//! `sum(__matched)`, which is the same number.

use std::collections::HashMap;
use std::sync::Arc;

use vectorh_common::util::{hash_bytes, hash_combine, hash_u64};
use vectorh_common::{ColumnData, DataType, Field, Result, Schema, Value, VhError};

use crate::batch::Batch;
use crate::operator::{Counters, OpProfile, Operator};

/// Join flavours.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinKind {
    Inner,
    /// Probe-preserving outer join (see module docs for NULL handling).
    LeftOuter,
    /// Emit probe rows with at least one match (probe schema only).
    Semi,
    /// Emit probe rows with no match (probe schema only).
    Anti,
}

/// Hash of row `i`'s key columns.
fn row_key_hash(cols: &[&ColumnData], keys: &[usize], i: usize) -> u64 {
    let mut h = 0xA5A5_5A5A_DEAD_BEEFu64;
    for &k in keys {
        let hk = match cols[k] {
            ColumnData::I32(v) => hash_u64(v[i] as u64),
            ColumnData::I64(v) => hash_u64(v[i] as u64),
            ColumnData::F64(v) => hash_u64(v[i].to_bits()),
            ColumnData::Str(v) => hash_bytes(v[i].as_bytes()),
        };
        h = hash_combine(h, hk);
    }
    h
}

/// Are the key columns of (a, i) and (b, j) equal?
fn keys_eq(
    a: &[&ColumnData],
    akeys: &[usize],
    i: usize,
    b: &[&ColumnData],
    bkeys: &[usize],
    j: usize,
) -> bool {
    akeys.iter().zip(bkeys).all(|(&ka, &kb)| match (a[ka], b[kb]) {
        (ColumnData::I32(x), ColumnData::I32(y)) => x[i] == y[j],
        (ColumnData::I64(x), ColumnData::I64(y)) => x[i] == y[j],
        (ColumnData::I32(x), ColumnData::I64(y)) => x[i] as i64 == y[j],
        (ColumnData::I64(x), ColumnData::I32(y)) => x[i] == y[j] as i64,
        (ColumnData::F64(x), ColumnData::F64(y)) => x[i] == y[j],
        (ColumnData::Str(x), ColumnData::Str(y)) => x[i] == y[j],
        _ => false,
    })
}

/// The hash join operator. Left child = probe, right child = build.
pub struct HashJoin {
    probe: Box<dyn Operator>,
    build: Box<dyn Operator>,
    probe_keys: Vec<usize>,
    build_keys: Vec<usize>,
    kind: JoinKind,
    built: bool,
    /// Build rows stored columnar, plus hash index: hash → row ids.
    build_data: Vec<ColumnData>,
    index: HashMap<u64, Vec<u32>>,
    out_schema: Arc<Schema>,
    counters: Counters,
}

impl HashJoin {
    pub fn new(
        probe: Box<dyn Operator>,
        build: Box<dyn Operator>,
        probe_keys: Vec<usize>,
        build_keys: Vec<usize>,
        kind: JoinKind,
    ) -> Result<HashJoin> {
        if probe_keys.len() != build_keys.len() || probe_keys.is_empty() {
            return Err(VhError::Exec("mismatched join keys".into()));
        }
        let out_schema = match kind {
            JoinKind::Inner => Arc::new(probe.schema().join(&build.schema())),
            JoinKind::LeftOuter => {
                let mut s = probe.schema().join(&build.schema());
                s = s.join(&Schema::new(vec![Field::new("__matched", DataType::I32)]));
                Arc::new(s)
            }
            JoinKind::Semi | JoinKind::Anti => probe.schema(),
        };
        Ok(HashJoin {
            probe,
            build,
            probe_keys,
            build_keys,
            kind,
            built: false,
            build_data: vec![],
            index: HashMap::new(),
            out_schema,
            counters: Counters::default(),
        })
    }

    fn build_table(&mut self) -> Result<()> {
        let schema = self.build.schema();
        self.build_data = schema.fields().iter().map(|f| ColumnData::new(f.dtype)).collect();
        while let Some(batch) = self.build.next()? {
            let base = self.build_data.first().map(|c| c.len()).unwrap_or(0);
            for (dst, src) in self.build_data.iter_mut().zip(&batch.columns) {
                dst.append(src)?;
            }
            let cols: Vec<&ColumnData> = batch.columns.iter().collect();
            for i in 0..batch.len() {
                let h = row_key_hash(&cols, &self.build_keys, i);
                self.index.entry(h).or_default().push((base + i) as u32);
            }
        }
        self.built = true;
        Ok(())
    }

    /// Default value used for unmatched build columns in left-outer mode.
    fn default_value(dt: DataType) -> Value {
        match dt {
            DataType::Str => Value::Str(String::new()),
            DataType::F64 => Value::F64(0.0),
            DataType::Date => Value::Date(0),
            DataType::Decimal { scale } => Value::Decimal(0, scale),
            _ => Value::I64(0),
        }
    }
}

impl Operator for HashJoin {
    fn schema(&self) -> Arc<Schema> {
        self.out_schema.clone()
    }

    fn next(&mut self) -> Result<Option<Batch>> {
        let start = std::time::Instant::now();
        if !self.built {
            self.build_table()?;
        }
        let out = loop {
            let Some(batch) = self.probe.next()? else { break None };
            self.counters.rows_in += batch.len() as u64;
            let cols: Vec<&ColumnData> = batch.columns.iter().collect();
            let build_cols: Vec<&ColumnData> = self.build_data.iter().collect();

            match self.kind {
                JoinKind::Inner => {
                    let mut probe_idx = Vec::new();
                    let mut build_idx = Vec::new();
                    for i in 0..batch.len() {
                        let h = row_key_hash(&cols, &self.probe_keys, i);
                        if let Some(cands) = self.index.get(&h) {
                            for &bi in cands {
                                if keys_eq(
                                    &build_cols,
                                    &self.build_keys,
                                    bi as usize,
                                    &cols,
                                    &self.probe_keys,
                                    i,
                                ) {
                                    probe_idx.push(i);
                                    build_idx.push(bi as usize);
                                }
                            }
                        }
                    }
                    if probe_idx.is_empty() {
                        continue;
                    }
                    let left = batch.gather(&probe_idx);
                    let right_cols: Vec<ColumnData> =
                        self.build_data.iter().map(|c| c.gather(&build_idx)).collect();
                    let mut columns = left.columns;
                    columns.extend(right_cols);
                    break Some(Batch::new(self.out_schema.clone(), columns)?);
                }
                JoinKind::LeftOuter => {
                    let mut probe_idx = Vec::new();
                    // Build side: either a real row id or "unmatched".
                    let mut build_idx: Vec<Option<usize>> = Vec::new();
                    for i in 0..batch.len() {
                        let h = row_key_hash(&cols, &self.probe_keys, i);
                        let mut any = false;
                        if let Some(cands) = self.index.get(&h) {
                            for &bi in cands {
                                if keys_eq(
                                    &build_cols,
                                    &self.build_keys,
                                    bi as usize,
                                    &cols,
                                    &self.probe_keys,
                                    i,
                                ) {
                                    probe_idx.push(i);
                                    build_idx.push(Some(bi as usize));
                                    any = true;
                                }
                            }
                        }
                        if !any {
                            probe_idx.push(i);
                            build_idx.push(None);
                        }
                    }
                    let left = batch.gather(&probe_idx);
                    let bschema = self.build.schema();
                    let mut right_cols: Vec<ColumnData> = bschema
                        .fields()
                        .iter()
                        .map(|f| ColumnData::with_capacity(f.dtype, build_idx.len()))
                        .collect();
                    let mut matched: Vec<i32> = Vec::with_capacity(build_idx.len());
                    for &bi in &build_idx {
                        match bi {
                            Some(b) => {
                                for (c, col) in right_cols.iter_mut().enumerate() {
                                    let v = self.build_data[c].value_at(b, bschema.dtype(c));
                                    col.push_value(&v)?;
                                }
                                matched.push(1);
                            }
                            None => {
                                for (c, col) in right_cols.iter_mut().enumerate() {
                                    col.push_value(&Self::default_value(bschema.dtype(c)))?;
                                }
                                matched.push(0);
                            }
                        }
                    }
                    let mut columns = left.columns;
                    columns.extend(right_cols);
                    columns.push(ColumnData::I32(matched));
                    break Some(Batch::new(self.out_schema.clone(), columns)?);
                }
                JoinKind::Semi | JoinKind::Anti => {
                    let want_match = self.kind == JoinKind::Semi;
                    let mut keep = Vec::new();
                    for i in 0..batch.len() {
                        let h = row_key_hash(&cols, &self.probe_keys, i);
                        let any = self.index.get(&h).map_or(false, |cands| {
                            cands.iter().any(|&bi| {
                                keys_eq(
                                    &build_cols,
                                    &self.build_keys,
                                    bi as usize,
                                    &cols,
                                    &self.probe_keys,
                                    i,
                                )
                            })
                        });
                        if any == want_match {
                            keep.push(i);
                        }
                    }
                    if keep.is_empty() {
                        continue;
                    }
                    break Some(batch.gather(&keep));
                }
            }
        };
        self.counters.cum_time_ns += start.elapsed().as_nanos() as u64;
        self.counters.calls += 1;
        if let Some(b) = &out {
            self.counters.rows_out += b.len() as u64;
        }
        Ok(out)
    }

    fn profile(&self) -> OpProfile {
        self.counters.profile("HashJoin")
    }

    fn children(&self) -> Vec<&dyn Operator> {
        vec![self.probe.as_ref(), self.build.as_ref()]
    }
}

/// A shared, pre-built hash table for the "shared build side" optimization
/// (§5: "forgo splitting and build a shared hash table"): the build input is
/// drained once, and many probe threads join against clones of the Arc.
pub struct SharedBuild {
    pub schema: Arc<Schema>,
    pub data: Arc<Vec<ColumnData>>,
    pub index: Arc<HashMap<u64, Vec<u32>>>,
    pub keys: Vec<usize>,
}

impl SharedBuild {
    pub fn build(mut input: Box<dyn Operator>, keys: Vec<usize>) -> Result<SharedBuild> {
        let schema = input.schema();
        let mut data: Vec<ColumnData> =
            schema.fields().iter().map(|f| ColumnData::new(f.dtype)).collect();
        let mut index: HashMap<u64, Vec<u32>> = HashMap::new();
        while let Some(batch) = input.next()? {
            let base = data.first().map(|c| c.len()).unwrap_or(0);
            for (dst, src) in data.iter_mut().zip(&batch.columns) {
                dst.append(src)?;
            }
            let cols: Vec<&ColumnData> = batch.columns.iter().collect();
            for i in 0..batch.len() {
                let h = row_key_hash(&cols, &keys, i);
                index.entry(h).or_default().push((base + i) as u32);
            }
        }
        Ok(SharedBuild { schema, data: Arc::new(data), index: Arc::new(index), keys })
    }

    /// An operator probing this shared table (inner join).
    pub fn probe(self: &SharedBuild, probe: Box<dyn Operator>, probe_keys: Vec<usize>) -> SharedProbe {
        SharedProbe {
            probe,
            probe_keys,
            build_schema: self.schema.clone(),
            data: self.data.clone(),
            index: self.index.clone(),
            build_keys: self.keys.clone(),
            out_schema: Arc::new(Schema::new(vec![])), // set below
            counters: Counters::default(),
        }
        .finish_schema()
    }
}

/// Probe operator over a [`SharedBuild`].
pub struct SharedProbe {
    probe: Box<dyn Operator>,
    probe_keys: Vec<usize>,
    build_schema: Arc<Schema>,
    data: Arc<Vec<ColumnData>>,
    index: Arc<HashMap<u64, Vec<u32>>>,
    build_keys: Vec<usize>,
    out_schema: Arc<Schema>,
    counters: Counters,
}

impl SharedProbe {
    fn finish_schema(mut self) -> SharedProbe {
        self.out_schema = Arc::new(self.probe.schema().join(&self.build_schema));
        self
    }
}

impl Operator for SharedProbe {
    fn schema(&self) -> Arc<Schema> {
        self.out_schema.clone()
    }

    fn next(&mut self) -> Result<Option<Batch>> {
        let start = std::time::Instant::now();
        let out = loop {
            let Some(batch) = self.probe.next()? else { break None };
            self.counters.rows_in += batch.len() as u64;
            let cols: Vec<&ColumnData> = batch.columns.iter().collect();
            let build_cols: Vec<&ColumnData> = self.data.iter().collect();
            let mut probe_idx = Vec::new();
            let mut build_idx = Vec::new();
            for i in 0..batch.len() {
                let h = row_key_hash(&cols, &self.probe_keys, i);
                if let Some(cands) = self.index.get(&h) {
                    for &bi in cands {
                        if keys_eq(&build_cols, &self.build_keys, bi as usize, &cols, &self.probe_keys, i) {
                            probe_idx.push(i);
                            build_idx.push(bi as usize);
                        }
                    }
                }
            }
            if probe_idx.is_empty() {
                continue;
            }
            let left = batch.gather(&probe_idx);
            let right: Vec<ColumnData> = self.data.iter().map(|c| c.gather(&build_idx)).collect();
            let mut columns = left.columns;
            columns.extend(right);
            break Some(Batch::new(self.out_schema.clone(), columns)?);
        };
        self.counters.cum_time_ns += start.elapsed().as_nanos() as u64;
        self.counters.calls += 1;
        if let Some(b) = &out {
            self.counters.rows_out += b.len() as u64;
        }
        Ok(out)
    }

    fn profile(&self) -> OpProfile {
        self.counters.profile("SharedProbe")
    }

    fn children(&self) -> Vec<&dyn Operator> {
        vec![self.probe.as_ref()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operator::BatchSource;
    use vectorh_common::VECTOR_SIZE;

    fn table(name_prefix: &str, keys: Vec<i64>, payload: Vec<i64>) -> Box<dyn Operator> {
        let schema = Arc::new(Schema::of(&[
            (&format!("{name_prefix}_k"), DataType::I64),
            (&format!("{name_prefix}_v"), DataType::I64),
        ]));
        let batch = Batch::new(
            schema,
            vec![ColumnData::I64(keys), ColumnData::I64(payload)],
        )
        .unwrap();
        Box::new(BatchSource::from_batch(batch, VECTOR_SIZE))
    }

    #[test]
    fn inner_join_basic() {
        let probe = table("l", vec![1, 2, 3, 2], vec![10, 20, 30, 21]);
        let build = table("r", vec![2, 3, 4], vec![200, 300, 400]);
        let mut j = HashJoin::new(probe, build, vec![0], vec![0], JoinKind::Inner).unwrap();
        let mut rows = crate::batch::collect_rows(&mut j).unwrap();
        rows.sort_by_key(|r| (r[0].as_i64(), r[1].as_i64()));
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0], vec![Value::I64(2), Value::I64(20), Value::I64(2), Value::I64(200)]);
        assert_eq!(rows[1], vec![Value::I64(2), Value::I64(21), Value::I64(2), Value::I64(200)]);
        assert_eq!(rows[2], vec![Value::I64(3), Value::I64(30), Value::I64(3), Value::I64(300)]);
    }

    #[test]
    fn inner_join_duplicate_build_keys() {
        let probe = table("l", vec![7], vec![1]);
        let build = table("r", vec![7, 7, 7], vec![1, 2, 3]);
        let mut j = HashJoin::new(probe, build, vec![0], vec![0], JoinKind::Inner).unwrap();
        let rows = crate::batch::collect_rows(&mut j).unwrap();
        assert_eq!(rows.len(), 3, "one probe row × three build rows");
    }

    #[test]
    fn left_outer_join_marks_matches() {
        let probe = table("c", vec![1, 2, 3], vec![0, 0, 0]);
        let build = table("o", vec![2], vec![99]);
        let mut j = HashJoin::new(probe, build, vec![0], vec![0], JoinKind::LeftOuter).unwrap();
        assert_eq!(*j.schema().names().last().unwrap(), "__matched");
        let mut rows = crate::batch::collect_rows(&mut j).unwrap();
        rows.sort_by_key(|r| r[0].as_i64());
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0][4], Value::I32(0)); // key 1: no match
        assert_eq!(rows[1][4], Value::I32(1)); // key 2: matched
        assert_eq!(rows[1][3], Value::I64(99));
        assert_eq!(rows[2][4], Value::I32(0));
    }

    #[test]
    fn semi_and_anti() {
        let probe = table("l", vec![1, 2, 3, 4], vec![1, 2, 3, 4]);
        let build = table("r", vec![2, 4, 9], vec![0, 0, 0]);
        let mut semi = HashJoin::new(
            table("l", vec![1, 2, 3, 4], vec![1, 2, 3, 4]),
            table("r", vec![2, 4, 9], vec![0, 0, 0]),
            vec![0],
            vec![0],
            JoinKind::Semi,
        )
        .unwrap();
        let rows = crate::batch::collect_rows(&mut semi).unwrap();
        assert_eq!(
            rows.iter().map(|r| r[0].as_i64().unwrap()).collect::<Vec<_>>(),
            vec![2, 4]
        );
        assert_eq!(rows[0].len(), 2, "semi join keeps probe schema");

        let mut anti = HashJoin::new(probe, build, vec![0], vec![0], JoinKind::Anti).unwrap();
        let rows = crate::batch::collect_rows(&mut anti).unwrap();
        assert_eq!(
            rows.iter().map(|r| r[0].as_i64().unwrap()).collect::<Vec<_>>(),
            vec![1, 3]
        );
    }

    #[test]
    fn string_keys_join() {
        let schema = Arc::new(Schema::of(&[("name", DataType::Str)]));
        let mk = |names: Vec<&str>| -> Box<dyn Operator> {
            let batch = Batch::new(
                schema.clone(),
                vec![ColumnData::Str(names.into_iter().map(String::from).collect())],
            )
            .unwrap();
            Box::new(BatchSource::from_batch(batch, VECTOR_SIZE))
        };
        let mut j = HashJoin::new(
            mk(vec!["a", "b", "c"]),
            mk(vec!["b", "c", "d"]),
            vec![0],
            vec![0],
            JoinKind::Inner,
        )
        .unwrap();
        let rows = crate::batch::collect_rows(&mut j).unwrap();
        assert_eq!(rows.len(), 2);
    }

    #[test]
    fn multi_key_join() {
        let schema = Arc::new(Schema::of(&[("a", DataType::I64), ("b", DataType::I64)]));
        let mk = |pairs: Vec<(i64, i64)>| -> Box<dyn Operator> {
            let batch = Batch::new(
                schema.clone(),
                vec![
                    ColumnData::I64(pairs.iter().map(|p| p.0).collect()),
                    ColumnData::I64(pairs.iter().map(|p| p.1).collect()),
                ],
            )
            .unwrap();
            Box::new(BatchSource::from_batch(batch, VECTOR_SIZE))
        };
        let mut j = HashJoin::new(
            mk(vec![(1, 1), (1, 2), (2, 1)]),
            mk(vec![(1, 2), (2, 2)]),
            vec![0, 1],
            vec![0, 1],
            JoinKind::Inner,
        )
        .unwrap();
        let rows = crate::batch::collect_rows(&mut j).unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0][0], Value::I64(1));
        assert_eq!(rows[0][1], Value::I64(2));
    }

    #[test]
    fn empty_build_side() {
        let probe = table("l", vec![1, 2], vec![1, 2]);
        let build = table("r", vec![], vec![]);
        let mut j = HashJoin::new(probe, build, vec![0], vec![0], JoinKind::Inner).unwrap();
        assert!(crate::batch::collect_rows(&mut j).unwrap().is_empty());
    }

    #[test]
    fn shared_build_probing() {
        let build = table("r", vec![1, 2], vec![100, 200]);
        let shared = SharedBuild::build(build, vec![0]).unwrap();
        // Two probes against the same shared table.
        for _ in 0..2 {
            let probe = table("l", vec![2, 3], vec![0, 0]);
            let mut p = shared.probe(probe, vec![0]);
            let rows = crate::batch::collect_rows(&mut p).unwrap();
            assert_eq!(rows.len(), 1);
            assert_eq!(rows[0][3], Value::I64(200));
        }
    }
}
