//! Batches: the unit of data flow between operators.
//!
//! A [`Batch`] bundles equal-length [`ColumnData`] buffers with the schema
//! describing them. Operators exchange batches of at most
//! [`VECTOR_SIZE`](vectorh_common::VECTOR_SIZE) rows; the column buffers of
//! a batch are the "vectors" of the vectorized execution model.

use std::sync::Arc;

use vectorh_common::{ColumnData, Result, Schema, Value, VhError};

/// A bundle of equal-length column vectors.
#[derive(Debug, Clone)]
pub struct Batch {
    pub schema: Arc<Schema>,
    pub columns: Vec<ColumnData>,
    len: usize,
}

impl Batch {
    /// Build a batch; all columns must share one length and match the schema
    /// width.
    pub fn new(schema: Arc<Schema>, columns: Vec<ColumnData>) -> Result<Batch> {
        if columns.len() != schema.len() {
            return Err(VhError::Exec(format!(
                "batch has {} columns, schema has {}",
                columns.len(),
                schema.len()
            )));
        }
        let len = columns.first().map(|c| c.len()).unwrap_or(0);
        if columns.iter().any(|c| c.len() != len) {
            return Err(VhError::Exec("ragged batch".into()));
        }
        Ok(Batch {
            schema,
            columns,
            len,
        })
    }

    /// An empty batch of the given schema.
    pub fn empty(schema: Arc<Schema>) -> Batch {
        let columns = schema
            .fields()
            .iter()
            .map(|f| ColumnData::new(f.dtype))
            .collect();
        Batch {
            schema,
            columns,
            len: 0,
        }
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    pub fn column(&self, idx: usize) -> &ColumnData {
        &self.columns[idx]
    }

    /// Read a full row as values (row-at-a-time escape hatch; used by the
    /// row-engine baseline and result collection, never in vector kernels).
    pub fn row(&self, idx: usize) -> Vec<Value> {
        self.columns
            .iter()
            .enumerate()
            .map(|(c, col)| col.value_at(idx, self.schema.dtype(c)))
            .collect()
    }

    /// Keep only the rows at the given positions.
    pub fn gather(&self, positions: &[usize]) -> Batch {
        Batch {
            schema: self.schema.clone(),
            columns: self.columns.iter().map(|c| c.gather(positions)).collect(),
            len: positions.len(),
        }
    }

    /// Keep only the rows at the given `u32` positions (kernel row ids).
    pub fn gather_u32(&self, positions: &[u32]) -> Batch {
        Batch {
            schema: self.schema.clone(),
            columns: crate::kernels::gather::gather_columns(&self.columns, positions),
            len: positions.len(),
        }
    }

    /// Subrange `[from, to)`.
    pub fn slice(&self, from: usize, to: usize) -> Batch {
        Batch {
            schema: self.schema.clone(),
            columns: self.columns.iter().map(|c| c.slice(from, to)).collect(),
            len: to - from,
        }
    }

    /// Append all rows of `other` (schemas must match).
    pub fn append(&mut self, other: &Batch) -> Result<()> {
        for (a, b) in self.columns.iter_mut().zip(&other.columns) {
            a.append(b)?;
        }
        self.len += other.len;
        Ok(())
    }

    /// Concatenate side-by-side (join output): schema and columns of `self`
    /// followed by `other`'s. Lengths must match.
    pub fn zip(&self, other: &Batch) -> Result<Batch> {
        if self.len != other.len {
            return Err(VhError::Exec("zip of unequal-length batches".into()));
        }
        let schema = Arc::new(self.schema.join(&other.schema));
        let mut columns = self.columns.clone();
        columns.extend(other.columns.iter().cloned());
        Ok(Batch {
            schema,
            columns,
            len: self.len,
        })
    }

    /// Materialize every row (testing / result collection).
    pub fn rows(&self) -> Vec<Vec<Value>> {
        (0..self.len).map(|i| self.row(i)).collect()
    }
}

/// Order-sensitive 64-bit fingerprint of a result set: FNV-1a over a
/// canonical tagged byte encoding of every value, with row boundaries
/// folded in. Two result sets fingerprint equal iff their encodings are
/// byte-for-byte identical — this is what multi-process examples compare
/// across process boundaries, where shipping whole result sets through a
/// control pipe would drown the protocol.
pub fn fingerprint_rows(rows: &[Vec<Value>]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(PRIME);
        }
    };
    for row in rows {
        eat(&[0xFE]); // row boundary: [[1],[2]] != [[1,2]]
        for v in row {
            match v {
                Value::I32(x) => {
                    eat(&[1]);
                    eat(&x.to_le_bytes());
                }
                Value::I64(x) => {
                    eat(&[2]);
                    eat(&x.to_le_bytes());
                }
                Value::Decimal(m, s) => {
                    eat(&[3, *s]);
                    eat(&m.to_le_bytes());
                }
                Value::Date(d) => {
                    eat(&[4]);
                    eat(&d.to_le_bytes());
                }
                Value::F64(x) => {
                    eat(&[5]);
                    eat(&x.to_bits().to_le_bytes());
                }
                Value::Str(s) => {
                    eat(&[6]);
                    eat(&(s.len() as u32).to_le_bytes());
                    eat(s.as_bytes());
                }
                Value::Null => eat(&[7]),
            }
        }
    }
    h
}

/// Collect an operator's full output as rows (drives the tree to completion).
pub fn collect_rows(op: &mut dyn crate::operator::Operator) -> Result<Vec<Vec<Value>>> {
    let mut out = Vec::new();
    while let Some(batch) = op.next()? {
        out.extend(batch.rows());
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vectorh_common::DataType;

    fn schema() -> Arc<Schema> {
        Arc::new(Schema::of(&[("a", DataType::I64), ("s", DataType::Str)]))
    }

    fn batch() -> Batch {
        Batch::new(
            schema(),
            vec![
                ColumnData::I64(vec![1, 2, 3]),
                ColumnData::Str(vec!["x".into(), "y".into(), "z".into()]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn construction_checks() {
        assert!(Batch::new(schema(), vec![ColumnData::I64(vec![1])]).is_err());
        assert!(Batch::new(
            schema(),
            vec![ColumnData::I64(vec![1]), ColumnData::Str(vec![])]
        )
        .is_err());
        assert_eq!(batch().len(), 3);
        assert!(Batch::empty(schema()).is_empty());
    }

    #[test]
    fn row_access() {
        let b = batch();
        assert_eq!(b.row(1), vec![Value::I64(2), Value::Str("y".into())]);
    }

    #[test]
    fn gather_and_slice() {
        let b = batch();
        let g = b.gather(&[2, 0]);
        assert_eq!(
            g.rows(),
            vec![
                vec![Value::I64(3), Value::Str("z".into())],
                vec![Value::I64(1), Value::Str("x".into())],
            ]
        );
        let s = b.slice(1, 3);
        assert_eq!(s.len(), 2);
        assert_eq!(s.row(0)[0], Value::I64(2));
    }

    #[test]
    fn fingerprint_separates_shape_and_content() {
        let a = vec![vec![Value::I64(1), Value::Str("x".into())]];
        assert_eq!(fingerprint_rows(&a), fingerprint_rows(&a.clone()));
        // Same scalars, different row shape.
        let flat = vec![vec![Value::I64(1)], vec![Value::Str("x".into())]];
        assert_ne!(fingerprint_rows(&a), fingerprint_rows(&flat));
        // Same bit pattern, different type tag.
        assert_ne!(
            fingerprint_rows(&[vec![Value::I32(7)]]),
            fingerprint_rows(&[vec![Value::I64(7)]])
        );
        // Order-sensitive (callers canonicalize first).
        let ab = vec![vec![Value::I64(1)], vec![Value::I64(2)]];
        let ba = vec![vec![Value::I64(2)], vec![Value::I64(1)]];
        assert_ne!(fingerprint_rows(&ab), fingerprint_rows(&ba));
        assert_ne!(
            fingerprint_rows(&[vec![Value::Null]]),
            fingerprint_rows(&[])
        );
    }

    #[test]
    fn append_and_zip() {
        let mut a = batch();
        let b = batch();
        a.append(&b).unwrap();
        assert_eq!(a.len(), 6);

        let left = batch();
        let right = batch();
        let z = left.zip(&right).unwrap();
        assert_eq!(z.schema.len(), 4);
        assert_eq!(z.len(), 3);
        assert_eq!(z.row(0).len(), 4);
    }
}
