//! Batches: the unit of data flow between operators.
//!
//! A [`Batch`] bundles equal-length [`ColumnData`] buffers with the schema
//! describing them. Operators exchange batches of at most
//! [`VECTOR_SIZE`](vectorh_common::VECTOR_SIZE) rows; the column buffers of
//! a batch are the "vectors" of the vectorized execution model.

use std::sync::Arc;

use vectorh_common::{ColumnData, Result, Schema, Value, VhError};

/// A bundle of equal-length column vectors.
#[derive(Debug, Clone)]
pub struct Batch {
    pub schema: Arc<Schema>,
    pub columns: Vec<ColumnData>,
    len: usize,
}

impl Batch {
    /// Build a batch; all columns must share one length and match the schema
    /// width.
    pub fn new(schema: Arc<Schema>, columns: Vec<ColumnData>) -> Result<Batch> {
        if columns.len() != schema.len() {
            return Err(VhError::Exec(format!(
                "batch has {} columns, schema has {}",
                columns.len(),
                schema.len()
            )));
        }
        let len = columns.first().map(|c| c.len()).unwrap_or(0);
        if columns.iter().any(|c| c.len() != len) {
            return Err(VhError::Exec("ragged batch".into()));
        }
        Ok(Batch {
            schema,
            columns,
            len,
        })
    }

    /// An empty batch of the given schema.
    pub fn empty(schema: Arc<Schema>) -> Batch {
        let columns = schema
            .fields()
            .iter()
            .map(|f| ColumnData::new(f.dtype))
            .collect();
        Batch {
            schema,
            columns,
            len: 0,
        }
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    pub fn column(&self, idx: usize) -> &ColumnData {
        &self.columns[idx]
    }

    /// Read a full row as values (row-at-a-time escape hatch; used by the
    /// row-engine baseline and result collection, never in vector kernels).
    pub fn row(&self, idx: usize) -> Vec<Value> {
        self.columns
            .iter()
            .enumerate()
            .map(|(c, col)| col.value_at(idx, self.schema.dtype(c)))
            .collect()
    }

    /// Keep only the rows at the given positions.
    pub fn gather(&self, positions: &[usize]) -> Batch {
        Batch {
            schema: self.schema.clone(),
            columns: self.columns.iter().map(|c| c.gather(positions)).collect(),
            len: positions.len(),
        }
    }

    /// Keep only the rows at the given `u32` positions (kernel row ids).
    pub fn gather_u32(&self, positions: &[u32]) -> Batch {
        Batch {
            schema: self.schema.clone(),
            columns: crate::kernels::gather::gather_columns(&self.columns, positions),
            len: positions.len(),
        }
    }

    /// Subrange `[from, to)`.
    pub fn slice(&self, from: usize, to: usize) -> Batch {
        Batch {
            schema: self.schema.clone(),
            columns: self.columns.iter().map(|c| c.slice(from, to)).collect(),
            len: to - from,
        }
    }

    /// Append all rows of `other` (schemas must match).
    pub fn append(&mut self, other: &Batch) -> Result<()> {
        for (a, b) in self.columns.iter_mut().zip(&other.columns) {
            a.append(b)?;
        }
        self.len += other.len;
        Ok(())
    }

    /// Concatenate side-by-side (join output): schema and columns of `self`
    /// followed by `other`'s. Lengths must match.
    pub fn zip(&self, other: &Batch) -> Result<Batch> {
        if self.len != other.len {
            return Err(VhError::Exec("zip of unequal-length batches".into()));
        }
        let schema = Arc::new(self.schema.join(&other.schema));
        let mut columns = self.columns.clone();
        columns.extend(other.columns.iter().cloned());
        Ok(Batch {
            schema,
            columns,
            len: self.len,
        })
    }

    /// Materialize every row (testing / result collection).
    pub fn rows(&self) -> Vec<Vec<Value>> {
        (0..self.len).map(|i| self.row(i)).collect()
    }
}

/// Collect an operator's full output as rows (drives the tree to completion).
pub fn collect_rows(op: &mut dyn crate::operator::Operator) -> Result<Vec<Vec<Value>>> {
    let mut out = Vec::new();
    while let Some(batch) = op.next()? {
        out.extend(batch.rows());
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vectorh_common::DataType;

    fn schema() -> Arc<Schema> {
        Arc::new(Schema::of(&[("a", DataType::I64), ("s", DataType::Str)]))
    }

    fn batch() -> Batch {
        Batch::new(
            schema(),
            vec![
                ColumnData::I64(vec![1, 2, 3]),
                ColumnData::Str(vec!["x".into(), "y".into(), "z".into()]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn construction_checks() {
        assert!(Batch::new(schema(), vec![ColumnData::I64(vec![1])]).is_err());
        assert!(Batch::new(
            schema(),
            vec![ColumnData::I64(vec![1]), ColumnData::Str(vec![])]
        )
        .is_err());
        assert_eq!(batch().len(), 3);
        assert!(Batch::empty(schema()).is_empty());
    }

    #[test]
    fn row_access() {
        let b = batch();
        assert_eq!(b.row(1), vec![Value::I64(2), Value::Str("y".into())]);
    }

    #[test]
    fn gather_and_slice() {
        let b = batch();
        let g = b.gather(&[2, 0]);
        assert_eq!(
            g.rows(),
            vec![
                vec![Value::I64(3), Value::Str("z".into())],
                vec![Value::I64(1), Value::Str("x".into())],
            ]
        );
        let s = b.slice(1, 3);
        assert_eq!(s.len(), 2);
        assert_eq!(s.row(0)[0], Value::I64(2));
    }

    #[test]
    fn append_and_zip() {
        let mut a = batch();
        let b = batch();
        a.append(&b).unwrap();
        assert_eq!(a.len(), 6);

        let left = batch();
        let right = batch();
        let z = left.zip(&right).unwrap();
        assert_eq!(z.schema.len(), 4);
        assert_eq!(z.len(), 3);
        assert_eq!(z.row(0).len(), 4);
    }
}
