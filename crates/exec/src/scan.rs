//! MScan: the merging table scan.
//!
//! Reads a partition's chunk files column-wise, *skips* chunks the MinMax
//! index rules out (saving both IO and decompression CPU, §2), and merges in
//! PDT differences positionally while streaming (§2/§6: merging "happens
//! for each and every query" and must be cheap). The PDT influence arrives
//! as a pre-composed [`MergeStep`] plan in stable coordinates, so the hot
//! path of an update-free scan is a straight run of `CopyStable` block
//! copies.
//!
//! Pruning correctness with updates relies on the §6 MinMax maintenance
//! rules: the engine widens chunk stats when inserts/modifies land in a
//! chunk's range, so a pruned chunk provably contains no matching rows; the
//! plan rows of pruned chunks are therefore dropped without IO.

use std::sync::Arc;

use vectorh_common::{ColumnData, Result, Schema, VhError, VECTOR_SIZE};
use vectorh_pdt::MergeStep;
use vectorh_storage::PartitionStore;

use crate::batch::Batch;
use crate::operator::{Counters, OpProfile, Operator};

/// The merging scan operator.
pub struct MScan {
    store: PartitionStore,
    /// Projected column indexes (into the table schema).
    cols: Vec<usize>,
    /// Table-column → projected-position map.
    col_pos: Vec<Option<usize>>,
    /// Chunk-keep flags from MinMax pruning.
    keep: Vec<bool>,
    /// Merge plan in stable coordinates (remaining work at the front).
    plan: std::collections::VecDeque<MergeStep>,
    /// Progress inside the front CopyStable/SkipStable step.
    step_off: u64,
    /// (sid_base, n_rows) per chunk.
    chunk_ranges: Vec<(u64, u64)>,
    /// Cached data of the chunk currently being copied.
    cached_chunk: Option<(usize, Vec<ColumnData>)>,
    reader: Option<vectorh_common::NodeId>,
    out_schema: Arc<Schema>,
    counters: Counters,
    done: bool,
}

impl MScan {
    /// Create a scan over `store` projecting `cols`, applying `plan`
    /// (typically `Layers::merged_plan()`); `keep[chunk]` marks chunks that
    /// survived MinMax pruning (`vec![true; n]` to disable skipping).
    pub fn new(
        store: PartitionStore,
        cols: Vec<usize>,
        keep: Vec<bool>,
        plan: Vec<MergeStep>,
        reader: Option<vectorh_common::NodeId>,
    ) -> Result<MScan> {
        if keep.len() != store.n_chunks() {
            return Err(VhError::Exec(format!(
                "keep flags ({}) != chunks ({})",
                keep.len(),
                store.n_chunks()
            )));
        }
        let out_schema = Arc::new(store.schema().project(&cols));
        let mut col_pos = vec![None; store.schema().len()];
        for (p, &c) in cols.iter().enumerate() {
            col_pos[c] = Some(p);
        }
        let chunk_ranges = (0..store.n_chunks())
            .map(|i| (store.chunk_sid_base(i), store.chunk_meta(i).n_rows as u64))
            .collect();
        Ok(MScan {
            store,
            cols,
            col_pos,
            keep,
            plan: plan.into(),
            step_off: 0,
            chunk_ranges,
            cached_chunk: None,
            reader,
            out_schema,
            counters: Counters::default(),
            done: false,
        })
    }

    /// Convenience: scan everything with no updates pending.
    pub fn full(
        store: PartitionStore,
        cols: Vec<usize>,
        reader: Option<vectorh_common::NodeId>,
    ) -> Result<MScan> {
        let n = store.row_count();
        let keep = vec![true; store.n_chunks()];
        let plan = if n > 0 {
            vec![MergeStep::CopyStable {
                from_sid: 0,
                count: n,
            }]
        } else {
            vec![]
        };
        MScan::new(store, cols, keep, plan, reader)
    }

    fn chunk_of_sid(&self, sid: u64) -> Option<usize> {
        self.chunk_ranges
            .iter()
            .position(|&(base, rows)| sid >= base && sid < base + rows)
    }

    fn load_chunk(&mut self, idx: usize) -> Result<&Vec<ColumnData>> {
        let stale = match &self.cached_chunk {
            Some((i, _)) => *i != idx,
            None => true,
        };
        if stale {
            let data = self.store.read_columns(idx, &self.cols, self.reader)?;
            self.cached_chunk = Some((idx, data));
        }
        Ok(&self.cached_chunk.as_ref().unwrap().1)
    }

    /// Copy rows `[sid, sid+n)` (all within one chunk) into the builders.
    fn copy_rows(
        &mut self,
        chunk: usize,
        sid: u64,
        n: u64,
        builders: &mut [ColumnData],
    ) -> Result<()> {
        let base = self.chunk_ranges[chunk].0;
        let from = (sid - base) as usize;
        let to = from + n as usize;
        let data = self.load_chunk(chunk)?;
        let slices: Vec<ColumnData> = data.iter().map(|c| c.slice(from, to)).collect();
        for (b, s) in builders.iter_mut().zip(&slices) {
            b.append(s)?;
        }
        Ok(())
    }

    /// Emit one full-width row given as values, projected.
    fn emit_row(
        &self,
        values: &[vectorh_common::Value],
        builders: &mut [ColumnData],
    ) -> Result<()> {
        for (p, &c) in self.cols.iter().enumerate() {
            builders[p].push_value(&values[c])?;
        }
        Ok(())
    }
}

impl Operator for MScan {
    fn schema(&self) -> Arc<Schema> {
        self.out_schema.clone()
    }

    fn next(&mut self) -> Result<Option<Batch>> {
        if self.done {
            return Ok(None);
        }
        // Split borrows: counters tracked manually to keep &mut self free.
        let start = std::time::Instant::now();
        let mut builders: Vec<ColumnData> = self
            .out_schema
            .fields()
            .iter()
            .map(|f| ColumnData::with_capacity(f.dtype, VECTOR_SIZE))
            .collect();
        let mut produced = 0usize;

        'fill: while produced < VECTOR_SIZE {
            let Some(step) = self.plan.front().cloned() else {
                self.done = true;
                break 'fill;
            };
            match step {
                MergeStep::SkipStable { .. } => {
                    self.plan.pop_front();
                }
                MergeStep::EmitInsert { ref values, .. } => {
                    self.emit_row(values, &mut builders)?;
                    produced += 1;
                    self.counters.rows_in += 1;
                    self.plan.pop_front();
                }
                MergeStep::ModifyStable { sid, ref mods } => {
                    if let Some(chunk) = self.chunk_of_sid(sid) {
                        if self.keep[chunk] {
                            // Materialize the projected row, then patch.
                            let base = self.chunk_ranges[chunk].0;
                            let at = (sid - base) as usize;
                            let out_schema = self.out_schema.clone();
                            let data = self.load_chunk(chunk)?;
                            let mut row: Vec<vectorh_common::Value> = data
                                .iter()
                                .enumerate()
                                .map(|(p, col)| col.value_at(at, out_schema.dtype(p)))
                                .collect();
                            for (c, v) in mods {
                                if let Some(p) = self.col_pos[*c] {
                                    row[p] = v.clone();
                                }
                            }
                            for (p, b) in builders.iter_mut().enumerate() {
                                b.push_value(&row[p])?;
                            }
                            produced += 1;
                            self.counters.rows_in += 1;
                        }
                    }
                    self.plan.pop_front();
                }
                MergeStep::CopyStable { from_sid, count } => {
                    let sid = from_sid + self.step_off;
                    if self.step_off == count {
                        self.plan.pop_front();
                        self.step_off = 0;
                        continue 'fill;
                    }
                    let Some(chunk) = self.chunk_of_sid(sid) else {
                        return Err(VhError::Exec(format!("sid {sid} outside all chunks")));
                    };
                    let (base, rows) = self.chunk_ranges[chunk];
                    let chunk_left = base + rows - sid;
                    let step_left = count - self.step_off;
                    let take = chunk_left.min(step_left);
                    if self.keep[chunk] {
                        let cap_left = (VECTOR_SIZE - produced) as u64;
                        let take = take.min(cap_left);
                        self.copy_rows(chunk, sid, take, &mut builders)?;
                        produced += take as usize;
                        self.counters.rows_in += take;
                        self.step_off += take;
                    } else {
                        // Pruned chunk: drop the rows without IO.
                        self.step_off += take;
                    }
                    if self.step_off == count {
                        self.plan.pop_front();
                        self.step_off = 0;
                    }
                }
            }
        }

        self.counters.cum_time_ns += start.elapsed().as_nanos() as u64;
        self.counters.calls += 1;
        if produced == 0 {
            self.done = true;
            return Ok(None);
        }
        self.counters.rows_out += produced as u64;
        Ok(Some(Batch::new(self.out_schema.clone(), builders)?))
    }

    fn profile(&self) -> OpProfile {
        self.counters.profile("MScan")
    }

    fn children(&self) -> Vec<&dyn Operator> {
        vec![]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc as StdArc;
    use vectorh_common::{DataType, NodeId, Value};
    use vectorh_pdt::tree::Pdt;
    use vectorh_pdt::Layers;
    use vectorh_simhdfs::{DefaultPolicy, SimHdfs, SimHdfsConfig, StoreRef};
    use vectorh_storage::minmax::PruneOp;
    use vectorh_storage::StorageConfig;

    fn store(rows_per_chunk: usize, n: i64) -> PartitionStore {
        let fs: StoreRef = StdArc::new(SimHdfs::new(
            3,
            SimHdfsConfig {
                block_size: 1024,
                default_replication: 2,
            },
            StdArc::new(DefaultPolicy::new(7)),
        ));
        let schema = Schema::of(&[("k", DataType::I64), ("tag", DataType::Str)]);
        let mut s = PartitionStore::new(fs, "/db/t/p0/", schema, StorageConfig { rows_per_chunk });
        let cols = vec![
            ColumnData::I64((0..n).collect()),
            ColumnData::Str((0..n).map(|i| format!("t{}", i % 4)).collect()),
        ];
        s.append_rows(&cols).unwrap();
        s
    }

    fn drain(scan: &mut MScan) -> Vec<Vec<Value>> {
        crate::batch::collect_rows(scan).unwrap()
    }

    #[test]
    fn full_scan_returns_everything() {
        let s = store(100, 250);
        let mut scan = MScan::full(s, vec![0, 1], None).unwrap();
        let rows = drain(&mut scan);
        assert_eq!(rows.len(), 250);
        assert_eq!(rows[0][0], Value::I64(0));
        assert_eq!(rows[249][0], Value::I64(249));
        assert_eq!(scan.profile().rows_out, 250);
    }

    #[test]
    fn projection_reads_only_requested_columns() {
        let s = store(100, 200);
        let mut scan = MScan::full(s, vec![1], None).unwrap();
        let rows = drain(&mut scan);
        assert_eq!(rows.len(), 200);
        assert_eq!(rows[0].len(), 1);
        assert_eq!(rows[0][0], Value::Str("t0".into()));
    }

    #[test]
    fn pruned_chunks_are_not_read() {
        let s = store(100, 300);
        let keep = s.prune(&vec![(0, PruneOp::Lt, Value::I64(150))]);
        assert_eq!(keep, vec![true, true, false]);
        {
            let mut scan = MScan::new(
                s.clone(),
                vec![0],
                keep,
                vec![MergeStep::CopyStable {
                    from_sid: 0,
                    count: 300,
                }],
                None,
            )
            .unwrap();
            let rows = drain(&mut scan);
            // rows from pruned chunk 2 are dropped (they can't match k<150)
            assert_eq!(rows.len(), 200);
            assert_eq!(rows.last().unwrap()[0], Value::I64(199));
        };
    }

    #[test]
    fn merge_plan_applies_updates() {
        let s = store(100, 100);
        let mut pdt = Pdt::new();
        pdt.insert_at(0, vec![Value::I64(-1), Value::Str("new".into())], 1, 100)
            .unwrap();
        pdt.delete_at(51, 100).unwrap(); // deletes stable row 50 (shifted by insert)
        pdt.modify_at(11, 1, Value::Str("patched".into()), 100)
            .unwrap(); // stable row 10
        let layers = Layers::new(100, vec![&pdt]);
        let plan = layers.merged_plan();
        let keep = vec![true; s.n_chunks()];
        let mut scan = MScan::new(s, vec![0, 1], keep, plan, None).unwrap();
        let rows = drain(&mut scan);
        assert_eq!(rows.len(), 100); // +1 insert, -1 delete
        assert_eq!(rows[0], vec![Value::I64(-1), Value::Str("new".into())]);
        assert_eq!(rows[11], vec![Value::I64(10), Value::Str("patched".into())]);
        assert!(!rows.iter().any(|r| r[0] == Value::I64(50)));
    }

    #[test]
    fn modify_of_unprojected_column_is_ignored() {
        let s = store(100, 20);
        let mut pdt = Pdt::new();
        pdt.modify_at(3, 1, Value::Str("x".into()), 20).unwrap();
        let plan = Layers::new(20, vec![&pdt]).merged_plan();
        let mut scan = MScan::new(s, vec![0], vec![true], plan, None).unwrap();
        let rows = drain(&mut scan);
        assert_eq!(rows.len(), 20);
        assert_eq!(rows[3], vec![Value::I64(3)]);
    }

    #[test]
    fn trailing_inserts_after_last_chunk() {
        let s = store(50, 50);
        let mut pdt = Pdt::new();
        pdt.insert_at(50, vec![Value::I64(999), Value::Str("app".into())], 7, 50)
            .unwrap();
        let plan = Layers::new(50, vec![&pdt]).merged_plan();
        let mut scan = MScan::new(s, vec![0, 1], vec![true], plan, None).unwrap();
        let rows = drain(&mut scan);
        assert_eq!(rows.len(), 51);
        assert_eq!(rows[50][0], Value::I64(999));
    }

    #[test]
    fn empty_partition_scan() {
        let fs: StoreRef = StdArc::new(SimHdfs::new(
            2,
            SimHdfsConfig::default(),
            StdArc::new(DefaultPolicy::new(1)),
        ));
        let s = PartitionStore::new(
            fs,
            "/db/e/p0/",
            Schema::of(&[("k", DataType::I64)]),
            StorageConfig::default(),
        );
        let mut scan = MScan::full(s, vec![0], None).unwrap();
        assert!(scan.next().unwrap().is_none());
    }

    #[test]
    fn scan_reads_local_when_reader_holds_replica() {
        let fs: StoreRef = StdArc::new(SimHdfs::new(
            3,
            SimHdfsConfig {
                block_size: 2048,
                default_replication: 3,
            },
            StdArc::new(DefaultPolicy::new(9)),
        ));
        let schema = Schema::of(&[("k", DataType::I64)]);
        let mut s = PartitionStore::new(
            fs.clone(),
            "/db/l/p0/",
            schema,
            StorageConfig { rows_per_chunk: 64 },
        );
        s.set_home(Some(NodeId(1)));
        s.append_rows(&[ColumnData::I64((0..200).collect())])
            .unwrap();
        let before = fs.stats().snapshot();
        let mut scan = MScan::full(s, vec![0], Some(NodeId(1))).unwrap();
        let rows = drain(&mut scan);
        assert_eq!(rows.len(), 200);
        let delta = fs.stats().snapshot().since(&before);
        assert_eq!(
            delta.remote_read_bytes, 0,
            "scan must be fully short-circuit"
        );
    }
}
