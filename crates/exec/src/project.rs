//! Project: vectorized expression evaluation producing new columns.

use std::sync::Arc;

use vectorh_common::{Field, Result, Schema};

use crate::batch::Batch;
use crate::expr::Expr;
use crate::operator::{Counters, OpProfile, Operator};

/// Projection operator: each output column is an expression over the input.
pub struct Project {
    child: Box<dyn Operator>,
    exprs: Vec<Expr>,
    out_schema: Arc<Schema>,
    counters: Counters,
}

impl Project {
    /// Build a projection; output column names are given alongside their
    /// expressions and types are inferred.
    pub fn new(child: Box<dyn Operator>, items: Vec<(Expr, String)>) -> Result<Project> {
        let in_schema = child.schema();
        let mut fields = Vec::with_capacity(items.len());
        let mut exprs = Vec::with_capacity(items.len());
        for (e, name) in items {
            fields.push(Field::new(name, e.dtype(&in_schema)?));
            exprs.push(e);
        }
        Ok(Project {
            child,
            exprs,
            out_schema: Arc::new(Schema::new(fields)),
            counters: Counters::default(),
        })
    }

    /// Column-subset projection by index.
    pub fn columns(child: Box<dyn Operator>, cols: &[usize]) -> Result<Project> {
        let schema = child.schema();
        let items = cols
            .iter()
            .map(|&c| (Expr::col(c), schema.field(c).name.clone()))
            .collect();
        Project::new(child, items)
    }
}

impl Operator for Project {
    fn schema(&self) -> Arc<Schema> {
        self.out_schema.clone()
    }

    fn next(&mut self) -> Result<Option<Batch>> {
        let start = std::time::Instant::now();
        let out = match self.child.next()? {
            None => None,
            Some(batch) => {
                self.counters.rows_in += batch.len() as u64;
                let mut cols = Vec::with_capacity(self.exprs.len());
                for e in &self.exprs {
                    let (col, _) = e.eval(&batch)?;
                    cols.push(col);
                }
                Some(Batch::new(self.out_schema.clone(), cols)?)
            }
        };
        self.counters.cum_time_ns += start.elapsed().as_nanos() as u64;
        self.counters.calls += 1;
        if let Some(b) = &out {
            self.counters.rows_out += b.len() as u64;
        }
        Ok(out)
    }

    fn profile(&self) -> OpProfile {
        self.counters.profile("Project")
    }

    fn children(&self) -> Vec<&dyn Operator> {
        vec![self.child.as_ref()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operator::BatchSource;
    use vectorh_common::{ColumnData, DataType, Value};

    fn source() -> Box<dyn Operator> {
        let schema = Arc::new(Schema::of(&[("a", DataType::I64), ("b", DataType::I64)]));
        let batch = Batch::new(
            schema,
            vec![
                ColumnData::I64(vec![1, 2, 3]),
                ColumnData::I64(vec![10, 20, 30]),
            ],
        )
        .unwrap();
        Box::new(BatchSource::from_batch(batch, 1024))
    }

    #[test]
    fn computes_expressions() {
        let mut p = Project::new(
            source(),
            vec![
                (Expr::add(Expr::col(0), Expr::col(1)), "sum".into()),
                (Expr::col(0), "a".into()),
            ],
        )
        .unwrap();
        assert_eq!(p.schema().names(), vec!["sum", "a"]);
        let rows = crate::batch::collect_rows(&mut p).unwrap();
        assert_eq!(rows[0], vec![Value::I64(11), Value::I64(1)]);
        assert_eq!(rows[2], vec![Value::I64(33), Value::I64(3)]);
    }

    #[test]
    fn column_subset() {
        let mut p = Project::columns(source(), &[1]).unwrap();
        assert_eq!(p.schema().names(), vec!["b"]);
        let rows = crate::batch::collect_rows(&mut p).unwrap();
        assert_eq!(
            rows,
            vec![
                vec![Value::I64(10)],
                vec![Value::I64(20)],
                vec![Value::I64(30)],
            ]
        );
    }

    #[test]
    fn bad_expression_fails_at_construction() {
        assert!(Project::new(source(), vec![(Expr::col(5), "x".into())]).is_err());
    }
}
