//! MergeJoin: streaming join of co-ordered inputs.
//!
//! VectorH declares clustered indexes on foreign keys, making referencing
//! and referenced tables *co-ordered* and "merge-joinable" (§2) — for
//! co-located partitions this join runs with no hash table and no network.
//! Both inputs must arrive sorted on their (integer) join keys; duplicate
//! keys on both sides produce the full per-key cross product.

use std::sync::Arc;

use vectorh_common::{ColumnData, Result, Schema, VhError};

use crate::batch::Batch;
use crate::operator::{Counters, OpProfile, Operator};

/// Streaming merge join (inner).
pub struct MergeJoin {
    left: Box<dyn Operator>,
    right: Box<dyn Operator>,
    left_key: usize,
    right_key: usize,
    out_schema: Arc<Schema>,
    // Buffered rows not yet consumed, as one batch + offset each side.
    lbuf: Option<Batch>,
    loff: usize,
    rbuf: Option<Batch>,
    roff: usize,
    ldone: bool,
    rdone: bool,
    counters: Counters,
}

impl MergeJoin {
    pub fn new(
        left: Box<dyn Operator>,
        right: Box<dyn Operator>,
        left_key: usize,
        right_key: usize,
    ) -> Result<MergeJoin> {
        let out_schema = Arc::new(left.schema().join(&right.schema()));
        Ok(MergeJoin {
            left,
            right,
            left_key,
            right_key,
            out_schema,
            lbuf: None,
            loff: 0,
            rbuf: None,
            roff: 0,
            ldone: false,
            rdone: false,
            counters: Counters::default(),
        })
    }

    fn key_at(batch: &Batch, key: usize, i: usize) -> Result<i64> {
        match batch.column(key) {
            ColumnData::I32(v) => Ok(v[i] as i64),
            ColumnData::I64(v) => Ok(v[i]),
            _ => Err(VhError::Exec("merge join requires integer keys".into())),
        }
    }

    /// Ensure the left buffer has an unconsumed row; returns false at EOS.
    fn fill_left(&mut self) -> Result<bool> {
        loop {
            if let Some(b) = &self.lbuf {
                if self.loff < b.len() {
                    return Ok(true);
                }
            }
            if self.ldone {
                return Ok(false);
            }
            match self.left.next()? {
                Some(b) => {
                    self.counters.rows_in += b.len() as u64;
                    self.lbuf = Some(b);
                    self.loff = 0;
                }
                None => {
                    self.ldone = true;
                    return Ok(false);
                }
            }
        }
    }

    fn fill_right(&mut self) -> Result<bool> {
        loop {
            if let Some(b) = &self.rbuf {
                if self.roff < b.len() {
                    return Ok(true);
                }
            }
            if self.rdone {
                return Ok(false);
            }
            match self.right.next()? {
                Some(b) => {
                    self.rbuf = Some(b);
                    self.roff = 0;
                }
                None => {
                    self.rdone = true;
                    return Ok(false);
                }
            }
        }
    }

    /// Collect every buffered-side row with key == `key`, advancing the
    /// cursor. May pull more batches for runs spanning batch boundaries.
    fn take_run_left(&mut self, key: i64) -> Result<Batch> {
        let mut run = Batch::empty(self.left.schema());
        loop {
            if !self.fill_left()? {
                break;
            }
            let b = self.lbuf.as_ref().unwrap();
            let mut end = self.loff;
            while end < b.len() && Self::key_at(b, self.left_key, end)? == key {
                end += 1;
            }
            if end > self.loff {
                run.append(&b.slice(self.loff, end))?;
                self.loff = end;
                // Run may continue into the next batch only if we consumed
                // to the end of this one.
                if end == b.len() {
                    continue;
                }
            }
            break;
        }
        Ok(run)
    }

    fn take_run_right(&mut self, key: i64) -> Result<Batch> {
        let mut run = Batch::empty(self.right.schema());
        loop {
            if !self.fill_right()? {
                break;
            }
            let b = self.rbuf.as_ref().unwrap();
            let mut end = self.roff;
            while end < b.len() && Self::key_at(b, self.right_key, end)? == key {
                end += 1;
            }
            if end > self.roff {
                run.append(&b.slice(self.roff, end))?;
                self.roff = end;
                if end == b.len() {
                    continue;
                }
            }
            break;
        }
        Ok(run)
    }
}

impl Operator for MergeJoin {
    fn schema(&self) -> Arc<Schema> {
        self.out_schema.clone()
    }

    fn next(&mut self) -> Result<Option<Batch>> {
        let start = std::time::Instant::now();
        let out = loop {
            if !self.fill_left()? || !self.fill_right()? {
                break None;
            }
            let lkey = Self::key_at(self.lbuf.as_ref().unwrap(), self.left_key, self.loff)?;
            let rkey = Self::key_at(self.rbuf.as_ref().unwrap(), self.right_key, self.roff)?;
            if lkey < rkey {
                self.loff += 1;
            } else if lkey > rkey {
                self.roff += 1;
            } else {
                let lrun = self.take_run_left(lkey)?;
                let rrun = self.take_run_right(rkey)?;
                // Cross product of the equal-key runs, materialized with
                // the batch gather kernels.
                let mut lidx = Vec::with_capacity(lrun.len() * rrun.len());
                let mut ridx = Vec::with_capacity(lrun.len() * rrun.len());
                for i in 0..lrun.len() as u32 {
                    for j in 0..rrun.len() as u32 {
                        lidx.push(i);
                        ridx.push(j);
                    }
                }
                let lg = lrun.gather_u32(&lidx);
                let rg = rrun.gather_u32(&ridx);
                let mut columns = lg.columns;
                columns.extend(rg.columns);
                break Some(Batch::new(self.out_schema.clone(), columns)?);
            }
        };
        self.counters.cum_time_ns += start.elapsed().as_nanos() as u64;
        self.counters.calls += 1;
        if let Some(b) = &out {
            self.counters.rows_out += b.len() as u64;
        }
        Ok(out)
    }

    fn profile(&self) -> OpProfile {
        self.counters.profile("MergeJoin")
    }

    fn children(&self) -> Vec<&dyn Operator> {
        vec![self.left.as_ref(), self.right.as_ref()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::join::{HashJoin, JoinKind};
    use crate::operator::BatchSource;
    use vectorh_common::rng::SplitMix64;
    use vectorh_common::{DataType, Value};

    fn table(keys: Vec<i64>, vals: Vec<i64>, chunk: usize) -> Box<dyn Operator> {
        let schema = Arc::new(Schema::of(&[("k", DataType::I64), ("v", DataType::I64)]));
        let batch = Batch::new(schema, vec![ColumnData::I64(keys), ColumnData::I64(vals)]).unwrap();
        Box::new(BatchSource::from_batch(batch, chunk))
    }

    #[test]
    fn basic_merge_join() {
        let mut j = MergeJoin::new(
            table(vec![1, 2, 2, 4], vec![10, 20, 21, 40], 2),
            table(vec![2, 3, 4], vec![200, 300, 400], 2),
            0,
            0,
        )
        .unwrap();
        let rows = crate::batch::collect_rows(&mut j).unwrap();
        assert_eq!(rows.len(), 3);
        assert_eq!(
            rows[0],
            vec![
                Value::I64(2),
                Value::I64(20),
                Value::I64(2),
                Value::I64(200)
            ]
        );
        assert_eq!(
            rows[1],
            vec![
                Value::I64(2),
                Value::I64(21),
                Value::I64(2),
                Value::I64(200)
            ]
        );
        assert_eq!(
            rows[2],
            vec![
                Value::I64(4),
                Value::I64(40),
                Value::I64(4),
                Value::I64(400)
            ]
        );
    }

    #[test]
    fn duplicate_runs_both_sides_cross_product() {
        let mut j = MergeJoin::new(
            table(vec![5, 5, 5], vec![1, 2, 3], 2),
            table(vec![5, 5], vec![10, 20], 1),
            0,
            0,
        )
        .unwrap();
        let rows = crate::batch::collect_rows(&mut j).unwrap();
        assert_eq!(rows.len(), 6);
    }

    #[test]
    fn runs_spanning_batch_boundaries() {
        // key run of 5 with batch size 2 forces cross-batch run collection
        let mut j = MergeJoin::new(
            table(vec![1, 1, 1, 1, 1, 2], vec![0, 1, 2, 3, 4, 5], 2),
            table(vec![1, 2], vec![100, 200], 2),
            0,
            0,
        )
        .unwrap();
        let rows = crate::batch::collect_rows(&mut j).unwrap();
        assert_eq!(rows.len(), 6);
    }

    #[test]
    fn disjoint_keys_empty_result() {
        let mut j = MergeJoin::new(
            table(vec![1, 3, 5], vec![0, 0, 0], 2),
            table(vec![2, 4, 6], vec![0, 0, 0], 2),
            0,
            0,
        )
        .unwrap();
        assert!(crate::batch::collect_rows(&mut j).unwrap().is_empty());
    }

    #[test]
    fn agrees_with_hash_join_on_random_sorted_inputs() {
        let mut rng = SplitMix64::new(77);
        for _ in 0..10 {
            let mut lk: Vec<i64> = (0..60).map(|_| rng.range_i64(0, 20)).collect();
            let mut rk: Vec<i64> = (0..40).map(|_| rng.range_i64(0, 20)).collect();
            lk.sort_unstable();
            rk.sort_unstable();
            let lv: Vec<i64> = (0..60).collect();
            let rv: Vec<i64> = (0..40).collect();
            let mut mj = MergeJoin::new(
                table(lk.clone(), lv.clone(), 7),
                table(rk.clone(), rv.clone(), 5),
                0,
                0,
            )
            .unwrap();
            let mut hj = HashJoin::new(
                table(lk, lv, 7),
                table(rk, rv, 5),
                vec![0],
                vec![0],
                JoinKind::Inner,
            )
            .unwrap();
            let mut a = crate::batch::collect_rows(&mut mj).unwrap();
            let mut b = crate::batch::collect_rows(&mut hj).unwrap();
            crate::sort::sort_rows(&mut a);
            crate::sort::sort_rows(&mut b);
            assert_eq!(a, b);
        }
    }
}
