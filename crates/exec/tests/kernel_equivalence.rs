//! Kernel-path vs scalar-reference equivalence.
//!
//! The vectorized hash kernels (columnar hashing, flat open-addressing
//! table, batch gather) must produce byte-identical results to naive
//! row-at-a-time implementations on TPC-H-shaped data: integer and string
//! keys, dates (I32 layout), scaled decimals (I64 layout), duplicate keys,
//! empty build sides, multi-column keys.

use std::collections::HashMap;
use std::sync::Arc;

use vectorh_common::rng::SplitMix64;
use vectorh_common::{ColumnData, DataType, Schema, Value};
use vectorh_exec::aggr::{AggFn, AggMode, Aggr};
use vectorh_exec::batch::collect_rows;
use vectorh_exec::join::{HashJoin, JoinKind};
use vectorh_exec::operator::BatchSource;
use vectorh_exec::{Batch, Operator};

/// A TPC-H-shaped table: orderkey-like I64, date (I32 layout), decimal
/// price (I64 layout), low-cardinality string tag.
fn lineitem_like(rng: &mut SplitMix64, n: usize, key_space: u64) -> Batch {
    let schema = Arc::new(Schema::of(&[
        ("k", DataType::I64),
        ("d", DataType::Date),
        ("price", DataType::Decimal { scale: 2 }),
        ("tag", DataType::Str),
    ]));
    let keys: Vec<i64> = (0..n).map(|_| rng.next_bounded(key_space) as i64).collect();
    let dates: Vec<i32> = (0..n)
        .map(|_| 9000 + rng.next_bounded(2500) as i32)
        .collect();
    let prices: Vec<i64> = (0..n).map(|_| rng.range_i64(100, 99_999)).collect();
    let tags: Vec<String> = (0..n)
        .map(|_| {
            if rng.chance(0.1) {
                format!(
                    "rare-{}-{}",
                    rng.next_bounded(50),
                    "x".repeat(rng.next_bounded(30) as usize)
                )
            } else {
                format!("tag{}", rng.next_bounded(7))
            }
        })
        .collect();
    Batch::new(
        schema,
        vec![
            ColumnData::I64(keys),
            ColumnData::I32(dates),
            ColumnData::I64(prices),
            ColumnData::Str(tags),
        ],
    )
    .unwrap()
}

fn source(b: &Batch, chunk: usize) -> Box<dyn Operator> {
    Box::new(BatchSource::from_batch(b.clone(), chunk))
}

fn sorted(mut rows: Vec<Vec<Value>>) -> Vec<Vec<Value>> {
    rows.sort_by(|a, b| format!("{a:?}").cmp(&format!("{b:?}")));
    rows
}

/// Row-at-a-time reference inner/outer/semi/anti join on whole-row values.
fn reference_join(
    probe: &Batch,
    build: &Batch,
    pkeys: &[usize],
    bkeys: &[usize],
    kind: JoinKind,
) -> Vec<Vec<Value>> {
    let key_of = |b: &Batch, keys: &[usize], i: usize| -> String {
        let vals: Vec<Value> = keys
            .iter()
            .map(|&k| b.column(k).value_at(i, b.schema.dtype(k)))
            .collect();
        format!("{vals:?}")
    };
    let mut index: HashMap<String, Vec<usize>> = HashMap::new();
    for j in 0..build.len() {
        index.entry(key_of(build, bkeys, j)).or_default().push(j);
    }
    let mut out = Vec::new();
    for i in 0..probe.len() {
        let matches = index.get(&key_of(probe, pkeys, i));
        let hits = matches.map(|m| m.len()).unwrap_or(0);
        match kind {
            JoinKind::Inner => {
                for &j in matches.into_iter().flatten() {
                    let mut row = probe.row(i);
                    row.extend(build.row(j));
                    out.push(row);
                }
            }
            JoinKind::LeftOuter => {
                if hits == 0 {
                    let mut row = probe.row(i);
                    for c in 0..build.schema.len() {
                        row.push(match build.schema.dtype(c) {
                            DataType::Str => Value::Str(String::new()),
                            DataType::F64 => Value::F64(0.0),
                            DataType::Date => Value::Date(0),
                            DataType::Decimal { scale } => Value::Decimal(0, scale),
                            _ => Value::I64(0),
                        });
                    }
                    row.push(Value::I32(0));
                    out.push(row);
                } else {
                    for &j in matches.into_iter().flatten() {
                        let mut row = probe.row(i);
                        row.extend(build.row(j));
                        row.push(Value::I32(1));
                        out.push(row);
                    }
                }
            }
            JoinKind::Semi => {
                if hits > 0 {
                    out.push(probe.row(i));
                }
            }
            JoinKind::Anti => {
                if hits == 0 {
                    out.push(probe.row(i));
                }
            }
        }
    }
    out
}

#[test]
fn joins_match_reference_on_tpch_shaped_data() {
    let mut rng = SplitMix64::new(0x10E9);
    for round in 0..3 {
        let key_space = [3, 17, 400][round];
        let probe = lineitem_like(&mut rng, 400, key_space);
        let build = lineitem_like(&mut rng, 200, key_space);
        for kind in [
            JoinKind::Inner,
            JoinKind::LeftOuter,
            JoinKind::Semi,
            JoinKind::Anti,
        ] {
            // Single integer key, string key, and multi-column (int, str) key.
            for keys in [vec![0usize], vec![3], vec![0, 3]] {
                let mut j = HashJoin::new(
                    source(&probe, 97),
                    source(&build, 64),
                    keys.clone(),
                    keys.clone(),
                    kind,
                )
                .unwrap();
                let got = sorted(collect_rows(&mut j).unwrap());
                let want = sorted(reference_join(&probe, &build, &keys, &keys, kind));
                assert_eq!(got, want, "round {round} kind {kind:?} keys {keys:?}");
            }
        }
    }
}

#[test]
fn join_with_empty_build_side_all_kinds() {
    let mut rng = SplitMix64::new(0xE0);
    let probe = lineitem_like(&mut rng, 100, 10);
    let schema = probe.schema.clone();
    let empty = Batch::empty(schema);
    for kind in [
        JoinKind::Inner,
        JoinKind::LeftOuter,
        JoinKind::Semi,
        JoinKind::Anti,
    ] {
        let mut j = HashJoin::new(
            source(&probe, 33),
            source(&empty, 33),
            vec![0],
            vec![0],
            kind,
        )
        .unwrap();
        let got = sorted(collect_rows(&mut j).unwrap());
        let want = sorted(reference_join(&probe, &empty, &[0], &[0], kind));
        assert_eq!(got, want, "kind {kind:?}");
        match kind {
            JoinKind::Inner | JoinKind::Semi => assert!(got.is_empty()),
            JoinKind::LeftOuter | JoinKind::Anti => assert_eq!(got.len(), probe.len()),
        }
    }
}

/// Row-at-a-time reference grouped aggregation (count, sum, min, max).
fn reference_aggr(input: &Batch, group: usize, sum_col: usize) -> Vec<Vec<Value>> {
    let key_of = |i: usize| input.column(group).value_at(i, input.schema.dtype(group));
    // key bytes -> (key value, count, sum, min, max)
    type Slot = (Value, i64, i64, Option<i64>, Option<i64>);
    let mut acc: HashMap<Vec<u8>, Slot> = HashMap::new();
    for i in 0..input.len() {
        let key = key_of(i);
        let x = match input.column(sum_col) {
            ColumnData::I64(v) => v[i],
            ColumnData::I32(v) => v[i] as i64,
            _ => unreachable!(),
        };
        let slot = acc
            .entry(format!("{key:?}").into_bytes())
            .or_insert_with(|| (key, 0, 0, None, None));
        slot.1 += 1;
        slot.2 += x;
        slot.3 = Some(slot.3.map_or(x, |m: i64| m.min(x)));
        slot.4 = Some(slot.4.map_or(x, |m: i64| m.max(x)));
    }
    let sum_dt = input.schema.dtype(sum_col);
    let wrap = |raw: i64| match sum_dt {
        DataType::Decimal { scale } => Value::Decimal(raw, scale),
        _ => Value::I64(raw),
    };
    let minmax_dt = input.schema.dtype(sum_col);
    let wrap_mm = |raw: i64| match minmax_dt {
        DataType::Decimal { scale } => Value::Decimal(raw, scale),
        DataType::I32 | DataType::Date => Value::I32(raw as i32),
        _ => Value::I64(raw),
    };
    acc.into_values()
        .map(|(key, count, sum, min, max)| {
            vec![
                key,
                Value::I64(count),
                wrap(sum),
                wrap_mm(min.unwrap()),
                wrap_mm(max.unwrap()),
            ]
        })
        .collect()
}

#[test]
fn aggregation_matches_reference_on_tpch_shaped_data() {
    let mut rng = SplitMix64::new(0xA6612);
    for round in 0..3 {
        let input = lineitem_like(&mut rng, 700, [4, 50, 999][round]);
        // Group by string tag and by integer key; aggregate the decimal.
        for group in [0usize, 3] {
            let aggs = vec![
                AggFn::CountStar,
                AggFn::Sum(2),
                AggFn::Min(2),
                AggFn::Max(2),
            ];
            let mut a =
                Aggr::new(source(&input, 128), vec![group], aggs, AggMode::Complete).unwrap();
            let got = sorted(collect_rows(&mut a).unwrap());
            let want = sorted(reference_aggr(&input, group, 2));
            assert_eq!(got, want, "round {round} group col {group}");
        }
    }
}

#[test]
fn partial_final_split_matches_complete_across_shapes() {
    let mut rng = SplitMix64::new(0x9A97);
    for _ in 0..3 {
        let input = lineitem_like(&mut rng, 500, 30);
        let aggs = || {
            vec![
                AggFn::CountStar,
                AggFn::Sum(2),
                AggFn::Avg(2),
                AggFn::Min(1),
                AggFn::Max(1),
            ]
        };
        let mut complete =
            Aggr::new(source(&input, 100), vec![3], aggs(), AggMode::Complete).unwrap();
        let want = sorted(collect_rows(&mut complete).unwrap());

        // Split the input across two partial instances, merge with a final.
        let half = input.slice(0, input.len() / 2);
        let rest = input.slice(input.len() / 2, input.len());
        let mut partial_batches = Vec::new();
        let mut pschema = None;
        for part in [half, rest] {
            let mut p = Aggr::new(source(&part, 77), vec![3], aggs(), AggMode::Partial).unwrap();
            pschema = Some(p.schema());
            while let Some(b) = p.next().unwrap() {
                partial_batches.push(b);
            }
        }
        // Final-mode agg column indices address the partial *state* columns:
        // [tag, count, sum, avg_sum, avg_count, min, max].
        let final_aggs = vec![
            AggFn::CountStar,
            AggFn::Sum(2),
            AggFn::Avg(3),
            AggFn::Min(5),
            AggFn::Max(6),
        ];
        let src = Box::new(BatchSource::new(pschema.unwrap(), partial_batches));
        let mut fin = Aggr::new(src, vec![0], final_aggs, AggMode::Final).unwrap();
        let got = sorted(collect_rows(&mut fin).unwrap());
        assert_eq!(got, want);
    }
}

#[test]
fn operators_bit_identical_across_simd_arms() {
    // The SIMD dispatch (AVX2 / SWAR / scalar) must never change a query
    // answer: run hashing, batch probe and a filtered join under every
    // forced mode and demand identical results. On builds where AVX2 is
    // unavailable (or compiled out via --cfg vectorh_force_swar), forcing
    // it degrades to SWAR and the comparison still holds.
    use vectorh_common::simd::{force_mode, SimdMode};
    use vectorh_exec::expr::Expr;
    use vectorh_exec::filter::Select;
    use vectorh_exec::kernels::hash::{hash_columns, JOIN_SEED};
    use vectorh_exec::kernels::table::HashTable;

    let mut rng = SplitMix64::new(0x51D5);
    let probe = lineitem_like(&mut rng, 600, 37);
    let build = lineitem_like(&mut rng, 300, 37);
    let refs: Vec<&ColumnData> = probe.columns.iter().collect();

    type ArmResult = (Vec<u64>, Vec<u32>, Vec<Vec<Value>>);
    let mut baseline: Option<ArmResult> = None;
    for mode in [SimdMode::Scalar, SimdMode::Swar, SimdMode::Avx2] {
        force_mode(Some(mode));
        let mut hashes = Vec::new();
        hash_columns(&refs, &[0, 3], JOIN_SEED, &mut hashes);
        let mut table = HashTable::new();
        table.insert_batch(&hashes);
        let mut heads = Vec::new();
        table.probe_batch(&hashes, &mut heads);
        let mut plan = Select::new(
            Box::new(
                HashJoin::new(
                    source(&probe, 91),
                    source(&build, 53),
                    vec![0],
                    vec![0],
                    JoinKind::Inner,
                )
                .unwrap(),
            ),
            Expr::ge(Expr::col(0), Expr::lit(Value::I64(18))),
        );
        let rows = sorted(collect_rows(&mut plan).unwrap());
        match &baseline {
            None => baseline = Some((hashes, heads, rows)),
            Some((h0, p0, r0)) => {
                assert_eq!(&hashes, h0, "hashes diverge under {mode:?}");
                assert_eq!(&heads, p0, "probe heads diverge under {mode:?}");
                assert_eq!(&rows, r0, "query rows diverge under {mode:?}");
            }
        }
    }
    force_mode(None);
}

#[test]
fn group_count_stress_forces_table_growth() {
    // More groups than the initial bucket count by orders of magnitude.
    let n = 40_000u64;
    let schema = Arc::new(Schema::of(&[("g", DataType::I64)]));
    let keys: Vec<i64> = (0..n as i64).flat_map(|k| [k, k]).collect();
    let batch = Batch::new(schema, vec![ColumnData::I64(keys)]).unwrap();
    let mut a = Aggr::new(
        source(&batch, 1024),
        vec![0],
        vec![AggFn::CountStar],
        AggMode::Complete,
    )
    .unwrap();
    let rows = collect_rows(&mut a).unwrap();
    assert_eq!(rows.len(), n as usize);
    assert!(rows.iter().all(|r| r[1] == Value::I64(2)));
}
