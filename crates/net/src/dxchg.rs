//! Distributed exchange (DXchg) operators.
//!
//! Implements §5's DXchg design over the simulated MPI layer:
//!
//! * Producers send **fixed-size messages** (≥256 KB in the paper; smaller
//!   in tests) and conceptually double-buffer so communication overlaps
//!   processing — modelled by accounting `2 × fanout × buffer` bytes per
//!   sender thread.
//! * **Intra-node** traffic passes pointers to sender-side batches, avoiding
//!   the memcpy MPI would do.
//! * **Thread-to-thread** mode: each sender partitions with fanout
//!   `Σ receiver threads`; per-node buffer memory grows as
//!   `2·N·C²·buffer` — the paper's 20 GB problem at 100×20.
//! * **Thread-to-node** mode: fanout is the number of nodes; a one-byte
//!   column per tuple identifies the receiving thread, and a per-node demux
//!   lets consumer threads "selectively consume data from incoming buffers
//!   using the one-byte-column".

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

use vectorh_common::channel::{bounded, Receiver, Sender};
use vectorh_common::fault::{FaultAction, FaultSite, SharedFaultHook};
use vectorh_common::{NodeId, Result, Schema, VhError};
use vectorh_exec::operator::{Counters, OpProfile};
use vectorh_exec::{Batch, Operator};
use vectorh_transport::{DedupWindow, Fabric, FrameTx, RxKind};

use crate::buffer::{make_message, open_message, Message};
use crate::stats::NetStats;
use crate::xchg::{partition_positions, Partitioning};

/// Sender fanout strategy (§5).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FanoutMode {
    /// Private buffers per receiver *thread* (original implementation).
    ThreadToThread,
    /// Buffers per receiver *node*, with a route byte per tuple.
    ThreadToNode,
}

/// DXchg tuning.
#[derive(Clone)]
pub struct DxchgConfig {
    /// Flush threshold per buffer (paper: ≥256 KB for good MPI throughput).
    pub buffer_bytes: usize,
    pub mode: FanoutMode,
    /// Optional fault hook consulted on every buffer flush
    /// ([`FaultSite::XchgSend`]): drop (lost + retransmitted), duplicate
    /// (deduped by receivers via message tags), delay (bounded reorder).
    pub fault: Option<SharedFaultHook>,
    /// Optional transport fabric. When set (and the mode is
    /// [`FanoutMode::ThreadToNode`]), cross-node messages travel as framed
    /// transport payloads — over real TCP with a [`TcpFabric`](
    /// vectorh_transport::TcpFabric) — while intra-node messages keep the
    /// pointer-passing path. `None` keeps the pure in-process channels.
    pub fabric: Option<Arc<dyn Fabric>>,
}

impl std::fmt::Debug for DxchgConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DxchgConfig")
            .field("buffer_bytes", &self.buffer_bytes)
            .field("mode", &self.mode)
            .field("fault", &self.fault.is_some())
            .field("fabric", &self.fabric.as_ref().map(|t| t.mode()))
            .finish()
    }
}

impl Default for DxchgConfig {
    fn default() -> Self {
        DxchgConfig {
            buffer_bytes: 256 * 1024,
            mode: FanoutMode::ThreadToNode,
            fault: None,
            fabric: None,
        }
    }
}

/// Credit window (in messages) granted per sending peer when an exchange
/// binds a fabric channel: sized so the in-flight budget per stream tracks
/// the configured buffer size (≈2 MiB), the MPI-receiver-buffer analogue.
pub(crate) fn credit_window(buffer_bytes: usize) -> u32 {
    ((2 * 1024 * 1024) / buffer_bytes.max(1)).clamp(4, 256) as u32
}

/// A message plus a tag unique within its exchange, so receivers can
/// discard injected duplicates. The high 32 bits identify the stream
/// (producer node + worker); the low 32 bits are a per-destination
/// contiguous sequence, which is what lets receivers evict dedup state
/// behind a watermark instead of remembering every tag forever.
#[derive(Clone)]
struct Envelope {
    tag: u64,
    msg: Message,
}

/// Stream key for `(producer node, worker index)`, occupying the high 32
/// bits of an envelope tag. Node-qualified so tags stay unique when
/// producers live in different OS processes.
fn stream_key(prod_node: u32, wi: usize) -> u64 {
    (((prod_node as u64 + 1) & 0x7FFF) << 16) | ((wi as u64 + 1) & 0xFFFF)
}

type Payload = std::result::Result<Envelope, VhError>;

/// Serialize an envelope for the transport fabric. Layout:
/// `[0u8][tag u64][route? u8][route_len u32 + route]?[pax bytes]`,
/// or `[1u8][utf8 error message]` for a producer-side error.
fn encode_remote(env: &Envelope) -> Result<Vec<u8>> {
    let Message::Wire { bytes, route } = &env.msg else {
        return Err(VhError::Internal(
            "dxchg: pointer-passed message cannot cross the fabric".into(),
        ));
    };
    let mut out = Vec::with_capacity(bytes.len() + 32);
    out.push(0);
    out.extend_from_slice(&env.tag.to_le_bytes());
    match route {
        Some(r) => {
            out.push(1);
            out.extend_from_slice(&(r.len() as u32).to_le_bytes());
            out.extend_from_slice(r);
        }
        None => out.push(0),
    }
    out.extend_from_slice(bytes);
    Ok(out)
}

fn encode_remote_error(e: &VhError) -> Vec<u8> {
    let mut out = vec![1u8];
    out.extend_from_slice(format!("{}: {}", e.subsystem(), e.message()).as_bytes());
    out
}

fn decode_remote(payload: &[u8]) -> Result<Payload> {
    let err = || VhError::Net("dxchg: truncated fabric payload".into());
    match payload.first().ok_or_else(err)? {
        1 => Ok(Err(VhError::Net(format!(
            "dxchg: remote producer failed: {}",
            String::from_utf8_lossy(&payload[1..])
        )))),
        0 => {
            let tag = u64::from_le_bytes(payload.get(1..9).ok_or_else(err)?.try_into().unwrap());
            let has_route = *payload.get(9).ok_or_else(err)? == 1;
            let (route, rest) = if has_route {
                let len =
                    u32::from_le_bytes(payload.get(10..14).ok_or_else(err)?.try_into().unwrap())
                        as usize;
                let route = payload.get(14..14 + len).ok_or_else(err)?.to_vec();
                (Some(route), &payload[14 + len..])
            } else {
                (None, &payload[10..])
            };
            Ok(Ok(Envelope {
                tag,
                msg: Message::Wire {
                    bytes: rest.to_vec(),
                    route,
                },
            }))
        }
        k => Err(VhError::Net(format!("dxchg: bad fabric payload kind {k}"))),
    }
}

/// One fabric stream `(producer node → consumer node)`, shared by every
/// producer thread on that node (the transport contract allows one live
/// sender per stream). The last producer to finish sends the Fin.
struct SharedTx {
    tx: vectorh_common::sync::Mutex<Box<dyn FrameTx>>,
    producers_left: AtomicUsize,
}

impl SharedTx {
    fn done(&self) {
        if self.producers_left.fetch_sub(1, Ordering::SeqCst) == 1 {
            let _ = self.tx.lock().finish();
        }
    }
}

/// Where a destination's messages go: a same-process channel, or a fabric
/// stream (TCP in cluster mode).
#[derive(Clone)]
enum Sink {
    Chan(Sender<Payload>),
    Remote(Arc<SharedTx>),
}

/// Producer-side send path of one exchange: owns the destination sinks
/// and applies injected channel faults. The transport is reliable — a
/// "dropped" buffer is retransmitted, a delayed buffer is delivered after
/// the next one to the same destination (or at end-of-stream) — so faults
/// perturb schedules, never correctness.
struct SendPlane {
    sinks: Vec<Sink>,
    hook: Option<SharedFaultHook>,
    name: &'static str,
    key: u64,
    stats: Arc<NetStats>,
    /// Per-destination sequence counters: each `(stream, dest)` pair sees a
    /// gap-free sequence, the precondition for watermark eviction.
    seqs: Vec<u64>,
    held: Vec<Option<Envelope>>,
}

impl SendPlane {
    fn new(
        sinks: Vec<Sink>,
        hook: Option<SharedFaultHook>,
        name: &'static str,
        prod_node: u32,
        wi: usize,
        stats: Arc<NetStats>,
    ) -> Self {
        let held = (0..sinks.len()).map(|_| None).collect();
        let seqs = vec![0; sinks.len()];
        SendPlane {
            sinks,
            hook,
            name,
            key: stream_key(prod_node, wi),
            stats,
            seqs,
            held,
        }
    }

    fn push(&mut self, dest: usize, payload: Payload) -> bool {
        match &self.sinks[dest] {
            Sink::Chan(tx) => match tx.send_tracked(payload) {
                Ok(stalled) => {
                    if stalled {
                        self.stats.record_credit_stall(self.name, 1);
                    }
                    true
                }
                Err(_) => false,
            },
            Sink::Remote(shared) => {
                let bytes = match &payload {
                    Ok(env) => match encode_remote(env) {
                        Ok(b) => b,
                        Err(_) => return false,
                    },
                    Err(e) => encode_remote_error(e),
                };
                let mut tx = shared.tx.lock();
                let before = tx.stalls();
                let ok = tx.send(&bytes).is_ok();
                let stalls = tx.stalls() - before;
                drop(tx);
                self.stats.record_credit_stall(self.name, stalls);
                ok
            }
        }
    }

    /// Deliver `env` to `dest`, then any earlier buffer held back by a
    /// delay fault (which is what makes the delay an observable reorder).
    fn deliver(&mut self, dest: usize, env: Envelope) -> bool {
        if !self.push(dest, Ok(env)) {
            return false;
        }
        match self.held[dest].take() {
            Some(prev) => self.push(dest, Ok(prev)),
            None => true,
        }
    }

    /// Send one logical message, applying the configured channel fault.
    fn send(&mut self, dest: usize, msg: Message) -> bool {
        let seq = self.seqs[dest];
        self.seqs[dest] += 1;
        let tag = (self.key << 32) | (seq & 0xFFFF_FFFF);
        self.stats
            .record_channel_message(self.name, msg.transit_bytes() as u64);
        let env = Envelope { tag, msg };
        let action = match &self.hook {
            Some(h) => {
                let detail = format!("{}:k{}->d{}#{}", self.name, self.key, dest, seq);
                h.decide(FaultSite::XchgSend, &detail, 0)
            }
            None => FaultAction::None,
        };
        match action {
            FaultAction::Drop => {
                // Lost in flight; the reliable sender retransmits.
                self.stats.record_dropped();
                self.deliver(dest, env)
            }
            FaultAction::Duplicate => {
                self.stats.record_duplicated();
                let copy = env.clone();
                self.deliver(dest, env) && self.deliver(dest, copy)
            }
            FaultAction::Delay => {
                self.stats.record_delayed();
                let prev = self.held[dest].replace(env);
                match prev {
                    Some(p) => self.push(dest, Ok(p)),
                    None => true,
                }
            }
            _ => self.deliver(dest, env),
        }
    }

    /// Flush any buffers still held back by delay faults, then release the
    /// fabric streams (the last producer per node sends the Fin).
    fn finish(&mut self) {
        for dest in 0..self.sinks.len() {
            if let Some(env) = self.held[dest].take() {
                let _ = self.push(dest, Ok(env));
            }
        }
        for sink in &self.sinks {
            if let Sink::Remote(shared) = sink {
                shared.done();
            }
        }
    }

    fn error(&mut self, e: VhError) {
        for dest in 0..self.sinks.len() {
            if self.push(dest, Err(e.clone())) {
                return; // one consumer seeing it is enough to fail the query
            }
        }
    }
}

/// Consumer-side operator of a DXchg: thread `consumer_idx` on a node.
pub struct DxchgReceiver {
    name: &'static str,
    schema: Arc<Schema>,
    rx: Receiver<Payload>,
    /// Which route byte this receiver consumes (None = take everything).
    route_filter: Option<u8>,
    /// Per-stream dedup windows keyed by the tag's stream key. Watermark
    /// eviction keeps the state bounded by the reorder window, not by the
    /// stream length (the old `HashSet<u64>` grew with every message).
    seen: std::collections::HashMap<u32, DedupWindow>,
    stats: Arc<NetStats>,
    counters: Counters,
    consumer_wait_ns: u64,
    profiles: Arc<ProfileHub>,
}

/// Shared collection point for producer-pipeline profiles.
pub struct ProfileHub {
    rx: Receiver<crate::xchg::WorkerProfile>,
    collected: vectorh_common::sync::Mutex<Vec<crate::xchg::WorkerProfile>>,
}

impl ProfileHub {
    fn drain(&self) -> Vec<crate::xchg::WorkerProfile> {
        let mut cache = self.collected.lock();
        cache.extend(self.rx.try_iter());
        cache.sort_by_key(|w| w.worker);
        cache.clone()
    }
}

impl DxchgReceiver {
    pub fn consumer_wait_ns(&self) -> u64 {
        self.consumer_wait_ns
    }
}

impl Operator for DxchgReceiver {
    fn schema(&self) -> Arc<Schema> {
        self.schema.clone()
    }

    fn next(&mut self) -> Result<Option<Batch>> {
        loop {
            let start = Instant::now();
            let res = self.rx.recv();
            let waited = start.elapsed().as_nanos() as u64;
            self.consumer_wait_ns += waited;
            self.counters.cum_time_ns += waited;
            self.counters.calls += 1;
            match res {
                Err(_) => return Ok(None),
                Ok(Err(e)) => return Err(e),
                Ok(Ok(env)) => {
                    let key = (env.tag >> 32) as u32;
                    let win = self.seen.entry(key).or_default();
                    if !win.insert(env.tag & 0xFFFF_FFFF) {
                        continue; // injected duplicate delivery
                    }
                    self.stats.record_dedup_residual(win.residual() as u64);
                    let (batch, route) = open_message(env.msg, self.schema.clone())?;
                    let batch = match (self.route_filter, route) {
                        (Some(me), Some(route)) => {
                            // Selectively consume my tuples by route byte.
                            let mine: Vec<usize> = route
                                .iter()
                                .enumerate()
                                .filter(|(_, r)| **r == me)
                                .map(|(i, _)| i)
                                .collect();
                            if mine.is_empty() {
                                continue;
                            }
                            if mine.len() == batch.len() {
                                batch
                            } else {
                                batch.gather(&mine)
                            }
                        }
                        _ => batch,
                    };
                    self.counters.rows_in += batch.len() as u64;
                    self.counters.rows_out += batch.len() as u64;
                    return Ok(Some(batch));
                }
            }
        }
    }

    fn profile(&self) -> OpProfile {
        self.counters.profile(self.name)
    }

    fn children(&self) -> Vec<&dyn Operator> {
        vec![]
    }

    fn remote_profiles(&self) -> Vec<vectorh_exec::operator::RemoteProfile> {
        self.profiles
            .drain()
            .into_iter()
            .map(|w| vectorh_exec::operator::RemoteProfile {
                label: format!("sender {}", w.worker),
                lines: w.lines,
                rows: w.rows_produced,
                wall_ns: w.wall_ns,
            })
            .collect()
    }
}

/// Create a distributed hash-split exchange.
///
/// `producers[i] = (node, pipeline)`; `consumers[j] = node` places consumer
/// thread `j`. Returns one receiver per consumer thread.
pub fn dxchg_hash_split(
    producers: Vec<(u32, Box<dyn Operator>)>,
    consumers: Vec<u32>,
    keys: Vec<usize>,
    config: DxchgConfig,
    stats: Arc<NetStats>,
) -> Result<Vec<DxchgReceiver>> {
    dxchg(
        "DXchgHashSplit",
        producers,
        consumers,
        Partitioning::Hash { keys },
        config,
        stats,
    )
}

/// Distributed union: everything funnels to one consumer thread.
pub fn dxchg_union(
    producers: Vec<(u32, Box<dyn Operator>)>,
    consumer_node: u32,
    config: DxchgConfig,
    stats: Arc<NetStats>,
) -> Result<DxchgReceiver> {
    let mut v = dxchg(
        "DXchgUnion",
        producers,
        vec![consumer_node],
        Partitioning::Union,
        config,
        stats,
    )?;
    Ok(v.remove(0))
}

/// Distributed broadcast: every consumer thread sees all rows.
pub fn dxchg_broadcast(
    producers: Vec<(u32, Box<dyn Operator>)>,
    consumers: Vec<u32>,
    config: DxchgConfig,
    stats: Arc<NetStats>,
) -> Result<Vec<DxchgReceiver>> {
    dxchg(
        "DXchgBroadcast",
        producers,
        consumers,
        Partitioning::Broadcast,
        config,
        stats,
    )
}

/// Generic distributed exchange.
pub fn dxchg(
    name: &'static str,
    producers: Vec<(u32, Box<dyn Operator>)>,
    consumers: Vec<u32>,
    partitioning: Partitioning,
    config: DxchgConfig,
    stats: Arc<NetStats>,
) -> Result<Vec<DxchgReceiver>> {
    if producers.is_empty() || consumers.is_empty() {
        return Err(VhError::Net("dxchg needs producers and consumers".into()));
    }
    let schema = producers[0].1.schema();

    match config.mode {
        FanoutMode::ThreadToThread => dxchg_t2t(
            name,
            producers,
            consumers,
            partitioning,
            config,
            stats,
            schema,
        ),
        FanoutMode::ThreadToNode => dxchg_t2n(
            name,
            producers,
            consumers,
            partitioning,
            config,
            stats,
            schema,
        ),
    }
}

/// Thread-to-thread: one buffer (and channel) per consumer thread.
#[allow(clippy::too_many_arguments)]
fn dxchg_t2t(
    name: &'static str,
    producers: Vec<(u32, Box<dyn Operator>)>,
    consumers: Vec<u32>,
    partitioning: Partitioning,
    config: DxchgConfig,
    stats: Arc<NetStats>,
    schema: Arc<Schema>,
) -> Result<Vec<DxchgReceiver>> {
    let channels: Vec<(Sender<Payload>, Receiver<Payload>)> = (0..consumers.len())
        .map(|_| bounded(crate::xchg::CHANNEL_CAP))
        .collect();
    let (ptx, prx) = bounded::<crate::xchg::WorkerProfile>(producers.len().max(1));
    for (wi, (prod_node, mut prod)) in producers.into_iter().enumerate() {
        let sinks: Vec<Sink> = channels
            .iter()
            .map(|(s, _)| Sink::Chan(s.clone()))
            .collect();
        let consumers = consumers.clone();
        let partitioning = partitioning.clone();
        let stats = stats.clone();
        let schema = schema.clone();
        let buffer_bytes = config.buffer_bytes;
        let hook = config.fault.clone();
        let ptx = ptx.clone();
        std::thread::spawn(move || {
            let t0 = Instant::now();
            let mut rows_produced = 0u64;
            // Fanout = number of consumer threads; double-buffered.
            let fanout = consumers.len();
            let accounted = (2 * fanout * buffer_bytes) as u64;
            stats.alloc_buffers(accounted);
            let mut plane = SendPlane::new(sinks, hook, name, prod_node, wi, stats.clone());
            let mut bufs: Vec<Batch> = (0..fanout).map(|_| Batch::empty(schema.clone())).collect();
            let flush = |plane: &mut SendPlane, c: usize, buf: &mut Batch| -> bool {
                if buf.is_empty() {
                    return true;
                }
                let full = std::mem::replace(buf, Batch::empty(schema.clone()));
                let msg = make_message(full, None, prod_node, consumers[c], &plane.stats);
                plane.send(c, msg)
            };
            'run: loop {
                match prod.next() {
                    Ok(Some(batch)) => {
                        rows_produced += batch.len() as u64;
                        match partition_positions(&batch, &partitioning, fanout) {
                            Ok(parts) => {
                                for (c, pos) in parts.iter().enumerate() {
                                    if pos.is_empty() {
                                        continue;
                                    }
                                    let piece = batch.gather_u32(pos);
                                    bufs[c].append(&piece).ok();
                                    let size: usize =
                                        bufs[c].columns.iter().map(|x| x.byte_size()).sum();
                                    if size >= buffer_bytes && !flush(&mut plane, c, &mut bufs[c]) {
                                        break 'run;
                                    }
                                }
                            }
                            Err(e) => {
                                plane.error(e);
                                break 'run;
                            }
                        }
                    }
                    Ok(None) => {
                        for (c, buf) in bufs.iter_mut().enumerate().take(fanout) {
                            let mut b = std::mem::replace(buf, Batch::empty(schema.clone()));
                            if !flush(&mut plane, c, &mut b) {
                                break;
                            }
                        }
                        break 'run;
                    }
                    Err(e) => {
                        plane.error(e);
                        break 'run;
                    }
                }
            }
            plane.finish();
            stats.free_buffers(accounted);
            let _ = ptx.send(crate::xchg::WorkerProfile {
                worker: wi,
                lines: vectorh_exec::operator::collect_profiles(prod.as_ref()),
                rows_produced,
                wall_ns: t0.elapsed().as_nanos() as u64,
            });
        });
    }
    drop(ptx);
    let hub = Arc::new(ProfileHub {
        rx: prx,
        collected: vectorh_common::sync::Mutex::new(Vec::new()),
    });
    Ok(channels
        .into_iter()
        .map(|(_, rx)| DxchgReceiver {
            name,
            schema: schema.clone(),
            rx,
            route_filter: None,
            seen: Default::default(),
            stats: stats.clone(),
            counters: Counters::default(),
            consumer_wait_ns: 0,
            profiles: hub.clone(),
        })
        .collect())
}

/// Thread-to-node: buffers per node with a route byte; consumer threads
/// filter their rows out of node-level messages.
#[allow(clippy::too_many_arguments)]
fn dxchg_t2n(
    name: &'static str,
    producers: Vec<(u32, Box<dyn Operator>)>,
    consumers: Vec<u32>,
    partitioning: Partitioning,
    config: DxchgConfig,
    stats: Arc<NetStats>,
    schema: Arc<Schema>,
) -> Result<Vec<DxchgReceiver>> {
    // Group consumer threads by node; route byte = index within node.
    let mut nodes: Vec<u32> = consumers.clone();
    nodes.sort_unstable();
    nodes.dedup();
    // consumer j -> (node_idx, route byte)
    let mut within: std::collections::HashMap<u32, u8> = Default::default();
    let routing: Vec<(usize, u8)> = consumers
        .iter()
        .map(|cn| {
            let ni = nodes.iter().position(|n| n == cn).unwrap();
            let r = within.entry(*cn).or_insert(0);
            let route = *r;
            *r += 1;
            (ni, route)
        })
        .collect();
    let threads_per_node: Vec<u8> = nodes
        .iter()
        .map(|n| consumers.iter().filter(|c| *c == n).count() as u8)
        .collect();
    if threads_per_node.contains(&0) {
        return Err(VhError::Net("node without consumer threads".into()));
    }

    // One fan-in channel per node; a demux thread forwards each node-level
    // message to every consumer thread on the node, and the receivers
    // "selectively consume" their rows by route byte.
    let node_ch: Vec<(Sender<Payload>, Receiver<Payload>)> = (0..nodes.len())
        .map(|_| bounded(crate::xchg::CHANNEL_CAP))
        .collect();
    let thread_ch: Vec<(Sender<Payload>, Receiver<Payload>)> = (0..consumers.len())
        .map(|_| bounded(crate::xchg::CHANNEL_CAP))
        .collect();
    for (ni, _) in nodes.iter().enumerate() {
        let node_rx = node_ch[ni].1.clone();
        let thread_txs: Vec<Sender<Payload>> = routing
            .iter()
            .enumerate()
            .filter(|(_, (n, _))| *n == ni)
            .map(|(j, _)| thread_ch[j].0.clone())
            .collect();
        std::thread::spawn(move || {
            while let Ok(payload) = node_rx.recv() {
                match payload {
                    Ok(env) => {
                        for tx in &thread_txs {
                            if tx.send(Ok(env.clone())).is_err() {
                                return;
                            }
                        }
                    }
                    Err(e) => {
                        for tx in &thread_txs {
                            let _ = tx.send(Err(e.clone()));
                        }
                        return;
                    }
                }
            }
        });
    }

    // Fabric path: cross-node traffic leaves the process as framed
    // transport payloads. One data channel per consumer node, allocated
    // deterministically so cooperating processes that build the same plan
    // agree on the ids; one shared stream per (producer node, consumer
    // node) pair, because the transport allows a single live sender per
    // stream. Nodes whose endpoint the local fabric cannot produce live in
    // another process: their consumers get no pump (and terminate empty
    // here) and their producers are skipped (they run over there).
    let prod_nodes: Vec<u32> = producers.iter().map(|(n, _)| *n).collect();
    let mut remote_txs: std::collections::HashMap<(u32, usize), Arc<SharedTx>> = Default::default();
    if let Some(fabric) = &config.fabric {
        let chans: Vec<u32> = nodes.iter().map(|_| fabric.alloc_channel()).collect();
        let window = credit_window(config.buffer_bytes);
        let mut pnodes = prod_nodes.clone();
        pnodes.sort_unstable();
        pnodes.dedup();
        for (ni, cnode) in nodes.iter().enumerate() {
            // Every remote producer node Fins its stream exactly once.
            let expected = pnodes.iter().filter(|p| **p != *cnode).count();
            if expected == 0 {
                continue;
            }
            let Ok(ep) = fabric.endpoint(NodeId(*cnode)) else {
                continue;
            };
            let mut rx = ep.bind(chans[ni], window)?;
            let node_tx = node_ch[ni].0.clone();
            std::thread::spawn(move || {
                let mut fins = 0usize;
                while fins < expected {
                    match rx.recv() {
                        Ok(Some(item)) => match item.kind {
                            RxKind::Fin => fins += 1,
                            RxKind::Data => match decode_remote(&item.payload) {
                                Ok(payload) => {
                                    let failed = payload.is_err();
                                    if node_tx.send(payload).is_err() || failed {
                                        return;
                                    }
                                }
                                Err(e) => {
                                    let _ = node_tx.send(Err(e));
                                    return;
                                }
                            },
                        },
                        Ok(None) => return,
                        Err(e) => {
                            let _ = node_tx.send(Err(e));
                            return;
                        }
                    }
                }
            });
        }
        for (ni, cnode) in nodes.iter().enumerate() {
            for pnode in &pnodes {
                if pnode == cnode {
                    continue;
                }
                let Ok(ep) = fabric.endpoint(NodeId(*pnode)) else {
                    continue;
                };
                let local_producers = prod_nodes.iter().filter(|p| **p == *pnode).count();
                let tx = ep.sender(NodeId(*cnode), chans[ni])?;
                remote_txs.insert(
                    (*pnode, ni),
                    Arc::new(SharedTx {
                        tx: vectorh_common::sync::Mutex::new(tx),
                        producers_left: AtomicUsize::new(local_producers),
                    }),
                );
            }
        }
    }

    let (ptx, prx) = bounded::<crate::xchg::WorkerProfile>(producers.len().max(1));
    for (wi, (prod_node, mut prod)) in producers.into_iter().enumerate() {
        if let Some(fabric) = &config.fabric {
            if fabric.endpoint(NodeId(prod_node)).is_err() {
                continue; // this producer's pipeline runs in another process
            }
        }
        let sinks: Vec<Sink> = (0..nodes.len())
            .map(|ni| match remote_txs.get(&(prod_node, ni)) {
                Some(shared) => Sink::Remote(shared.clone()),
                None => Sink::Chan(node_ch[ni].0.clone()),
            })
            .collect();
        let nodes = nodes.clone();
        let routing = routing.clone();
        let partitioning = partitioning.clone();
        let stats = stats.clone();
        let schema = schema.clone();
        let buffer_bytes = config.buffer_bytes;
        let hook = config.fault.clone();
        let n_consumers = consumers.len();
        let ptx = ptx.clone();
        std::thread::spawn(move || {
            let t0 = Instant::now();
            let mut rows_produced = 0u64;
            let fanout = nodes.len();
            let accounted = (2 * fanout * buffer_bytes) as u64;
            stats.alloc_buffers(accounted);
            let mut plane = SendPlane::new(sinks, hook, name, prod_node, wi, stats.clone());
            let mut bufs: Vec<(Batch, Vec<u8>)> = (0..fanout)
                .map(|_| (Batch::empty(schema.clone()), Vec::new()))
                .collect();
            let flush = |plane: &mut SendPlane, ni: usize, buf: &mut (Batch, Vec<u8>)| -> bool {
                if buf.0.is_empty() {
                    return true;
                }
                let batch = std::mem::replace(&mut buf.0, Batch::empty(schema.clone()));
                let route = std::mem::take(&mut buf.1);
                let msg = make_message(batch, Some(route), prod_node, nodes[ni], &plane.stats);
                plane.send(ni, msg)
            };
            'run: loop {
                match prod.next() {
                    Ok(Some(batch)) => {
                        rows_produced += batch.len() as u64;
                        // Partition to consumer threads, then regroup by node
                        // attaching the within-node route byte.
                        match partition_positions(&batch, &partitioning, n_consumers) {
                            Ok(parts) => {
                                for (j, pos) in parts.iter().enumerate() {
                                    if pos.is_empty() {
                                        continue;
                                    }
                                    let (ni, route) = routing[j];
                                    let piece = batch.gather_u32(pos);
                                    let n = piece.len();
                                    bufs[ni].0.append(&piece).ok();
                                    bufs[ni].1.extend(std::iter::repeat_n(route, n));
                                    let size: usize = bufs[ni]
                                        .0
                                        .columns
                                        .iter()
                                        .map(|x| x.byte_size())
                                        .sum::<usize>()
                                        + bufs[ni].1.len();
                                    if size >= buffer_bytes {
                                        let mut b = std::mem::replace(
                                            &mut bufs[ni],
                                            (Batch::empty(schema.clone()), Vec::new()),
                                        );
                                        if !flush(&mut plane, ni, &mut b) {
                                            break 'run;
                                        }
                                    }
                                }
                            }
                            Err(e) => {
                                plane.error(e);
                                break 'run;
                            }
                        }
                    }
                    Ok(None) => {
                        for (ni, buf) in bufs.iter_mut().enumerate().take(fanout) {
                            let mut b =
                                std::mem::replace(buf, (Batch::empty(schema.clone()), Vec::new()));
                            if !flush(&mut plane, ni, &mut b) {
                                break;
                            }
                        }
                        break 'run;
                    }
                    Err(e) => {
                        plane.error(e);
                        break 'run;
                    }
                }
            }
            plane.finish();
            stats.free_buffers(accounted);
            let _ = ptx.send(crate::xchg::WorkerProfile {
                worker: wi,
                lines: vectorh_exec::operator::collect_profiles(prod.as_ref()),
                rows_produced,
                wall_ns: t0.elapsed().as_nanos() as u64,
            });
        });
    }
    drop(ptx);
    let hub = Arc::new(ProfileHub {
        rx: prx,
        collected: vectorh_common::sync::Mutex::new(Vec::new()),
    });

    Ok(thread_ch
        .into_iter()
        .enumerate()
        .map(|(j, (_, rx))| DxchgReceiver {
            name,
            schema: schema.clone(),
            rx,
            route_filter: Some(routing[j].1),
            seen: Default::default(),
            stats: stats.clone(),
            counters: Counters::default(),
            consumer_wait_ns: 0,
            profiles: hub.clone(),
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use vectorh_common::{ColumnData, DataType};
    use vectorh_exec::operator::BatchSource;

    fn source(vals: Vec<i64>) -> Box<dyn Operator> {
        let schema = Arc::new(Schema::of(&[("x", DataType::I64)]));
        let batch = Batch::new(schema, vec![ColumnData::I64(vals)]).unwrap();
        Box::new(BatchSource::from_batch(batch, 32))
    }

    fn config(mode: FanoutMode) -> DxchgConfig {
        DxchgConfig {
            buffer_bytes: 512,
            mode,
            fault: None,
            fabric: None,
        }
    }

    fn drain(mut ops: Vec<DxchgReceiver>) -> Vec<Vec<i64>> {
        ops.iter_mut()
            .map(|r| {
                let mut got = Vec::new();
                while let Some(b) = r.next().unwrap() {
                    got.extend(b.column(0).as_i64().unwrap().iter().copied());
                }
                got.sort_unstable();
                got
            })
            .collect()
    }

    #[test]
    fn union_both_modes() {
        for mode in [FanoutMode::ThreadToThread, FanoutMode::ThreadToNode] {
            let stats = Arc::new(NetStats::default());
            let r = dxchg_union(
                vec![
                    (0, source((0..100).collect())),
                    (1, source((100..200).collect())),
                ],
                0,
                config(mode),
                stats.clone(),
            )
            .unwrap();
            let got = drain(vec![r]);
            assert_eq!(got[0], (0..200).collect::<Vec<_>>(), "mode {mode:?}");
            // Producer on node 1 must have crossed the network.
            assert!(stats.snapshot().net_messages > 0);
            assert!(stats.snapshot().intra_messages > 0);
        }
    }

    #[test]
    fn hash_split_complete_and_consistent_across_modes() {
        let run = |mode| {
            let stats = Arc::new(NetStats::default());
            let recv = dxchg_hash_split(
                vec![
                    (0, source((0..300).collect())),
                    (1, source((300..600).collect())),
                ],
                vec![0, 0, 1, 1], // 2 nodes × 2 threads
                vec![0],
                config(mode),
                stats,
            )
            .unwrap();
            drain(recv)
        };
        let t2t = run(FanoutMode::ThreadToThread);
        let t2n = run(FanoutMode::ThreadToNode);
        let total: usize = t2t.iter().map(|v| v.len()).sum();
        assert_eq!(total, 600);
        // Both modes must route identically (same hash→thread mapping).
        assert_eq!(t2t, t2n);
        let mut all: Vec<i64> = t2t.into_iter().flatten().collect();
        all.sort_unstable();
        assert_eq!(all, (0..600).collect::<Vec<_>>());
    }

    #[test]
    fn broadcast_reaches_all_threads() {
        for mode in [FanoutMode::ThreadToThread, FanoutMode::ThreadToNode] {
            let stats = Arc::new(NetStats::default());
            let recv = dxchg_broadcast(
                vec![(0, source((0..40).collect()))],
                vec![0, 1, 1],
                config(mode),
                stats,
            )
            .unwrap();
            for got in drain(recv) {
                assert_eq!(got, (0..40).collect::<Vec<_>>(), "mode {mode:?}");
            }
        }
    }

    #[test]
    fn buffer_accounting_scales_with_mode() {
        // 1 producer (deterministic peak), 4 consumer threads on 2 nodes:
        // T2T fanout 4 (threads), T2N fanout 2 (nodes) → half the buffers.
        let peak = |mode| {
            let stats = Arc::new(NetStats::default());
            let recv = dxchg_hash_split(
                vec![(0, source((0..1000).collect()))],
                vec![0, 0, 1, 1],
                vec![0],
                DxchgConfig {
                    buffer_bytes: 1024,
                    mode,
                    fault: None,
                    fabric: None,
                },
                stats.clone(),
            )
            .unwrap();
            drain(recv);
            stats.snapshot().buffer_bytes_peak
        };
        let t2t = peak(FanoutMode::ThreadToThread);
        let t2n = peak(FanoutMode::ThreadToNode);
        assert_eq!(t2t, 2 * 4 * 1024); // 2× (double buffering) × fanout × buf
        assert_eq!(t2n, 2 * 2 * 1024);
        assert!(t2n < t2t);
    }

    /// Faults every even-numbered buffer of an exchange. Pure function of
    /// the detail string, as the determinism contract requires.
    #[derive(Debug)]
    struct EveryOther(FaultAction);

    impl vectorh_common::fault::FaultHook for EveryOther {
        fn decide(&self, site: FaultSite, detail: &str, _attempt: u32) -> FaultAction {
            if site != FaultSite::XchgSend {
                return FaultAction::None;
            }
            let seq: u64 = detail.rsplit('#').next().unwrap().parse().unwrap();
            if seq.is_multiple_of(2) {
                self.0
            } else {
                FaultAction::None
            }
        }
    }

    #[test]
    fn channel_faults_never_lose_or_duplicate_rows() {
        for mode in [FanoutMode::ThreadToThread, FanoutMode::ThreadToNode] {
            for action in [
                FaultAction::Drop,
                FaultAction::Duplicate,
                FaultAction::Delay,
            ] {
                let stats = Arc::new(NetStats::default());
                let recv = dxchg_hash_split(
                    vec![
                        (0, source((0..300).collect())),
                        (1, source((300..600).collect())),
                    ],
                    vec![0, 0, 1, 1],
                    vec![0],
                    DxchgConfig {
                        buffer_bytes: 512,
                        mode,
                        fault: Some(Arc::new(EveryOther(action))),
                        fabric: None,
                    },
                    stats.clone(),
                )
                .unwrap();
                let mut all: Vec<i64> = drain(recv).into_iter().flatten().collect();
                all.sort_unstable();
                assert_eq!(
                    all,
                    (0..600).collect::<Vec<_>>(),
                    "mode {mode:?} action {action:?}"
                );
                let snap = stats.snapshot();
                let fired =
                    snap.dropped_messages + snap.duplicated_messages + snap.delayed_messages;
                assert!(fired > 0, "mode {mode:?} action {action:?} never fired");
            }
        }
    }

    #[test]
    fn faulty_union_matches_clean_union() {
        let run = |fault: Option<SharedFaultHook>| {
            let stats = Arc::new(NetStats::default());
            let r = dxchg_union(
                vec![
                    (0, source((0..250).collect())),
                    (1, source((250..500).collect())),
                ],
                0,
                DxchgConfig {
                    buffer_bytes: 256,
                    mode: FanoutMode::ThreadToNode,
                    fault,
                    fabric: None,
                },
                stats,
            )
            .unwrap();
            drain(vec![r]).remove(0)
        };
        let clean = run(None);
        let faulty = run(Some(Arc::new(EveryOther(FaultAction::Duplicate))));
        assert_eq!(clean, faulty);
    }

    #[test]
    fn dedup_state_stays_bounded_under_fault_storms() {
        // Regression for the unbounded `HashSet<u64>` dedup: a long stream
        // with constant reordering must keep receiver dedup residue at the
        // reorder depth (1 here: delay holds back one buffer), never at the
        // stream length.
        let stats = Arc::new(NetStats::default());
        let recv = dxchg_hash_split(
            vec![
                (0, source((0..3000).collect())),
                (1, source((3000..6000).collect())),
            ],
            vec![0, 0, 1, 1],
            vec![0],
            DxchgConfig {
                buffer_bytes: 64,
                mode: FanoutMode::ThreadToNode,
                fault: Some(Arc::new(EveryOther(FaultAction::Delay))),
                fabric: None,
            },
            stats.clone(),
        )
        .unwrap();
        let mut all: Vec<i64> = drain(recv).into_iter().flatten().collect();
        all.sort_unstable();
        assert_eq!(all, (0..6000).collect::<Vec<_>>());
        let messages: u64 = stats.channels().iter().map(|(_, c)| c.messages).sum();
        assert!(messages > 50, "want a long stream, got {messages} buffers");
        assert!(
            stats.dedup_residual_peak() <= 2,
            "dedup residue {} not bounded by the reorder window",
            stats.dedup_residual_peak()
        );
    }

    #[test]
    fn per_channel_stats_surface_traffic() {
        let stats = Arc::new(NetStats::default());
        let r = dxchg_union(
            vec![
                (0, source((0..500).collect())),
                (1, source((500..1000).collect())),
            ],
            0,
            config(FanoutMode::ThreadToNode),
            stats.clone(),
        )
        .unwrap();
        drain(vec![r]);
        let channels = stats.channels();
        let (name, c) = &channels[0];
        assert_eq!(name, "DXchgUnion");
        assert!(c.messages > 0);
        assert!(c.bytes > 0);
    }

    #[test]
    fn zero_buffer_bytes_flushes_every_batch() {
        let stats = Arc::new(NetStats::default());
        let r = dxchg_union(
            vec![
                (0, source((0..100).collect())),
                (1, source((100..200).collect())),
            ],
            0,
            DxchgConfig {
                buffer_bytes: 0,
                mode: FanoutMode::ThreadToNode,
                fault: None,
                fabric: None,
            },
            stats,
        )
        .unwrap();
        let got = drain(vec![r]).remove(0);
        assert_eq!(got, (0..200).collect::<Vec<_>>());
    }

    #[test]
    fn receivers_dropped_mid_stream_do_not_wedge_producers() {
        for mode in [FanoutMode::ThreadToThread, FanoutMode::ThreadToNode] {
            let stats = Arc::new(NetStats::default());
            let mut recv = dxchg_hash_split(
                vec![
                    (0, source((0..2000).collect())),
                    (1, source((2000..4000).collect())),
                ],
                vec![0, 0, 1, 1],
                vec![0],
                DxchgConfig {
                    buffer_bytes: 64,
                    mode,
                    fault: None,
                    fabric: None,
                },
                stats,
            )
            .unwrap();
            // Three consumers disappear; the survivor must still terminate
            // (producers abort their sends, never deadlock the exchange).
            recv.truncate(1);
            let got = drain(recv).remove(0);
            assert!(got.len() <= 4000, "mode {mode:?}");
        }
    }

    #[test]
    fn fabric_backed_exchange_matches_plain_channels() {
        use vectorh_transport::{InProcFabric, SharedEpoch, TcpFabric};
        let run = |fabric: Option<Arc<dyn Fabric>>| {
            let stats = Arc::new(NetStats::default());
            let recv = dxchg_hash_split(
                vec![
                    (0, source((0..300).collect())),
                    (1, source((300..600).collect())),
                ],
                vec![0, 0, 1, 1],
                vec![0],
                DxchgConfig {
                    buffer_bytes: 512,
                    mode: FanoutMode::ThreadToNode,
                    fault: None,
                    fabric,
                },
                stats.clone(),
            )
            .unwrap();
            (drain(recv), stats)
        };
        let (plain, _) = run(None);
        let (inproc, _) = run(Some(Arc::new(InProcFabric::new())));
        assert_eq!(plain, inproc);
        let epoch = Arc::new(SharedEpoch::new(1));
        let tcp = TcpFabric::loopback(&[NodeId(0), NodeId(1)], epoch, None).unwrap();
        let (over_tcp, stats) = run(Some(Arc::new(tcp)));
        assert_eq!(plain, over_tcp);
        // The framed path really ran: stats saw the same buffer traffic.
        assert!(stats.channels()[0].1.messages > 0);
    }

    #[test]
    fn intra_node_messages_avoid_serialization() {
        let stats = Arc::new(NetStats::default());
        // Producer and the sole consumer on the same node.
        let r = dxchg_union(
            vec![(3, source((0..50).collect()))],
            3,
            config(FanoutMode::ThreadToNode),
            stats.clone(),
        )
        .unwrap();
        drain(vec![r]);
        let snap = stats.snapshot();
        assert_eq!(snap.net_bytes, 0);
        assert!(snap.intra_messages > 0);
    }
}
