//! Distributed exchange (DXchg) operators.
//!
//! Implements §5's DXchg design over the simulated MPI layer:
//!
//! * Producers send **fixed-size messages** (≥256 KB in the paper; smaller
//!   in tests) and conceptually double-buffer so communication overlaps
//!   processing — modelled by accounting `2 × fanout × buffer` bytes per
//!   sender thread.
//! * **Intra-node** traffic passes pointers to sender-side batches, avoiding
//!   the memcpy MPI would do.
//! * **Thread-to-thread** mode: each sender partitions with fanout
//!   `Σ receiver threads`; per-node buffer memory grows as
//!   `2·N·C²·buffer` — the paper's 20 GB problem at 100×20.
//! * **Thread-to-node** mode: fanout is the number of nodes; a one-byte
//!   column per tuple identifies the receiving thread, and a per-node demux
//!   lets consumer threads "selectively consume data from incoming buffers
//!   using the one-byte-column".

use std::sync::Arc;
use std::time::Instant;

use vectorh_common::channel::{bounded, Receiver, Sender};
use vectorh_common::fault::{FaultAction, FaultSite, SharedFaultHook};
use vectorh_common::{Result, Schema, VhError};
use vectorh_exec::operator::{Counters, OpProfile};
use vectorh_exec::{Batch, Operator};

use crate::buffer::{make_message, open_message, Message};
use crate::stats::NetStats;
use crate::xchg::{partition_positions, Partitioning};

/// Sender fanout strategy (§5).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FanoutMode {
    /// Private buffers per receiver *thread* (original implementation).
    ThreadToThread,
    /// Buffers per receiver *node*, with a route byte per tuple.
    ThreadToNode,
}

/// DXchg tuning.
#[derive(Debug, Clone)]
pub struct DxchgConfig {
    /// Flush threshold per buffer (paper: ≥256 KB for good MPI throughput).
    pub buffer_bytes: usize,
    pub mode: FanoutMode,
    /// Optional fault hook consulted on every buffer flush
    /// ([`FaultSite::XchgSend`]): drop (lost + retransmitted), duplicate
    /// (deduped by receivers via message tags), delay (bounded reorder).
    pub fault: Option<SharedFaultHook>,
}

impl Default for DxchgConfig {
    fn default() -> Self {
        DxchgConfig {
            buffer_bytes: 256 * 1024,
            mode: FanoutMode::ThreadToNode,
            fault: None,
        }
    }
}

/// A message plus a tag unique within its exchange, so receivers can
/// discard injected duplicates.
#[derive(Clone)]
struct Envelope {
    tag: u64,
    msg: Message,
}

type Payload = std::result::Result<Envelope, VhError>;

/// Producer-side send path of one exchange: owns the destination channels
/// and applies injected channel faults. The transport is reliable — a
/// "dropped" buffer is retransmitted, a delayed buffer is delivered after
/// the next one to the same destination (or at end-of-stream) — so faults
/// perturb schedules, never correctness.
struct SendPlane {
    txs: Vec<Sender<Payload>>,
    hook: Option<SharedFaultHook>,
    name: &'static str,
    wi: usize,
    stats: Arc<NetStats>,
    seq: u64,
    held: Vec<Option<Envelope>>,
}

impl SendPlane {
    fn new(
        txs: Vec<Sender<Payload>>,
        hook: Option<SharedFaultHook>,
        name: &'static str,
        wi: usize,
        stats: Arc<NetStats>,
    ) -> Self {
        let held = (0..txs.len()).map(|_| None).collect();
        SendPlane {
            txs,
            hook,
            name,
            wi,
            stats,
            seq: 0,
            held,
        }
    }

    /// Deliver `env` to `dest`, then any earlier buffer held back by a
    /// delay fault (which is what makes the delay an observable reorder).
    fn deliver(&mut self, dest: usize, env: Envelope) -> bool {
        if self.txs[dest].send(Ok(env)).is_err() {
            return false;
        }
        match self.held[dest].take() {
            Some(prev) => self.txs[dest].send(Ok(prev)).is_ok(),
            None => true,
        }
    }

    /// Send one logical message, applying the configured channel fault.
    fn send(&mut self, dest: usize, msg: Message) -> bool {
        self.seq += 1;
        let tag = ((self.wi as u64 + 1) << 32) | self.seq;
        let env = Envelope { tag, msg };
        let action = match &self.hook {
            Some(h) => {
                let detail = format!("{}:w{}->d{}#{}", self.name, self.wi, dest, self.seq);
                h.decide(FaultSite::XchgSend, &detail, 0)
            }
            None => FaultAction::None,
        };
        match action {
            FaultAction::Drop => {
                // Lost in flight; the reliable sender retransmits.
                self.stats.record_dropped();
                self.deliver(dest, env)
            }
            FaultAction::Duplicate => {
                self.stats.record_duplicated();
                let copy = env.clone();
                self.deliver(dest, env) && self.deliver(dest, copy)
            }
            FaultAction::Delay => {
                self.stats.record_delayed();
                let prev = self.held[dest].replace(env);
                match prev {
                    Some(p) => self.txs[dest].send(Ok(p)).is_ok(),
                    None => true,
                }
            }
            _ => self.deliver(dest, env),
        }
    }

    /// Flush any buffers still held back by delay faults (end of stream).
    fn finish(&mut self) {
        for dest in 0..self.txs.len() {
            if let Some(env) = self.held[dest].take() {
                let _ = self.txs[dest].send(Ok(env));
            }
        }
    }

    fn error(&self, e: VhError) {
        let _ = self.txs[0].send(Err(e));
    }
}

/// Consumer-side operator of a DXchg: thread `consumer_idx` on a node.
pub struct DxchgReceiver {
    name: &'static str,
    schema: Arc<Schema>,
    rx: Receiver<Payload>,
    /// Which route byte this receiver consumes (None = take everything).
    route_filter: Option<u8>,
    /// Tags already consumed, so injected duplicate deliveries are dropped.
    seen: std::collections::HashSet<u64>,
    counters: Counters,
    consumer_wait_ns: u64,
    profiles: Arc<ProfileHub>,
}

/// Shared collection point for producer-pipeline profiles.
pub struct ProfileHub {
    rx: Receiver<crate::xchg::WorkerProfile>,
    collected: vectorh_common::sync::Mutex<Vec<crate::xchg::WorkerProfile>>,
}

impl ProfileHub {
    fn drain(&self) -> Vec<crate::xchg::WorkerProfile> {
        let mut cache = self.collected.lock();
        cache.extend(self.rx.try_iter());
        cache.sort_by_key(|w| w.worker);
        cache.clone()
    }
}

impl DxchgReceiver {
    pub fn consumer_wait_ns(&self) -> u64 {
        self.consumer_wait_ns
    }
}

impl Operator for DxchgReceiver {
    fn schema(&self) -> Arc<Schema> {
        self.schema.clone()
    }

    fn next(&mut self) -> Result<Option<Batch>> {
        loop {
            let start = Instant::now();
            let res = self.rx.recv();
            let waited = start.elapsed().as_nanos() as u64;
            self.consumer_wait_ns += waited;
            self.counters.cum_time_ns += waited;
            self.counters.calls += 1;
            match res {
                Err(_) => return Ok(None),
                Ok(Err(e)) => return Err(e),
                Ok(Ok(env)) => {
                    if !self.seen.insert(env.tag) {
                        continue; // injected duplicate delivery
                    }
                    let (batch, route) = open_message(env.msg, self.schema.clone())?;
                    let batch = match (self.route_filter, route) {
                        (Some(me), Some(route)) => {
                            // Selectively consume my tuples by route byte.
                            let mine: Vec<usize> = route
                                .iter()
                                .enumerate()
                                .filter(|(_, r)| **r == me)
                                .map(|(i, _)| i)
                                .collect();
                            if mine.is_empty() {
                                continue;
                            }
                            if mine.len() == batch.len() {
                                batch
                            } else {
                                batch.gather(&mine)
                            }
                        }
                        _ => batch,
                    };
                    self.counters.rows_in += batch.len() as u64;
                    self.counters.rows_out += batch.len() as u64;
                    return Ok(Some(batch));
                }
            }
        }
    }

    fn profile(&self) -> OpProfile {
        self.counters.profile(self.name)
    }

    fn children(&self) -> Vec<&dyn Operator> {
        vec![]
    }

    fn remote_profiles(&self) -> Vec<vectorh_exec::operator::RemoteProfile> {
        self.profiles
            .drain()
            .into_iter()
            .map(|w| vectorh_exec::operator::RemoteProfile {
                label: format!("sender {}", w.worker),
                lines: w.lines,
                rows: w.rows_produced,
                wall_ns: w.wall_ns,
            })
            .collect()
    }
}

/// Create a distributed hash-split exchange.
///
/// `producers[i] = (node, pipeline)`; `consumers[j] = node` places consumer
/// thread `j`. Returns one receiver per consumer thread.
pub fn dxchg_hash_split(
    producers: Vec<(u32, Box<dyn Operator>)>,
    consumers: Vec<u32>,
    keys: Vec<usize>,
    config: DxchgConfig,
    stats: Arc<NetStats>,
) -> Result<Vec<DxchgReceiver>> {
    dxchg(
        "DXchgHashSplit",
        producers,
        consumers,
        Partitioning::Hash { keys },
        config,
        stats,
    )
}

/// Distributed union: everything funnels to one consumer thread.
pub fn dxchg_union(
    producers: Vec<(u32, Box<dyn Operator>)>,
    consumer_node: u32,
    config: DxchgConfig,
    stats: Arc<NetStats>,
) -> Result<DxchgReceiver> {
    let mut v = dxchg(
        "DXchgUnion",
        producers,
        vec![consumer_node],
        Partitioning::Union,
        config,
        stats,
    )?;
    Ok(v.remove(0))
}

/// Distributed broadcast: every consumer thread sees all rows.
pub fn dxchg_broadcast(
    producers: Vec<(u32, Box<dyn Operator>)>,
    consumers: Vec<u32>,
    config: DxchgConfig,
    stats: Arc<NetStats>,
) -> Result<Vec<DxchgReceiver>> {
    dxchg(
        "DXchgBroadcast",
        producers,
        consumers,
        Partitioning::Broadcast,
        config,
        stats,
    )
}

/// Generic distributed exchange.
pub fn dxchg(
    name: &'static str,
    producers: Vec<(u32, Box<dyn Operator>)>,
    consumers: Vec<u32>,
    partitioning: Partitioning,
    config: DxchgConfig,
    stats: Arc<NetStats>,
) -> Result<Vec<DxchgReceiver>> {
    if producers.is_empty() || consumers.is_empty() {
        return Err(VhError::Net("dxchg needs producers and consumers".into()));
    }
    let schema = producers[0].1.schema();

    match config.mode {
        FanoutMode::ThreadToThread => dxchg_t2t(
            name,
            producers,
            consumers,
            partitioning,
            config,
            stats,
            schema,
        ),
        FanoutMode::ThreadToNode => dxchg_t2n(
            name,
            producers,
            consumers,
            partitioning,
            config,
            stats,
            schema,
        ),
    }
}

/// Thread-to-thread: one buffer (and channel) per consumer thread.
#[allow(clippy::too_many_arguments)]
fn dxchg_t2t(
    name: &'static str,
    producers: Vec<(u32, Box<dyn Operator>)>,
    consumers: Vec<u32>,
    partitioning: Partitioning,
    config: DxchgConfig,
    stats: Arc<NetStats>,
    schema: Arc<Schema>,
) -> Result<Vec<DxchgReceiver>> {
    let channels: Vec<(Sender<Payload>, Receiver<Payload>)> = (0..consumers.len())
        .map(|_| bounded(crate::xchg::CHANNEL_CAP))
        .collect();
    let (ptx, prx) = bounded::<crate::xchg::WorkerProfile>(producers.len().max(1));
    for (wi, (prod_node, mut prod)) in producers.into_iter().enumerate() {
        let senders: Vec<Sender<Payload>> = channels.iter().map(|(s, _)| s.clone()).collect();
        let consumers = consumers.clone();
        let partitioning = partitioning.clone();
        let stats = stats.clone();
        let schema = schema.clone();
        let buffer_bytes = config.buffer_bytes;
        let hook = config.fault.clone();
        let ptx = ptx.clone();
        std::thread::spawn(move || {
            let t0 = Instant::now();
            let mut rows_produced = 0u64;
            // Fanout = number of consumer threads; double-buffered.
            let fanout = consumers.len();
            let accounted = (2 * fanout * buffer_bytes) as u64;
            stats.alloc_buffers(accounted);
            let mut plane = SendPlane::new(senders, hook, name, wi, stats.clone());
            let mut bufs: Vec<Batch> = (0..fanout).map(|_| Batch::empty(schema.clone())).collect();
            let flush = |plane: &mut SendPlane, c: usize, buf: &mut Batch| -> bool {
                if buf.is_empty() {
                    return true;
                }
                let full = std::mem::replace(buf, Batch::empty(schema.clone()));
                let msg = make_message(full, None, prod_node, consumers[c], &plane.stats);
                plane.send(c, msg)
            };
            'run: loop {
                match prod.next() {
                    Ok(Some(batch)) => {
                        rows_produced += batch.len() as u64;
                        match partition_positions(&batch, &partitioning, fanout) {
                            Ok(parts) => {
                                for (c, pos) in parts.iter().enumerate() {
                                    if pos.is_empty() {
                                        continue;
                                    }
                                    let piece = batch.gather_u32(pos);
                                    bufs[c].append(&piece).ok();
                                    let size: usize =
                                        bufs[c].columns.iter().map(|x| x.byte_size()).sum();
                                    if size >= buffer_bytes && !flush(&mut plane, c, &mut bufs[c]) {
                                        break 'run;
                                    }
                                }
                            }
                            Err(e) => {
                                plane.error(e);
                                break 'run;
                            }
                        }
                    }
                    Ok(None) => {
                        for (c, buf) in bufs.iter_mut().enumerate().take(fanout) {
                            let mut b = std::mem::replace(buf, Batch::empty(schema.clone()));
                            if !flush(&mut plane, c, &mut b) {
                                break;
                            }
                        }
                        break 'run;
                    }
                    Err(e) => {
                        plane.error(e);
                        break 'run;
                    }
                }
            }
            plane.finish();
            stats.free_buffers(accounted);
            let _ = ptx.send(crate::xchg::WorkerProfile {
                worker: wi,
                lines: vectorh_exec::operator::collect_profiles(prod.as_ref()),
                rows_produced,
                wall_ns: t0.elapsed().as_nanos() as u64,
            });
        });
    }
    drop(ptx);
    let hub = Arc::new(ProfileHub {
        rx: prx,
        collected: vectorh_common::sync::Mutex::new(Vec::new()),
    });
    Ok(channels
        .into_iter()
        .map(|(_, rx)| DxchgReceiver {
            name,
            schema: schema.clone(),
            rx,
            route_filter: None,
            seen: Default::default(),
            counters: Counters::default(),
            consumer_wait_ns: 0,
            profiles: hub.clone(),
        })
        .collect())
}

/// Thread-to-node: buffers per node with a route byte; consumer threads
/// filter their rows out of node-level messages.
#[allow(clippy::too_many_arguments)]
fn dxchg_t2n(
    name: &'static str,
    producers: Vec<(u32, Box<dyn Operator>)>,
    consumers: Vec<u32>,
    partitioning: Partitioning,
    config: DxchgConfig,
    stats: Arc<NetStats>,
    schema: Arc<Schema>,
) -> Result<Vec<DxchgReceiver>> {
    // Group consumer threads by node; route byte = index within node.
    let mut nodes: Vec<u32> = consumers.clone();
    nodes.sort_unstable();
    nodes.dedup();
    // consumer j -> (node_idx, route byte)
    let mut within: std::collections::HashMap<u32, u8> = Default::default();
    let routing: Vec<(usize, u8)> = consumers
        .iter()
        .map(|cn| {
            let ni = nodes.iter().position(|n| n == cn).unwrap();
            let r = within.entry(*cn).or_insert(0);
            let route = *r;
            *r += 1;
            (ni, route)
        })
        .collect();
    let threads_per_node: Vec<u8> = nodes
        .iter()
        .map(|n| consumers.iter().filter(|c| *c == n).count() as u8)
        .collect();
    if threads_per_node.contains(&0) {
        return Err(VhError::Net("node without consumer threads".into()));
    }

    // One fan-in channel per node; a demux thread forwards each node-level
    // message to every consumer thread on the node, and the receivers
    // "selectively consume" their rows by route byte.
    let node_ch: Vec<(Sender<Payload>, Receiver<Payload>)> = (0..nodes.len())
        .map(|_| bounded(crate::xchg::CHANNEL_CAP))
        .collect();
    let thread_ch: Vec<(Sender<Payload>, Receiver<Payload>)> = (0..consumers.len())
        .map(|_| bounded(crate::xchg::CHANNEL_CAP))
        .collect();
    for (ni, _) in nodes.iter().enumerate() {
        let node_rx = node_ch[ni].1.clone();
        let thread_txs: Vec<Sender<Payload>> = routing
            .iter()
            .enumerate()
            .filter(|(_, (n, _))| *n == ni)
            .map(|(j, _)| thread_ch[j].0.clone())
            .collect();
        std::thread::spawn(move || {
            while let Ok(payload) = node_rx.recv() {
                match payload {
                    Ok(env) => {
                        for tx in &thread_txs {
                            if tx.send(Ok(env.clone())).is_err() {
                                return;
                            }
                        }
                    }
                    Err(e) => {
                        for tx in &thread_txs {
                            let _ = tx.send(Err(e.clone()));
                        }
                        return;
                    }
                }
            }
        });
    }

    let (ptx, prx) = bounded::<crate::xchg::WorkerProfile>(producers.len().max(1));
    for (wi, (prod_node, mut prod)) in producers.into_iter().enumerate() {
        let node_txs: Vec<Sender<Payload>> = node_ch.iter().map(|(s, _)| s.clone()).collect();
        let nodes = nodes.clone();
        let routing = routing.clone();
        let partitioning = partitioning.clone();
        let stats = stats.clone();
        let schema = schema.clone();
        let buffer_bytes = config.buffer_bytes;
        let hook = config.fault.clone();
        let n_consumers = consumers.len();
        let ptx = ptx.clone();
        std::thread::spawn(move || {
            let t0 = Instant::now();
            let mut rows_produced = 0u64;
            let fanout = nodes.len();
            let accounted = (2 * fanout * buffer_bytes) as u64;
            stats.alloc_buffers(accounted);
            let mut plane = SendPlane::new(node_txs, hook, name, wi, stats.clone());
            let mut bufs: Vec<(Batch, Vec<u8>)> = (0..fanout)
                .map(|_| (Batch::empty(schema.clone()), Vec::new()))
                .collect();
            let flush = |plane: &mut SendPlane, ni: usize, buf: &mut (Batch, Vec<u8>)| -> bool {
                if buf.0.is_empty() {
                    return true;
                }
                let batch = std::mem::replace(&mut buf.0, Batch::empty(schema.clone()));
                let route = std::mem::take(&mut buf.1);
                let msg = make_message(batch, Some(route), prod_node, nodes[ni], &plane.stats);
                plane.send(ni, msg)
            };
            'run: loop {
                match prod.next() {
                    Ok(Some(batch)) => {
                        rows_produced += batch.len() as u64;
                        // Partition to consumer threads, then regroup by node
                        // attaching the within-node route byte.
                        match partition_positions(&batch, &partitioning, n_consumers) {
                            Ok(parts) => {
                                for (j, pos) in parts.iter().enumerate() {
                                    if pos.is_empty() {
                                        continue;
                                    }
                                    let (ni, route) = routing[j];
                                    let piece = batch.gather_u32(pos);
                                    let n = piece.len();
                                    bufs[ni].0.append(&piece).ok();
                                    bufs[ni].1.extend(std::iter::repeat_n(route, n));
                                    let size: usize = bufs[ni]
                                        .0
                                        .columns
                                        .iter()
                                        .map(|x| x.byte_size())
                                        .sum::<usize>()
                                        + bufs[ni].1.len();
                                    if size >= buffer_bytes {
                                        let mut b = std::mem::replace(
                                            &mut bufs[ni],
                                            (Batch::empty(schema.clone()), Vec::new()),
                                        );
                                        if !flush(&mut plane, ni, &mut b) {
                                            break 'run;
                                        }
                                    }
                                }
                            }
                            Err(e) => {
                                plane.error(e);
                                break 'run;
                            }
                        }
                    }
                    Ok(None) => {
                        for (ni, buf) in bufs.iter_mut().enumerate().take(fanout) {
                            let mut b =
                                std::mem::replace(buf, (Batch::empty(schema.clone()), Vec::new()));
                            if !flush(&mut plane, ni, &mut b) {
                                break;
                            }
                        }
                        break 'run;
                    }
                    Err(e) => {
                        plane.error(e);
                        break 'run;
                    }
                }
            }
            plane.finish();
            stats.free_buffers(accounted);
            let _ = ptx.send(crate::xchg::WorkerProfile {
                worker: wi,
                lines: vectorh_exec::operator::collect_profiles(prod.as_ref()),
                rows_produced,
                wall_ns: t0.elapsed().as_nanos() as u64,
            });
        });
    }
    drop(ptx);
    let hub = Arc::new(ProfileHub {
        rx: prx,
        collected: vectorh_common::sync::Mutex::new(Vec::new()),
    });

    Ok(thread_ch
        .into_iter()
        .enumerate()
        .map(|(j, (_, rx))| DxchgReceiver {
            name,
            schema: schema.clone(),
            rx,
            route_filter: Some(routing[j].1),
            seen: Default::default(),
            counters: Counters::default(),
            consumer_wait_ns: 0,
            profiles: hub.clone(),
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use vectorh_common::{ColumnData, DataType};
    use vectorh_exec::operator::BatchSource;

    fn source(vals: Vec<i64>) -> Box<dyn Operator> {
        let schema = Arc::new(Schema::of(&[("x", DataType::I64)]));
        let batch = Batch::new(schema, vec![ColumnData::I64(vals)]).unwrap();
        Box::new(BatchSource::from_batch(batch, 32))
    }

    fn config(mode: FanoutMode) -> DxchgConfig {
        DxchgConfig {
            buffer_bytes: 512,
            mode,
            fault: None,
        }
    }

    fn drain(mut ops: Vec<DxchgReceiver>) -> Vec<Vec<i64>> {
        ops.iter_mut()
            .map(|r| {
                let mut got = Vec::new();
                while let Some(b) = r.next().unwrap() {
                    got.extend(b.column(0).as_i64().unwrap().iter().copied());
                }
                got.sort_unstable();
                got
            })
            .collect()
    }

    #[test]
    fn union_both_modes() {
        for mode in [FanoutMode::ThreadToThread, FanoutMode::ThreadToNode] {
            let stats = Arc::new(NetStats::default());
            let r = dxchg_union(
                vec![
                    (0, source((0..100).collect())),
                    (1, source((100..200).collect())),
                ],
                0,
                config(mode),
                stats.clone(),
            )
            .unwrap();
            let got = drain(vec![r]);
            assert_eq!(got[0], (0..200).collect::<Vec<_>>(), "mode {mode:?}");
            // Producer on node 1 must have crossed the network.
            assert!(stats.snapshot().net_messages > 0);
            assert!(stats.snapshot().intra_messages > 0);
        }
    }

    #[test]
    fn hash_split_complete_and_consistent_across_modes() {
        let run = |mode| {
            let stats = Arc::new(NetStats::default());
            let recv = dxchg_hash_split(
                vec![
                    (0, source((0..300).collect())),
                    (1, source((300..600).collect())),
                ],
                vec![0, 0, 1, 1], // 2 nodes × 2 threads
                vec![0],
                config(mode),
                stats,
            )
            .unwrap();
            drain(recv)
        };
        let t2t = run(FanoutMode::ThreadToThread);
        let t2n = run(FanoutMode::ThreadToNode);
        let total: usize = t2t.iter().map(|v| v.len()).sum();
        assert_eq!(total, 600);
        // Both modes must route identically (same hash→thread mapping).
        assert_eq!(t2t, t2n);
        let mut all: Vec<i64> = t2t.into_iter().flatten().collect();
        all.sort_unstable();
        assert_eq!(all, (0..600).collect::<Vec<_>>());
    }

    #[test]
    fn broadcast_reaches_all_threads() {
        for mode in [FanoutMode::ThreadToThread, FanoutMode::ThreadToNode] {
            let stats = Arc::new(NetStats::default());
            let recv = dxchg_broadcast(
                vec![(0, source((0..40).collect()))],
                vec![0, 1, 1],
                config(mode),
                stats,
            )
            .unwrap();
            for got in drain(recv) {
                assert_eq!(got, (0..40).collect::<Vec<_>>(), "mode {mode:?}");
            }
        }
    }

    #[test]
    fn buffer_accounting_scales_with_mode() {
        // 1 producer (deterministic peak), 4 consumer threads on 2 nodes:
        // T2T fanout 4 (threads), T2N fanout 2 (nodes) → half the buffers.
        let peak = |mode| {
            let stats = Arc::new(NetStats::default());
            let recv = dxchg_hash_split(
                vec![(0, source((0..1000).collect()))],
                vec![0, 0, 1, 1],
                vec![0],
                DxchgConfig {
                    buffer_bytes: 1024,
                    mode,
                    fault: None,
                },
                stats.clone(),
            )
            .unwrap();
            drain(recv);
            stats.snapshot().buffer_bytes_peak
        };
        let t2t = peak(FanoutMode::ThreadToThread);
        let t2n = peak(FanoutMode::ThreadToNode);
        assert_eq!(t2t, 2 * 4 * 1024); // 2× (double buffering) × fanout × buf
        assert_eq!(t2n, 2 * 2 * 1024);
        assert!(t2n < t2t);
    }

    /// Faults every even-numbered buffer of an exchange. Pure function of
    /// the detail string, as the determinism contract requires.
    #[derive(Debug)]
    struct EveryOther(FaultAction);

    impl vectorh_common::fault::FaultHook for EveryOther {
        fn decide(&self, site: FaultSite, detail: &str, _attempt: u32) -> FaultAction {
            if site != FaultSite::XchgSend {
                return FaultAction::None;
            }
            let seq: u64 = detail.rsplit('#').next().unwrap().parse().unwrap();
            if seq.is_multiple_of(2) {
                self.0
            } else {
                FaultAction::None
            }
        }
    }

    #[test]
    fn channel_faults_never_lose_or_duplicate_rows() {
        for mode in [FanoutMode::ThreadToThread, FanoutMode::ThreadToNode] {
            for action in [
                FaultAction::Drop,
                FaultAction::Duplicate,
                FaultAction::Delay,
            ] {
                let stats = Arc::new(NetStats::default());
                let recv = dxchg_hash_split(
                    vec![
                        (0, source((0..300).collect())),
                        (1, source((300..600).collect())),
                    ],
                    vec![0, 0, 1, 1],
                    vec![0],
                    DxchgConfig {
                        buffer_bytes: 512,
                        mode,
                        fault: Some(Arc::new(EveryOther(action))),
                    },
                    stats.clone(),
                )
                .unwrap();
                let mut all: Vec<i64> = drain(recv).into_iter().flatten().collect();
                all.sort_unstable();
                assert_eq!(
                    all,
                    (0..600).collect::<Vec<_>>(),
                    "mode {mode:?} action {action:?}"
                );
                let snap = stats.snapshot();
                let fired =
                    snap.dropped_messages + snap.duplicated_messages + snap.delayed_messages;
                assert!(fired > 0, "mode {mode:?} action {action:?} never fired");
            }
        }
    }

    #[test]
    fn faulty_union_matches_clean_union() {
        let run = |fault: Option<SharedFaultHook>| {
            let stats = Arc::new(NetStats::default());
            let r = dxchg_union(
                vec![
                    (0, source((0..250).collect())),
                    (1, source((250..500).collect())),
                ],
                0,
                DxchgConfig {
                    buffer_bytes: 256,
                    mode: FanoutMode::ThreadToNode,
                    fault,
                },
                stats,
            )
            .unwrap();
            drain(vec![r]).remove(0)
        };
        let clean = run(None);
        let faulty = run(Some(Arc::new(EveryOther(FaultAction::Duplicate))));
        assert_eq!(clean, faulty);
    }

    #[test]
    fn intra_node_messages_avoid_serialization() {
        let stats = Arc::new(NetStats::default());
        // Producer and the sole consumer on the same node.
        let r = dxchg_union(
            vec![(3, source((0..50).collect()))],
            3,
            config(FanoutMode::ThreadToNode),
            stats.clone(),
        )
        .unwrap();
        drain(vec![r]);
        let snap = stats.snapshot();
        assert_eq!(snap.net_bytes, 0);
        assert!(snap.intra_messages > 0);
    }
}
