//! PAX-layout message serialization.
//!
//! "Tuples are serialized into MPI message buffers in a PAX-like layout,
//! such that Receivers can return vectors directly out of these buffers
//! with minimal processing and no extra copying" (§5). The layout here is
//! the same: a header, then each column's values contiguously, so
//! deserialization rebuilds column vectors with one pass per column.
//! An optional trailing one-byte *route* column carries the receiving
//! thread id in thread-to-node mode.

use std::sync::Arc;

use vectorh_common::{ColumnData, Result, Schema, VhError};

use crate::stats::NetStats;

/// A batch serialized for the wire, or pointer-passed intra-node.
#[derive(Clone)]
pub enum Message {
    /// Serialized PAX buffer (+ optional route column).
    Wire {
        bytes: Vec<u8>,
        route: Option<Vec<u8>>,
    },
    /// Intra-node shortcut: the batch travels by pointer.
    Local {
        batch: crate::xchg::BatchMsg,
        route: Option<Vec<u8>>,
    },
}

impl Message {
    /// Bytes this message occupies in transit (serialized size for wire
    /// messages, column footprint for pointer-passed ones).
    pub fn transit_bytes(&self) -> usize {
        match self {
            Message::Wire { bytes, route } => bytes.len() + route.as_ref().map_or(0, |r| r.len()),
            Message::Local { batch, route } => {
                batch.0.columns.iter().map(|c| c.byte_size()).sum::<usize>()
                    + route.as_ref().map_or(0, |r| r.len())
            }
        }
    }
}

/// Serialize the columns of a batch into a PAX buffer.
pub fn serialize(batch: &vectorh_exec::Batch) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&(batch.len() as u32).to_le_bytes());
    out.extend_from_slice(&(batch.columns.len() as u32).to_le_bytes());
    for col in &batch.columns {
        match col {
            ColumnData::I32(v) => {
                out.push(0);
                for x in v {
                    out.extend_from_slice(&x.to_le_bytes());
                }
            }
            ColumnData::I64(v) => {
                out.push(1);
                for x in v {
                    out.extend_from_slice(&x.to_le_bytes());
                }
            }
            ColumnData::F64(v) => {
                out.push(2);
                for x in v {
                    out.extend_from_slice(&x.to_le_bytes());
                }
            }
            ColumnData::Str(v) => {
                out.push(3);
                for s in v {
                    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
                    out.extend_from_slice(s.as_bytes());
                }
            }
        }
    }
    out
}

/// Deserialize a PAX buffer back into a batch of `schema`.
pub fn deserialize(bytes: &[u8], schema: Arc<Schema>) -> Result<vectorh_exec::Batch> {
    let err = || VhError::Net("truncated exchange message".into());
    let mut pos = 0usize;
    let take = |pos: &mut usize, n: usize| -> Result<&[u8]> {
        let s = bytes.get(*pos..*pos + n).ok_or_else(err)?;
        *pos += n;
        Ok(s)
    };
    let n_rows = u32::from_le_bytes(take(&mut pos, 4)?.try_into().unwrap()) as usize;
    let n_cols = u32::from_le_bytes(take(&mut pos, 4)?.try_into().unwrap()) as usize;
    if n_cols != schema.len() {
        return Err(VhError::Net("message column count mismatch".into()));
    }
    let mut columns = Vec::with_capacity(n_cols);
    for _ in 0..n_cols {
        let tag = take(&mut pos, 1)?[0];
        columns.push(match tag {
            0 => {
                let mut v = Vec::with_capacity(n_rows);
                for _ in 0..n_rows {
                    v.push(i32::from_le_bytes(take(&mut pos, 4)?.try_into().unwrap()));
                }
                ColumnData::I32(v)
            }
            1 => {
                let mut v = Vec::with_capacity(n_rows);
                for _ in 0..n_rows {
                    v.push(i64::from_le_bytes(take(&mut pos, 8)?.try_into().unwrap()));
                }
                ColumnData::I64(v)
            }
            2 => {
                let mut v = Vec::with_capacity(n_rows);
                for _ in 0..n_rows {
                    v.push(f64::from_le_bytes(take(&mut pos, 8)?.try_into().unwrap()));
                }
                ColumnData::F64(v)
            }
            3 => {
                let mut v = Vec::with_capacity(n_rows);
                for _ in 0..n_rows {
                    let len = u32::from_le_bytes(take(&mut pos, 4)?.try_into().unwrap()) as usize;
                    let s = take(&mut pos, len)?;
                    v.push(String::from_utf8(s.to_vec()).map_err(|_| err())?);
                }
                ColumnData::Str(v)
            }
            _ => return Err(VhError::Net("bad column tag".into())),
        });
    }
    vectorh_exec::Batch::new(schema, columns)
}

/// Send a batch from `from_node` to `to_node`, serializing only when it
/// actually crosses nodes, and recording stats.
pub fn make_message(
    batch: vectorh_exec::Batch,
    route: Option<Vec<u8>>,
    from_node: u32,
    to_node: u32,
    stats: &NetStats,
) -> Message {
    if from_node == to_node {
        stats.record_intra_message(batch.len() as u64);
        Message::Local {
            batch: crate::xchg::BatchMsg(batch),
            route,
        }
    } else {
        let bytes = serialize(&batch);
        stats.record_net_message(
            (bytes.len() + route.as_ref().map_or(0, |r| r.len())) as u64,
            batch.len() as u64,
        );
        Message::Wire { bytes, route }
    }
}

/// Unpack a message into a batch (+ route column).
pub fn open_message(
    msg: Message,
    schema: Arc<Schema>,
) -> Result<(vectorh_exec::Batch, Option<Vec<u8>>)> {
    match msg {
        Message::Local { batch, route } => Ok((batch.0, route)),
        Message::Wire { bytes, route } => Ok((deserialize(&bytes, schema)?, route)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vectorh_common::DataType;
    use vectorh_exec::Batch;

    fn batch() -> Batch {
        let schema = Arc::new(Schema::of(&[
            ("a", DataType::I64),
            ("d", DataType::Date),
            ("f", DataType::F64),
            ("s", DataType::Str),
        ]));
        Batch::new(
            schema,
            vec![
                ColumnData::I64(vec![1, -2, 3]),
                ColumnData::I32(vec![100, 200, 300]),
                ColumnData::F64(vec![0.5, -1.5, 2.5]),
                ColumnData::Str(vec!["x".into(), "".into(), "hello".into()]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn roundtrip() {
        let b = batch();
        let bytes = serialize(&b);
        let d = deserialize(&bytes, b.schema.clone()).unwrap();
        assert_eq!(d.rows(), b.rows());
    }

    #[test]
    fn truncated_rejected() {
        let b = batch();
        let bytes = serialize(&b);
        assert!(deserialize(&bytes[..bytes.len() - 2], b.schema.clone()).is_err());
        assert!(deserialize(&bytes[..3], b.schema.clone()).is_err());
    }

    #[test]
    fn intra_node_passes_pointer() {
        let stats = NetStats::default();
        let msg = make_message(batch(), None, 1, 1, &stats);
        assert!(matches!(msg, Message::Local { .. }));
        let snap = stats.snapshot();
        assert_eq!(snap.net_bytes, 0);
        assert_eq!(snap.intra_messages, 1);
        assert_eq!(snap.rows, 3);
    }

    #[test]
    fn cross_node_serializes() {
        let stats = NetStats::default();
        let msg = make_message(batch(), Some(vec![0, 1, 0]), 1, 2, &stats);
        assert!(matches!(msg, Message::Wire { .. }));
        let snap = stats.snapshot();
        assert!(snap.net_bytes > 0);
        assert_eq!(snap.net_messages, 1);
        let (b, route) = open_message(msg, batch().schema.clone()).unwrap();
        assert_eq!(b.len(), 3);
        assert_eq!(route, Some(vec![0, 1, 0]));
    }
}
