//! Simulated MPI and exchange operators.
//!
//! §5 of the paper: VectorH parallelism is encapsulated entirely in
//! *exchange* (Xchg) operators — all other operators stay
//! parallelism-unaware. This crate provides:
//!
//! * [`xchg`] — intra-node exchanges (`XchgHashSplit`, `XchgUnion`,
//!   `XchgBroadcast`, `XchgMergeUnion`, `XchgRangeSplit`): producer
//!   pipelines run on their own threads (a *stream* = a thread, as in the
//!   paper), pushing vectors through bounded channels to consumer-side
//!   operators.
//! * [`dxchg`] — distributed exchanges across simulated nodes, with the two
//!   fanout strategies of the paper: **thread-to-thread** (fanout =
//!   `nodes × cores`, private buffers per sender, best at small scale) and
//!   **thread-to-node** (fanout = `nodes`, a one-byte column routes each
//!   tuple to its receiver thread, cutting buffering from `2·N·C²` to
//!   `2·N·C` buffers per node).
//! * [`buffer`] — PAX-layout message serialization standing in for MPI
//!   buffers (≥256 KB for good throughput); intra-node traffic passes
//!   pointers instead, exactly like VectorH's memcpy-avoiding optimization.
//! * [`stats`] — network accounting (messages, bytes, peak buffer memory)
//!   that the §5 DXchg benchmarks report.
//!
//! The "MPI" here is MPMC channels between threads of one process; the
//! properties the paper measures (buffer memory scaling, message counts,
//! serialization cost, intra-node shortcuts) are preserved.

pub mod buffer;
pub mod dxchg;
pub mod heartbeat;
pub mod stats;
pub mod xchg;

pub use dxchg::{DxchgConfig, FanoutMode};
pub use heartbeat::{HeartbeatMonitor, NodeHealth};
pub use stats::{
    ChannelStats, NetStats, PropagationSnapshot, PropagationStats, ServerStats, SessionCounters,
};
pub use xchg::Partitioning;
