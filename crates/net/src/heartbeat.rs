//! Deterministic heartbeat failure detection.
//!
//! YARN detects NodeManager death by missed heartbeats against a deadline;
//! VectorH's workers additionally watch each other so a dead responsible
//! node is noticed *before* a query trips over it. This monitor is the
//! clock-free core of that: time is an explicit tick counter advanced by
//! the caller (the engine's `health_tick`), so detection schedules are
//! reproducible under the chaos harness — a heartbeat that the fault hook
//! drops is simply not recorded, and the node's miss count grows exactly as
//! it would under a real network partition.

use std::collections::HashMap;

use vectorh_common::sync::Mutex;
use vectorh_common::NodeId;

/// Verdict for one node at one tick.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeHealth {
    /// Heartbeat seen within the deadline.
    Alive,
    /// Missed some heartbeats but still within the deadline.
    Suspect { missed: u32 },
    /// Deadline expired: declared dead.
    Dead,
}

#[derive(Default)]
struct MonitorInner {
    tick: u64,
    /// Consecutive missed heartbeats per monitored node.
    missed: HashMap<NodeId, u32>,
    /// Nodes already declared dead (reported once, then latched until
    /// `clear`).
    declared: std::collections::BTreeSet<NodeId>,
    /// Beats that arrived after this tick's deadline check (transport
    /// latency); credited when the tick closes, so they count for the next.
    late: Vec<NodeId>,
}

/// A deadline-based failure detector over an explicit tick clock.
///
/// Usage per tick: call [`beat`](Self::beat) for every node whose heartbeat
/// arrived, then [`advance`](Self::advance) once — it returns the nodes
/// newly declared dead this tick (deadline just expired). A revived node is
/// re-admitted with [`clear`](Self::clear).
pub struct HeartbeatMonitor {
    /// Consecutive missed ticks tolerated before declaring death.
    deadline_misses: u32,
    inner: Mutex<MonitorInner>,
}

impl HeartbeatMonitor {
    /// `deadline_misses` must be ≥ 1: a single dropped heartbeat message
    /// should delay detection, not cause a false declaration.
    pub fn new(deadline_misses: u32) -> HeartbeatMonitor {
        HeartbeatMonitor::with_grace(deadline_misses, 1)
    }

    /// A monitor whose deadline is stretched by a `grace` multiplier —
    /// the knob for transports with real latency: over TCP a beat can
    /// legitimately arrive a tick late, so the effective deadline becomes
    /// `deadline_misses × grace` consecutive misses. `grace` clamps to ≥ 1.
    pub fn with_grace(deadline_misses: u32, grace: u32) -> HeartbeatMonitor {
        HeartbeatMonitor {
            deadline_misses: deadline_misses.max(1) * grace.max(1),
            inner: Mutex::new(MonitorInner::default()),
        }
    }

    /// The effective deadline (misses tolerated), grace included.
    pub fn deadline_misses(&self) -> u32 {
        self.deadline_misses
    }

    /// Record a heartbeat from `node` for the current tick.
    pub fn beat(&self, node: NodeId) {
        self.inner.lock().missed.insert(node, 0);
    }

    /// Record a heartbeat that arrived too late for the current tick (a
    /// delayed frame): it is credited when the tick closes, so it counts
    /// toward the *next* deadline check instead of vanishing.
    pub fn beat_late(&self, node: NodeId) {
        self.inner.lock().late.push(node);
    }

    /// Close the current tick: every monitored node in `expected` that did
    /// not [`beat`](Self::beat) since the last `advance` accrues a miss.
    /// Returns nodes whose deadline expired *this* tick, in id order.
    pub fn advance(&self, expected: &[NodeId]) -> Vec<NodeId> {
        let mut inner = self.inner.lock();
        inner.tick += 1;
        let mut newly_dead = Vec::new();
        for &n in expected {
            let missed = inner.missed.entry(n).or_insert(0);
            if *missed == 0 {
                // Beat seen this tick; re-arm for the next one.
                inner.missed.insert(n, 1);
                continue;
            }
            *missed += 1;
            // The counter baselines at 1 after a seen beat, so the actual
            // consecutive-miss count is `missed - 1`.
            let expired = *missed - 1 > self.deadline_misses;
            if expired && inner.declared.insert(n) {
                newly_dead.push(n);
            }
        }
        // Forget nodes no longer monitored so a later re-add starts fresh.
        inner.missed.retain(|n, _| expected.contains(n));
        // Late beats land now, crediting the tick that just opened.
        let late = std::mem::take(&mut inner.late);
        for n in late {
            if expected.contains(&n) {
                inner.missed.insert(n, 0);
            }
        }
        newly_dead
    }

    /// Current verdict for `node`.
    pub fn health(&self, node: NodeId) -> NodeHealth {
        let inner = self.inner.lock();
        if inner.declared.contains(&node) {
            return NodeHealth::Dead;
        }
        // `missed` counts from 1 after a seen beat (re-armed), so subtract
        // the baseline to report actual consecutive misses.
        match inner.missed.get(&node).copied().unwrap_or(0) {
            0 | 1 => NodeHealth::Alive,
            m => NodeHealth::Suspect { missed: m - 1 },
        }
    }

    /// The number of completed ticks.
    pub fn tick(&self) -> u64 {
        self.inner.lock().tick
    }

    /// Re-admit a node (rejoin): wipes its miss count and dead latch.
    pub fn clear(&self, node: NodeId) {
        let mut inner = self.inner.lock();
        inner.missed.remove(&node);
        inner.declared.remove(&node);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const A: NodeId = NodeId(0);
    const B: NodeId = NodeId(1);

    #[test]
    fn beating_nodes_stay_alive() {
        let m = HeartbeatMonitor::new(2);
        for _ in 0..10 {
            m.beat(A);
            m.beat(B);
            assert!(m.advance(&[A, B]).is_empty());
        }
        assert_eq!(m.health(A), NodeHealth::Alive);
        assert_eq!(m.tick(), 10);
    }

    #[test]
    fn silent_node_is_declared_dead_after_deadline() {
        let m = HeartbeatMonitor::new(2);
        m.beat(A);
        m.beat(B);
        assert!(m.advance(&[A, B]).is_empty());
        // B goes silent: 2 tolerated misses, dead on the 3rd.
        m.beat(A);
        assert!(m.advance(&[A, B]).is_empty());
        assert_eq!(m.health(B), NodeHealth::Suspect { missed: 1 });
        m.beat(A);
        assert!(m.advance(&[A, B]).is_empty());
        m.beat(A);
        assert_eq!(m.advance(&[A, B]), vec![B]);
        assert_eq!(m.health(B), NodeHealth::Dead);
        assert_eq!(m.health(A), NodeHealth::Alive);
        // Declared once, not repeatedly.
        m.beat(A);
        assert!(m.advance(&[A, B]).is_empty());
    }

    #[test]
    fn one_dropped_heartbeat_only_delays_detection() {
        let m = HeartbeatMonitor::new(1);
        m.beat(A);
        m.advance(&[A]);
        // One drop: suspect, not dead.
        assert!(m.advance(&[A]).is_empty());
        // Beat resumes: back to healthy.
        m.beat(A);
        assert!(m.advance(&[A]).is_empty());
        assert_eq!(m.health(A), NodeHealth::Alive);
        // Two consecutive drops with deadline 1: dead.
        assert!(m.advance(&[A]).is_empty());
        assert_eq!(m.advance(&[A]), vec![A]);
    }

    #[test]
    fn clear_readmits_a_dead_node() {
        let m = HeartbeatMonitor::new(1);
        m.advance(&[A]);
        m.advance(&[A]);
        assert_eq!(m.advance(&[A]), vec![A]);
        m.clear(A);
        assert_eq!(m.health(A), NodeHealth::Alive);
        m.beat(A);
        assert!(m.advance(&[A]).is_empty());
        // And it can die again later: one tolerated miss, dead on the 2nd.
        assert!(m.advance(&[A]).is_empty());
        assert_eq!(m.advance(&[A]), vec![A]);
    }

    #[test]
    fn beat_alone_does_not_unlatch_a_dead_node() {
        // The dead latch is cleared only by explicit re-admission (`clear`):
        // a stray heartbeat from a declared-dead node — e.g. a falsely
        // suspected master that is actually still running — must not
        // silently resurrect it. The engine re-admits via `admit_worker`,
        // which clears the latch atomically with the worker-set update.
        let m = HeartbeatMonitor::new(1);
        m.advance(&[A]);
        m.advance(&[A]);
        assert_eq!(m.advance(&[A]), vec![A]);
        assert_eq!(m.health(A), NodeHealth::Dead);
        m.beat(A);
        m.advance(&[A]);
        assert_eq!(m.health(A), NodeHealth::Dead);
        m.clear(A);
        assert_eq!(m.health(A), NodeHealth::Alive);
    }

    #[test]
    fn grace_multiplier_stretches_the_deadline() {
        // deadline 1 × grace 2 → 2 tolerated misses, dead on the 3rd.
        let m = HeartbeatMonitor::with_grace(1, 2);
        assert_eq!(m.deadline_misses(), 2);
        m.beat(A);
        m.advance(&[A]);
        assert!(m.advance(&[A]).is_empty());
        assert!(m.advance(&[A]).is_empty());
        assert_eq!(m.advance(&[A]), vec![A]);
        // Grace clamps to ≥ 1 (grace 0 behaves like new()).
        assert_eq!(HeartbeatMonitor::with_grace(3, 0).deadline_misses(), 3);
    }

    #[test]
    fn late_beats_count_for_the_next_tick() {
        let m = HeartbeatMonitor::new(1);
        m.beat(A);
        m.advance(&[A]);
        // Every beat arrives one tick late (steady transport latency):
        // the node hovers at ≤1 consecutive miss, never reaching the
        // deadline — delay jitter must not dead-latch a live node.
        for _ in 0..8 {
            m.beat_late(A);
            assert!(m.advance(&[A]).is_empty(), "late beats must keep A alive");
        }
        assert_ne!(m.health(A), NodeHealth::Dead);
        // Late beats for unmonitored nodes are discarded, not leaked.
        m.beat_late(B);
        m.advance(&[A]);
        assert_eq!(m.health(B), NodeHealth::Alive);
    }

    #[test]
    fn unmonitored_nodes_are_forgotten() {
        let m = HeartbeatMonitor::new(1);
        m.advance(&[A, B]);
        // B leaves the expected set; its miss count resets.
        m.beat(A);
        m.advance(&[A]);
        m.beat(A);
        m.advance(&[A, B]);
        assert_eq!(m.health(B), NodeHealth::Alive);
    }
}
