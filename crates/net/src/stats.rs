//! Network accounting for exchange operators.

use std::sync::atomic::{AtomicU64, Ordering};

/// Thread-safe counters shared by all senders/receivers of an exchange (or
/// a whole query).
#[derive(Debug, Default)]
pub struct NetStats {
    /// Messages that crossed node boundaries (serialized).
    net_messages: AtomicU64,
    /// Bytes serialized onto the "network".
    net_bytes: AtomicU64,
    /// Intra-node messages (pointer-passed, no serialization).
    intra_messages: AtomicU64,
    /// Rows moved through exchanges.
    rows: AtomicU64,
    /// Currently allocated sender-buffer bytes.
    buffer_bytes_now: AtomicU64,
    /// High-water mark of allocated sender-buffer bytes.
    buffer_bytes_peak: AtomicU64,
    /// Injected fault: buffers lost in flight (and retransmitted).
    dropped_messages: AtomicU64,
    /// Injected fault: buffers delivered twice (deduped by receivers).
    duplicated_messages: AtomicU64,
    /// Injected fault: buffers held back and delivered out of order.
    delayed_messages: AtomicU64,
}

/// Point-in-time snapshot.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetSnapshot {
    pub net_messages: u64,
    pub net_bytes: u64,
    pub intra_messages: u64,
    pub rows: u64,
    pub buffer_bytes_peak: u64,
    pub dropped_messages: u64,
    pub duplicated_messages: u64,
    pub delayed_messages: u64,
}

impl NetStats {
    pub fn record_net_message(&self, bytes: u64, rows: u64) {
        self.net_messages.fetch_add(1, Ordering::Relaxed);
        self.net_bytes.fetch_add(bytes, Ordering::Relaxed);
        self.rows.fetch_add(rows, Ordering::Relaxed);
    }

    pub fn record_intra_message(&self, rows: u64) {
        self.intra_messages.fetch_add(1, Ordering::Relaxed);
        self.rows.fetch_add(rows, Ordering::Relaxed);
    }

    /// Account buffer allocation; updates the high-water mark.
    pub fn alloc_buffers(&self, bytes: u64) {
        let now = self.buffer_bytes_now.fetch_add(bytes, Ordering::Relaxed) + bytes;
        self.buffer_bytes_peak.fetch_max(now, Ordering::Relaxed);
    }

    pub fn free_buffers(&self, bytes: u64) {
        self.buffer_bytes_now.fetch_sub(bytes, Ordering::Relaxed);
    }

    pub fn record_dropped(&self) {
        self.dropped_messages.fetch_add(1, Ordering::Relaxed);
    }

    pub fn record_duplicated(&self) {
        self.duplicated_messages.fetch_add(1, Ordering::Relaxed);
    }

    pub fn record_delayed(&self) {
        self.delayed_messages.fetch_add(1, Ordering::Relaxed);
    }

    pub fn snapshot(&self) -> NetSnapshot {
        NetSnapshot {
            net_messages: self.net_messages.load(Ordering::Relaxed),
            net_bytes: self.net_bytes.load(Ordering::Relaxed),
            intra_messages: self.intra_messages.load(Ordering::Relaxed),
            rows: self.rows.load(Ordering::Relaxed),
            buffer_bytes_peak: self.buffer_bytes_peak.load(Ordering::Relaxed),
            dropped_messages: self.dropped_messages.load(Ordering::Relaxed),
            duplicated_messages: self.duplicated_messages.load(Ordering::Relaxed),
            delayed_messages: self.delayed_messages.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let s = NetStats::default();
        s.record_net_message(100, 10);
        s.record_net_message(50, 5);
        s.record_intra_message(3);
        let snap = s.snapshot();
        assert_eq!(snap.net_messages, 2);
        assert_eq!(snap.net_bytes, 150);
        assert_eq!(snap.intra_messages, 1);
        assert_eq!(snap.rows, 18);
    }

    #[test]
    fn buffer_peak_tracks_high_water() {
        let s = NetStats::default();
        s.alloc_buffers(100);
        s.alloc_buffers(200);
        s.free_buffers(250);
        s.alloc_buffers(10);
        assert_eq!(s.snapshot().buffer_bytes_peak, 300);
    }
}
