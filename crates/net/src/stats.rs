//! Network accounting for exchange operators.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};

use vectorh_common::sync::Mutex;

/// Per-channel traffic counters, keyed by exchange name. `credit_stalls`
/// counts sends that blocked on backpressure — a full in-proc queue or an
/// exhausted TCP credit window — which is the number that makes in-proc and
/// TCP runs comparable.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChannelStats {
    pub messages: u64,
    pub bytes: u64,
    pub credit_stalls: u64,
}

/// Thread-safe counters shared by all senders/receivers of an exchange (or
/// a whole query).
#[derive(Debug, Default)]
pub struct NetStats {
    /// Messages that crossed node boundaries (serialized).
    net_messages: AtomicU64,
    /// Bytes serialized onto the "network".
    net_bytes: AtomicU64,
    /// Intra-node messages (pointer-passed, no serialization).
    intra_messages: AtomicU64,
    /// Rows moved through exchanges.
    rows: AtomicU64,
    /// Currently allocated sender-buffer bytes.
    buffer_bytes_now: AtomicU64,
    /// High-water mark of allocated sender-buffer bytes.
    buffer_bytes_peak: AtomicU64,
    /// Injected fault: buffers lost in flight (and retransmitted).
    dropped_messages: AtomicU64,
    /// Injected fault: buffers delivered twice (deduped by receivers).
    duplicated_messages: AtomicU64,
    /// Injected fault: buffers held back and delivered out of order.
    delayed_messages: AtomicU64,
    /// Peak out-of-order residue held by any receiver's dedup window —
    /// the regression gauge proving dedup state stays bounded.
    dedup_residual_peak: AtomicU64,
    /// Per-channel byte/message/stall accounting.
    channels: Mutex<BTreeMap<String, ChannelStats>>,
}

/// Point-in-time snapshot.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetSnapshot {
    pub net_messages: u64,
    pub net_bytes: u64,
    pub intra_messages: u64,
    pub rows: u64,
    pub buffer_bytes_peak: u64,
    pub dropped_messages: u64,
    pub duplicated_messages: u64,
    pub delayed_messages: u64,
}

impl NetStats {
    pub fn record_net_message(&self, bytes: u64, rows: u64) {
        self.net_messages.fetch_add(1, Ordering::Relaxed);
        self.net_bytes.fetch_add(bytes, Ordering::Relaxed);
        self.rows.fetch_add(rows, Ordering::Relaxed);
    }

    pub fn record_intra_message(&self, rows: u64) {
        self.intra_messages.fetch_add(1, Ordering::Relaxed);
        self.rows.fetch_add(rows, Ordering::Relaxed);
    }

    /// Account buffer allocation; updates the high-water mark.
    pub fn alloc_buffers(&self, bytes: u64) {
        let now = self.buffer_bytes_now.fetch_add(bytes, Ordering::Relaxed) + bytes;
        self.buffer_bytes_peak.fetch_max(now, Ordering::Relaxed);
    }

    pub fn free_buffers(&self, bytes: u64) {
        self.buffer_bytes_now.fetch_sub(bytes, Ordering::Relaxed);
    }

    pub fn record_dropped(&self) {
        self.dropped_messages.fetch_add(1, Ordering::Relaxed);
    }

    pub fn record_duplicated(&self) {
        self.duplicated_messages.fetch_add(1, Ordering::Relaxed);
    }

    pub fn record_delayed(&self) {
        self.delayed_messages.fetch_add(1, Ordering::Relaxed);
    }

    /// Account one message on a named channel.
    pub fn record_channel_message(&self, channel: &str, bytes: u64) {
        let mut channels = self.channels.lock();
        let entry = channels.entry(channel.to_string()).or_default();
        entry.messages += 1;
        entry.bytes += bytes;
    }

    /// Account a send that had to block on backpressure.
    pub fn record_credit_stall(&self, channel: &str, stalls: u64) {
        if stalls == 0 {
            return;
        }
        self.channels
            .lock()
            .entry(channel.to_string())
            .or_default()
            .credit_stalls += stalls;
    }

    /// Track the high-water mark of a receiver's dedup residue.
    pub fn record_dedup_residual(&self, residual: u64) {
        self.dedup_residual_peak
            .fetch_max(residual, Ordering::Relaxed);
    }

    /// Peak out-of-order dedup residue observed by any receiver.
    pub fn dedup_residual_peak(&self) -> u64 {
        self.dedup_residual_peak.load(Ordering::Relaxed)
    }

    /// Sorted snapshot of the per-channel counters.
    pub fn channels(&self) -> Vec<(String, ChannelStats)> {
        self.channels
            .lock()
            .iter()
            .map(|(k, v)| (k.clone(), *v))
            .collect()
    }

    pub fn snapshot(&self) -> NetSnapshot {
        NetSnapshot {
            net_messages: self.net_messages.load(Ordering::Relaxed),
            net_bytes: self.net_bytes.load(Ordering::Relaxed),
            intra_messages: self.intra_messages.load(Ordering::Relaxed),
            rows: self.rows.load(Ordering::Relaxed),
            buffer_bytes_peak: self.buffer_bytes_peak.load(Ordering::Relaxed),
            dropped_messages: self.dropped_messages.load(Ordering::Relaxed),
            duplicated_messages: self.duplicated_messages.load(Ordering::Relaxed),
            delayed_messages: self.delayed_messages.load(Ordering::Relaxed),
        }
    }
}

/// Counters for background update propagation, shared between the
/// propagation driver and the `VectorH::propagation_stats()` probe.
/// `chunks_kept` vs `chunks_rewritten` is the paper-facing number: it shows
/// chunk-level rewrite-or-keep actually leaving untouched chunks alone.
#[derive(Debug, Default)]
pub struct PropagationStats {
    runs: AtomicU64,
    tail_appends: AtomicU64,
    chunks_kept: AtomicU64,
    chunks_rewritten: AtomicU64,
    crashes_recovered: AtomicU64,
}

/// Point-in-time snapshot of [`PropagationStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PropagationSnapshot {
    /// Non-noop propagation runs that committed.
    pub propagation_runs: u64,
    /// Runs that were pure tail appends (no pre-existing chunk dirtied,
    /// save for a trailing partial chunk absorbing the inserts).
    pub tail_appends: u64,
    /// Pre-existing chunks left byte-identical on disk across all runs.
    pub chunks_kept: u64,
    /// Pre-existing chunks replaced with a fresh image across all runs.
    pub chunks_rewritten: u64,
    /// Propagation attempts that crashed and were repaired by recovery.
    pub crashes_recovered: u64,
}

impl PropagationStats {
    /// Account one committed, non-noop propagation run.
    pub fn record_run(&self, tail_append: bool, kept: u64, rewritten: u64) {
        self.runs.fetch_add(1, Ordering::Relaxed);
        if tail_append {
            self.tail_appends.fetch_add(1, Ordering::Relaxed);
        }
        self.chunks_kept.fetch_add(kept, Ordering::Relaxed);
        self.chunks_rewritten
            .fetch_add(rewritten, Ordering::Relaxed);
    }

    /// Account a propagation crash that recovery repaired.
    pub fn record_crash_recovered(&self) {
        self.crashes_recovered.fetch_add(1, Ordering::Relaxed);
    }

    pub fn snapshot(&self) -> PropagationSnapshot {
        PropagationSnapshot {
            propagation_runs: self.runs.load(Ordering::Relaxed),
            tail_appends: self.tail_appends.load(Ordering::Relaxed),
            chunks_kept: self.chunks_kept.load(Ordering::Relaxed),
            chunks_rewritten: self.chunks_rewritten.load(Ordering::Relaxed),
            crashes_recovered: self.crashes_recovered.load(Ordering::Relaxed),
        }
    }
}

/// Point-in-time counters for one front-door session (or the aggregate of
/// all sessions when read through [`ServerStats::totals`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SessionCounters {
    /// Queries that returned a result stream to the client.
    pub queries_served: u64,
    /// Failover retries absorbed inside `query_logical` — node deaths the
    /// client never saw.
    pub retries_absorbed: u64,
    /// Microseconds spent waiting in the admission queue before a permit
    /// was granted (rejected waits count too).
    pub queue_wait_us: u64,
    /// Admissions refused with a typed `ServerBusy` reply.
    pub rejected_busy: u64,
}

impl SessionCounters {
    fn add(&mut self, other: &SessionCounters) {
        self.queries_served += other.queries_served;
        self.retries_absorbed += other.retries_absorbed;
        self.queue_wait_us += other.queue_wait_us;
        self.rejected_busy += other.rejected_busy;
    }
}

/// Per-session counters for the SQL front door, shared between the server's
/// connection threads and the `VectorH::server_stats()` probe. Sessions are
/// keyed by their wire session id; closed sessions keep their counters so
/// post-run assertions (load generator, chaos) read complete numbers.
#[derive(Debug, Default)]
pub struct ServerStats {
    sessions: Mutex<BTreeMap<u64, SessionCounters>>,
}

impl ServerStats {
    pub fn record_query_served(&self, session: u64) {
        self.sessions
            .lock()
            .entry(session)
            .or_default()
            .queries_served += 1;
    }

    pub fn record_retries_absorbed(&self, session: u64, retries: u64) {
        if retries == 0 {
            return;
        }
        self.sessions
            .lock()
            .entry(session)
            .or_default()
            .retries_absorbed += retries;
    }

    pub fn record_queue_wait(&self, session: u64, micros: u64) {
        self.sessions
            .lock()
            .entry(session)
            .or_default()
            .queue_wait_us += micros;
    }

    pub fn record_rejected_busy(&self, session: u64) {
        self.sessions
            .lock()
            .entry(session)
            .or_default()
            .rejected_busy += 1;
    }

    /// Sorted snapshot of every session's counters.
    pub fn sessions(&self) -> Vec<(u64, SessionCounters)> {
        self.sessions.lock().iter().map(|(k, v)| (*k, *v)).collect()
    }

    /// Aggregate over all sessions.
    pub fn totals(&self) -> SessionCounters {
        let mut out = SessionCounters::default();
        for (_, c) in self.sessions.lock().iter() {
            out.add(c);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn server_stats_accumulate_per_session_and_total() {
        let s = ServerStats::default();
        s.record_query_served(1);
        s.record_query_served(1);
        s.record_query_served(2);
        s.record_retries_absorbed(2, 3);
        s.record_retries_absorbed(2, 0); // no-op
        s.record_queue_wait(1, 250);
        s.record_rejected_busy(2);
        let sessions = s.sessions();
        assert_eq!(sessions.len(), 2);
        assert_eq!(
            sessions[0].1,
            SessionCounters {
                queries_served: 2,
                retries_absorbed: 0,
                queue_wait_us: 250,
                rejected_busy: 0
            }
        );
        let t = s.totals();
        assert_eq!(t.queries_served, 3);
        assert_eq!(t.retries_absorbed, 3);
        assert_eq!(t.rejected_busy, 1);
    }

    #[test]
    fn counters_accumulate() {
        let s = NetStats::default();
        s.record_net_message(100, 10);
        s.record_net_message(50, 5);
        s.record_intra_message(3);
        let snap = s.snapshot();
        assert_eq!(snap.net_messages, 2);
        assert_eq!(snap.net_bytes, 150);
        assert_eq!(snap.intra_messages, 1);
        assert_eq!(snap.rows, 18);
    }

    #[test]
    fn per_channel_counters_accumulate_sorted() {
        let s = NetStats::default();
        s.record_channel_message("DXchgUnion", 100);
        s.record_channel_message("DXchgHashSplit", 40);
        s.record_channel_message("DXchgUnion", 60);
        s.record_credit_stall("DXchgUnion", 2);
        s.record_credit_stall("DXchgUnion", 0); // no-op
        let channels = s.channels();
        assert_eq!(channels.len(), 2);
        assert_eq!(channels[0].0, "DXchgHashSplit");
        assert_eq!(
            channels[1].1,
            ChannelStats {
                messages: 2,
                bytes: 160,
                credit_stalls: 2
            }
        );
    }

    #[test]
    fn dedup_residual_keeps_peak() {
        let s = NetStats::default();
        s.record_dedup_residual(3);
        s.record_dedup_residual(1);
        assert_eq!(s.dedup_residual_peak(), 3);
    }

    #[test]
    fn propagation_stats_accumulate() {
        let s = PropagationStats::default();
        s.record_run(true, 3, 1);
        s.record_run(false, 1, 2);
        s.record_crash_recovered();
        let snap = s.snapshot();
        assert_eq!(
            snap,
            PropagationSnapshot {
                propagation_runs: 2,
                tail_appends: 1,
                chunks_kept: 4,
                chunks_rewritten: 3,
                crashes_recovered: 1,
            }
        );
    }

    #[test]
    fn buffer_peak_tracks_high_water() {
        let s = NetStats::default();
        s.alloc_buffers(100);
        s.alloc_buffers(200);
        s.free_buffers(250);
        s.alloc_buffers(10);
        assert_eq!(s.snapshot().buffer_bytes_peak, 300);
    }
}
