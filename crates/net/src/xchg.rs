//! Intra-node exchange operators.
//!
//! An Xchg "does not modify the data that streams in and out of it, but only
//! redistributes these streams", acting as the synchronization point between
//! producer and consumer threads (§5). Here each producer pipeline runs on
//! its own thread (a stream = a thread) and pushes vectors into bounded
//! channels; consumer-side [`XchgReceiver`] operators pull from them.
//!
//! Flavours: `Union` (m→1), `Hash` (hash-split on keys), `Broadcast`,
//! `Range` (range-split), plus [`merge_union`] which merges sorted streams.
//! Producer-side operator profiles are shipped to the consumers at
//! end-of-stream so the appendix-style per-thread profile can be printed.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use vectorh_common::channel::{bounded, Receiver, Sender};
use vectorh_common::{ColumnData, Result, Schema, Value, VhError};
use vectorh_exec::kernels::gather::scatter_partitions;
use vectorh_exec::kernels::hash::{hash_columns, XCHG_SEED};
use vectorh_exec::operator::{collect_profiles, Counters, OpProfile, ProfileLine};
use vectorh_exec::{Batch, Operator};

use crate::stats::NetStats;

/// Newtype so exchange messages have a crate-local name.
#[derive(Clone)]
pub struct BatchMsg(pub Batch);

/// How an exchange redistributes rows.
#[derive(Debug, Clone)]
pub enum Partitioning {
    /// All rows to the single consumer (XchgUnion).
    Union,
    /// Hash-partition on the key columns (XchgHashSplit).
    Hash { keys: Vec<usize> },
    /// Every consumer receives every row (XchgBroadcast).
    Broadcast,
    /// Range-partition an integer column by ascending bounds: consumer `i`
    /// gets `value <= bounds[i]`, the last consumer the rest
    /// (XchgRangeSplit).
    Range { col: usize, bounds: Vec<i64> },
}

type Payload = std::result::Result<BatchMsg, VhError>;

/// Channel depth per consumer. Generous so single-threaded consumers that
/// drain receivers one after another (tests, DXchgUnion tops) cannot
/// deadlock producers; real deployments drain receivers concurrently.
pub(crate) const CHANNEL_CAP: usize = 4096;

/// Partition a batch into per-consumer position lists.
///
/// The `Hash` arm hashes the key columns once, column-at-a-time
/// ([`hash_columns`] with [`XCHG_SEED`] — the same hash vector family every
/// node computes, so co-partitioning lines up), then scatters row ids by
/// hash modulo. No per-row type dispatch.
pub fn partition_positions(
    batch: &Batch,
    partitioning: &Partitioning,
    n_consumers: usize,
) -> Result<Vec<Vec<u32>>> {
    let all = || (0..batch.len() as u32).collect::<Vec<u32>>();
    match partitioning {
        Partitioning::Union => {
            let mut out = vec![Vec::new(); n_consumers];
            out[0] = all();
            Ok(out)
        }
        Partitioning::Broadcast => Ok(vec![all(); n_consumers]),
        Partitioning::Hash { keys } => {
            let cols: Vec<&ColumnData> = batch.columns.iter().collect();
            let mut hashes = Vec::new();
            hash_columns(&cols, keys, XCHG_SEED, &mut hashes);
            Ok(scatter_partitions(&hashes, n_consumers))
        }
        Partitioning::Range { col, bounds } => {
            if bounds.len() + 1 != n_consumers {
                return Err(VhError::Net("range bounds/consumers mismatch".into()));
            }
            let mut out = vec![Vec::new(); n_consumers];
            let vals = batch
                .column(*col)
                .to_i64_vec()
                .ok_or_else(|| VhError::Net("range split needs integer column".into()))?;
            for (i, v) in vals.iter().enumerate() {
                let c = bounds.iter().position(|b| v <= b).unwrap_or(bounds.len());
                out[c].push(i as u32);
            }
            Ok(out)
        }
    }
}

/// Per-thread profile reported by a producer when its pipeline completes.
#[derive(Debug, Clone)]
pub struct WorkerProfile {
    pub worker: usize,
    pub lines: Vec<ProfileLine>,
    pub rows_produced: u64,
    pub wall_ns: u64,
}

/// Consumer-side state shared across receivers of one exchange.
struct Shared {
    profiles_rx: Receiver<WorkerProfile>,
    producer_wait_ns: Arc<AtomicU64>,
    collected: vectorh_common::sync::Mutex<Vec<WorkerProfile>>,
}

/// The consumer-side operator of an exchange.
pub struct XchgReceiver {
    name: &'static str,
    schema: Arc<Schema>,
    rx: Receiver<Payload>,
    shared: Arc<Shared>,
    counters: Counters,
    consumer_wait_ns: u64,
}

impl XchgReceiver {
    /// Per-producer profiles (available after all producers finished).
    pub fn worker_profiles(&self) -> Vec<WorkerProfile> {
        let mut cache = self.shared.collected.lock();
        cache.extend(self.shared.profiles_rx.try_iter());
        cache.sort_by_key(|w| w.worker);
        cache.clone()
    }

    /// Time consumers spent blocked waiting for producers.
    pub fn consumer_wait_ns(&self) -> u64 {
        self.consumer_wait_ns
    }

    /// Time producers spent blocked on full channels (backpressure).
    pub fn producer_wait_ns(&self) -> u64 {
        self.shared.producer_wait_ns.load(Ordering::Relaxed)
    }
}

impl Operator for XchgReceiver {
    fn schema(&self) -> Arc<Schema> {
        self.schema.clone()
    }

    fn next(&mut self) -> Result<Option<Batch>> {
        let start = Instant::now();
        let res = self.rx.recv();
        self.consumer_wait_ns += start.elapsed().as_nanos() as u64;
        self.counters.calls += 1;
        self.counters.cum_time_ns += start.elapsed().as_nanos() as u64;
        match res {
            Ok(Ok(BatchMsg(b))) => {
                self.counters.rows_in += b.len() as u64;
                self.counters.rows_out += b.len() as u64;
                Ok(Some(b))
            }
            Ok(Err(e)) => Err(e),
            Err(_) => Ok(None), // all senders gone: end of stream
        }
    }

    fn profile(&self) -> OpProfile {
        self.counters.profile(self.name)
    }

    fn children(&self) -> Vec<&dyn Operator> {
        vec![] // producer pipelines live on their threads; see worker_profiles()
    }

    fn remote_profiles(&self) -> Vec<vectorh_exec::operator::RemoteProfile> {
        self.worker_profiles()
            .into_iter()
            .map(|w| vectorh_exec::operator::RemoteProfile {
                label: format!("thread {}", w.worker),
                lines: w.lines,
                rows: w.rows_produced,
                wall_ns: w.wall_ns,
            })
            .collect()
    }
}

/// Create an exchange: spawns one thread per producer pipeline and returns
/// the consumer-side receivers (length `n_consumers`).
pub fn xchg(
    name: &'static str,
    producers: Vec<Box<dyn Operator>>,
    n_consumers: usize,
    partitioning: Partitioning,
    stats: Arc<NetStats>,
) -> Result<Vec<XchgReceiver>> {
    if producers.is_empty() || n_consumers == 0 {
        return Err(VhError::Net(
            "exchange needs producers and consumers".into(),
        ));
    }
    if matches!(partitioning, Partitioning::Union) && n_consumers != 1 {
        return Err(VhError::Net("XchgUnion has a single consumer".into()));
    }
    let schema = producers[0].schema();
    let channels: Vec<(Sender<Payload>, Receiver<Payload>)> =
        (0..n_consumers).map(|_| bounded(CHANNEL_CAP)).collect();
    let (ptx, prx) = bounded::<WorkerProfile>(producers.len().max(1));
    let producer_wait = Arc::new(AtomicU64::new(0));

    for (wi, mut prod) in producers.into_iter().enumerate() {
        let senders: Vec<Sender<Payload>> = channels.iter().map(|(s, _)| s.clone()).collect();
        let partitioning = partitioning.clone();
        let ptx = ptx.clone();
        let stats = stats.clone();
        let producer_wait = producer_wait.clone();
        std::thread::spawn(move || {
            let t0 = Instant::now();
            let mut rows = 0u64;
            let send = |c: usize, payload: Payload| -> bool {
                let t = Instant::now();
                let ok = senders[c].send(payload).is_ok();
                producer_wait.fetch_add(t.elapsed().as_nanos() as u64, Ordering::Relaxed);
                ok
            };
            'run: loop {
                match prod.next() {
                    Ok(Some(batch)) => {
                        rows += batch.len() as u64;
                        match partition_positions(&batch, &partitioning, senders.len()) {
                            Ok(parts) => {
                                for (c, pos) in parts.iter().enumerate() {
                                    if pos.is_empty() {
                                        continue;
                                    }
                                    let piece = if pos.len() == batch.len() {
                                        batch.clone()
                                    } else {
                                        batch.gather_u32(pos)
                                    };
                                    stats.record_intra_message(piece.len() as u64);
                                    if !send(c, Ok(BatchMsg(piece))) {
                                        break 'run; // consumer went away
                                    }
                                }
                            }
                            Err(e) => {
                                let _ = send(0, Err(e));
                                break 'run;
                            }
                        }
                    }
                    Ok(None) => break 'run,
                    Err(e) => {
                        let _ = send(0, Err(e));
                        break 'run;
                    }
                }
            }
            let _ = ptx.send(WorkerProfile {
                worker: wi,
                lines: collect_profiles(prod.as_ref()),
                rows_produced: rows,
                wall_ns: t0.elapsed().as_nanos() as u64,
            });
            // senders drop here; consumers see EOS once all producers finish
        });
    }
    drop(ptx);

    let shared = Arc::new(Shared {
        profiles_rx: prx,
        producer_wait_ns: producer_wait,
        collected: vectorh_common::sync::Mutex::new(Vec::new()),
    });
    Ok(channels
        .into_iter()
        .map(|(_, rx)| XchgReceiver {
            name,
            schema: schema.clone(),
            rx,
            shared: shared.clone(),
            counters: Counters::default(),
            consumer_wait_ns: 0,
        })
        .collect())
}

/// XchgMergeUnion: merge already-sorted producer streams into one sorted
/// stream. `keys` are (column, ascending) pairs.
pub fn merge_union(
    producers: Vec<Box<dyn Operator>>,
    keys: Vec<(usize, bool)>,
    stats: Arc<NetStats>,
) -> Result<MergeUnionReceiver> {
    if producers.is_empty() {
        return Err(VhError::Net("merge union needs producers".into()));
    }
    let schema = producers[0].schema();
    let mut streams = Vec::with_capacity(producers.len());
    for mut prod in producers {
        let (tx, rx) = bounded::<Payload>(CHANNEL_CAP);
        let stats = stats.clone();
        std::thread::spawn(move || loop {
            match prod.next() {
                Ok(Some(b)) => {
                    stats.record_intra_message(b.len() as u64);
                    if tx.send(Ok(BatchMsg(b))).is_err() {
                        break;
                    }
                }
                Ok(None) => break,
                Err(e) => {
                    let _ = tx.send(Err(e));
                    break;
                }
            }
        });
        streams.push(StreamHead {
            rx,
            buf: None,
            off: 0,
            done: false,
        });
    }
    Ok(MergeUnionReceiver {
        schema,
        keys,
        streams,
        counters: Counters::default(),
    })
}

struct StreamHead {
    rx: Receiver<Payload>,
    buf: Option<Batch>,
    off: usize,
    done: bool,
}

impl StreamHead {
    /// Ensure a current row exists; false at end of stream.
    fn fill(&mut self) -> Result<bool> {
        loop {
            if let Some(b) = &self.buf {
                if self.off < b.len() {
                    return Ok(true);
                }
            }
            if self.done {
                return Ok(false);
            }
            match self.rx.recv() {
                Ok(Ok(BatchMsg(b))) => {
                    self.buf = Some(b);
                    self.off = 0;
                }
                Ok(Err(e)) => return Err(e),
                Err(_) => {
                    self.done = true;
                    return Ok(false);
                }
            }
        }
    }
}

/// Consumer side of XchgMergeUnion.
pub struct MergeUnionReceiver {
    schema: Arc<Schema>,
    keys: Vec<(usize, bool)>,
    streams: Vec<StreamHead>,
    counters: Counters,
}

impl MergeUnionReceiver {
    fn head_key(&self, si: usize) -> Vec<Value> {
        let s = &self.streams[si];
        let b = s.buf.as_ref().unwrap();
        self.keys
            .iter()
            .map(|&(c, _)| b.column(c).value_at(s.off, b.schema.dtype(c)))
            .collect()
    }

    fn key_less(&self, a: &[Value], b: &[Value]) -> bool {
        for (i, &(_, asc)) in self.keys.iter().enumerate() {
            match a[i].partial_cmp(&b[i]) {
                Some(std::cmp::Ordering::Less) => return asc,
                Some(std::cmp::Ordering::Greater) => return !asc,
                _ => continue,
            }
        }
        false
    }
}

impl Operator for MergeUnionReceiver {
    fn schema(&self) -> Arc<Schema> {
        self.schema.clone()
    }

    fn next(&mut self) -> Result<Option<Batch>> {
        let start = Instant::now();
        // Emit up to a vector of rows, always picking the smallest head.
        let mut picks: Vec<(usize, usize)> = Vec::new(); // (stream, row)
        for _ in 0..vectorh_common::VECTOR_SIZE {
            let mut best: Option<usize> = None;
            let mut best_key: Vec<Value> = vec![];
            for si in 0..self.streams.len() {
                if self.streams[si].fill()? {
                    let k = self.head_key(si);
                    if best.is_none() || self.key_less(&k, &best_key) {
                        best = Some(si);
                        best_key = k;
                    }
                }
            }
            match best {
                None => break,
                Some(si) => {
                    picks.push((si, self.streams[si].off));
                    self.streams[si].off += 1;
                }
            }
        }
        let out = if picks.is_empty() {
            None
        } else {
            // Gather rows stream-by-stream preserving pick order.
            let mut result = Batch::empty(self.schema.clone());
            for (si, row) in picks {
                let b = self.streams[si].buf.as_ref().unwrap();
                result.append(&b.slice(row, row + 1))?;
            }
            Some(result)
        };
        self.counters.cum_time_ns += start.elapsed().as_nanos() as u64;
        self.counters.calls += 1;
        if let Some(b) = &out {
            self.counters.rows_out += b.len() as u64;
        }
        Ok(out)
    }

    fn profile(&self) -> OpProfile {
        self.counters.profile("XchgMergeUnion")
    }

    fn children(&self) -> Vec<&dyn Operator> {
        vec![]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vectorh_common::DataType;
    use vectorh_exec::operator::BatchSource;

    fn source(vals: Vec<i64>) -> Box<dyn Operator> {
        let schema = Arc::new(Schema::of(&[("x", DataType::I64)]));
        let batch = Batch::new(schema, vec![ColumnData::I64(vals)]).unwrap();
        Box::new(BatchSource::from_batch(batch, 16))
    }

    fn drain_sorted(ops: Vec<XchgReceiver>) -> Vec<i64> {
        let mut all = Vec::new();
        for mut op in ops {
            while let Some(b) = op.next().unwrap() {
                all.extend(b.column(0).as_i64().unwrap().iter().copied());
            }
        }
        all.sort_unstable();
        all
    }

    #[test]
    fn union_funnels_all_rows() {
        let stats = Arc::new(NetStats::default());
        let recv = xchg(
            "XchgUnion",
            vec![source((0..50).collect()), source((50..100).collect())],
            1,
            Partitioning::Union,
            stats,
        )
        .unwrap();
        assert_eq!(drain_sorted(recv), (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn hash_split_partitions_disjointly_and_completely() {
        let stats = Arc::new(NetStats::default());
        let recv = xchg(
            "XchgHashSplit",
            vec![source((0..200).collect())],
            4,
            Partitioning::Hash { keys: vec![0] },
            stats,
        )
        .unwrap();
        let mut per: Vec<Vec<i64>> = Vec::new();
        for mut r in recv {
            let mut got = Vec::new();
            while let Some(b) = r.next().unwrap() {
                got.extend(b.column(0).as_i64().unwrap().iter().copied());
            }
            per.push(got);
        }
        let mut all: Vec<i64> = per.iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..200).collect::<Vec<_>>());
        assert!(
            per.iter().filter(|p| !p.is_empty()).count() >= 3,
            "spread across consumers"
        );
        // Same key never lands on two consumers: re-split a second stream.
        let stats = Arc::new(NetStats::default());
        let recv2 = xchg(
            "XchgHashSplit",
            vec![source((0..200).collect())],
            4,
            Partitioning::Hash { keys: vec![0] },
            stats,
        )
        .unwrap();
        let mut per2: Vec<Vec<i64>> = Vec::new();
        for mut r in recv2 {
            let mut got = Vec::new();
            while let Some(b) = r.next().unwrap() {
                got.extend(b.column(0).as_i64().unwrap().iter().copied());
            }
            got.sort_unstable();
            per2.push(got);
        }
        for (a, b) in per.iter_mut().zip(&per2) {
            a.sort_unstable();
            assert_eq!(a, b, "hash partitioning must be deterministic");
        }
    }

    #[test]
    fn broadcast_reaches_every_consumer() {
        let stats = Arc::new(NetStats::default());
        let recv = xchg(
            "XchgBroadcast",
            vec![source((0..30).collect())],
            3,
            Partitioning::Broadcast,
            stats,
        )
        .unwrap();
        for mut r in recv {
            let mut got = Vec::new();
            while let Some(b) = r.next().unwrap() {
                got.extend(b.column(0).as_i64().unwrap().iter().copied());
            }
            got.sort_unstable();
            assert_eq!(got, (0..30).collect::<Vec<_>>());
        }
    }

    #[test]
    fn range_split_obeys_bounds() {
        let stats = Arc::new(NetStats::default());
        let recv = xchg(
            "XchgRangeSplit",
            vec![source((0..90).collect())],
            3,
            Partitioning::Range {
                col: 0,
                bounds: vec![29, 59],
            },
            stats,
        )
        .unwrap();
        let mut per = Vec::new();
        for mut r in recv {
            let mut got = Vec::new();
            while let Some(b) = r.next().unwrap() {
                got.extend(b.column(0).as_i64().unwrap().iter().copied());
            }
            got.sort_unstable();
            per.push(got);
        }
        assert_eq!(per[0], (0..30).collect::<Vec<_>>());
        assert_eq!(per[1], (30..60).collect::<Vec<_>>());
        assert_eq!(per[2], (60..90).collect::<Vec<_>>());
    }

    #[test]
    fn worker_profiles_arrive_after_eos() {
        let stats = Arc::new(NetStats::default());
        let mut recv = xchg(
            "XchgUnion",
            vec![source((0..10).collect()), source((0..5).collect())],
            1,
            Partitioning::Union,
            stats,
        )
        .unwrap();
        let r = &mut recv[0];
        while r.next().unwrap().is_some() {}
        let profiles = r.worker_profiles();
        assert_eq!(profiles.len(), 2);
        assert_eq!(profiles[0].worker, 0);
        assert_eq!(profiles[0].rows_produced + profiles[1].rows_produced, 15);
        assert!(!profiles[0].lines.is_empty());
    }

    #[test]
    fn union_requires_single_consumer() {
        let stats = Arc::new(NetStats::default());
        assert!(xchg(
            "XchgUnion",
            vec![source(vec![1])],
            2,
            Partitioning::Union,
            stats
        )
        .is_err());
    }

    #[test]
    fn merge_union_merges_sorted_streams() {
        let stats = Arc::new(NetStats::default());
        let mut m = merge_union(
            vec![
                source(vec![1, 4, 7, 10]),
                source(vec![2, 5, 8]),
                source(vec![0, 3, 6, 9]),
            ],
            vec![(0, true)],
            stats,
        )
        .unwrap();
        let mut got = Vec::new();
        while let Some(b) = m.next().unwrap() {
            got.extend(b.column(0).as_i64().unwrap().iter().copied());
        }
        assert_eq!(got, (0..11).collect::<Vec<_>>());
    }

    #[test]
    fn merge_union_descending() {
        let stats = Arc::new(NetStats::default());
        let mut m = merge_union(
            vec![source(vec![9, 5, 1]), source(vec![8, 4])],
            vec![(0, false)],
            stats,
        )
        .unwrap();
        let mut got = Vec::new();
        while let Some(b) = m.next().unwrap() {
            got.extend(b.column(0).as_i64().unwrap().iter().copied());
        }
        assert_eq!(got, vec![9, 8, 5, 4, 1]);
    }
}
