//! Merge plans: compact scripts that apply PDT differences during scans.
//!
//! "Their primary goal is fast merging of differences in a scan, which
//! happens for each and every query" (§2). A [`MergeStep`] sequence tells
//! the scan operator, in output order, which stable row ranges to copy
//! through untouched (the overwhelmingly common case), which rows to skip
//! (deletes), which rows need column patches (modifies) and where inserted
//! tuples appear. Identification is purely positional — no keys.
//!
//! [`compose`] stacks plans: the paper's Read-PDT / Write-PDT / Trans-PDT
//! layering becomes `compose(compose(read_plan, write_plan), trans_plan)`,
//! yielding a single plan in stable-table coordinates.

use vectorh_common::Value;

use crate::tree::{Pdt, Update};

/// One step of a merge plan. Steps are emitted in output (RID) order;
/// `CopyStable`/`SkipStable`/`ModifyStable` consume stable rows in ascending
/// SID order and jointly cover every stable row exactly once.
#[derive(Debug, Clone, PartialEq)]
pub enum MergeStep {
    /// Pass `count` stable rows starting at `from_sid` through unchanged.
    CopyStable { from_sid: u64, count: u64 },
    /// Drop `count` stable rows starting at `from_sid` (deleted).
    SkipStable { from_sid: u64, count: u64 },
    /// Emit stable row `sid` with the given column patches applied.
    ModifyStable { sid: u64, mods: Vec<(usize, Value)> },
    /// Emit an inserted tuple.
    EmitInsert { tag: u64, values: Vec<Value> },
}

impl MergeStep {
    /// Output rows this step produces.
    pub fn emits(&self) -> u64 {
        match self {
            MergeStep::CopyStable { count, .. } => *count,
            MergeStep::SkipStable { .. } => 0,
            MergeStep::ModifyStable { .. } => 1,
            MergeStep::EmitInsert { .. } => 1,
        }
    }

    /// Stable rows this step consumes.
    pub fn consumes(&self) -> u64 {
        match self {
            MergeStep::CopyStable { count, .. } => *count,
            MergeStep::SkipStable { count, .. } => *count,
            MergeStep::ModifyStable { .. } => 1,
            MergeStep::EmitInsert { .. } => 0,
        }
    }
}

impl Pdt {
    /// Build the merge plan of this PDT over a below-image of `stable_len`
    /// rows.
    pub fn merge_plan(&self, stable_len: u64) -> Vec<MergeStep> {
        let mut out = Vec::new();
        let mut copy_start = 0u64; // next stable sid not yet covered
        let push_copy = |out: &mut Vec<MergeStep>, from: u64, to: u64| {
            if to > from {
                out.push(MergeStep::CopyStable {
                    from_sid: from,
                    count: to - from,
                });
            }
        };
        let entries: Vec<_> = self.entries().collect();
        let mut i = 0usize;
        while i < entries.len() {
            let sid = entries[i].sid;
            // Collect the whole group (groups are contiguous in entry order).
            let mut inserts: Vec<(u64, &Vec<Value>)> = Vec::new();
            let mut mods: Vec<(usize, Value)> = Vec::new();
            let mut deleted = false;
            while i < entries.len() && entries[i].sid == sid {
                match &entries[i].upd {
                    Update::Insert { tag, values } => inserts.push((*tag, values)),
                    Update::Modify { col, value } => mods.push((*col, value.clone())),
                    Update::Delete => deleted = true,
                }
                i += 1;
            }
            push_copy(&mut out, copy_start, sid.min(stable_len));
            for (tag, values) in inserts {
                out.push(MergeStep::EmitInsert {
                    tag,
                    values: values.clone(),
                });
            }
            if sid < stable_len {
                if deleted {
                    // Coalesce with a directly preceding skip run.
                    if let Some(MergeStep::SkipStable { from_sid, count }) = out.last_mut() {
                        if *from_sid + *count == sid {
                            *count += 1;
                            copy_start = sid + 1;
                            continue;
                        }
                    }
                    out.push(MergeStep::SkipStable {
                        from_sid: sid,
                        count: 1,
                    });
                    copy_start = sid + 1;
                } else if !mods.is_empty() {
                    out.push(MergeStep::ModifyStable { sid, mods });
                    copy_start = sid + 1;
                } else {
                    copy_start = sid;
                }
            } else {
                copy_start = stable_len;
            }
        }
        push_copy(&mut out, copy_start, stable_len);
        out
    }
}

/// Apply a merge plan to materialized rows (reference implementation; the
/// vectorized engine applies plans column-at-a-time instead).
pub fn apply_plan(plan: &[MergeStep], stable_rows: &[Vec<Value>]) -> Vec<Vec<Value>> {
    let mut out = Vec::new();
    for step in plan {
        match step {
            MergeStep::CopyStable { from_sid, count } => {
                for sid in *from_sid..*from_sid + *count {
                    out.push(stable_rows[sid as usize].clone());
                }
            }
            MergeStep::SkipStable { .. } => {}
            MergeStep::ModifyStable { sid, mods } => {
                let mut row = stable_rows[*sid as usize].clone();
                for (c, v) in mods {
                    row[*c] = v.clone();
                }
                out.push(row);
            }
            MergeStep::EmitInsert { values, .. } => out.push(values.clone()),
        }
    }
    out
}

/// Compose two merge plans: `upper` consumes the row stream `lower`
/// produces; the result is a single plan in `lower`'s stable coordinates.
pub fn compose(lower: &[MergeStep], upper: &[MergeStep]) -> Vec<MergeStep> {
    // A cursor over the lower plan that can hand out rows one piece at a
    // time. Pieces are either stable-row runs or single inserted rows.
    struct Cursor<'a> {
        steps: &'a [MergeStep],
        idx: usize,
        /// Offset into the current step's emitted rows (for CopyStable runs).
        off: u64,
        out: Vec<MergeStep>,
    }

    impl<'a> Cursor<'a> {
        /// Emit lower SkipStable steps that come before the next
        /// row-producing step (they are position-transparent).
        fn drain_skips(&mut self) {
            while let Some(MergeStep::SkipStable { from_sid, count }) = self.steps.get(self.idx) {
                self.out.push(MergeStep::SkipStable {
                    from_sid: *from_sid,
                    count: *count,
                });
                self.idx += 1;
            }
        }

        /// Take up to `n` output rows, passing them through (keep=true) or
        /// dropping them (keep=false). Returns rows actually taken.
        fn take(&mut self, n: u64, keep: bool) -> u64 {
            let mut taken = 0u64;
            while taken < n {
                self.drain_skips();
                let Some(step) = self.steps.get(self.idx) else {
                    break;
                };
                match step {
                    MergeStep::CopyStable { from_sid, count } => {
                        let avail = count - self.off;
                        let grab = avail.min(n - taken);
                        let start = from_sid + self.off;
                        if keep {
                            // Coalesce with a preceding copy run.
                            if let Some(MergeStep::CopyStable {
                                from_sid: f,
                                count: c,
                            }) = self.out.last_mut()
                            {
                                if *f + *c == start {
                                    *c += grab;
                                } else {
                                    self.out.push(MergeStep::CopyStable {
                                        from_sid: start,
                                        count: grab,
                                    });
                                }
                            } else {
                                self.out.push(MergeStep::CopyStable {
                                    from_sid: start,
                                    count: grab,
                                });
                            }
                        } else {
                            self.out.push(MergeStep::SkipStable {
                                from_sid: start,
                                count: grab,
                            });
                        }
                        self.off += grab;
                        taken += grab;
                        if self.off == *count {
                            self.idx += 1;
                            self.off = 0;
                        }
                    }
                    MergeStep::ModifyStable { sid, mods } => {
                        if keep {
                            self.out.push(MergeStep::ModifyStable {
                                sid: *sid,
                                mods: mods.clone(),
                            });
                        } else {
                            self.out.push(MergeStep::SkipStable {
                                from_sid: *sid,
                                count: 1,
                            });
                        }
                        self.idx += 1;
                        taken += 1;
                    }
                    MergeStep::EmitInsert { tag, values } => {
                        if keep {
                            self.out.push(MergeStep::EmitInsert {
                                tag: *tag,
                                values: values.clone(),
                            });
                        }
                        // dropped inserts vanish entirely
                        self.idx += 1;
                        taken += 1;
                    }
                    MergeStep::SkipStable { .. } => unreachable!("drained above"),
                }
            }
            taken
        }

        /// Take exactly one row and apply column patches to it.
        fn take_modified(&mut self, mods: &[(usize, Value)]) {
            self.drain_skips();
            let Some(step) = self.steps.get(self.idx) else {
                return;
            };
            match step {
                MergeStep::CopyStable { from_sid, count } => {
                    let sid = from_sid + self.off;
                    self.out.push(MergeStep::ModifyStable {
                        sid,
                        mods: mods.to_vec(),
                    });
                    self.off += 1;
                    if self.off == *count {
                        self.idx += 1;
                        self.off = 0;
                    }
                }
                MergeStep::ModifyStable {
                    sid,
                    mods: lower_mods,
                } => {
                    // Upper mods override lower mods per column.
                    let mut merged = lower_mods.clone();
                    for (c, v) in mods {
                        if let Some(slot) = merged.iter_mut().find(|(mc, _)| mc == c) {
                            slot.1 = v.clone();
                        } else {
                            merged.push((*c, v.clone()));
                        }
                    }
                    self.out.push(MergeStep::ModifyStable {
                        sid: *sid,
                        mods: merged,
                    });
                    self.idx += 1;
                }
                MergeStep::EmitInsert { tag, values } => {
                    let mut patched = values.clone();
                    for (c, v) in mods {
                        patched[*c] = v.clone();
                    }
                    self.out.push(MergeStep::EmitInsert {
                        tag: *tag,
                        values: patched,
                    });
                    self.idx += 1;
                }
                MergeStep::SkipStable { .. } => unreachable!("drained above"),
            }
        }
    }

    let mut cur = Cursor {
        steps: lower,
        idx: 0,
        off: 0,
        out: Vec::new(),
    };
    for step in upper {
        match step {
            MergeStep::CopyStable { count, .. } => {
                cur.take(*count, true);
            }
            MergeStep::SkipStable { count, .. } => {
                cur.take(*count, false);
            }
            MergeStep::ModifyStable { mods, .. } => {
                cur.take_modified(mods);
            }
            MergeStep::EmitInsert { tag, values } => {
                cur.out.push(MergeStep::EmitInsert {
                    tag: *tag,
                    values: values.clone(),
                });
            }
        }
    }
    // Any trailing lower skips.
    cur.drain_skips();
    cur.out
}

#[cfg(test)]
mod tests {
    use super::*;
    use vectorh_common::rng::SplitMix64;

    fn v(i: i64) -> Vec<Value> {
        vec![Value::I64(i), Value::I64(i * 10)]
    }

    fn stable(n: u64) -> Vec<Vec<Value>> {
        (0..n as i64).map(v).collect()
    }

    #[test]
    fn empty_pdt_single_copy() {
        let plan = Pdt::new().merge_plan(10);
        assert_eq!(
            plan,
            vec![MergeStep::CopyStable {
                from_sid: 0,
                count: 10
            }]
        );
    }

    #[test]
    fn plan_matches_direct_materialization() {
        let mut pdt = Pdt::new();
        pdt.insert_at(3, v(100), 1, 10).unwrap();
        pdt.delete_at(7, 10).unwrap();
        pdt.modify_at(0, 1, Value::I64(-5), 10).unwrap();
        let plan = pdt.merge_plan(10);
        let rows = apply_plan(&plan, &stable(10));
        assert_eq!(rows.len(), 10);
        assert_eq!(rows[0][1], Value::I64(-5));
        assert_eq!(rows[3][0], Value::I64(100));
        // row 6 (stable sid 6) deleted; stable 7 is gone
        assert!(!rows
            .iter()
            .any(|r| r[0] == Value::I64(6) && r[1] == Value::I64(60)));
    }

    #[test]
    fn contiguous_deletes_coalesce() {
        let mut pdt = Pdt::new();
        for _ in 0..4 {
            pdt.delete_at(2, 10).unwrap();
        }
        let plan = pdt.merge_plan(10);
        assert_eq!(
            plan,
            vec![
                MergeStep::CopyStable {
                    from_sid: 0,
                    count: 2
                },
                MergeStep::SkipStable {
                    from_sid: 2,
                    count: 4
                },
                MergeStep::CopyStable {
                    from_sid: 6,
                    count: 4
                },
            ]
        );
    }

    #[test]
    fn pure_inserts_do_not_break_copy_runs_needlessly() {
        let mut pdt = Pdt::new();
        pdt.insert_at(5, v(99), 1, 10).unwrap();
        let plan = pdt.merge_plan(10);
        assert_eq!(
            plan,
            vec![
                MergeStep::CopyStable {
                    from_sid: 0,
                    count: 5
                },
                MergeStep::EmitInsert {
                    tag: 1,
                    values: v(99)
                },
                MergeStep::CopyStable {
                    from_sid: 5,
                    count: 5
                },
            ]
        );
    }

    #[test]
    fn appends_at_end() {
        let mut pdt = Pdt::new();
        pdt.insert_at(10, v(100), 1, 10).unwrap();
        let plan = pdt.merge_plan(10);
        assert_eq!(
            plan.last().unwrap(),
            &MergeStep::EmitInsert {
                tag: 1,
                values: v(100)
            }
        );
        assert_eq!(apply_plan(&plan, &stable(10)).len(), 11);
    }

    #[test]
    fn compose_identity() {
        let mut pdt = Pdt::new();
        pdt.insert_at(2, v(1), 1, 5).unwrap();
        let plan = pdt.merge_plan(5);
        let id = Pdt::new().merge_plan(6); // upper identity over 6-row image
        let composed = compose(&plan, &id);
        assert_eq!(
            apply_plan(&composed, &stable(5)),
            apply_plan(&plan, &stable(5))
        );
    }

    #[test]
    fn compose_upper_delete_of_lower_insert() {
        let mut lower = Pdt::new();
        lower.insert_at(2, v(1), 1, 5).unwrap(); // image: 6 rows
        let mut upper = Pdt::new();
        upper.delete_at(2, 6).unwrap(); // deletes the inserted row
        let composed = compose(&lower.merge_plan(5), &upper.merge_plan(6));
        let rows = apply_plan(&composed, &stable(5));
        assert_eq!(rows, stable(5)); // net effect: nothing
    }

    #[test]
    fn compose_upper_modify_of_lower_modify_overrides() {
        let mut lower = Pdt::new();
        lower.modify_at(3, 0, Value::I64(111), 5).unwrap();
        lower.modify_at(3, 1, Value::I64(222), 5).unwrap();
        let mut upper = Pdt::new();
        upper.modify_at(3, 0, Value::I64(999), 5).unwrap();
        let composed = compose(&lower.merge_plan(5), &upper.merge_plan(5));
        let rows = apply_plan(&composed, &stable(5));
        assert_eq!(rows[3][0], Value::I64(999)); // upper wins col 0
        assert_eq!(rows[3][1], Value::I64(222)); // lower's col 1 survives
    }

    /// Random two-layer stacks: composition must equal sequential
    /// application.
    fn run_compose_model(seed: u64, stable_n: u64, ops: usize) {
        let mut rng = SplitMix64::new(seed);
        let mut lower = Pdt::new();
        let mut tag = 0u64;
        let mut random_ops = |pdt: &mut Pdt, base: u64, n: usize, tag: &mut u64| {
            for _ in 0..n {
                let image = pdt.image_len(base);
                match rng.next_bounded(3) {
                    0 => {
                        let rid = rng.next_bounded(image + 1);
                        pdt.insert_at(rid, v(rng.range_i64(500, 999)), *tag, base)
                            .unwrap();
                        *tag += 1;
                    }
                    1 if image > 0 => {
                        pdt.delete_at(rng.next_bounded(image), base).unwrap();
                    }
                    _ if image > 0 => {
                        let col = rng.next_bounded(2) as usize;
                        pdt.modify_at(
                            rng.next_bounded(image),
                            col,
                            Value::I64(rng.range_i64(-99, 0)),
                            base,
                        )
                        .unwrap();
                    }
                    _ => {}
                }
            }
        };
        random_ops(&mut lower, stable_n, ops, &mut tag);
        let image1 = apply_plan(&lower.merge_plan(stable_n), &stable(stable_n));
        let mut upper = Pdt::new();
        random_ops(&mut upper, image1.len() as u64, ops, &mut tag);
        let expect = apply_plan(&upper.merge_plan(image1.len() as u64), &image1);
        let composed = compose(
            &lower.merge_plan(stable_n),
            &upper.merge_plan(image1.len() as u64),
        );
        assert_eq!(apply_plan(&composed, &stable(stable_n)), expect);
    }

    #[test]
    fn compose_randomized() {
        for seed in 0..20 {
            run_compose_model(seed, 30, 25);
        }
    }

    /// Randomized property: 40 cases of (seed, stable_n, ops) drawn from a
    /// fixed meta-stream, so failures reproduce deterministically.
    #[test]
    fn prop_plan_conservation() {
        let mut meta = SplitMix64::new(0x9E1A_5CA5E5);
        for _ in 0..40 {
            let seed = meta.next_u64();
            let stable_n = meta.next_bounded(50);
            let ops = meta.next_bounded(60) as usize;
            let mut rng = SplitMix64::new(seed);
            let mut pdt = Pdt::new();
            let mut tag = 0u64;
            for _ in 0..ops {
                let image = pdt.image_len(stable_n);
                match rng.next_bounded(3) {
                    0 => {
                        pdt.insert_at(rng.next_bounded(image + 1), v(7), tag, stable_n)
                            .unwrap();
                        tag += 1;
                    }
                    1 if image > 0 => {
                        pdt.delete_at(rng.next_bounded(image), stable_n).unwrap();
                    }
                    _ if image > 0 => {
                        pdt.modify_at(rng.next_bounded(image), 0, Value::I64(1), stable_n)
                            .unwrap();
                    }
                    _ => {}
                }
            }
            let plan = pdt.merge_plan(stable_n);
            // Plans consume every stable row exactly once and emit image_len rows.
            let consumed: u64 = plan.iter().map(|s| s.consumes()).sum();
            let emitted: u64 = plan.iter().map(|s| s.emits()).sum();
            assert_eq!(consumed, stable_n, "seed {seed}");
            assert_eq!(emitted, pdt.image_len(stable_n), "seed {seed}");
        }
    }

    #[test]
    fn prop_compose_equivalence() {
        let mut meta = SplitMix64::new(0x0C04_405E);
        for _ in 0..40 {
            let seed = meta.next_u64();
            let stable_n = meta.next_bounded(40);
            let ops = 1 + meta.next_bounded(29) as usize;
            run_compose_model(seed, stable_n, ops);
        }
    }
}
