//! The PDT core: a leaf-chunked counting tree over positional updates.
//!
//! Entries are kept sorted by SID; per-SID *groups* are ordered as
//! `[Insert*, Modify*, Delete?]` — inserts land *before* the stable row with
//! that SID, modifies and an optional delete refer to the stable row itself
//! (a delete removes any modifies, so the two never coexist). Groups never
//! span leaf boundaries, so every positional computation is leaf-local;
//! each leaf caches its delta (`#inserts − #deletes`), which gives whole-leaf
//! skipping during SID↔RID translation — the chunked analogue of the
//! counting-B+-tree inner nodes described in the paper.

use vectorh_common::{Result, Value, VhError};

/// Target number of entries per leaf (leaves holding one big same-SID group
/// may exceed it, since groups must stay leaf-local).
const MAX_LEAF: usize = 128;

/// One differential update.
#[derive(Debug, Clone, PartialEq)]
pub enum Update {
    /// A new tuple inserted before stable position `sid`. `tag` is a
    /// process-unique tuple identity used for conflict tracking.
    Insert { tag: u64, values: Vec<Value> },
    /// The stable tuple at `sid` is deleted.
    Delete,
    /// Column `col` of the stable tuple at `sid` now has `value`.
    Modify { col: usize, value: Value },
}

impl Update {
    fn delta(&self) -> i64 {
        match self {
            Update::Insert { .. } => 1,
            Update::Delete => -1,
            Update::Modify { .. } => 0,
        }
    }
}

/// An update entry: (SID, update).
#[derive(Debug, Clone, PartialEq)]
pub struct Entry {
    pub sid: u64,
    pub upd: Update,
}

#[derive(Debug, Clone, Default)]
struct Leaf {
    entries: Vec<Entry>,
    delta: i64,
}

impl Leaf {
    fn first_sid(&self) -> u64 {
        self.entries.first().map(|e| e.sid).unwrap_or(u64::MAX)
    }
    fn last_sid(&self) -> u64 {
        self.entries.last().map(|e| e.sid).unwrap_or(0)
    }
}

/// Result of resolving a RID against one PDT layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Find {
    /// The RID is a (possibly modified) stable row of the image below.
    Stable { sid: u64 },
    /// The RID is a row inserted by this PDT; `tag` identifies it.
    Inserted { tag: u64 },
}

/// A Positional Delta Tree.
#[derive(Debug, Clone, Default)]
pub struct Pdt {
    leaves: Vec<Leaf>,
    total_delta: i64,
    n_inserts: usize,
    n_deletes: usize,
    n_modifies: usize,
}

impl Pdt {
    pub fn new() -> Pdt {
        Pdt::default()
    }

    /// Net row-count change this PDT applies to the image below.
    pub fn total_delta(&self) -> i64 {
        self.total_delta
    }

    pub fn is_empty(&self) -> bool {
        self.leaves.iter().all(|l| l.entries.is_empty())
    }

    pub fn n_entries(&self) -> usize {
        self.n_inserts + self.n_deletes + self.n_modifies
    }

    pub fn n_inserts(&self) -> usize {
        self.n_inserts
    }

    pub fn n_deletes(&self) -> usize {
        self.n_deletes
    }

    pub fn n_modifies(&self) -> usize {
        self.n_modifies
    }

    /// Length of the image this PDT produces over a below-image of
    /// `stable_len` rows.
    pub fn image_len(&self, stable_len: u64) -> u64 {
        (stable_len as i64 + self.total_delta) as u64
    }

    /// Approximate in-memory footprint, used by the update-propagation
    /// trigger ("update propagation is triggered based on the size of PDTs").
    pub fn mem_bytes(&self) -> usize {
        self.leaves
            .iter()
            .flat_map(|l| &l.entries)
            .map(|e| {
                16 + match &e.upd {
                    Update::Insert { values, .. } => {
                        values.iter().map(value_bytes).sum::<usize>() + 16
                    }
                    Update::Delete => 0,
                    Update::Modify { value, .. } => value_bytes(value) + 8,
                }
            })
            .sum()
    }

    /// Iterate all entries in order.
    pub fn entries(&self) -> impl Iterator<Item = &Entry> {
        self.leaves.iter().flat_map(|l| l.entries.iter())
    }

    // --- positional machinery -------------------------------------------

    /// Resolve a RID of this layer's image to what produced it.
    pub fn find_rid(&self, rid: u64, stable_len: u64) -> Result<Find> {
        if rid >= self.image_len(stable_len) {
            return Err(VhError::Pdt(format!(
                "rid {rid} out of range (image len {})",
                self.image_len(stable_len)
            )));
        }
        let r = rid as i64;
        let mut cum: i64 = 0;
        for leaf in &self.leaves {
            if leaf.entries.is_empty() {
                continue;
            }
            // Skip the whole leaf when the target lies strictly after it:
            // the first position after the leaf is stable row last_sid+1 at
            // rid last_sid+1+cum+delta.
            let after_leaf = leaf.last_sid() as i64 + 1 + cum + leaf.delta;
            if r >= after_leaf {
                cum += leaf.delta;
                continue;
            }
            // Gap before this leaf.
            if r < leaf.first_sid() as i64 + cum {
                return Ok(Find::Stable {
                    sid: (r - cum) as u64,
                });
            }
            let mut i = 0usize;
            while i < leaf.entries.len() {
                let e_sid = leaf.entries[i].sid;
                if r < e_sid as i64 + cum {
                    return Ok(Find::Stable {
                        sid: (r - cum) as u64,
                    });
                }
                let (k, m, deleted) = group_shape(&leaf.entries, i);
                // Inserted rows occupy [e_sid+cum, e_sid+cum+k).
                if r < e_sid as i64 + cum + k as i64 {
                    let off = (r - e_sid as i64 - cum) as usize;
                    if let Update::Insert { tag, .. } = leaf.entries[i + off].upd {
                        return Ok(Find::Inserted { tag });
                    }
                    unreachable!("group shape guarantees inserts first");
                }
                if !deleted && r == e_sid as i64 + cum + k as i64 {
                    return Ok(Find::Stable { sid: e_sid });
                }
                cum += k as i64 - if deleted { 1 } else { 0 };
                i += k + m + if deleted { 1 } else { 0 };
            }
            // Fell past the leaf's entries: handled by next leaf / tail gap.
        }
        Ok(Find::Stable {
            sid: (r - cum) as u64,
        })
    }

    /// Current RID of stable row `sid`, or `None` if this PDT deletes it.
    pub fn rid_of_stable(&self, sid: u64) -> Option<u64> {
        let mut cum: i64 = 0;
        for leaf in &self.leaves {
            if leaf.entries.is_empty() {
                continue;
            }
            if sid > leaf.last_sid() {
                cum += leaf.delta;
                continue;
            }
            let mut i = 0usize;
            while i < leaf.entries.len() {
                let e_sid = leaf.entries[i].sid;
                if sid < e_sid {
                    return Some((sid as i64 + cum) as u64);
                }
                let (k, m, deleted) = group_shape(&leaf.entries, i);
                if sid == e_sid {
                    if deleted {
                        return None;
                    }
                    return Some((sid as i64 + cum + k as i64) as u64);
                }
                cum += k as i64 - if deleted { 1 } else { 0 };
                i += k + m + if deleted { 1 } else { 0 };
            }
        }
        Some((sid as i64 + cum) as u64)
    }

    /// Current RID of the insert entry carrying `tag`, if present.
    pub fn rid_of_tag(&self, tag: u64) -> Option<u64> {
        let mut cum: i64 = 0;
        for leaf in &self.leaves {
            let mut i = 0usize;
            while i < leaf.entries.len() {
                let e_sid = leaf.entries[i].sid;
                let (k, m, deleted) = group_shape(&leaf.entries, i);
                for off in 0..k {
                    if let Update::Insert { tag: t, .. } = leaf.entries[i + off].upd {
                        if t == tag {
                            return Some((e_sid as i64 + cum + off as i64) as u64);
                        }
                    }
                }
                cum += k as i64 - if deleted { 1 } else { 0 };
                i += k + m + if deleted { 1 } else { 0 };
            }
        }
        None
    }

    /// Pending modifies for stable row `sid` (col → value), in column order
    /// of application.
    pub fn modifies_of(&self, sid: u64) -> Vec<(usize, Value)> {
        let mut out = Vec::new();
        for leaf in &self.leaves {
            if leaf.entries.is_empty() || sid > leaf.last_sid() || sid < leaf.first_sid() {
                continue;
            }
            for e in &leaf.entries {
                if e.sid == sid {
                    if let Update::Modify { col, value } = &e.upd {
                        out.push((*col, value.clone()));
                    }
                }
            }
        }
        out
    }

    /// Is stable row `sid` deleted by this PDT?
    pub fn is_deleted(&self, sid: u64) -> bool {
        self.rid_of_stable(sid).is_none()
    }

    // --- mutations --------------------------------------------------------

    /// Insert `values` so the new row occupies `rid` in this layer's image.
    pub fn insert_at(
        &mut self,
        rid: u64,
        values: Vec<Value>,
        tag: u64,
        stable_len: u64,
    ) -> Result<()> {
        let image = self.image_len(stable_len);
        if rid > image {
            return Err(VhError::Pdt(format!(
                "insert rid {rid} beyond image end {image}"
            )));
        }
        let (leaf_idx, entry_idx, sid) = self.insert_position(rid, stable_len);
        if self.leaves.is_empty() {
            self.leaves.push(Leaf::default());
        }
        let leaf_idx = leaf_idx.min(self.leaves.len() - 1);
        let leaf = &mut self.leaves[leaf_idx];
        leaf.entries.insert(
            entry_idx,
            Entry {
                sid,
                upd: Update::Insert { tag, values },
            },
        );
        leaf.delta += 1;
        self.total_delta += 1;
        self.n_inserts += 1;
        self.maybe_split(leaf_idx);
        Ok(())
    }

    /// Delete the row at `rid`.
    pub fn delete_at(&mut self, rid: u64, stable_len: u64) -> Result<Find> {
        let found = self.find_rid(rid, stable_len)?;
        match found {
            Find::Inserted { tag } => {
                self.remove_insert_by_tag(tag);
            }
            Find::Stable { sid } => {
                // Drop pending modifies of the row, then record the delete
                // at the end of the sid's group (after its inserts).
                let (leaf_idx, _) = self.group_location(sid);
                let leaf = &mut self.leaves[leaf_idx];
                let before = leaf.entries.len();
                leaf.entries
                    .retain(|e| !(e.sid == sid && matches!(e.upd, Update::Modify { .. })));
                self.n_modifies -= before - leaf.entries.len();
                let pos = leaf
                    .entries
                    .iter()
                    .position(|e| e.sid > sid)
                    .unwrap_or(leaf.entries.len());
                leaf.entries.insert(
                    pos,
                    Entry {
                        sid,
                        upd: Update::Delete,
                    },
                );
                leaf.delta -= 1;
                self.total_delta -= 1;
                self.n_deletes += 1;
                self.maybe_split(leaf_idx);
            }
        }
        Ok(found)
    }

    /// Set column `col` of the row at `rid` to `value`.
    pub fn modify_at(
        &mut self,
        rid: u64,
        col: usize,
        value: Value,
        stable_len: u64,
    ) -> Result<Find> {
        let found = self.find_rid(rid, stable_len)?;
        match found {
            Find::Inserted { tag } => {
                // Patch the pending insert in place: the paper notes inserts
                // dominate PDT volume and modifies of fresh inserts fold away.
                'outer: for leaf in &mut self.leaves {
                    for e in &mut leaf.entries {
                        if let Update::Insert { tag: t, values } = &mut e.upd {
                            if *t == tag {
                                if col >= values.len() {
                                    return Err(VhError::Pdt(format!(
                                        "modify col {col} out of bounds"
                                    )));
                                }
                                values[col] = value;
                                break 'outer;
                            }
                        }
                    }
                }
            }
            Find::Stable { sid } => {
                let (leaf_idx, _) = self.group_location(sid);
                let leaf = &mut self.leaves[leaf_idx];
                // Replace an existing modify of the same column.
                for e in &mut leaf.entries {
                    if e.sid == sid {
                        if let Update::Modify { col: c, value: v } = &mut e.upd {
                            if *c == col {
                                *v = value;
                                return Ok(found);
                            }
                        }
                    }
                }
                let pos = leaf
                    .entries
                    .iter()
                    .position(|e| e.sid > sid)
                    .unwrap_or(leaf.entries.len());
                leaf.entries.insert(
                    pos,
                    Entry {
                        sid,
                        upd: Update::Modify { col, value },
                    },
                );
                self.n_modifies += 1;
                self.maybe_split(leaf_idx);
            }
        }
        Ok(found)
    }

    /// Replay every entry of this PDT onto the layer below, in order.
    ///
    /// Our SIDs are RIDs of `below`'s pre-replay image; a running shift
    /// accounts for the rows our own earlier entries added/removed. This is
    /// both commit serialization (Trans→Write), Write→Read propagation and
    /// WAL replay.
    pub fn propagate_into(&self, below: &mut Pdt, below_stable_len: u64) -> Result<()> {
        let mut shift: i64 = 0;
        for e in self.entries() {
            let target = (e.sid as i64 + shift) as u64;
            match &e.upd {
                Update::Insert { tag, values } => {
                    below.insert_at(target, values.clone(), *tag, below_stable_len)?;
                    shift += 1;
                }
                Update::Delete => {
                    below.delete_at(target, below_stable_len)?;
                    shift -= 1;
                }
                Update::Modify { col, value } => {
                    below.modify_at(target, *col, value.clone(), below_stable_len)?;
                }
            }
        }
        Ok(())
    }

    // --- internals ---------------------------------------------------------

    /// Where must a new insert go so it lands at `rid`? Returns
    /// (leaf index, entry index within leaf, sid for the new entry).
    fn insert_position(&self, rid: u64, _stable_len: u64) -> (usize, usize, u64) {
        let r = rid as i64;
        let mut cum: i64 = 0;
        for (li, leaf) in self.leaves.iter().enumerate() {
            if leaf.entries.is_empty() {
                continue;
            }
            let after_leaf = leaf.last_sid() as i64 + 1 + cum + leaf.delta;
            if r >= after_leaf {
                cum += leaf.delta;
                continue;
            }
            if r < leaf.first_sid() as i64 + cum {
                return (li, 0, (r - cum) as u64);
            }
            let mut i = 0usize;
            while i < leaf.entries.len() {
                let e_sid = leaf.entries[i].sid;
                if r < e_sid as i64 + cum {
                    return (li, i, (r - cum) as u64);
                }
                let (k, m, deleted) = group_shape(&leaf.entries, i);
                // Inside or directly after the insert run of this group.
                if r <= e_sid as i64 + cum + k as i64 {
                    let off = (r - e_sid as i64 - cum) as usize;
                    return (li, i + off, e_sid);
                }
                cum += k as i64 - if deleted { 1 } else { 0 };
                i += k + m + if deleted { 1 } else { 0 };
            }
            // Past all entries of this leaf but before `after_leaf`:
            // a stable-gap position inside this leaf's tail.
            return (li, leaf.entries.len(), (r - cum) as u64);
        }
        let li = if self.leaves.is_empty() {
            0
        } else {
            self.leaves.len() - 1
        };
        let ei = self.leaves.last().map(|l| l.entries.len()).unwrap_or(0);
        (li, ei, (r - cum) as u64)
    }

    /// Leaf containing (or that should contain) the group of `sid`, plus the
    /// index one past the group. Creates an empty leaf for an empty tree.
    fn group_location(&mut self, sid: u64) -> (usize, usize) {
        if self.leaves.iter().all(|l| l.entries.is_empty()) {
            if self.leaves.is_empty() {
                self.leaves.push(Leaf::default());
            }
            return (0, 0);
        }
        for (li, leaf) in self.leaves.iter().enumerate() {
            if leaf.entries.is_empty() {
                continue;
            }
            if sid <= leaf.last_sid() {
                let end = leaf
                    .entries
                    .iter()
                    .position(|e| e.sid > sid)
                    .unwrap_or(leaf.entries.len());
                return (li, end);
            }
        }
        // Past every entry: use the last non-empty leaf.
        let li = self
            .leaves
            .iter()
            .rposition(|l| !l.entries.is_empty())
            .expect("non-empty tree");
        (li, self.leaves[li].entries.len())
    }

    fn remove_insert_by_tag(&mut self, tag: u64) {
        for leaf in &mut self.leaves {
            if let Some(pos) = leaf
                .entries
                .iter()
                .position(|e| matches!(e.upd, Update::Insert { tag: t, .. } if t == tag))
            {
                leaf.entries.remove(pos);
                leaf.delta -= 1;
                self.total_delta -= 1;
                self.n_inserts -= 1;
                return;
            }
        }
    }

    /// Ensure the group of `sid` has a leaf; create an empty leaf if the
    /// tree is empty. (Groups of new sids simply go to the right leaf via
    /// `group_location`.)
    fn maybe_split(&mut self, leaf_idx: usize) {
        if self.leaves.is_empty() {
            return;
        }
        let leaf = &self.leaves[leaf_idx];
        if leaf.entries.len() <= MAX_LEAF {
            return;
        }
        // Split at the nearest group boundary to the midpoint.
        let mid = leaf.entries.len() / 2;
        let mid_sid = leaf.entries[mid].sid;
        let mut split = leaf.entries.iter().position(|e| e.sid == mid_sid).unwrap();
        if split == 0 {
            // The first group reaches the midpoint; split after it instead.
            split = leaf
                .entries
                .iter()
                .position(|e| e.sid > mid_sid)
                .unwrap_or(leaf.entries.len());
            if split == leaf.entries.len() {
                return; // single-group leaf: cannot split
            }
        }
        let leaf = &mut self.leaves[leaf_idx];
        let right_entries: Vec<Entry> = leaf.entries.drain(split..).collect();
        let right_delta: i64 = right_entries.iter().map(|e| e.upd.delta()).sum();
        leaf.delta -= right_delta;
        self.leaves.insert(
            leaf_idx + 1,
            Leaf {
                entries: right_entries,
                delta: right_delta,
            },
        );
    }

    /// Integrity check used by tests: leaf deltas and orderings hold.
    pub fn check_invariants(&self) -> Result<()> {
        let mut last_sid = 0u64;
        let mut first = true;
        let mut total = 0i64;
        for leaf in &self.leaves {
            let mut delta = 0i64;
            for e in &leaf.entries {
                if !first && e.sid < last_sid {
                    return Err(VhError::Internal("sid order violated".into()));
                }
                last_sid = e.sid;
                first = false;
                delta += e.upd.delta();
            }
            if delta != leaf.delta {
                return Err(VhError::Internal(format!(
                    "leaf delta {} != computed {delta}",
                    leaf.delta
                )));
            }
            total += delta;
            // Group shape: inserts, then modifies, then delete.
            let mut i = 0usize;
            while i < leaf.entries.len() {
                let sid = leaf.entries[i].sid;
                let mut phase = 0; // 0=insert,1=modify,2=delete
                let mut j = i;
                while j < leaf.entries.len() && leaf.entries[j].sid == sid {
                    let p = match leaf.entries[j].upd {
                        Update::Insert { .. } => 0,
                        Update::Modify { .. } => 1,
                        Update::Delete => 2,
                    };
                    if p < phase {
                        return Err(VhError::Internal("group shape violated".into()));
                    }
                    phase = p;
                    j += 1;
                }
                i = j;
            }
        }
        if total != self.total_delta {
            return Err(VhError::Internal("total delta mismatch".into()));
        }
        Ok(())
    }
}

/// Shape of the group starting at `entries[i]`:
/// `(inserts, modifies, has_delete)`. All entries of the group share a SID.
fn group_shape(entries: &[Entry], i: usize) -> (usize, usize, bool) {
    let sid = entries[i].sid;
    let mut k = 0usize;
    let mut m = 0usize;
    let mut deleted = false;
    for e in &entries[i..] {
        if e.sid != sid {
            break;
        }
        match e.upd {
            Update::Insert { .. } => k += 1,
            Update::Modify { .. } => m += 1,
            Update::Delete => deleted = true,
        }
    }
    (k, m, deleted)
}

fn value_bytes(v: &Value) -> usize {
    match v {
        Value::Str(s) => s.len() + 8,
        _ => 8,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vectorh_common::rng::SplitMix64;

    /// Naive reference: materialized rows.
    #[derive(Clone)]
    struct Reference {
        rows: Vec<Vec<Value>>,
    }

    fn v(i: i64) -> Vec<Value> {
        vec![Value::I64(i), Value::I64(i * 10)]
    }

    fn stable(n: u64) -> Vec<Vec<Value>> {
        (0..n as i64).map(v).collect()
    }

    /// Apply a PDT to materialized stable rows (via merge semantics derived
    /// from find_rid — independent of merge.rs).
    fn materialize(pdt: &Pdt, stable_rows: &[Vec<Value>]) -> Vec<Vec<Value>> {
        let n = pdt.image_len(stable_rows.len() as u64);
        (0..n)
            .map(
                |rid| match pdt.find_rid(rid, stable_rows.len() as u64).unwrap() {
                    Find::Stable { sid } => {
                        let mut row = stable_rows[sid as usize].clone();
                        for (c, val) in pdt.modifies_of(sid) {
                            row[c] = val;
                        }
                        row
                    }
                    Find::Inserted { tag } => pdt
                        .entries()
                        .find_map(|e| match &e.upd {
                            Update::Insert { tag: t, values } if *t == tag => Some(values.clone()),
                            _ => None,
                        })
                        .unwrap(),
                },
            )
            .collect()
    }

    #[test]
    fn empty_pdt_is_identity() {
        let pdt = Pdt::new();
        assert_eq!(pdt.image_len(10), 10);
        assert_eq!(pdt.find_rid(3, 10).unwrap(), Find::Stable { sid: 3 });
        assert_eq!(pdt.rid_of_stable(7), Some(7));
        assert!(pdt.find_rid(10, 10).is_err());
    }

    #[test]
    fn single_insert_shifts_rids() {
        let mut pdt = Pdt::new();
        pdt.insert_at(3, v(100), 1, 10).unwrap();
        assert_eq!(pdt.image_len(10), 11);
        assert_eq!(pdt.find_rid(2, 10).unwrap(), Find::Stable { sid: 2 });
        assert_eq!(pdt.find_rid(3, 10).unwrap(), Find::Inserted { tag: 1 });
        assert_eq!(pdt.find_rid(4, 10).unwrap(), Find::Stable { sid: 3 });
        assert_eq!(pdt.rid_of_stable(3), Some(4));
        assert_eq!(pdt.rid_of_stable(2), Some(2));
        assert_eq!(pdt.rid_of_tag(1), Some(3));
        pdt.check_invariants().unwrap();
    }

    #[test]
    fn delete_removes_row() {
        let mut pdt = Pdt::new();
        pdt.delete_at(5, 10).unwrap();
        assert_eq!(pdt.image_len(10), 9);
        assert_eq!(pdt.find_rid(5, 10).unwrap(), Find::Stable { sid: 6 });
        assert_eq!(pdt.rid_of_stable(5), None);
        assert!(pdt.is_deleted(5));
        assert_eq!(pdt.rid_of_stable(9), Some(8));
        pdt.check_invariants().unwrap();
    }

    #[test]
    fn delete_of_pending_insert_cancels_it() {
        let mut pdt = Pdt::new();
        pdt.insert_at(2, v(50), 9, 10).unwrap();
        assert_eq!(pdt.image_len(10), 11);
        pdt.delete_at(2, 10).unwrap();
        assert_eq!(pdt.image_len(10), 10);
        assert!(pdt.is_empty());
        assert_eq!(pdt.n_entries(), 0);
        pdt.check_invariants().unwrap();
    }

    #[test]
    fn modify_stable_and_inserted() {
        let mut pdt = Pdt::new();
        pdt.modify_at(4, 1, Value::I64(999), 10).unwrap();
        assert_eq!(pdt.modifies_of(4), vec![(1, Value::I64(999))]);
        // Same column modified again: replaced, not duplicated.
        pdt.modify_at(4, 1, Value::I64(1000), 10).unwrap();
        assert_eq!(pdt.modifies_of(4), vec![(1, Value::I64(1000))]);
        assert_eq!(pdt.n_modifies(), 1);
        // Modify of a pending insert patches the payload.
        pdt.insert_at(0, v(1), 5, 10).unwrap();
        pdt.modify_at(0, 0, Value::I64(-7), 10).unwrap();
        let rows = materialize(&pdt, &stable(10));
        assert_eq!(rows[0][0], Value::I64(-7));
        assert_eq!(rows[5][1], Value::I64(1000)); // stable row 4 shifted to rid 5
        pdt.check_invariants().unwrap();
    }

    #[test]
    fn delete_erases_pending_modifies() {
        let mut pdt = Pdt::new();
        pdt.modify_at(4, 0, Value::I64(1), 10).unwrap();
        pdt.modify_at(4, 1, Value::I64(2), 10).unwrap();
        pdt.delete_at(4, 10).unwrap();
        assert_eq!(pdt.n_modifies(), 0);
        assert_eq!(pdt.n_deletes(), 1);
        assert!(pdt.modifies_of(4).is_empty());
        pdt.check_invariants().unwrap();
    }

    #[test]
    fn inserts_at_same_point_keep_order() {
        let mut pdt = Pdt::new();
        pdt.insert_at(5, v(1), 1, 10).unwrap();
        pdt.insert_at(6, v(2), 2, 10).unwrap(); // right after the first
        pdt.insert_at(5, v(0), 3, 10).unwrap(); // before both
        let rows = materialize(&pdt, &stable(10));
        assert_eq!(rows[5][0], Value::I64(0));
        assert_eq!(rows[6][0], Value::I64(1));
        assert_eq!(rows[7][0], Value::I64(2));
        assert_eq!(rows[8], v(5));
        pdt.check_invariants().unwrap();
    }

    #[test]
    fn append_at_image_end() {
        let mut pdt = Pdt::new();
        pdt.insert_at(10, v(100), 1, 10).unwrap();
        pdt.insert_at(11, v(101), 2, 10).unwrap();
        assert_eq!(pdt.image_len(10), 12);
        let rows = materialize(&pdt, &stable(10));
        assert_eq!(rows[10][0], Value::I64(100));
        assert_eq!(rows[11][0], Value::I64(101));
        assert!(pdt.insert_at(20, v(1), 3, 10).is_err());
        pdt.check_invariants().unwrap();
    }

    #[test]
    fn contiguous_range_delete_is_compact() {
        // "Deletes are stored efficiently in PDTs, especially for contiguous
        // ranges" — repeatedly deleting rid 3 removes rows 3,4,5,...
        let mut pdt = Pdt::new();
        for _ in 0..5 {
            pdt.delete_at(3, 20).unwrap();
        }
        assert_eq!(pdt.image_len(20), 15);
        assert_eq!(pdt.n_deletes(), 5);
        let rows = materialize(&pdt, &stable(20));
        assert_eq!(rows[3], v(8));
        pdt.check_invariants().unwrap();
    }

    #[test]
    fn leaf_splitting_preserves_semantics() {
        let mut pdt = Pdt::new();
        let stable_n = 10_000u64;
        // Interleave enough entries to force many leaf splits.
        for i in 0..1000u64 {
            pdt.insert_at(i * 7 % pdt.image_len(stable_n), v(i as i64), i, stable_n)
                .unwrap();
        }
        pdt.check_invariants().unwrap();
        assert!(
            pdt.leaves.len() > 4,
            "splits expected, got {}",
            pdt.leaves.len()
        );
        assert_eq!(pdt.image_len(stable_n), stable_n + 1000);
    }

    #[test]
    fn propagate_into_empty_below_replays_exactly() {
        let mut upper = Pdt::new();
        upper.insert_at(2, v(42), 1, 10).unwrap();
        upper.delete_at(5, 10).unwrap();
        upper.modify_at(8, 0, Value::I64(-1), 10).unwrap();
        let mut below = Pdt::new();
        upper.propagate_into(&mut below, 10).unwrap();
        assert_eq!(
            materialize(&below, &stable(10)),
            materialize(&upper, &stable(10))
        );
        below.check_invariants().unwrap();
    }

    #[test]
    fn propagate_stacks_compose() {
        // below and upper both non-trivial: upper's sids are rids of
        // below's image.
        let mut below = Pdt::new();
        below.insert_at(1, v(100), 1, 8).unwrap(); // image: 9 rows
        below.delete_at(4, 8).unwrap(); // image: 8 rows
        let image1 = materialize(&below, &stable(8));

        let mut upper = Pdt::new();
        upper.insert_at(0, v(200), 2, image1.len() as u64).unwrap();
        upper.delete_at(7, image1.len() as u64).unwrap();
        upper
            .modify_at(3, 1, Value::I64(777), image1.len() as u64)
            .unwrap();
        let expect: Vec<Vec<Value>> = { materialize(&upper, &image1) };

        upper.propagate_into(&mut below, 8).unwrap();
        assert_eq!(materialize(&below, &stable(8)), expect);
        below.check_invariants().unwrap();
    }

    // --- randomized model test -------------------------------------------

    fn run_model(seed: u64, stable_n: u64, ops: usize) {
        let mut rng = SplitMix64::new(seed);
        let mut pdt = Pdt::new();
        let mut model = Reference {
            rows: stable(stable_n),
        };
        let mut tag = 1000u64;
        for op in 0..ops {
            let image = pdt.image_len(stable_n);
            assert_eq!(image as usize, model.rows.len(), "op {op}");
            let choice = rng.next_bounded(10);
            if choice < 4 || image == 0 {
                // insert
                let rid = rng.next_bounded(image + 1);
                let row = v(rng.range_i64(-500, 500));
                pdt.insert_at(rid, row.clone(), tag, stable_n).unwrap();
                model.rows.insert(rid as usize, row);
                tag += 1;
            } else if choice < 7 {
                let rid = rng.next_bounded(image);
                pdt.delete_at(rid, stable_n).unwrap();
                model.rows.remove(rid as usize);
            } else {
                let rid = rng.next_bounded(image);
                let col = rng.next_bounded(2) as usize;
                let val = Value::I64(rng.range_i64(-9999, 9999));
                pdt.modify_at(rid, col, val.clone(), stable_n).unwrap();
                model.rows[rid as usize][col] = val;
            }
            if op % 16 == 0 {
                pdt.check_invariants().unwrap();
            }
        }
        pdt.check_invariants().unwrap();
        assert_eq!(materialize(&pdt, &stable(stable_n)), model.rows);
        // rid_of_stable must agree with materialization for surviving rows.
        for sid in 0..stable_n {
            if let Some(rid) = pdt.rid_of_stable(sid) {
                match pdt.find_rid(rid, stable_n).unwrap() {
                    Find::Stable { sid: s } => assert_eq!(s, sid),
                    other => panic!("rid_of_stable({sid}) -> {rid} resolved to {other:?}"),
                }
            }
        }
    }

    #[test]
    fn randomized_against_reference_small() {
        run_model(1, 20, 200);
        run_model(2, 0, 100);
        run_model(3, 1, 150);
    }

    #[test]
    fn randomized_against_reference_large() {
        run_model(4, 500, 1200);
    }

    /// Randomized property: 48 parameter draws from a fixed meta-stream so
    /// failures reproduce deterministically.
    #[test]
    fn prop_model_equivalence() {
        let mut meta = SplitMix64::new(0x7EE5_1DE5);
        for _ in 0..48 {
            let seed = meta.next_u64();
            let stable_n = meta.next_bounded(60);
            let ops = 1 + meta.next_bounded(119) as usize;
            run_model(seed, stable_n, ops);
        }
    }

    #[test]
    fn prop_propagate_equivalence() {
        let mut meta = SplitMix64::new(0x0A6A_6A7E);
        for _ in 0..48 {
            let seed = meta.next_u64();
            let stable_n = 1 + meta.next_bounded(39);
            let ops = 1 + meta.next_bounded(39) as usize;
            let mut rng = SplitMix64::new(seed);
            let mut upper = Pdt::new();
            let mut tag = 0u64;
            for _ in 0..ops {
                let image = upper.image_len(stable_n);
                match rng.next_bounded(3) {
                    0 => {
                        let rid = rng.next_bounded(image + 1);
                        upper
                            .insert_at(rid, v(rng.range_i64(0, 99)), tag, stable_n)
                            .unwrap();
                        tag += 1;
                    }
                    1 if image > 0 => {
                        upper.delete_at(rng.next_bounded(image), stable_n).unwrap();
                    }
                    _ if image > 0 => {
                        upper
                            .modify_at(
                                rng.next_bounded(image),
                                0,
                                Value::I64(rng.range_i64(0, 9)),
                                stable_n,
                            )
                            .unwrap();
                    }
                    _ => {}
                }
            }
            let mut below = Pdt::new();
            upper.propagate_into(&mut below, stable_n).unwrap();
            assert_eq!(
                materialize(&below, &stable(stable_n)),
                materialize(&upper, &stable(stable_n)),
                "seed {seed}"
            );
        }
    }
}
