//! PDT stacking and tuple identity.
//!
//! Isolation in VectorH (§6) comes from layering: all queries share a
//! Read-PDT and a Write-PDT; each transaction stacks a private Trans-PDT on
//! top. A layer's SID space is the RID space of the image below it, so
//! resolving "which tuple is at RID r" means walking down the stack
//! ([`Layers::locate`]), and "where is tuple K now" means walking up
//! ([`Layers::rid_of_key`]).
//!
//! [`TupleKey`] is the tuple-granularity identity used for optimistic
//! write-write conflict detection at commit: a stable-table position, or the
//! unique tag of a pending insert.

use vectorh_common::{Result, VhError};

use crate::merge::{compose, MergeStep};
use crate::tree::{Find, Pdt};

/// Identity of a tuple independent of its current RID.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum TupleKey {
    /// Position in the stable (on-disk) table image.
    Stable(u64),
    /// The unique tag of an insert pending in some PDT layer.
    Tagged(u64),
}

/// A read-only view of a PDT stack, bottom (closest to storage) to top.
pub struct Layers<'a> {
    pub stable_len: u64,
    pub layers: Vec<&'a Pdt>,
}

impl<'a> Layers<'a> {
    pub fn new(stable_len: u64, layers: Vec<&'a Pdt>) -> Layers<'a> {
        Layers { stable_len, layers }
    }

    /// Image length below layer `k` (k = 0 → the stable table itself).
    fn len_below(&self, k: usize) -> u64 {
        let mut n = self.stable_len as i64;
        for layer in &self.layers[..k] {
            n += layer.total_delta();
        }
        n as u64
    }

    /// Total visible rows.
    pub fn image_len(&self) -> u64 {
        self.len_below(self.layers.len())
    }

    /// Resolve a visible RID to a tuple identity.
    pub fn locate(&self, rid: u64) -> Result<TupleKey> {
        let mut r = rid;
        for k in (0..self.layers.len()).rev() {
            match self.layers[k].find_rid(r, self.len_below(k))? {
                Find::Inserted { tag } => return Ok(TupleKey::Tagged(tag)),
                Find::Stable { sid } => r = sid,
            }
        }
        Ok(TupleKey::Stable(r))
    }

    /// Current RID of a tuple, or `None` if it is deleted / unknown.
    pub fn rid_of_key(&self, key: TupleKey) -> Option<u64> {
        match key {
            TupleKey::Stable(sid) => {
                if sid >= self.stable_len {
                    return None;
                }
                let mut r = sid;
                for layer in &self.layers {
                    r = layer.rid_of_stable(r)?;
                }
                Some(r)
            }
            TupleKey::Tagged(tag) => {
                // Find the layer holding the insert, then lift through the
                // layers above it.
                for (k, layer) in self.layers.iter().enumerate() {
                    if let Some(mut r) = layer.rid_of_tag(tag) {
                        for upper in &self.layers[k + 1..] {
                            r = upper.rid_of_stable(r)?;
                        }
                        return Some(r);
                    }
                }
                None
            }
        }
    }

    /// Single merge plan in stable coordinates for the whole stack.
    pub fn merged_plan(&self) -> Vec<MergeStep> {
        let mut plan = vec![];
        let mut first = true;
        for (k, layer) in self.layers.iter().enumerate() {
            let below_len = self.len_below(k);
            let lp = layer.merge_plan(below_len);
            plan = if first { lp } else { compose(&plan, &lp) };
            first = false;
        }
        if first {
            // No layers: identity plan.
            if self.stable_len > 0 {
                plan.push(MergeStep::CopyStable {
                    from_sid: 0,
                    count: self.stable_len,
                });
            }
        }
        plan
    }

    /// The tuple key currently occupying the position *before* `rid`
    /// (anchor for replayable inserts), or `None` when `rid` is 0.
    pub fn anchor_before(&self, rid: u64) -> Result<Option<TupleKey>> {
        if rid == 0 {
            return Ok(None);
        }
        if rid > self.image_len() {
            return Err(VhError::Pdt(format!(
                "anchor rid {rid} beyond image {}",
                self.image_len()
            )));
        }
        Ok(Some(self.locate(rid - 1)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vectorh_common::Value;

    fn v(i: i64) -> Vec<Value> {
        vec![Value::I64(i)]
    }

    #[test]
    fn empty_stack_is_identity() {
        let layers = Layers::new(5, vec![]);
        assert_eq!(layers.image_len(), 5);
        assert_eq!(
            layers.merged_plan(),
            vec![MergeStep::CopyStable {
                from_sid: 0,
                count: 5
            }]
        );
    }

    #[test]
    fn locate_walks_down_the_stack() {
        let mut read = Pdt::new();
        read.insert_at(1, v(100), 1, 4).unwrap(); // image: [s0, i100, s1, s2, s3]
        let mut write = Pdt::new();
        write.delete_at(0, 5).unwrap(); // image: [i100, s1, s2, s3]
        let layers = Layers::new(4, vec![&read, &write]);
        assert_eq!(layers.image_len(), 4);
        assert_eq!(layers.locate(0).unwrap(), TupleKey::Tagged(1));
        assert_eq!(layers.locate(1).unwrap(), TupleKey::Stable(1));
        assert_eq!(layers.locate(3).unwrap(), TupleKey::Stable(3));
        assert!(layers.locate(4).is_err());
    }

    #[test]
    fn rid_of_key_roundtrips_locate() {
        let mut read = Pdt::new();
        read.insert_at(2, v(7), 11, 6).unwrap();
        read.delete_at(5, 6).unwrap();
        let mut write = Pdt::new();
        write.insert_at(0, v(8), 22, 6).unwrap();
        write.delete_at(3, 6).unwrap();
        let layers = Layers::new(6, vec![&read, &write]);
        for rid in 0..layers.image_len() {
            let key = layers.locate(rid).unwrap();
            assert_eq!(layers.rid_of_key(key), Some(rid), "key {key:?}");
        }
    }

    #[test]
    fn deleted_tuple_has_no_rid() {
        let mut write = Pdt::new();
        write.delete_at(2, 5).unwrap();
        let layers = Layers::new(5, vec![&write]);
        assert_eq!(layers.rid_of_key(TupleKey::Stable(2)), None);
        assert_eq!(layers.rid_of_key(TupleKey::Stable(3)), Some(2));
        assert_eq!(layers.rid_of_key(TupleKey::Stable(99)), None);
        assert_eq!(layers.rid_of_key(TupleKey::Tagged(77)), None);
    }

    #[test]
    fn anchor_before_identifies_predecessor() {
        let mut write = Pdt::new();
        write.insert_at(1, v(9), 5, 3).unwrap();
        let layers = Layers::new(3, vec![&write]);
        assert_eq!(layers.anchor_before(0).unwrap(), None);
        assert_eq!(layers.anchor_before(1).unwrap(), Some(TupleKey::Stable(0)));
        assert_eq!(layers.anchor_before(2).unwrap(), Some(TupleKey::Tagged(5)));
        assert_eq!(layers.anchor_before(4).unwrap(), Some(TupleKey::Stable(2)));
        assert!(layers.anchor_before(5).is_err());
    }

    #[test]
    fn merged_plan_equals_sequential_materialization() {
        use crate::merge::apply_plan;
        let stable: Vec<Vec<Value>> = (0..8).map(v).collect();
        let mut read = Pdt::new();
        read.insert_at(3, v(300), 1, 8).unwrap();
        read.modify_at(0, 0, Value::I64(-1), 8).unwrap();
        let image1 = apply_plan(&read.merge_plan(8), &stable);
        let mut write = Pdt::new();
        write.delete_at(4, 9).unwrap();
        write.insert_at(0, v(400), 2, 9).unwrap();
        let expect = apply_plan(&write.merge_plan(9), &image1);

        let layers = Layers::new(8, vec![&read, &write]);
        let got = apply_plan(&layers.merged_plan(), &stable);
        assert_eq!(got, expect);
        assert_eq!(got.len() as u64, layers.image_len());
    }
}
