//! Positional Delta Trees (PDTs).
//!
//! The differential update structure of Vectorwise/VectorH (§2, §6 of the
//! paper; Héman et al., SIGMOD 2010). A PDT stores inserts, deletes and
//! modifies *by position* against a read-optimized stable table image, so
//! that:
//!
//! * scans merge differences in by position — no key comparisons, no key IO;
//! * ordered (clustered) and co-ordered tables remain updatable, because a
//!   position identifies a row independent of any key;
//! * the structure translates between **SID** (stable ID: position in the
//!   underlying image) and **RID** (current row id after updates) in
//!   better-than-linear time, using counts maintained per leaf.
//!
//! Layering ([`stack`]): queries share a large slow-moving *Read-PDT* with a
//! smaller *Write-PDT* stacked on it; each transaction stacks a private
//! *Trans-PDT* on top. Each layer's SID space is the RID space of the image
//! below it. Commit serializes the Trans-PDT onto the master Write-PDT,
//! detecting write-write conflicts at tuple granularity ([`stack::TupleKey`]).
//!
//! [`merge`] turns a PDT (or a stack of them) into a compact *merge plan*
//! the vectorized scan applies to column vectors.

pub mod merge;
pub mod stack;
pub mod tree;

pub use merge::{compose, MergeStep};
pub use stack::{Layers, TupleKey};
pub use tree::{Find, Pdt, Update};
