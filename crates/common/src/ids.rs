//! Typed identifiers.
//!
//! The simulated cluster juggles many small integer identities (nodes,
//! tables, partitions, files, blocks, transactions...). Newtypes prevent the
//! classic "passed a partition id where a node id was expected" bug and make
//! signatures self-documenting.

use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash,
        )]
        pub struct $name(pub u32);

        impl $name {
            /// Raw index, handy for vector indexing.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}{}", $prefix, self.0)
            }
        }

        impl From<u32> for $name {
            fn from(v: u32) -> Self {
                $name(v)
            }
        }

        impl From<usize> for $name {
            fn from(v: usize) -> Self {
                $name(v as u32)
            }
        }
    };
}

id_type!(
    /// A datanode / worker machine in the simulated cluster.
    NodeId,
    "node"
);
id_type!(
    /// A table in the catalog.
    TableId,
    "tbl"
);
id_type!(
    /// A horizontal partition of a table. Partition ids are global —
    /// `(TableId, PartitionId)` pairs are only needed when the table is not
    /// implied by context.
    PartitionId,
    "part"
);
id_type!(
    /// A column within a table schema.
    ColumnId,
    "col"
);
id_type!(
    /// An HDFS-style file in the simulated filesystem.
    FileId,
    "file"
);
id_type!(
    /// A fixed-size replicated block of a simulated HDFS file.
    BlockId,
    "blk"
);
id_type!(
    /// A transaction.
    TxnId,
    "txn"
);
id_type!(
    /// A YARN application master / container slice.
    ContainerId,
    "ctr"
);
id_type!(
    /// A query admitted by the workload manager.
    QueryId,
    "q"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_uses_prefix() {
        assert_eq!(NodeId(3).to_string(), "node3");
        assert_eq!(PartitionId(11).to_string(), "part11");
        assert_eq!(TxnId(0).to_string(), "txn0");
    }

    #[test]
    fn conversion_roundtrip() {
        let n: NodeId = 7usize.into();
        assert_eq!(n.index(), 7);
        let t: TableId = 9u32.into();
        assert_eq!(t, TableId(9));
    }

    #[test]
    fn ids_are_ordered() {
        let mut v = vec![PartitionId(4), PartitionId(1), PartitionId(3)];
        v.sort();
        assert_eq!(v, vec![PartitionId(1), PartitionId(3), PartitionId(4)]);
    }
}
