//! The value and type system.
//!
//! VectorH-rs supports the types needed to run TPC-H faithfully:
//! 32/64-bit integers, fixed-point decimals (stored as scaled i64, avoiding
//! the floating-point rounding the paper calls unacceptable for monetary
//! values), dates (days since 1970-01-01, like Vectorwise's internal date),
//! and strings.

use std::cmp::Ordering;
use std::fmt;

/// Physical data types of column values.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// 32-bit signed integer.
    I32,
    /// 64-bit signed integer.
    I64,
    /// Fixed-point decimal stored as `i64` scaled by 10^scale.
    Decimal {
        /// Digits after the decimal point.
        scale: u8,
    },
    /// Calendar date as days since the Unix epoch.
    Date,
    /// 64-bit IEEE float (used only where TPC-H permits).
    F64,
    /// UTF-8 string.
    Str,
}

impl DataType {
    /// Fixed-width types pack into integer codes; strings do not.
    pub fn is_fixed_width(self) -> bool {
        !matches!(self, DataType::Str)
    }

    /// Width in bytes of the in-memory representation (strings report
    /// pointer-ish width 16: offset + length).
    pub fn width(self) -> usize {
        match self {
            DataType::I32 | DataType::Date => 4,
            DataType::I64 | DataType::Decimal { .. } | DataType::F64 => 8,
            DataType::Str => 16,
        }
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataType::I32 => write!(f, "int32"),
            DataType::I64 => write!(f, "int64"),
            DataType::Decimal { scale } => write!(f, "decimal({scale})"),
            DataType::Date => write!(f, "date"),
            DataType::F64 => write!(f, "float64"),
            DataType::Str => write!(f, "string"),
        }
    }
}

/// A single scalar value.
///
/// `Decimal` carries its scale so values stay self-describing; arithmetic on
/// decimals of equal scale is exact integer arithmetic.
#[derive(Debug, Clone)]
pub enum Value {
    I32(i32),
    I64(i64),
    Decimal(i64, u8),
    Date(i32),
    F64(f64),
    Str(String),
    /// SQL NULL. VectorH-rs columns are non-nullable in storage (TPC-H has
    /// no NULLs) but expressions such as outer-join probes produce NULLs.
    Null,
}

impl Value {
    /// The data type of this value, or `None` for NULL.
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Value::I32(_) => Some(DataType::I32),
            Value::I64(_) => Some(DataType::I64),
            Value::Decimal(_, s) => Some(DataType::Decimal { scale: *s }),
            Value::Date(_) => Some(DataType::Date),
            Value::F64(_) => Some(DataType::F64),
            Value::Str(_) => Some(DataType::Str),
            Value::Null => None,
        }
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Interpret as i64 where sensible (ints, decimals' raw value, dates).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::I32(v) => Some(*v as i64),
            Value::I64(v) => Some(*v),
            Value::Decimal(v, _) => Some(*v),
            Value::Date(v) => Some(*v as i64),
            _ => None,
        }
    }

    /// Interpret as f64 (decimals are unscaled to their real value).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::I32(v) => Some(*v as f64),
            Value::I64(v) => Some(*v as f64),
            Value::Decimal(v, s) => Some(*v as f64 / 10f64.powi(*s as i32)),
            Value::Date(v) => Some(*v as f64),
            Value::F64(v) => Some(*v),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.partial_cmp(other) == Some(Ordering::Equal)
    }
}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        use Value::*;
        match (self, other) {
            (Null, Null) => Some(Ordering::Equal),
            (Null, _) | (_, Null) => None,
            (Str(a), Str(b)) => Some(a.cmp(b)),
            (F64(a), F64(b)) => a.partial_cmp(b),
            (Decimal(a, sa), Decimal(b, sb)) if sa == sb => Some(a.cmp(b)),
            // Mixed numerics compare through f64; exactness only matters for
            // equal-scale decimals, handled above.
            (a, b) => {
                let (x, y) = (a.as_f64()?, b.as_f64()?);
                x.partial_cmp(&y)
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::I32(v) => write!(f, "{v}"),
            Value::I64(v) => write!(f, "{v}"),
            Value::Decimal(v, s) => {
                let scale = 10i64.pow(*s as u32);
                let sign = if *v < 0 { "-" } else { "" };
                let v = v.unsigned_abs() as i64;
                write!(
                    f,
                    "{sign}{}.{:0width$}",
                    v / scale,
                    v % scale,
                    width = *s as usize
                )
            }
            Value::Date(v) => {
                let (y, m, d) = date::from_days(*v);
                write!(f, "{y:04}-{m:02}-{d:02}")
            }
            Value::F64(v) => write!(f, "{v}"),
            Value::Str(s) => write!(f, "{s}"),
            Value::Null => write!(f, "NULL"),
        }
    }
}

/// Proleptic-Gregorian date math on "days since 1970-01-01".
///
/// TPC-H only needs dates between 1992 and 1998 but the conversion is exact
/// over the full i32 day range used here.
pub mod date {
    /// Days in each month of a non-leap year.
    const MDAYS: [i64; 12] = [31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31];

    fn is_leap(y: i64) -> bool {
        (y % 4 == 0 && y % 100 != 0) || y % 400 == 0
    }

    /// Convert `(year, month, day)` to days since 1970-01-01.
    pub fn to_days(year: i32, month: u32, day: u32) -> i32 {
        // Count days from year 1 to `year`, then to the month/day,
        // then rebase to the 1970 epoch (which is day 719162 from year 1).
        let y = year as i64 - 1;
        let mut days = y * 365 + y / 4 - y / 100 + y / 400;
        for (m, &md) in MDAYS.iter().enumerate().take(month as usize - 1) {
            days += md;
            if m == 1 && is_leap(year as i64) {
                days += 1;
            }
        }
        days += day as i64 - 1;
        (days - 719_162) as i32
    }

    /// Convert days since 1970-01-01 back to `(year, month, day)`.
    pub fn from_days(days: i32) -> (i32, u32, u32) {
        let mut rem = days as i64 + 719_162; // days since year 1, Jan 1
                                             // 400-year cycles of 146097 days keep the loop count tiny.
        let mut year: i64 = 1;
        year += 400 * (rem / 146_097);
        rem %= 146_097;
        loop {
            let ylen = if is_leap(year) { 366 } else { 365 };
            if rem < ylen {
                break;
            }
            rem -= ylen;
            year += 1;
        }
        let mut month = 0usize;
        loop {
            let mut mlen = MDAYS[month];
            if month == 1 && is_leap(year) {
                mlen += 1;
            }
            if rem < mlen {
                break;
            }
            rem -= mlen;
            month += 1;
        }
        (year as i32, month as u32 + 1, rem as u32 + 1)
    }

    /// Parse `YYYY-MM-DD`.
    pub fn parse(s: &str) -> Option<i32> {
        let mut it = s.split('-');
        let y: i32 = it.next()?.parse().ok()?;
        let m: u32 = it.next()?.parse().ok()?;
        let d: u32 = it.next()?.parse().ok()?;
        if it.next().is_some() || !(1..=12).contains(&m) || !(1..=31).contains(&d) {
            return None;
        }
        Some(to_days(y, m, d))
    }
}

/// Construct a decimal value from a human-readable literal, e.g. `dec("1.25", 2)`.
pub fn dec(text: &str, scale: u8) -> Value {
    let neg = text.starts_with('-');
    let t = text.trim_start_matches('-');
    let (int_part, frac_part) = match t.split_once('.') {
        Some((i, f)) => (i, f),
        None => (t, ""),
    };
    let mut raw: i64 = int_part.parse::<i64>().unwrap_or(0) * 10i64.pow(scale as u32);
    let mut frac = String::from(frac_part);
    frac.truncate(scale as usize);
    while frac.len() < scale as usize {
        frac.push('0');
    }
    if !frac.is_empty() {
        raw += frac.parse::<i64>().unwrap_or(0);
    }
    Value::Decimal(if neg { -raw } else { raw }, scale)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_widths() {
        assert_eq!(DataType::I32.width(), 4);
        assert_eq!(DataType::Decimal { scale: 2 }.width(), 8);
        assert!(DataType::I64.is_fixed_width());
        assert!(!DataType::Str.is_fixed_width());
    }

    #[test]
    fn date_roundtrip_known_values() {
        assert_eq!(date::to_days(1970, 1, 1), 0);
        assert_eq!(date::to_days(1970, 1, 2), 1);
        assert_eq!(date::to_days(1969, 12, 31), -1);
        // TPC-H boundary dates.
        assert_eq!(date::from_days(date::to_days(1992, 1, 1)), (1992, 1, 1));
        assert_eq!(date::from_days(date::to_days(1998, 12, 31)), (1998, 12, 31));
        assert_eq!(date::from_days(date::to_days(1996, 2, 29)), (1996, 2, 29));
    }

    #[test]
    fn date_roundtrip_exhaustive_range() {
        // Every day across several leap boundaries.
        for d in date::to_days(1991, 12, 1)..=date::to_days(2001, 2, 1) {
            let (y, m, dd) = date::from_days(d);
            assert_eq!(date::to_days(y, m, dd), d, "day {d} -> {y}-{m}-{dd}");
        }
    }

    #[test]
    fn date_parse() {
        assert_eq!(date::parse("1995-03-05"), Some(date::to_days(1995, 3, 5)));
        assert_eq!(date::parse("1995-13-05"), None);
        assert_eq!(date::parse("nope"), None);
    }

    #[test]
    fn decimal_literal_and_display() {
        assert_eq!(dec("1.25", 2), Value::Decimal(125, 2));
        assert_eq!(dec("-0.07", 2), Value::Decimal(-7, 2));
        assert_eq!(dec("3", 2), Value::Decimal(300, 2));
        assert_eq!(dec("1.259", 2), Value::Decimal(125, 2)); // truncation
        assert_eq!(Value::Decimal(125, 2).to_string(), "1.25");
        assert_eq!(Value::Decimal(-7, 2).to_string(), "-0.07");
    }

    #[test]
    fn value_ordering() {
        assert!(Value::I32(3) < Value::I32(5));
        assert!(Value::I32(3) < Value::I64(5)); // mixed numerics
        assert_eq!(Value::Decimal(100, 2), Value::Decimal(100, 2));
        assert!(Value::Str("abc".into()) < Value::Str("abd".into()));
        assert_eq!(Value::Null.partial_cmp(&Value::I32(1)), None);
        assert!(Value::Null.is_null());
    }

    #[test]
    fn value_display() {
        assert_eq!(
            Value::Date(date::parse("1997-03-05").unwrap()).to_string(),
            "1997-03-05"
        );
        assert_eq!(Value::Str("x".into()).to_string(), "x");
        assert_eq!(Value::Null.to_string(), "NULL");
    }

    #[test]
    fn as_f64_unscales_decimals() {
        assert_eq!(Value::Decimal(125, 2).as_f64(), Some(1.25));
        assert_eq!(Value::I64(4).as_f64(), Some(4.0));
        assert_eq!(Value::Str("x".into()).as_f64(), None);
    }
}
