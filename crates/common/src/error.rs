//! Workspace-wide error type.

use std::fmt;

/// Errors surfaced by VectorH-rs subsystems.
///
/// A single enum is used across the workspace so errors compose without a
/// tower of `From` impls; the variant tells you which subsystem raised it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VhError {
    /// Storage-layer failure (block/chunk/file management).
    Storage(String),
    /// Simulated-HDFS failure (missing file, dead datanode, replication).
    Hdfs(String),
    /// Compression codec failure (corrupt block, unsupported width).
    Codec(String),
    /// Positional Delta Tree failure.
    Pdt(String),
    /// Query planning / SQL parsing failure.
    Plan(String),
    /// Query execution failure.
    Exec(String),
    /// Transaction aborted (write-write conflict, 2PC failure, ...).
    TxnAbort(String),
    /// Resource manager (YARN simulation) failure.
    Yarn(String),
    /// Network / exchange-operator failure.
    Net(String),
    /// A node needed by the current operation is dead; the query layer can
    /// recover by re-planning on the surviving worker set.
    NodeDown(String),
    /// A 2PC commit carried a master epoch older than the current one: the
    /// sender was deposed by an election and must not decide transactions.
    StaleMaster(String),
    /// Catalog failure (unknown table/column, duplicate DDL).
    Catalog(String),
    /// Constraint violation (unique key / foreign key).
    Constraint(String),
    /// Invalid argument supplied by the caller.
    InvalidArg(String),
    /// Internal invariant violated; indicates a bug in VectorH-rs itself.
    Internal(String),
    /// The SQL front door refused admission (queue full / timed out / cap
    /// hit). Always a graceful typed reply — the connection stays open and
    /// the message carries retry-backoff guidance.
    ServerBusy(String),
    /// The query was cancelled by the client (or the session closed) while
    /// executing; the execute loop checks the cancel flag between batches.
    Cancelled(String),
    /// Background update propagation failed mid-flight (an injected crash
    /// or I/O error between the per-chunk WAL protocol steps). The
    /// partition is recoverable by `recover_partition`; the background
    /// driver treats this as "the propagator crashed" and re-runs recovery.
    Propagation(String),
}

impl VhError {
    /// Short subsystem tag, useful for log prefixes.
    pub fn subsystem(&self) -> &'static str {
        match self {
            VhError::Storage(_) => "storage",
            VhError::Hdfs(_) => "hdfs",
            VhError::Codec(_) => "codec",
            VhError::Pdt(_) => "pdt",
            VhError::Plan(_) => "plan",
            VhError::Exec(_) => "exec",
            VhError::TxnAbort(_) => "txn",
            VhError::Yarn(_) => "yarn",
            VhError::Net(_) => "net",
            VhError::NodeDown(_) => "node-down",
            VhError::StaleMaster(_) => "stale-master",
            VhError::Catalog(_) => "catalog",
            VhError::Constraint(_) => "constraint",
            VhError::InvalidArg(_) => "invalid-arg",
            VhError::Internal(_) => "internal",
            VhError::ServerBusy(_) => "server-busy",
            VhError::Cancelled(_) => "cancelled",
            VhError::Propagation(_) => "propagation",
        }
    }

    /// Stable numeric error code for the wire protocol.
    ///
    /// The taxonomy is append-only: codes are part of the client contract
    /// and must never be renumbered. The match is deliberately exhaustive
    /// (no wildcard arm) so adding a `VhError` variant without assigning it
    /// a code is a compile-time error, not a runtime default.
    pub fn code(&self) -> u16 {
        match self {
            VhError::Storage(_) => 1001,
            VhError::Hdfs(_) => 1002,
            VhError::Codec(_) => 1003,
            VhError::Pdt(_) => 1004,
            VhError::Plan(_) => 1005,
            VhError::Exec(_) => 1006,
            VhError::TxnAbort(_) => 1007,
            VhError::Yarn(_) => 1008,
            VhError::Net(_) => 1009,
            VhError::NodeDown(_) => 1010,
            VhError::StaleMaster(_) => 1011,
            VhError::Catalog(_) => 1012,
            VhError::Constraint(_) => 1013,
            VhError::InvalidArg(_) => 1014,
            VhError::Internal(_) => 1015,
            VhError::ServerBusy(_) => 1016,
            VhError::Cancelled(_) => 1017,
            VhError::Propagation(_) => 1018,
        }
    }

    /// Rebuild an error from a wire `(code, message)` pair. Unknown codes
    /// map to `Internal` with the code preserved in the message — they can
    /// only come from a newer peer, and the connection-level version check
    /// should have rejected that first.
    pub fn from_code(code: u16, message: String) -> VhError {
        match code {
            1001 => VhError::Storage(message),
            1002 => VhError::Hdfs(message),
            1003 => VhError::Codec(message),
            1004 => VhError::Pdt(message),
            1005 => VhError::Plan(message),
            1006 => VhError::Exec(message),
            1007 => VhError::TxnAbort(message),
            1008 => VhError::Yarn(message),
            1009 => VhError::Net(message),
            1010 => VhError::NodeDown(message),
            1011 => VhError::StaleMaster(message),
            1012 => VhError::Catalog(message),
            1013 => VhError::Constraint(message),
            1014 => VhError::InvalidArg(message),
            1015 => VhError::Internal(message),
            1016 => VhError::ServerBusy(message),
            1017 => VhError::Cancelled(message),
            1018 => VhError::Propagation(message),
            other => VhError::Internal(format!("unknown error code {other}: {message}")),
        }
    }

    /// The human-readable message carried by the error.
    pub fn message(&self) -> &str {
        match self {
            VhError::Storage(m)
            | VhError::Hdfs(m)
            | VhError::Codec(m)
            | VhError::Pdt(m)
            | VhError::Plan(m)
            | VhError::Exec(m)
            | VhError::TxnAbort(m)
            | VhError::Yarn(m)
            | VhError::Net(m)
            | VhError::NodeDown(m)
            | VhError::StaleMaster(m)
            | VhError::Catalog(m)
            | VhError::Constraint(m)
            | VhError::InvalidArg(m)
            | VhError::Internal(m)
            | VhError::ServerBusy(m)
            | VhError::Cancelled(m)
            | VhError::Propagation(m) => m,
        }
    }
}

impl fmt::Display for VhError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}", self.subsystem(), self.message())
    }
}

impl std::error::Error for VhError {}

/// Workspace-wide result alias.
pub type Result<T> = std::result::Result<T, VhError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_subsystem_and_message() {
        let e = VhError::Hdfs("file missing".into());
        assert_eq!(e.to_string(), "[hdfs] file missing");
        assert_eq!(e.subsystem(), "hdfs");
        assert_eq!(e.message(), "file missing");
    }

    #[test]
    fn errors_compare_by_value() {
        assert_eq!(VhError::Plan("x".into()), VhError::Plan("x".into()));
        assert_ne!(VhError::Plan("x".into()), VhError::Exec("x".into()));
    }

    fn all_variants() -> Vec<VhError> {
        vec![
            VhError::Storage(String::new()),
            VhError::Hdfs(String::new()),
            VhError::Codec(String::new()),
            VhError::Pdt(String::new()),
            VhError::Plan(String::new()),
            VhError::Exec(String::new()),
            VhError::TxnAbort(String::new()),
            VhError::Yarn(String::new()),
            VhError::Net(String::new()),
            VhError::NodeDown(String::new()),
            VhError::StaleMaster(String::new()),
            VhError::Catalog(String::new()),
            VhError::Constraint(String::new()),
            VhError::InvalidArg(String::new()),
            VhError::Internal(String::new()),
            VhError::ServerBusy(String::new()),
            VhError::Cancelled(String::new()),
            VhError::Propagation(String::new()),
        ]
    }

    #[test]
    fn all_variants_report_subsystem() {
        let variants = all_variants();
        let tags: std::collections::HashSet<_> = variants.iter().map(|v| v.subsystem()).collect();
        assert_eq!(tags.len(), variants.len(), "subsystem tags must be unique");
    }

    #[test]
    fn error_codes_are_stable_unique_and_roundtrip() {
        // The numeric taxonomy is a wire contract: pin every assignment so
        // a renumbering (as opposed to an append) fails this test.
        let pinned: &[(u16, &str)] = &[
            (1001, "storage"),
            (1002, "hdfs"),
            (1003, "codec"),
            (1004, "pdt"),
            (1005, "plan"),
            (1006, "exec"),
            (1007, "txn"),
            (1008, "yarn"),
            (1009, "net"),
            (1010, "node-down"),
            (1011, "stale-master"),
            (1012, "catalog"),
            (1013, "constraint"),
            (1014, "invalid-arg"),
            (1015, "internal"),
            (1016, "server-busy"),
            (1017, "cancelled"),
            (1018, "propagation"),
        ];
        let variants = all_variants();
        assert_eq!(variants.len(), pinned.len(), "new variant: pin its code");
        let mut seen = std::collections::HashSet::new();
        for v in &variants {
            assert!(seen.insert(v.code()), "duplicate code {}", v.code());
            let tag = pinned
                .iter()
                .find(|(c, _)| *c == v.code())
                .map(|(_, t)| *t)
                .unwrap_or_else(|| panic!("code {} not pinned", v.code()));
            assert_eq!(tag, v.subsystem(), "code {} renumbered", v.code());
        }
        // Negative path: the decode side restores the exact variant…
        let e = VhError::NodeDown("node 2 is dead".into());
        assert_eq!(VhError::from_code(e.code(), e.message().into()), e);
        // …and an unknown code degrades to Internal, never a panic.
        let unknown = VhError::from_code(60000, "from the future".into());
        assert!(matches!(unknown, VhError::Internal(_)));
        assert!(unknown.message().contains("60000"));
    }
}
