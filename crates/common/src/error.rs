//! Workspace-wide error type.

use std::fmt;

/// Errors surfaced by VectorH-rs subsystems.
///
/// A single enum is used across the workspace so errors compose without a
/// tower of `From` impls; the variant tells you which subsystem raised it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VhError {
    /// Storage-layer failure (block/chunk/file management).
    Storage(String),
    /// Simulated-HDFS failure (missing file, dead datanode, replication).
    Hdfs(String),
    /// Compression codec failure (corrupt block, unsupported width).
    Codec(String),
    /// Positional Delta Tree failure.
    Pdt(String),
    /// Query planning / SQL parsing failure.
    Plan(String),
    /// Query execution failure.
    Exec(String),
    /// Transaction aborted (write-write conflict, 2PC failure, ...).
    TxnAbort(String),
    /// Resource manager (YARN simulation) failure.
    Yarn(String),
    /// Network / exchange-operator failure.
    Net(String),
    /// A node needed by the current operation is dead; the query layer can
    /// recover by re-planning on the surviving worker set.
    NodeDown(String),
    /// A 2PC commit carried a master epoch older than the current one: the
    /// sender was deposed by an election and must not decide transactions.
    StaleMaster(String),
    /// Catalog failure (unknown table/column, duplicate DDL).
    Catalog(String),
    /// Constraint violation (unique key / foreign key).
    Constraint(String),
    /// Invalid argument supplied by the caller.
    InvalidArg(String),
    /// Internal invariant violated; indicates a bug in VectorH-rs itself.
    Internal(String),
}

impl VhError {
    /// Short subsystem tag, useful for log prefixes.
    pub fn subsystem(&self) -> &'static str {
        match self {
            VhError::Storage(_) => "storage",
            VhError::Hdfs(_) => "hdfs",
            VhError::Codec(_) => "codec",
            VhError::Pdt(_) => "pdt",
            VhError::Plan(_) => "plan",
            VhError::Exec(_) => "exec",
            VhError::TxnAbort(_) => "txn",
            VhError::Yarn(_) => "yarn",
            VhError::Net(_) => "net",
            VhError::NodeDown(_) => "node-down",
            VhError::StaleMaster(_) => "stale-master",
            VhError::Catalog(_) => "catalog",
            VhError::Constraint(_) => "constraint",
            VhError::InvalidArg(_) => "invalid-arg",
            VhError::Internal(_) => "internal",
        }
    }

    /// The human-readable message carried by the error.
    pub fn message(&self) -> &str {
        match self {
            VhError::Storage(m)
            | VhError::Hdfs(m)
            | VhError::Codec(m)
            | VhError::Pdt(m)
            | VhError::Plan(m)
            | VhError::Exec(m)
            | VhError::TxnAbort(m)
            | VhError::Yarn(m)
            | VhError::Net(m)
            | VhError::NodeDown(m)
            | VhError::StaleMaster(m)
            | VhError::Catalog(m)
            | VhError::Constraint(m)
            | VhError::InvalidArg(m)
            | VhError::Internal(m) => m,
        }
    }
}

impl fmt::Display for VhError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}", self.subsystem(), self.message())
    }
}

impl std::error::Error for VhError {}

/// Workspace-wide result alias.
pub type Result<T> = std::result::Result<T, VhError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_subsystem_and_message() {
        let e = VhError::Hdfs("file missing".into());
        assert_eq!(e.to_string(), "[hdfs] file missing");
        assert_eq!(e.subsystem(), "hdfs");
        assert_eq!(e.message(), "file missing");
    }

    #[test]
    fn errors_compare_by_value() {
        assert_eq!(VhError::Plan("x".into()), VhError::Plan("x".into()));
        assert_ne!(VhError::Plan("x".into()), VhError::Exec("x".into()));
    }

    #[test]
    fn all_variants_report_subsystem() {
        let variants = vec![
            VhError::Storage(String::new()),
            VhError::Hdfs(String::new()),
            VhError::Codec(String::new()),
            VhError::Pdt(String::new()),
            VhError::Plan(String::new()),
            VhError::Exec(String::new()),
            VhError::TxnAbort(String::new()),
            VhError::Yarn(String::new()),
            VhError::Net(String::new()),
            VhError::NodeDown(String::new()),
            VhError::StaleMaster(String::new()),
            VhError::Catalog(String::new()),
            VhError::Constraint(String::new()),
            VhError::InvalidArg(String::new()),
            VhError::Internal(String::new()),
        ];
        let tags: std::collections::HashSet<_> = variants.iter().map(|v| v.subsystem()).collect();
        assert_eq!(tags.len(), variants.len(), "subsystem tags must be unique");
    }
}
