//! Deterministic fault injection.
//!
//! The robustness claims of VectorH (§3–§4 locality restoration after node
//! failure, §6 durability under crashes) are only credible if they survive
//! adversarial schedules. This module defines the *injection points*: a
//! [`FaultHook`] that subsystems consult at named [`FaultSite`]s before
//! performing fallible work, and the [`FaultAction`]s they must honour.
//!
//! Determinism contract: a hook's [`FaultHook::decide`] must be a **pure
//! function** of `(site, detail, attempt)` — no interior mutation, no clocks,
//! no ambient entropy. Subsystems run multi-threaded, so sequential RNG draws
//! would make the fired-fault *set* depend on thread interleaving; hashing
//! the call coordinates instead keeps the set of fired faults identical
//! run-to-run for a given seed ("set-determinism"). The chaos harness in
//! `crates/chaos` builds its plans on this contract.
//!
//! Hooks must never call back into the subsystem that invoked them: callers
//! typically hold locks (e.g. the simulated-HDFS namenode lock) across the
//! `decide` call.

use std::sync::Arc;

/// A named place in the engine where a fault can be injected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum FaultSite {
    /// `SimHdfs::read` — transient/permanent I/O errors, slow reads.
    HdfsRead,
    /// `SimHdfs::append` — transient/permanent I/O errors.
    HdfsAppend,
    /// Exchange-operator buffer flush (xchg/dxchg) — drop/duplicate/delay.
    XchgSend,
    /// WAL frame append — crash before/mid (torn frame)/after.
    WalAppend,
    /// WAL replay during recovery — transient read errors.
    WalReplay,
    /// 2PC phase 1 (participant prepare) — crash points.
    TwoPhasePrepare,
    /// 2PC decision/phase 2 (global commit + participant commit) — crash points.
    TwoPhaseDecide,
    /// Failure-detector heartbeat delivery — drop delays death detection.
    Heartbeat,
    /// Transport dial (`Transport::connect`) — the peer refuses the
    /// connection; the dialer must back off and retry.
    ConnRefused,
    /// Transport frame write — the connection dies mid-frame, leaving a
    /// truncated frame on the wire; the receiver must reject it on CRC or
    /// length grounds and the sender must reconnect and retransmit.
    PartialFrame,
    /// Transport connection — an established connection drops between
    /// frames; the sender must reconnect (subject to epoch fencing) and
    /// retransmit everything unacknowledged.
    Disconnect,
    /// Background update propagation (`txn::propagate`) — crash points
    /// between the per-chunk WAL protocol steps. The detail string is
    /// `"<wal path>#<step>"` (e.g. `"/t/p0.wal#rewritten:2"`), so directed
    /// faults can aim at one partition's propagation at one exact step.
    Propagation,
}

impl FaultSite {
    /// Every site, for coverage accounting in the chaos harness.
    pub const ALL: [FaultSite; 12] = [
        FaultSite::HdfsRead,
        FaultSite::HdfsAppend,
        FaultSite::XchgSend,
        FaultSite::WalAppend,
        FaultSite::WalReplay,
        FaultSite::TwoPhasePrepare,
        FaultSite::TwoPhaseDecide,
        FaultSite::Heartbeat,
        FaultSite::ConnRefused,
        FaultSite::PartialFrame,
        FaultSite::Disconnect,
        FaultSite::Propagation,
    ];

    /// Stable short name (used in schedule reports and hashing).
    pub fn name(&self) -> &'static str {
        match self {
            FaultSite::HdfsRead => "hdfs-read",
            FaultSite::HdfsAppend => "hdfs-append",
            FaultSite::XchgSend => "xchg-send",
            FaultSite::WalAppend => "wal-append",
            FaultSite::WalReplay => "wal-replay",
            FaultSite::TwoPhasePrepare => "2pc-prepare",
            FaultSite::TwoPhaseDecide => "2pc-decide",
            FaultSite::Heartbeat => "heartbeat",
            FaultSite::ConnRefused => "conn-refused",
            FaultSite::PartialFrame => "partial-frame",
            FaultSite::Disconnect => "disconnect",
            FaultSite::Propagation => "propagation",
        }
    }
}

impl std::fmt::Display for FaultSite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// What the subsystem must do at an injection point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultAction {
    /// Proceed normally.
    None,
    /// Fail this attempt with a typed error; succeeding attempts (higher
    /// `attempt` numbers) may pass. Retry loops recover from these.
    TransientError,
    /// Fail every attempt with a typed error.
    PermanentError,
    /// Succeed, but account the operation as slowed (simulated latency).
    SlowRead,
    /// Exchange only: pretend the buffer was lost in flight; the sender
    /// must retransmit (reliable transport).
    Drop,
    /// Exchange only: deliver the buffer twice; receivers must dedup.
    Duplicate,
    /// Exchange only: hold the buffer and deliver it after the next one
    /// (bounded reordering).
    Delay,
    /// WAL/2PC only: simulate a crash before the write reaches the log.
    CrashBefore,
    /// WAL append only: simulate a crash mid-write — a torn (partial)
    /// frame reaches the log, then the error surfaces.
    CrashMid,
    /// WAL/2PC only: the write is durable, then the crash happens.
    CrashAfter,
}

impl FaultAction {
    /// Does this action surface as an `Err` to the caller?
    pub fn is_error(&self) -> bool {
        !matches!(
            self,
            FaultAction::None | FaultAction::SlowRead | FaultAction::Duplicate | FaultAction::Delay
        )
    }
}

/// Decision callback consulted at every [`FaultSite`].
///
/// `detail` identifies the concrete operation (file path, exchange name,
/// WAL path); `attempt` is the 0-based retry counter so a hook can model
/// transient faults that clear after k failures.
pub trait FaultHook: Send + Sync + std::fmt::Debug {
    fn decide(&self, site: FaultSite, detail: &str, attempt: u32) -> FaultAction;
}

/// Shared, clonable hook handle as stored by subsystems.
pub type SharedFaultHook = Arc<dyn FaultHook>;

/// Mix the coordinates of an injection point into a single deterministic
/// 64-bit value (FNV-1a over the detail string, then a SplitMix64-style
/// finalizer). Pure by construction — the foundation for set-deterministic
/// fault plans.
pub fn mix_site(seed: u64, site: FaultSite, detail: &str, attempt: u32) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325 ^ seed;
    for &b in site.name().as_bytes() {
        h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3);
    }
    h = (h ^ 0x7e).wrapping_mul(0x0000_0100_0000_01B3); // site/detail separator
    for &b in detail.as_bytes() {
        h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3);
    }
    h = h.wrapping_add((attempt as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    // SplitMix64 finalizer for avalanche.
    let mut z = h.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_is_deterministic_and_sensitive() {
        let a = mix_site(1, FaultSite::HdfsRead, "/db/t/p0/c0", 0);
        assert_eq!(a, mix_site(1, FaultSite::HdfsRead, "/db/t/p0/c0", 0));
        assert_ne!(a, mix_site(2, FaultSite::HdfsRead, "/db/t/p0/c0", 0));
        assert_ne!(a, mix_site(1, FaultSite::HdfsAppend, "/db/t/p0/c0", 0));
        assert_ne!(a, mix_site(1, FaultSite::HdfsRead, "/db/t/p0/c1", 0));
        assert_ne!(a, mix_site(1, FaultSite::HdfsRead, "/db/t/p0/c0", 1));
    }

    #[test]
    fn site_names_are_unique() {
        let names: std::collections::HashSet<_> = FaultSite::ALL.iter().map(|s| s.name()).collect();
        assert_eq!(names.len(), FaultSite::ALL.len());
    }

    #[test]
    fn error_actions_classified() {
        assert!(FaultAction::TransientError.is_error());
        assert!(FaultAction::PermanentError.is_error());
        assert!(FaultAction::CrashBefore.is_error());
        assert!(FaultAction::CrashMid.is_error());
        assert!(FaultAction::CrashAfter.is_error());
        assert!(!FaultAction::None.is_error());
        assert!(!FaultAction::SlowRead.is_error());
        assert!(!FaultAction::Duplicate.is_error());
        assert!(!FaultAction::Delay.is_error());
        assert!(FaultAction::Drop.is_error()); // the send "fails"; sender retransmits
    }
}
