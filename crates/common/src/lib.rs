//! Shared foundation for the VectorH-rs workspace.
//!
//! This crate holds the pieces every other crate needs and nothing else:
//! the value/type system ([`types`]), schemas ([`schema`]), typed identifiers
//! ([`ids`]), error handling ([`error`]), bit sets ([`bitmap`]), a
//! deterministic RNG ([`rng`]) and small numeric/hash utilities ([`util`]).
//!
//! VectorH (SIGMOD 2016) is a distributed system; to keep simulations
//! reproducible, everything in this workspace that needs randomness goes
//! through [`rng::SplitMix64`] seeded explicitly, never through ambient OS
//! entropy.

pub mod bitmap;
pub mod channel;
pub mod column;
pub mod error;
pub mod fault;
pub mod ids;
pub mod rng;
pub mod schema;
pub mod simd;
pub mod sync;
pub mod types;
pub mod util;

pub use column::{ColumnData, PhysicalType};
pub use error::{Result, VhError};
pub use ids::*;
pub use schema::{Field, Schema};
pub use types::{DataType, Value};

/// The vector size used by the vectorized engine: operations process
/// "mini-columns" of roughly this many values at a time (paper §2).
pub const VECTOR_SIZE: usize = 1024;
