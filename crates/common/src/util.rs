//! Small numeric and hashing utilities shared across crates.

/// FxHash-style multiply-xor hash for 64-bit keys: the engine's hash joins
/// and hash aggregations need speed, not HashDoS resistance.
#[inline]
pub fn hash_u64(x: u64) -> u64 {
    // xorshift-multiply mix (same family as FxHash / splitmix finalizer).
    let mut h = x;
    h ^= h >> 33;
    h = h.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    h ^= h >> 33;
    h = h.wrapping_mul(0xC4CE_B9FE_1A85_EC53);
    h ^= h >> 33;
    h
}

/// Combine two hashes (for multi-column keys).
#[inline]
pub fn hash_combine(a: u64, b: u64) -> u64 {
    hash_u64(a ^ b.rotate_left(31).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// Hash a byte slice (strings).
#[inline]
pub fn hash_bytes(bytes: &[u8]) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for chunk in bytes.chunks(8) {
        let mut word = [0u8; 8];
        word[..chunk.len()].copy_from_slice(chunk);
        h = hash_combine(h, u64::from_le_bytes(word));
    }
    hash_combine(h, bytes.len() as u64)
}

/// Geometric mean of strictly positive samples; the paper's update-impact
/// metric ("GeoDiff") is a ratio of geometric means over the 22 queries.
pub fn geometric_mean(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty(), "geometric mean of empty slice");
    let log_sum: f64 = xs
        .iter()
        .map(|&x| {
            assert!(x > 0.0, "geometric mean requires positive samples");
            x.ln()
        })
        .sum();
    (log_sum / xs.len() as f64).exp()
}

/// Number of bits needed to represent `v` (0 needs 0 bits).
#[inline]
pub fn bits_needed(v: u64) -> u8 {
    (64 - v.leading_zeros()) as u8
}

/// Round `n` up to a multiple of `m`.
#[inline]
pub fn round_up(n: usize, m: usize) -> usize {
    n.div_ceil(m) * m
}

/// Format a byte count for human-readable reports.
pub fn fmt_bytes(n: u64) -> String {
    const UNITS: [&str; 5] = ["B", "KB", "MB", "GB", "TB"];
    let mut v = n as f64;
    let mut unit = 0;
    while v >= 1024.0 && unit < UNITS.len() - 1 {
        v /= 1024.0;
        unit += 1;
    }
    if unit == 0 {
        format!("{n} B")
    } else {
        format!("{v:.2} {}", UNITS[unit])
    }
}

/// Format a duration in seconds with sensible precision for report tables.
pub fn fmt_secs(s: f64) -> String {
    if s >= 100.0 {
        format!("{s:.0}")
    } else if s >= 10.0 {
        format!("{s:.1}")
    } else {
        format!("{s:.2}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_is_stable_and_spread() {
        assert_eq!(hash_u64(1), hash_u64(1));
        assert_ne!(hash_u64(1), hash_u64(2));
        // Cheap avalanche check: flipping one input bit flips many output bits.
        let a = hash_u64(0x1234);
        let b = hash_u64(0x1235);
        assert!((a ^ b).count_ones() > 16);
    }

    #[test]
    fn hash_bytes_distinguishes_lengths() {
        assert_ne!(hash_bytes(b"ab"), hash_bytes(b"ab\0"));
        assert_ne!(hash_bytes(b""), hash_bytes(b"\0"));
        assert_eq!(hash_bytes(b"hello"), hash_bytes(b"hello"));
    }

    #[test]
    fn hash_combine_is_order_sensitive() {
        assert_ne!(hash_combine(1, 2), hash_combine(2, 1));
    }

    #[test]
    fn geometric_mean_basics() {
        assert!((geometric_mean(&[4.0, 9.0]) - 6.0).abs() < 1e-12);
        assert!((geometric_mean(&[5.0]) - 5.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn geometric_mean_rejects_nonpositive() {
        geometric_mean(&[1.0, 0.0]);
    }

    #[test]
    fn bits_needed_boundaries() {
        assert_eq!(bits_needed(0), 0);
        assert_eq!(bits_needed(1), 1);
        assert_eq!(bits_needed(255), 8);
        assert_eq!(bits_needed(256), 9);
        assert_eq!(bits_needed(u64::MAX), 64);
    }

    #[test]
    fn round_up_works() {
        assert_eq!(round_up(0, 8), 0);
        assert_eq!(round_up(1, 8), 8);
        assert_eq!(round_up(8, 8), 8);
        assert_eq!(round_up(9, 8), 16);
    }

    #[test]
    fn formatting() {
        assert_eq!(fmt_bytes(512), "512 B");
        assert_eq!(fmt_bytes(2048), "2.00 KB");
        assert_eq!(fmt_secs(1.234), "1.23");
        assert_eq!(fmt_secs(12.34), "12.3");
        assert_eq!(fmt_secs(123.4), "123");
    }
}
