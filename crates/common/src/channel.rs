//! Bounded multi-producer multi-consumer channels.
//!
//! The exchange operators need `crossbeam-channel`-style MPMC channels —
//! cloneable senders *and* receivers, blocking `send`/`recv`, disconnect
//! detection — but the workspace builds without crates.io access, so this is
//! a small homegrown implementation over a mutex-protected ring and two
//! condition variables. Throughput is well above what the exchange layer
//! needs: messages are whole vectors (≥1K rows), so channel traffic is
//! amortized exactly like every other per-vector cost in the engine.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};

/// The sending side is gone; carries the undeliverable message back.
#[derive(Debug, PartialEq, Eq)]
pub struct SendError<T>(pub T);

/// The channel is empty and every sender has disconnected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

struct Inner<T> {
    queue: VecDeque<T>,
    cap: usize,
    senders: usize,
    receivers: usize,
}

struct Chan<T> {
    inner: Mutex<Inner<T>>,
    not_empty: Condvar,
    not_full: Condvar,
}

/// Create a bounded MPMC channel with room for `cap` in-flight messages.
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    let chan = Arc::new(Chan {
        inner: Mutex::new(Inner {
            queue: VecDeque::new(),
            cap: cap.max(1),
            senders: 1,
            receivers: 1,
        }),
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
    });
    (Sender { chan: chan.clone() }, Receiver { chan })
}

/// Producer handle; cloning adds another producer.
pub struct Sender<T> {
    chan: Arc<Chan<T>>,
}

/// Consumer handle; cloning adds another consumer.
pub struct Receiver<T> {
    chan: Arc<Chan<T>>,
}

impl<T> Sender<T> {
    /// Block until there is room, then enqueue. Errors (returning the
    /// message) once every receiver is gone.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        self.send_tracked(value).map(|_| ())
    }

    /// Like [`send`](Self::send), but reports whether the call had to block
    /// on a full queue before the message fit — i.e. whether the sender was
    /// stalled by backpressure. The transport layer surfaces this as a
    /// credit-stall counter.
    pub fn send_tracked(&self, value: T) -> Result<bool, SendError<T>> {
        let mut inner = self.chan.inner.lock().unwrap_or_else(|e| e.into_inner());
        let mut stalled = false;
        loop {
            if inner.receivers == 0 {
                return Err(SendError(value));
            }
            if inner.queue.len() < inner.cap {
                inner.queue.push_back(value);
                drop(inner);
                self.chan.not_empty.notify_one();
                return Ok(stalled);
            }
            stalled = true;
            inner = self
                .chan
                .not_full
                .wait(inner)
                .unwrap_or_else(|e| e.into_inner());
        }
    }
}

impl<T> Receiver<T> {
    /// Block until a message arrives. Errors once the channel is empty and
    /// every sender is gone (end of stream).
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut inner = self.chan.inner.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(v) = inner.queue.pop_front() {
                drop(inner);
                self.chan.not_full.notify_one();
                return Ok(v);
            }
            if inner.senders == 0 {
                return Err(RecvError);
            }
            inner = self
                .chan
                .not_empty
                .wait(inner)
                .unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Pop a message only if one is already queued.
    pub fn try_recv(&self) -> Option<T> {
        let mut inner = self.chan.inner.lock().unwrap_or_else(|e| e.into_inner());
        let v = inner.queue.pop_front();
        if v.is_some() {
            drop(inner);
            self.chan.not_full.notify_one();
        }
        v
    }

    /// Drain whatever is queued right now without blocking.
    pub fn try_iter(&self) -> TryIter<'_, T> {
        TryIter { rx: self }
    }
}

/// Iterator over currently-queued messages (see [`Receiver::try_iter`]).
pub struct TryIter<'a, T> {
    rx: &'a Receiver<T>,
}

impl<T> Iterator for TryIter<'_, T> {
    type Item = T;

    fn next(&mut self) -> Option<T> {
        self.rx.try_recv()
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        let mut inner = self.chan.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.senders += 1;
        drop(inner);
        Sender {
            chan: self.chan.clone(),
        }
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        let mut inner = self.chan.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.receivers += 1;
        drop(inner);
        Receiver {
            chan: self.chan.clone(),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut inner = self.chan.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.senders -= 1;
        let last = inner.senders == 0;
        drop(inner);
        if last {
            // Wake blocked consumers so they observe end-of-stream.
            self.chan.not_empty.notify_all();
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut inner = self.chan.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.receivers -= 1;
        let last = inner.receivers == 0;
        drop(inner);
        if last {
            // Wake blocked producers so they observe the disconnect.
            self.chan.not_full.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_recv_fifo() {
        let (tx, rx) = bounded(4);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
    }

    #[test]
    fn recv_errors_after_all_senders_drop() {
        let (tx, rx) = bounded::<i32>(2);
        tx.send(7).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(7));
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn send_errors_after_all_receivers_drop() {
        let (tx, rx) = bounded(2);
        drop(rx);
        assert_eq!(tx.send(1), Err(SendError(1)));
    }

    #[test]
    fn backpressure_blocks_until_drained() {
        let (tx, rx) = bounded(1);
        tx.send(0).unwrap();
        let h = std::thread::spawn(move || tx.send(1).is_ok());
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert_eq!(rx.recv(), Ok(0));
        assert_eq!(rx.recv(), Ok(1));
        assert!(h.join().unwrap());
    }

    #[test]
    fn try_iter_drains_without_blocking() {
        let (tx, rx) = bounded(8);
        for i in 0..3 {
            tx.send(i).unwrap();
        }
        assert_eq!(rx.try_iter().collect::<Vec<_>>(), vec![0, 1, 2]);
        assert_eq!(rx.try_iter().count(), 0); // empty, does not block
    }

    #[test]
    fn send_tracked_reports_backpressure_stalls() {
        let (tx, rx) = bounded(1);
        assert_eq!(tx.send_tracked(0), Ok(false)); // room: no stall
        let h = std::thread::spawn(move || tx.send_tracked(1));
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert_eq!(rx.recv(), Ok(0));
        assert_eq!(h.join().unwrap(), Ok(true)); // had to wait for the drain
        assert_eq!(rx.recv(), Ok(1));
    }

    #[test]
    fn zero_capacity_clamps_to_one_and_still_flows() {
        let (tx, rx) = bounded(0);
        tx.send(42).unwrap(); // cap clamps to 1, so one message fits
        let h = std::thread::spawn(move || tx.send(43).is_ok());
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert_eq!(rx.recv(), Ok(42));
        assert_eq!(rx.recv(), Ok(43));
        assert!(h.join().unwrap());
    }

    #[test]
    fn sender_dropped_mid_stream_drains_then_disconnects() {
        let (tx, rx) = bounded(8);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        drop(tx); // sender dies with messages still queued
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.recv(), Err(RecvError)); // then clean end-of-stream
    }

    #[test]
    fn receiver_dropped_with_queued_frames_unblocks_sender() {
        let (tx, rx) = bounded(1);
        tx.send(0).unwrap(); // queue now full
        let h = std::thread::spawn(move || tx.send(1)); // blocks on backpressure
        std::thread::sleep(std::time::Duration::from_millis(20));
        drop(rx); // receiver dies with a frame still queued
        assert_eq!(h.join().unwrap(), Err(SendError(1))); // no deadlock
    }

    #[test]
    fn mpmc_many_producers_many_consumers() {
        let (tx, rx) = bounded(16);
        let producers: Vec<_> = (0..4)
            .map(|p| {
                let tx = tx.clone();
                std::thread::spawn(move || {
                    for i in 0..500 {
                        tx.send(p * 1000 + i).unwrap();
                    }
                })
            })
            .collect();
        drop(tx);
        let consumers: Vec<_> = (0..3)
            .map(|_| {
                let rx = rx.clone();
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Ok(v) = rx.recv() {
                        got.push(v);
                    }
                    got
                })
            })
            .collect();
        drop(rx);
        for p in producers {
            p.join().unwrap();
        }
        let mut all: Vec<i32> = consumers
            .into_iter()
            .flat_map(|c| c.join().unwrap())
            .collect();
        all.sort_unstable();
        let mut want: Vec<i32> = (0..4)
            .flat_map(|p| (0..500).map(move |i| p * 1000 + i))
            .collect();
        want.sort_unstable();
        assert_eq!(all, want);
    }
}
