//! Poison-free locks with a `parking_lot`-shaped API.
//!
//! The workspace builds hermetically — no crates.io access — so these thin
//! wrappers over `std::sync` stand in for `parking_lot`: `lock()`, `read()`
//! and `write()` return guards directly instead of `Result`s. A poisoned
//! lock (a panic while holding the guard) is transparently recovered; the
//! engine's shared state is either immutable-after-build or rebuilt on
//! failover, so observing a half-written update is no worse than the
//! panicking query already was.

use std::sync::{
    Mutex as StdMutex, MutexGuard, RwLock as StdRwLock, RwLockReadGuard, RwLockWriteGuard,
};

/// Mutual exclusion; `lock()` never returns an error.
#[derive(Debug, Default)]
pub struct Mutex<T>(StdMutex<T>);

impl<T> Mutex<T> {
    pub fn new(value: T) -> Mutex<T> {
        Mutex(StdMutex::new(value))
    }

    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

/// Reader-writer lock; `read()`/`write()` never return errors.
#[derive(Debug, Default)]
pub struct RwLock<T>(StdRwLock<T>);

impl<T> RwLock<T> {
    pub fn new(value: T) -> RwLock<T> {
        RwLock(StdRwLock::new(value))
    }

    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(*l.read(), vec![1, 2]);
    }

    #[test]
    fn mutex_survives_poison() {
        let m = Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison");
        })
        .join();
        // A parking_lot-style lock keeps working after a panicking holder.
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }

    #[test]
    fn shared_across_threads() {
        let l = Arc::new(RwLock::new(0u64));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let l = l.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *l.write() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*l.read(), 4000);
    }
}
