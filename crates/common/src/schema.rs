//! Schemas: named, typed column lists.

use crate::types::DataType;
use crate::{Result, VhError};

/// One column of a schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Field {
    pub name: String,
    pub dtype: DataType,
}

impl Field {
    pub fn new(name: impl Into<String>, dtype: DataType) -> Self {
        Field {
            name: name.into(),
            dtype,
        }
    }
}

/// An ordered list of fields.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    fields: Vec<Field>,
}

impl Schema {
    pub fn new(fields: Vec<Field>) -> Self {
        Schema { fields }
    }

    /// Convenience constructor from `(name, type)` pairs.
    pub fn of(pairs: &[(&str, DataType)]) -> Self {
        Schema {
            fields: pairs.iter().map(|(n, t)| Field::new(*n, *t)).collect(),
        }
    }

    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    pub fn len(&self) -> usize {
        self.fields.len()
    }

    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    pub fn field(&self, idx: usize) -> &Field {
        &self.fields[idx]
    }

    /// Index of the column with this name.
    pub fn index_of(&self, name: &str) -> Result<usize> {
        self.fields
            .iter()
            .position(|f| f.name == name)
            .ok_or_else(|| VhError::Catalog(format!("unknown column '{name}'")))
    }

    pub fn dtype(&self, idx: usize) -> DataType {
        self.fields[idx].dtype
    }

    /// Schema containing only the given column indexes, in that order.
    pub fn project(&self, cols: &[usize]) -> Schema {
        Schema {
            fields: cols.iter().map(|&c| self.fields[c].clone()).collect(),
        }
    }

    /// Concatenate two schemas (join output).
    pub fn join(&self, other: &Schema) -> Schema {
        let mut fields = self.fields.clone();
        fields.extend(other.fields.iter().cloned());
        Schema { fields }
    }

    pub fn names(&self) -> Vec<&str> {
        self.fields.iter().map(|f| f.name.as_str()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Schema {
        Schema::of(&[
            ("id", DataType::I64),
            ("price", DataType::Decimal { scale: 2 }),
            ("name", DataType::Str),
        ])
    }

    #[test]
    fn lookup_by_name() {
        let s = sample();
        assert_eq!(s.index_of("price").unwrap(), 1);
        assert!(s.index_of("missing").is_err());
        assert_eq!(s.dtype(0), DataType::I64);
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn projection_preserves_order() {
        let s = sample();
        let p = s.project(&[2, 0]);
        assert_eq!(p.names(), vec!["name", "id"]);
        assert_eq!(p.dtype(1), DataType::I64);
    }

    #[test]
    fn join_concatenates() {
        let s = sample();
        let t = Schema::of(&[("qty", DataType::I32)]);
        let j = s.join(&t);
        assert_eq!(j.len(), 4);
        assert_eq!(j.field(3).name, "qty");
    }
}
