//! Deterministic pseudo-random number generation.
//!
//! Every simulation in the workspace (data generation, failure injection,
//! scheduling jitter) draws from an explicitly seeded generator so results
//! are reproducible run-to-run — the property that lets the benchmark
//! harnesses report stable paper-shaped numbers.

/// SplitMix64: tiny, fast, and statistically solid for simulation purposes.
///
/// Used directly and as the seeding function for derived streams.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64 random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`. `bound` must be non-zero.
    #[inline]
    pub fn next_bounded(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Lemire's multiply-shift rejection-free approximation is fine here;
        // bias is < 2^-32 for the bounds used in this workspace.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform integer in the inclusive range `[lo, hi]`.
    #[inline]
    pub fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        debug_assert!(lo <= hi);
        let span = (hi - lo) as u64 + 1;
        lo + self.next_bounded(span) as i64
    }

    /// Uniform f64 in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli draw.
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Derive an independent child stream (e.g. one per table column).
    pub fn fork(&mut self, stream: u64) -> SplitMix64 {
        SplitMix64::new(self.next_u64() ^ stream.wrapping_mul(0xA24B_AED4_963E_E407))
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.next_bounded(i as u64 + 1) as usize;
            xs.swap(i, j);
        }
    }

    /// Pick a uniformly random element.
    pub fn choose<'a, T>(&mut self, xs: &'a [T]) -> Option<&'a T> {
        if xs.is_empty() {
            None
        } else {
            Some(&xs[self.next_bounded(xs.len() as u64) as usize])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn bounded_stays_in_bounds() {
        let mut r = SplitMix64::new(7);
        for _ in 0..10_000 {
            assert!(r.next_bounded(13) < 13);
            let v = r.range_i64(-5, 5);
            assert!((-5..=5).contains(&v));
            let f = r.next_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn range_hits_both_endpoints() {
        let mut r = SplitMix64::new(3);
        let (mut lo_seen, mut hi_seen) = (false, false);
        for _ in 0..1000 {
            match r.range_i64(0, 3) {
                0 => lo_seen = true,
                3 => hi_seen = true,
                _ => {}
            }
        }
        assert!(lo_seen && hi_seen);
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = SplitMix64::new(9);
        let mut xs: Vec<u32> = (0..50).collect();
        r.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn fork_streams_are_independent() {
        let mut base = SplitMix64::new(5);
        let mut c1 = base.fork(1);
        let mut c2 = base.fork(2);
        // Not a statistical test, just "they are not the same stream".
        let a: Vec<u64> = (0..8).map(|_| c1.next_u64()).collect();
        let b: Vec<u64> = (0..8).map(|_| c2.next_u64()).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn choose_covers_elements() {
        let mut r = SplitMix64::new(11);
        let xs = [1, 2, 3];
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            seen.insert(*r.choose(&xs).unwrap());
        }
        assert_eq!(seen.len(), 3);
        assert!(r.choose::<i32>(&[]).is_none());
    }
}
