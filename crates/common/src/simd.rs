//! SIMD dispatch policy shared by every vectorized kernel in the workspace.
//!
//! Each hot-loop kernel (bit-unpacking, hash folding, selection compaction)
//! ships three arms with bit-identical results:
//!
//! * **Avx2** — explicit `std::arch::x86_64` intrinsics, selected at runtime
//!   with `is_x86_feature_detected!` so a single binary runs everywhere;
//! * **Swar** — portable "SIMD within a register": multiple values per `u64`
//!   word with unrolled fixed-shift groups, no target features required;
//! * **Scalar** — the original value-at-a-time loops, kept as the property
//!   test oracle and as the "before" arm of the perf trajectory.
//!
//! The active arm is resolved once and cached. Two overrides exist for CI
//! and benchmarking:
//!
//! * the `VH_SIMD` environment variable (`avx2` / `swar` / `scalar`) pins the
//!   arm for the whole process — CI runs the test suite under `VH_SIMD=swar`
//!   so the portable arm is exercised even on AVX2 hosts;
//! * building with `--cfg vectorh_force_swar` compiles the AVX2 arm out
//!   entirely, proving the portable path has no hidden AVX2 dependency.
//!
//! Benchmarks flip arms at runtime with [`force_mode`] to measure
//! before/after pairs inside one process.

use std::sync::atomic::{AtomicU8, Ordering};

/// Which kernel arm to run. See the module docs for the selection policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimdMode {
    /// Explicit AVX2 intrinsics (x86_64 with runtime feature detection).
    Avx2,
    /// Portable multi-value-per-u64 arm.
    Swar,
    /// Value-at-a-time oracle loops.
    Scalar,
}

impl SimdMode {
    /// Parse a `VH_SIMD` value. Unknown strings return `None` (auto-detect).
    pub fn from_env_str(s: &str) -> Option<SimdMode> {
        match s.trim().to_ascii_lowercase().as_str() {
            "avx2" => Some(SimdMode::Avx2),
            "swar" => Some(SimdMode::Swar),
            "scalar" => Some(SimdMode::Scalar),
            _ => None,
        }
    }

    pub fn name(self) -> &'static str {
        match self {
            SimdMode::Avx2 => "avx2",
            SimdMode::Swar => "swar",
            SimdMode::Scalar => "scalar",
        }
    }
}

const MODE_UNSET: u8 = 0;
const MODE_AVX2: u8 = 1;
const MODE_SWAR: u8 = 2;
const MODE_SCALAR: u8 = 3;

static MODE: AtomicU8 = AtomicU8::new(MODE_UNSET);

fn encode(m: SimdMode) -> u8 {
    match m {
        SimdMode::Avx2 => MODE_AVX2,
        SimdMode::Swar => MODE_SWAR,
        SimdMode::Scalar => MODE_SCALAR,
    }
}

fn decode(v: u8) -> Option<SimdMode> {
    match v {
        MODE_AVX2 => Some(SimdMode::Avx2),
        MODE_SWAR => Some(SimdMode::Swar),
        MODE_SCALAR => Some(SimdMode::Scalar),
        _ => None,
    }
}

/// True when the AVX2 arm is compiled in *and* the CPU supports it.
pub fn avx2_available() -> bool {
    #[cfg(all(target_arch = "x86_64", not(vectorh_force_swar)))]
    {
        std::arch::is_x86_feature_detected!("avx2")
    }
    #[cfg(not(all(target_arch = "x86_64", not(vectorh_force_swar))))]
    {
        false
    }
}

fn detect() -> SimdMode {
    if let Ok(s) = std::env::var("VH_SIMD") {
        if let Some(m) = SimdMode::from_env_str(&s) {
            // An env request for AVX2 on a host without it falls back to
            // SWAR rather than executing illegal instructions.
            if m != SimdMode::Avx2 || avx2_available() {
                return m;
            }
            return SimdMode::Swar;
        }
    }
    if avx2_available() {
        SimdMode::Avx2
    } else {
        SimdMode::Swar
    }
}

/// The process-wide kernel arm (detected once, then cached).
#[inline]
pub fn simd_mode() -> SimdMode {
    if let Some(m) = decode(MODE.load(Ordering::Relaxed)) {
        return m;
    }
    let m = detect();
    MODE.store(encode(m), Ordering::Relaxed);
    m
}

/// Pin (or with `None`, re-detect) the kernel arm. Benchmarks use this to
/// measure before/after pairs in one process; production code never calls
/// it. Requests for an unavailable arm degrade like [`simd_mode`] detection.
pub fn force_mode(mode: Option<SimdMode>) {
    match mode {
        None => MODE.store(MODE_UNSET, Ordering::Relaxed),
        Some(SimdMode::Avx2) if !avx2_available() => {
            MODE.store(MODE_SWAR, Ordering::Relaxed);
        }
        Some(m) => MODE.store(encode(m), Ordering::Relaxed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_strings_parse() {
        assert_eq!(SimdMode::from_env_str("avx2"), Some(SimdMode::Avx2));
        assert_eq!(SimdMode::from_env_str(" SWAR "), Some(SimdMode::Swar));
        assert_eq!(SimdMode::from_env_str("Scalar"), Some(SimdMode::Scalar));
        assert_eq!(SimdMode::from_env_str("neon"), None);
        assert_eq!(SimdMode::from_env_str(""), None);
    }

    #[test]
    fn forcing_pins_and_unpinning_redetects() {
        let auto = simd_mode();
        force_mode(Some(SimdMode::Scalar));
        assert_eq!(simd_mode(), SimdMode::Scalar);
        force_mode(Some(SimdMode::Swar));
        assert_eq!(simd_mode(), SimdMode::Swar);
        force_mode(None);
        assert_eq!(simd_mode(), auto);
    }

    #[test]
    fn avx2_request_degrades_when_unavailable() {
        force_mode(Some(SimdMode::Avx2));
        let got = simd_mode();
        if avx2_available() {
            assert_eq!(got, SimdMode::Avx2);
        } else {
            assert_eq!(got, SimdMode::Swar);
        }
        force_mode(None);
    }
}
