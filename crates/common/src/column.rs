//! Typed column buffers.
//!
//! [`ColumnData`] is the unit of data movement everywhere in VectorH-rs:
//! storage blocks hold one, the vectorized engine processes slices of one,
//! codecs compress one. Logical types map onto four physical layouts:
//! `I32` (ints and dates), `I64` (bigints and scaled decimals), `F64`,
//! and `Str`.

use crate::types::{DataType, Value};
use crate::{Result, VhError};

/// Physical column buffer.
#[derive(Debug, Clone, PartialEq)]
pub enum ColumnData {
    I32(Vec<i32>),
    I64(Vec<i64>),
    F64(Vec<f64>),
    Str(Vec<String>),
}

/// The physical layout a logical [`DataType`] is stored in.
pub fn physical_of(dtype: DataType) -> PhysicalType {
    match dtype {
        DataType::I32 | DataType::Date => PhysicalType::I32,
        DataType::I64 | DataType::Decimal { .. } => PhysicalType::I64,
        DataType::F64 => PhysicalType::F64,
        DataType::Str => PhysicalType::Str,
    }
}

/// Physical layout tags.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PhysicalType {
    I32,
    I64,
    F64,
    Str,
}

impl ColumnData {
    /// Empty buffer of the physical layout for `dtype`.
    pub fn new(dtype: DataType) -> Self {
        Self::with_capacity(dtype, 0)
    }

    pub fn with_capacity(dtype: DataType, cap: usize) -> Self {
        match physical_of(dtype) {
            PhysicalType::I32 => ColumnData::I32(Vec::with_capacity(cap)),
            PhysicalType::I64 => ColumnData::I64(Vec::with_capacity(cap)),
            PhysicalType::F64 => ColumnData::F64(Vec::with_capacity(cap)),
            PhysicalType::Str => ColumnData::Str(Vec::with_capacity(cap)),
        }
    }

    pub fn physical(&self) -> PhysicalType {
        match self {
            ColumnData::I32(_) => PhysicalType::I32,
            ColumnData::I64(_) => PhysicalType::I64,
            ColumnData::F64(_) => PhysicalType::F64,
            ColumnData::Str(_) => PhysicalType::Str,
        }
    }

    pub fn len(&self) -> usize {
        match self {
            ColumnData::I32(v) => v.len(),
            ColumnData::I64(v) => v.len(),
            ColumnData::F64(v) => v.len(),
            ColumnData::Str(v) => v.len(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Uncompressed in-memory footprint in bytes (strings count their UTF-8
    /// payload plus a 4-byte length, matching a packed on-disk layout).
    pub fn byte_size(&self) -> usize {
        match self {
            ColumnData::I32(v) => v.len() * 4,
            ColumnData::I64(v) => v.len() * 8,
            ColumnData::F64(v) => v.len() * 8,
            ColumnData::Str(v) => v.iter().map(|s| s.len() + 4).sum(),
        }
    }

    /// Read one element as a [`Value`], interpreting the physical data using
    /// the logical `dtype` (so decimals keep their scale and dates print as
    /// dates).
    pub fn value_at(&self, idx: usize, dtype: DataType) -> Value {
        match (self, dtype) {
            (ColumnData::I32(v), DataType::Date) => Value::Date(v[idx]),
            (ColumnData::I32(v), _) => Value::I32(v[idx]),
            (ColumnData::I64(v), DataType::Decimal { scale }) => Value::Decimal(v[idx], scale),
            (ColumnData::I64(v), _) => Value::I64(v[idx]),
            (ColumnData::F64(v), _) => Value::F64(v[idx]),
            (ColumnData::Str(v), _) => Value::Str(v[idx].clone()),
        }
    }

    /// Append a [`Value`]; must match the physical layout.
    pub fn push_value(&mut self, v: &Value) -> Result<()> {
        match (self, v) {
            (ColumnData::I32(c), Value::I32(x)) => c.push(*x),
            (ColumnData::I32(c), Value::Date(x)) => c.push(*x),
            (ColumnData::I64(c), Value::I64(x)) => c.push(*x),
            (ColumnData::I64(c), Value::Decimal(x, _)) => c.push(*x),
            (ColumnData::I64(c), Value::I32(x)) => c.push(*x as i64),
            (ColumnData::F64(c), Value::F64(x)) => c.push(*x),
            (ColumnData::Str(c), Value::Str(x)) => c.push(x.clone()),
            (c, v) => {
                return Err(VhError::InvalidArg(format!(
                    "cannot push {v:?} into {:?} column",
                    c.physical()
                )))
            }
        }
        Ok(())
    }

    /// Append all values of `other`; physical layouts must match.
    pub fn append(&mut self, other: &ColumnData) -> Result<()> {
        match (self, other) {
            (ColumnData::I32(a), ColumnData::I32(b)) => a.extend_from_slice(b),
            (ColumnData::I64(a), ColumnData::I64(b)) => a.extend_from_slice(b),
            (ColumnData::F64(a), ColumnData::F64(b)) => a.extend_from_slice(b),
            (ColumnData::Str(a), ColumnData::Str(b)) => a.extend(b.iter().cloned()),
            _ => {
                return Err(VhError::InvalidArg(
                    "column append with mismatched physical types".into(),
                ))
            }
        }
        Ok(())
    }

    /// Copy the subrange `[from, to)` into a new buffer.
    pub fn slice(&self, from: usize, to: usize) -> ColumnData {
        match self {
            ColumnData::I32(v) => ColumnData::I32(v[from..to].to_vec()),
            ColumnData::I64(v) => ColumnData::I64(v[from..to].to_vec()),
            ColumnData::F64(v) => ColumnData::F64(v[from..to].to_vec()),
            ColumnData::Str(v) => ColumnData::Str(v[from..to].to_vec()),
        }
    }

    /// Gather the listed positions into a new buffer.
    pub fn gather(&self, idx: &[usize]) -> ColumnData {
        match self {
            ColumnData::I32(v) => ColumnData::I32(idx.iter().map(|&i| v[i]).collect()),
            ColumnData::I64(v) => ColumnData::I64(idx.iter().map(|&i| v[i]).collect()),
            ColumnData::F64(v) => ColumnData::F64(idx.iter().map(|&i| v[i]).collect()),
            ColumnData::Str(v) => ColumnData::Str(idx.iter().map(|&i| v[i].clone()).collect()),
        }
    }

    /// Borrow as `&[i32]`, if that is the physical layout.
    pub fn as_i32(&self) -> Option<&[i32]> {
        match self {
            ColumnData::I32(v) => Some(v),
            _ => None,
        }
    }

    /// Copy out as `Vec<i64>` regardless of integer width (numeric kernels).
    pub fn to_i64_vec(&self) -> Option<Vec<i64>> {
        match self {
            ColumnData::I32(v) => Some(v.iter().map(|&x| x as i64).collect()),
            ColumnData::I64(v) => Some(v.clone()),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<&[i64]> {
        match self {
            ColumnData::I64(v) => Some(v),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<&[f64]> {
        match self {
            ColumnData::F64(v) => Some(v),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&[String]> {
        match self {
            ColumnData::Str(v) => Some(v),
            _ => None,
        }
    }

    pub fn truncate(&mut self, len: usize) {
        match self {
            ColumnData::I32(v) => v.truncate(len),
            ColumnData::I64(v) => v.truncate(len),
            ColumnData::F64(v) => v.truncate(len),
            ColumnData::Str(v) => v.truncate(len),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn physical_mapping() {
        assert_eq!(physical_of(DataType::Date), PhysicalType::I32);
        assert_eq!(
            physical_of(DataType::Decimal { scale: 2 }),
            PhysicalType::I64
        );
        assert_eq!(physical_of(DataType::Str), PhysicalType::Str);
    }

    #[test]
    fn push_and_read_values() {
        let mut c = ColumnData::new(DataType::Decimal { scale: 2 });
        c.push_value(&Value::Decimal(125, 2)).unwrap();
        c.push_value(&Value::I32(3)).unwrap(); // widened to i64 raw
        assert_eq!(c.len(), 2);
        assert_eq!(
            c.value_at(0, DataType::Decimal { scale: 2 }),
            Value::Decimal(125, 2)
        );
        assert!(c.push_value(&Value::Str("x".into())).is_err());
    }

    #[test]
    fn date_column_roundtrip() {
        let mut c = ColumnData::new(DataType::Date);
        c.push_value(&Value::Date(9190)).unwrap();
        assert_eq!(c.value_at(0, DataType::Date), Value::Date(9190));
    }

    #[test]
    fn slice_and_gather() {
        let c = ColumnData::I64(vec![10, 20, 30, 40]);
        assert_eq!(c.slice(1, 3), ColumnData::I64(vec![20, 30]));
        assert_eq!(c.gather(&[3, 0]), ColumnData::I64(vec![40, 10]));
    }

    #[test]
    fn append_checks_types() {
        let mut a = ColumnData::I32(vec![1]);
        a.append(&ColumnData::I32(vec![2, 3])).unwrap();
        assert_eq!(a.len(), 3);
        assert!(a.append(&ColumnData::I64(vec![4])).is_err());
    }

    #[test]
    fn byte_size_counts_strings() {
        let c = ColumnData::Str(vec!["ab".into(), "cdef".into()]);
        assert_eq!(c.byte_size(), 2 + 4 + 4 + 4);
        assert_eq!(ColumnData::I32(vec![0; 10]).byte_size(), 40);
    }
}
