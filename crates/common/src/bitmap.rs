//! A dense bit set over row positions.
//!
//! Used for delete masks, selection pre-filters and MinMax skip decisions.

/// Fixed-capacity bit set backed by `u64` words.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bitmap {
    words: Vec<u64>,
    len: usize,
}

impl Bitmap {
    /// All-zero bitmap with `len` addressable bits.
    pub fn new(len: usize) -> Self {
        Bitmap {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// All-one bitmap with `len` addressable bits.
    pub fn all_set(len: usize) -> Self {
        let mut b = Bitmap {
            words: vec![u64::MAX; len.div_ceil(64)],
            len,
        };
        b.clear_tail();
        b
    }

    fn clear_tail(&mut self) {
        let tail = self.len % 64;
        if tail != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << tail) - 1;
            }
        }
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    #[inline]
    pub fn set(&mut self, i: usize) {
        debug_assert!(i < self.len);
        self.words[i / 64] |= 1u64 << (i % 64);
    }

    #[inline]
    pub fn clear(&mut self, i: usize) {
        debug_assert!(i < self.len);
        self.words[i / 64] &= !(1u64 << (i % 64));
    }

    #[inline]
    pub fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        self.words[i / 64] >> (i % 64) & 1 == 1
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Grow to hold `len` bits (new bits are zero).
    pub fn resize(&mut self, len: usize) {
        self.words.resize(len.div_ceil(64), 0);
        self.len = len;
        self.clear_tail();
    }

    /// In-place union. Panics if lengths differ.
    pub fn union_with(&mut self, other: &Bitmap) {
        assert_eq!(self.len, other.len);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= *b;
        }
    }

    /// In-place intersection. Panics if lengths differ.
    pub fn intersect_with(&mut self, other: &Bitmap) {
        assert_eq!(self.len, other.len);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= *b;
        }
    }

    /// Iterator over indexes of set bits, ascending.
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut w = w;
            std::iter::from_fn(move || {
                if w == 0 {
                    None
                } else {
                    let bit = w.trailing_zeros() as usize;
                    w &= w - 1;
                    Some(wi * 64 + bit)
                }
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_clear() {
        let mut b = Bitmap::new(130);
        assert!(!b.get(0));
        b.set(0);
        b.set(64);
        b.set(129);
        assert!(b.get(0) && b.get(64) && b.get(129));
        assert_eq!(b.count_ones(), 3);
        b.clear(64);
        assert!(!b.get(64));
        assert_eq!(b.count_ones(), 2);
    }

    #[test]
    fn all_set_respects_tail() {
        let b = Bitmap::all_set(70);
        assert_eq!(b.count_ones(), 70);
        assert!(b.get(69));
    }

    #[test]
    fn iter_ones_ascending() {
        let mut b = Bitmap::new(200);
        for i in [3usize, 64, 65, 199] {
            b.set(i);
        }
        let ones: Vec<_> = b.iter_ones().collect();
        assert_eq!(ones, vec![3, 64, 65, 199]);
    }

    #[test]
    fn union_and_intersection() {
        let mut a = Bitmap::new(100);
        let mut b = Bitmap::new(100);
        a.set(1);
        a.set(50);
        b.set(50);
        b.set(99);
        let mut u = a.clone();
        u.union_with(&b);
        assert_eq!(u.iter_ones().collect::<Vec<_>>(), vec![1, 50, 99]);
        let mut i = a.clone();
        i.intersect_with(&b);
        assert_eq!(i.iter_ones().collect::<Vec<_>>(), vec![50]);
    }

    #[test]
    fn resize_zeroes_new_bits() {
        let mut b = Bitmap::all_set(10);
        b.resize(80);
        assert_eq!(b.count_ones(), 10);
        assert!(!b.get(79));
        b.set(79);
        assert!(b.get(79));
    }
}
