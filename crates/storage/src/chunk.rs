//! Block-chunk file format.
//!
//! One chunk file holds a horizontal slice of a table partition with *all
//! columns in the same file* (file-per-partition, §3), stored column-wise —
//! the PAX-with-huge-blocks organization the paper attributes to ORC/Parquet
//! and adopts for HDFS friendliness. A column is read by fetching only its
//! byte range, so per-column IO accounting works even though the file mixes
//! columns ("reads occur on the actual granularity of the IO").
//!
//! Layout:
//! ```text
//! magic u32 | n_rows u32 | n_cols u32
//! offsets: (n_cols + 1) × u64     -- absolute byte offsets of column bodies
//! column 0 encoded block | column 1 encoded block | ...
//! ```
//! Column bodies are self-describing [`vectorh_compress`] blocks.

use vectorh_common::{ColumnData, NodeId, Result, VhError};
use vectorh_compress::{decode_column, encode_column};
use vectorh_simhdfs::BlockStore;

/// Magic tag identifying VectorH-rs chunk files.
pub const CHUNK_MAGIC: u32 = 0x56_48_43_4B; // "VHCK"

/// In-memory metadata of one chunk file (kept in the partition manifest, so
/// reading a column needs exactly one ranged read — no header fetch).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChunkMeta {
    /// HDFS path of the chunk file.
    pub path: String,
    pub n_rows: usize,
    /// Byte offsets of each column body; `offsets[n_cols]` = file length.
    pub offsets: Vec<u64>,
}

impl ChunkMeta {
    pub fn n_cols(&self) -> usize {
        self.offsets.len().saturating_sub(1)
    }

    /// Encoded size of one column in bytes.
    pub fn col_bytes(&self, col: usize) -> u64 {
        self.offsets[col + 1] - self.offsets[col]
    }

    pub fn file_bytes(&self) -> u64 {
        *self.offsets.last().unwrap_or(&0)
    }
}

/// Serialize columns into a chunk file image. All columns must have equal
/// length. Returns the bytes and the offsets table.
pub fn encode_chunk(columns: &[ColumnData]) -> Result<(Vec<u8>, Vec<u64>)> {
    let n_rows = columns.first().map(|c| c.len()).unwrap_or(0);
    if columns.iter().any(|c| c.len() != n_rows) {
        return Err(VhError::Storage("ragged chunk columns".into()));
    }
    let bodies: Vec<Vec<u8>> = columns.iter().map(|c| encode_column(c).bytes).collect();
    let header_len = 12 + 8 * (columns.len() + 1);
    let mut offsets = Vec::with_capacity(columns.len() + 1);
    let mut pos = header_len as u64;
    for b in &bodies {
        offsets.push(pos);
        pos += b.len() as u64;
    }
    offsets.push(pos);
    let mut out = Vec::with_capacity(pos as usize);
    out.extend_from_slice(&CHUNK_MAGIC.to_le_bytes());
    out.extend_from_slice(&(n_rows as u32).to_le_bytes());
    out.extend_from_slice(&(columns.len() as u32).to_le_bytes());
    for o in &offsets {
        out.extend_from_slice(&o.to_le_bytes());
    }
    for b in &bodies {
        out.extend_from_slice(b);
    }
    Ok((out, offsets))
}

/// Write a chunk file to the block store from `writer` and return its
/// metadata. A chunk is sealed the moment it is written, so this is a
/// durability point: the image is fsynced before the chunk can enter a
/// manifest.
pub fn write_chunk(
    fs: &dyn BlockStore,
    path: &str,
    columns: &[ColumnData],
    writer: Option<NodeId>,
) -> Result<ChunkMeta> {
    let (bytes, offsets) = encode_chunk(columns)?;
    fs.append(path, &bytes, writer)?;
    fs.sync(path)?;
    Ok(ChunkMeta {
        path: path.to_string(),
        n_rows: columns.first().map(|c| c.len()).unwrap_or(0),
        offsets,
    })
}

/// Read one column of a chunk (ranged read + decode).
pub fn read_column(
    fs: &dyn BlockStore,
    meta: &ChunkMeta,
    col: usize,
    reader: Option<NodeId>,
) -> Result<ColumnData> {
    if col >= meta.n_cols() {
        return Err(VhError::Storage(format!(
            "column {col} out of range ({} cols)",
            meta.n_cols()
        )));
    }
    let bytes = fs.read(
        &meta.path,
        meta.offsets[col],
        meta.col_bytes(col) as usize,
        reader,
    )?;
    decode_column(&bytes)
}

/// Parse a chunk header from raw file bytes (recovery path: rebuilding a
/// manifest from HDFS contents).
pub fn parse_header(bytes: &[u8]) -> Result<(usize, Vec<u64>)> {
    if bytes.len() < 12 {
        return Err(VhError::Storage("chunk too short".into()));
    }
    let magic = u32::from_le_bytes(bytes[0..4].try_into().unwrap());
    if magic != CHUNK_MAGIC {
        return Err(VhError::Storage("bad chunk magic".into()));
    }
    let n_rows = u32::from_le_bytes(bytes[4..8].try_into().unwrap()) as usize;
    let n_cols = u32::from_le_bytes(bytes[8..12].try_into().unwrap()) as usize;
    let need = 12 + 8 * (n_cols + 1);
    if bytes.len() < need {
        return Err(VhError::Storage("chunk header truncated".into()));
    }
    let mut offsets = Vec::with_capacity(n_cols + 1);
    for i in 0..=n_cols {
        let at = 12 + 8 * i;
        offsets.push(u64::from_le_bytes(bytes[at..at + 8].try_into().unwrap()));
    }
    Ok((n_rows, offsets))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use vectorh_simhdfs::{DefaultPolicy, SimHdfs, SimHdfsConfig};

    fn fs() -> SimHdfs {
        SimHdfs::new(
            3,
            SimHdfsConfig {
                block_size: 256,
                default_replication: 2,
            },
            Arc::new(DefaultPolicy::new(1)),
        )
    }

    fn sample_cols() -> Vec<ColumnData> {
        vec![
            ColumnData::I64((0..500).collect()),
            ColumnData::I32((0..500).map(|i| i % 7).collect()),
            ColumnData::Str((0..500).map(|i| format!("s{}", i % 3)).collect()),
        ]
    }

    #[test]
    fn chunk_roundtrip_per_column() {
        let fs = fs();
        let cols = sample_cols();
        let meta = write_chunk(&fs, "/db/t/p0/chunk-0", &cols, Some(NodeId(0))).unwrap();
        assert_eq!(meta.n_rows, 500);
        assert_eq!(meta.n_cols(), 3);
        for (i, c) in cols.iter().enumerate() {
            let got = read_column(&fs, &meta, i, Some(NodeId(0))).unwrap();
            assert_eq!(&got, c);
        }
    }

    #[test]
    fn reading_one_column_touches_only_its_bytes() {
        let fs = fs();
        let cols = sample_cols();
        let meta = write_chunk(&fs, "/db/t/p0/chunk-0", &cols, Some(NodeId(0))).unwrap();
        let before = fs.stats().snapshot();
        read_column(&fs, &meta, 0, Some(NodeId(0))).unwrap();
        let delta = fs.stats().snapshot().since(&before);
        assert_eq!(delta.read_bytes(), meta.col_bytes(0));
        assert!(delta.read_bytes() < meta.file_bytes());
    }

    #[test]
    fn ragged_columns_rejected() {
        let cols = vec![ColumnData::I64(vec![1, 2]), ColumnData::I64(vec![1])];
        assert!(encode_chunk(&cols).is_err());
    }

    #[test]
    fn header_recovery() {
        let cols = sample_cols();
        let (bytes, offsets) = encode_chunk(&cols).unwrap();
        let (n_rows, parsed) = parse_header(&bytes).unwrap();
        assert_eq!(n_rows, 500);
        assert_eq!(parsed, offsets);
        assert!(parse_header(&bytes[..8]).is_err());
        let mut bad = bytes.clone();
        bad[0] ^= 0xFF;
        assert!(parse_header(&bad).is_err());
    }

    #[test]
    fn empty_chunk_allowed() {
        let (bytes, offsets) = encode_chunk(&[]).unwrap();
        let (n_rows, parsed) = parse_header(&bytes).unwrap();
        assert_eq!(n_rows, 0);
        assert_eq!(parsed, offsets);
    }

    #[test]
    fn out_of_range_column_errors() {
        let fs = fs();
        let meta = write_chunk(&fs, "/c", &sample_cols(), None).unwrap();
        assert!(read_column(&fs, &meta, 9, None).is_err());
    }
}
