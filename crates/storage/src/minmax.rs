//! MinMax indexes: per-chunk column summaries enabling data skipping.
//!
//! "MinMax indexes store simple metadata about the values in a given range
//! of records, and allow quick elimination of ranges of records during scan
//! operations (skipping), saving both IO and CPU decompression cost" (§2).
//! Unlike ORC/Parquet, VectorH keeps them *separate* from the data (§6) —
//! here they live in the partition manifest / WAL, never in chunk files.
//!
//! Maintenance rules (§6): deletes are ignored; inserts and modifies only
//! *widen* the extremes (no old-value scan needed); update propagation
//! rebuilds from scratch.

use vectorh_common::{ColumnData, DataType, Value};

/// Min/max summary of one column over one tuple range (chunk).
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnStats {
    pub min: Value,
    pub max: Value,
}

impl ColumnStats {
    /// Compute from data using the logical `dtype` for value interpretation.
    pub fn from_column(col: &ColumnData, dtype: DataType) -> Option<ColumnStats> {
        if col.is_empty() {
            return None;
        }
        let mut min = col.value_at(0, dtype);
        let mut max = min.clone();
        for i in 1..col.len() {
            let v = col.value_at(i, dtype);
            if v < min {
                min = v.clone();
            }
            if v > max {
                max = v;
            }
        }
        Some(ColumnStats { min, max })
    }

    /// Widen to cover `v` (insert/modify maintenance).
    pub fn widen(&mut self, v: &Value) {
        if *v < self.min {
            self.min = v.clone();
        }
        if *v > self.max {
            self.max = v.clone();
        }
    }

    /// Could any value in this range satisfy `value OP probe`?
    pub fn may_match(&self, op: PruneOp, probe: &Value) -> bool {
        match op {
            PruneOp::Lt => self.min < *probe,
            PruneOp::Le => self.min <= *probe,
            PruneOp::Gt => self.max > *probe,
            PruneOp::Ge => self.max >= *probe,
            PruneOp::Eq => self.min <= *probe && *probe <= self.max,
            PruneOp::Between(ref hi) => self.min <= *hi && *probe <= self.max,
        }
    }
}

/// Comparison shapes the pruner understands.
#[derive(Debug, Clone, PartialEq)]
pub enum PruneOp {
    Lt,
    Le,
    Gt,
    Ge,
    Eq,
    /// `probe <= value <= hi` — probe is the lower bound, the variant holds
    /// the upper bound.
    Between(Value),
}

/// A conjunction of prunable predicates: `(column, op, probe)`.
pub type Pruning = Vec<(usize, PruneOp, Value)>;

/// MinMax index for one partition: `chunks[chunk][column]`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MinMaxIndex {
    chunks: Vec<Vec<Option<ColumnStats>>>,
}

impl MinMaxIndex {
    pub fn new() -> MinMaxIndex {
        MinMaxIndex::default()
    }

    pub fn n_chunks(&self) -> usize {
        self.chunks.len()
    }

    /// Record stats for a freshly written chunk (appended in chunk order).
    pub fn push_chunk(&mut self, stats: Vec<Option<ColumnStats>>) {
        self.chunks.push(stats);
    }

    /// Replace a chunk's stats after a rewrite.
    pub fn replace_chunk(&mut self, chunk: usize, stats: Vec<Option<ColumnStats>>) {
        self.chunks[chunk] = stats;
    }

    /// Drop a chunk's stats (chunk file deleted).
    pub fn remove_chunk(&mut self, chunk: usize) {
        self.chunks.remove(chunk);
    }

    pub fn stats(&self, chunk: usize, col: usize) -> Option<&ColumnStats> {
        self.chunks
            .get(chunk)
            .and_then(|c| c.get(col))
            .and_then(|s| s.as_ref())
    }

    /// Widen a chunk's column to cover `v` (insert/modify into that range).
    pub fn widen(&mut self, chunk: usize, col: usize, v: &Value) {
        if let Some(Some(s)) = self.chunks.get_mut(chunk).and_then(|c| c.get_mut(col)) {
            s.widen(v);
        }
    }

    /// Which chunks can a scan with these predicates skip entirely?
    /// Returns `keep[chunk]`. Chunks with missing stats are always kept.
    pub fn prune(&self, preds: &Pruning) -> Vec<bool> {
        self.chunks
            .iter()
            .map(|cols| {
                preds.iter().all(
                    |(col, op, probe)| match cols.get(*col).and_then(|s| s.as_ref()) {
                        Some(stats) => stats.may_match(op.clone(), probe),
                        None => true,
                    },
                )
            })
            .collect()
    }

    /// Clear everything (update propagation rebuild).
    pub fn clear(&mut self) {
        self.chunks.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(min: i64, max: i64) -> ColumnStats {
        ColumnStats {
            min: Value::I64(min),
            max: Value::I64(max),
        }
    }

    #[test]
    fn from_column_finds_extremes() {
        let col = ColumnData::I64(vec![5, -2, 9, 3]);
        let s = ColumnStats::from_column(&col, DataType::I64).unwrap();
        assert_eq!(s.min, Value::I64(-2));
        assert_eq!(s.max, Value::I64(9));
        assert!(ColumnStats::from_column(&ColumnData::I64(vec![]), DataType::I64).is_none());
    }

    #[test]
    fn from_column_respects_logical_type() {
        let col = ColumnData::I32(vec![9000, 9100]);
        let s = ColumnStats::from_column(&col, DataType::Date).unwrap();
        assert_eq!(s.min, Value::Date(9000));
    }

    #[test]
    fn widen_only_grows() {
        let mut s = stats(10, 20);
        s.widen(&Value::I64(15));
        assert_eq!(
            (s.min.clone(), s.max.clone()),
            (Value::I64(10), Value::I64(20))
        );
        s.widen(&Value::I64(5));
        s.widen(&Value::I64(30));
        assert_eq!((s.min, s.max), (Value::I64(5), Value::I64(30)));
    }

    #[test]
    fn may_match_comparisons() {
        let s = stats(10, 20);
        assert!(s.may_match(PruneOp::Lt, &Value::I64(11)));
        assert!(!s.may_match(PruneOp::Lt, &Value::I64(10)));
        assert!(s.may_match(PruneOp::Le, &Value::I64(10)));
        assert!(s.may_match(PruneOp::Gt, &Value::I64(19)));
        assert!(!s.may_match(PruneOp::Gt, &Value::I64(20)));
        assert!(s.may_match(PruneOp::Ge, &Value::I64(20)));
        assert!(s.may_match(PruneOp::Eq, &Value::I64(15)));
        assert!(!s.may_match(PruneOp::Eq, &Value::I64(21)));
        // BETWEEN 18 AND 25 overlaps [10,20]
        assert!(s.may_match(PruneOp::Between(Value::I64(25)), &Value::I64(18)));
        // BETWEEN 21 AND 25 does not
        assert!(!s.may_match(PruneOp::Between(Value::I64(25)), &Value::I64(21)));
    }

    #[test]
    fn prune_selects_chunks() {
        let mut idx = MinMaxIndex::new();
        idx.push_chunk(vec![Some(stats(0, 9))]);
        idx.push_chunk(vec![Some(stats(10, 19))]);
        idx.push_chunk(vec![Some(stats(20, 29))]);
        // value < 12 can only live in chunks 0 and 1
        let keep = idx.prune(&vec![(0, PruneOp::Lt, Value::I64(12))]);
        assert_eq!(keep, vec![true, true, false]);
        // conjunction: < 12 AND >= 10 → only chunk 1
        let keep = idx.prune(&vec![
            (0, PruneOp::Lt, Value::I64(12)),
            (0, PruneOp::Ge, Value::I64(10)),
        ]);
        assert_eq!(keep, vec![false, true, false]);
        // empty predicate keeps everything
        assert_eq!(idx.prune(&vec![]), vec![true, true, true]);
    }

    #[test]
    fn prune_keeps_chunks_without_stats() {
        let mut idx = MinMaxIndex::new();
        idx.push_chunk(vec![None]);
        idx.push_chunk(vec![Some(stats(0, 5))]);
        let keep = idx.prune(&vec![(0, PruneOp::Gt, Value::I64(100))]);
        assert_eq!(keep, vec![true, false]);
    }

    #[test]
    fn widen_and_replace() {
        let mut idx = MinMaxIndex::new();
        idx.push_chunk(vec![Some(stats(5, 6))]);
        idx.widen(0, 0, &Value::I64(100));
        assert_eq!(idx.stats(0, 0).unwrap().max, Value::I64(100));
        idx.replace_chunk(0, vec![Some(stats(1, 2))]);
        assert_eq!(idx.stats(0, 0).unwrap().max, Value::I64(2));
        idx.remove_chunk(0);
        assert_eq!(idx.n_chunks(), 0);
    }

    #[test]
    fn date_pruning_matches_paper_usage() {
        // "clustered indexes cause selections on date to enable data
        // skipping" — a sorted date column gives disjoint chunk ranges.
        let mut idx = MinMaxIndex::new();
        for q in 0..8 {
            idx.push_chunk(vec![Some(ColumnStats {
                min: Value::Date(q * 90),
                max: Value::Date(q * 90 + 89),
            })]);
        }
        let keep = idx.prune(&vec![(0, PruneOp::Lt, Value::Date(180))]);
        assert_eq!(keep.iter().filter(|k| **k).count(), 2);
    }
}
