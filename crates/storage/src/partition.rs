//! Partition storage: a manifest of chunk files plus MinMax stats.
//!
//! One [`PartitionStore`] owns the on-HDFS representation of one table
//! partition: an ordered list of chunk files under the partition directory
//! (the unit the instrumented placement policy pins to nodes), the trailing
//! *partial chunk* merge-on-append mechanism, and the partition's MinMax
//! index. The responsible node (§3/§4) is the `home` from which all appends
//! are issued — with the affinity placement policy registered, that makes
//! every replica land exactly where the partition affinity map says.

use vectorh_common::{ColumnData, NodeId, Result, Schema, VhError};
use vectorh_simhdfs::StoreRef;

use crate::chunk::{self, ChunkMeta};
use crate::minmax::{ColumnStats, MinMaxIndex, Pruning};

/// Storage tuning knobs.
#[derive(Debug, Clone)]
pub struct StorageConfig {
    /// Rows per full chunk file (the scaled stand-in for "1024 blocks of
    /// 512 KB"; real VectorH chunks hold far more rows).
    pub rows_per_chunk: usize,
}

impl Default for StorageConfig {
    fn default() -> Self {
        StorageConfig {
            rows_per_chunk: 4096,
        }
    }
}

/// On-HDFS storage of one table partition.
///
/// Cloning is cheap-ish (manifest + stats copy) and yields a consistent
/// snapshot of the manifest — scans run against such snapshots while the
/// engine keeps mutating the original.
#[derive(Clone)]
pub struct PartitionStore {
    fs: StoreRef,
    dir: String,
    schema: Schema,
    config: StorageConfig,
    chunks: Vec<ChunkMeta>,
    minmax: MinMaxIndex,
    next_chunk_id: u64,
    home: Option<NodeId>,
    /// Chunk files replaced by the last committed propagation. They are no
    /// longer in the manifest but may still be held by in-flight scan
    /// snapshots (scans clone the manifest, which references files by
    /// path), so deletion is deferred one full propagation cycle:
    /// [`sweep_deferred`](Self::sweep_deferred) reclaims them at the start
    /// of the *next* committed propagation.
    deferred: Vec<String>,
}

impl PartitionStore {
    /// Create an empty partition rooted at `dir` (must end with `/`).
    pub fn new(
        fs: StoreRef,
        dir: impl Into<String>,
        schema: Schema,
        config: StorageConfig,
    ) -> Self {
        let dir = dir.into();
        debug_assert!(dir.ends_with('/'), "partition dir must end with '/'");
        PartitionStore {
            fs,
            dir,
            schema,
            config,
            chunks: Vec::new(),
            minmax: MinMaxIndex::new(),
            next_chunk_id: 0,
            home: None,
            deferred: Vec::new(),
        }
    }

    pub fn dir(&self) -> &str {
        &self.dir
    }

    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The responsible node: appends are issued from here so the first
    /// replica is local (§3).
    pub fn set_home(&mut self, node: Option<NodeId>) {
        self.home = node;
    }

    pub fn home(&self) -> Option<NodeId> {
        self.home
    }

    pub fn n_chunks(&self) -> usize {
        self.chunks.len()
    }

    pub fn chunk_meta(&self, idx: usize) -> &ChunkMeta {
        &self.chunks[idx]
    }

    pub fn minmax(&self) -> &MinMaxIndex {
        &self.minmax
    }

    pub fn minmax_mut(&mut self) -> &mut MinMaxIndex {
        &mut self.minmax
    }

    /// Total stable rows stored.
    pub fn row_count(&self) -> u64 {
        self.chunks.iter().map(|c| c.n_rows as u64).sum()
    }

    /// First stable SID of a chunk.
    pub fn chunk_sid_base(&self, idx: usize) -> u64 {
        self.chunks[..idx].iter().map(|c| c.n_rows as u64).sum()
    }

    /// Encoded bytes across all chunk files.
    pub fn total_bytes(&self) -> u64 {
        self.chunks.iter().map(|c| c.file_bytes()).sum()
    }

    fn chunk_stats(&self, columns: &[ColumnData]) -> Vec<Option<ColumnStats>> {
        columns
            .iter()
            .enumerate()
            .map(|(i, c)| ColumnStats::from_column(c, self.schema.dtype(i)))
            .collect()
    }

    fn fresh_path(&mut self) -> String {
        let p = format!("{}chunk-{:08}", self.dir, self.next_chunk_id);
        self.next_chunk_id += 1;
        p
    }

    /// Append rows (given as full-width columns).
    ///
    /// If the trailing chunk is partial, its rows are read back, the file is
    /// deleted, and the combined data is rewritten — the "partial chunk
    /// file" mechanism of §3. Full chunks are immutable thereafter.
    pub fn append_rows(&mut self, columns: &[ColumnData]) -> Result<()> {
        if columns.len() != self.schema.len() {
            return Err(VhError::Storage(format!(
                "append with {} columns into {}-column partition",
                columns.len(),
                self.schema.len()
            )));
        }
        let n_new = columns.first().map(|c| c.len()).unwrap_or(0);
        if n_new == 0 {
            return Ok(());
        }
        // Absorb the trailing partial chunk, if any.
        let mut data: Vec<ColumnData> = Vec::with_capacity(columns.len());
        let absorb = self
            .chunks
            .last()
            .is_some_and(|last| last.n_rows < self.config.rows_per_chunk);
        if absorb {
            let last = self.chunks.pop().unwrap();
            self.minmax.remove_chunk(self.chunks.len());
            for (col, new_col) in columns.iter().enumerate().take(self.schema.len()) {
                let mut existing = chunk::read_column(&self.fs, &last, col, self.home)?;
                existing.append(new_col)?;
                data.push(existing);
            }
            self.fs.delete(&last.path)?;
        } else {
            data = columns.to_vec();
        }
        // Emit full chunks plus a trailing partial one.
        let total = data[0].len();
        let mut from = 0usize;
        while from < total {
            let to = (from + self.config.rows_per_chunk).min(total);
            let slice: Vec<ColumnData> = data.iter().map(|c| c.slice(from, to)).collect();
            let path = self.fresh_path();
            let meta = chunk::write_chunk(&self.fs, &path, &slice, self.home)?;
            let stats = self.chunk_stats(&slice);
            self.chunks.push(meta);
            self.minmax.push_chunk(stats);
            from = to;
        }
        Ok(())
    }

    /// Read one column of one chunk.
    pub fn read_column(
        &self,
        chunk: usize,
        col: usize,
        reader: Option<NodeId>,
    ) -> Result<ColumnData> {
        chunk::read_column(&self.fs, &self.chunks[chunk], col, reader)
    }

    /// Read several columns of one chunk.
    pub fn read_columns(
        &self,
        chunk: usize,
        cols: &[usize],
        reader: Option<NodeId>,
    ) -> Result<Vec<ColumnData>> {
        cols.iter()
            .map(|&c| self.read_column(chunk, c, reader))
            .collect()
    }

    /// Which chunks survive MinMax pruning for these predicates?
    pub fn prune(&self, preds: &Pruning) -> Vec<bool> {
        self.minmax.prune(preds)
    }

    /// Delete a chunk file outright (space reclamation: "free space by
    /// deleting a block chunk file when all of the blocks in it are unused").
    pub fn delete_chunk(&mut self, idx: usize) -> Result<()> {
        let meta = self.chunks.remove(idx);
        self.minmax.remove_chunk(idx);
        self.fs.delete(&meta.path)
    }

    /// Rewrite a chunk with new contents (update propagation's
    /// "re-write it in a new file with the PDT changes applied and delete
    /// the old one").
    pub fn rewrite_chunk(&mut self, idx: usize, columns: &[ColumnData]) -> Result<()> {
        if columns.len() != self.schema.len() {
            return Err(VhError::Storage("rewrite with wrong column count".into()));
        }
        let path = self.fresh_path();
        let meta = chunk::write_chunk(&self.fs, &path, columns, self.home)?;
        let stats = self.chunk_stats(columns);
        let old = std::mem::replace(&mut self.chunks[idx], meta);
        self.minmax.replace_chunk(idx, stats);
        self.fs.delete(&old.path)
    }

    /// Rows per full chunk file.
    pub fn rows_per_chunk(&self) -> usize {
        self.config.rows_per_chunk
    }

    /// Reserve a fresh chunk path without writing anything — chunk-level
    /// propagation logs the path (`ChunkRewriteBegin`) *before* the data
    /// write, so the replacement image's location is known to recovery even
    /// if the write itself is torn.
    pub fn alloc_chunk_path(&mut self) -> String {
        self.fresh_path()
    }

    /// Write a replacement image for chunk `idx` at the pre-allocated
    /// `path` and swap it into the manifest (data + MinMax). Unlike
    /// [`rewrite_chunk`](Self::rewrite_chunk) the old file is **not**
    /// deleted — its path is returned so the caller can defer reclamation
    /// until no scan snapshot can still reference it.
    pub fn install_chunk(
        &mut self,
        idx: usize,
        path: &str,
        columns: &[ColumnData],
    ) -> Result<String> {
        if columns.len() != self.schema.len() {
            return Err(VhError::Storage("install with wrong column count".into()));
        }
        let meta = chunk::write_chunk(&self.fs, path, columns, self.home)?;
        let stats = self.chunk_stats(columns);
        let old = std::mem::replace(&mut self.chunks[idx], meta);
        self.minmax.replace_chunk(idx, stats);
        Ok(old.path)
    }

    /// Write a brand-new trailing chunk at the pre-allocated `path` and
    /// push it onto the manifest (data + MinMax) — the tail-append side of
    /// chunk-level propagation, which never touches existing chunk files.
    pub fn push_chunk_at(&mut self, path: &str, columns: &[ColumnData]) -> Result<()> {
        if columns.len() != self.schema.len() {
            return Err(VhError::Storage("push with wrong column count".into()));
        }
        let meta = chunk::write_chunk(&self.fs, path, columns, self.home)?;
        let stats = self.chunk_stats(columns);
        self.chunks.push(meta);
        self.minmax.push_chunk(stats);
        Ok(())
    }

    /// Queue files replaced by a just-committed propagation for deletion at
    /// the start of the next one.
    pub fn defer_delete(&mut self, paths: Vec<String>) {
        self.deferred.extend(paths);
    }

    /// Paths currently awaiting deferred deletion.
    pub fn deferred(&self) -> &[String] {
        &self.deferred
    }

    /// Delete the previous propagation generation's replaced files. By the
    /// time this runs (inside the next committed propagation) any scan
    /// snapshot taken before that generation's commit has long finished.
    pub fn sweep_deferred(&mut self) -> Result<Vec<String>> {
        let paths = std::mem::take(&mut self.deferred);
        for p in &paths {
            if self.fs.exists(p) {
                self.fs.delete(p)?;
            }
        }
        Ok(paths)
    }

    /// Delete chunk files under the partition directory that are neither in
    /// the manifest nor awaiting deferred deletion — the leftovers of a
    /// propagation that crashed after allocating (and possibly writing) a
    /// replacement image but before committing it. Only `chunk-`-named
    /// files are touched: WALs and other artifacts may share the directory.
    pub fn gc_orphans(&mut self) -> Result<Vec<String>> {
        let prefix = format!("{}chunk-", self.dir);
        let mut removed = Vec::new();
        for f in self.fs.list(&self.dir) {
            if !f.path.starts_with(&prefix) {
                continue;
            }
            if self.chunks.iter().any(|c| c.path == f.path) || self.deferred.contains(&f.path) {
                continue;
            }
            self.fs.delete(&f.path)?;
            removed.push(f.path);
        }
        Ok(removed)
    }

    /// Drop all chunk files (table truncation / partition drop).
    pub fn drop_all(&mut self) -> Result<()> {
        for meta in self.chunks.drain(..) {
            self.fs.delete(&meta.path)?;
        }
        self.minmax.clear();
        Ok(())
    }

    /// Rebuild the manifest by listing and parsing chunk files from HDFS —
    /// the recovery path after a node restart. MinMax stats are recomputed
    /// from the data (the real system replays them from the WAL; the txn
    /// crate does that too, this is the fallback).
    pub fn recover(
        fs: StoreRef,
        dir: impl Into<String>,
        schema: Schema,
        config: StorageConfig,
        reader: Option<NodeId>,
    ) -> Result<PartitionStore> {
        let dir = dir.into();
        let mut store = PartitionStore::new(fs.clone(), dir.clone(), schema, config);
        let mut files = fs.list(&dir);
        files.sort_by(|a, b| a.path.cmp(&b.path));
        for f in files {
            let header = fs.read(&f.path, 0, 4096.min(f.len as usize), reader)?;
            let (n_rows, offsets) = chunk::parse_header(&header)?;
            let meta = ChunkMeta {
                path: f.path.clone(),
                n_rows,
                offsets,
            };
            // Recompute stats from data.
            let cols: Vec<ColumnData> = (0..store.schema.len())
                .map(|c| chunk::read_column(&fs, &meta, c, reader))
                .collect::<Result<_>>()?;
            let stats = store.chunk_stats(&cols);
            store.chunks.push(meta);
            store.minmax.push_chunk(stats);
            // Continue numbering after the highest existing chunk id.
            if let Some(id) = f
                .path
                .rsplit("chunk-")
                .next()
                .and_then(|s| s.parse::<u64>().ok())
            {
                store.next_chunk_id = store.next_chunk_id.max(id + 1);
            }
        }
        Ok(store)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::minmax::PruneOp;
    use std::sync::Arc;
    use vectorh_common::{DataType, Value};
    use vectorh_simhdfs::{AffinityPolicy, DefaultPolicy, SimHdfs, SimHdfsConfig};

    fn fs() -> StoreRef {
        Arc::new(SimHdfs::new(
            4,
            SimHdfsConfig {
                block_size: 512,
                default_replication: 2,
            },
            Arc::new(DefaultPolicy::new(3)),
        ))
    }

    fn schema() -> Schema {
        Schema::of(&[("k", DataType::I64), ("v", DataType::I32)])
    }

    fn cols(from: i64, n: usize) -> Vec<ColumnData> {
        vec![
            ColumnData::I64((from..from + n as i64).collect()),
            ColumnData::I32((0..n).map(|i| i as i32 % 10).collect()),
        ]
    }

    fn store(rows_per_chunk: usize) -> PartitionStore {
        PartitionStore::new(
            fs(),
            "/db/t/p0/",
            schema(),
            StorageConfig { rows_per_chunk },
        )
    }

    #[test]
    fn append_splits_into_chunks() {
        let mut s = store(100);
        s.append_rows(&cols(0, 250)).unwrap();
        assert_eq!(s.n_chunks(), 3); // 100 + 100 + 50
        assert_eq!(s.row_count(), 250);
        assert_eq!(s.chunk_meta(2).n_rows, 50);
        assert_eq!(s.chunk_sid_base(2), 200);
    }

    #[test]
    fn partial_chunk_merged_on_next_append() {
        let mut s = store(100);
        s.append_rows(&cols(0, 150)).unwrap(); // chunks: 100 + 50(partial)
        let partial_path = s.chunk_meta(1).path.clone();
        s.append_rows(&cols(150, 30)).unwrap(); // partial absorbed: 100 + 80
        assert_eq!(s.n_chunks(), 2);
        assert_eq!(s.chunk_meta(1).n_rows, 80);
        assert_ne!(
            s.chunk_meta(1).path,
            partial_path,
            "partial chunk file replaced"
        );
        // Verify data integrity across the merge.
        let keys = s.read_column(1, 0, None).unwrap();
        assert_eq!(keys.as_i64().unwrap()[0], 100);
        assert_eq!(keys.as_i64().unwrap()[79], 179);
    }

    #[test]
    fn minmax_tracks_chunks() {
        let mut s = store(100);
        s.append_rows(&cols(0, 300)).unwrap();
        let keep = s.prune(&vec![(0, PruneOp::Lt, Value::I64(150))]);
        assert_eq!(keep, vec![true, true, false]);
        let keep = s.prune(&vec![(0, PruneOp::Ge, Value::I64(250))]);
        assert_eq!(keep, vec![false, false, true]);
    }

    #[test]
    fn rewrite_chunk_replaces_data_and_stats() {
        let mut s = store(100);
        s.append_rows(&cols(0, 100)).unwrap();
        let new = vec![
            ColumnData::I64(vec![1000, 2000]),
            ColumnData::I32(vec![1, 2]),
        ];
        s.rewrite_chunk(0, &new).unwrap();
        assert_eq!(s.row_count(), 2);
        assert_eq!(s.read_column(0, 0, None).unwrap(), new[0]);
        assert_eq!(s.minmax().stats(0, 0).unwrap().min, Value::I64(1000));
        // Old chunk file is gone: only one chunk file remains in the dir.
        assert_eq!(s.n_chunks(), 1);
    }

    #[test]
    fn delete_chunk_reclaims_space() {
        let mut s = store(50);
        s.append_rows(&cols(0, 150)).unwrap();
        let bytes_before = s.total_bytes();
        s.delete_chunk(1).unwrap();
        assert_eq!(s.n_chunks(), 2);
        assert!(s.total_bytes() < bytes_before);
        assert_eq!(s.row_count(), 100);
    }

    #[test]
    fn home_node_gets_local_replicas() {
        let policy = Arc::new(AffinityPolicy::new(5));
        let fs: StoreRef = Arc::new(SimHdfs::new(
            4,
            SimHdfsConfig {
                block_size: 512,
                default_replication: 2,
            },
            policy.clone(),
        ));
        policy.set_affinity(
            "/db/t/p0/",
            vec![vectorh_common::NodeId(2), vectorh_common::NodeId(3)],
        );
        let mut s = PartitionStore::new(
            fs.clone(),
            "/db/t/p0/",
            schema(),
            StorageConfig { rows_per_chunk: 64 },
        );
        s.set_home(Some(vectorh_common::NodeId(2)));
        s.append_rows(&cols(0, 200)).unwrap();
        for i in 0..s.n_chunks() {
            assert!(fs
                .fully_local(&s.chunk_meta(i).path, vectorh_common::NodeId(2))
                .unwrap());
        }
        // Scanning from home is 100% short-circuit.
        let before = fs.stats().snapshot();
        for i in 0..s.n_chunks() {
            s.read_column(i, 0, Some(vectorh_common::NodeId(2)))
                .unwrap();
        }
        let delta = fs.stats().snapshot().since(&before);
        assert_eq!(delta.remote_read_bytes, 0);
        assert!(delta.local_read_bytes > 0);
    }

    #[test]
    fn recovery_rebuilds_manifest() {
        let fsys = fs();
        let mut s = PartitionStore::new(
            fsys.clone(),
            "/db/t/p0/",
            schema(),
            StorageConfig { rows_per_chunk: 80 },
        );
        s.append_rows(&cols(0, 200)).unwrap();
        let rows = s.row_count();
        let chunks = s.n_chunks();
        drop(s);
        let r = PartitionStore::recover(
            fsys,
            "/db/t/p0/",
            schema(),
            StorageConfig { rows_per_chunk: 80 },
            None,
        )
        .unwrap();
        assert_eq!(r.row_count(), rows);
        assert_eq!(r.n_chunks(), chunks);
        assert_eq!(r.read_column(1, 0, None).unwrap().as_i64().unwrap()[0], 80);
        // MinMax recomputed.
        assert_eq!(r.minmax().stats(0, 0).unwrap().min, Value::I64(0));
    }

    #[test]
    fn schema_mismatch_rejected() {
        let mut s = store(10);
        assert!(s.append_rows(&[ColumnData::I64(vec![1])]).is_err());
        s.append_rows(&cols(0, 10)).unwrap();
        assert!(s.rewrite_chunk(0, &[ColumnData::I64(vec![1])]).is_err());
    }

    #[test]
    fn install_chunk_keeps_old_file_until_swept() {
        let mut s = store(100);
        s.append_rows(&cols(0, 100)).unwrap();
        let old_path = s.chunk_meta(0).path.clone();
        let path = s.alloc_chunk_path();
        let new = vec![
            ColumnData::I64(vec![1000, 2000]),
            ColumnData::I32(vec![1, 2]),
        ];
        let returned = s.install_chunk(0, &path, &new).unwrap();
        assert_eq!(returned, old_path);
        assert_eq!(s.read_column(0, 0, None).unwrap(), new[0]);
        assert_eq!(s.minmax().stats(0, 0).unwrap().min, Value::I64(1000));
        // The old file survives until deferred deletion sweeps it.
        assert!(s.fs.exists(&old_path));
        s.defer_delete(vec![returned]);
        assert_eq!(s.deferred().len(), 1);
        let swept = s.sweep_deferred().unwrap();
        assert_eq!(swept, vec![old_path.clone()]);
        assert!(!s.fs.exists(&old_path));
        assert!(s.deferred().is_empty());
        assert!(
            s.sweep_deferred().unwrap().is_empty(),
            "sweep is idempotent"
        );
    }

    #[test]
    fn push_chunk_at_appends_without_touching_existing_files() {
        let mut s = store(100);
        s.append_rows(&cols(0, 100)).unwrap();
        let first = s.chunk_meta(0).path.clone();
        let path = s.alloc_chunk_path();
        s.push_chunk_at(&path, &cols(100, 50)).unwrap();
        assert_eq!(s.n_chunks(), 2);
        assert_eq!(s.row_count(), 150);
        assert_eq!(s.chunk_meta(0).path, first);
        assert_eq!(s.read_column(1, 0, None).unwrap().as_i64().unwrap()[0], 100);
        assert_eq!(s.minmax().stats(1, 0).unwrap().min, Value::I64(100));
    }

    #[test]
    fn gc_orphans_removes_uncommitted_images_only() {
        let mut s = store(100);
        s.append_rows(&cols(0, 100)).unwrap();
        // A crashed propagation left a half-written replacement image and
        // an allocated-but-never-written path; a WAL shares the directory.
        let orphan = s.alloc_chunk_path();
        chunk::write_chunk(&s.fs.clone(), &orphan, &cols(0, 10), None).unwrap();
        s.fs.append("/db/t/p0/p0.wal", b"not a chunk", None)
            .unwrap();
        // A deferred file from the previous committed generation must not
        // be gc'd out from under in-flight scans.
        let kept = s.alloc_chunk_path();
        chunk::write_chunk(&s.fs.clone(), &kept, &cols(0, 5), None).unwrap();
        s.defer_delete(vec![kept.clone()]);
        let removed = s.gc_orphans().unwrap();
        assert_eq!(removed, vec![orphan.clone()]);
        assert!(!s.fs.exists(&orphan));
        assert!(s.fs.exists(&kept));
        assert!(s.fs.exists("/db/t/p0/p0.wal"));
        assert!(s.fs.exists(&s.chunk_meta(0).path.clone()));
        assert!(s.gc_orphans().unwrap().is_empty(), "gc is idempotent");
    }

    #[test]
    fn drop_all_empties_partition() {
        let mut s = store(10);
        s.append_rows(&cols(0, 35)).unwrap();
        s.drop_all().unwrap();
        assert_eq!(s.n_chunks(), 0);
        assert_eq!(s.row_count(), 0);
        assert_eq!(s.total_bytes(), 0);
    }
}
