//! Columnar storage for VectorH-rs: blocks, chunk files and MinMax indexes.
//!
//! Implements the §3 storage design:
//!
//! * **File-per-partition layout** — all columns of a table partition live in
//!   the same HDFS files (PAX-style), so a 100-column, 10-partition table
//!   needs 30 files at R=3 instead of 3000.
//! * **Block-chunk files** — partition data is split horizontally into
//!   chunk files so space can be reclaimed on the append-only HDFS by
//!   deleting whole chunk files (writing in the middle of a file is
//!   impossible). The trailing, partially-filled chunk goes to a *partial
//!   chunk file* that the next append merges and frees.
//! * **MinMax indexes** ([`minmax`]) — small per-chunk column summaries kept
//!   *outside* the data files (the paper stores them in the WAL), enabling
//!   scans to skip chunks without touching them. Maintenance follows §6:
//!   deletes are ignored, inserts/modifies widen, propagation rebuilds.
//!
//! A [`partition::PartitionStore`] manages one table partition; the engine
//! crate composes partitions into tables.

pub mod chunk;
pub mod minmax;
pub mod partition;

pub use chunk::{ChunkMeta, CHUNK_MAGIC};
pub use minmax::{ColumnStats, MinMaxIndex, Pruning};
pub use partition::{PartitionStore, StorageConfig};
