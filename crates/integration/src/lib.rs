//! Test-only crate: its `tests/` target pulls the repository-level
//! integration suites (under `/tests` at the workspace root) into the
//! workspace so plain `cargo test` runs them. The suites live at the root
//! because they document engine-level behaviour, not any single crate.
