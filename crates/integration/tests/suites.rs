//! Binds the workspace-root integration suites into a cargo test target.
//!
//! The suite sources stay at `<workspace>/tests/` — they are engine-level
//! documentation as much as tests — and are included here by path so
//! `cargo test` from the workspace root compiles and runs all of them.

#[path = "../../../tests/elasticity.rs"]
mod elasticity;

#[path = "../../../tests/end_to_end_sql.rs"]
mod end_to_end_sql;

#[path = "../../../tests/failover_locality.rs"]
mod failover_locality;

#[path = "../../../tests/filestore.rs"]
mod filestore;

#[path = "../../../tests/health_plane.rs"]
mod health_plane;

#[path = "../../../tests/propagation.rs"]
mod propagation;

#[path = "../../../tests/recovery.rs"]
mod recovery;

#[path = "../../../tests/server_frontdoor.rs"]
mod server_frontdoor;

#[path = "../../../tests/tpch_consistency.rs"]
mod tpch_consistency;

#[path = "../../../tests/transactions.rs"]
mod transactions;

#[path = "../../../tests/transport_cluster.rs"]
mod transport_cluster;
