//! The self-driving health plane: background scheduling, master election
//! with epoch fencing, and bounded ship-log retention (§6).
//!
//! Nothing here calls `health_tick` by hand. The engine's
//! [`HealthScheduler`] advances a virtual clock from inside ordinary
//! traffic (`query_logical`, trickle DML), so failure detection, session
//! master election and partition takeover are side effects of running
//! queries — the paper's "any other worker can take over the session
//! master role" without an operator in the loop. Elections bump a
//! monotonically increasing master epoch; a deposed master's commits are
//! fenced with [`VhError::StaleMaster`] at the 2PC commit point, and its
//! half-finished transactions resolve to presumed abort. Receivers that
//! fall behind the bounded ship log's truncation horizon converge via
//! full-image bootstrap instead of replay.

use std::sync::Arc;

use vectorh::{ClusterConfig, TableBuilder, VectorH};
use vectorh_common::fault::{FaultAction, FaultHook, FaultSite, SharedFaultHook};
use vectorh_common::{DataType, NodeId, Value, VhError};
use vectorh_txn::twophase::{CrashPoint, ShipRetention};
use vectorh_txn::LogRecord;

fn engine_with(nodes: usize, f: impl FnOnce(&mut ClusterConfig)) -> VectorH {
    let mut cfg = ClusterConfig {
        nodes,
        rows_per_chunk: 256,
        hdfs_block_size: 16 * 1024,
        replication: 3,
        ..Default::default()
    };
    f(&mut cfg);
    VectorH::start(cfg).unwrap()
}

fn engine(nodes: usize) -> VectorH {
    engine_with(nodes, |_| {})
}

/// Drops every heartbeat whose detail starts with `{node}@` — a one-way
/// network partition that isolates one node's beats without stopping its
/// process. This is how a *false positive* is manufactured: the monitor
/// declares the node dead while it is actually still running.
#[derive(Debug)]
struct DropBeatsOf(NodeId);

impl FaultHook for DropBeatsOf {
    fn decide(&self, site: FaultSite, detail: &str, _attempt: u32) -> FaultAction {
        if site == FaultSite::Heartbeat && detail.starts_with(&format!("{}@", self.0)) {
            FaultAction::Drop
        } else {
            FaultAction::None
        }
    }
}

/// Delays every heartbeat by one tick — steady transport latency, the kind
/// a chaos `Delay` fault (or a slow TCP link) injects on every beat.
#[derive(Debug)]
struct DelayAllBeats;

impl FaultHook for DelayAllBeats {
    fn decide(&self, site: FaultSite, _detail: &str, _attempt: u32) -> FaultAction {
        if site == FaultSite::Heartbeat {
            FaultAction::Delay
        } else {
            FaultAction::None
        }
    }
}

/// The grace drill. Two claims:
///
/// 1. Delay jitter alone must never dead-latch anyone, at any grace: a
///    delayed beat still arrives (it credits the next tick), so the miss
///    counter hovers below every deadline.
/// 2. Real silence is where `heartbeat_grace` bites: a node silent for
///    four rounds is declared dead under the default deadline, but a
///    grace of 2 stretches the deadline to `HEARTBEAT_DEADLINE_MISSES × 2`
///    misses and the same outage is ridden out — the STONITH fencing path
///    never fires on a node that was merely slow.
#[test]
fn heartbeat_grace_stretches_detection_and_delay_jitter_never_latches() {
    let vh = engine(4);
    vh.install_fault_hook(Some(Arc::new(DelayAllBeats) as SharedFaultHook));
    for _ in 0..10 {
        assert_eq!(vh.health_tick().unwrap(), vec![], "delay jitter latched");
    }
    vh.install_fault_hook(None);
    assert_eq!(vh.workers().len(), 4, "no node lost to jitter");

    // Four silent rounds, then recovery. Returns whether the victim rode
    // out the outage without ever being declared dead.
    let drill = |grace: u32| -> bool {
        let vh = engine_with(4, |cfg| cfg.heartbeat_grace = grace);
        let victim = *vh
            .workers()
            .iter()
            .find(|w| **w != vh.session_master())
            .unwrap();
        vh.health_tick().unwrap(); // one clean round arms the counters
        vh.install_fault_hook(Some(Arc::new(DropBeatsOf(victim)) as SharedFaultHook));
        let mut declared = false;
        for _ in 0..4 {
            declared |= !vh.health_tick().unwrap().is_empty();
        }
        vh.install_fault_hook(None);
        for _ in 0..3 {
            declared |= !vh.health_tick().unwrap().is_empty();
        }
        !declared && vh.workers().contains(&victim)
    };
    assert!(
        !drill(1),
        "four silent rounds at the default grace must latch the victim dead"
    );
    assert!(
        drill(2),
        "the same outage with heartbeat_grace = 2 must be ridden out"
    );
}

/// The scheduler fires a health round every `health_every` work units, and
/// `health_every = 0` disables background rounds entirely (the clock still
/// advances, so re-enabling math stays simple).
#[test]
fn background_rounds_fire_on_the_virtual_clock() {
    let vh = engine_with(4, |cfg| cfg.health_every = 3);
    vh.create_table(
        TableBuilder::new("t")
            .column("k", DataType::I64)
            .column("v", DataType::I64)
            .partition_by(&["k"], 2),
    )
    .unwrap();
    vh.insert_rows(
        "t",
        (0..100)
            .map(|i| vec![Value::I64(i), Value::I64(i)])
            .collect(),
    )
    .unwrap();

    let clock0 = vh.health_clock();
    let ticks0 = vh.health_ticks();
    for _ in 0..7 {
        vh.query("SELECT count(*) FROM t").unwrap();
    }
    let clock1 = vh.health_clock();
    assert_eq!(clock1, clock0 + 7, "each query advances one work unit");
    assert_eq!(
        vh.health_ticks() - ticks0,
        clock1 / 3 - clock0 / 3,
        "one health round per crossed period boundary"
    );

    let off = engine_with(4, |cfg| cfg.health_every = 0);
    off.create_table(
        TableBuilder::new("t")
            .column("k", DataType::I64)
            .column("v", DataType::I64)
            .partition_by(&["k"], 2),
    )
    .unwrap();
    off.insert_rows("t", vec![vec![Value::I64(1), Value::I64(1)]])
        .unwrap();
    let ticks = off.health_ticks();
    for _ in 0..5 {
        off.query("SELECT count(*) FROM t").unwrap();
    }
    assert_eq!(off.health_ticks(), ticks, "disabled scheduler never ticks");
    assert!(off.health_clock() >= 5, "the clock itself still advances");
}

/// The session master's process dies and nobody tells the engine: ordinary
/// queries must detect it, elect the lowest live NodeId under a bumped
/// epoch, log the election durably, and keep committing.
#[test]
fn queries_alone_depose_a_dead_master_and_elect_the_lowest_survivor() {
    let vh = engine(4);
    vh.create_table(
        TableBuilder::new("t")
            .column("k", DataType::I64)
            .column("v", DataType::I64)
            .partition_by(&["k"], 4),
    )
    .unwrap();
    vh.insert_rows(
        "t",
        (0..2000)
            .map(|i| vec![Value::I64(i), Value::I64(i * 3)])
            .collect(),
    )
    .unwrap();
    let master0 = vh.session_master();
    let epoch0 = vh.master_epoch();
    assert_eq!(vh.master_history(), vec![(epoch0, master0)]);

    // The process dies; the engine is NOT told.
    vh.fs().kill_node(master0).unwrap();
    vh.rm().node_lost(master0);
    assert!(vh.workers().contains(&master0), "engine unaware so far");

    // Just keep querying: the background rounds detect, fence and elect.
    let mut queries = 0;
    while vh.workers().contains(&master0) {
        queries += 1;
        assert!(queries <= 12, "background plane never deposed the master");
        let rows = vh.query("SELECT count(*) FROM t").unwrap();
        assert_eq!(rows[0][0], Value::I64(2000));
    }

    let master1 = vh.session_master();
    assert_eq!(master1, vh.workers()[0], "lowest live NodeId wins");
    assert_ne!(master1, master0);
    assert_eq!(vh.master_epoch(), epoch0 + 1, "exactly one epoch bump");
    assert_eq!(
        vh.master_history(),
        vec![(epoch0, master0), (epoch0 + 1, master1)]
    );
    // The election is durable: the reduced global WAL carries the record.
    let logged = vh
        .coordinator
        .global_wal()
        .read_all()
        .unwrap()
        .iter()
        .any(|r| {
            matches!(r, LogRecord::MasterEpoch { epoch, node }
            if *epoch == epoch0 + 1 && *node == master1.0 as u64)
        });
    assert!(logged, "election must be logged in the global WAL");

    // Liveness: the re-homed coordinator keeps accepting commits.
    vh.trickle_insert("t", vec![vec![Value::I64(9001), Value::I64(1)]])
        .unwrap();
    let rows = vh.query("SELECT count(*) FROM t").unwrap();
    assert_eq!(rows[0][0], Value::I64(2001));
}

/// The fencing drill: a one-way partition drops only the master's
/// heartbeats, so the monitor *falsely* declares a live master dead. The
/// health plane must fence it (STONITH — declaration and filesystem agree),
/// elect a successor, resolve the old master's half-prepared transaction to
/// presumed abort without duplicating rows, and reject any commit still
/// carrying the stale epoch with the typed error. Rejoin re-admits the node
/// but never fails the master role back.
#[test]
fn false_positive_detection_fences_the_old_master_and_resolves_partial_2pc() {
    let vh = engine(4);
    vh.create_table(
        TableBuilder::new("t")
            .column("k", DataType::I64)
            .column("v", DataType::I64)
            .partition_by(&["k"], 2),
    )
    .unwrap();
    let rt = vh.table("t").unwrap();
    let (pa, pb) = (rt.pids[0], rt.pids[1]);
    // One acknowledged transaction: the baseline that must survive.
    vh.trickle_insert("t", vec![vec![Value::I64(1), Value::I64(10)]])
        .unwrap();
    let baseline = vh.query("SELECT count(*) FROM t").unwrap()[0][0].clone();
    let master0 = vh.session_master();
    let epoch0 = vh.master_epoch();

    // The master gets one transaction to the prepared state on both
    // participants, then stalls before the decision — in doubt, no
    // decision record anywhere.
    let recs = |part: i64| {
        vec![
            LogRecord::TxnBegin { txn: 700 },
            LogRecord::Insert {
                txn: 700,
                rid: 0,
                tag: 7000 + part as u64,
                values: vec![Value::I64(700 + part), Value::I64(0)],
            },
        ]
    };
    let (ra, rb) = (recs(0), recs(1));
    let out = vh
        .coordinator
        .commit_distributed(
            700,
            &[(pa, &rt.wals[0], &ra), (pb, &rt.wals[1], &rb)],
            CrashPoint::AfterPrepare,
        )
        .unwrap();
    assert_eq!(out, vectorh_txn::twophase::Outcome::InDoubt);

    // A one-way partition isolates the master's heartbeats; its process
    // stays up. Background rounds must declare it dead and fence it.
    vh.install_fault_hook(Some(Arc::new(DropBeatsOf(master0)) as SharedFaultHook));
    let mut queries = 0;
    while vh.workers().contains(&master0) {
        queries += 1;
        assert!(queries <= 12, "false positive never declared");
        vh.query("SELECT count(*) FROM t").unwrap();
    }
    vh.install_fault_hook(None);
    // STONITH: the declaration forcibly killed the still-live process, so
    // the monitor's verdict and the filesystem agree.
    assert!(!vh.fs().alive_nodes().contains(&master0), "fenced");
    let master1 = vh.session_master();
    let epoch1 = vh.master_epoch();
    assert_ne!(master1, master0);
    assert_eq!(epoch1, epoch0 + 1);

    // The new master resolved the in-doubt transaction to presumed abort:
    // no decision record existed, so its rows never surface — the visible
    // image is exactly the baseline, no loss, no duplicates.
    assert_eq!(
        vh.coordinator.in_doubt_txns_of(&rt.wals[0]).unwrap(),
        vec![]
    );
    assert_eq!(
        vh.coordinator.in_doubt_txns_of(&rt.wals[1]).unwrap(),
        vec![]
    );
    assert!(!vh.coordinator.recover_decision(700).unwrap());
    assert_eq!(vh.query("SELECT count(*) FROM t").unwrap()[0][0], baseline);

    // The deposed master wakes up and retries its commit with the epoch it
    // believes in: fenced at entry with the typed error, before any
    // participant writes a byte.
    let err = vh
        .coordinator
        .commit_at_epoch(
            epoch0,
            701,
            &[(pa, &rt.wals[0], &ra), (pb, &rt.wals[1], &rb)],
            CrashPoint::None,
        )
        .unwrap_err();
    assert!(
        matches!(err, VhError::StaleMaster(_)),
        "stale-epoch commit must be fenced, got: {err}"
    );
    assert_eq!(vh.query("SELECT count(*) FROM t").unwrap()[0][0], baseline);

    // Rejoin re-admits the node as a worker — the master role does not
    // fail back, and the next commit still lands under the new epoch.
    vh.rejoin_node(master0).unwrap();
    assert!(vh.workers().contains(&master0));
    assert_eq!(vh.session_master(), master1, "no failback on rejoin");
    assert_eq!(vh.master_epoch(), epoch1);
    vh.trickle_insert("t", vec![vec![Value::I64(2), Value::I64(20)]])
        .unwrap();
}

/// Bounded retention: the ship log truncates once it exceeds the configured
/// budget, live receivers keep replaying deltas, and a receiver that
/// rejoins behind the truncation horizon converges via full-image bootstrap
/// (stable image + committed WAL tail) instead of replay.
#[test]
fn bounded_retention_truncates_and_bootstraps_stragglers() {
    let vh = engine_with(4, |cfg| {
        cfg.ship_retention = ShipRetention {
            max_bytes: None,
            max_records: Some(6),
        }
    });
    vh.create_table(
        TableBuilder::new("dims")
            .column("id", DataType::I64)
            .column("w", DataType::I64),
    )
    .unwrap();
    vh.insert_rows(
        "dims",
        (0..10)
            .map(|i| vec![Value::I64(i), Value::I64(i)])
            .collect(),
    )
    .unwrap();
    let dims = vh.table("dims").unwrap();
    let pid = dims.pids[0];

    let victim = NodeId(3);
    vh.kill_node(victim).unwrap();

    // Commits while the victim is down: each trickle batch logs
    // TxnBegin + 2 inserts = 3 records, so 4 commits (12 records) blow
    // through the 6-record budget and truncate the log past the victim's
    // position. Live replicas stay converged throughout — they drain at
    // the head, never behind the horizon.
    for i in 0..4i64 {
        vh.trickle_insert(
            "dims",
            vec![
                vec![Value::I64(100 + 2 * i), Value::I64(0)],
                vec![Value::I64(101 + 2 * i), Value::I64(0)],
            ],
        )
        .unwrap();
    }
    assert!(vh.shipper.horizon(pid) > 0, "retention moved the horizon");
    assert!(
        vh.shipper.reclaimed_bytes() > 0,
        "truncation reclaimed bytes"
    );
    assert!(
        vh.shipper.retained_bytes(pid) > 0,
        "the tail within budget is still retained"
    );
    for &w in &vh.workers() {
        assert_eq!(vh.replica_rows(w, pid).unwrap(), 18, "{w} stayed live");
    }

    // The victim's watermark is behind the horizon: rejoin must take the
    // full-image bootstrap and converge, then track live commits again.
    vh.rejoin_node(victim).unwrap();
    assert_eq!(vh.replica_rows(victim, pid).unwrap(), 18, "bootstrapped");
    vh.trickle_insert("dims", vec![vec![Value::I64(200), Value::I64(0)]])
        .unwrap();
    assert_eq!(vh.replica_rows(victim, pid).unwrap(), 19, "live again");

    // An explicit checkpoint (stable image rewrite) empties the retained
    // log and reports what it reclaimed.
    let retained = vh.shipper.retained_bytes(pid);
    assert_eq!(vh.shipper.checkpoint(pid), retained);
    assert_eq!(vh.shipper.retained_bytes(pid), 0);
}
