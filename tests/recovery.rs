//! Recovery coordinator: takeover, in-doubt resolution, rejoin (§6).
//!
//! The paper's §6 failure story, end to end against the engine: a
//! responsible node's death moves its partitions to survivors, whose
//! recovery must resurrect exactly the decided transactions — a local
//! `Commit` record or a `GlobalCommit` decision in the reduced global WAL —
//! and a rejoining node converges back to full locality and replica
//! freshness (Figure 2 in reverse).

use vectorh::{ClusterConfig, NodeHealth, TableBuilder, VectorH};
use vectorh_common::{DataType, NodeId, Value, VhError};
use vectorh_txn::twophase::{CrashPoint, Outcome};
use vectorh_txn::LogRecord;

fn engine(nodes: usize) -> VectorH {
    VectorH::start(ClusterConfig {
        nodes,
        rows_per_chunk: 256,
        hdfs_block_size: 16 * 1024,
        replication: 3,
        ..Default::default()
    })
    .unwrap()
}

/// Coordinator dies between Prepare and GlobalCommit: after the
/// responsibility moves, the new responsible node must commit the in-doubt
/// transaction iff the global WAL holds its decision — on every
/// participant, atomically.
#[test]
fn in_doubt_txns_resolve_against_the_global_wal_across_takeover() {
    let vh = engine(4);
    vh.create_table(
        TableBuilder::new("t")
            .column("k", DataType::I64)
            .column("v", DataType::I64)
            .partition_by(&["k"], 2),
    )
    .unwrap();
    let rt = vh.table("t").unwrap();
    let (pa, pb) = (rt.pids[0], rt.pids[1]);

    // Three distributed transactions through the session master's 2PC,
    // writing one row per participant each:
    //   499 — full protocol, acknowledged.
    //   500 — coordinator dies after Prepare, before the decision.
    //   501 — coordinator dies after the decision, before phase 2.
    let recs = |txn: u64, part: u64| {
        vec![
            LogRecord::TxnBegin { txn },
            LogRecord::Insert {
                txn,
                rid: 0,
                tag: txn * 10 + part,
                values: vec![Value::I64(txn as i64), Value::I64(part as i64)],
            },
        ]
    };
    for (txn, crash, want) in [
        (499, CrashPoint::None, Outcome::Committed),
        (500, CrashPoint::AfterPrepare, Outcome::InDoubt),
        (501, CrashPoint::AfterGlobalCommit, Outcome::InDoubt),
    ] {
        let (ra, rb) = (recs(txn, 0), recs(txn, 1));
        let out = vh
            .coordinator
            .commit_distributed(
                txn,
                &[(pa, &rt.wals[0], &ra), (pb, &rt.wals[1], &rb)],
                crash,
            )
            .unwrap();
        assert_eq!(out, want, "txn{txn}");
    }

    // Kill the responsible node of each participant (re-reading the
    // assignment between kills — the first remap may move pb's owner), so
    // both partitions go through WAL takeover on a survivor.
    vh.kill_node(vh.responsible(pa)).unwrap();
    vh.kill_node(vh.responsible(pb)).unwrap();
    for pid in [pa, pb] {
        let now = vh.responsible(pid);
        assert!(vh.workers().contains(&now), "{pid} owned by a live node");
    }

    // The new responsible nodes recovered from the WALs: txn 499 (local
    // Commit) and txn 501 (global decision) are visible, txn 500 (no
    // decision anywhere) is presumed aborted — identically on both
    // participants.
    for (i, pid) in [pa, pb].into_iter().enumerate() {
        let verdicts = vh.coordinator.recoverable_txns(&rt.wals[i]).unwrap();
        let committed: Vec<u64> = verdicts
            .iter()
            .filter(|t| t.resolution.is_committed())
            .map(|t| t.txn)
            .collect();
        assert_eq!(committed, vec![499, 501], "{pid}");
        assert_eq!(vh.txns.visible_rows(pid).unwrap(), 2, "{pid}");
    }
    let rows = vh.query("SELECT count(*) FROM t").unwrap();
    assert_eq!(rows[0][0], Value::I64(4), "2 decided txns × 2 participants");
}

/// A node death is detected proactively by the heartbeat monitor and
/// triggers the same recovery as an explicit `kill_node`.
#[test]
fn heartbeat_monitor_detects_death_and_triggers_recovery() {
    let vh = engine(4);
    vh.create_table(
        TableBuilder::new("t")
            .column("k", DataType::I64)
            .column("v", DataType::I64)
            .partition_by(&["k"], 4),
    )
    .unwrap();
    vh.insert_rows(
        "t",
        (0..2000)
            .map(|i| vec![Value::I64(i), Value::I64(i * 3)])
            .collect(),
    )
    .unwrap();

    // The process dies; the engine is not told (no reconcile here).
    let victim = NodeId(2);
    vh.fs().kill_node(victim).unwrap();
    vh.rm().node_lost(victim);
    assert!(vh.workers().contains(&victim), "engine unaware so far");

    let mut detected = false;
    for _ in 0..6 {
        if vh.health_tick().unwrap().contains(&victim) {
            detected = true;
            break;
        }
    }
    assert!(detected, "silent node declared dead within the deadline");
    assert_eq!(vh.node_health(victim), NodeHealth::Dead);
    assert!(!vh.workers().contains(&victim), "recovery reconciled");
    let rows = vh.query("SELECT count(*), sum(v) FROM t").unwrap();
    assert_eq!(rows[0][0], Value::I64(2000));
}

/// Kill → rejoin: the worker set, responsibility spread, replica state and
/// scan locality all converge back to the pre-failure picture.
#[test]
fn rejoin_restores_workers_replicas_and_locality() {
    let vh = engine(4);
    vh.create_table(
        TableBuilder::new("t")
            .column("k", DataType::I64)
            .column("v", DataType::I64)
            .partition_by(&["k"], 8),
    )
    .unwrap();
    vh.insert_rows(
        "t",
        (0..4000)
            .map(|i| vec![Value::I64(i), Value::I64(i * 3)])
            .collect(),
    )
    .unwrap();
    vh.create_table(
        TableBuilder::new("dims")
            .column("id", DataType::I64)
            .column("w", DataType::I64),
    )
    .unwrap();
    vh.insert_rows(
        "dims",
        (0..10)
            .map(|i| vec![Value::I64(i), Value::I64(i)])
            .collect(),
    )
    .unwrap();

    let victim = NodeId(3);
    vh.kill_node(victim).unwrap();
    assert_eq!(vh.workers().len(), 3);
    // Replicated-table commits while the node is down pile up in the
    // shipped log.
    vh.trickle_insert(
        "dims",
        (10..14)
            .map(|i| vec![Value::I64(i), Value::I64(i)])
            .collect(),
    )
    .unwrap();

    vh.rejoin_node(victim).unwrap();
    assert_eq!(vh.workers().len(), 4, "worker re-admitted");
    assert_eq!(vh.node_health(victim), NodeHealth::Alive);

    // Replica catch-up from the shipped log, and live application of a
    // post-rejoin commit.
    let dims = vh.table("dims").unwrap();
    assert_eq!(vh.replica_rows(victim, dims.pids[0]).unwrap(), 14);
    vh.trickle_insert("dims", vec![vec![Value::I64(14), Value::I64(14)]])
        .unwrap();
    assert_eq!(vh.replica_rows(victim, dims.pids[0]).unwrap(), 15);

    // Responsibility spreads back over all 4 nodes (min-cost-flow cap:
    // ⌈8/4⌉ = 2 per node), and the rejoined node carries its share.
    let rt = vh.table("t").unwrap();
    let mut per_node = std::collections::HashMap::new();
    for pid in &rt.pids {
        *per_node.entry(vh.responsible(*pid)).or_insert(0) += 1;
    }
    assert!(per_node.values().all(|&c| c <= 2), "{per_node:?}");
    assert!(per_node.contains_key(&victim), "{per_node:?}");

    // Locality converged back: fresh scans are fully short-circuited.
    let before = vh.fs().stats().snapshot();
    let rows = vh.query("SELECT count(*) FROM t").unwrap();
    assert_eq!(rows[0][0], Value::I64(4000));
    let delta = vh.fs().stats().snapshot().since(&before);
    assert_eq!(delta.remote_read_bytes, 0, "post-rejoin scans fully local");
    assert!(delta.local_read_bytes > 0);
}

/// The failover retry loop is bounded by the worker count *pinned at
/// entry*: with every partition home pinned to a dead node, the query must
/// exhaust its retries and surface the error instead of looping.
#[test]
fn failover_retries_exhaust_deterministically() {
    let vh = engine(4);
    vh.create_table(
        TableBuilder::new("t")
            .column("k", DataType::I64)
            .column("v", DataType::I64)
            .partition_by(&["k"], 4),
    )
    .unwrap();
    vh.insert_rows(
        "t",
        (0..2000)
            .map(|i| vec![Value::I64(i), Value::I64(i * 3)])
            .collect(),
    )
    .unwrap();

    let victim = NodeId(1);
    vh.kill_node(victim).unwrap();
    // Sabotage: pin every partition's responsibility back to the dead
    // node. The worker set is already reconciled, so every retry sees "no
    // node died", never remaps, re-plans onto the same pinned NodeDown —
    // and must give up once retries exceed the current worker count.
    let rt = vh.table("t").unwrap();
    for pid in &rt.pids {
        vh.pin_responsible(*pid, victim);
    }
    let err = vh.query("SELECT count(*) FROM t").unwrap_err();
    assert!(
        matches!(err, VhError::NodeDown(_)),
        "retries must exhaust with the underlying NodeDown, got: {err}"
    );
}

/// Regression for the retry-budget fix: the budget is the worker count
/// **at query entry**, not the already-shrunken survivor set re-read after
/// each kill. A fault hook crashes the whole cluster out from under the
/// first attempt, so every reconcile shrinks toward (and past) empty; the
/// old formulation (`failovers > workers().len()` re-read per attempt)
/// would have cut the cascade off after a single retry. With the pinned
/// budget the engine grants exactly N retries for an N-node entry set and
/// then surfaces the underlying `NodeDown` — it neither loops forever nor
/// gives up early.
#[test]
fn full_cluster_cascade_exhausts_pinned_retry_budget_with_node_down() {
    use std::sync::{Arc, Mutex};
    use vectorh_common::fault::{FaultAction, FaultHook, FaultSite};
    use vectorh_simhdfs::{BlockStore, StoreRef};

    /// Kills one victim per `HdfsRead` consult until the cluster is gone.
    /// `SimHdfs::read` consults the hook *before* taking its state lock,
    /// so killing from inside `decide` is deadlock-free.
    struct CascadeKiller {
        fs: StoreRef,
        victims: Mutex<Vec<NodeId>>,
    }
    impl std::fmt::Debug for CascadeKiller {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "CascadeKiller({:?})", self.victims.lock().unwrap())
        }
    }
    impl FaultHook for CascadeKiller {
        fn decide(&self, site: FaultSite, _detail: &str, _attempt: u32) -> FaultAction {
            if site == FaultSite::HdfsRead {
                if let Some(v) = self.victims.lock().unwrap().pop() {
                    self.fs.kill_node(v).unwrap();
                }
            }
            FaultAction::None
        }
    }

    let vh = engine(4);
    vh.create_table(
        TableBuilder::new("t")
            .column("k", DataType::I64)
            .column("v", DataType::I64)
            .partition_by(&["k"], 4),
    )
    .unwrap();
    vh.insert_rows(
        "t",
        (0..2000)
            .map(|i| vec![Value::I64(i), Value::I64(i * 3)])
            .collect(),
    )
    .unwrap();

    let entry_workers = vh.workers().len();
    assert_eq!(entry_workers, 4);
    vh.install_fault_hook(Some(Arc::new(CascadeKiller {
        fs: vh.fs().clone(),
        victims: Mutex::new(vh.workers()),
    })));

    let ctl = vectorh::QueryCtl::new();
    let plan = vh.parse("SELECT count(*) FROM t").unwrap();
    let err = vh.query_logical_ctl(&plan, Some(&ctl)).unwrap_err();
    vh.install_fault_hook(None);

    assert!(
        matches!(err, VhError::NodeDown(_)),
        "a full-cluster cascade must exhaust with NodeDown, got: {err}"
    );
    // The discriminating assertion: the budget was pinned to the 4-node
    // entry set, so exactly 4 retries were granted even though the
    // survivor set hit zero during the very first attempt.
    assert_eq!(
        ctl.retries(),
        entry_workers as u64,
        "retry budget must be pinned at entry, not re-read after shrink"
    );
    assert!(
        vh.workers().is_empty(),
        "the cascade really took every node"
    );
}
