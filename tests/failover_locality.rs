//! Node failure, re-replication and read locality (§3/§4, Figure 2).
//!
//! The paper's claim: with the instrumented HDFS placement policy, "VectorH
//! in general achieves the situation that all table IOs are short-circuited"
//! — and after a node failure, the min-cost-flow affinity mapping plus
//! re-replication restores that state.

use vectorh::{ClusterConfig, TableBuilder, VectorH};
use vectorh_common::{DataType, NodeId, Value};

fn engine(nodes: usize) -> VectorH {
    VectorH::start(ClusterConfig {
        nodes,
        rows_per_chunk: 256,
        hdfs_block_size: 16 * 1024,
        replication: 3,
        ..Default::default()
    })
    .unwrap()
}

fn fixture(vh: &VectorH, parts: usize) {
    vh.create_table(
        TableBuilder::new("t")
            .column("k", DataType::I64)
            .column("v", DataType::I64)
            .partition_by(&["k"], parts),
    )
    .unwrap();
    vh.insert_rows(
        "t",
        (0..5000)
            .map(|i| vec![Value::I64(i), Value::I64(i * 3)])
            .collect(),
    )
    .unwrap();
}

#[test]
fn scans_are_fully_short_circuited() {
    let vh = engine(4);
    fixture(&vh, 8);
    let before = vh.fs().stats().snapshot();
    let rows = vh.query("SELECT count(*) FROM t").unwrap();
    assert_eq!(rows[0][0], Value::I64(5000));
    let delta = vh.fs().stats().snapshot().since(&before);
    assert_eq!(delta.remote_read_bytes, 0, "all table IO must be local");
    assert!(delta.local_read_bytes > 0);
    assert_eq!(delta.locality(), 1.0);
}

#[test]
fn failure_rereplicates_and_restores_locality() {
    let vh = engine(4);
    fixture(&vh, 8);
    // Kill a node: HDFS re-replicates under the affinity policy and the
    // responsibility assignment moves to survivors.
    vh.kill_node(NodeId(3)).unwrap();
    assert_eq!(vh.workers().len(), 3);
    assert!(
        vh.fs().stats().snapshot().rereplicated_bytes > 0,
        "re-replication happened"
    );

    // Data intact.
    let rows = vh.query("SELECT count(*), sum(v) FROM t").unwrap();
    assert_eq!(rows[0][0], Value::I64(5000));
    let expect: i64 = (0..5000i64).map(|i| i * 3).sum();
    assert_eq!(rows[0][1], Value::I64(expect));

    // And locality is restored: post-failure scans are fully local again.
    let before = vh.fs().stats().snapshot();
    vh.query("SELECT count(*) FROM t WHERE v > 100").unwrap();
    let delta = vh.fs().stats().snapshot().since(&before);
    assert_eq!(
        delta.remote_read_bytes, 0,
        "scans after failover must be short-circuited again (local {} remote {})",
        delta.local_read_bytes, delta.remote_read_bytes
    );
}

#[test]
fn responsibility_spreads_evenly_after_failure() {
    let vh = engine(4);
    fixture(&vh, 12);
    vh.kill_node(NodeId(0)).unwrap();
    let rt = vh.table("t").unwrap();
    let mut per_node = std::collections::HashMap::new();
    for pid in &rt.pids {
        let n = vh.responsible(*pid);
        assert_ne!(n, NodeId(0), "dead node cannot be responsible");
        *per_node.entry(n).or_insert(0) += 1;
    }
    // 12 partitions over 3 survivors: 4 each (Figure 2 bottom).
    assert!(per_node.values().all(|&c| c == 4), "{per_node:?}");
}

#[test]
fn writes_after_failover_land_on_new_homes() {
    let vh = engine(4);
    fixture(&vh, 8);
    vh.kill_node(NodeId(2)).unwrap();
    // Trickle updates go to the new responsible nodes' partitions and WALs.
    vh.trickle_insert(
        "t",
        (5000..5100)
            .map(|i| vec![Value::I64(i), Value::I64(0)])
            .collect(),
    )
    .unwrap();
    assert_eq!(vh.table_rows("t").unwrap(), 5100);
    // Further failure still leaves the data queryable (R=3).
    vh.kill_node(NodeId(1)).unwrap();
    let rows = vh.query("SELECT count(*) FROM t").unwrap();
    assert_eq!(rows[0][0], Value::I64(5100));
}

#[test]
fn session_master_failover() {
    let vh = engine(3);
    fixture(&vh, 4);
    let master_before = vh.session_master();
    vh.kill_node(master_before).unwrap();
    let master_after = vh.session_master();
    assert_ne!(master_before, master_after, "another worker takes over");
    // Queries keep working under the new session master.
    let rows = vh.query("SELECT count(*) FROM t").unwrap();
    assert_eq!(rows[0][0], Value::I64(5000));
}

#[test]
fn default_policy_degrades_locality_after_failure() {
    // Contrast experiment: *without* the affinity instrumentation, failures
    // leave replicas wherever default HDFS put them, so reads go remote —
    // exactly the degradation the paper's §3 describes.
    use std::sync::Arc;
    use vectorh_simhdfs::{DefaultPolicy, SimHdfs, SimHdfsConfig};
    let fs = SimHdfs::new(
        4,
        SimHdfsConfig {
            block_size: 4096,
            default_replication: 2,
        },
        Arc::new(DefaultPolicy::new(77)),
    );
    // Writer node 0 writes a file; its first replica is local.
    let payload = vec![7u8; 100_000];
    fs.append("/data/part0", &payload, Some(NodeId(0))).unwrap();
    let before = fs.stats().snapshot();
    fs.read_all("/data/part0", Some(NodeId(0))).unwrap();
    assert_eq!(fs.stats().snapshot().since(&before).remote_read_bytes, 0);
    // Node 0 dies; the re-replica goes to a random node, and the "new
    // responsible" reader (pick node 1) is not guaranteed locality.
    fs.kill_node(NodeId(0)).unwrap();
    let locs = fs.block_locations("/data/part0").unwrap();
    let all_on_1 = locs.iter().all(|b| b.nodes.contains(&NodeId(1)));
    if !all_on_1 {
        let before = fs.stats().snapshot();
        fs.read_all("/data/part0", Some(NodeId(1))).unwrap();
        assert!(
            fs.stats().snapshot().since(&before).remote_read_bytes > 0,
            "default policy cannot guarantee locality after failure"
        );
    }
}
