//! The SQL front door end to end: wire handshake, streamed results,
//! prepared statements, typed errors, admission refusals, cancellation,
//! and — the headline — node death under concurrent streaming clients
//! with zero client-visible failures.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use vectorh::{ClusterConfig, VectorH};
use vectorh_common::{NodeId, Value, VhError};
use vectorh_server::{AdmissionConfig, Client, Server, ServerConfig};

fn engine(nodes: usize) -> Arc<VectorH> {
    let vh = VectorH::start(ClusterConfig {
        nodes,
        rows_per_chunk: 256,
        hdfs_block_size: 32 * 1024,
        ..Default::default()
    })
    .unwrap();
    vectorh_tpch::schema::setup(&vh, 0.002, 4, 20260707).unwrap();
    Arc::new(vh)
}

fn server_with(vh: &Arc<VectorH>, admission: AdmissionConfig, batch_rows: usize) -> Server {
    Server::start(
        vh.clone(),
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            admission,
            batch_rows,
        },
    )
    .unwrap()
}

fn default_server(vh: &Arc<VectorH>) -> Server {
    server_with(vh, AdmissionConfig::default(), 1024)
}

#[test]
fn wire_query_matches_in_process_results() {
    let vh = engine(3);
    let server = default_server(&vh);
    let mut client = Client::connect(server.addr()).unwrap();
    for qn in vectorh_tpch::sql_texts::FRONTDOOR_MIX {
        let sql = vectorh_tpch::sql_texts::sql_text(qn).unwrap();
        let want = vh.query(sql).unwrap();
        let got = client.query(sql).unwrap();
        assert_eq!(got, want, "q{qn} over the wire diverged");
    }
    client.goodbye().unwrap();
}

#[test]
fn small_batches_stream_and_reassemble() {
    let vh = engine(3);
    // Tiny batches force a multi-frame result stream.
    let server = server_with(&vh, AdmissionConfig::default(), 7);
    let mut client = Client::connect(server.addr()).unwrap();
    let sql = "SELECT l_orderkey, l_quantity FROM lineitem";
    // Bare-scan row order varies with stream scheduling; compare as sets.
    let want = vectorh_tpch::baseline::canonical(vh.query(sql).unwrap());
    let outcome = client.query_detailed(sql).unwrap();
    let got = vectorh_tpch::baseline::canonical(outcome.rows.clone());
    assert_eq!(got, want);
    assert!(
        outcome.batches as usize >= want.len() / 7,
        "expected a multi-batch stream, got {} batches for {} rows",
        outcome.batches,
        want.len()
    );
}

#[test]
fn prepared_statements_cache_by_sql_text() {
    let vh = engine(3);
    let server = default_server(&vh);
    let mut client = Client::connect(server.addr()).unwrap();
    let sql = vectorh_tpch::sql_texts::sql_text(6).unwrap();
    let a = client.prepare(sql).unwrap();
    let b = client.prepare(sql).unwrap();
    assert_eq!(a, b, "same text must hit the cache, not re-prepare");
    let c = client
        .prepare(vectorh_tpch::sql_texts::sql_text(1).unwrap())
        .unwrap();
    assert_ne!(a, c);
    let want = vh.query(sql).unwrap();
    assert_eq!(client.execute_prepared(a).unwrap().rows, want);
    // Query by the same text rides the cached plan too.
    assert_eq!(client.query(sql).unwrap(), want);
    // Unknown statement ids are a typed error, not a hangup.
    let err = client.execute_prepared(9999).unwrap_err();
    assert!(matches!(err, VhError::InvalidArg(_)), "{err}");
    assert_eq!(client.query(sql).unwrap(), want, "session must survive");
}

#[test]
fn plan_errors_are_typed_and_session_survives() {
    let vh = engine(3);
    let server = default_server(&vh);
    let mut client = Client::connect(server.addr()).unwrap();
    let err = client.query("SELECT nope FROM nothing").unwrap_err();
    // The stable numeric taxonomy survives the wire: the client rebuilds
    // the exact variant from the code.
    assert!(
        matches!(err, VhError::Plan(_) | VhError::Catalog(_)),
        "wrong variant after wire roundtrip: {err}"
    );
    let rows = client.query("SELECT count(*) FROM lineitem").unwrap();
    assert!(matches!(rows[0][0], Value::I64(n) if n > 0));
}

#[test]
fn pipelined_requests_beyond_session_cap_get_typed_busy() {
    let vh = engine(3);
    let server = server_with(
        &vh,
        AdmissionConfig {
            max_concurrent: 1,
            max_queue: 2,
            queue_timeout_ms: 5000,
            per_session_inflight: 1,
            seed: 11,
        },
        1024,
    );
    let mut client = Client::connect(server.addr()).unwrap();
    let sql = vectorh_tpch::sql_texts::sql_text(1).unwrap();
    let want = vh.query(sql).unwrap();
    // Fire 8 queries without waiting: with a pipelining cap of 1, the
    // reader refuses the overflow at the door — typed ServerBusy with a
    // backoff hint, connection intact.
    let n = 8;
    let mut pending = Vec::new();
    for _ in 0..n {
        pending.push(client.send_query(sql).unwrap());
    }
    let mut ok = 0;
    let mut busy = 0;
    for _ in 0..n {
        let (_, outcome) = client.wait_any().unwrap();
        match outcome {
            Ok(o) => {
                assert_eq!(o.rows, want);
                ok += 1;
            }
            Err(VhError::ServerBusy(_)) => {
                assert!(client.last_busy_hint_ms() > 0, "busy must carry a hint");
                busy += 1;
            }
            Err(other) => panic!("only Ok or ServerBusy expected, got {other}"),
        }
    }
    assert!(ok >= 1, "at least the first pipelined query must run");
    assert!(busy >= 1, "cap 1 with 8 pipelined queries must refuse some");
    // The refusals were counted against this session.
    let sessions = vh.server_stats().sessions();
    let mine = sessions
        .iter()
        .find(|(id, _)| *id == client.session_id())
        .map(|(_, c)| *c)
        .unwrap();
    assert_eq!(mine.queries_served, ok);
    assert_eq!(mine.rejected_busy, busy);
    // And the session still serves.
    assert_eq!(client.query(sql).unwrap(), want);
}

#[test]
fn cancel_mid_stream_is_typed_and_session_survives() {
    let vh = engine(3);
    // One-row batches maximize the stream length so the cancel lands.
    let server = server_with(&vh, AdmissionConfig::default(), 1);
    let mut client = Client::connect(server.addr()).unwrap();
    let sql = "SELECT l_orderkey, l_quantity, l_extendedprice FROM lineitem";
    let req = client.send_query(sql).unwrap();
    let mut canceller = client.canceller().unwrap();
    canceller.cancel().unwrap();
    let (done_id, outcome) = client.wait_any().unwrap();
    assert_eq!(done_id, req);
    match outcome {
        // The cancel raced the stream and won:
        Err(VhError::Cancelled(_)) => {}
        // …or the query finished first; either way it must be clean.
        Ok(o) => assert_eq!(
            vectorh_tpch::baseline::canonical(o.rows),
            vectorh_tpch::baseline::canonical(vh.query(sql).unwrap())
        ),
        Err(other) => panic!("expected Cancelled or success, got {other}"),
    }
    // The session keeps serving after a cancel.
    let rows = client.query("SELECT count(*) FROM lineitem").unwrap();
    assert!(matches!(rows[0][0], Value::I64(n) if n > 0));
}

#[test]
fn engine_level_cancel_is_deterministic() {
    let vh = engine(3);
    let ctl = vectorh::QueryCtl::new();
    ctl.cancel();
    let plan = vh.parse("SELECT count(*) FROM lineitem").unwrap();
    let err = vh.query_logical_ctl(&plan, Some(&ctl)).unwrap_err();
    assert!(matches!(err, VhError::Cancelled(_)), "{err}");
}

/// The headline drill: concurrent clients streaming results over the wire
/// while a node dies mid-run. Zero client-visible failures — every retry
/// is absorbed inside `query_logical` — and every answer stays
/// byte-identical to the pre-kill baseline.
#[test]
fn node_death_under_concurrent_clients_is_invisible() {
    let vh = engine(4);
    let server = default_server(&vh);
    let texts = vectorh_tpch::sql_texts::frontdoor_mix_texts();
    let baselines: Vec<Vec<Vec<Value>>> = texts.iter().map(|sql| vh.query(sql).unwrap()).collect();

    let n_clients = 6;
    let per_client = 6;
    let completed = Arc::new(AtomicUsize::new(0));
    let addr = server.addr();
    let mut handles = Vec::new();
    for c in 0..n_clients {
        let completed = completed.clone();
        let baselines = baselines.clone();
        handles.push(std::thread::spawn(move || {
            let mut client = Client::connect(addr).unwrap();
            let mut absorbed = 0u64;
            for i in 0..per_client {
                let qi = (c + i) % texts.len();
                let outcome = client
                    .query_detailed(texts[qi])
                    .unwrap_or_else(|e| panic!("client {c} query {i} failed: {e}"));
                assert_eq!(outcome.rows, baselines[qi], "client {c} query {i} diverged");
                absorbed += outcome.retries_absorbed;
                completed.fetch_add(1, Ordering::SeqCst);
            }
            absorbed
        }));
    }
    // Kill a worker once the run is warm; surviving replicas cover reads.
    while completed.load(Ordering::SeqCst) < n_clients {
        std::thread::yield_now();
    }
    vh.kill_node(NodeId(2)).unwrap();
    let client_absorbed: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();

    let totals = vh.server_stats().totals();
    assert_eq!(
        totals.queries_served,
        (n_clients * per_client) as u64,
        "every query must be served"
    );
    assert_eq!(
        totals.retries_absorbed, client_absorbed,
        "server-side and Done-frame retry counts must agree"
    );
    assert!(!vh.workers().contains(&NodeId(2)), "the node really died");
}

#[test]
fn server_stats_probe_counts_per_session() {
    let vh = engine(3);
    let server = default_server(&vh);
    let sql = vectorh_tpch::sql_texts::sql_text(6).unwrap();
    let mut a = Client::connect(server.addr()).unwrap();
    let mut b = Client::connect(server.addr()).unwrap();
    for _ in 0..3 {
        a.query(sql).unwrap();
    }
    b.query(sql).unwrap();
    let sessions = vh.server_stats().sessions();
    let served: Vec<u64> = sessions.iter().map(|(_, c)| c.queries_served).collect();
    assert_eq!(sessions.len(), 2);
    assert!(served.contains(&3) && served.contains(&1), "{served:?}");
}
