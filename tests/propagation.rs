//! Crash-safety of chunk-level update propagation, step by step.
//!
//! `txn::propagate` rewrites a partition chunk-by-chunk under a WAL
//! protocol (`ChunkRewriteBegin` / `ChunkRewritten` / `Checkpoint`) with a
//! named [`FaultSite::Propagation`] crash point before every state
//! transition. This suite walks *every* crash point: a directed one-shot
//! fault kills a forced propagation at that exact step, and
//! [`vectorh::recover_partition`] — the same entry point the engine's
//! background tick uses — must then restore a queryable, PDT-consistent
//! partition: the full table contents still equal an exactly-tracked
//! model, and a clean follow-up propagation goes through and checkpoints.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use vectorh::{ClusterConfig, TableBuilder, VectorH};
use vectorh_common::fault::{FaultAction, FaultHook, FaultSite, SharedFaultHook};
use vectorh_common::{DataType, Value};
use vectorh_tpch::baseline::canonical;
use vectorh_txn::LogRecord;

/// One-shot directed fault: fires the configured action at the first
/// `Propagation` consult whose detail contains `needle`, then disarms.
#[derive(Debug)]
struct CrashAtStep {
    needle: String,
    action: FaultAction,
    armed: AtomicBool,
    fired: AtomicU64,
}

impl CrashAtStep {
    fn new(needle: &str, action: FaultAction) -> Arc<CrashAtStep> {
        Arc::new(CrashAtStep {
            needle: needle.to_string(),
            action,
            armed: AtomicBool::new(true),
            fired: AtomicU64::new(0),
        })
    }
}

impl FaultHook for CrashAtStep {
    fn decide(&self, site: FaultSite, detail: &str, _attempt: u32) -> FaultAction {
        if site == FaultSite::Propagation
            && detail.contains(&self.needle)
            && self.armed.swap(false, Ordering::SeqCst)
        {
            self.fired.fetch_add(1, Ordering::SeqCst);
            return self.action;
        }
        FaultAction::None
    }
}

/// The propagation protocol's crash points, in execution order. `append`
/// is only reached when tail inserts overflow the last chunk, which the
/// per-cycle workload guarantees (80 fresh rows > rows_per_chunk).
const STEPS: [&str; 7] = [
    "#begin",
    "#rewrite-begin:",
    "#rewrite-data:",
    "#rewritten:",
    "#append",
    "#checkpoint",
    "#gc",
];

fn scan_matches_model(vh: &VectorH, model: &BTreeMap<i64, i64>, ctx: &str) {
    let got = canonical(vh.query("SELECT k, v FROM prop_t").unwrap());
    let want = canonical(
        model
            .iter()
            .map(|(k, v)| vec![Value::I64(*k), Value::I64(*v)])
            .collect(),
    );
    assert_eq!(got, want, "prop_t diverged from the model {ctx}");
}

#[test]
fn every_propagation_crash_point_recovers_to_a_consistent_partition() {
    let vh = VectorH::start(ClusterConfig {
        nodes: 3,
        rows_per_chunk: 64,
        ..Default::default()
    })
    .unwrap();
    vh.create_table(
        TableBuilder::new("prop_t")
            .column("k", DataType::I64)
            .column("v", DataType::I64)
            .partition_by(&["k"], 1),
    )
    .unwrap();

    // A propagated stable image to rewrite against.
    let mut model: BTreeMap<i64, i64> = BTreeMap::new();
    let mut next_k: i64 = 0;
    let mut fresh = |model: &mut BTreeMap<i64, i64>, n: i64| -> Vec<Vec<Value>> {
        (0..n)
            .map(|_| {
                let k = next_k;
                next_k += 1;
                model.insert(k, k * 3);
                vec![Value::I64(k), Value::I64(k * 3)]
            })
            .collect()
    };
    let rows = fresh(&mut model, 96);
    vh.trickle_insert("prop_t", rows).unwrap();
    vh.propagate_table("prop_t", true).unwrap();

    let rt = vh.table("prop_t").unwrap();
    let pid = rt.pids[0];
    let kinds = [
        FaultAction::CrashBefore,
        FaultAction::CrashMid,
        FaultAction::CrashAfter,
    ];

    for (i, step) in STEPS.iter().enumerate() {
        // Dirty a stable chunk (delete + modify at low, long-propagated
        // keys) and append a tail bigger than one chunk, so the plan
        // reaches every protocol step: chunk rewrites, tail-chunk appends,
        // checkpoint, GC.
        let gone = *model.keys().next().unwrap();
        assert_eq!(
            vh.delete_by_keys("prop_t", 0, &[Value::I64(gone)]).unwrap(),
            1
        );
        model.remove(&gone);
        let touched = *model.keys().next().unwrap();
        let bumped = model[&touched] + 1;
        let pred =
            vectorh::Expr::InList(Box::new(vectorh::Expr::Col(0)), vec![Value::I64(touched)]);
        assert_eq!(
            vh.update_where("prop_t", &pred, 1, Value::I64(bumped))
                .unwrap(),
            1
        );
        model.insert(touched, bumped);
        let rows = fresh(&mut model, 80);
        vh.trickle_insert("prop_t", rows).unwrap();

        // Crash the forced propagation at exactly this step.
        let hook = CrashAtStep::new(step, kinds[i % kinds.len()]);
        vh.install_fault_hook(Some(hook.clone() as SharedFaultHook));
        let out = vh.propagate_table("prop_t", true);
        vh.install_fault_hook(None);
        assert_eq!(hook.fired.load(Ordering::SeqCst), 1, "never reached {step}");
        assert!(out.is_err(), "crash at {step} did not surface");

        // Recovery — the engine's own entry point, not a retry: repair the
        // WAL tail, re-resolve transactions, rebuild the PDT on whichever
        // stable image survived (pre-commit: the old one; post-commit: the
        // freshly installed one).
        let stable = rt.stores[0].read().row_count();
        vectorh::recover_partition(&vh.coordinator, &vh.txns, pid, stable, &rt.wals[0]).unwrap();

        // Queryable and PDT-consistent: nothing acknowledged was lost,
        // nothing uncommitted surfaced.
        scan_matches_model(&vh, &model, &format!("after recovering a {step} crash"));

        // And the partition is fully serviceable: a clean propagation run
        // lands its checkpoint and the contents are unchanged.
        vh.propagate_table("prop_t", true).unwrap();
        let (ckpt_rows, tail) = rt.wals[0].read_since_checkpoint().unwrap();
        assert_eq!(
            ckpt_rows as usize,
            model.len(),
            "checkpoint after the {step} cycle does not cover the image"
        );
        // Only MinMax maintenance may follow the checkpoint — every update
        // record is folded into the stable image it describes.
        assert!(
            !tail.iter().any(|r| matches!(
                r,
                LogRecord::Insert { .. } | LogRecord::Delete { .. } | LogRecord::Modify { .. }
            )),
            "update records left past the checkpoint after the {step} cycle"
        );
        scan_matches_model(&vh, &model, &format!("after repropagating past {step}"));
    }
}
