//! YARN elasticity end to end (§4): out-of-band containers, preemption
//! shrinking the query scheduler's budget, renegotiation growing it back.

use vectorh::{ClusterConfig, TableBuilder, VectorH};
use vectorh_common::{DataType, Value};

fn engine() -> VectorH {
    VectorH::start(ClusterConfig {
        nodes: 3,
        cores_per_node: 4,
        rows_per_chunk: 256,
        ..Default::default()
    })
    .unwrap()
}

fn fixture(vh: &VectorH) {
    vh.create_table(
        TableBuilder::new("t")
            .column("k", DataType::I64)
            .column("v", DataType::I64)
            .partition_by(&["k"], 6),
    )
    .unwrap();
    vh.insert_rows(
        "t",
        (0..3000)
            .map(|i| vec![Value::I64(i), Value::I64(i % 7)])
            .collect(),
    )
    .unwrap();
}

#[test]
fn starts_with_full_footprint() {
    let vh = engine();
    assert_eq!(vh.total_cores_budget(), 3 * 4);
    assert_eq!(vh.streams_per_node(), 2); // capped by config
}

#[test]
fn preemption_shrinks_parallelism_queries_still_run() {
    let vh = engine();
    fixture(&vh);
    // A higher-priority tenant takes 3 of 4 cores on every node.
    let rm = vh.rm().clone();
    let vip = rm.register_app(9);
    for node in vh.workers() {
        for _ in 0..3 {
            rm.request_container(vip, node, 1, 1 << 30).unwrap();
        }
    }
    // The dbAgent's dummy containers notice on the next poll.
    assert!(vh.poll_yarn(), "footprint changed");
    assert!(
        vh.total_cores_budget() < 12,
        "budget shrank: {}",
        vh.total_cores_budget()
    );
    assert_eq!(
        vh.streams_per_node(),
        1,
        "scheduler retuned to fewer streams"
    );
    // Queries keep running with fewer cores.
    let rows = vh
        .query("SELECT v, count(*) FROM t GROUP BY v ORDER BY v")
        .unwrap();
    assert_eq!(rows.len(), 7);
    let total: i64 = rows.iter().map(|r| r[1].as_i64().unwrap()).sum();
    assert_eq!(total, 3000);
}

#[test]
fn renegotiation_grows_back_after_vip_leaves() {
    let vh = engine();
    let rm = vh.rm().clone();
    let vip = rm.register_app(9);
    let mut grants = Vec::new();
    for node in vh.workers() {
        for _ in 0..2 {
            grants.push(rm.request_container(vip, node, 1, 1 << 30).unwrap());
        }
    }
    vh.poll_yarn();
    let shrunk = vh.total_cores_budget();
    assert!(shrunk < 12);
    for g in grants {
        rm.release_container(g.id).unwrap();
    }
    // Periodic renegotiation returns to the target footprint.
    vh.poll_yarn();
    assert_eq!(vh.total_cores_budget(), 12, "back to target after VIP left");
}

#[test]
fn voluntary_shrink_for_idle_workloads() {
    let vh = engine();
    fixture(&vh);
    vh.shrink_footprint(1).unwrap();
    assert_eq!(vh.total_cores_budget(), 3);
    // Minimal-footprint queries still return correct answers.
    let rows = vh.query("SELECT count(*) FROM t").unwrap();
    assert_eq!(rows[0][0], Value::I64(3000));
    // Free resources are visible to other tenants.
    let (free_cores, _) = {
        let report = vh.rm().cluster_report();
        (report.iter().map(|(_, c, _)| *c).min().unwrap(), ())
    };
    assert!(
        free_cores >= 3,
        "released cores are available: {free_cores}"
    );
}
