//! Transactional behaviour end to end: snapshot isolation, conflicts,
//! durability/recovery via WAL + 2PC, update propagation (§6).

use vectorh::{ClusterConfig, TableBuilder, VectorH};
use vectorh_common::{DataType, Value};
use vectorh_exec::expr::Expr;
use vectorh_txn::twophase::{CrashPoint, Outcome, TwoPhaseCoordinator};
use vectorh_txn::LogRecord;

fn engine() -> VectorH {
    VectorH::start(ClusterConfig {
        nodes: 3,
        rows_per_chunk: 128,
        hdfs_block_size: 16 * 1024,
        ..Default::default()
    })
    .unwrap()
}

fn fixture(vh: &VectorH) {
    vh.create_table(
        TableBuilder::new("acct")
            .column("id", DataType::I64)
            .column("bal", DataType::I64)
            .partition_by(&["id"], 4),
    )
    .unwrap();
    vh.insert_rows(
        "acct",
        (0..200)
            .map(|i| vec![Value::I64(i), Value::I64(100)])
            .collect(),
    )
    .unwrap();
}

#[test]
fn updates_are_atomic_and_visible() {
    let vh = engine();
    fixture(&vh);
    let n = vh
        .update_where(
            "acct",
            &Expr::lt(Expr::col(0), Expr::lit(Value::I64(50))),
            1,
            Value::I64(0),
        )
        .unwrap();
    assert_eq!(n, 50);
    let rows = vh.query("SELECT sum(bal) FROM acct").unwrap();
    assert_eq!(rows[0][0], Value::I64(150 * 100));
}

#[test]
fn concurrent_conflicting_updates_abort_one() {
    let vh = engine();
    fixture(&vh);
    let rt = vh.table("acct").unwrap();
    // Two raw transactions touching the same tuple.
    let mut t1 = vh.txns.begin(&rt.pids).unwrap();
    let mut t2 = vh.txns.begin(&rt.pids).unwrap();
    let pid = rt.pids[0];
    vh.txns
        .modify_at(&mut t1, pid, 0, 1, Value::I64(1))
        .unwrap();
    vh.txns
        .modify_at(&mut t2, pid, 0, 1, Value::I64(2))
        .unwrap();
    vh.txns.commit(t1, |_, _| Ok(())).unwrap();
    let err = vh.txns.commit(t2, |_, _| Ok(())).unwrap_err();
    assert!(err.to_string().contains("conflict"), "{err}");
}

#[test]
fn wal_replay_reconstructs_pdts() {
    let vh = engine();
    fixture(&vh);
    vh.delete_where("acct", &Expr::lt(Expr::col(0), Expr::lit(Value::I64(10))))
        .unwrap();
    vh.trickle_insert("acct", vec![vec![Value::I64(1000), Value::I64(77)]])
        .unwrap();
    let want = vh.query("SELECT count(*), sum(bal) FROM acct").unwrap();

    // Simulate a cold restart of the update state: fresh txn manager,
    // replay committed WAL records per partition.
    let rt = vh.table("acct").unwrap();
    let fresh = vectorh_txn::TransactionManager::new(vectorh_txn::TxnConfig::default());
    for (i, pid) in rt.pids.iter().enumerate() {
        let store_rows = rt.stores[i].read().row_count();
        fresh.register_partition(*pid, store_rows);
        let committed = vh.coordinator.committed_txns_of(&rt.wals[i]).unwrap();
        for txn in committed {
            let recs = TwoPhaseCoordinator::records_of(&rt.wals[i], txn).unwrap();
            fresh.replay(*pid, &recs).unwrap();
        }
    }
    // The recovered image must match: count via merge plans.
    let mut total = 0u64;
    for pid in &rt.pids {
        total += fresh.visible_rows(*pid).unwrap();
    }
    assert_eq!(Value::I64(total as i64), want[0][0]);
}

#[test]
fn two_phase_commit_crash_points() {
    let vh = engine();
    fixture(&vh);
    let coordinator = &vh.coordinator;
    let rt = vh.table("acct").unwrap();
    let recs = vec![LogRecord::Insert {
        txn: 500,
        rid: 0,
        tag: 9,
        values: vec![Value::I64(-1), Value::I64(0)],
    }];
    // Crash after prepare: no decision → aborted on recovery.
    let out = coordinator
        .commit_distributed(
            500,
            &[(rt.pids[0], &rt.wals[0], &recs)],
            CrashPoint::AfterPrepare,
        )
        .unwrap();
    assert_eq!(out, Outcome::InDoubt);
    assert!(!coordinator.recover_decision(500).unwrap());
    // Crash after the decision: committed on recovery.
    let out = coordinator
        .commit_distributed(
            501,
            &[(rt.pids[1], &rt.wals[1], &recs)],
            CrashPoint::AfterGlobalCommit,
        )
        .unwrap();
    assert_eq!(out, Outcome::InDoubt);
    assert!(coordinator.recover_decision(501).unwrap());
    assert!(coordinator
        .committed_txns_of(&rt.wals[1])
        .unwrap()
        .contains(&501));
}

#[test]
fn propagation_persists_updates_into_chunks() {
    let vh = engine();
    fixture(&vh);
    vh.delete_where("acct", &Expr::lt(Expr::col(0), Expr::lit(Value::I64(20))))
        .unwrap();
    vh.update_where(
        "acct",
        &Expr::ge(Expr::col(0), Expr::lit(Value::I64(190))),
        1,
        Value::I64(5),
    )
    .unwrap();
    let before = vh.query("SELECT count(*), sum(bal) FROM acct").unwrap();
    let done = vh.propagate_table("acct", true).unwrap();
    assert!(done > 0, "at least one partition flushed");
    let after = vh.query("SELECT count(*), sum(bal) FROM acct").unwrap();
    assert_eq!(before, after, "propagation must not change query results");
    // PDTs empty now; storage rows match the visible count.
    let rt = vh.table("acct").unwrap();
    let stored: u64 = rt.stores.iter().map(|s| s.read().row_count()).sum();
    assert_eq!(Value::I64(stored as i64), after[0][0]);
}

#[test]
fn log_shipping_for_replicated_tables() {
    let vh = engine();
    vh.create_table(
        TableBuilder::new("dim")
            .column("id", DataType::I64)
            .column("name", DataType::Str),
    )
    .unwrap();
    vh.insert_rows(
        "dim",
        (0..10)
            .map(|i| vec![Value::I64(i), Value::Str(format!("d{i}"))])
            .collect(),
    )
    .unwrap();
    assert_eq!(vh.shipper.shipped_batches(), 0);
    vh.update_where(
        "dim",
        &Expr::eq(Expr::col(0), Expr::lit(Value::I64(3))),
        1,
        Value::Str("patched".into()),
    )
    .unwrap();
    // Replicated-table commits broadcast their log to the other workers.
    assert_eq!(vh.shipper.shipped_batches(), 1);
    assert!(vh.shipper.shipped_bytes() > 0);
    let rows = vh.query("SELECT name FROM dim WHERE id = 3").unwrap();
    assert_eq!(rows[0][0], Value::Str("patched".into()));
}

/// Two concurrent front-door sessions interleave trickle inserts with Q6
/// and must each observe only *stable snapshots*: every result equals the
/// baseline plus a whole number of committed insert batches (a torn batch
/// would show as a non-multiple), snapshots never move backwards within a
/// session, and each session reads its own committed writes.
#[test]
fn threaded_sessions_interleaving_trickle_and_q6_see_stable_snapshots() {
    use std::sync::Arc;
    use vectorh_server::{Client, Server, ServerConfig};

    /// A single-partition batch of `rows` Q6-eligible lineitems (same
    /// l_orderkey ⇒ same partition ⇒ the 2PC commit is atomic w.r.t. a
    /// concurrent scan's per-partition plan reads). Each row contributes
    /// 1000.00 × 0.06 of revenue.
    fn q6_batch(orderkey: i64, rows: usize) -> Vec<Vec<Value>> {
        let day = |m, d| Value::Date(vectorh_common::types::date::to_days(1994, m, d));
        (0..rows)
            .map(|i| {
                vec![
                    Value::I64(orderkey),
                    Value::I64(1),
                    Value::I64(1),
                    Value::I64(i as i64 + 1),
                    Value::Decimal(100, 2),     // qty 1.00 < 24
                    Value::Decimal(100_000, 2), // price 1000.00
                    Value::Decimal(6, 2),       // disc 0.06 ∈ [0.05, 0.07]
                    Value::Decimal(0, 2),
                    Value::Str("N".into()),
                    Value::Str("O".into()),
                    day(6, 1), // 1994 ⇒ inside the Q6 window
                    day(7, 1),
                    day(8, 1),
                    Value::Str("NONE".into()),
                    Value::Str("MAIL".into()),
                    Value::Str("snapshot".into()),
                ]
            })
            .collect()
    }

    fn revenue(rows: &[Vec<Value>]) -> i64 {
        match rows[0][0] {
            Value::Decimal(units, _) => units,
            ref v => panic!("Q6 must aggregate to a decimal, got {v:?}"),
        }
    }

    let vh = Arc::new(
        VectorH::start(ClusterConfig {
            nodes: 3,
            rows_per_chunk: 256,
            hdfs_block_size: 32 * 1024,
            ..Default::default()
        })
        .unwrap(),
    );
    vectorh_tpch::schema::setup(&vh, 0.002, 4, 20260707).unwrap();
    let server = Server::start(vh.clone(), ServerConfig::default()).unwrap();
    let sql = vectorh_tpch::sql_texts::sql_text(6).unwrap();

    // Calibrate while quiescent: revenue delta of one committed batch.
    let base = revenue(&vh.query(sql).unwrap());
    vh.trickle_insert("lineitem", q6_batch(9_000_001, 5))
        .unwrap();
    let delta = revenue(&vh.query(sql).unwrap()) - base;
    assert!(delta > 0, "probe batch must move Q6 revenue");

    let per_session_batches = 6i64;
    let queries_per_session = 12;
    let max_batches = 1 + 2 * per_session_batches; // probe + both sessions
    let addr = server.addr();
    let mut handles = Vec::new();
    for s in 0..2i64 {
        let vh = vh.clone();
        handles.push(std::thread::spawn(move || {
            let sql = vectorh_tpch::sql_texts::sql_text(6).unwrap();
            let mut client = Client::connect(addr).unwrap();
            let mut last_k = 0i64;
            let mut own = 0i64;
            for i in 0..queries_per_session {
                if i % 2 == 1 && own < per_session_batches {
                    vh.trickle_insert("lineitem", q6_batch(9_100_000 + s * 1000 + own, 5))
                        .unwrap();
                    own += 1;
                }
                let diff = revenue(&client.query(sql).unwrap()) - base;
                assert!(diff >= 0, "session {s}: revenue below baseline");
                assert_eq!(
                    diff % delta,
                    0,
                    "session {s} observed a torn batch: +{diff} is not a \
                     whole number of batches (delta {delta})"
                );
                let k = diff / delta;
                assert!(k <= max_batches, "session {s} saw phantom batches");
                assert!(
                    k >= last_k,
                    "session {s}: snapshot moved backwards ({last_k} → {k})"
                );
                assert!(
                    k >= own,
                    "session {s}: lost its own committed write ({own} committed, saw {k})"
                );
                last_k = k;
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    // Quiescent again: everything committed is visible.
    let k = (revenue(&vh.query(sql).unwrap()) - base) / delta;
    assert_eq!(k, max_batches, "all committed batches visible at the end");
}
