//! Transactional behaviour end to end: snapshot isolation, conflicts,
//! durability/recovery via WAL + 2PC, update propagation (§6).

use vectorh::{ClusterConfig, TableBuilder, VectorH};
use vectorh_common::{DataType, Value};
use vectorh_exec::expr::Expr;
use vectorh_txn::twophase::{CrashPoint, Outcome, TwoPhaseCoordinator};
use vectorh_txn::LogRecord;

fn engine() -> VectorH {
    VectorH::start(ClusterConfig {
        nodes: 3,
        rows_per_chunk: 128,
        hdfs_block_size: 16 * 1024,
        ..Default::default()
    })
    .unwrap()
}

fn fixture(vh: &VectorH) {
    vh.create_table(
        TableBuilder::new("acct")
            .column("id", DataType::I64)
            .column("bal", DataType::I64)
            .partition_by(&["id"], 4),
    )
    .unwrap();
    vh.insert_rows(
        "acct",
        (0..200)
            .map(|i| vec![Value::I64(i), Value::I64(100)])
            .collect(),
    )
    .unwrap();
}

#[test]
fn updates_are_atomic_and_visible() {
    let vh = engine();
    fixture(&vh);
    let n = vh
        .update_where(
            "acct",
            &Expr::lt(Expr::col(0), Expr::lit(Value::I64(50))),
            1,
            Value::I64(0),
        )
        .unwrap();
    assert_eq!(n, 50);
    let rows = vh.query("SELECT sum(bal) FROM acct").unwrap();
    assert_eq!(rows[0][0], Value::I64(150 * 100));
}

#[test]
fn concurrent_conflicting_updates_abort_one() {
    let vh = engine();
    fixture(&vh);
    let rt = vh.table("acct").unwrap();
    // Two raw transactions touching the same tuple.
    let mut t1 = vh.txns.begin(&rt.pids).unwrap();
    let mut t2 = vh.txns.begin(&rt.pids).unwrap();
    let pid = rt.pids[0];
    vh.txns
        .modify_at(&mut t1, pid, 0, 1, Value::I64(1))
        .unwrap();
    vh.txns
        .modify_at(&mut t2, pid, 0, 1, Value::I64(2))
        .unwrap();
    vh.txns.commit(t1, |_, _| Ok(())).unwrap();
    let err = vh.txns.commit(t2, |_, _| Ok(())).unwrap_err();
    assert!(err.to_string().contains("conflict"), "{err}");
}

#[test]
fn wal_replay_reconstructs_pdts() {
    let vh = engine();
    fixture(&vh);
    vh.delete_where("acct", &Expr::lt(Expr::col(0), Expr::lit(Value::I64(10))))
        .unwrap();
    vh.trickle_insert("acct", vec![vec![Value::I64(1000), Value::I64(77)]])
        .unwrap();
    let want = vh.query("SELECT count(*), sum(bal) FROM acct").unwrap();

    // Simulate a cold restart of the update state: fresh txn manager,
    // replay committed WAL records per partition.
    let rt = vh.table("acct").unwrap();
    let fresh = vectorh_txn::TransactionManager::new(vectorh_txn::TxnConfig::default());
    for (i, pid) in rt.pids.iter().enumerate() {
        let store_rows = rt.stores[i].read().row_count();
        fresh.register_partition(*pid, store_rows);
        let committed = vh.coordinator.committed_txns_of(&rt.wals[i]).unwrap();
        for txn in committed {
            let recs = TwoPhaseCoordinator::records_of(&rt.wals[i], txn).unwrap();
            fresh.replay(*pid, &recs).unwrap();
        }
    }
    // The recovered image must match: count via merge plans.
    let mut total = 0u64;
    for pid in &rt.pids {
        total += fresh.visible_rows(*pid).unwrap();
    }
    assert_eq!(Value::I64(total as i64), want[0][0]);
}

#[test]
fn two_phase_commit_crash_points() {
    let vh = engine();
    fixture(&vh);
    let coordinator = &vh.coordinator;
    let rt = vh.table("acct").unwrap();
    let recs = vec![LogRecord::Insert {
        txn: 500,
        rid: 0,
        tag: 9,
        values: vec![Value::I64(-1), Value::I64(0)],
    }];
    // Crash after prepare: no decision → aborted on recovery.
    let out = coordinator
        .commit_distributed(
            500,
            &[(rt.pids[0], &rt.wals[0], &recs)],
            CrashPoint::AfterPrepare,
        )
        .unwrap();
    assert_eq!(out, Outcome::InDoubt);
    assert!(!coordinator.recover_decision(500).unwrap());
    // Crash after the decision: committed on recovery.
    let out = coordinator
        .commit_distributed(
            501,
            &[(rt.pids[1], &rt.wals[1], &recs)],
            CrashPoint::AfterGlobalCommit,
        )
        .unwrap();
    assert_eq!(out, Outcome::InDoubt);
    assert!(coordinator.recover_decision(501).unwrap());
    assert!(coordinator
        .committed_txns_of(&rt.wals[1])
        .unwrap()
        .contains(&501));
}

#[test]
fn propagation_persists_updates_into_chunks() {
    let vh = engine();
    fixture(&vh);
    vh.delete_where("acct", &Expr::lt(Expr::col(0), Expr::lit(Value::I64(20))))
        .unwrap();
    vh.update_where(
        "acct",
        &Expr::ge(Expr::col(0), Expr::lit(Value::I64(190))),
        1,
        Value::I64(5),
    )
    .unwrap();
    let before = vh.query("SELECT count(*), sum(bal) FROM acct").unwrap();
    let done = vh.propagate_table("acct", true).unwrap();
    assert!(done > 0, "at least one partition flushed");
    let after = vh.query("SELECT count(*), sum(bal) FROM acct").unwrap();
    assert_eq!(before, after, "propagation must not change query results");
    // PDTs empty now; storage rows match the visible count.
    let rt = vh.table("acct").unwrap();
    let stored: u64 = rt.stores.iter().map(|s| s.read().row_count()).sum();
    assert_eq!(Value::I64(stored as i64), after[0][0]);
}

#[test]
fn log_shipping_for_replicated_tables() {
    let vh = engine();
    vh.create_table(
        TableBuilder::new("dim")
            .column("id", DataType::I64)
            .column("name", DataType::Str),
    )
    .unwrap();
    vh.insert_rows(
        "dim",
        (0..10)
            .map(|i| vec![Value::I64(i), Value::Str(format!("d{i}"))])
            .collect(),
    )
    .unwrap();
    assert_eq!(vh.shipper.shipped_batches(), 0);
    vh.update_where(
        "dim",
        &Expr::eq(Expr::col(0), Expr::lit(Value::I64(3))),
        1,
        Value::Str("patched".into()),
    )
    .unwrap();
    // Replicated-table commits broadcast their log to the other workers.
    assert_eq!(vh.shipper.shipped_batches(), 1);
    assert!(vh.shipper.shipped_bytes() > 0);
    let rows = vh.query("SELECT name FROM dim WHERE id = 3").unwrap();
    assert_eq!(rows[0][0], Value::Str("patched".into()));
}
