//! Cluster-mode equivalence: the engine over the real TCP fabric.
//!
//! [`ClusterMode::Tcp`] swaps the exchange layer's intra-process channels
//! for framed, CRC-checked, credit-flow-controlled TCP streams between
//! per-node loopback endpoints — the transport half of the paper's
//! MPI-based DXchg (§5). Nothing above the exchange may notice: every
//! query must return exactly the answer the in-process engine returns,
//! byte for byte after canonicalization, while the per-channel counters
//! prove the bytes really crossed sockets.

use vectorh::{ClusterConfig, ClusterMode, VectorH};
use vectorh_tpch::baseline::canonical;
use vectorh_tpch::queries::{build_query, run_with};

const QUERIES: &[usize] = &[1, 3, 6, 12];

fn engine(mode: ClusterMode) -> VectorH {
    let vh = VectorH::start(ClusterConfig {
        nodes: 3,
        rows_per_chunk: 512,
        hdfs_block_size: 64 * 1024,
        streams_per_node: 2,
        cluster_mode: mode,
        ..Default::default()
    })
    .unwrap();
    vectorh_tpch::schema::setup(&vh, 0.002, 4, 20260707).unwrap();
    vh
}

fn answers(vh: &VectorH) -> Vec<Vec<Vec<vectorh_common::Value>>> {
    QUERIES
        .iter()
        .map(|&qn| {
            let q = build_query(qn).unwrap();
            canonical(run_with(&q, |p| vh.query_logical(p)).unwrap_or_else(|e| {
                panic!("Q{qn} failed over {}: {e}", vh.transport_mode());
            }))
        })
        .collect()
}

/// The headline guarantee: identical answers over sockets and in-proc.
#[test]
fn tcp_cluster_answers_match_inproc_byte_for_byte() {
    let inproc = engine(ClusterMode::InProc);
    assert_eq!(inproc.transport_mode(), "inproc");
    let want = answers(&inproc);

    let tcp = engine(ClusterMode::Tcp);
    assert_eq!(tcp.transport_mode(), "tcp");
    let got = answers(&tcp);

    for (i, &qn) in QUERIES.iter().enumerate() {
        assert_eq!(got[i], want[i], "Q{qn}: tcp answer diverged from in-proc");
    }

    // The answers crossed real exchanges: per-channel counters moved. The
    // probe is transport-agnostic — both engines expose the same exchange
    // channel names, which is exactly what makes the in-proc vs TCP
    // comparison in EXPERIMENTS.md an apples-to-apples one.
    let names = |vh: &VectorH| {
        let mut n: Vec<String> = vh.net_channels().into_iter().map(|(n, _)| n).collect();
        n.sort();
        n
    };
    let tcp_channels = tcp.net_channels();
    let (msgs, bytes): (u64, u64) = tcp_channels
        .iter()
        .fold((0, 0), |(m, b), (_, s)| (m + s.messages, b + s.bytes));
    assert!(
        msgs > 0 && bytes > 0,
        "frames actually flowed: {tcp_channels:?}"
    );
    assert!(
        tcp_channels.iter().any(|(n, _)| n.starts_with("DXchg")),
        "exchange traffic must be attributed to DXchg channels: {tcp_channels:?}"
    );
    assert_eq!(
        names(&tcp),
        names(&inproc),
        "both transports run the same exchange structure"
    );
}

/// Trickle updates ride the same fabric: DML then queries over TCP agree
/// with the in-proc engine fed the identical update.
#[test]
fn tcp_cluster_survives_trickle_updates() {
    let data = vectorh_tpch::gen::generate(0.002, 20260707);
    let set = vectorh_tpch::refresh::refresh_set(&data, 6, 17);

    let run = |mode: ClusterMode| {
        let vh = engine(mode);
        vectorh_tpch::refresh::rf1(&vh, &set).unwrap();
        vectorh_tpch::refresh::rf2(&vh, &set).unwrap();
        answers(&vh)
    };
    assert_eq!(
        run(ClusterMode::Tcp),
        run(ClusterMode::InProc),
        "post-update answers diverged between transports"
    );
}
