//! End-to-end SQL on a simulated cluster: parse → optimize → distribute →
//! execute, with verification against hand-computed answers.

use vectorh::{ClusterConfig, TableBuilder, VectorH};
use vectorh_common::{DataType, Value};

fn engine() -> VectorH {
    VectorH::start(ClusterConfig {
        nodes: 3,
        rows_per_chunk: 128,
        hdfs_block_size: 16 * 1024,
        ..Default::default()
    })
    .unwrap()
}

fn sales_fixture(vh: &VectorH) {
    vh.create_table(
        TableBuilder::new("sales")
            .column("id", DataType::I64)
            .column("store", DataType::Str)
            .column("amount", DataType::Decimal { scale: 2 })
            .column("day", DataType::Date)
            .partition_by(&["id"], 6)
            .clustered_by(&["day"]),
    )
    .unwrap();
    let d0 = vectorh_common::types::date::parse("1995-01-01").unwrap();
    let rows: Vec<Vec<Value>> = (0..1000)
        .map(|i| {
            vec![
                Value::I64(i),
                Value::Str(["north", "south", "east"][(i % 3) as usize].into()),
                Value::Decimal((i % 100) * 100, 2), // 0.00 .. 99.00
                Value::Date(d0 + (i % 365) as i32),
            ]
        })
        .collect();
    vh.insert_rows("sales", rows).unwrap();
}

#[test]
fn count_sum_avg_with_predicates() {
    let vh = engine();
    sales_fixture(&vh);
    let rows = vh.query("SELECT count(*) FROM sales").unwrap();
    assert_eq!(rows, vec![vec![Value::I64(1000)]]);

    let rows = vh
        .query("SELECT count(*) FROM sales WHERE amount < 10")
        .unwrap();
    // amounts 0..9 appear for i%100 in 0..10 → 10 per 100 → 100 rows
    assert_eq!(rows, vec![vec![Value::I64(100)]]);

    let rows = vh
        .query("SELECT sum(amount), avg(amount) FROM sales WHERE store = 'north'")
        .unwrap();
    let north_sum: i64 = (0..1000i64)
        .filter(|i| i % 3 == 0)
        .map(|i| (i % 100) * 100)
        .sum();
    assert_eq!(rows[0][0], Value::Decimal(north_sum, 2));
}

#[test]
fn group_by_order_by_limit() {
    let vh = engine();
    sales_fixture(&vh);
    let rows = vh
        .query(
            "SELECT store, count(*) AS n, sum(amount) AS total FROM sales \
             GROUP BY store ORDER BY store",
        )
        .unwrap();
    assert_eq!(rows.len(), 3);
    assert_eq!(rows[0][0], Value::Str("east".into()));
    let n_total: i64 = rows.iter().map(|r| r[1].as_i64().unwrap()).sum();
    assert_eq!(n_total, 1000);

    let rows = vh
        .query("SELECT store, sum(amount) AS total FROM sales GROUP BY store ORDER BY total DESC LIMIT 1")
        .unwrap();
    assert_eq!(rows.len(), 1);
}

#[test]
fn date_range_queries_use_minmax_pruning() {
    let vh = engine();
    sales_fixture(&vh);
    let before = vh.fs().stats().snapshot();
    let rows = vh
        .query("SELECT count(*) FROM sales WHERE day < '1995-01-11'")
        .unwrap();
    let narrow = vh.fs().stats().snapshot().since(&before);
    // days 0..9: i%365 in 0..10 → i in {0..9, 365..374, 730..739}
    assert_eq!(rows[0][0], Value::I64(30));

    let before = vh.fs().stats().snapshot();
    vh.query("SELECT count(*) FROM sales WHERE day < '1999-01-01'")
        .unwrap();
    let wide = vh.fs().stats().snapshot().since(&before);
    assert!(
        narrow.read_bytes() < wide.read_bytes(),
        "selective scan must touch fewer bytes ({} vs {}) thanks to MinMax skipping",
        narrow.read_bytes(),
        wide.read_bytes()
    );
}

#[test]
fn joins_via_sql() {
    let vh = engine();
    vh.create_table(
        TableBuilder::new("orders2")
            .column("ok", DataType::I64)
            .column("cust", DataType::I64)
            .partition_by(&["ok"], 4),
    )
    .unwrap();
    vh.create_table(
        TableBuilder::new("items2")
            .column("ok", DataType::I64)
            .column("price", DataType::Decimal { scale: 2 })
            .partition_by(&["ok"], 4),
    )
    .unwrap();
    vh.insert_rows(
        "orders2",
        (0..100)
            .map(|i| vec![Value::I64(i), Value::I64(i % 10)])
            .collect(),
    )
    .unwrap();
    vh.insert_rows(
        "items2",
        (0..300)
            .map(|i| vec![Value::I64(i % 100), Value::Decimal(100, 2)])
            .collect(),
    )
    .unwrap();
    // Co-partitioned join on the partition key: a local join, no repartition.
    let explain = vh
        .explain("SELECT count(*) FROM items2 i JOIN orders2 o ON i.ok = o.ok")
        .unwrap();
    assert!(
        explain.contains("Local") || explain.contains("MergeJoin"),
        "{explain}"
    );
    let rows = vh
        .query("SELECT count(*) FROM items2 i JOIN orders2 o ON i.ok = o.ok")
        .unwrap();
    assert_eq!(rows[0][0], Value::I64(300));
    // Grouped join via SQL.
    let rows = vh
        .query(
            "SELECT o.cust, count(*) AS n FROM items2 i JOIN orders2 o ON i.ok = o.ok \
             GROUP BY o.cust ORDER BY n DESC, 1",
        )
        .unwrap();
    assert_eq!(rows.len(), 10);
    assert_eq!(
        rows.iter().map(|r| r[1].as_i64().unwrap()).sum::<i64>(),
        300
    );
}

#[test]
fn profile_shows_distributed_execution() {
    let vh = engine();
    sales_fixture(&vh);
    let (_, profile) = vh
        .query_profiled("SELECT store, count(*) FROM sales GROUP BY store")
        .unwrap();
    // The profile shows the exchange and per-sender pipelines.
    assert!(profile.contains("DXchg"), "{profile}");
    assert!(profile.contains("MScan"), "{profile}");
    let explain = vh
        .explain("SELECT store, count(*) FROM sales GROUP BY store")
        .unwrap();
    assert!(explain.contains("Aggr"), "{explain}");
    assert!(explain.contains("Scan[sales] (partitioned)"), "{explain}");
}

#[test]
fn sql_errors_are_clean() {
    let vh = engine();
    sales_fixture(&vh);
    assert!(vh.query("SELECT nonsense FROM sales").is_err());
    assert!(vh.query("SELECT * FROM missing_table").is_err());
    assert!(vh.query("SELECT store FROM sales GROUP BY").is_err());
}
