//! Real-file backend, end to end.
//!
//! Two families of directed tests for the [`FileStore`] block-store
//! backend:
//!
//! * **Torn-tail crash recovery.** A WAL append that dies mid-write leaves
//!   a partial final frame *on a real file*. A restarted process must
//!   reopen the store from disk, repair the log, and recover a queryable,
//!   PDT-consistent partition in which committed transactions survive and
//!   the torn one is gone. The OS-crash flavour additionally loses every
//!   byte after the last fsync watermark.
//!
//! * **Backend equivalence.** The engine must give byte-for-byte identical
//!   answers whether storage is the in-memory simulation or real files —
//!   on cold TPC-H queries and after trickle updates + propagation.

use std::sync::Arc;

use vectorh::{ClusterConfig, StorageBackend, VectorH};
use vectorh_blockstore::FileStore;
use vectorh_common::fault::{FaultAction, FaultHook, FaultSite};
use vectorh_common::{ColumnData, DataType, NodeId, PartitionId, Schema, Value};
use vectorh_exec::fingerprint_rows;
use vectorh_pdt::merge::apply_plan;
use vectorh_simhdfs::{BlockStore, DefaultPolicy, SimHdfsConfig, StoreRef};
use vectorh_storage::{PartitionStore, StorageConfig};
use vectorh_tpch::baseline::canonical;
use vectorh_tpch::queries::{build_query, run_with};
use vectorh_txn::{LogRecord, TransactionManager, TxnConfig, Wal};

const P: PartitionId = PartitionId(0);

/// A scratch root that survives `FileStore` drops (so a reopen sees the
/// same bytes) and is removed when the guard goes out of scope.
struct ScratchRoot(std::path::PathBuf);

impl ScratchRoot {
    fn new(tag: &str) -> ScratchRoot {
        let dir =
            std::env::temp_dir().join(format!("vh-filestore-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        ScratchRoot(dir)
    }
    fn path(&self) -> &str {
        self.0.to_str().unwrap()
    }
}

impl Drop for ScratchRoot {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn file_store(root: &str) -> Arc<FileStore> {
    Arc::new(
        FileStore::new(
            3,
            SimHdfsConfig {
                block_size: 4096,
                default_replication: 2,
            },
            Arc::new(DefaultPolicy::new(7)),
            root,
        )
        .unwrap(),
    )
}

/// Fires `action` once at `site`, then steps aside — the restarted
/// process has no fault pending.
#[derive(Debug)]
struct OneShot {
    site: FaultSite,
    action: FaultAction,
    fired: std::sync::atomic::AtomicBool,
}

impl FaultHook for OneShot {
    fn decide(&self, site: FaultSite, _detail: &str, _attempt: u32) -> FaultAction {
        if site == self.site && !self.fired.swap(true, std::sync::atomic::Ordering::SeqCst) {
            self.action
        } else {
            FaultAction::None
        }
    }
}

fn schema() -> Schema {
    Schema::of(&[("k", DataType::I64), ("v", DataType::Str)])
}

fn stable_cols(n: i64) -> Vec<ColumnData> {
    vec![
        ColumnData::I64((0..n).collect()),
        ColumnData::Str((0..n).map(|i| format!("s{i}")).collect()),
    ]
}

fn insert(txn: u64, rid: u64, k: i64) -> LogRecord {
    LogRecord::Insert {
        txn,
        rid,
        tag: txn,
        values: vec![Value::I64(k), Value::Str(format!("t{k}"))],
    }
}

/// Replay discipline of the recovery coordinator, inlined: only records of
/// transactions whose `Commit` made it into the repaired log are applied.
fn committed_tail(records: &[LogRecord]) -> Vec<LogRecord> {
    let committed: std::collections::HashSet<u64> = records
        .iter()
        .filter_map(|r| match r {
            LogRecord::Commit { txn, .. } | LogRecord::GlobalCommit { txn } => Some(*txn),
            _ => None,
        })
        .collect();
    records
        .iter()
        .filter(|r| match r {
            LogRecord::Insert { txn, .. }
            | LogRecord::Delete { txn, .. }
            | LogRecord::Modify { txn, .. } => committed.contains(txn),
            _ => false,
        })
        .cloned()
        .collect()
}

/// The merged (stable ⊕ PDT) image a scan would produce.
fn merged_rows(store: &PartitionStore, mgr: &TransactionManager) -> Vec<Vec<Value>> {
    let n = store.row_count() as usize;
    let mut stable = vec![Vec::new(); n];
    let dts = [DataType::I64, DataType::Str];
    for (c, dt) in dts.iter().enumerate() {
        let mut at = 0usize;
        for chunk in 0..store.n_chunks() {
            let col = store.read_column(chunk, c, None).unwrap();
            for r in 0..col.len() {
                stable[at + r].push(col.value_at(r, *dt));
            }
            at += col.len();
        }
    }
    apply_plan(&mgr.scan_plan(P).unwrap(), &stable)
}

#[test]
fn torn_tail_repair_recovers_committed_state_on_real_files() {
    let root = ScratchRoot::new("torn");

    // --- the process that crashes -------------------------------------
    {
        let fs: StoreRef = file_store(root.path());
        let mut store = PartitionStore::new(
            fs.clone(),
            "/db/t/p0/",
            schema(),
            StorageConfig { rows_per_chunk: 64 },
        );
        store.append_rows(&stable_cols(100)).unwrap();

        let wal = Wal::new(fs.clone(), "/vectorh/wal/t0-p0.wal", Some(NodeId(0)));
        // Txn 1 commits cleanly: its batch carries a Commit record, so the
        // append is fsynced.
        wal.append(&[
            LogRecord::TxnBegin { txn: 1 },
            insert(1, 100, 1000),
            LogRecord::Commit { txn: 1, seq: 1 },
        ])
        .unwrap();
        // Txn 2 dies mid-append: the final frame (its Commit) is torn on
        // the real file, and no fsync ever ran for the batch.
        fs.set_fault_hook(Some(Arc::new(OneShot {
            site: FaultSite::WalAppend,
            action: FaultAction::CrashMid,
            fired: Default::default(),
        })));
        assert!(wal
            .append(&[
                LogRecord::TxnBegin { txn: 2 },
                insert(2, 101, 2000),
                LogRecord::Commit { txn: 2, seq: 2 },
            ])
            .is_err());
        // The process is gone; nothing is cleaned up.
    }

    // --- the restarted process ----------------------------------------
    let fs2: StoreRef = file_store(root.path());
    let wal = Wal::new(fs2.clone(), "/vectorh/wal/t0-p0.wal", Some(NodeId(0)));
    let torn = wal.repair().unwrap();
    assert!(torn > 0, "the torn final frame must be detected on disk");
    assert_eq!(wal.repair().unwrap(), 0, "repair is idempotent");

    let (stable, tail) = wal.read_since_checkpoint().unwrap();
    assert_eq!(stable, 0);
    // Txn 2's Commit was the torn frame: its data records survived the
    // repair but the transaction never committed, so replay skips them.
    let replay = committed_tail(&tail);
    assert_eq!(replay, vec![insert(1, 100, 1000)]);

    let store = PartitionStore::recover(
        fs2.clone(),
        "/db/t/p0/",
        schema(),
        StorageConfig { rows_per_chunk: 64 },
        None,
    )
    .unwrap();
    assert_eq!(store.row_count(), 100, "sealed chunks were fsynced");

    let mgr = TransactionManager::new(TxnConfig::default());
    mgr.recover_partition(P, store.row_count() as u64, &replay)
        .unwrap();
    let rows = merged_rows(&store, &mgr);
    assert_eq!(rows.len(), 101);
    assert_eq!(
        rows[100],
        vec![Value::I64(1000), Value::Str("t1000".into())]
    );
    assert!(
        !rows.iter().any(|r| r[0] == Value::I64(2000)),
        "the torn transaction must not resurrect"
    );
}

#[test]
fn os_crash_truncates_unsynced_wal_tail_to_last_commit_point() {
    let root = ScratchRoot::new("oscrash");
    let fs = file_store(root.path());
    let fs_ref: StoreRef = fs.clone();
    let wal = Wal::new(fs_ref, "/vectorh/wal/g.wal", Some(NodeId(0)));

    // Commit-bearing batch: fsynced, survives anything.
    wal.append(&[
        LogRecord::TxnBegin { txn: 1 },
        insert(1, 0, 1),
        LogRecord::Commit { txn: 1, seq: 1 },
    ])
    .unwrap();
    // Data-only batch: flushed to the OS, but no commit point — no fsync.
    wal.append(&[LogRecord::TxnBegin { txn: 2 }, insert(2, 1, 2)])
        .unwrap();
    assert_eq!(
        wal.read_all().unwrap().len(),
        5,
        "all bytes visible pre-crash"
    );

    // Power loss: everything past the fsync watermark evaporates.
    fs.simulate_os_crash();
    assert_eq!(
        wal.read_all().unwrap(),
        vec![
            LogRecord::TxnBegin { txn: 1 },
            insert(1, 0, 1),
            LogRecord::Commit { txn: 1, seq: 1 },
        ],
        "the log must cut cleanly at the last commit point"
    );
    assert_eq!(
        wal.repair().unwrap(),
        0,
        "fsync boundaries are frame-aligned"
    );
}

// --- backend equivalence ---------------------------------------------------

fn engine(backend: StorageBackend) -> VectorH {
    VectorH::start(ClusterConfig {
        nodes: 3,
        rows_per_chunk: 512,
        hdfs_block_size: 64 * 1024,
        streams_per_node: 2,
        storage_backend: backend,
        ..Default::default()
    })
    .unwrap()
}

fn tpch_pair() -> (VectorH, VectorH) {
    let sim = engine(StorageBackend::Sim);
    let file = engine(StorageBackend::File(String::new()));
    vectorh_tpch::schema::setup(&sim, 0.002, 4, 20260707).unwrap();
    vectorh_tpch::schema::setup(&file, 0.002, 4, 20260707).unwrap();
    (sim, file)
}

fn assert_queries_agree(sim: &VectorH, file: &VectorH, when: &str) {
    for qn in [1usize, 3, 6, 12] {
        let q = build_query(qn).unwrap();
        let got_sim = canonical(run_with(&q, |p| sim.query_logical(p)).unwrap());
        let q2 = build_query(qn).unwrap();
        let got_file = canonical(run_with(&q2, |p| file.query_logical(p)).unwrap());
        assert_eq!(
            fingerprint_rows(&got_sim),
            fingerprint_rows(&got_file),
            "Q{qn} fingerprints diverge between sim and file backends {when}"
        );
        assert_eq!(got_sim, got_file, "Q{qn} rows diverge {when}");
    }
}

#[test]
fn sim_and_file_backends_agree_on_tpch() {
    let (sim, file) = tpch_pair();
    assert_eq!(sim.storage_backend(), "sim");
    assert_eq!(file.storage_backend(), "file");
    assert!(
        file.fs().stats().snapshot().fsync_ops > 0,
        "sealing chunks on the file backend must fsync"
    );
    assert_queries_agree(&sim, &file, "cold");
}

#[test]
fn sim_and_file_backends_agree_after_trickle_updates() {
    let (sim, file) = tpch_pair();
    let data = vectorh_tpch::gen::generate(0.002, 20260707);
    let set = vectorh_tpch::refresh::refresh_set(&data, 8, 99);
    for vh in [&sim, &file] {
        vectorh_tpch::refresh::rf1(vh, &set).unwrap();
        vectorh_tpch::refresh::rf2(vh, &set).unwrap();
    }
    assert_queries_agree(&sim, &file, "after trickle updates");

    // Flush PDTs into the columnar store on both; still identical.
    for vh in [&sim, &file] {
        vh.propagate_table("orders", true).unwrap();
        vh.propagate_table("lineitem", true).unwrap();
    }
    assert_queries_agree(&sim, &file, "after propagation");
}
