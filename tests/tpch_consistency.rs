//! Cross-engine TPC-H answer consistency.
//!
//! The distributed VectorH engine (partition-parallel scans, local joins,
//! DXchg repartitioning, partial aggregation) must return exactly the same
//! answers as the single-threaded tuple-at-a-time baseline on every one of
//! the 22 queries. This exercises the full stack end to end: storage,
//! compression, MinMax pruning, PDT merge plans, the Parallel Rewriter and
//! every exchange flavour.

use vectorh::{ClusterConfig, VectorH};
use vectorh_tpch::baseline::{canonical, BaselineDb, BaselineKind};
use vectorh_tpch::queries::{build_query, run_with, N_QUERIES};

fn setup() -> (VectorH, BaselineDb) {
    let vh = VectorH::start(ClusterConfig {
        nodes: 3,
        rows_per_chunk: 512,
        hdfs_block_size: 64 * 1024,
        streams_per_node: 2,
        ..Default::default()
    })
    .unwrap();
    let data = vectorh_tpch::schema::setup(&vh, 0.002, 4, 20260707).unwrap();
    let db = BaselineDb::load(&data).unwrap();
    (vh, db)
}

#[test]
fn all_22_queries_match_the_rowstore_baseline() {
    let (vh, db) = setup();
    let mut mismatches = Vec::new();
    for qn in 1..=N_QUERIES {
        let q = build_query(qn).unwrap();
        let got = canonical(run_with(&q, |p| vh.query_logical(p)).unwrap_or_else(|e| {
            panic!("Q{qn} failed on VectorH: {e}");
        }));
        let q2 = build_query(qn).unwrap();
        let want = canonical(db.run_query(&q2, BaselineKind::RowStore).unwrap());
        if got != want {
            mismatches.push(format!(
                "Q{qn}: vectorh {} rows vs baseline {} rows; first diff: {:?} vs {:?}",
                got.len(),
                want.len(),
                got.iter().find(|r| !want.contains(r)),
                want.iter().find(|r| !got.contains(r)),
            ));
        }
    }
    assert!(mismatches.is_empty(), "{}", mismatches.join("\n"));
}

#[test]
fn queries_match_after_trickle_updates() {
    let (vh, mut db) = setup();
    let data = vectorh_tpch::gen::generate(0.002, 20260707);
    let set = vectorh_tpch::refresh::refresh_set(&data, 8, 99);
    // Apply RF1 + RF2 to both engines.
    vectorh_tpch::refresh::rf1(&vh, &set).unwrap();
    vectorh_tpch::refresh::rf2(&vh, &set).unwrap();
    db.apply_delta("orders", 0, set.orders.clone(), set.delete_keys.clone());
    db.apply_delta(
        "lineitem",
        0,
        set.lineitems.clone(),
        set.delete_keys.clone(),
    );
    // Queries over the updated tables still agree (PDT merge vs key merge).
    for qn in [1usize, 3, 4, 5, 6, 10, 12, 18] {
        let q = build_query(qn).unwrap();
        let got = canonical(run_with(&q, |p| vh.query_logical(p)).unwrap());
        let q2 = build_query(qn).unwrap();
        let want = canonical(db.run_query(&q2, BaselineKind::RowStore).unwrap());
        assert_eq!(got, want, "Q{qn} after updates");
    }
}

#[test]
fn queries_match_after_propagation() {
    let (vh, mut db) = setup();
    let data = vectorh_tpch::gen::generate(0.002, 20260707);
    let set = vectorh_tpch::refresh::refresh_set(&data, 6, 5);
    vectorh_tpch::refresh::rf1(&vh, &set).unwrap();
    vectorh_tpch::refresh::rf2(&vh, &set).unwrap();
    db.apply_delta("orders", 0, set.orders.clone(), set.delete_keys.clone());
    db.apply_delta(
        "lineitem",
        0,
        set.lineitems.clone(),
        set.delete_keys.clone(),
    );
    // Flush PDTs into the columnar store; answers must be unchanged.
    vh.propagate_table("orders", true).unwrap();
    vh.propagate_table("lineitem", true).unwrap();
    for qn in [1usize, 4, 6, 12] {
        let q = build_query(qn).unwrap();
        let got = canonical(run_with(&q, |p| vh.query_logical(p)).unwrap());
        let q2 = build_query(qn).unwrap();
        let want = canonical(db.run_query(&q2, BaselineKind::RowStore).unwrap());
        assert_eq!(got, want, "Q{qn} after propagation");
    }
}
