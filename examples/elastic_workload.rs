//! YARN elasticity under a shared cluster (§4).
//!
//! A VectorH cluster shares its nodes with other tenants: a higher-priority
//! job arrives and YARN preempts dummy containers; the dbAgent notices and
//! the workload manager shrinks the per-query core budget; when the tenant
//! leaves, periodic renegotiation grows back to the target footprint.
//!
//! ```sh
//! cargo run --release --example elastic_workload
//! ```

use vectorh::{ClusterConfig, TableBuilder, VectorH};
use vectorh_common::{DataType, Value};

fn report(vh: &VectorH, label: &str) {
    println!(
        "{label}: budget = {} cores total, {} exchange streams/node",
        vh.total_cores_budget(),
        vh.streams_per_node()
    );
}

fn main() -> vectorh_common::Result<()> {
    let vh = VectorH::start(ClusterConfig {
        nodes: 3,
        cores_per_node: 8,
        streams_per_node: 4,
        ..Default::default()
    })?;
    vh.create_table(
        TableBuilder::new("metrics")
            .column("host", DataType::I64)
            .column("cpu", DataType::I64)
            .partition_by(&["host"], 6),
    )?;
    vh.insert_rows(
        "metrics",
        (0..100_000)
            .map(|i| vec![Value::I64(i % 500), Value::I64(i % 100)])
            .collect(),
    )?;
    report(&vh, "startup (target footprint)");

    let run = |label: &str| {
        let t0 = std::time::Instant::now();
        let rows = vh
            .query("SELECT host, avg(cpu) AS load FROM metrics GROUP BY host ORDER BY load DESC LIMIT 5")
            .unwrap();
        println!(
            "  {label}: top host {} (load {:.1}) in {:?}",
            rows[0][0],
            rows[0][1].as_f64().unwrap_or(0.0),
            t0.elapsed()
        );
    };
    run("query at full budget");

    // A high-priority Spark job takes 6 of 8 cores on every node.
    println!("\n*** high-priority tenant arrives, YARN preempts containers ***");
    let rm = vh.rm().clone();
    let tenant = rm.register_app(9);
    let mut grants = Vec::new();
    for node in vh.workers() {
        for _ in 0..6 {
            grants.push(rm.request_container(tenant, node, 1, 1 << 30).unwrap());
        }
    }
    let changed = vh.poll_yarn();
    report(
        &vh,
        &format!("after preemption (footprint changed: {changed})"),
    );
    run("query under pressure (fewer cores, still correct)");

    // The tenant finishes; renegotiation recovers the target footprint.
    println!("\n*** tenant finishes, containers released ***");
    for g in grants {
        rm.release_container(g.id).unwrap();
    }
    vh.poll_yarn();
    report(&vh, "after renegotiation");
    run("query after recovery");

    // Idle period: voluntarily shrink ("automatic footprint" policy).
    println!("\n*** idle workload: self-regulating to minimal footprint ***");
    vh.shrink_footprint(1)?;
    report(&vh, "minimal footprint");
    let free: Vec<String> = rm
        .cluster_report()
        .iter()
        .map(|(n, c, _)| format!("{n}:{c} cores free"))
        .collect();
    println!("  resources returned to the cluster: {}", free.join(", "));
    run("query at minimal footprint");
    Ok(())
}
