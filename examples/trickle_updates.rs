//! Trickle updates through Positional Delta Trees (§2/§6).
//!
//! Shows the full PDT lifecycle on an ordered (clustered) table: trickle
//! inserts at their sort positions, deletes and modifies, snapshot
//! isolation, a write-write conflict abort, and background update
//! propagation separating tail inserts from in-place updates.
//!
//! ```sh
//! cargo run --release --example trickle_updates
//! ```

use vectorh::{ClusterConfig, TableBuilder, VectorH};
use vectorh_common::{DataType, Value};
use vectorh_exec::expr::Expr;

fn main() -> vectorh_common::Result<()> {
    let vh = VectorH::start(ClusterConfig {
        nodes: 3,
        rows_per_chunk: 2048,
        ..Default::default()
    })?;
    vh.create_table(
        TableBuilder::new("events")
            .column("ts", DataType::I64)
            .column("kind", DataType::Str)
            .column("score", DataType::I64)
            .partition_by(&["ts"], 4)
            .clustered_by(&["ts"]), // ordered table: updates *must* go to PDTs
    )?;
    vh.insert_rows(
        "events",
        (0..20_000)
            .map(|i| vec![Value::I64(i * 10), Value::Str("base".into()), Value::I64(1)])
            .collect(),
    )?;
    println!("loaded {} rows", vh.table_rows("events")?);

    // Trickle inserts interleave into the clustered order — positionally,
    // via PDTs, without rewriting any compressed block.
    vh.trickle_insert(
        "events",
        (0..500)
            .map(|i| {
                vec![
                    Value::I64(i * 400 + 5),
                    Value::Str("late".into()),
                    Value::I64(7),
                ]
            })
            .collect(),
    )?;
    let rows = vh.query("SELECT count(*) FROM events WHERE kind = 'late'")?;
    println!("late arrivals visible immediately: {}", rows[0][0]);

    // Deletes and modifies also land in the PDTs.
    let deleted = vh.delete_where(
        "events",
        &Expr::lt(Expr::col(0), Expr::lit(Value::I64(1000))),
    )?;
    let updated = vh.update_where(
        "events",
        &Expr::eq(Expr::col(1), Expr::lit(Value::Str("late".into()))),
        2,
        Value::I64(99),
    )?;
    println!("deleted {deleted} rows, updated {updated} rows — storage untouched");

    // Write-write conflicts abort at tuple granularity (optimistic CC).
    let rt = vh.table("events")?;
    let mut t1 = vh.txns.begin(&rt.pids)?;
    let mut t2 = vh.txns.begin(&rt.pids)?;
    vh.txns
        .modify_at(&mut t1, rt.pids[0], 0, 2, Value::I64(-1))?;
    vh.txns
        .modify_at(&mut t2, rt.pids[0], 0, 2, Value::I64(-2))?;
    vh.txns.commit(t1, |_, _| Ok(()))?;
    match vh.txns.commit(t2, |_, _| Ok(())) {
        Err(e) => println!("second writer aborted as expected: {e}"),
        Ok(_) => println!("unexpected: no conflict"),
    }

    // PDT memory pressure triggers update propagation.
    let before = vh.query("SELECT count(*), sum(score) FROM events")?;
    let flushed = vh.propagate_table("events", true)?;
    let after = vh.query("SELECT count(*), sum(score) FROM events")?;
    println!(
        "propagated {flushed} partitions; results unchanged: {} / {}",
        before == after,
        after[0][0]
    );

    // After propagation the data is back in clean sorted chunks; MinMax
    // indexes were rebuilt, so range scans skip again.
    let io0 = vh.fs().stats().snapshot();
    vh.query("SELECT count(*) FROM events WHERE ts < 5000")?;
    let narrow = vh.fs().stats().snapshot().since(&io0).read_bytes();
    let io1 = vh.fs().stats().snapshot();
    vh.query("SELECT count(*) FROM events WHERE ts < 100000000")?;
    let wide = vh.fs().stats().snapshot().since(&io1).read_bytes();
    println!(
        "MinMax skipping after propagation: selective scan reads {} vs full {}",
        vectorh_common::util::fmt_bytes(narrow),
        vectorh_common::util::fmt_bytes(wide)
    );
    Ok(())
}
