//! Quickstart: start a simulated VectorH cluster, create a table, load
//! data, and run SQL.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use vectorh::{ClusterConfig, TableBuilder, VectorH};
use vectorh_common::{DataType, Value};

fn main() -> vectorh_common::Result<()> {
    // A 3-node "Hadoop cluster" with HDFS, YARN and VectorH workers —
    // all simulated in-process.
    let vh = VectorH::start(ClusterConfig {
        nodes: 3,
        ..Default::default()
    })?;
    println!(
        "cluster up: {} workers, session master = {}",
        vh.workers().len(),
        vh.session_master()
    );

    // DDL: a partitioned, clustered fact table.
    vh.create_table(
        TableBuilder::new("trips")
            .column("id", DataType::I64)
            .column("city", DataType::Str)
            .column("fare", DataType::Decimal { scale: 2 })
            .column("day", DataType::Date)
            .partition_by(&["id"], 6)
            .clustered_by(&["day"]),
    )?;

    // Bulk load 50k rows (vwload path: hash-partitioned, sorted per
    // partition by the clustered key, appended from the responsible nodes).
    let d0 = vectorh_common::types::date::parse("1996-01-01").unwrap();
    let cities = ["berlin", "amsterdam", "paris", "prague"];
    let rows: Vec<Vec<Value>> = (0..50_000)
        .map(|i| {
            vec![
                Value::I64(i),
                Value::Str(cities[(i % 4) as usize].into()),
                Value::Decimal(500 + (i % 2000), 2),
                Value::Date(d0 + (i % 365) as i32),
            ]
        })
        .collect();
    vh.insert_rows("trips", rows)?;
    println!(
        "loaded {} rows ({} compressed bytes on HDFS)",
        vh.table_rows("trips")?,
        vh.table_bytes("trips")?
    );

    // SQL: the query parses, the Parallel Rewriter distributes it, and the
    // result funnels back to the session master.
    let sql = "SELECT city, count(*) AS trips, sum(fare) AS total, avg(fare) \
               FROM trips WHERE day < '1996-04-01' GROUP BY city ORDER BY total DESC";
    println!("\nEXPLAIN {sql}\n{}", vh.explain(sql)?);
    for row in vh.query(sql)? {
        println!(
            "{:<12} trips={:<6} total={:<12} avg={:.2}",
            row[0],
            row[1],
            row[2],
            row[3].as_f64().unwrap_or(0.0)
        );
    }

    // Trickle updates land in Positional Delta Trees — queries see them
    // immediately, storage stays untouched.
    vh.trickle_insert(
        "trips",
        vec![vec![
            Value::I64(999_999),
            Value::Str("berlin".into()),
            Value::Decimal(10_000, 2),
            Value::Date(d0),
        ]],
    )?;
    let rows = vh.query("SELECT count(*) FROM trips WHERE city = 'berlin'")?;
    println!("\nafter trickle insert: berlin trips = {}", rows[0][0]);

    // Read locality: every scan byte so far was short-circuit local.
    let io = vh.fs().stats().snapshot();
    println!(
        "\nHDFS IO: {} read locally, {} remote ({}% local)",
        vectorh_common::util::fmt_bytes(io.local_read_bytes),
        vectorh_common::util::fmt_bytes(io.remote_read_bytes),
        (io.locality() * 100.0) as u32
    );
    Ok(())
}
