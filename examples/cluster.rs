//! N OS processes, one distributed query plan — config-driven membership.
//!
//! Generalizes `two_node_cluster.rs` from a hand-wired pair to an N-node
//! mesh (`VH_CLUSTER_N`, default 3): the parent process is node 0, spawns
//! this same binary N−1 times (`VHC_ROLE=<node>`), collects each child's
//! `ADDR <socket>` announcement, then distributes the **full roster** to
//! every child as a single `PEERS id=addr …` line on stdin. Each process
//! meshes a real [`TcpFabric`] from that roster — membership is pure
//! config, no coordination beyond the roster line — and all N build the
//! *identical* DXchg plans over deterministically generated lineitem
//! shards:
//!
//! * **Q1** — every node scans its shard, projects qualifying measures,
//!   a `DXchgHashSplit` repartitions by `(returnflag, linestatus)` across
//!   all N processes, and a `DXchgUnion` ships the per-node group partials
//!   back to node 0.
//! * **Q6** — per-shard revenue partials unioned onto node 0.
//!
//! All arithmetic is exact fixed point, so node 0's answers must match a
//! single-process run of the same plans **byte for byte** — verified via
//! `fingerprint_rows` plus full row equality.
//!
//! Run: `VH_CLUSTER_N=3 cargo run --release --example cluster`

use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Write};
use std::net::SocketAddr;
use std::process::{Child, Command, Stdio};
use std::sync::Arc;

use vectorh_common::types::date;
use vectorh_common::{ColumnData, DataType, NodeId, Result, Schema, Value, VhError};
use vectorh_exec::operator::BatchSource;
use vectorh_exec::{fingerprint_rows, Batch, Operator};
use vectorh_net::dxchg::{dxchg_hash_split, dxchg_union};
use vectorh_net::{DxchgConfig, FanoutMode, NetStats};
use vectorh_transport::{Fabric, SharedEpoch, TcpFabric};

const SF: f64 = 0.01;
const GEN_SEED: u64 = 20260808;

fn cluster_n() -> usize {
    std::env::var("VH_CLUSTER_N")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|n| (2..=16).contains(n))
        .unwrap_or(3)
}

fn main() {
    let n = cluster_n();
    let run = match std::env::var("VHC_ROLE").ok().as_deref() {
        Some(role) => child(role.parse().expect("VHC_ROLE must be a node id"), n),
        None => parent(n),
    };
    if let Err(e) = run {
        eprintln!("cluster example failed: {e}");
        std::process::exit(1);
    }
}

// ---------------------------------------------------------------- plumbing

fn config(fabric: Option<Arc<dyn Fabric>>) -> DxchgConfig {
    DxchgConfig {
        buffer_bytes: 64 * 1024,
        mode: FanoutMode::ThreadToNode,
        fault: None,
        fabric,
    }
}

/// Round-robin lineitem into `n` shards — every process derives the same
/// split from the same seed, so "my shard" is pure arithmetic.
fn lineitem_shards(n: usize) -> Vec<Vec<Vec<Value>>> {
    let data = vectorh_tpch::gen::generate(SF, GEN_SEED);
    let mut shards = vec![Vec::new(); n];
    for (i, row) in data.lineitem.into_iter().enumerate() {
        shards[i % n].push(row);
    }
    shards
}

fn int_of(v: &Value) -> i64 {
    match v {
        Value::I64(x) => *x,
        Value::Decimal(m, _) => *m,
        Value::Date(d) => *d as i64,
        other => panic!("unexpected value {other:?}"),
    }
}

fn first_byte(v: &Value) -> i64 {
    match v {
        Value::Str(s) => s.as_bytes()[0] as i64,
        other => panic!("expected string, got {other:?}"),
    }
}

/// Pack fixed-width integer rows into one Batch and wrap it as a source.
fn source(schema: Arc<Schema>, rows: &[Vec<i64>]) -> Box<dyn Operator> {
    let mut cols: Vec<Vec<i64>> = vec![Vec::with_capacity(rows.len()); schema.len()];
    for row in rows {
        for (c, v) in row.iter().enumerate() {
            cols[c].push(*v);
        }
    }
    let columns = cols.into_iter().map(ColumnData::I64).collect();
    let batch = Batch::new(schema, columns).expect("well-formed source batch");
    Box::new(BatchSource::from_batch(batch, 1024))
}

// ------------------------------------------------------------- the queries

fn q1_schema() -> Arc<Schema> {
    Arc::new(Schema::of(&[
        ("k", DataType::I64), // returnflag byte << 8 | linestatus byte
        ("qty", DataType::I64),
        ("base", DataType::I64),
        ("disc_price", DataType::I64),
        ("charge", DataType::I64),
        ("cnt", DataType::I64),
    ]))
}

/// Qualifying Q1 measures of one shard, in exact fixed point.
fn q1_rows(shard: &[Vec<Value>]) -> Vec<Vec<i64>> {
    let cutoff = date::to_days(1998, 9, 2) as i64;
    let mut out = Vec::new();
    for row in shard {
        if int_of(&row[10]) > cutoff {
            continue; // l_shipdate <= date '1998-09-02'
        }
        let key = (first_byte(&row[8]) << 8) | first_byte(&row[9]);
        let qty = int_of(&row[4]);
        let price = int_of(&row[5]);
        let disc = int_of(&row[6]);
        let tax = int_of(&row[7]);
        let disc_price = price * (100 - disc);
        let charge = disc_price * (100 + tax);
        out.push(vec![key, qty, price, disc_price, charge, 1]);
    }
    out
}

/// One-row Q6 revenue partial of one shard (1e-4 dollars).
fn q6_rows(shard: &[Vec<Value>]) -> Vec<Vec<i64>> {
    let from = date::to_days(1994, 1, 1) as i64;
    let to = date::to_days(1995, 1, 1) as i64;
    let mut revenue = 0i64;
    for row in shard {
        let ship = int_of(&row[10]);
        let disc = int_of(&row[6]);
        let qty = int_of(&row[4]);
        if ship >= from && ship < to && (5..=7).contains(&disc) && qty < 2400 {
            revenue += int_of(&row[5]) * disc;
        }
    }
    vec![vec![revenue]]
}

fn fold(groups: &mut BTreeMap<i64, [i64; 5]>, batch: &Batch) {
    for i in 0..batch.len() {
        let row = batch.row(i);
        let acc = groups.entry(int_of(&row[0])).or_insert([0; 5]);
        for (a, v) in acc.iter_mut().zip(&row[1..]) {
            *a += int_of(v);
        }
    }
}

fn group_rows(groups: &BTreeMap<i64, [i64; 5]>) -> Vec<Vec<i64>> {
    groups
        .iter()
        .map(|(k, a)| {
            let mut row = vec![*k];
            row.extend_from_slice(a);
            row
        })
        .collect()
}

/// Run the Q1 and Q6 plans over `n` nodes. `fabric: None` is the
/// single-process reference (all shards populated, plain channels); with a
/// fabric, each process passes only its own shard and the transport
/// carries the rest. Only node 0 sees final results.
fn run_plans(
    fabric: Option<Arc<dyn Fabric>>,
    my: u32,
    shards: &[Vec<Vec<Value>>],
    stats: Arc<NetStats>,
) -> Result<(Vec<Vec<Value>>, i64)> {
    let n = shards.len();
    let drain_all = fabric.is_none();
    let all_nodes: Vec<u32> = (0..n as u32).collect();

    // Q1 stage 1: repartition qualifying measures by group key across all
    // nodes (one consumer thread each).
    let producers: Vec<(u32, Box<dyn Operator>)> = (0..n)
        .map(|i| (i as u32, source(q1_schema(), &q1_rows(&shards[i]))))
        .collect();
    let receivers = dxchg_hash_split(
        producers,
        all_nodes,
        vec![0],
        config(fabric.clone()),
        stats.clone(),
    )?;
    let mut partials: Vec<BTreeMap<i64, [i64; 5]>> = vec![BTreeMap::new(); n];
    for (j, mut rx) in receivers.into_iter().enumerate() {
        if !drain_all && j as u32 != my {
            continue; // that consumer thread runs in another process
        }
        while let Some(batch) = rx.next()? {
            fold(&mut partials[j], &batch);
        }
    }

    // Q1 stage 2: union the disjoint per-node group partials onto node 0.
    let producers: Vec<(u32, Box<dyn Operator>)> = (0..n)
        .map(|i| (i as u32, source(q1_schema(), &group_rows(&partials[i]))))
        .collect();
    let mut union_rx = dxchg_union(producers, 0, config(fabric.clone()), stats.clone())?;
    let mut q1_groups = BTreeMap::new();
    if drain_all || my == 0 {
        while let Some(batch) = union_rx.next()? {
            fold(&mut q1_groups, &batch);
        }
    }
    let q1: Vec<Vec<Value>> = group_rows(&q1_groups)
        .into_iter()
        .map(|r| r.into_iter().map(Value::I64).collect())
        .collect();

    // Q6: one revenue partial per node, unioned onto node 0.
    let q6_schema = Arc::new(Schema::of(&[("revenue", DataType::I64)]));
    let producers: Vec<(u32, Box<dyn Operator>)> = (0..n)
        .map(|i| (i as u32, source(q6_schema.clone(), &q6_rows(&shards[i]))))
        .collect();
    let mut q6_rx = dxchg_union(producers, 0, config(fabric), stats)?;
    let mut q6 = 0i64;
    if drain_all || my == 0 {
        while let Some(batch) = q6_rx.next()? {
            for i in 0..batch.len() {
                q6 += int_of(&batch.row(i)[0]);
            }
        }
    }
    Ok((q1, q6))
}

/// Only this process's shard populated; the rest arrive over the fabric.
fn my_shard_only(shards: &[Vec<Vec<Value>>], my: usize) -> Vec<Vec<Vec<Value>>> {
    shards
        .iter()
        .enumerate()
        .map(|(i, s)| if i == my { s.clone() } else { Vec::new() })
        .collect()
}

// ------------------------------------------------------------ the processes

fn parent(n: usize) -> Result<()> {
    eprintln!("[node0] {n}-process cluster, generating lineitem (sf {SF})");
    let shards = lineitem_shards(n);

    // Reference: the identical plans in one process over plain channels.
    let ref_stats = Arc::new(NetStats::default());
    let (q1_ref, q6_ref) = run_plans(None, 0, &shards, ref_stats)?;

    // Cluster: node 0 here, nodes 1..n in freshly spawned OS processes.
    let epoch = Arc::new(SharedEpoch::new(1));
    let fabric = Arc::new(TcpFabric::single(NodeId(0), epoch, None)?);
    let addr0 = fabric
        .addr_of(NodeId(0))
        .ok_or_else(|| VhError::Net("node 0 has no listen address".into()))?;
    let exe =
        std::env::current_exe().map_err(|e| VhError::Internal(format!("current_exe: {e}")))?;
    let mut children: Vec<Child> = Vec::new();
    let mut roster: Vec<(u32, SocketAddr)> = vec![(0, addr0)];
    for node in 1..n {
        let mut child = Command::new(&exe)
            .env("VHC_ROLE", node.to_string())
            .env("VH_CLUSTER_N", n.to_string())
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .spawn()
            .map_err(|e| VhError::Internal(format!("spawn node {node}: {e}")))?;
        let mut lines = BufReader::new(child.stdout.take().expect("piped stdout")).lines();
        let addr: SocketAddr = loop {
            let line = lines
                .next()
                .ok_or_else(|| {
                    VhError::Net(format!("node {node} exited before announcing its address"))
                })?
                .map_err(|e| VhError::Net(format!("read node {node} stdout: {e}")))?;
            if let Some(addr) = line.strip_prefix("ADDR ") {
                break addr
                    .parse()
                    .map_err(|e| VhError::Net(format!("bad node {node} address {addr:?}: {e}")))?;
            }
        };
        roster.push((node as u32, addr));
        children.push(child);
    }

    // Config-driven membership: the full roster goes to every child as one
    // line; each process meshes its fabric from the same list.
    let roster_line = roster
        .iter()
        .map(|(id, addr)| format!("{id}={addr}"))
        .collect::<Vec<_>>()
        .join(" ");
    for child in &mut children {
        let stdin = child.stdin.as_mut().expect("piped stdin");
        writeln!(stdin, "PEERS {roster_line}")
            .map_err(|e| VhError::Net(format!("send roster: {e}")))?;
        stdin.flush().ok();
    }
    for &(id, addr) in &roster[1..] {
        fabric.add_peer(NodeId(id), addr);
    }
    eprintln!("[node0] roster: {roster_line}");

    let local = my_shard_only(&shards, 0);
    let tcp_stats = Arc::new(NetStats::default());
    let (q1_tcp, q6_tcp) = run_plans(
        Some(fabric.clone() as Arc<dyn Fabric>),
        0,
        &local,
        tcp_stats.clone(),
    )?;

    // Release the children (they block on stdin until we are done).
    for mut child in children {
        drop(child.stdin.take());
        let status = child
            .wait()
            .map_err(|e| VhError::Internal(format!("wait child: {e}")))?;
        if !status.success() {
            return Err(VhError::Internal(format!("a child exited with {status}")));
        }
    }

    // The verdict: byte-for-byte equality, summarized as fingerprints.
    let (fp_ref, fp_tcp) = (fingerprint_rows(&q1_ref), fingerprint_rows(&q1_tcp));
    println!(
        "Q1 groups: {} in-proc, {} over tcp ({n} processes)",
        q1_ref.len(),
        q1_tcp.len()
    );
    println!("Q1 fingerprint: in-proc {fp_ref:#018x}, tcp {fp_tcp:#018x}");
    println!("Q6 revenue: in-proc {q6_ref}, tcp {q6_tcp} (1e-4 dollars)");
    if q1_ref.is_empty() || q1_tcp != q1_ref {
        return Err(VhError::Internal(
            "Q1 over the TCP fabric diverged from the in-process run".into(),
        ));
    }
    if q6_tcp != q6_ref || q6_tcp == 0 {
        return Err(VhError::Internal(
            "Q6 over the TCP fabric diverged from the in-process run".into(),
        ));
    }
    println!("byte-for-byte match across {n} OS processes");
    for (name, ch) in tcp_stats.channels() {
        println!(
            "  {name}: {} messages, {} bytes, {} credit stalls",
            ch.messages, ch.bytes, ch.credit_stalls
        );
    }
    Ok(())
}

fn child(my: usize, n: usize) -> Result<()> {
    let shards = lineitem_shards(n);
    let epoch = Arc::new(SharedEpoch::new(1));
    let fabric = Arc::new(TcpFabric::single(NodeId(my as u32), epoch, None)?);
    let my_addr = fabric
        .addr_of(NodeId(my as u32))
        .ok_or_else(|| VhError::Net(format!("node {my} has no listen address")))?;
    println!("ADDR {my_addr}");
    std::io::stdout().flush().ok();

    // Membership arrives as one roster line; mesh everything that isn't us.
    let stdin = std::io::stdin();
    let mut line = String::new();
    stdin
        .lock()
        .read_line(&mut line)
        .map_err(|e| VhError::Net(format!("read roster: {e}")))?;
    let roster = line
        .strip_prefix("PEERS ")
        .ok_or_else(|| VhError::Net(format!("expected PEERS line, got {line:?}")))?;
    for entry in roster.split_whitespace() {
        let (id, addr) = entry
            .split_once('=')
            .ok_or_else(|| VhError::Net(format!("bad roster entry {entry:?}")))?;
        let id: u32 = id
            .parse()
            .map_err(|e| VhError::Net(format!("bad node id {id:?}: {e}")))?;
        if id as usize != my {
            fabric.add_peer(
                NodeId(id),
                addr.parse()
                    .map_err(|e| VhError::Net(format!("bad addr {addr:?}: {e}")))?,
            );
        }
    }

    let local = my_shard_only(&shards, my);
    let stats = Arc::new(NetStats::default());
    run_plans(Some(fabric as Arc<dyn Fabric>), my as u32, &local, stats)?;

    // Keep the fabric (and any in-flight retransmits) alive until the
    // parent has validated its results and closes our stdin.
    let mut eof = String::new();
    let _ = stdin.lock().read_line(&mut eof);
    Ok(())
}
