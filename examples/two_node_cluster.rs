//! Two OS processes, one distributed query plan.
//!
//! The parent process is cluster node 0; it spawns this same binary as
//! node 1 (`VH2_ROLE=node1`) and meshes the two over a real TCP fabric
//! ([`TcpFabric::single`] + `add_peer`). Both processes then build the
//! *identical* DXchg plans for TPC-H Q1 and Q6 over deterministically
//! generated lineitem halves:
//!
//! * **Q1** — each node scans its half, projects the qualifying measures,
//!   and a `DXchgHashSplit` repartitions them by `(returnflag, linestatus)`
//!   across the two processes; each node aggregates the groups it owns and
//!   a `DXchgUnion` ships the partials back to node 0.
//! * **Q6** — each node computes its local revenue partial and a
//!   `DXchgUnion` funnels the partials to node 0.
//!
//! Producers whose node lives in the other process are skipped locally and
//! run over there; channel ids come from each fabric's deterministic
//! allocator, so the cooperating processes agree on the wire layout without
//! any coordination beyond the listen addresses.
//!
//! All arithmetic is exact fixed-point (TPC-H decimals as i64), so the
//! distributed sums are order-independent and the cross-process answers
//! must match a single-process run of the same plans over plain in-memory
//! channels **byte for byte** — verified via `fingerprint_rows` and full
//! row equality.
//!
//! Run: `cargo run --release --example two_node_cluster`

use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Write};
use std::net::SocketAddr;
use std::process::{Command, Stdio};
use std::sync::Arc;

use vectorh_common::types::date;
use vectorh_common::{ColumnData, DataType, NodeId, Result, Schema, Value, VhError};
use vectorh_exec::operator::BatchSource;
use vectorh_exec::{fingerprint_rows, Batch, Operator};
use vectorh_net::dxchg::{dxchg_hash_split, dxchg_union};
use vectorh_net::{DxchgConfig, FanoutMode, NetStats};
use vectorh_transport::{Fabric, SharedEpoch, TcpFabric};

const SF: f64 = 0.01;
const GEN_SEED: u64 = 20260807;

fn main() {
    let role = std::env::var("VH2_ROLE").ok();
    let run = match role.as_deref() {
        Some("node1") => child(),
        _ => parent(),
    };
    if let Err(e) = run {
        eprintln!("two_node_cluster failed: {e}");
        std::process::exit(1);
    }
}

// ---------------------------------------------------------------- plumbing

fn config(fabric: Option<Arc<dyn Fabric>>) -> DxchgConfig {
    DxchgConfig {
        buffer_bytes: 64 * 1024,
        mode: FanoutMode::ThreadToNode,
        fault: None,
        fabric,
    }
}

/// Both halves of lineitem, split round-robin so each node owns the same
/// rows in every process.
fn lineitem_halves() -> [Vec<Vec<Value>>; 2] {
    let data = vectorh_tpch::gen::generate(SF, GEN_SEED);
    let mut halves = [Vec::new(), Vec::new()];
    for (i, row) in data.lineitem.into_iter().enumerate() {
        halves[i % 2].push(row);
    }
    halves
}

fn int_of(v: &Value) -> i64 {
    match v {
        Value::I64(x) => *x,
        Value::Decimal(m, _) => *m,
        Value::Date(d) => *d as i64,
        other => panic!("unexpected value {other:?}"),
    }
}

fn first_byte(v: &Value) -> i64 {
    match v {
        Value::Str(s) => s.as_bytes()[0] as i64,
        other => panic!("expected string, got {other:?}"),
    }
}

/// Pack fixed-width integer rows into one Batch and wrap it as a source.
fn source(schema: Arc<Schema>, rows: &[Vec<i64>]) -> Box<dyn Operator> {
    let mut cols: Vec<Vec<i64>> = vec![Vec::with_capacity(rows.len()); schema.len()];
    for row in rows {
        for (c, v) in row.iter().enumerate() {
            cols[c].push(*v);
        }
    }
    let columns = cols.into_iter().map(ColumnData::I64).collect();
    let batch = Batch::new(schema, columns).expect("well-formed source batch");
    Box::new(BatchSource::from_batch(batch, 1024))
}

// ------------------------------------------------------------- the queries

fn q1_schema() -> Arc<Schema> {
    Arc::new(Schema::of(&[
        ("k", DataType::I64), // returnflag byte << 8 | linestatus byte
        ("qty", DataType::I64),
        ("base", DataType::I64),
        ("disc_price", DataType::I64),
        ("charge", DataType::I64),
        ("cnt", DataType::I64),
    ]))
}

/// Qualifying Q1 measures of one lineitem half, in exact fixed point:
/// qty and base in hundredths, disc_price in 1e-4, charge in 1e-6 dollars.
fn q1_rows(half: &[Vec<Value>]) -> Vec<Vec<i64>> {
    let cutoff = date::to_days(1998, 9, 2) as i64;
    let mut out = Vec::new();
    for row in half {
        if int_of(&row[10]) > cutoff {
            continue; // l_shipdate <= date '1998-09-02'
        }
        let key = (first_byte(&row[8]) << 8) | first_byte(&row[9]);
        let qty = int_of(&row[4]);
        let price = int_of(&row[5]);
        let disc = int_of(&row[6]);
        let tax = int_of(&row[7]);
        let disc_price = price * (100 - disc);
        let charge = disc_price * (100 + tax);
        out.push(vec![key, qty, price, disc_price, charge, 1]);
    }
    out
}

/// One-row Q6 revenue partial of one lineitem half (1e-4 dollars).
fn q6_rows(half: &[Vec<Value>]) -> Vec<Vec<i64>> {
    let from = date::to_days(1994, 1, 1) as i64;
    let to = date::to_days(1995, 1, 1) as i64;
    let mut revenue = 0i64;
    for row in half {
        let ship = int_of(&row[10]);
        let disc = int_of(&row[6]);
        let qty = int_of(&row[4]);
        if ship >= from && ship < to && (5..=7).contains(&disc) && qty < 2400 {
            revenue += int_of(&row[5]) * disc;
        }
    }
    vec![vec![revenue]]
}

fn fold(groups: &mut BTreeMap<i64, [i64; 5]>, batch: &Batch) {
    for i in 0..batch.len() {
        let row = batch.row(i);
        let acc = groups.entry(int_of(&row[0])).or_insert([0; 5]);
        for (a, v) in acc.iter_mut().zip(&row[1..]) {
            *a += int_of(v);
        }
    }
}

fn group_rows(groups: &BTreeMap<i64, [i64; 5]>) -> Vec<Vec<i64>> {
    groups
        .iter()
        .map(|(k, a)| {
            let mut row = vec![*k];
            row.extend_from_slice(a);
            row
        })
        .collect()
}

/// Run the Q1 and Q6 plans. `fabric: None` is the single-process reference
/// (both halves populated, plain channels); with a fabric, each process
/// passes only its own half and the transport carries the rest. Only
/// node 0 sees final results; other nodes return empty ones.
fn run_plans(
    fabric: Option<Arc<dyn Fabric>>,
    my: u32,
    halves: &[Vec<Vec<Value>>; 2],
    stats: Arc<NetStats>,
) -> Result<(Vec<Vec<Value>>, i64)> {
    let drain_all = fabric.is_none();

    // Q1 stage 1: repartition qualifying measures by group key across both
    // nodes (one consumer thread each).
    let producers: Vec<(u32, Box<dyn Operator>)> = (0..2)
        .map(|n| (n as u32, source(q1_schema(), &q1_rows(&halves[n]))))
        .collect();
    let receivers = dxchg_hash_split(
        producers,
        vec![0, 1],
        vec![0],
        config(fabric.clone()),
        stats.clone(),
    )?;
    let mut partials: Vec<BTreeMap<i64, [i64; 5]>> = vec![BTreeMap::new(), BTreeMap::new()];
    for (j, mut rx) in receivers.into_iter().enumerate() {
        if !drain_all && j as u32 != my {
            continue; // that consumer thread runs in the other process
        }
        while let Some(batch) = rx.next()? {
            fold(&mut partials[j], &batch);
        }
    }

    // Q1 stage 2: union the disjoint per-node group partials onto node 0.
    let producers: Vec<(u32, Box<dyn Operator>)> = (0..2)
        .map(|n| (n as u32, source(q1_schema(), &group_rows(&partials[n]))))
        .collect();
    let mut union_rx = dxchg_union(producers, 0, config(fabric.clone()), stats.clone())?;
    let mut q1_groups = BTreeMap::new();
    if drain_all || my == 0 {
        while let Some(batch) = union_rx.next()? {
            fold(&mut q1_groups, &batch);
        }
    }
    let q1: Vec<Vec<Value>> = group_rows(&q1_groups)
        .into_iter()
        .map(|r| r.into_iter().map(Value::I64).collect())
        .collect();

    // Q6: one revenue partial per node, unioned onto node 0.
    let q6_schema = Arc::new(Schema::of(&[("revenue", DataType::I64)]));
    let producers: Vec<(u32, Box<dyn Operator>)> = (0..2)
        .map(|n| (n as u32, source(q6_schema.clone(), &q6_rows(&halves[n]))))
        .collect();
    let mut q6_rx = dxchg_union(producers, 0, config(fabric), stats)?;
    let mut q6 = 0i64;
    if drain_all || my == 0 {
        while let Some(batch) = q6_rx.next()? {
            for i in 0..batch.len() {
                q6 += int_of(&batch.row(i)[0]);
            }
        }
    }
    Ok((q1, q6))
}

// ------------------------------------------------------------ the processes

fn parent() -> Result<()> {
    eprintln!("[node0] generating lineitem (sf {SF})");
    let halves = lineitem_halves();

    // Reference: the identical plans in one process over plain channels.
    let ref_stats = Arc::new(NetStats::default());
    let (q1_ref, q6_ref) = run_plans(None, 0, &halves, ref_stats.clone())?;

    // Cluster: node 0 here, node 1 in a freshly spawned OS process.
    let epoch = Arc::new(SharedEpoch::new(1));
    let fabric = Arc::new(TcpFabric::single(NodeId(0), epoch, None)?);
    let addr0 = fabric
        .addr_of(NodeId(0))
        .ok_or_else(|| VhError::Net("node 0 has no listen address".into()))?;
    let exe =
        std::env::current_exe().map_err(|e| VhError::Internal(format!("current_exe: {e}")))?;
    let mut node1 = Command::new(exe)
        .env("VH2_ROLE", "node1")
        .env("VH2_ADDR0", addr0.to_string())
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()
        .map_err(|e| VhError::Internal(format!("spawn node 1: {e}")))?;
    let mut lines = BufReader::new(node1.stdout.take().expect("piped stdout")).lines();
    let addr1: SocketAddr = loop {
        let line = lines
            .next()
            .ok_or_else(|| VhError::Net("node 1 exited before announcing its address".into()))?
            .map_err(|e| VhError::Net(format!("read node 1 stdout: {e}")))?;
        if let Some(addr) = line.strip_prefix("ADDR ") {
            break addr
                .parse()
                .map_err(|e| VhError::Net(format!("bad node 1 address {addr:?}: {e}")))?;
        }
    };
    fabric.add_peer(NodeId(1), addr1);
    eprintln!("[node0] listening on {addr0}, node 1 on {addr1}");

    // This process holds only half the data; the other half's pipelines run
    // in the node 1 process and arrive over TCP.
    let local = [halves[0].clone(), Vec::new()];
    let tcp_stats = Arc::new(NetStats::default());
    let (q1_tcp, q6_tcp) = run_plans(
        Some(fabric.clone() as Arc<dyn Fabric>),
        0,
        &local,
        tcp_stats.clone(),
    )?;

    // Release node 1 (it blocks on stdin until we are done) and reap it.
    drop(node1.stdin.take());
    let status = node1
        .wait()
        .map_err(|e| VhError::Internal(format!("wait node 1: {e}")))?;
    if !status.success() {
        return Err(VhError::Internal(format!("node 1 exited with {status}")));
    }

    // The verdict: byte-for-byte equality, summarized as fingerprints.
    let (fp_ref, fp_tcp) = (fingerprint_rows(&q1_ref), fingerprint_rows(&q1_tcp));
    println!(
        "Q1 groups: {} in-proc, {} over tcp",
        q1_ref.len(),
        q1_tcp.len()
    );
    println!("Q1 fingerprint: in-proc {fp_ref:#018x}, tcp {fp_tcp:#018x}");
    println!("Q6 revenue: in-proc {q6_ref}, tcp {q6_tcp} (1e-4 dollars)");
    if q1_ref.is_empty() || q1_tcp != q1_ref {
        return Err(VhError::Internal(
            "Q1 over the TCP fabric diverged from the in-process run".into(),
        ));
    }
    if q6_tcp != q6_ref || q6_tcp == 0 {
        return Err(VhError::Internal(
            "Q6 over the TCP fabric diverged from the in-process run".into(),
        ));
    }
    println!("byte-for-byte match across 2 OS processes");
    for (name, ch) in tcp_stats.channels() {
        println!(
            "  {name}: {} messages, {} bytes, {} credit stalls",
            ch.messages, ch.bytes, ch.credit_stalls
        );
    }
    Ok(())
}

fn child() -> Result<()> {
    let halves = lineitem_halves();
    let epoch = Arc::new(SharedEpoch::new(1));
    let fabric = Arc::new(TcpFabric::single(NodeId(1), epoch, None)?);
    let addr0: SocketAddr = std::env::var("VH2_ADDR0")
        .map_err(|_| VhError::Net("VH2_ADDR0 not set".into()))?
        .parse()
        .map_err(|e| VhError::Net(format!("bad VH2_ADDR0: {e}")))?;
    fabric.add_peer(NodeId(0), addr0);
    let addr1 = fabric
        .addr_of(NodeId(1))
        .ok_or_else(|| VhError::Net("node 1 has no listen address".into()))?;
    println!("ADDR {addr1}");
    std::io::stdout().flush().ok();

    let local = [Vec::new(), halves[1].clone()];
    let stats = Arc::new(NetStats::default());
    run_plans(Some(fabric as Arc<dyn Fabric>), 1, &local, stats)?;

    // Keep the fabric (and any in-flight retransmits) alive until the
    // parent has validated its results and closes our stdin.
    let mut line = String::new();
    let _ = std::io::stdin().lock().read_line(&mut line);
    Ok(())
}
