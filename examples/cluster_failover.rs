//! Node failure and recovery (§3/§4, Figure 2).
//!
//! Demonstrates the instrumented HDFS block placement: a node dies, the
//! namenode re-replicates under the affinity policy, the min-cost-flow
//! solvers recompute the partition affinity map and responsibility
//! assignment, and scans are 100% short-circuit local again.
//!
//! ```sh
//! cargo run --release --example cluster_failover
//! ```

use vectorh::{ClusterConfig, TableBuilder, VectorH};
use vectorh_common::util::fmt_bytes;
use vectorh_common::{DataType, NodeId, Value};

fn locality_of(vh: &VectorH, label: &str) {
    let before = vh.fs().stats().snapshot();
    let rows = vh.query("SELECT count(*), sum(v) FROM r").unwrap();
    let delta = vh.fs().stats().snapshot().since(&before);
    println!(
        "{label}: count={} sum={} | scan IO: {} local, {} remote ({:.0}% local)",
        rows[0][0],
        rows[0][1],
        fmt_bytes(delta.local_read_bytes),
        fmt_bytes(delta.remote_read_bytes),
        delta.locality() * 100.0
    );
}

fn main() -> vectorh_common::Result<()> {
    let vh = VectorH::start(ClusterConfig {
        nodes: 4,
        replication: 3,
        rows_per_chunk: 1024,
        ..Default::default()
    })?;

    // The Figure 2 setup: a table with 12 partitions over 4 nodes, R=3.
    vh.create_table(
        TableBuilder::new("r")
            .column("k", DataType::I64)
            .column("v", DataType::I64)
            .partition_by(&["k"], 12),
    )?;
    vh.insert_rows(
        "r",
        (0..60_000)
            .map(|i| vec![Value::I64(i), Value::I64(i % 100)])
            .collect(),
    )?;

    println!("partition responsibility before failure:");
    let rt = vh.table("r")?;
    for (i, pid) in rt.pids.iter().enumerate() {
        print!("R{:02}→{}  ", i + 1, vh.responsible(*pid));
        if (i + 1) % 6 == 0 {
            println!();
        }
    }
    locality_of(&vh, "\nbefore failure");

    println!("\n*** killing node3 ***");
    vh.kill_node(NodeId(3))?;
    let rereplicated = vh.fs().stats().snapshot().rereplicated_bytes;
    println!(
        "re-replicated {} to restore R=3 on the survivors",
        fmt_bytes(rereplicated)
    );

    println!("\npartition responsibility after failure (even 12/3 spread):");
    for (i, pid) in rt.pids.iter().enumerate() {
        print!("R{:02}→{}  ", i + 1, vh.responsible(*pid));
        if (i + 1) % 6 == 0 {
            println!();
        }
    }
    locality_of(&vh, "\nafter failure + re-replication");

    // Updates keep flowing to the new responsible nodes.
    vh.trickle_insert(
        "r",
        (60_000..60_100)
            .map(|i| vec![Value::I64(i), Value::I64(0)])
            .collect(),
    )?;
    println!(
        "\ntrickle inserts after failover: rows = {}",
        vh.table_rows("r")?
    );

    // Session-master failover: kill the master too.
    let old_master = vh.session_master();
    println!("\n*** killing the session master ({old_master}) ***");
    vh.kill_node(old_master)?;
    println!("new session master: {}", vh.session_master());
    locality_of(&vh, "after second failure");
    Ok(())
}
