//! Spark-connector pipeline (§7, Figure 6).
//!
//! Simulates SparkSQL feeding VectorH through the connector: CSV input
//! splits on HDFS get matched to ExternalScan operators by block affinity
//! (Hopcroft–Karp-style), "Spark" worker threads parse and stream binary
//! rows, and VectorH ingests them in parallel.
//!
//! ```sh
//! cargo run --release --example spark_pipeline
//! ```

use std::sync::Arc;

use vectorh::{ClusterConfig, TableBuilder, VectorH};
use vectorh_common::{DataType, NodeId, Schema};
use vectorh_connector::csv::{parse_csv, to_csv, CsvOptions};
use vectorh_connector::external::ExternalScan;
use vectorh_connector::splits::{assign_splits, InputSplit};
use vectorh_exec::operator::Operator;
use vectorh_exec::Batch;
use vectorh_net::NetStats;

fn main() -> vectorh_common::Result<()> {
    let vh = VectorH::start(ClusterConfig {
        nodes: 4,
        ..Default::default()
    })?;
    let schema = Arc::new(Schema::of(&[
        ("id", DataType::I64),
        ("qty", DataType::I64),
        ("price", DataType::Decimal { scale: 2 }),
    ]));

    // 1. "Upstream job" wrote 12 CSV files into HDFS.
    println!("writing 12 CSV input files to HDFS...");
    let mut splits = Vec::new();
    for f in 0..12 {
        let cols = vec![
            vectorh_common::ColumnData::I64(((f * 1000)..(f * 1000 + 1000)).collect()),
            vectorh_common::ColumnData::I64((0..1000).map(|i| i % 50).collect()),
            vectorh_common::ColumnData::I64((0..1000).map(|i| 100 + i % 900).collect()),
        ];
        let text = to_csv(&cols, &schema, '|');
        let path = format!("/staging/input-{f:02}.csv");
        // Each file written from a different node → different affinities.
        vh.fs()
            .append(&path, text.as_bytes(), Some(NodeId((f % 4) as u32)))?;
        let locs = vh.fs().block_locations(&path)?;
        splits.push(InputSplit {
            path,
            preferred: locs.first().map(|b| b.nodes.clone()).unwrap_or_default(),
        });
    }

    // 2. The connector matches RDD partitions to ExternalScan operators by
    //    affinity (getPreferredLocations + NarrowDependency).
    let operators: Vec<NodeId> = vh.workers();
    let assignment = assign_splits(&splits, &operators);
    println!(
        "split → operator assignment: {:.0}% affinity-local",
        assignment.locality_fraction() * 100.0
    );

    // 3. One ExternalScan per worker; "Spark" threads parse CSV and stream
    //    binary rows to their assigned operator.
    let stats = Arc::new(NetStats::default());
    let mut total_rows = 0u64;
    let mut handles = Vec::new();
    let mut scans = Vec::new();
    for (op_idx, &node) in operators.iter().enumerate() {
        let (scan, port) = ExternalScan::new(schema.clone(), stats.clone());
        scans.push((node, scan));
        for (s_idx, split) in splits.iter().enumerate() {
            if assignment.operator_of[s_idx] != op_idx {
                continue;
            }
            let writer = port.connect(!assignment.local[s_idx]);
            let text = String::from_utf8(vh.fs().read_all(&split.path, Some(node))?).unwrap();
            let schema = schema.clone();
            handles.push(std::thread::spawn(move || {
                let parsed = parse_csv(&text, &schema, &CsvOptions::default()).unwrap();
                let batch = Batch::new(schema, parsed.columns).unwrap();
                writer.send(&batch).unwrap();
            }));
        }
    }
    for h in handles {
        h.join().unwrap();
    }

    // 4. VectorH side: drain the scans into a table.
    vh.create_table(
        TableBuilder::new("ingested")
            .column("id", DataType::I64)
            .column("qty", DataType::I64)
            .column("price", DataType::Decimal { scale: 2 })
            .partition_by(&["id"], 8),
    )?;
    for (_, mut scan) in scans {
        let mut rows = Vec::new();
        while let Some(b) = scan.next()? {
            rows.extend(b.rows());
            total_rows += b.len() as u64;
        }
        if !rows.is_empty() {
            vh.insert_rows("ingested", rows)?;
        }
    }
    println!("ingested {total_rows} rows through ExternalScan");

    // 5. Query what arrived.
    let out = vh.query(
        "SELECT qty, count(*) AS n, sum(price) FROM ingested GROUP BY qty ORDER BY n DESC LIMIT 5",
    )?;
    println!("top quantities:");
    for row in out {
        println!("  qty={} n={} total={}", row[0], row[1], row[2]);
    }
    let net = stats.snapshot();
    println!(
        "connector traffic: {} intra-node frames, {} cross-node frames ({} bytes serialized)",
        net.intra_messages, net.net_messages, net.net_bytes
    );
    Ok(())
}
